package drange

// The serving core shared by Generator and Pool. A Generator is served as a
// 1-member pool: both facades embed a servingCore, so the scheduler, the
// lock-free fast path, the locked path, the DRBG tier, the health/postprocess
// attachment points and the tier accounting each exist exactly once. The
// single flag selects the few surface differences a 1-member core keeps —
// error wording ("source" versus "pool"), bare error propagation instead of
// per-device wrapping, and no device-health bias windows (HealthPolicy
// applies to pools).

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/health"
)

// memberState is the lifecycle of one serving member. A member starts
// serving; a drift or health violation retires it — to quarantined when
// WithRecharacterization is attached (its engine stops but its device stays
// open), to the terminal evicted state otherwise. The background
// recharacterizer moves quarantined members through recharacterizing (the
// targeted profiling pass runs over the open device) and readmitting (the
// fresh engine is startup-tested and swapped in) back to serving; a pass
// that exhausts its attempts ends in evicted.
type memberState int32

const (
	memberServing memberState = iota
	memberQuarantined
	memberRecharacterizing
	memberReadmitting
	memberEvicted
)

// String returns the lifecycle state name used in Stats and reports.
func (s memberState) String() string {
	switch s {
	case memberServing:
		return "serving"
	case memberQuarantined:
		return "quarantined"
	case memberRecharacterizing:
		return "recharacterizing"
	case memberReadmitting:
		return "readmitting"
	case memberEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("memberState(%d)", int32(s))
	}
}

// sampler is the harvesting source behind one serving member: the concurrent
// sharded engine, or — for a sequential single-device Source — the
// single-controller TRNG (which is not safe for concurrent use, so a
// sequential core never takes the lock-free fast path).
type sampler interface {
	// ReadBits returns n harvested bits, one bit per byte.
	ReadBits(n int) ([]byte, error)
	// ReadPacked fills p with packed harvested bytes.
	ReadPacked(p []byte) error
}

// servingMember is one device of a serving core: its profile, backend device,
// harvesting sampler, health accounting, and the partially consumed packed
// 64-bit word between sampler and scheduler. A Generator has exactly one
// member with idx -1 (the Device value HealthError reports for single-device
// Sources); pool members are numbered from 0.
type servingMember struct {
	idx     int
	profile *Profile
	backend string
	pub     Device
	// src is the serving sampler; eng is the same object when the member is
	// engine-backed (every pool member; a sharded Generator) and nil for the
	// sequential single-controller sampler.
	src     sampler
	eng     *core.Engine
	ownsDev bool

	// dev is the internal device handle the background recharacterizer
	// profiles and rebuilds engines over; shards and trcdNS are the
	// engine-rebuild parameters fixed at open time.
	dev    device.Device
	shards int
	trcdNS float64

	baseTempC float64

	// state is the member's lifecycle state, lock-free so the concurrent
	// read fast path skips non-serving members without the core mutex;
	// reason is guarded by mu. The zero value is memberServing.
	state  atomic.Int32 // drange:atomic
	reason string       // drange:guardedby mu

	// fastEng publishes the engine behind src to the lock-free fast path.
	// A reader that observed state == serving loads the engine through this
	// pointer, so a hot profile swap on readmission can replace src/eng
	// under mu without racing unlocked readers: the swap stores the fresh
	// engine here before the serving state is published. nil while the
	// member is out of serving, and for a sequential (TRNG-backed) member,
	// which never takes the fast path.
	fastEng atomic.Pointer[core.Engine] // drange:atomic

	// Lifecycle accounting (guarded by mu): readmissions counts
	// quarantine→serving round trips, recharacterizations counts targeted
	// re-characterization passes started, recharFailures counts failed
	// passes, lastRecharMS is the wall-clock duration of the last pass that
	// ended in readmission, and recharAttempts counts consecutive failed
	// passes (MaxAttempts of them evict the member terminally).
	readmissions        int64   // drange:guardedby mu
	recharacterizations int64   // drange:guardedby mu
	recharFailures      int64   // drange:guardedby mu
	lastRecharMS        float64 // drange:guardedby mu
	recharAttempts      int     // drange:guardedby mu

	// fetched counts bits pulled from this member's sampler — the load
	// metric of the least-loaded scheduler. Batches discarded under
	// HealthActionBlock count too, so a tripping member cannot pin the
	// scheduler while healthy members idle. delivered counts bits that
	// reached callers. Both are atomics: the concurrent read fast path
	// updates them without the core mutex.
	fetched   atomic.Int64 // drange:atomic
	delivered atomic.Int64 // drange:atomic

	// win accumulates the current bias window with the ones count in the
	// high 32 bits and the bit count in the low 32 (one atomic, so a
	// concurrent snapshot can never pair one window's ones with another's
	// bits); biasDelta holds |ones-fraction − 0.5| of the last completed
	// window (guarded by mu).
	win       atomic.Int64 // drange:atomic
	biasDelta float64      // drange:guardedby mu

	// monitor streams this member's harvested bits through the online
	// health tests (nil unless WithHealthTests is attached);
	// blockedWindows counts batches discarded under HealthActionBlock and
	// startupOK records the startup self-test outcome.
	monitor        *health.Monitor // drange:guardedby mu
	blockedWindows int64           // drange:guardedby mu
	startupOK      bool            // drange:guardedby mu

	// blockedEpoch/blockedInRead implement the per-member HealthActionBlock
	// budget: blockedInRead counts batches this member discarded within the
	// read identified by the core's readEpoch, so one member exhausting its
	// budget is reported without a shared counter throttling the others.
	blockedEpoch  int64 // drange:guardedby mu
	blockedInRead int   // drange:guardedby mu

	// drbg is this member's DRBG instance under WithDRBG (nil otherwise, or
	// when the member was evicted before instantiation): each member expands
	// seeds harvested from its own device through its own monitor, so one
	// drifting device can never contaminate another member's DRBG state.
	drbg *drbgState // drange:guardedby mu

	// pendingDRBG accumulates the bits this member generated for an
	// in-flight DRBG-tier read; they fold into delivered only when the whole
	// read succeeds, so a chunk failure after earlier successful chunks
	// cannot leave member deliveries exceeding what callers received.
	pendingDRBG int64 // drange:guardedby mu

	// cur holds up to 64 bits fetched from the sampler but not yet handed
	// out, packed with the next undelivered bit at the most significant
	// position (locked path only).
	cur     uint64 // drange:guardedby mu
	curBits int    // drange:guardedby mu

	// fetchBuf is the per-fetch ReadPacked scratch. A stack array would
	// escape through the sampler interface call and cost one allocation per
	// fetched word; member-level scratch keeps the locked path
	// allocation-free.
	fetchBuf [8]byte // drange:guardedby mu
}

// lifecycle returns the member's current lifecycle state.
func (m *servingMember) lifecycle() memberState { return memberState(m.state.Load()) }

// serving reports whether the member is schedulable. Any other lifecycle
// state — quarantined, recharacterizing, readmitting or evicted — keeps the
// member out of every scheduling loop.
func (m *servingMember) serving() bool { return m.state.Load() == int32(memberServing) }

// addWindow folds ones set bits out of n into the member's packed bias
// window and returns the window's new bit count.
func (m *servingMember) addWindow(ones, n int) int64 {
	return m.win.Add(int64(ones)<<32|int64(n)) & 0xffffffff
}

// takeLocked removes and returns the top k bits of the member's buffered
// word (k <= curBits), first stream bit at the most significant position of
// the k-bit result.
func (m *servingMember) takeLocked(k int) uint64 {
	v := m.cur >> uint(64-k)
	m.cur <<= uint(k)
	m.curBits -= k
	m.delivered.Add(int64(k))
	return v
}

// servingCore is the shared serving machinery behind Generator and Pool. The
// facades embed it, so Read, ReadBits, ReadRaw, Uint64 and Close are the
// core's (single implementations); Stats stays facade-side because the two
// surfaces report different breakdowns over the same counters.
type servingCore struct {
	mu sync.Mutex
	// single marks a Generator core (one member, idx -1): closed-source
	// errors say "source", sampler errors propagate bare instead of wrapped
	// per device, and Close reports sampler/device release errors.
	single  bool
	members []*servingMember
	// policy is the pool device-health policy (bias/temperature windows); a
	// single core carries it Disabled.
	policy HealthPolicy
	// testsEnabled/testsPolicy carry the WithHealthTests policy resolved
	// with the surface default action.
	testsEnabled bool
	testsPolicy  HealthTestPolicy
	post         *postChain
	// cancel stops the member engines of a pool (nil for a Generator, whose
	// engine is stopped directly by Close).
	cancel context.CancelFunc
	// concurrent gates the lock-free fast path: every member must be
	// engine-backed (the sequential TRNG sampler is single-threaded).
	concurrent bool
	// closeHook, when set, runs under mu at the start of Close — the
	// Generator uses it to stop an engine attached through the deprecated
	// Engine shim before the member sampler closes.
	closeHook func()

	// remainder reports whether any member holds sub-word buffered bits
	// from a bit-granular read; while set, Read takes the locked path so
	// those bits are served in order before fresh sampler words (mixing
	// ReadBits and Read must drain one well-defined stream).
	remainder atomic.Bool // drange:atomic

	// readEpoch numbers locked reads for the per-member blocked budget;
	// blockCause remembers why a member was benched in the current read, so
	// a read that runs out of members reports the health trip rather than a
	// bare scheduling error.
	readEpoch       int64        // drange:guardedby mu
	blockCause      *HealthError // drange:guardedby mu
	blockCauseEpoch int64        // drange:guardedby mu

	// drbgOn/drbgPolicy carry the resolved WithDRBG policy (both fixed at
	// open time; per-member DRBG state lives on the members).
	drbgOn     bool
	drbgPolicy DRBGPolicy

	// pctx is the context the member engines run under; the background
	// recharacterizer builds readmitted engines on it so Close stops them
	// with everything else. nil for a Generator, which never
	// recharacterizes.
	pctx context.Context
	// recharOn/recharPolicy carry the resolved WithRecharacterization
	// policy. recharCh feeds quarantined members to the recharacterizer
	// goroutine — buffered to the member count, so quarantineLocked never
	// blocks under mu — and recharWG tracks the goroutine for Close.
	recharOn     bool
	recharPolicy RecharacterizationPolicy
	recharCh     chan *servingMember
	recharWG     sync.WaitGroup

	// Per-tier serving accounting (atomic: the raw tier's lock-free fast
	// path updates them without mu). The counters advance only when the
	// read succeeds: a failed read returns (0, err) and is invisible here.
	tierRawReads  atomic.Int64 // drange:atomic
	tierRawBytes  atomic.Int64 // drange:atomic
	tierDRBGReads atomic.Int64 // drange:atomic
	tierDRBGBytes atomic.Int64 // drange:atomic

	delivered atomic.Int64 // drange:atomic
	closed    atomic.Bool  // drange:atomic
}

// errClosed is the closed-source error in the surface's wording.
func (c *servingCore) errClosed() error {
	if c.single {
		return fmt.Errorf("drange: source is closed")
	}
	return fmt.Errorf("drange: pool is closed")
}

// maxReadChunkBytes bounds how much of an oversized Read request the locked
// serving path processes per round, so a huge caller buffer behind a monitor
// or post-processing chain is streamed through bounded working memory rather
// than materialised in one piece.
const maxReadChunkBytes = 1 << 16

// Healthy returns the number of devices currently serving reads.
func (c *servingCore) Healthy() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.healthyLocked()
}

// healthyLocked counts serving members. Callers hold mu.
func (c *servingCore) healthyLocked() int {
	n := 0
	for _, m := range c.members {
		if m.serving() {
			n++
		}
	}
	return n
}

// evictLocked removes a member from scheduling terminally: its engine stops,
// its device closes, and its buffered bits are discarded. The last healthy
// member is never evicted — the reason is recorded for Stats but reads
// continue. Callers hold mu.
func (c *servingCore) evictLocked(m *servingMember, reason string) {
	if m.lifecycle() == memberEvicted {
		return
	}
	if m.serving() && c.healthyLocked() <= 1 {
		m.reason = fmt.Sprintf("unhealthy but retained (last device): %s", reason)
		return
	}
	m.fastEng.Store(nil)
	m.state.Store(int32(memberEvicted))
	m.reason = reason
	m.cur, m.curBits = 0, 0
	m.eng.Close()
	if m.ownsDev {
		closeDevice(m.pub)
	}
}

// retireLocked takes a member that violated a drift or health policy out of
// serving: quarantined for background re-characterization when
// WithRecharacterization is attached and attempts remain, terminally evicted
// otherwise. The last healthy member is never retired — the reason is
// recorded for Stats but reads continue (degraded output beats no output).
// Hard sampler failures do not come through here: a member whose engine died
// is evicted directly, since its device cannot be assumed profileable.
// Callers hold mu.
func (c *servingCore) retireLocked(m *servingMember, reason string) {
	if !m.serving() {
		return
	}
	if c.healthyLocked() <= 1 {
		m.reason = fmt.Sprintf("unhealthy but retained (last device): %s", reason)
		return
	}
	if c.recharOn && m.recharAttempts < c.recharPolicy.MaxAttempts {
		c.quarantineLocked(m, reason)
		return
	}
	c.evictLocked(m, reason)
}

// quarantineLocked hands a drifting member to the background
// recharacterizer: its engine stops and its buffered bits and bias window
// are discarded, but — unlike eviction — its device stays open so the
// targeted re-characterization pass can profile it. Callers hold mu.
func (c *servingCore) quarantineLocked(m *servingMember, reason string) {
	m.fastEng.Store(nil)
	m.state.Store(int32(memberQuarantined))
	m.reason = reason
	m.cur, m.curBits = 0, 0
	m.win.Store(0)
	m.eng.Close()
	select {
	case c.recharCh <- m:
	default:
		// Unreachable: the channel is buffered to the member count and a
		// member is enqueued at most once per quarantine.
	}
}

// completeWindowLocked applies the device-health policy to a member whose
// bias window just filled, snapshotting and resetting the window atomics. A
// concurrent reader may have completed the window already; the re-check under
// the lock makes that a no-op. Callers hold mu.
func (c *servingCore) completeWindowLocked(m *servingMember) {
	if m.win.Load()&0xffffffff < int64(c.policy.WindowBits) || !m.serving() {
		return
	}
	w := m.win.Swap(0)
	ones, winBits := w>>32, w&0xffffffff
	if c.policy.Disabled || winBits == 0 {
		return
	}
	m.biasDelta = float64(ones)/float64(winBits) - 0.5
	if m.biasDelta < 0 {
		m.biasDelta = -m.biasDelta
	}
	if c.policy.MaxBiasDelta >= 0 && m.biasDelta > c.policy.MaxBiasDelta {
		c.retireLocked(m, fmt.Sprintf("bias drift: |ones-fraction-0.5| = %.3f over %d bits exceeds %.3f",
			m.biasDelta, c.policy.WindowBits, c.policy.MaxBiasDelta))
		return
	}
	if c.policy.MaxTempDriftC >= 0 {
		drift := m.pub.Temperature() - m.baseTempC
		if drift < 0 {
			drift = -drift
		}
		if drift > c.policy.MaxTempDriftC {
			c.retireLocked(m, fmt.Sprintf("temperature drift: %.1f °C from the %.1f °C baseline exceeds %.1f °C",
				drift, m.baseTempC, c.policy.MaxTempDriftC))
			return
		}
	}
	// A window with no violation clears a retained-device complaint, so a
	// transient excursion does not flag the device forever.
	if m.serving() {
		m.reason = ""
	}
}

// nextMemberLocked picks the healthy member with the least load (fewest bits
// fetched; ties break to the lowest index, keeping the schedule — and hence
// the output stream — deterministic under deterministic noise). Callers hold
// mu.
func (c *servingCore) nextMemberLocked() *servingMember {
	var best *servingMember
	var bestFetched int64
	for _, m := range c.members {
		if !m.serving() || c.blockedOutLocked(m) {
			continue
		}
		if f := m.fetched.Load(); best == nil || f < bestFetched {
			best, bestFetched = m, f
		}
	}
	return best
}

// blockedOutLocked reports whether m exhausted its HealthActionBlock budget
// within the current read and sits benched until the next one. Callers hold
// mu.
func (c *servingCore) blockedOutLocked(m *servingMember) bool {
	return c.testsEnabled && m.blockedEpoch == c.readEpoch &&
		m.blockedInRead >= c.testsPolicy.MaxBlockedWindows
}

// nextMemberWithBitsLocked returns the least-loaded healthy member with
// buffered bits, fetching one packed 64-bit word from its sampler when its
// buffer is empty — the per-fetch granularity that keeps member interleaving
// fine-grained for the bias monitor while amortising the engine's consumer
// lock. A member whose sampler fails is evicted and scheduling re-picks; the
// call only fails once no healthy member remains (or a health-test policy
// says so). Callers hold mu.
func (c *servingCore) nextMemberWithBitsLocked() (*servingMember, error) {
	for {
		m := c.nextMemberLocked()
		if m == nil {
			// Members benched over their blocked budget don't count as
			// evicted; if one of them is why nobody can serve, surface the
			// health trip (a source of only dead-blocking devices must fail
			// loudly, not stall).
			if c.blockCause != nil && c.blockCauseEpoch == c.readEpoch {
				return nil, c.blockCause
			}
			return nil, fmt.Errorf("drange: pool has no healthy devices left (%s)", c.evictionSummaryLocked())
		}
		if m.curBits > 0 {
			return m, nil
		}
		buf := m.fetchBuf[:]
		if err := m.src.ReadPacked(buf); err != nil {
			// Sampler failure (device error, cancelled context, closed
			// engine): evict and reschedule. The eviction keeps the last
			// member, so a pool whose every engine is dead surfaces the
			// error; a single-member core propagates it bare.
			if c.single {
				return nil, err
			}
			if c.healthyLocked() <= 1 {
				return nil, fmt.Errorf("drange: pool device %d (last healthy device): %w", m.idx, err)
			}
			c.evictLocked(m, fmt.Sprintf("engine failure: %v", err))
			continue
		}
		if m.monitor != nil {
			if v := m.monitor.IngestPacked(buf[:], 64); v != nil {
				switch c.testsPolicy.OnFailure {
				case HealthActionError:
					return nil, &HealthError{Test: string(v.Test), Device: m.idx, Detail: v.Detail}
				case HealthActionBlock:
					// Discard the dirty batch and refetch. The discarded
					// batch still counts as load, so the least-loaded
					// scheduler rotates to healthy members instead of
					// re-picking the tripping one forever; the budget is
					// per member per read, so a member that exhausts it is
					// benched for the rest of the read while the healthy
					// members keep serving.
					m.monitor.Reset()
					m.blockedWindows++
					m.fetched.Add(64)
					if m.blockedEpoch != c.readEpoch {
						m.blockedEpoch, m.blockedInRead = c.readEpoch, 0
					}
					m.blockedInRead++
					if m.blockedInRead >= c.testsPolicy.MaxBlockedWindows {
						c.blockCause = &HealthError{Test: "blocked", Device: m.idx, Detail: fmt.Sprintf(
							"no clean batch after discarding %d (last violation: %s: %s)", m.blockedInRead, v.Test, v.Detail)}
						c.blockCauseEpoch = c.readEpoch
					}
					continue
				default: // HealthActionEvict
					c.retireLocked(m, fmt.Sprintf("health test %s tripped: %s", v.Test, v.Detail))
					if !m.serving() {
						continue
					}
					// The last healthy member is retained (degraded
					// output beats no output, matching the device-health
					// policy): serve the batch with the violation
					// recorded in Reason and the trip counters.
					m.monitor.Reset()
				}
			}
		}
		m.cur, m.curBits = binary.BigEndian.Uint64(buf[:]), 64
		m.fetched.Add(64)
		if !c.policy.Disabled {
			if w := m.addWindow(bits.OnesCount64(m.cur), 64); w >= int64(c.policy.WindowBits) {
				c.completeWindowLocked(m)
				// The member may have just been retired; its buffered bits
				// are gone and the scheduler picks the next member.
				if !m.serving() {
					continue
				}
			}
		}
		return m, nil
	}
}

// readPackedLocked fills dst with packed bytes assembled across the healthy
// members, least-loaded first. Each picked member is drained of everything
// it has buffered (up to the space left) before the scheduler re-picks —
// the same take-all granularity as readBitsLocked, so byte- and
// bit-granular reads with the same call boundaries serve the same stream.
// Callers hold mu.
func (c *servingCore) readPackedLocked(dst []byte) error {
	total := len(dst) * 8
	for pos := 0; pos < total; {
		m, err := c.nextMemberWithBitsLocked()
		if err != nil {
			return err
		}
		take := m.curBits
		if rem := total - pos; take > rem {
			take = rem
		}
		writeBits(dst, pos, m.takeLocked(take), take)
		pos += take
	}
	return nil
}

// writeBits stores the low n bits of v (first stream bit most significant)
// into dst starting at bit offset pos, MSB-first.
//
//drange:noalloc
func writeBits(dst []byte, pos int, v uint64, n int) {
	for n > 0 {
		free := 8 - pos&7
		take := n
		if take > free {
			take = free
		}
		chunk := byte(v>>uint(n-take)) & (1<<uint(take) - 1)
		shift := uint(free - take)
		dst[pos>>3] = dst[pos>>3]&^(byte(1<<uint(take)-1)<<shift) | chunk<<shift
		pos += take
		n -= take
	}
}

// readBitsLocked returns n bits, one bit per byte, assembled across the
// healthy members. Callers hold mu.
func (c *servingCore) readBitsLocked(n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for len(out) < n {
		m, err := c.nextMemberWithBitsLocked()
		if err != nil {
			return nil, err
		}
		take := m.curBits
		if rem := n - len(out); take > rem {
			take = rem
		}
		v := m.takeLocked(take)
		for j := take - 1; j >= 0; j-- {
			out = append(out, byte(v>>uint(j))&1)
		}
	}
	return out, nil
}

// evictionSummaryLocked summarises why the core ran out of devices.
func (c *servingCore) evictionSummaryLocked() string {
	s := ""
	for _, m := range c.members {
		if m.reason == "" {
			continue
		}
		if s != "" {
			s += "; "
		}
		s += fmt.Sprintf("device %d: %s", m.idx, m.reason)
	}
	if s == "" {
		return "no devices opened"
	}
	return s
}

// updateRemainderLocked records whether any member still buffers sub-word
// bits, which forces subsequent Reads onto the locked path until drained.
// Callers hold mu.
func (c *servingCore) updateRemainderLocked() {
	for _, m := range c.members {
		if m.curBits > 0 {
			c.remainder.Store(true)
			return
		}
	}
	c.remainder.Store(false)
}

// runStartupTests runs the startup self-test over every member's first
// StartupBits bits before the core serves a byte. Under the HealthActionEvict
// action a failing member is evicted at open (it never serves); unlike
// runtime eviction this may empty the pool, which fails the open — a fleet
// where every device flunks its self-test must not come up at all. Any other
// action fails the open on the first failing member.
//
//drange:holds mu construction: runs from Open/OpenPool before the core is published
func (c *servingCore) runStartupTests() error {
	if !c.testsEnabled || c.testsPolicy.StartupBits <= 0 {
		return nil
	}
	var firstErr error
	failed := 0
	for _, m := range c.members {
		sample, err := m.src.ReadBits(c.testsPolicy.StartupBits)
		if err != nil {
			if c.single {
				return err
			}
			return fmt.Errorf("drange: pool device %d startup sample: %w", m.idx, err)
		}
		serr := runStartup(sample, c.testsPolicy, m.idx)
		if serr == nil {
			continue
		}
		failed++
		if firstErr == nil {
			firstErr = serr
		}
		if c.testsPolicy.OnFailure != HealthActionEvict {
			return serr
		}
		// Startup failures are terminal even under WithRecharacterization:
		// a device that flunks its self-test straight after characterization
		// has nothing fresher to re-characterize from.
		m.startupOK = false
		m.fastEng.Store(nil)
		m.state.Store(int32(memberEvicted))
		m.reason = fmt.Sprintf("startup health test failed: %v", serr)
		m.eng.Close()
		if m.ownsDev {
			closeDevice(m.pub)
		}
	}
	if failed == len(c.members) {
		return fmt.Errorf("drange: every pool device failed its startup health test: %w", firstErr)
	}
	return nil
}

// instantiateDRBGs seeds one DRBG per healthy member from the member's own
// sampler through the member's own monitor. First reseed points are staggered
// across [interval, 2·interval): member k of n gets interval + k·⌈interval/n⌉
// extra first-seed budget, so the members never fall due in the same read and
// the staged reseeds of drbgReadLocked can always run on a member that is not
// serving (a 1-member core degenerates to the plain interval). A member whose
// seed harvest trips the health tests follows the open-time semantics of
// runStartupTests: the evict policy drops it (reads reroute), any other
// policy fails the open.
//
//drange:holds mu construction: runs from Open/OpenPool before the core is published
func (c *servingCore) instantiateDRBGs() error {
	n := int64(c.healthyLocked())
	if n == 0 {
		return fmt.Errorf("drange: pool has no healthy devices left (%s)", c.evictionSummaryLocked())
	}
	interval := c.drbgPolicy.ReseedInterval
	step := (interval + n - 1) / n
	k := int64(0)
	seeded := 0
	for _, m := range c.members {
		if !m.serving() {
			continue
		}
		s := newDRBGState(c.drbgPolicy, interval+k*step)
		k++
		if m.monitor != nil {
			m.monitor.SetCreditSink(s.ledger)
		}
		if err := c.harvestSeedLocked(m, s.seedBuf); err != nil {
			if errors.Is(err, errDRBGMemberEvicted) {
				continue
			}
			return err
		}
		if err := s.instantiate(); err != nil {
			return err
		}
		m.drbg = s
		seeded++
	}
	if seeded == 0 {
		return fmt.Errorf("drange: no pool device produced a clean DRBG seed (%s)", c.evictionSummaryLocked())
	}
	return nil
}

// harvestSeedLocked fills seed with packed bytes from m's sampler, streaming
// them through m's monitor with the same trip policies, load accounting and
// bias-window bookkeeping as nextMemberWithBitsLocked. It returns
// errDRBGMemberEvicted when the harvest cost m its pool membership (sampler
// failure or evict policy), so callers re-pick instead of failing the read.
// Callers hold mu.
func (c *servingCore) harvestSeedLocked(m *servingMember, seed []byte) error {
	blocked := 0
	for {
		if err := m.src.ReadPacked(seed); err != nil {
			if c.single {
				return err
			}
			if c.healthyLocked() <= 1 {
				return fmt.Errorf("drange: pool device %d (last healthy device): %w", m.idx, err)
			}
			c.evictLocked(m, fmt.Sprintf("engine failure: %v", err))
			return errDRBGMemberEvicted
		}
		m.fetched.Add(int64(len(seed)) * 8)
		if !c.policy.Disabled {
			ones := 0
			for _, b := range seed {
				ones += bits.OnesCount8(b)
			}
			if w := m.addWindow(ones, len(seed)*8); w >= int64(c.policy.WindowBits) {
				c.completeWindowLocked(m)
				if !m.serving() {
					return errDRBGMemberEvicted
				}
			}
		}
		if m.monitor == nil {
			return nil
		}
		v := m.monitor.IngestPacked(seed, len(seed)*8)
		if v == nil {
			return nil
		}
		switch c.testsPolicy.OnFailure {
		case HealthActionError:
			return &HealthError{Test: string(v.Test), Device: m.idx, Detail: v.Detail}
		case HealthActionBlock:
			m.monitor.Reset()
			m.blockedWindows++
			blocked++
			if blocked >= c.testsPolicy.MaxBlockedWindows {
				return &HealthError{Test: "blocked", Device: m.idx, Detail: fmt.Sprintf(
					"no clean seed after discarding %d (last violation: %s: %s)", blocked, v.Test, v.Detail)}
			}
		default: // HealthActionEvict
			c.retireLocked(m, fmt.Sprintf("health test %s tripped: %s", v.Test, v.Detail))
			if !m.serving() {
				return errDRBGMemberEvicted
			}
			// The last healthy member is retained (degraded output beats no
			// output): use the seed with the violation recorded in Reason and
			// the trip counters.
			m.monitor.Reset()
			return nil
		}
	}
}

// ReadBits returns n random bits, one bit per returned byte (0 or 1), after
// any configured post-processing chain. It is a thin unpacking adapter over
// the packed serving path and is safe for concurrent use. With WithDRBG
// attached it serves the DRBG tier; either way the serving tier's counters
// advance only when the read succeeds.
func (c *servingCore) ReadBits(n int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("drange: bit count must be positive, got %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, c.errClosed()
	}
	c.readEpoch++
	if c.drbgOn {
		packed := make([]byte, (n+7)/8)
		if err := c.drbgReadLocked(packed); err != nil {
			return nil, err
		}
		out := make([]byte, n)
		unpackBits(out, packed)
		c.delivered.Add(int64(n))
		c.tierDRBGReads.Add(1)
		c.tierDRBGBytes.Add(int64(len(packed)))
		return out, nil
	}
	var bits []byte
	var err error
	if c.post != nil {
		bits, err = c.post.readBits(n, c.readPackedLocked)
	} else {
		bits, err = c.readBitsLocked(n)
	}
	c.updateRemainderLocked()
	if err != nil {
		return nil, err
	}
	c.delivered.Add(int64(len(bits)))
	c.tierRawReads.Add(1)
	c.tierRawBytes.Add(int64((len(bits) + 7) / 8))
	return bits, nil
}

// Read fills p with random bytes, implementing io.Reader. It never returns a
// short read except on error.
//
// Without WithDRBG this is the raw packed fast path (see ReadRaw). With
// WithDRBG attached, Read serves the DRBG tier: each request is expanded by
// the least-loaded ready member's DRBG, and reseeds are staged across the
// other members so the serving member is (almost) never the one harvesting a
// seed. (A 1-member core reseeds inline on its own interval.)
func (c *servingCore) Read(p []byte) (int, error) {
	if !c.drbgOn {
		return c.ReadRaw(p)
	}
	if len(p) == 0 {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return 0, c.errClosed()
	}
	c.readEpoch++
	if err := c.drbgReadLocked(p); err != nil {
		return 0, err
	}
	c.delivered.Add(int64(len(p)) * 8)
	c.tierDRBGReads.Add(1)
	c.tierDRBGBytes.Add(int64(len(p)))
	return len(p), nil
}

// drbgReadLocked serves one DRBG-tier read: each chunk (capped at the
// policy's per-request limit) is generated by the least-loaded ready member,
// and after every chunk at most one other due member is reseeded — staging
// reseed work onto members that are not serving, so reseeds never stall the
// read. Generated bits land in the members' pendingDRBG and fold into their
// delivered counters only when every chunk succeeded: a failed read returns
// (0, err), so nothing it generated may count as delivered. Callers hold mu.
//
//drange:noalloc
func (c *servingCore) drbgReadLocked(dst []byte) error {
	for off := 0; off < len(dst); {
		chunk := dst[off:]
		if len(chunk) > c.drbgPolicy.MaxRequestBytes {
			chunk = chunk[:c.drbgPolicy.MaxRequestBytes]
		}
		m, err := c.drbgServeMemberLocked()
		if err != nil {
			c.dropPendingDRBGLocked()
			return err
		}
		if err := m.drbg.d.Generate(chunk, nil); err != nil {
			c.dropPendingDRBGLocked()
			return err
		}
		m.pendingDRBG += int64(len(chunk)) * 8
		off += len(chunk)
		c.stageDRBGReseedLocked(m)
	}
	c.commitPendingDRBGLocked()
	return nil
}

// commitPendingDRBGLocked folds every member's in-flight DRBG generation into
// its delivered counter after a whole DRBG-tier read succeeded. Callers hold
// mu.
//
//drange:noalloc
func (c *servingCore) commitPendingDRBGLocked() {
	for _, m := range c.members {
		if m.pendingDRBG != 0 {
			m.delivered.Add(m.pendingDRBG)
			m.pendingDRBG = 0
		}
	}
}

// dropPendingDRBGLocked discards every member's in-flight DRBG generation
// after a DRBG-tier read failed mid-way: the caller got (0, err), so the
// generated chunks were never delivered. Callers hold mu.
//
//drange:noalloc
func (c *servingCore) dropPendingDRBGLocked() {
	for _, m := range c.members {
		m.pendingDRBG = 0
	}
}

// drbgServeMemberLocked picks the member to generate the next DRBG request:
// the least-loaded healthy member whose DRBG is ready (within its request
// budget). When no member is ready — every DRBG fell due at once, or
// prediction resistance forces a reseed before every request — the
// least-loaded due member is reseeded inline and serves. A member evicted
// during that reseed is skipped and the pick re-runs. Callers hold mu.
func (c *servingCore) drbgServeMemberLocked() (*servingMember, error) {
	for {
		var ready, due *servingMember
		var readyF, dueF int64
		for _, m := range c.members {
			if !m.serving() || m.drbg == nil {
				continue
			}
			f := m.fetched.Load()
			if !c.drbgPolicy.PredictionResistance && !m.drbg.d.NeedsReseed() {
				if ready == nil || f < readyF {
					ready, readyF = m, f
				}
			} else if due == nil || f < dueF {
				due, dueF = m, f
			}
		}
		if ready != nil {
			return ready, nil
		}
		if due == nil {
			return nil, fmt.Errorf("drange: pool has no healthy devices left (%s)", c.evictionSummaryLocked())
		}
		if err := c.reseedMemberLocked(due); err != nil {
			if errors.Is(err, errDRBGMemberEvicted) {
				continue
			}
			return nil, err
		}
		return due, nil
	}
}

// reseedMemberLocked harvests a fresh health-screened seed from m's own
// sampler and folds it into m's DRBG, debiting the credit ledger. Callers
// hold mu.
//
//drange:noalloc
func (c *servingCore) reseedMemberLocked(m *servingMember) error {
	if err := c.harvestSeedLocked(m, m.drbg.seedBuf); err != nil {
		return err
	}
	return m.drbg.reseedFromBuf()
}

// stageDRBGReseedLocked opportunistically reseeds at most one due member
// other than the one that just served, spreading seed harvests across reads
// so members are reseeded while idle rather than when picked. Best-effort: a
// failure neither fails the read nor loses the member — a sampler failure or
// evict-policy trip is already recorded by harvestSeedLocked, and any other
// error surfaces when the member is next picked to serve. Callers hold mu.
func (c *servingCore) stageDRBGReseedLocked(served *servingMember) {
	if c.drbgPolicy.PredictionResistance {
		// Every request reseeds its serving member anyway; staging extra
		// harvests would only burn raw throughput.
		return
	}
	var due *servingMember
	var dueF int64
	for _, m := range c.members {
		if m == served || !m.serving() || m.drbg == nil || !m.drbg.d.NeedsReseed() {
			continue
		}
		if f := m.fetched.Load(); due == nil || f < dueF {
			due, dueF = m, f
		}
	}
	if due == nil {
		return
	}
	_ = c.reseedMemberLocked(due)
}

// ReadRaw fills p with raw harvested bytes — the physical tier. Health
// tests, device-health tracking and any post-processing chain still apply;
// only the WithDRBG expansion is bypassed. Without WithDRBG, Read is this
// same path.
//
// This is the packed fast path: the samplers hand the core packed 64-bit
// words that land in the caller's buffer without any bit-per-byte expansion.
// With engine-backed members, no post-processing chain and no online health
// tests attached, ReadRaw additionally runs lock-free — concurrent readers
// schedule themselves onto the least-loaded members through atomic load
// counters and only touch the core mutex at bias-window boundaries and
// evictions, so throughput scales with readers instead of serializing behind
// the lock. (Device health tracking per HealthPolicy stays fully enforced on
// this path.) This is also the single tier-accounting site of the raw tier:
// both exits count the read if and only if it succeeded.
//
//drange:seedtaint-exempt documented raw tier: delivers unconditioned entropy by contract
func (c *servingCore) ReadRaw(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	// Buffered sub-word bits from an earlier ReadBits must be served first
	// and in order, so they force the locked path for this read; a
	// sequential (TRNG-backed) core always takes it.
	if c.concurrent && c.post == nil && !c.testsEnabled && !c.remainder.Load() {
		n, err := c.readFast(p)
		if err == nil {
			c.tierRawReads.Add(1)
			c.tierRawBytes.Add(int64(len(p)))
		}
		return n, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return 0, c.errClosed()
	}
	c.readEpoch++
	defer c.updateRemainderLocked()
	for off := 0; off < len(p); {
		chunk := p[off:]
		if len(chunk) > maxReadChunkBytes {
			chunk = chunk[:maxReadChunkBytes]
		}
		var err error
		if c.post != nil {
			err = c.post.readPacked(chunk, c.readPackedLocked)
		} else {
			err = c.readPackedLocked(chunk)
		}
		if err != nil {
			// A failed Read returns (0, err); chunks already written must
			// not count as served.
			return 0, err
		}
		off += len(chunk)
	}
	c.delivered.Add(int64(len(p)) * 8)
	c.tierRawReads.Add(1)
	c.tierRawBytes.Add(int64(len(p)))
	return len(p), nil
}

// pickMember is the lock-free counterpart of nextMemberLocked: least loaded
// healthy member by atomic counters, ties to the lowest index.
//
//drange:noalloc
func (c *servingCore) pickMember() *servingMember {
	var best *servingMember
	var bestFetched int64
	for _, m := range c.members {
		if !m.serving() {
			continue
		}
		if f := m.fetched.Load(); best == nil || f < bestFetched {
			best, bestFetched = m, f
		}
	}
	return best
}

// readFast is the concurrent Read path: packed 64-bit fetches from the
// least-loaded member's engine straight into the caller's buffer, with the
// core mutex taken only for bias-window evaluation and evictions.
//
//drange:noalloc
func (c *servingCore) readFast(dst []byte) (int, error) {
	for i := 0; i < len(dst); {
		if c.closed.Load() {
			return 0, c.errClosed()
		}
		m := c.pickMember()
		if m == nil {
			c.mu.Lock()
			err := fmt.Errorf("drange: pool has no healthy devices left (%s)", c.evictionSummaryLocked())
			c.mu.Unlock()
			return 0, err
		}
		n := len(dst) - i
		if n > 8 {
			n = 8
		}
		chunk := dst[i : i+n]
		// Claim the load before the engine read so concurrent readers spread
		// across members instead of piling onto one. The engine is loaded
		// through the member's published pointer: the acquire load pairs
		// with the release store a readmission makes after its hot profile
		// swap, so a reader that saw the member serving reads the engine
		// that state belongs to.
		m.fetched.Add(int64(n) * 8)
		eng := m.fastEng.Load()
		if eng == nil {
			// The member left serving between the pick and the engine load
			// (a quarantine or eviction cleared the pointer); re-pick.
			m.fetched.Add(-int64(n) * 8)
			continue
		}
		if err := eng.ReadPacked(chunk); err != nil {
			m.fetched.Add(-int64(n) * 8)
			if c.single {
				return 0, err
			}
			c.mu.Lock()
			if c.closed.Load() {
				c.mu.Unlock()
				return 0, c.errClosed()
			}
			if !m.serving() || m.eng != eng {
				// Another reader retired this member while we were blocked
				// in its engine (e.g. a bias-window trip closed it), or it
				// was readmitted with a fresh engine while we held the old
				// one; the survivors keep serving — just re-pick.
				c.mu.Unlock()
				continue
			}
			if c.healthyLocked() <= 1 {
				c.mu.Unlock()
				return 0, fmt.Errorf("drange: pool device %d (last healthy device): %w", m.idx, err)
			}
			c.evictLocked(m, fmt.Sprintf("engine failure: %v", err))
			c.mu.Unlock()
			continue
		}
		m.delivered.Add(int64(n) * 8)
		if !c.policy.Disabled {
			ones := 0
			for _, b := range chunk {
				ones += bits.OnesCount8(b)
			}
			if w := m.addWindow(ones, n*8); w >= int64(c.policy.WindowBits) {
				c.mu.Lock()
				c.completeWindowLocked(m)
				c.mu.Unlock()
			}
		}
		i += n
	}
	c.delivered.Add(int64(len(dst)) * 8)
	return len(dst), nil
}

// Uint64 returns a 64-bit random value.
func (c *servingCore) Uint64() (uint64, error) {
	var buf [8]byte
	if _, err := c.Read(buf[:]); err != nil {
		return 0, err
	}
	return core.BEUint64(buf), nil
}

// Close releases the core: it stops every member engine and releases every
// device (after running the facade's closeHook, e.g. to stop a deprecated
// Engine shim). It is idempotent. A single-device core reports release
// errors; a pool — whose members may already be part-closed by evictions —
// returns nil, as it always has.
func (c *servingCore) Close() error {
	c.mu.Lock()
	if c.closed.Swap(true) {
		c.mu.Unlock()
		return nil
	}
	if c.closeHook != nil {
		c.closeHook()
	}
	if c.cancel != nil {
		c.cancel()
	}
	c.mu.Unlock()
	// The recharacterizer may be mid-pass over a quarantined member's still
	// open device; wait for it before releasing devices. It checks the
	// cancelled context between profiling rounds, so this does not wait out
	// a full pass, and it only takes mu briefly — never while Close holds it.
	c.recharWG.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.closeMembers()
	if c.single {
		return err
	}
	return nil
}

// closeMembers releases every member except the terminally evicted (closed
// at eviction time) — quarantined and recharacterizing members still hold
// their device open for the recharacterizer. Members whose engine never
// started — an Open/OpenPool constructor failure — still release their
// device, so a replay recorder's log is flushed even when a later member
// fails to open.
func (c *servingCore) closeMembers() error {
	var err error
	for _, m := range c.members {
		if m.lifecycle() == memberEvicted {
			continue
		}
		if m.eng != nil {
			if cerr := m.eng.Close(); err == nil {
				err = cerr
			}
		}
		if m.ownsDev && m.pub != nil {
			if cerr := closeDevice(m.pub); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// tierStatsLocked fills the per-tier serving counters — and, for a
// single-device core, the DRBG snapshot — into st. Callers hold mu.
func (c *servingCore) tierStatsLocked(st *Stats) {
	st.TierRaw = TierStats{Reads: c.tierRawReads.Load(), Bytes: c.tierRawBytes.Load()}
	st.TierDRBG = TierStats{Reads: c.tierDRBGReads.Load(), Bytes: c.tierDRBGBytes.Load()}
	if c.drbgOn && c.single {
		if d := c.members[0].drbg; d != nil {
			st.DRBG = d.stats()
		}
	}
}

// healthStatsLocked snapshots a single-device core's health accounting (nil
// without WithHealthTests). Callers hold mu.
func (c *servingCore) healthStatsLocked() *HealthStats {
	m := c.members[0]
	if m.monitor == nil {
		return nil
	}
	return healthStatsFrom(m.monitor, m.blockedWindows, m.startupOK)
}
