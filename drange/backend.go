package drange

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/timing"
)

// Device is the public device contract: everything a D-RaNGe pipeline needs
// from a DRAM device, expressed with public types only. Open, Characterize
// and OpenPool drive whatever implements it — the built-in simulator, an
// operation-log replayer, a fault injector, or a caller-supplied backend
// registered with RegisterBackend (or passed directly via WithDevice).
//
// The contract, in the order a generator exercises it:
//
//   - Identity and shape: Serial (profiles are keyed on it), Geometry.
//   - Row commands: Activate(bank, row, trcdNS) opens a row with a
//     caller-chosen activation latency in nanoseconds — activating below the
//     cell-dependent critical latency must arm activation-failure injection
//     for the first word subsequently read; activating an already-open bank
//     is an error. Precharge closes a bank's open row (no-op when closed).
//     Refresh performs an all-bank refresh and errors if any bank is open.
//   - Column commands: ReadWord reads DRAM word wordIdx of the open row
//     (the first read after a reduced-tRCD activation carries the failures);
//     WriteWord stores one word.
//   - Profiling shortcuts: WriteRow/ReadRowRaw bypass the command interface
//     to install and inspect row content; StartupRow reports power-up values
//     without disturbing state (used by the startup-value TRNG baselines).
//   - Environment: SetTemperature/Temperature, in °C. Failure probabilities
//     are temperature-dependent (Section 5.3), so pool health monitoring
//     watches Temperature for drift.
//   - Accounting: OpStats returns cumulative operation counters.
//
// Implementations must be safe for concurrent use by multiple goroutines:
// sharded engines drive disjoint banks concurrently. A backend that also
// implements io.Closer is closed when the Source (or Pool) opened over it is
// closed.
type Device interface {
	Serial() uint64
	Geometry() Geometry

	Activate(bank, row int, trcdNS float64) error
	Precharge(bank int) error
	Refresh() error
	ReadWord(bank, wordIdx int) ([]uint64, error)
	WriteWord(bank, wordIdx int, word []uint64) error

	WriteRow(bank, row int, data []uint64) error
	ReadRowRaw(bank, row int) ([]uint64, error)
	StartupRow(bank, row int) ([]uint64, error)

	SetTemperature(c float64) error
	Temperature() float64

	OpStats() DeviceStats
}

// DeviceStats counts the operations a device has performed. It mirrors the
// simulator's counters; backends that cannot observe a counter (for example
// InjectedFlips on replayed logs) report it as zero.
type DeviceStats struct {
	Activates      int64 `json:"activates"`
	Precharges     int64 `json:"precharges"`
	Reads          int64 `json:"reads"`
	Writes         int64 `json:"writes"`
	Refreshes      int64 `json:"refreshes"`
	InjectedFlips  int64 `json:"injected_flips"`
	ReducedTRCDAct int64 `json:"reduced_trcd_activates"`
}

func deviceStatsFromInternal(s dram.DeviceStats) DeviceStats {
	return DeviceStats{
		Activates:      s.Activates,
		Precharges:     s.Precharges,
		Reads:          s.Reads,
		Writes:         s.Writes,
		Refreshes:      s.Refreshes,
		InjectedFlips:  s.InjectedFlips,
		ReducedTRCDAct: s.ReducedTRCDAct,
	}
}

func (s DeviceStats) internal() dram.DeviceStats {
	return dram.DeviceStats{
		Activates:      s.Activates,
		Precharges:     s.Precharges,
		Reads:          s.Reads,
		Writes:         s.Writes,
		Refreshes:      s.Refreshes,
		InjectedFlips:  s.InjectedFlips,
		ReducedTRCDAct: s.ReducedTRCDAct,
	}
}

// BackendParams describes the device identity a backend factory must open.
// The identity fields come from the profile (or the Characterize options);
// Options carries backend-specific knobs from WithBackend.
type BackendParams struct {
	// Manufacturer, Serial and Deterministic are the device identity used by
	// the sim backend and recorded by the replay backend.
	Manufacturer  string
	Serial        uint64
	Deterministic bool
	// Geometry is the requested device organisation; the zero value selects
	// the backend's default.
	Geometry Geometry
	// Options are backend-specific settings (see the sim, replay and faulty
	// backend documentation for their keys).
	Options map[string]string
}

// option returns Options[key] or def when unset.
func (p BackendParams) option(key, def string) string {
	if v, ok := p.Options[key]; ok {
		return v
	}
	return def
}

// BackendFactory opens a Device for the given parameters. Factories must
// validate p.Options and reject unknown keys loudly.
type BackendFactory func(p BackendParams) (Device, error)

var (
	backendMu sync.RWMutex
	backends  = map[string]BackendFactory{}
)

// RegisterBackend registers a device backend under name, making it available
// to WithBackend and OpenBackend. Registering a duplicate or empty name is an
// error. The built-in backends are "sim" (the simulated device), "replay"
// (operation-log record/replay) and "faulty" (fault injection over another
// backend).
func RegisterBackend(name string, factory BackendFactory) error {
	if name == "" {
		return fmt.Errorf("drange: backend name must be non-empty")
	}
	if factory == nil {
		return fmt.Errorf("drange: nil factory for backend %q", name)
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		return fmt.Errorf("drange: backend %q already registered", name)
	}
	backends[name] = factory
	return nil
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OpenBackend opens a device through the named registered backend. Most
// callers never need it — Characterize/Open/OpenPool resolve backends from
// WithBackend — but it is the composition point for custom middleware: open a
// built-in backend, wrap it, and pass the wrapper to WithDevice.
func OpenBackend(name string, p BackendParams) (Device, error) {
	backendMu.RLock()
	factory, ok := backends[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("drange: unknown backend %q (registered: %v)", name, Backends())
	}
	dev, err := factory(p)
	if err != nil {
		return nil, fmt.Errorf("drange: backend %q: %w", name, err)
	}
	if dev == nil {
		return nil, fmt.Errorf("drange: backend %q returned a nil device", name)
	}
	return dev, nil
}

func init() {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(RegisterBackend("sim", openSimBackend))
	must(RegisterBackend("replay", openReplayBackend))
	must(RegisterBackend("faulty", openFaultyBackend))
}

// openSimBackend is the "sim" backend: the repository's simulated DRAM
// device. It takes no Options; the identity fields select the manufacturer
// profile, the serial-seeded process variation, the geometry, and (when
// Deterministic) a per-bank seeded noise source.
func openSimBackend(p BackendParams) (Device, error) {
	for k := range p.Options {
		return nil, fmt.Errorf("sim backend takes no options, got %q", k)
	}
	d, err := newDevice(p.Manufacturer, p.Serial, p.Deterministic, p.Geometry)
	if err != nil {
		return nil, err
	}
	return &simDevice{d: d}, nil
}

// simDevice exposes the internal simulated device through the public Device
// contract.
type simDevice struct {
	d *dram.Device
}

func (s *simDevice) Serial() uint64                          { return s.d.Serial() }
func (s *simDevice) Geometry() Geometry                      { return geometryFromInternal(s.d.Geometry()) }
func (s *simDevice) Activate(b, r int, trcdNS float64) error { return s.d.Activate(b, r, trcdNS) }
func (s *simDevice) Precharge(bank int) error                { return s.d.Precharge(bank) }
func (s *simDevice) Refresh() error                          { return s.d.Refresh() }
func (s *simDevice) ReadWord(b, w int) ([]uint64, error)     { return s.d.ReadWord(b, w) }
func (s *simDevice) WriteWord(b, w int, d []uint64) error    { return s.d.WriteWord(b, w, d) }
func (s *simDevice) WriteRow(b, r int, d []uint64) error     { return s.d.WriteRow(b, r, d) }
func (s *simDevice) ReadRowRaw(b, r int) ([]uint64, error)   { return s.d.ReadRowRaw(b, r) }
func (s *simDevice) StartupRow(b, r int) ([]uint64, error)   { return s.d.StartupRow(b, r) }
func (s *simDevice) SetTemperature(c float64) error          { return s.d.SetTemperature(c) }
func (s *simDevice) Temperature() float64                    { return s.d.Temperature() }
func (s *simDevice) OpStats() DeviceStats                    { return deviceStatsFromInternal(s.d.Stats()) }

// internalDevice adapts a public Device to the internal pipeline contract.
// The built-in simulator is unwrapped to avoid a delegation layer on the hot
// sampling path (and to preserve its own timing parameters); every other
// backend is assumed to model the default LPDDR4 part, which is the only
// timing the public facade constructs.
func internalDevice(pub Device) device.Device {
	if s, ok := pub.(*simDevice); ok {
		return s.d
	}
	return &deviceAdapter{pub: pub, tp: timing.NewLPDDR4()}
}

type deviceAdapter struct {
	pub Device
	tp  timing.Params
}

func (a *deviceAdapter) Serial() uint64                          { return a.pub.Serial() }
func (a *deviceAdapter) Geometry() dram.Geometry                 { return a.pub.Geometry().internal() }
func (a *deviceAdapter) Timing() timing.Params                   { return a.tp }
func (a *deviceAdapter) Activate(b, r int, trcdNS float64) error { return a.pub.Activate(b, r, trcdNS) }
func (a *deviceAdapter) Precharge(bank int) error                { return a.pub.Precharge(bank) }
func (a *deviceAdapter) Refresh() error                          { return a.pub.Refresh() }
func (a *deviceAdapter) ReadWord(b, w int) ([]uint64, error)     { return a.pub.ReadWord(b, w) }
func (a *deviceAdapter) WriteWord(b, w int, d []uint64) error    { return a.pub.WriteWord(b, w, d) }
func (a *deviceAdapter) WriteRow(b, r int, d []uint64) error     { return a.pub.WriteRow(b, r, d) }
func (a *deviceAdapter) ReadRowRaw(b, r int) ([]uint64, error)   { return a.pub.ReadRowRaw(b, r) }
func (a *deviceAdapter) StartupRow(b, r int) ([]uint64, error)   { return a.pub.StartupRow(b, r) }
func (a *deviceAdapter) SetTemperature(c float64) error          { return a.pub.SetTemperature(c) }
func (a *deviceAdapter) Temperature() float64                    { return a.pub.Temperature() }
func (a *deviceAdapter) Stats() dram.DeviceStats                 { return a.pub.OpStats().internal() }

// closeDevice closes a backend device if it holds resources (the replay
// recorder's log file, a faulty wrapper's inner recorder, ...).
func closeDevice(pub Device) error {
	if c, ok := pub.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
