package drange

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/timing"
)

// The "replay" backend records every device operation of a run to a log file
// and can later replay that log, serving the recorded results in order. A
// replayed run is byte-reproducible by construction — even when the original
// run used physical (OS-entropy) noise — which makes it the CI determinism
// anchor and a portable bug-report format for generator behaviour.
//
// Options:
//
//   - "mode": "record" or "replay" (required).
//   - "path": the operation log file (required).
//   - "inner": record mode only — the backend recorded through (default
//     "sim"); inner backend options can be supplied as "inner.<key>".
//
// Recording captures the device command stream, so a replayed run must issue
// the same operations in the same order: open the same profile the same way
// and read the same amounts. Concurrent shards interleave their commands
// nondeterministically, so record sequential (WithShards(0)) sources when
// byte-identical replay is the goal; a divergent replay fails loudly instead
// of returning wrong bits.
func openReplayBackend(p BackendParams) (Device, error) {
	mode := p.option("mode", "")
	path := p.option("path", "")
	if path == "" {
		return nil, fmt.Errorf(`replay backend needs a "path" option`)
	}
	for k := range p.Options {
		switch k {
		case "mode", "path", "inner":
		default:
			if len(k) > 6 && k[:6] == "inner." {
				continue
			}
			return nil, fmt.Errorf("replay backend: unknown option %q", k)
		}
	}
	switch mode {
	case "record":
		innerOpts := map[string]string{}
		for k, v := range p.Options {
			if len(k) > 6 && k[:6] == "inner." {
				innerOpts[k[6:]] = v
			}
		}
		inner, err := OpenBackend(p.option("inner", "sim"), BackendParams{
			Manufacturer:  p.Manufacturer,
			Serial:        p.Serial,
			Deterministic: p.Deterministic,
			Geometry:      p.Geometry,
			Options:       innerOpts,
		})
		if err != nil {
			return nil, err
		}
		rec, err := newRecordDevice(inner, path, p.Manufacturer)
		if err != nil {
			closeDevice(inner)
			return nil, err
		}
		return rec, nil
	case "replay":
		return openReplayDevice(path, p)
	default:
		return nil, fmt.Errorf(`replay backend needs mode=record or mode=replay, got %q`, mode)
	}
}

// replayFormat versions the operation-log schema.
const replayFormat = 1

// replayHeader is the first line of an operation log: the identity a replayed
// device reports and the timing context needed to rebuild statistics.
type replayHeader struct {
	Format       int      `json:"format"`
	Serial       uint64   `json:"serial"`
	Manufacturer string   `json:"manufacturer,omitempty"`
	Geometry     Geometry `json:"geometry"`
	TemperatureC float64  `json:"temperature_c"`
	// TRCDNS is the device's nominal activation latency; replayed activates
	// below it count as reduced-tRCD activations in OpStats.
	TRCDNS float64 `json:"trcd_ns"`
}

// replayOp is one logged device operation. Results (Data) and failures (Err)
// are recorded so a replay reproduces both.
type replayOp struct {
	Op   string   `json:"op"`
	Bank int      `json:"bank,omitempty"`
	Row  int      `json:"row,omitempty"`
	Word int      `json:"word,omitempty"`
	TRCD float64  `json:"trcd,omitempty"`
	Temp float64  `json:"temp,omitempty"`
	Data []uint64 `json:"data,omitempty"`
	Err  string   `json:"err,omitempty"`
}

const (
	opActivate   = "act"
	opPrecharge  = "pre"
	opRefresh    = "ref"
	opReadWord   = "rd"
	opWriteWord  = "wr"
	opWriteRow   = "wrow"
	opReadRowRaw = "rraw"
	opStartupRow = "srow"
	opSetTemp    = "temp"
)

// activeRecordPaths guards against two live recorders sharing one log file:
// their buffered writes would interleave mid-line and corrupt the log while
// both runs report success. Opening a pool with a record-mode default
// backend is the easy way to trip this; each member needs its own path.
var (
	recordPathMu sync.Mutex
	recordPaths  = map[string]bool{}
)

func claimRecordPath(path string) (string, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		abs = path
	}
	recordPathMu.Lock()
	defer recordPathMu.Unlock()
	if recordPaths[abs] {
		return "", fmt.Errorf("replay log %s is already being recorded by another device; give each recorder its own path (pools: use WithDeviceBackend with per-member paths)", path)
	}
	recordPaths[abs] = true
	return abs, nil
}

func releaseRecordPath(abs string) {
	recordPathMu.Lock()
	defer recordPathMu.Unlock()
	delete(recordPaths, abs)
}

// recordDevice wraps an inner Device, appending every operation (arguments,
// results and errors) to the log. Close flushes and closes the log file.
type recordDevice struct {
	mu      sync.Mutex
	inner   Device
	f       *os.File      // drange:guardedby mu
	w       *bufio.Writer // drange:guardedby mu
	enc     *json.Encoder // drange:guardedby mu
	absPath string        // drange:guardedby mu
	// err is the sticky log-write failure.
	// drange:guardedby mu
	err error
}

//drange:holds mu construction: the recorder is not shared until newRecordDevice returns
func newRecordDevice(inner Device, path, manufacturer string) (*recordDevice, error) {
	abs, err := claimRecordPath(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		releaseRecordPath(abs)
		return nil, fmt.Errorf("opening replay log: %w", err)
	}
	w := bufio.NewWriter(f)
	r := &recordDevice{inner: inner, f: f, w: w, enc: json.NewEncoder(w), absPath: abs}
	hdr := replayHeader{
		Format:       replayFormat,
		Serial:       inner.Serial(),
		Manufacturer: manufacturer,
		Geometry:     inner.Geometry(),
		TemperatureC: inner.Temperature(),
		TRCDNS:       timing.NewLPDDR4().TRCD,
	}
	if err := r.enc.Encode(hdr); err != nil {
		f.Close()
		releaseRecordPath(abs)
		return nil, fmt.Errorf("writing replay log header: %w", err)
	}
	return r, nil
}

// logLocked appends one operation entry, capturing err (if any) in the entry.
func (r *recordDevice) logLocked(op replayOp, err error) {
	if err != nil {
		op.Err = err.Error()
	}
	if r.err == nil {
		if werr := r.enc.Encode(op); werr != nil {
			r.err = fmt.Errorf("drange: replay log write failed: %w", werr)
		}
	}
}

func (r *recordDevice) Serial() uint64     { return r.inner.Serial() }
func (r *recordDevice) Geometry() Geometry { return r.inner.Geometry() }
func (r *recordDevice) Temperature() float64 {
	return r.inner.Temperature()
}
func (r *recordDevice) OpStats() DeviceStats { return r.inner.OpStats() }

func (r *recordDevice) Activate(bank, row int, trcdNS float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.inner.Activate(bank, row, trcdNS)
	r.logLocked(replayOp{Op: opActivate, Bank: bank, Row: row, TRCD: trcdNS}, err)
	return r.failLocked(err)
}

func (r *recordDevice) Precharge(bank int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.inner.Precharge(bank)
	r.logLocked(replayOp{Op: opPrecharge, Bank: bank}, err)
	return r.failLocked(err)
}

func (r *recordDevice) Refresh() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.inner.Refresh()
	r.logLocked(replayOp{Op: opRefresh}, err)
	return r.failLocked(err)
}

func (r *recordDevice) ReadWord(bank, wordIdx int) ([]uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data, err := r.inner.ReadWord(bank, wordIdx)
	r.logLocked(replayOp{Op: opReadWord, Bank: bank, Word: wordIdx, Data: data}, err)
	return data, r.failLocked(err)
}

func (r *recordDevice) WriteWord(bank, wordIdx int, word []uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.inner.WriteWord(bank, wordIdx, word)
	r.logLocked(replayOp{Op: opWriteWord, Bank: bank, Word: wordIdx, Data: word}, err)
	return r.failLocked(err)
}

func (r *recordDevice) WriteRow(bank, row int, data []uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.inner.WriteRow(bank, row, data)
	r.logLocked(replayOp{Op: opWriteRow, Bank: bank, Row: row, Data: data}, err)
	return r.failLocked(err)
}

func (r *recordDevice) ReadRowRaw(bank, row int) ([]uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data, err := r.inner.ReadRowRaw(bank, row)
	r.logLocked(replayOp{Op: opReadRowRaw, Bank: bank, Row: row, Data: data}, err)
	return data, r.failLocked(err)
}

func (r *recordDevice) StartupRow(bank, row int) ([]uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	data, err := r.inner.StartupRow(bank, row)
	r.logLocked(replayOp{Op: opStartupRow, Bank: bank, Row: row, Data: data}, err)
	return data, r.failLocked(err)
}

func (r *recordDevice) SetTemperature(c float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.inner.SetTemperature(c)
	r.logLocked(replayOp{Op: opSetTemp, Temp: c}, err)
	return r.failLocked(err)
}

// failLocked surfaces a sticky log-write error in preference to the op result,
// so a run whose recording is incomplete cannot silently pass as recorded.
func (r *recordDevice) failLocked(opErr error) error {
	if r.err != nil {
		return r.err
	}
	return opErr
}

// Close flushes and closes the operation log, then closes the inner device.
func (r *recordDevice) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.absPath != "" {
		releaseRecordPath(r.absPath)
		r.absPath = ""
	}
	err := r.err
	if ferr := r.w.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("drange: flushing replay log: %w", ferr)
	}
	if cerr := r.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("drange: closing replay log: %w", cerr)
	}
	if cerr := closeDevice(r.inner); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// replayDevice serves a recorded operation log. Every call must match the
// next logged operation (kind and arguments); the logged result or error is
// returned. A divergent call — different op, different arguments, or reading
// past the end of the log — fails loudly rather than inventing data.
type replayDevice struct {
	mu     sync.Mutex
	hdr    replayHeader
	ops    []replayOp  // drange:guardedby mu
	cursor int         // drange:guardedby mu
	tempC  float64     // drange:guardedby mu
	stats  DeviceStats // drange:guardedby mu
}

//drange:holds mu construction: the device is not shared until openReplayDevice returns
func openReplayDevice(path string, p BackendParams) (*replayDevice, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening replay log: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("replay log %s is empty", path)
	}
	var hdr replayHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("replay log %s: bad header: %w", path, err)
	}
	if hdr.Format != replayFormat {
		return nil, fmt.Errorf("replay log %s: format %d, this build reads %d", path, hdr.Format, replayFormat)
	}
	// The requested identity must match the recorded run, for the same reason
	// Open rejects profile/device mismatches.
	if p.Serial != hdr.Serial {
		return nil, fmt.Errorf("replay log %s records serial %d, not %d", path, hdr.Serial, p.Serial)
	}
	if !p.Geometry.IsZero() && p.Geometry != hdr.Geometry {
		return nil, fmt.Errorf("replay log %s records geometry %+v, not %+v", path, hdr.Geometry, p.Geometry)
	}
	if p.Manufacturer != "" && hdr.Manufacturer != "" && p.Manufacturer != hdr.Manufacturer {
		return nil, fmt.Errorf("replay log %s records manufacturer %q, not %q", path, hdr.Manufacturer, p.Manufacturer)
	}
	d := &replayDevice{hdr: hdr, tempC: hdr.TemperatureC}
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var op replayOp
		if err := json.Unmarshal(sc.Bytes(), &op); err != nil {
			return nil, fmt.Errorf("replay log %s: op %d: %w", path, len(d.ops), err)
		}
		d.ops = append(d.ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading replay log %s: %w", path, err)
	}
	return d, nil
}

func (d *replayDevice) Serial() uint64     { return d.hdr.Serial }
func (d *replayDevice) Geometry() Geometry { return d.hdr.Geometry }
func (d *replayDevice) Temperature() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tempC
}
func (d *replayDevice) OpStats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// nextLocked matches the next logged operation against (op, want) — kind,
// address arguments, and for writes the data written — and returns it.
func (d *replayDevice) nextLocked(op string, want replayOp) (replayOp, error) {
	if d.cursor >= len(d.ops) {
		return replayOp{}, fmt.Errorf("drange: replay log exhausted after %d operations; the replayed run issued more device commands than were recorded (read fewer bytes, or re-record)", len(d.ops))
	}
	got := d.ops[d.cursor]
	if got.Op != op || got.Bank != want.Bank || got.Row != want.Row || got.Word != want.Word || got.TRCD != want.TRCD || got.Temp != want.Temp || !writeDataMatches(got, want) {
		return replayOp{}, fmt.Errorf("drange: replay diverged at operation %d: run issued %s%+v, log records %s (bank=%d row=%d word=%d); replay requires the same open sequence and read sizes as the recording",
			d.cursor, op, want, got.Op, got.Bank, got.Row, got.Word)
	}
	d.cursor++
	if got.Err != "" {
		return got, fmt.Errorf("%s", got.Err)
	}
	return got, nil
}

// writeDataMatches compares the data argument of write operations (reads
// carry results, not arguments, in Data).
func writeDataMatches(got, want replayOp) bool {
	if want.Op != opWriteWord && want.Op != opWriteRow {
		return true
	}
	if len(got.Data) != len(want.Data) {
		return false
	}
	for i, w := range want.Data {
		if got.Data[i] != w {
			return false
		}
	}
	return true
}

func (d *replayDevice) Activate(bank, row int, trcdNS float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := d.nextLocked(opActivate, replayOp{Bank: bank, Row: row, TRCD: trcdNS})
	if err == nil {
		d.stats.Activates++
		if trcdNS < d.hdr.TRCDNS {
			d.stats.ReducedTRCDAct++
		}
	}
	return err
}

func (d *replayDevice) Precharge(bank int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := d.nextLocked(opPrecharge, replayOp{Bank: bank})
	if err == nil {
		d.stats.Precharges++
	}
	return err
}

func (d *replayDevice) Refresh() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := d.nextLocked(opRefresh, replayOp{})
	if err == nil {
		d.stats.Refreshes++
	}
	return err
}

func (d *replayDevice) ReadWord(bank, wordIdx int) ([]uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	op, err := d.nextLocked(opReadWord, replayOp{Bank: bank, Word: wordIdx})
	if err != nil {
		return nil, err
	}
	d.stats.Reads++
	return append([]uint64(nil), op.Data...), nil
}

func (d *replayDevice) WriteWord(bank, wordIdx int, word []uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := d.nextLocked(opWriteWord, replayOp{Op: opWriteWord, Bank: bank, Word: wordIdx, Data: word})
	if err == nil {
		d.stats.Writes++
	}
	return err
}

func (d *replayDevice) WriteRow(bank, row int, data []uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := d.nextLocked(opWriteRow, replayOp{Op: opWriteRow, Bank: bank, Row: row, Data: data})
	if err == nil {
		d.stats.Writes += int64(d.hdr.Geometry.wordsPerRow())
	}
	return err
}

func (d *replayDevice) ReadRowRaw(bank, row int) ([]uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	op, err := d.nextLocked(opReadRowRaw, replayOp{Bank: bank, Row: row})
	if err != nil {
		return nil, err
	}
	return append([]uint64(nil), op.Data...), nil
}

func (d *replayDevice) StartupRow(bank, row int) ([]uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	op, err := d.nextLocked(opStartupRow, replayOp{Bank: bank, Row: row})
	if err != nil {
		return nil, err
	}
	return append([]uint64(nil), op.Data...), nil
}

func (d *replayDevice) SetTemperature(c float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, err := d.nextLocked(opSetTemp, replayOp{Temp: c})
	if err == nil {
		d.tempC = c
	}
	return err
}

// Remaining returns the number of unconsumed logged operations; a fully
// replayed run ends at zero.
func (d *replayDevice) Remaining() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.ops) - d.cursor
}

// parseFloatOption parses a float-valued backend option.
func parseFloatOption(p BackendParams, key string, def float64) (float64, error) {
	v, ok := p.Options[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("option %q: %w", key, err)
	}
	return f, nil
}
