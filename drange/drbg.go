package drange

// Two-tier serving: WithDRBG layers an SP 800-90A style deterministic random
// bit generator over the physical harvest path, turning a Source into the
// standard 90B + 90A pipeline — health-screened raw D-RaNGe bits seed (and
// periodically reseed) a fast DRBG, Read serves the DRBG tier at crypto
// speed, and ReadRaw keeps the raw physical tier available side by side. The
// entropy credit ledger accounts the exchange: every bias window the online
// health tests pass credits its bits, every seed consumed debits the seed
// length, so the screened-entropy flow backing the DRBG output stays
// auditable in Stats.

import (
	"errors"
	"fmt"

	"repro/internal/drbg"
)

// DRBGAlgorithm selects the deterministic bit generator construction behind
// WithDRBG.
type DRBGAlgorithm string

const (
	// DRBGChaCha20 is a fast-key-erasure DRBG over the ChaCha20 block
	// function — the default and the allocation-free fast tier. Every
	// Generate derives the request's output and a replacement key in one
	// pass, so past output is unrecoverable from captured state.
	DRBGChaCha20 DRBGAlgorithm = "chacha20"
	// DRBGCTRAES256 is the SP 800-90A CTR_DRBG using AES-256 without a
	// derivation function, pinned by the NIST CAVP vectors. Its
	// CTR_DRBG_Update rekeys AES on every request, which costs a small
	// per-request allocation — choose it for 90A conformance, DRBGChaCha20
	// for throughput.
	DRBGCTRAES256 DRBGAlgorithm = "ctr-aes256"
)

// defaultDRBGReseedInterval is the default number of Read requests served
// per seed. At the default request sizes this reseeds far more often than SP
// 800-90A requires — harvesting 48 screened bytes costs the simulator well
// under a millisecond, so the policy leans fresh.
const defaultDRBGReseedInterval = 1024

// DRBGPolicy configures the DRBG tier attached by WithDRBG. The zero value
// selects the defaults: ChaCha20, reseed every 1024 requests, 64 KiB
// per-request limit, no prediction resistance.
type DRBGPolicy struct {
	// Algorithm selects the construction ("" selects DRBGChaCha20).
	Algorithm DRBGAlgorithm
	// ReseedInterval is the number of DRBG requests served per seed before
	// fresh screened entropy is harvested (0 selects 1024; capped by the SP
	// 800-90A ceiling). A pool staggers its members' first intervals across
	// [interval, 2·interval) so reseed points spread out instead of
	// bunching.
	ReseedInterval int64
	// MaxRequestBytes caps one DRBG request; larger Reads are served in
	// multiple requests (0 selects 65536, the SP 800-90A per-request
	// ceiling).
	MaxRequestBytes int
	// PredictionResistance forces a reseed with fresh screened entropy
	// before every request, trading the raw harvest rate for the 90A
	// prediction-resistance guarantee. The DRBG tier then cannot outrun the
	// physical tier — use it for high-value keys, not bulk streams.
	PredictionResistance bool
	// Disabled turns the DRBG tier off, as if WithDRBG were not applied.
	Disabled bool
}

// withDefaults resolves zero fields.
func (p DRBGPolicy) withDefaults() DRBGPolicy {
	if p.Algorithm == "" {
		p.Algorithm = DRBGChaCha20
	}
	if p.ReseedInterval == 0 {
		p.ReseedInterval = defaultDRBGReseedInterval
	}
	if p.MaxRequestBytes == 0 {
		p.MaxRequestBytes = drbg.DefaultMaxRequestBytes
	}
	return p
}

// validate rejects out-of-range values (after withDefaults).
func (p DRBGPolicy) validate() error {
	switch p.Algorithm {
	case DRBGChaCha20, DRBGCTRAES256:
	default:
		return fmt.Errorf("drange: unknown DRBG algorithm %q (use DRBGChaCha20 or DRBGCTRAES256)", p.Algorithm)
	}
	if p.ReseedInterval < 0 {
		return fmt.Errorf("drange: negative DRBG reseed interval %d", p.ReseedInterval)
	}
	if p.MaxRequestBytes < 0 || p.MaxRequestBytes > drbg.MaxRequestBytes {
		return fmt.Errorf("drange: DRBG max request bytes %d outside (0, %d]", p.MaxRequestBytes, drbg.MaxRequestBytes)
	}
	return nil
}

// WithDRBG attaches the DRBG tier to an opened Source: Read (and ReadBits
// and Uint64) serve DRBG output expanded from health-screened raw entropy,
// while the new ReadRaw method keeps serving the raw physical tier, and
// Stats gains TierRaw/TierDRBG accounting plus the entropy credit ledger.
//
// The DRBG must expand screened entropy, so WithDRBG implies WithHealthTests
// with the default battery when none is configured; combining it with an
// explicitly Disabled health-test policy is an error. Seeds are harvested
// straight from the monitored raw stream — a WithPostprocess chain applies
// only to the raw tier. In a pool each member runs its own DRBG seeded from
// its own device, reseeds are staged across members by the least-loaded
// scheduler so a reseed never stalls serving, and a member whose seed
// harvest trips the health tests is handled by the health policy (evicted by
// default). It applies to Open and OpenPool, not Characterize.
func WithDRBG(p DRBGPolicy) Option {
	return func(o *options) { o.drbg = &p }
}

// resolveDRBG validates the WithDRBG policy and makes it imply the online
// health tests. It returns the resolved policy, or enabled=false when no
// DRBG was requested.
func (o *options) resolveDRBG() (DRBGPolicy, bool, error) {
	if o.drbg == nil || o.drbg.Disabled {
		return DRBGPolicy{}, false, nil
	}
	dp := o.drbg.withDefaults()
	if err := dp.validate(); err != nil {
		return DRBGPolicy{}, false, err
	}
	if o.healthTests != nil && o.healthTests.Disabled {
		return DRBGPolicy{}, false, fmt.Errorf("drange: WithDRBG requires the online health tests (the DRBG expands health-screened entropy); remove the Disabled health-test policy or disable the DRBG")
	}
	if o.healthTests == nil {
		o.healthTests = &HealthTestPolicy{}
	}
	return dp, true, nil
}

// errDRBGMemberEvicted signals that a member was evicted mid-seed-harvest
// (engine failure or health policy); scheduling re-picks.
var errDRBGMemberEvicted = errors.New("drange: pool member evicted during DRBG seed harvest")

// drbgState bundles one DRBG instance with its entropy credit ledger and its
// preallocated seed-harvest buffer. One drbgState serves one raw-entropy
// producer — a Generator, or one pool member — and is driven under the
// owner's lock like the health monitor it draws through.
type drbgState struct {
	policy DRBGPolicy
	// firstInterval shortens the first seed's request budget (pool
	// staggering); later seeds use the policy interval.
	firstInterval int64
	d             drbg.DRBG
	ledger        *drbg.Ledger
	// seedBuf is the reusable packed seed-harvest buffer, sized to the
	// construction's seed length so reseeds allocate nothing.
	seedBuf []byte
}

// newDRBGState allocates the shell — ledger and seed buffer — for a resolved
// policy. The caller registers the ledger as the monitor's credit sink,
// harvests the first seed into seedBuf, then calls instantiate.
func newDRBGState(p DRBGPolicy, firstInterval int64) *drbgState {
	s := &drbgState{policy: p, firstInterval: firstInterval, ledger: &drbg.Ledger{}}
	n := drbg.ChaChaSeedLen
	if p.Algorithm == DRBGCTRAES256 {
		n = drbg.CTRSeedLen
	}
	s.seedBuf = make([]byte, n)
	return s
}

// instantiate consumes the harvested seed in seedBuf, debiting the ledger.
func (s *drbgState) instantiate() error {
	s.ledger.DebitBits(int64(len(s.seedBuf)) * 8)
	opts := drbg.Options{
		ReseedInterval:  s.policy.ReseedInterval,
		FirstInterval:   s.firstInterval,
		MaxRequestBytes: s.policy.MaxRequestBytes,
	}
	var err error
	switch s.policy.Algorithm {
	case DRBGCTRAES256:
		s.d, err = drbg.NewCTR(s.seedBuf, nil, opts)
	default:
		s.d, err = drbg.NewChaCha(s.seedBuf, nil, opts)
	}
	return err
}

// reseedFromBuf folds the freshly harvested seedBuf into the DRBG state,
// debiting the ledger.
func (s *drbgState) reseedFromBuf() error {
	s.ledger.DebitBits(int64(len(s.seedBuf)) * 8)
	return s.d.Reseed(s.seedBuf, nil)
}

// stats snapshots the instance for Stats.
func (s *drbgState) stats() *DRBGStats {
	return &DRBGStats{
		Algorithm:            string(s.policy.Algorithm),
		Reseeds:              s.d.Reseeds(),
		Generates:            s.d.Generates(),
		PredictionResistance: s.policy.PredictionResistance,
		Credit: CreditStats{
			CreditedBits: s.ledger.Credited(),
			DebitedBits:  s.ledger.Debited(),
			BalanceBits:  s.ledger.Balance(),
		},
	}
}

// unpackBits expands the packed MSB-first bytes of buf into out, one bit per
// byte — the adapter ReadBits uses to serve the DRBG tier bit-granularly.
func unpackBits(out, buf []byte) {
	for i := range out {
		out[i] = buf[i>>3] >> (7 - i&7) & 1
	}
}
