package drange

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/health"
)

// HealthPolicy controls a pool's per-device health tracking. D-RaNGe's
// output quality rests on RNG cells staying unbiased at the characterized
// operating point; the paper's temperature study (Section 5.3) shows failure
// probabilities drift as the device leaves that point. A pool therefore
// monitors each device's harvested bitstream for bias drift and its reported
// temperature for drift away from the open-time baseline, and evicts devices
// that cross the limits so one bad chip cannot poison the aggregate stream.
type HealthPolicy struct {
	// WindowBits is the number of freshly harvested bits per device over
	// which bias is measured; at each full window the ones-fraction is
	// compared against one half. 0 selects 4096 (the binomial standard
	// deviation of the ones-fraction at 4096 bits is ~0.008, so the default
	// MaxBiasDelta of 0.1 sits ~13 sigma out — unreachable by healthy noise).
	WindowBits int
	// MaxBiasDelta is the eviction threshold for |ones-fraction − 0.5| over
	// a window. 0 selects 0.1; negative disables bias eviction. Unlike the
	// functional options, this config struct keeps zero-means-default
	// semantics so partial policies stay ergonomic; a strict
	// evict-on-any-measured-bias policy is any positive value below the
	// window's resolution (e.g. 0.5/WindowBits).
	MaxBiasDelta float64
	// MaxTempDriftC is the eviction threshold for the absolute temperature
	// drift (°C) from the device's open-time baseline, checked at every
	// window boundary. 0 selects 10; negative disables temperature eviction.
	MaxTempDriftC float64
	// Disabled turns all health tracking off.
	Disabled bool
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.WindowBits == 0 {
		p.WindowBits = 4096
	}
	// The window accumulator packs (ones, bits) into one 64-bit atomic with
	// 32 bits each; clamp absurd windows so the packing cannot overflow.
	if p.WindowBits > 1<<30 {
		p.WindowBits = 1 << 30
	}
	if p.MaxBiasDelta == 0 {
		p.MaxBiasDelta = 0.1
	}
	if p.MaxTempDriftC == 0 {
		p.MaxTempDriftC = 10
	}
	return p
}

// Pool is the multi-device Source returned by OpenPool. It multiplexes N
// devices — each with its own profile, backend and sharded harvesting engine
// — behind the ordinary Source interface, scheduling 64-bit word fetches to
// the least-loaded healthy device, tracking per-device health (bias and
// temperature drift per HealthPolicy) and evicting unhealthy devices without
// failing readers as long as one healthy device remains.
//
// The embedded servingCore carries the members and implements Read,
// ReadBits, ReadRaw, Uint64 and Close — the same implementations a Generator
// (a 1-member core) serves through.
type Pool struct {
	servingCore
}

// OpenPool opens one device per profile and multiplexes them behind a single
// Source. Each device runs its own sharded harvesting engine (WithShards
// selects the shards per device; default 1), so the pool's aggregate
// simulated throughput is the sum of the member rates — the fleet-scale
// counterpart of the paper's multi-channel scaling.
//
// Devices open through the default backend (WithBackend, else "sim"),
// overridable per profile index with WithDeviceBackend. Device health is
// tracked per HealthPolicy (WithHealth): a device whose harvested bitstream
// drifts from 50/50 or whose temperature drifts from its open-time baseline
// is evicted — its engine stops, its remaining bits are discarded, and reads
// continue seamlessly from the surviving devices. The last healthy device is
// never evicted (degraded output beats no output; the breakdown in Stats
// reports the violation instead). Stats carries a per-device breakdown in
// Stats.Devices.
//
// ctx cancellation stops every member engine. Close releases all members.
//
//drange:holds mu construction: the pool is not published until OpenPool returns
func OpenPool(ctx context.Context, profiles []*Profile, opts ...Option) (*Pool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("drange: OpenPool needs at least one profile")
	}
	o := buildOptions(opts)
	if err := o.rejectCharacterizationOnly(); err != nil {
		return nil, err
	}
	if o.device != nil {
		return nil, fmt.Errorf("drange: WithDevice does not apply to OpenPool (it opens one device per profile); use WithDeviceBackend or open single Sources")
	}
	for i := range o.deviceBackends {
		if i < 0 || i >= len(profiles) {
			return nil, fmt.Errorf("drange: WithDeviceBackend index %d outside the %d profiles", i, len(profiles))
		}
	}
	// Resolve the DRBG tier first: it implies the health tests, so the
	// member monitor construction below must already see the implied policy.
	drbgPolicy, drbgOn, err := o.resolveDRBG()
	if err != nil {
		return nil, err
	}
	shardsPerDevice := 1
	if o.shards != nil {
		if *o.shards < 0 {
			return nil, fmt.Errorf("drange: negative shard count %d", *o.shards)
		}
		if *o.shards > 0 {
			shardsPerDevice = *o.shards
		}
	}
	policy := HealthPolicy{}
	if o.health != nil {
		policy = *o.health
	}
	policy = policy.withDefaults()

	pctx, cancel := context.WithCancel(ctx)
	p := &Pool{}
	p.policy = policy
	p.cancel = cancel
	// Pool members are always engine-backed, so the core's lock-free fast
	// path is available.
	p.concurrent = true
	if o.healthTests != nil && !o.healthTests.Disabled {
		p.testsEnabled = true
		p.testsPolicy = o.healthTests.withDefaults(true)
	}
	if len(o.post) > 0 {
		chain, err := newPostChain(o.post)
		if err != nil {
			cancel()
			return nil, err
		}
		p.post = chain
	}
	fail := func(err error) (*Pool, error) {
		p.closeMembers()
		cancel()
		return nil, err
	}
	for i, profile := range profiles {
		if profile == nil {
			return fail(fmt.Errorf("drange: nil profile at index %d", i))
		}
		if err := profile.Validate(); err != nil {
			return fail(fmt.Errorf("drange: profile %d: %w", i, err))
		}
		// Identity options pin every member, with Open's mismatch semantics.
		if o.manufacturer != nil && *o.manufacturer != profile.Manufacturer {
			return fail(fmt.Errorf("drange: device mismatch: profile %d was characterized on manufacturer %q, not %q", i, profile.Manufacturer, *o.manufacturer))
		}
		if o.serial != nil && *o.serial != profile.Serial {
			return fail(fmt.Errorf("drange: device mismatch: profile %d was characterized on serial %d, not %d", i, profile.Serial, *o.serial))
		}
		if o.geometry != nil && *o.geometry != profile.Geometry {
			return fail(fmt.Errorf("drange: device mismatch: profile %d geometry %+v differs from requested %+v", i, profile.Geometry, *o.geometry))
		}
		memberOpts := *o
		if spec, ok := o.deviceBackends[i]; ok {
			memberOpts.backend = &spec
		}
		pat, err := parsePattern(profile.Characterization.Pattern)
		if err != nil {
			return fail(fmt.Errorf("drange: profile %d: %w", i, err))
		}
		sels, err := coreSelections(profile.EffectiveCells(), profile.EffectiveSelections())
		if err != nil {
			return fail(fmt.Errorf("drange: profile %d: %w", i, err))
		}
		deterministic := profile.Characterization.Deterministic
		if o.deterministic != nil {
			deterministic = *o.deterministic
		}
		trcd := profile.Characterization.TRCDNS
		if o.trcdNS != nil {
			trcd = *o.trcdNS
		}
		dev, pub, backend, err := memberOpts.resolveDevice(profile.Manufacturer, profile.Serial, deterministic, profile.Geometry)
		if err != nil {
			return fail(fmt.Errorf("drange: pool device %d: %w", i, err))
		}
		m := &servingMember{
			idx:       i,
			profile:   profile,
			backend:   backend,
			pub:       pub,
			dev:       dev,
			shards:    shardsPerDevice,
			trcdNS:    trcd,
			ownsDev:   true,
			baseTempC: pub.Temperature(),
		}
		p.members = append(p.members, m)
		// Same verification Open performs: a backend that ignores the
		// requested identity must not pool a device mismatching its profile
		// (harvesting another device's cell coordinates is not random).
		if s := pub.Serial(); s != profile.Serial {
			return fail(fmt.Errorf("drange: pool device %d mismatch: profile was characterized on serial %d, but the device reports %d", i, profile.Serial, s))
		}
		if dg := pub.Geometry(); dg != profile.Geometry {
			return fail(fmt.Errorf("drange: pool device %d mismatch: profile geometry %+v differs from the device's %+v", i, profile.Geometry, dg))
		}
		eng, err := core.NewEngine(pctx, dev, sels, core.EngineConfig{
			Shards: shardsPerDevice,
			TRNG:   core.TRNGConfig{TRCDNS: trcd, Pattern: pat},
		})
		if err != nil {
			return fail(fmt.Errorf("drange: pool device %d: %w", i, err))
		}
		m.src, m.eng = eng, eng
		m.fastEng.Store(eng)
		if p.testsEnabled {
			mon, err := health.New(p.testsPolicy.config())
			if err != nil {
				return fail(fmt.Errorf("drange: %w", err))
			}
			m.monitor, m.startupOK = mon, true
		}
	}
	if err := p.runStartupTests(); err != nil {
		return fail(err)
	}
	if drbgOn {
		p.drbgOn, p.drbgPolicy = true, drbgPolicy
		if err := p.instantiateDRBGs(); err != nil {
			return fail(err)
		}
	}
	// The recharacterizer starts last, once the member set is final: members
	// retired before this point (startup failures are terminal anyway) were
	// never quarantined, so the channel starts empty.
	if o.rechar != nil && !o.rechar.Disabled {
		p.pctx = pctx
		p.recharOn = true
		p.recharPolicy = o.rechar.withDefaults()
		p.recharCh = make(chan *servingMember, len(p.members))
		p.recharWG.Add(1)
		go p.recharacterizer(pctx)
	}
	return p, nil
}

// Devices returns the number of devices the pool opened (evicted included).
func (p *Pool) Devices() int { return len(p.members) }

// Stats returns the pool's aggregate accounting plus the per-device
// breakdown in Stats.Devices. Shard entries across all devices are
// flattened into Stats.Shards with globally renumbered shard indices;
// evicted devices keep reporting the totals they reached before eviction.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := Stats{BitsDelivered: p.delivered.Load()}
	if p.testsEnabled {
		out.Health = &HealthStats{SymbolBits: p.testsPolicy.SymbolBits, StartupPassed: true}
	}
	out.TierRaw = TierStats{Reads: p.tierRawReads.Load(), Bytes: p.tierRawBytes.Load()}
	out.TierDRBG = TierStats{Reads: p.tierDRBGReads.Load(), Bytes: p.tierDRBGBytes.Load()}
	if p.drbgOn {
		out.DRBG = &DRBGStats{
			Algorithm:            string(p.drbgPolicy.Algorithm),
			PredictionResistance: p.drbgPolicy.PredictionResistance,
		}
	}
	if p.recharOn {
		out.Lifecycle = &LifecycleStats{}
	}
	bitsPerNS := 0.0
	shardIdx := 0
	for _, m := range p.members {
		est := statsFromEngine(m.eng.Stats())
		state := m.lifecycle()
		ds := PoolDeviceStats{
			Device:              m.idx,
			Serial:              m.profile.Serial,
			Backend:             m.backend,
			Healthy:             state == memberServing,
			Evicted:             state == memberEvicted,
			State:               state.String(),
			Reason:              m.reason,
			BiasDelta:           m.biasDelta,
			TemperatureC:        m.lastTemperature(),
			Readmissions:        m.readmissions,
			Recharacterizations: m.recharacterizations,
			RecharFailures:      m.recharFailures,
			LastRecharMS:        m.lastRecharMS,
			ProfileDeltas:       len(m.profile.Deltas),
			BitsHarvested:       est.BitsHarvested,
			BitsDelivered:       m.delivered.Load(),
			ThroughputMbps:      est.AggregateThroughputMbps,
			Latency64NS:         est.Latency64NS,
			Shards:              est.Shards,
		}
		if lc := out.Lifecycle; lc != nil {
			switch state {
			case memberServing:
				lc.Serving++
			case memberQuarantined:
				lc.Quarantined++
			case memberRecharacterizing:
				lc.Recharacterizing++
			case memberReadmitting:
				lc.Readmitting++
			case memberEvicted:
				lc.Evicted++
			}
			lc.Readmissions += m.readmissions
			lc.Recharacterizations += m.recharacterizations
			lc.RecharFailures += m.recharFailures
		}
		if m.monitor != nil {
			ds.Health = healthStatsFrom(m.monitor, m.blockedWindows, m.startupOK)
			agg := out.Health
			agg.BitsTested += ds.Health.BitsTested
			agg.SymbolsTested += ds.Health.SymbolsTested
			agg.RCTTrips += ds.Health.RCTTrips
			agg.APTTrips += ds.Health.APTTrips
			agg.BiasTrips += ds.Health.BiasTrips
			agg.TotalTrips += ds.Health.TotalTrips
			agg.BlockedWindows += ds.Health.BlockedWindows
			if ds.Health.LongestRun > agg.LongestRun {
				agg.LongestRun = ds.Health.LongestRun
			}
			if !ds.Health.StartupPassed {
				agg.StartupPassed = false
			}
			if ds.Health.LastViolation != "" {
				agg.LastViolation = ds.Health.LastViolation
			}
		}
		if m.drbg != nil {
			ds.DRBG = m.drbg.stats()
			if out.DRBG != nil {
				out.DRBG.Reseeds += ds.DRBG.Reseeds
				out.DRBG.Generates += ds.DRBG.Generates
				out.DRBG.Credit.CreditedBits += ds.DRBG.Credit.CreditedBits
				out.DRBG.Credit.DebitedBits += ds.DRBG.Credit.DebitedBits
				out.DRBG.Credit.BalanceBits += ds.DRBG.Credit.BalanceBits
			}
		}
		out.Devices = append(out.Devices, ds)
		out.BitsHarvested += est.BitsHarvested
		for _, ss := range est.Shards {
			ss.Shard = shardIdx
			shardIdx++
			out.Shards = append(out.Shards, ss)
		}
		if state == memberServing && est.AggregateThroughputMbps > 0 {
			bitsPerNS += est.AggregateThroughputMbps / 1000.0
		}
	}
	if bitsPerNS > 0 {
		out.AggregateThroughputMbps = bitsPerNS * 1000.0
		out.Latency64NS = 64.0 / bitsPerNS
	}
	return out
}

// lastTemperature reads the member's device temperature; an evicted member
// reports its baseline (its device may already be closed). Members merely out
// of serving for re-characterization keep their devices open, so they report
// live temperatures.
func (m *servingMember) lastTemperature() float64 {
	if m.lifecycle() == memberEvicted {
		return m.baseTempC
	}
	return m.pub.Temperature()
}

var _ Source = (*Pool)(nil)
