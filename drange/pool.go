package drange

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/health"
)

// HealthPolicy controls a pool's per-device health tracking. D-RaNGe's
// output quality rests on RNG cells staying unbiased at the characterized
// operating point; the paper's temperature study (Section 5.3) shows failure
// probabilities drift as the device leaves that point. A pool therefore
// monitors each device's harvested bitstream for bias drift and its reported
// temperature for drift away from the open-time baseline, and evicts devices
// that cross the limits so one bad chip cannot poison the aggregate stream.
type HealthPolicy struct {
	// WindowBits is the number of freshly harvested bits per device over
	// which bias is measured; at each full window the ones-fraction is
	// compared against one half. 0 selects 4096 (the binomial standard
	// deviation of the ones-fraction at 4096 bits is ~0.008, so the default
	// MaxBiasDelta of 0.1 sits ~13 sigma out — unreachable by healthy noise).
	WindowBits int
	// MaxBiasDelta is the eviction threshold for |ones-fraction − 0.5| over
	// a window. 0 selects 0.1; negative disables bias eviction. Unlike the
	// functional options, this config struct keeps zero-means-default
	// semantics so partial policies stay ergonomic; a strict
	// evict-on-any-measured-bias policy is any positive value below the
	// window's resolution (e.g. 0.5/WindowBits).
	MaxBiasDelta float64
	// MaxTempDriftC is the eviction threshold for the absolute temperature
	// drift (°C) from the device's open-time baseline, checked at every
	// window boundary. 0 selects 10; negative disables temperature eviction.
	MaxTempDriftC float64
	// Disabled turns all health tracking off.
	Disabled bool
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.WindowBits == 0 {
		p.WindowBits = 4096
	}
	// The window accumulator packs (ones, bits) into one 64-bit atomic with
	// 32 bits each; clamp absurd windows so the packing cannot overflow.
	if p.WindowBits > 1<<30 {
		p.WindowBits = 1 << 30
	}
	if p.MaxBiasDelta == 0 {
		p.MaxBiasDelta = 0.1
	}
	if p.MaxTempDriftC == 0 {
		p.MaxTempDriftC = 10
	}
	return p
}

// poolMember is one device of a pool: its profile, backend device, sharded
// engine, health accounting, and the partially consumed packed 64-bit word
// between engine and pool scheduler.
type poolMember struct {
	idx     int
	profile *Profile
	backend string
	pub     Device
	eng     *core.Engine
	ownsDev bool

	baseTempC float64

	// evicted is lock-free so the concurrent read fast path skips dead
	// members without the pool mutex; reason is guarded by p.mu.
	evicted atomic.Bool // drange:atomic
	reason  string      // drange:guardedby mu

	// fetched counts bits pulled from this member's engine — the load metric
	// of the least-loaded scheduler. Batches discarded under
	// HealthActionBlock count too, so a tripping member cannot pin the
	// scheduler while healthy members idle. delivered counts bits that
	// reached callers. Both are atomics: the concurrent read fast path
	// updates them without the pool mutex.
	fetched   atomic.Int64 // drange:atomic
	delivered atomic.Int64 // drange:atomic

	// win accumulates the current bias window with the ones count in the
	// high 32 bits and the bit count in the low 32 (one atomic, so a
	// concurrent snapshot can never pair one window's ones with another's
	// bits); biasDelta holds |ones-fraction − 0.5| of the last completed
	// window (guarded by p.mu).
	win       atomic.Int64 // drange:atomic
	biasDelta float64      // drange:guardedby mu

	// monitor streams this member's harvested bits through the online
	// health tests (nil unless WithHealthTests is attached);
	// blockedWindows counts batches discarded under HealthActionBlock and
	// startupOK records the startup self-test outcome.
	monitor        *health.Monitor // drange:guardedby mu
	blockedWindows int64           // drange:guardedby mu
	startupOK      bool            // drange:guardedby mu

	// blockedEpoch/blockedInRead implement the per-member HealthActionBlock
	// budget: blockedInRead counts batches this member discarded within the
	// read identified by the pool's readEpoch, so one member exhausting its
	// budget is reported without a shared counter throttling the others.
	blockedEpoch  int64 // drange:guardedby mu
	blockedInRead int   // drange:guardedby mu

	// drbg is this member's DRBG instance under WithDRBG (nil otherwise, or
	// when the member was evicted before instantiation): each member expands
	// seeds harvested from its own device through its own monitor, so one
	// drifting device can never contaminate another member's DRBG state.
	drbg *drbgState // drange:guardedby mu

	// cur holds up to 64 bits fetched from the engine but not yet handed
	// out, packed with the next undelivered bit at the most significant
	// position (locked path only).
	cur     uint64 // drange:guardedby mu
	curBits int    // drange:guardedby mu
}

// addWindow folds ones set bits out of n into the member's packed bias
// window and returns the window's new bit count.
func (m *poolMember) addWindow(ones, n int) int64 {
	return m.win.Add(int64(ones)<<32|int64(n)) & 0xffffffff
}

// takeLocked removes and returns the top k bits of the member's buffered
// word (k <= curBits), first stream bit at the most significant position of
// the k-bit result.
func (m *poolMember) takeLocked(k int) uint64 {
	v := m.cur >> uint(64-k)
	m.cur <<= uint(k)
	m.curBits -= k
	m.delivered.Add(int64(k))
	return v
}

// Pool is the multi-device Source returned by OpenPool. It multiplexes N
// devices — each with its own profile, backend and sharded harvesting engine
// — behind the ordinary Source interface, scheduling 64-bit word fetches to
// the least-loaded healthy device, tracking per-device health (bias and
// temperature drift per HealthPolicy) and evicting unhealthy devices without
// failing readers as long as one healthy device remains.
type Pool struct {
	mu      sync.Mutex
	members []*poolMember
	policy  HealthPolicy
	// testsEnabled/testsPolicy carry the WithHealthTests policy (resolved
	// with pool defaults: trips evict the offending member).
	testsEnabled bool
	testsPolicy  HealthTestPolicy
	post         *postChain
	cancel       context.CancelFunc

	// remainder reports whether any member holds sub-word buffered bits
	// from a bit-granular read; while set, Read takes the locked path so
	// those bits are served in order before fresh engine words (mixing
	// ReadBits and Read must drain one well-defined stream).
	remainder atomic.Bool // drange:atomic

	// readEpoch numbers locked reads for the per-member blocked budget;
	// blockCause remembers why a member was benched in the current read, so
	// a read that runs out of members reports the health trip rather than a
	// bare scheduling error.
	readEpoch       int64        // drange:guardedby mu
	blockCause      *HealthError // drange:guardedby mu
	blockCauseEpoch int64        // drange:guardedby mu

	// drbgOn/drbgPolicy carry the resolved WithDRBG policy (both fixed at
	// open time; per-member DRBG state lives on the members).
	drbgOn     bool
	drbgPolicy DRBGPolicy

	// Per-tier serving accounting (atomic: the raw tier's lock-free fast
	// path updates them without mu).
	tierRawReads  atomic.Int64 // drange:atomic
	tierRawBytes  atomic.Int64 // drange:atomic
	tierDRBGReads atomic.Int64 // drange:atomic
	tierDRBGBytes atomic.Int64 // drange:atomic

	delivered atomic.Int64 // drange:atomic
	closed    atomic.Bool  // drange:atomic
}

// OpenPool opens one device per profile and multiplexes them behind a single
// Source. Each device runs its own sharded harvesting engine (WithShards
// selects the shards per device; default 1), so the pool's aggregate
// simulated throughput is the sum of the member rates — the fleet-scale
// counterpart of the paper's multi-channel scaling.
//
// Devices open through the default backend (WithBackend, else "sim"),
// overridable per profile index with WithDeviceBackend. Device health is
// tracked per HealthPolicy (WithHealth): a device whose harvested bitstream
// drifts from 50/50 or whose temperature drifts from its open-time baseline
// is evicted — its engine stops, its remaining bits are discarded, and reads
// continue seamlessly from the surviving devices. The last healthy device is
// never evicted (degraded output beats no output; the breakdown in Stats
// reports the violation instead). Stats carries a per-device breakdown in
// Stats.Devices.
//
// ctx cancellation stops every member engine. Close releases all members.
//
//drange:holds mu construction: the pool is not published until OpenPool returns
func OpenPool(ctx context.Context, profiles []*Profile, opts ...Option) (*Pool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("drange: OpenPool needs at least one profile")
	}
	o := buildOptions(opts)
	if err := o.rejectCharacterizationOnly(); err != nil {
		return nil, err
	}
	if o.device != nil {
		return nil, fmt.Errorf("drange: WithDevice does not apply to OpenPool (it opens one device per profile); use WithDeviceBackend or open single Sources")
	}
	for i := range o.deviceBackends {
		if i < 0 || i >= len(profiles) {
			return nil, fmt.Errorf("drange: WithDeviceBackend index %d outside the %d profiles", i, len(profiles))
		}
	}
	// Resolve the DRBG tier first: it implies the health tests, so the
	// member monitor construction below must already see the implied policy.
	drbgPolicy, drbgOn, err := o.resolveDRBG()
	if err != nil {
		return nil, err
	}
	shardsPerDevice := 1
	if o.shards != nil {
		if *o.shards < 0 {
			return nil, fmt.Errorf("drange: negative shard count %d", *o.shards)
		}
		if *o.shards > 0 {
			shardsPerDevice = *o.shards
		}
	}
	policy := HealthPolicy{}
	if o.health != nil {
		policy = *o.health
	}
	policy = policy.withDefaults()

	pctx, cancel := context.WithCancel(ctx)
	p := &Pool{policy: policy, cancel: cancel}
	if o.healthTests != nil && !o.healthTests.Disabled {
		p.testsEnabled = true
		p.testsPolicy = o.healthTests.withDefaults(true)
	}
	if len(o.post) > 0 {
		chain, err := newPostChain(o.post)
		if err != nil {
			cancel()
			return nil, err
		}
		p.post = chain
	}
	fail := func(err error) (*Pool, error) {
		p.closeMembers()
		cancel()
		return nil, err
	}
	for i, profile := range profiles {
		if profile == nil {
			return fail(fmt.Errorf("drange: nil profile at index %d", i))
		}
		if err := profile.Validate(); err != nil {
			return fail(fmt.Errorf("drange: profile %d: %w", i, err))
		}
		// Identity options pin every member, with Open's mismatch semantics.
		if o.manufacturer != nil && *o.manufacturer != profile.Manufacturer {
			return fail(fmt.Errorf("drange: device mismatch: profile %d was characterized on manufacturer %q, not %q", i, profile.Manufacturer, *o.manufacturer))
		}
		if o.serial != nil && *o.serial != profile.Serial {
			return fail(fmt.Errorf("drange: device mismatch: profile %d was characterized on serial %d, not %d", i, profile.Serial, *o.serial))
		}
		if o.geometry != nil && *o.geometry != profile.Geometry {
			return fail(fmt.Errorf("drange: device mismatch: profile %d geometry %+v differs from requested %+v", i, profile.Geometry, *o.geometry))
		}
		memberOpts := *o
		if spec, ok := o.deviceBackends[i]; ok {
			memberOpts.backend = &spec
		}
		pat, err := parsePattern(profile.Characterization.Pattern)
		if err != nil {
			return fail(fmt.Errorf("drange: profile %d: %w", i, err))
		}
		sels, err := coreSelections(profile.Cells, profile.Selections)
		if err != nil {
			return fail(fmt.Errorf("drange: profile %d: %w", i, err))
		}
		deterministic := profile.Characterization.Deterministic
		if o.deterministic != nil {
			deterministic = *o.deterministic
		}
		trcd := profile.Characterization.TRCDNS
		if o.trcdNS != nil {
			trcd = *o.trcdNS
		}
		dev, pub, backend, err := memberOpts.resolveDevice(profile.Manufacturer, profile.Serial, deterministic, profile.Geometry)
		if err != nil {
			return fail(fmt.Errorf("drange: pool device %d: %w", i, err))
		}
		m := &poolMember{
			idx:       i,
			profile:   profile,
			backend:   backend,
			pub:       pub,
			ownsDev:   true,
			baseTempC: pub.Temperature(),
		}
		p.members = append(p.members, m)
		// Same verification Open performs: a backend that ignores the
		// requested identity must not pool a device mismatching its profile
		// (harvesting another device's cell coordinates is not random).
		if s := pub.Serial(); s != profile.Serial {
			return fail(fmt.Errorf("drange: pool device %d mismatch: profile was characterized on serial %d, but the device reports %d", i, profile.Serial, s))
		}
		if dg := pub.Geometry(); dg != profile.Geometry {
			return fail(fmt.Errorf("drange: pool device %d mismatch: profile geometry %+v differs from the device's %+v", i, profile.Geometry, dg))
		}
		eng, err := core.NewEngine(pctx, dev, sels, core.EngineConfig{
			Shards: shardsPerDevice,
			TRNG:   core.TRNGConfig{TRCDNS: trcd, Pattern: pat},
		})
		if err != nil {
			return fail(fmt.Errorf("drange: pool device %d: %w", i, err))
		}
		m.eng = eng
		if p.testsEnabled {
			mon, err := health.New(p.testsPolicy.config())
			if err != nil {
				return fail(fmt.Errorf("drange: %w", err))
			}
			m.monitor, m.startupOK = mon, true
		}
	}
	if err := p.runStartupTests(); err != nil {
		return fail(err)
	}
	if drbgOn {
		p.drbgOn, p.drbgPolicy = true, drbgPolicy
		if err := p.instantiateDRBGs(); err != nil {
			return fail(err)
		}
	}
	return p, nil
}

// instantiateDRBGs seeds one DRBG per healthy member from the member's own
// engine through the member's own monitor. First reseed points are staggered
// across [interval, 2·interval): member k of n gets interval + k·⌈interval/n⌉
// extra first-seed budget, so the members never fall due in the same read and
// the staged reseeds of drbgReadLocked can always run on a member that is not
// serving. A member whose seed harvest trips the health tests follows the
// open-time semantics of runStartupTests: the evict policy drops it (reads
// reroute), any other policy fails the open.
//
//drange:holds mu construction: runs from OpenPool before the pool is published
func (p *Pool) instantiateDRBGs() error {
	n := int64(p.healthyLocked())
	if n == 0 {
		return fmt.Errorf("drange: pool has no healthy devices left (%s)", p.evictionSummaryLocked())
	}
	interval := p.drbgPolicy.ReseedInterval
	step := (interval + n - 1) / n
	k := int64(0)
	seeded := 0
	for _, m := range p.members {
		if m.evicted.Load() {
			continue
		}
		s := newDRBGState(p.drbgPolicy, interval+k*step)
		k++
		if m.monitor != nil {
			m.monitor.SetCreditSink(s.ledger)
		}
		if err := p.harvestSeedLocked(m, s.seedBuf); err != nil {
			if errors.Is(err, errDRBGMemberEvicted) {
				continue
			}
			return err
		}
		if err := s.instantiate(); err != nil {
			return err
		}
		m.drbg = s
		seeded++
	}
	if seeded == 0 {
		return fmt.Errorf("drange: no pool device produced a clean DRBG seed (%s)", p.evictionSummaryLocked())
	}
	return nil
}

// harvestSeedLocked fills seed with packed bytes from m's engine, streaming
// them through m's monitor with the same trip policies, load accounting and
// bias-window bookkeeping as nextMemberWithBitsLocked. It returns
// errDRBGMemberEvicted when the harvest cost m its pool membership (engine
// failure or evict policy), so callers re-pick instead of failing the read.
// Callers hold p.mu.
func (p *Pool) harvestSeedLocked(m *poolMember, seed []byte) error {
	blocked := 0
	for {
		if err := m.eng.ReadPacked(seed); err != nil {
			if p.healthyLocked() <= 1 {
				return fmt.Errorf("drange: pool device %d (last healthy device): %w", m.idx, err)
			}
			p.evictLocked(m, fmt.Sprintf("engine failure: %v", err))
			return errDRBGMemberEvicted
		}
		m.fetched.Add(int64(len(seed)) * 8)
		if !p.policy.Disabled {
			ones := 0
			for _, b := range seed {
				ones += bits.OnesCount8(b)
			}
			if w := m.addWindow(ones, len(seed)*8); w >= int64(p.policy.WindowBits) {
				p.completeWindowLocked(m)
				if m.evicted.Load() {
					return errDRBGMemberEvicted
				}
			}
		}
		if m.monitor == nil {
			return nil
		}
		v := m.monitor.IngestPacked(seed, len(seed)*8)
		if v == nil {
			return nil
		}
		switch p.testsPolicy.OnFailure {
		case HealthActionError:
			return &HealthError{Test: string(v.Test), Device: m.idx, Detail: v.Detail}
		case HealthActionBlock:
			m.monitor.Reset()
			m.blockedWindows++
			blocked++
			if blocked >= p.testsPolicy.MaxBlockedWindows {
				return &HealthError{Test: "blocked", Device: m.idx, Detail: fmt.Sprintf(
					"no clean seed after discarding %d (last violation: %s: %s)", blocked, v.Test, v.Detail)}
			}
		default: // HealthActionEvict
			p.evictLocked(m, fmt.Sprintf("health test %s tripped: %s", v.Test, v.Detail))
			if m.evicted.Load() {
				return errDRBGMemberEvicted
			}
			// The last healthy member is retained (degraded output beats no
			// output): use the seed with the violation recorded in Reason and
			// the trip counters.
			m.monitor.Reset()
			return nil
		}
	}
}

// runStartupTests runs the startup self-test over every member's first
// StartupBits bits before the pool serves a byte. Under the HealthActionEvict
// action a failing member is evicted at open (it never serves); unlike
// runtime eviction this may empty the pool, which fails the open — a fleet
// where every device flunks its self-test must not come up at all. Any other
// action fails the open on the first failing member.
//
//drange:holds mu construction: runs from OpenPool before the pool is published
func (p *Pool) runStartupTests() error {
	if !p.testsEnabled || p.testsPolicy.StartupBits <= 0 {
		return nil
	}
	var firstErr error
	failed := 0
	for _, m := range p.members {
		sample, err := m.eng.ReadBits(p.testsPolicy.StartupBits)
		if err != nil {
			return fmt.Errorf("drange: pool device %d startup sample: %w", m.idx, err)
		}
		serr := runStartup(sample, p.testsPolicy, m.idx)
		if serr == nil {
			continue
		}
		failed++
		if firstErr == nil {
			firstErr = serr
		}
		if p.testsPolicy.OnFailure != HealthActionEvict {
			return serr
		}
		m.startupOK = false
		m.evicted.Store(true)
		m.reason = fmt.Sprintf("startup health test failed: %v", serr)
		m.eng.Close()
		if m.ownsDev {
			closeDevice(m.pub)
		}
	}
	if failed == len(p.members) {
		return fmt.Errorf("drange: every pool device failed its startup health test: %w", firstErr)
	}
	return nil
}

// Devices returns the number of devices the pool opened (evicted included).
func (p *Pool) Devices() int { return len(p.members) }

// Healthy returns the number of devices currently serving reads.
func (p *Pool) Healthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthyLocked()
}

// healthyLocked counts non-evicted members. Callers hold p.mu.
func (p *Pool) healthyLocked() int {
	n := 0
	for _, m := range p.members {
		if !m.evicted.Load() {
			n++
		}
	}
	return n
}

// evictLocked removes a member from scheduling: its engine stops, its device
// closes, and its buffered bits are discarded. The last healthy member is
// never evicted — the reason is recorded for Stats but reads continue.
// Callers hold p.mu.
func (p *Pool) evictLocked(m *poolMember, reason string) {
	if m.evicted.Load() {
		return
	}
	if p.healthyLocked() <= 1 {
		m.reason = fmt.Sprintf("unhealthy but retained (last device): %s", reason)
		return
	}
	m.evicted.Store(true)
	m.reason = reason
	m.cur, m.curBits = 0, 0
	m.eng.Close()
	if m.ownsDev {
		closeDevice(m.pub)
	}
}

// completeWindowLocked applies the health policy to a member whose bias
// window just filled, snapshotting and resetting the window atomics. A
// concurrent reader may have completed the window already; the re-check under
// the lock makes that a no-op. Callers hold p.mu.
func (p *Pool) completeWindowLocked(m *poolMember) {
	if m.win.Load()&0xffffffff < int64(p.policy.WindowBits) || m.evicted.Load() {
		return
	}
	w := m.win.Swap(0)
	ones, winBits := w>>32, w&0xffffffff
	if p.policy.Disabled || winBits == 0 {
		return
	}
	m.biasDelta = float64(ones)/float64(winBits) - 0.5
	if m.biasDelta < 0 {
		m.biasDelta = -m.biasDelta
	}
	if p.policy.MaxBiasDelta >= 0 && m.biasDelta > p.policy.MaxBiasDelta {
		p.evictLocked(m, fmt.Sprintf("bias drift: |ones-fraction-0.5| = %.3f over %d bits exceeds %.3f",
			m.biasDelta, p.policy.WindowBits, p.policy.MaxBiasDelta))
		return
	}
	if p.policy.MaxTempDriftC >= 0 {
		drift := m.pub.Temperature() - m.baseTempC
		if drift < 0 {
			drift = -drift
		}
		if drift > p.policy.MaxTempDriftC {
			p.evictLocked(m, fmt.Sprintf("temperature drift: %.1f °C from the %.1f °C baseline exceeds %.1f °C",
				drift, m.baseTempC, p.policy.MaxTempDriftC))
			return
		}
	}
	// A window with no violation clears a retained-device complaint, so a
	// transient excursion does not flag the device forever.
	if !m.evicted.Load() {
		m.reason = ""
	}
}

// nextMemberLocked picks the healthy member with the least load (fewest bits
// fetched; ties break to the lowest index, keeping the schedule — and hence
// the output stream — deterministic under deterministic noise). Callers hold
// p.mu.
func (p *Pool) nextMemberLocked() *poolMember {
	var best *poolMember
	var bestFetched int64
	for _, m := range p.members {
		if m.evicted.Load() || p.blockedOutLocked(m) {
			continue
		}
		if f := m.fetched.Load(); best == nil || f < bestFetched {
			best, bestFetched = m, f
		}
	}
	return best
}

// blockedOutLocked reports whether m exhausted its HealthActionBlock budget
// within the current read and sits benched until the next one. Callers hold
// p.mu.
func (p *Pool) blockedOutLocked(m *poolMember) bool {
	return p.testsEnabled && m.blockedEpoch == p.readEpoch &&
		m.blockedInRead >= p.testsPolicy.MaxBlockedWindows
}

// nextMemberWithBitsLocked returns the least-loaded healthy member with
// buffered bits, fetching one packed 64-bit word from its engine when its
// buffer is empty — the per-fetch granularity that keeps member interleaving
// fine-grained for the bias monitor while amortising the engine's consumer
// lock. A member whose engine fails is evicted and scheduling re-picks; the
// call only fails once no healthy member remains (or a health-test policy
// says so). Callers hold p.mu.
func (p *Pool) nextMemberWithBitsLocked() (*poolMember, error) {
	for {
		m := p.nextMemberLocked()
		if m == nil {
			// Members benched over their blocked budget don't count as
			// evicted; if one of them is why nobody can serve, surface the
			// health trip (a pool of only dead-blocking devices must fail
			// loudly, not stall).
			if p.blockCause != nil && p.blockCauseEpoch == p.readEpoch {
				return nil, p.blockCause
			}
			return nil, fmt.Errorf("drange: pool has no healthy devices left (%s)", p.evictionSummaryLocked())
		}
		if m.curBits > 0 {
			return m, nil
		}
		var buf [8]byte
		if err := m.eng.ReadPacked(buf[:]); err != nil {
			// Engine failure (device error, cancelled context): evict and
			// reschedule. The eviction keeps the last member, so a pool
			// whose every engine is dead surfaces the error above.
			if p.healthyLocked() <= 1 {
				return nil, fmt.Errorf("drange: pool device %d (last healthy device): %w", m.idx, err)
			}
			p.evictLocked(m, fmt.Sprintf("engine failure: %v", err))
			continue
		}
		if m.monitor != nil {
			if v := m.monitor.IngestPacked(buf[:], 64); v != nil {
				switch p.testsPolicy.OnFailure {
				case HealthActionError:
					return nil, &HealthError{Test: string(v.Test), Device: m.idx, Detail: v.Detail}
				case HealthActionBlock:
					// Discard the dirty batch and refetch. The discarded
					// batch still counts as load, so the least-loaded
					// scheduler rotates to healthy members instead of
					// re-picking the tripping one forever; the budget is
					// per member per read, so a member that exhausts it is
					// benched for the rest of the read while the healthy
					// members keep serving.
					m.monitor.Reset()
					m.blockedWindows++
					m.fetched.Add(64)
					if m.blockedEpoch != p.readEpoch {
						m.blockedEpoch, m.blockedInRead = p.readEpoch, 0
					}
					m.blockedInRead++
					if m.blockedInRead >= p.testsPolicy.MaxBlockedWindows {
						p.blockCause = &HealthError{Test: "blocked", Device: m.idx, Detail: fmt.Sprintf(
							"no clean batch after discarding %d (last violation: %s: %s)", m.blockedInRead, v.Test, v.Detail)}
						p.blockCauseEpoch = p.readEpoch
					}
					continue
				default: // HealthActionEvict
					p.evictLocked(m, fmt.Sprintf("health test %s tripped: %s", v.Test, v.Detail))
					if m.evicted.Load() {
						continue
					}
					// The last healthy member is retained (degraded
					// output beats no output, matching the device-health
					// policy): serve the batch with the violation
					// recorded in Reason and the trip counters.
					m.monitor.Reset()
				}
			}
		}
		m.cur, m.curBits = binary.BigEndian.Uint64(buf[:]), 64
		m.fetched.Add(64)
		if !p.policy.Disabled {
			if w := m.addWindow(bits.OnesCount64(m.cur), 64); w >= int64(p.policy.WindowBits) {
				p.completeWindowLocked(m)
				// The member may have just been evicted; its buffered bits
				// are gone and the scheduler picks the next member.
				if m.evicted.Load() {
					continue
				}
			}
		}
		return m, nil
	}
}

// readPackedLocked fills dst with packed bytes assembled across the healthy
// members, least-loaded first. Each picked member is drained of everything
// it has buffered (up to the space left) before the scheduler re-picks —
// the same take-all granularity as readBitsLocked, so byte- and
// bit-granular reads with the same call boundaries serve the same stream.
// Callers hold p.mu.
func (p *Pool) readPackedLocked(dst []byte) error {
	total := len(dst) * 8
	for pos := 0; pos < total; {
		m, err := p.nextMemberWithBitsLocked()
		if err != nil {
			return err
		}
		take := m.curBits
		if rem := total - pos; take > rem {
			take = rem
		}
		writeBits(dst, pos, m.takeLocked(take), take)
		pos += take
	}
	return nil
}

// writeBits stores the low n bits of v (first stream bit most significant)
// into dst starting at bit offset pos, MSB-first.
//
//drange:noalloc
func writeBits(dst []byte, pos int, v uint64, n int) {
	for n > 0 {
		free := 8 - pos&7
		take := n
		if take > free {
			take = free
		}
		chunk := byte(v>>uint(n-take)) & (1<<uint(take) - 1)
		shift := uint(free - take)
		dst[pos>>3] = dst[pos>>3]&^(byte(1<<uint(take)-1)<<shift) | chunk<<shift
		pos += take
		n -= take
	}
}

// readBitsLocked returns n bits, one bit per byte, assembled across the
// healthy members. Callers hold p.mu.
func (p *Pool) readBitsLocked(n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for len(out) < n {
		m, err := p.nextMemberWithBitsLocked()
		if err != nil {
			return nil, err
		}
		take := m.curBits
		if rem := n - len(out); take > rem {
			take = rem
		}
		v := m.takeLocked(take)
		for j := take - 1; j >= 0; j-- {
			out = append(out, byte(v>>uint(j))&1)
		}
	}
	return out, nil
}

// evictionSummaryLocked summarises why the pool ran out of devices.
func (p *Pool) evictionSummaryLocked() string {
	s := ""
	for _, m := range p.members {
		if m.reason == "" {
			continue
		}
		if s != "" {
			s += "; "
		}
		s += fmt.Sprintf("device %d: %s", m.idx, m.reason)
	}
	if s == "" {
		return "no devices opened"
	}
	return s
}

// ReadBits returns n random bits, one bit per returned byte (0 or 1), after
// any configured post-processing chain. It is a thin unpacking adapter over
// the packed serving path and is safe for concurrent use.
func (p *Pool) ReadBits(n int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("drange: bit count must be positive, got %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return nil, fmt.Errorf("drange: pool is closed")
	}
	p.readEpoch++
	if p.drbgOn {
		packed := make([]byte, (n+7)/8)
		if err := p.drbgReadLocked(packed); err != nil {
			return nil, err
		}
		out := make([]byte, n)
		unpackBits(out, packed)
		p.delivered.Add(int64(n))
		p.tierDRBGReads.Add(1)
		p.tierDRBGBytes.Add(int64(len(packed)))
		return out, nil
	}
	var bits []byte
	var err error
	if p.post != nil {
		bits, err = p.post.readBits(n, p.readPackedLocked)
	} else {
		bits, err = p.readBitsLocked(n)
	}
	p.updateRemainderLocked()
	if err != nil {
		return nil, err
	}
	p.delivered.Add(int64(len(bits)))
	return bits, nil
}

// updateRemainderLocked records whether any member still buffers sub-word
// bits, which forces subsequent Reads onto the locked path until drained.
// Callers hold p.mu.
func (p *Pool) updateRemainderLocked() {
	for _, m := range p.members {
		if m.curBits > 0 {
			p.remainder.Store(true)
			return
		}
	}
	p.remainder.Store(false)
}

// Read fills buf with random bytes, implementing io.Reader. It never returns
// a short read except on error.
//
// Without WithDRBG this is the raw packed fast path (see ReadRaw). With
// WithDRBG attached, Read serves the DRBG tier: each request is expanded by
// the least-loaded ready member's DRBG, and reseeds are staged across the
// other members so the serving member is (almost) never the one harvesting a
// seed.
func (p *Pool) Read(buf []byte) (int, error) {
	if !p.drbgOn {
		return p.ReadRaw(buf)
	}
	if len(buf) == 0 {
		return 0, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return 0, fmt.Errorf("drange: pool is closed")
	}
	p.readEpoch++
	if err := p.drbgReadLocked(buf); err != nil {
		return 0, err
	}
	p.delivered.Add(int64(len(buf)) * 8)
	p.tierDRBGReads.Add(1)
	p.tierDRBGBytes.Add(int64(len(buf)))
	return len(buf), nil
}

// drbgReadLocked serves one DRBG-tier read: each chunk (capped at the
// policy's per-request limit) is generated by the least-loaded ready member,
// and after every chunk at most one other due member is reseeded — staging
// reseed work onto members that are not serving, so reseeds never stall the
// read. Callers hold p.mu.
//
//drange:noalloc
func (p *Pool) drbgReadLocked(dst []byte) error {
	for off := 0; off < len(dst); {
		chunk := dst[off:]
		if len(chunk) > p.drbgPolicy.MaxRequestBytes {
			chunk = chunk[:p.drbgPolicy.MaxRequestBytes]
		}
		m, err := p.drbgServeMemberLocked()
		if err != nil {
			return err
		}
		if err := m.drbg.d.Generate(chunk, nil); err != nil {
			return err
		}
		m.delivered.Add(int64(len(chunk)) * 8)
		off += len(chunk)
		p.stageDRBGReseedLocked(m)
	}
	return nil
}

// drbgServeMemberLocked picks the member to generate the next DRBG request:
// the least-loaded healthy member whose DRBG is ready (within its request
// budget). When no member is ready — every DRBG fell due at once, or
// prediction resistance forces a reseed before every request — the
// least-loaded due member is reseeded inline and serves. A member evicted
// during that reseed is skipped and the pick re-runs. Callers hold p.mu.
func (p *Pool) drbgServeMemberLocked() (*poolMember, error) {
	for {
		var ready, due *poolMember
		var readyF, dueF int64
		for _, m := range p.members {
			if m.evicted.Load() || m.drbg == nil {
				continue
			}
			f := m.fetched.Load()
			if !p.drbgPolicy.PredictionResistance && !m.drbg.d.NeedsReseed() {
				if ready == nil || f < readyF {
					ready, readyF = m, f
				}
			} else if due == nil || f < dueF {
				due, dueF = m, f
			}
		}
		if ready != nil {
			return ready, nil
		}
		if due == nil {
			return nil, fmt.Errorf("drange: pool has no healthy devices left (%s)", p.evictionSummaryLocked())
		}
		if err := p.reseedMemberLocked(due); err != nil {
			if errors.Is(err, errDRBGMemberEvicted) {
				continue
			}
			return nil, err
		}
		return due, nil
	}
}

// reseedMemberLocked harvests a fresh health-screened seed from m's own
// engine and folds it into m's DRBG, debiting the credit ledger. Callers hold
// p.mu.
func (p *Pool) reseedMemberLocked(m *poolMember) error {
	if err := p.harvestSeedLocked(m, m.drbg.seedBuf); err != nil {
		return err
	}
	return m.drbg.reseedFromBuf()
}

// stageDRBGReseedLocked opportunistically reseeds at most one due member
// other than the one that just served, spreading seed harvests across reads
// so members are reseeded while idle rather than when picked. Best-effort: a
// failure neither fails the read nor loses the member — an engine failure or
// evict-policy trip is already recorded by harvestSeedLocked, and any other
// error surfaces when the member is next picked to serve. Callers hold p.mu.
func (p *Pool) stageDRBGReseedLocked(served *poolMember) {
	if p.drbgPolicy.PredictionResistance {
		// Every request reseeds its serving member anyway; staging extra
		// harvests would only burn raw throughput.
		return
	}
	var due *poolMember
	var dueF int64
	for _, m := range p.members {
		if m == served || m.evicted.Load() || m.drbg == nil || !m.drbg.d.NeedsReseed() {
			continue
		}
		if f := m.fetched.Load(); due == nil || f < dueF {
			due, dueF = m, f
		}
	}
	if due == nil {
		return
	}
	_ = p.reseedMemberLocked(due)
}

// ReadRaw fills buf with raw harvested bytes — the physical tier. Health
// tests, device-health tracking and any post-processing chain still apply;
// only the WithDRBG expansion is bypassed. Without WithDRBG, Read is this
// same path.
//
// This is the packed fast path: member engines hand the pool packed 64-bit
// words that land in the caller's buffer without any bit-per-byte expansion.
// With no post-processing chain and no online health tests attached, ReadRaw
// additionally runs lock-free — concurrent readers schedule themselves onto
// the least-loaded members through atomic load counters and only touch the
// pool mutex at bias-window boundaries and evictions, so throughput scales
// with readers instead of serializing behind the pool lock. (Device health
// tracking per HealthPolicy stays fully enforced on this path.)
//
//drange:seedtaint-exempt documented raw tier: delivers unconditioned entropy by contract
func (p *Pool) ReadRaw(buf []byte) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	defer func() {
		p.tierRawReads.Add(1)
		p.tierRawBytes.Add(int64(len(buf)))
	}()
	// Buffered sub-word bits from an earlier ReadBits must be served first
	// and in order, so they force the locked path for this read.
	if p.post == nil && !p.testsEnabled && !p.remainder.Load() {
		return p.readFast(buf)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return 0, fmt.Errorf("drange: pool is closed")
	}
	p.readEpoch++
	defer p.updateRemainderLocked()
	for off := 0; off < len(buf); {
		chunk := buf[off:]
		if len(chunk) > maxReadChunkBytes {
			chunk = chunk[:maxReadChunkBytes]
		}
		var err error
		if p.post != nil {
			err = p.post.readPacked(chunk, p.readPackedLocked)
		} else {
			err = p.readPackedLocked(chunk)
		}
		if err != nil {
			// A failed Read returns (0, err); chunks already written must
			// not count as served.
			return 0, err
		}
		off += len(chunk)
	}
	p.delivered.Add(int64(len(buf)) * 8)
	return len(buf), nil
}

// pickMember is the lock-free counterpart of nextMemberLocked: least loaded
// healthy member by atomic counters, ties to the lowest index.
//
//drange:noalloc
func (p *Pool) pickMember() *poolMember {
	var best *poolMember
	var bestFetched int64
	for _, m := range p.members {
		if m.evicted.Load() {
			continue
		}
		if f := m.fetched.Load(); best == nil || f < bestFetched {
			best, bestFetched = m, f
		}
	}
	return best
}

// readFast is the concurrent Read path: packed 64-bit fetches from the
// least-loaded member's engine straight into the caller's buffer, with the
// pool mutex taken only for bias-window evaluation and evictions.
//
//drange:noalloc
func (p *Pool) readFast(dst []byte) (int, error) {
	for i := 0; i < len(dst); {
		if p.closed.Load() {
			return 0, fmt.Errorf("drange: pool is closed")
		}
		m := p.pickMember()
		if m == nil {
			p.mu.Lock()
			err := fmt.Errorf("drange: pool has no healthy devices left (%s)", p.evictionSummaryLocked())
			p.mu.Unlock()
			return 0, err
		}
		n := len(dst) - i
		if n > 8 {
			n = 8
		}
		chunk := dst[i : i+n]
		// Claim the load before the engine read so concurrent readers spread
		// across members instead of piling onto one.
		m.fetched.Add(int64(n) * 8)
		if err := m.eng.ReadPacked(chunk); err != nil {
			m.fetched.Add(-int64(n) * 8)
			p.mu.Lock()
			if p.closed.Load() {
				p.mu.Unlock()
				return 0, fmt.Errorf("drange: pool is closed")
			}
			if m.evicted.Load() {
				// Another reader evicted this member while we were blocked
				// in its engine (e.g. a bias-window eviction closed it);
				// the survivors keep serving — just re-pick.
				p.mu.Unlock()
				continue
			}
			if p.healthyLocked() <= 1 {
				p.mu.Unlock()
				return 0, fmt.Errorf("drange: pool device %d (last healthy device): %w", m.idx, err)
			}
			p.evictLocked(m, fmt.Sprintf("engine failure: %v", err))
			p.mu.Unlock()
			continue
		}
		m.delivered.Add(int64(n) * 8)
		if !p.policy.Disabled {
			ones := 0
			for _, b := range chunk {
				ones += bits.OnesCount8(b)
			}
			if w := m.addWindow(ones, n*8); w >= int64(p.policy.WindowBits) {
				p.mu.Lock()
				p.completeWindowLocked(m)
				p.mu.Unlock()
			}
		}
		i += n
	}
	p.delivered.Add(int64(len(dst)) * 8)
	return len(dst), nil
}

// Uint64 returns a 64-bit random value.
func (p *Pool) Uint64() (uint64, error) {
	var buf [8]byte
	if _, err := p.Read(buf[:]); err != nil {
		return 0, err
	}
	return core.BEUint64(buf), nil
}

// Close stops every member engine and releases every device. It is
// idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Swap(true) {
		return nil
	}
	p.cancel()
	p.closeMembers()
	return nil
}

// closeMembers releases every non-evicted member (evicted members closed at
// eviction time). Members whose engine never started — an OpenPool
// constructor failure — still release their device, so a replay recorder's
// log is flushed even when a later member fails to open.
func (p *Pool) closeMembers() {
	for _, m := range p.members {
		if m.evicted.Load() {
			continue
		}
		if m.eng != nil {
			m.eng.Close()
		}
		if m.ownsDev && m.pub != nil {
			closeDevice(m.pub)
		}
	}
}

// Stats returns the pool's aggregate accounting plus the per-device
// breakdown in Stats.Devices. Shard entries across all devices are
// flattened into Stats.Shards with globally renumbered shard indices;
// evicted devices keep reporting the totals they reached before eviction.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := Stats{BitsDelivered: p.delivered.Load()}
	if p.testsEnabled {
		out.Health = &HealthStats{SymbolBits: p.testsPolicy.SymbolBits, StartupPassed: true}
	}
	out.TierRaw = TierStats{Reads: p.tierRawReads.Load(), Bytes: p.tierRawBytes.Load()}
	out.TierDRBG = TierStats{Reads: p.tierDRBGReads.Load(), Bytes: p.tierDRBGBytes.Load()}
	if p.drbgOn {
		out.DRBG = &DRBGStats{
			Algorithm:            string(p.drbgPolicy.Algorithm),
			PredictionResistance: p.drbgPolicy.PredictionResistance,
		}
	}
	bitsPerNS := 0.0
	shardIdx := 0
	for _, m := range p.members {
		est := statsFromEngine(m.eng.Stats())
		evicted := m.evicted.Load()
		ds := PoolDeviceStats{
			Device:         m.idx,
			Serial:         m.profile.Serial,
			Backend:        m.backend,
			Healthy:        !evicted,
			Evicted:        evicted,
			Reason:         m.reason,
			BiasDelta:      m.biasDelta,
			TemperatureC:   m.lastTemperature(),
			BitsHarvested:  est.BitsHarvested,
			BitsDelivered:  m.delivered.Load(),
			ThroughputMbps: est.AggregateThroughputMbps,
			Latency64NS:    est.Latency64NS,
			Shards:         est.Shards,
		}
		if m.monitor != nil {
			ds.Health = healthStatsFrom(m.monitor, m.blockedWindows, m.startupOK)
			agg := out.Health
			agg.BitsTested += ds.Health.BitsTested
			agg.SymbolsTested += ds.Health.SymbolsTested
			agg.RCTTrips += ds.Health.RCTTrips
			agg.APTTrips += ds.Health.APTTrips
			agg.BiasTrips += ds.Health.BiasTrips
			agg.TotalTrips += ds.Health.TotalTrips
			agg.BlockedWindows += ds.Health.BlockedWindows
			if ds.Health.LongestRun > agg.LongestRun {
				agg.LongestRun = ds.Health.LongestRun
			}
			if !ds.Health.StartupPassed {
				agg.StartupPassed = false
			}
			if ds.Health.LastViolation != "" {
				agg.LastViolation = ds.Health.LastViolation
			}
		}
		if m.drbg != nil {
			ds.DRBG = m.drbg.stats()
			if out.DRBG != nil {
				out.DRBG.Reseeds += ds.DRBG.Reseeds
				out.DRBG.Generates += ds.DRBG.Generates
				out.DRBG.Credit.CreditedBits += ds.DRBG.Credit.CreditedBits
				out.DRBG.Credit.DebitedBits += ds.DRBG.Credit.DebitedBits
				out.DRBG.Credit.BalanceBits += ds.DRBG.Credit.BalanceBits
			}
		}
		out.Devices = append(out.Devices, ds)
		out.BitsHarvested += est.BitsHarvested
		for _, ss := range est.Shards {
			ss.Shard = shardIdx
			shardIdx++
			out.Shards = append(out.Shards, ss)
		}
		if !evicted && est.AggregateThroughputMbps > 0 {
			bitsPerNS += est.AggregateThroughputMbps / 1000.0
		}
	}
	if bitsPerNS > 0 {
		out.AggregateThroughputMbps = bitsPerNS * 1000.0
		out.Latency64NS = 64.0 / bitsPerNS
	}
	return out
}

// lastTemperature reads the member's device temperature; an evicted member
// reports its baseline (its device may already be closed).
func (m *poolMember) lastTemperature() float64 {
	if m.evicted.Load() {
		return m.baseTempC
	}
	return m.pub.Temperature()
}

var _ Source = (*Pool)(nil)
