package drange

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// packBitstream packs a bit-per-byte stream MSB-first, the byte encoding Read
// serves.
func packBitstream(t *testing.T, bits []byte) []byte {
	t.Helper()
	if len(bits)%8 != 0 {
		t.Fatalf("bitstream length %d not a byte multiple", len(bits))
	}
	out := make([]byte, len(bits)/8)
	core.PackBitsMSBFirst(bits, out)
	return out
}

// TestReadMatchesReadBits pins the packed serving path against the
// bit-per-byte contract: over identical deterministic sources, Read's bytes
// must equal ReadBits' bits packed MSB-first — for the sequential sampler,
// the sharded engine, a monitored source and a post-processed source.
func TestReadMatchesReadBits(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"sequential", nil},
		{"sharded", []Option{WithShards(2)}},
		{"monitored", []Option{WithHealthTests(HealthTestPolicy{StartupBits: -1})}},
		{"monitored-sharded", []Option{WithShards(2), WithHealthTests(HealthTestPolicy{StartupBits: -1})}},
		{"postprocessed", []Option{WithPostprocess(XORDecimator(2))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			byBytes := openQuick(t, tc.opts...)
			byBits := openQuick(t, tc.opts...)
			buf := make([]byte, 512)
			if _, err := byBytes.Read(buf); err != nil {
				t.Fatal(err)
			}
			bits, err := byBits.ReadBits(len(buf) * 8)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, packBitstream(t, bits)) {
				t.Error("Read bytes differ from packed ReadBits stream")
			}
		})
	}
}

// TestReadBitsInterleavedWithRead: bit-granular and byte-granular reads drain
// one shared stream — an odd-length ReadBits must not lose or duplicate bits
// for a following Read.
func TestReadBitsInterleavedWithRead(t *testing.T) {
	mixed := openQuick(t, WithShards(2))
	reference := openQuick(t, WithShards(2))

	var gotBits []byte
	b1, err := mixed.ReadBits(13)
	if err != nil {
		t.Fatal(err)
	}
	gotBits = append(gotBits, b1...)
	buf := make([]byte, 16)
	if _, err := mixed.Read(buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(buf)*8; i++ {
		gotBits = append(gotBits, (buf[i/8]>>uint(7-i%8))&1)
	}
	b2, err := mixed.ReadBits(11)
	if err != nil {
		t.Fatal(err)
	}
	gotBits = append(gotBits, b2...)

	want, err := reference.ReadBits(len(gotBits))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBits, want) {
		t.Error("interleaved Read/ReadBits stream diverges from the pure-bit stream")
	}
}

// TestPoolReadMatchesReadBits pins the pool's packed fast path against its
// bit-granular locked path over identical deterministic pools.
func TestPoolReadMatchesReadBits(t *testing.T) {
	profiles := poolProfiles(t, 2)
	byBytes, err := OpenPool(context.Background(), profiles)
	if err != nil {
		t.Fatal(err)
	}
	defer byBytes.Close()
	byBits, err := OpenPool(context.Background(), profiles)
	if err != nil {
		t.Fatal(err)
	}
	defer byBits.Close()

	buf := make([]byte, 512)
	if _, err := byBytes.Read(buf); err != nil {
		t.Fatal(err)
	}
	bits, err := byBits.ReadBits(len(buf) * 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, packBitstream(t, bits)) {
		t.Error("pool Read bytes differ from packed pool ReadBits stream")
	}
}

// TestPoolReadBitsInterleavedWithRead: a bit-granular pool read leaves
// sub-word remainders buffered in members; a following Read must serve the
// exact stream a same-length ReadBits would (the remainder forces the locked
// path, so the fast path cannot skip ahead to fresh engine words and reorder
// a member's own bits). The pool's member schedule is per-fetch, so the
// comparison keeps identical call boundaries on both pools.
func TestPoolReadBitsInterleavedWithRead(t *testing.T) {
	profiles := poolProfiles(t, 2)
	mixed, err := OpenPool(context.Background(), profiles)
	if err != nil {
		t.Fatal(err)
	}
	defer mixed.Close()
	reference, err := OpenPool(context.Background(), profiles)
	if err != nil {
		t.Fatal(err)
	}
	defer reference.Close()

	if _, err := mixed.ReadBits(13); err != nil {
		t.Fatal(err)
	}
	if _, err := reference.ReadBits(13); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if _, err := mixed.Read(buf); err != nil {
		t.Fatal(err)
	}
	bits, err := reference.ReadBits(len(buf) * 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, packBitstream(t, bits)) {
		t.Error("Read after a bit-granular read diverges from the equivalent ReadBits stream")
	}
}

// TestPoolConcurrentReadWithEviction stresses the lock-free Read fast path
// under the race detector while a faulty member is evicted mid-traffic: no
// read may fail, and the faulty member must go.
func TestPoolConcurrentReadWithEviction(t *testing.T) {
	profiles := poolProfiles(t, 4)
	pool, err := OpenPool(context.Background(), profiles,
		WithDeviceBackend(1, "faulty", map[string]string{"stuck": "1", "stuck-value": "1"}),
		WithHealth(HealthPolicy{WindowBits: 512, MaxBiasDelta: 0.2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 256)
			for i := 0; i < 8; i++ {
				if _, err := pool.Read(buf); err != nil {
					t.Errorf("concurrent read during eviction: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if pool.Healthy() != 3 {
		t.Fatalf("healthy = %d after concurrent eviction, want 3 (%+v)", pool.Healthy(), pool.Stats().Devices)
	}
	d := pool.Stats().Devices[1]
	if !d.Evicted || !strings.Contains(d.Reason, "bias drift") {
		t.Errorf("faulty member not bias-evicted: %+v", d)
	}
}

// TestPoolBlockedSchedulerNoStarvation is the regression test for the
// HealthActionBlock starvation bug: a member whose batches are discarded must
// still accrue load, so the least-loaded scheduler rotates to the healthy
// members and reads keep succeeding.
func TestPoolBlockedSchedulerNoStarvation(t *testing.T) {
	profiles := poolProfiles(t, 3)
	pool, err := OpenPool(context.Background(), profiles,
		WithDeviceBackend(0, "faulty", map[string]string{"stuck": "1", "stuck-value": "1"}),
		WithHealthTests(HealthTestPolicy{StartupBits: -1, OnFailure: HealthActionBlock}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// The stuck member trips on every fetched word; before the fix its
	// fetched count never advanced, so the scheduler re-picked it until the
	// shared budget failed the read even though two healthy members idled.
	buf := make([]byte, 1024)
	for i := 0; i < 4; i++ {
		if _, err := pool.Read(buf); err != nil {
			t.Fatalf("read %d failed during blocking: %v", i, err)
		}
	}
	st := pool.Stats()
	if st.Devices[0].Health == nil || st.Devices[0].Health.BlockedWindows == 0 {
		t.Errorf("faulty member reports no blocked windows: %+v", st.Devices[0])
	}
	for i := 1; i < 3; i++ {
		if st.Devices[i].BitsDelivered == 0 {
			t.Errorf("healthy member %d served nothing; scheduler starved behind the blocked member", i)
		}
	}
}

// TestPostprocessExhaustionReportsTotal: the chain-exhaustion error must
// report the cumulative raw bits the doubling rounds actually harvested, not
// the final batch size (satellite of issue 5).
func TestPostprocessExhaustionReportsTotal(t *testing.T) {
	chain, err := newPostChain([]Corrector{discardAll{}})
	if err != nil {
		t.Fatal(err)
	}
	rawPacked := func(dst []byte) error {
		for i := range dst {
			dst[i] = 0xAA
		}
		return nil
	}
	_, err = chain.readBits(8, rawPacked)
	if err == nil {
		t.Fatal("all-discarding chain did not fail")
	}
	// Batches double from basePostBatch until exceeding maxPostBatch; the
	// error must carry their sum.
	total := 0
	for b := basePostBatch; b <= maxPostBatch; b *= 2 {
		total += b
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("%d raw bits", total)) {
		t.Errorf("exhaustion error does not report the cumulative total %d: %v", total, err)
	}
}

// discardAll is a custom corrector with no packed fast path that consumes
// everything — it exercises both the unpack/repack adapter and the
// exhaustion accounting.
type discardAll struct{}

func (discardAll) Name() string                   { return "discard-all" }
func (discardAll) Process([]byte) ([]byte, error) { return nil, nil }

// TestRunNISTBoundsGuard: absurd bit counts are rejected before any
// allocation or harvesting happens.
func TestRunNISTBoundsGuard(t *testing.T) {
	src := openQuick(t)
	g := src.(*Generator)
	if _, err := g.RunNIST(maxNISTBits+1, 0); err == nil {
		t.Error("oversized RunNIST request accepted")
	}
	if _, err := g.RunNIST(-5, 0); err == nil {
		t.Error("negative RunNIST request accepted")
	}
}
