package drange

import (
	"bytes"
	"testing"
)

// FuzzProfileDecode asserts DecodeProfile's contract over arbitrary input:
// corrupt, truncated or hostile profiles return an error and never panic, and
// anything accepted must survive Validate and re-encode. The seed corpus
// covers the interesting regions — a valid sealed profile, truncations at
// several depths, single bit flips (which must fail the integrity checksum),
// and structurally valid JSON missing the parts Validate checks.
func FuzzProfileDecode(f *testing.F) {
	valid, err := newV1GoldenProfile().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// Truncations: mid-header, mid-cells, just before the checksum line.
	for _, frac := range []int{8, 2, 1} {
		f.Add(valid[:len(valid)-len(valid)/frac])
	}
	// Bit flips in the header, the payload and the checksum itself.
	for _, pos := range []int{20, len(valid) / 2, len(valid) - 12} {
		flipped := bytes.Clone(valid)
		flipped[pos] ^= 0x01
		f.Add(flipped)
	}
	// A profile edited without resealing (field tweak keeps valid JSON).
	f.Add(bytes.Replace(valid, []byte(`"serial": 42`), []byte(`"serial": 43`), 1))
	// The delta-carrying encoding, plus the delta-chain attack surface:
	// truncation inside the chain, a bit flip inside the delta payload (must
	// fail the delta checksum), a reordered chain position and a delta edited
	// without resealing.
	withDelta, err := newV1GoldenProfileWithDelta().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(withDelta)
	di := bytes.Index(withDelta, []byte(`"deltas"`))
	f.Add(withDelta[:di+len(withDelta[di:])/2])
	flippedDelta := bytes.Clone(withDelta)
	flippedDelta[di+len(withDelta[di:])/2] ^= 0x01
	f.Add(flippedDelta)
	f.Add(bytes.Replace(withDelta, []byte(`"sequence": 1`), []byte(`"sequence": 2`), 1))
	f.Add(bytes.Replace(withDelta, []byte(`"banks": [`), []byte(`"banks": [1,`), 1))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":99,"checksum":"sha256:00"}`))
	f.Add([]byte(`{"version":1,"geometry":{"banks":1,"rows_per_bank":1,"cols_per_row":64,"subarray_rows":1,"word_bits":0}}`))
	f.Add([]byte(`{"version":-1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProfile(data)
		if err != nil {
			if p != nil {
				t.Fatalf("DecodeProfile returned both a profile and error %v", err)
			}
			return
		}
		if p == nil {
			t.Fatal("DecodeProfile returned nil without an error")
		}
		// Anything accepted must be internally consistent and re-encodable.
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted profile fails Validate: %v", err)
		}
		if _, err := p.Encode(); err != nil {
			t.Fatalf("accepted profile fails Encode: %v", err)
		}
	})
}
