package drange

// The self-healing pool lifecycle. A pool opened WithRecharacterization does
// not lose a drifting member forever: retireLocked quarantines it instead of
// evicting, and the single background recharacterizer goroutine below picks
// it up, re-runs a targeted characterization pass over the banks the member's
// profile selects (profiler.Recharacterize — one narrowing screen plus a
// stability loop per bank, not the full Section 6.1 sweep), folds the result
// into a versioned ProfileDelta, rebuilds the member's engine from the
// updated profile, and readmits it with a hot profile swap. The rest of the
// pool keeps serving throughout: quarantine, re-characterization and
// readmission all happen off the read paths, which only ever observe the
// member's atomic lifecycle state and published engine pointer.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/profiler"
)

// RecharacterizationPolicy controls the self-healing lifecycle attached with
// WithRecharacterization. Like HealthPolicy, zero fields take defaults so
// partial policies stay ergonomic.
type RecharacterizationPolicy struct {
	// Rounds is the number of stability rounds of the targeted pass (at
	// least 2; 0 selects 3). Each round measures every candidate cell's
	// failure probability once; cells whose per-round probability drifts are
	// rejected.
	Rounds int
	// Iterations is the number of reduced-latency reads per cell per round
	// (0 selects 60). More iterations sharpen the failure-probability
	// estimate at the cost of a longer pass.
	Iterations int
	// ScreenIterations is the iteration count of the narrowing screen pass
	// that bounds the region before the rounds run; 0 uses Iterations.
	ScreenIterations int
	// MaxDrift rejects cells whose per-round failure probability deviates
	// from their mean by more than this in any round (0 selects 0.15).
	MaxDrift float64
	// MaxAttempts is the number of failed re-characterization passes after
	// which a member is evicted terminally (0 selects 2).
	MaxAttempts int
	// Disabled turns the lifecycle off: health violations evict terminally,
	// as without WithRecharacterization.
	Disabled bool
}

func (p RecharacterizationPolicy) withDefaults() RecharacterizationPolicy {
	if p.Rounds == 0 {
		p.Rounds = 3
	}
	if p.Iterations == 0 {
		p.Iterations = 60
	}
	if p.MaxDrift == 0 {
		p.MaxDrift = 0.15
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 2
	}
	return p
}

// recharacterizer is the pool's single background lifecycle goroutine: it
// drains quarantined members off recharCh and runs each through the
// re-characterize → readmit pass. One goroutine (not one per member) keeps
// the simulated-device profiling passes serial, so two quarantined members
// never compete for host CPU, and makes pass ordering deterministic.
func (c *servingCore) recharacterizer(ctx context.Context) {
	defer c.recharWG.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-c.recharCh:
			c.recharacterizeMember(ctx, m)
		}
	}
}

// recharacterizeMember runs one full quarantine→serving pass over m: the
// targeted profiling pass, the profile-delta append, the engine rebuild and
// the readmission swap. On failure the member returns to quarantined and is
// re-enqueued, until the policy's attempt budget is spent — then it is
// evicted terminally. A failure during shutdown leaves the member
// quarantined for closeMembers to release.
func (c *servingCore) recharacterizeMember(ctx context.Context, m *servingMember) {
	if ctx.Err() != nil || c.closed.Load() {
		return
	}
	start := time.Now()
	c.mu.Lock()
	if m.lifecycle() != memberQuarantined {
		c.mu.Unlock()
		return
	}
	m.state.Store(int32(memberRecharacterizing))
	m.recharacterizations++
	prof, cause := m.profile, m.reason
	c.mu.Unlock()

	next, err := c.recharacterizeProfile(ctx, m, prof, cause)
	if err == nil {
		err = c.readmit(m, next, start)
	}
	if err == nil {
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	m.recharFailures++
	m.recharAttempts++
	m.state.Store(int32(memberQuarantined))
	if c.closed.Load() || ctx.Err() != nil {
		// Shutdown race: the pass lost to Close. Stay quarantined so
		// closeMembers releases the still-open device.
		return
	}
	if m.recharAttempts >= c.recharPolicy.MaxAttempts {
		c.evictLocked(m, fmt.Sprintf("re-characterization failed after %d attempts: %v (quarantined for: %s)",
			m.recharAttempts, err, cause))
		return
	}
	m.reason = fmt.Sprintf("re-characterization attempt %d failed: %v (quarantined for: %s)",
		m.recharAttempts, err, cause)
	select {
	case c.recharCh <- m:
	default:
	}
}

// recharacterizeProfile runs the targeted pass over every bank prof currently
// selects and returns a new sealed profile with the results appended as one
// ProfileDelta. Banks whose cells no longer support a valid word pair are
// named in the delta without a selection, dropping them from generation; the
// pass fails if no bank survives.
func (c *servingCore) recharacterizeProfile(ctx context.Context, m *servingMember, prof *Profile, cause string) (*Profile, error) {
	pat, err := parsePattern(prof.Characterization.Pattern)
	if err != nil {
		return nil, err
	}
	// The acceptance band re-admits cells still behaving as they were
	// originally accepted: within the characterization tolerance around 0.5.
	// Narrow tolerances are widened to at least the paper's Section 5.2
	// working band of 0.5 ± 0.1 — tighter bands are unresolvable over a
	// handful of 60-iteration rounds.
	band := prof.Characterization.Tolerance
	if band < 0.1 {
		band = 0.1
	}
	rcfg := profiler.RecharConfig{
		Profile: profiler.Config{
			TRCDNS:     m.trcdNS,
			Iterations: c.recharPolicy.Iterations,
			Pattern:    pat,
		},
		ScreenIterations: c.recharPolicy.ScreenIterations,
		Rounds:           c.recharPolicy.Rounds,
		MaxDrift:         c.recharPolicy.MaxDrift,
		LowFprob:         0.5 - band,
		HighFprob:        0.5 + band,
	}
	banks := make([]int, 0, len(prof.EffectiveSelections()))
	for _, s := range prof.EffectiveSelections() {
		banks = append(banks, s.Bank)
	}
	sort.Ints(banks)

	ctrl := memctrl.NewController(m.dev)
	wordBits := prof.Geometry.WordBits
	var deltaCells []Cell
	var coreCells []core.RNGCell
	for _, bank := range banks {
		// Shutdown must not wait out a multi-bank pass.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		region := profiler.Region{
			Bank:      bank,
			RowCount:  prof.Characterization.RowsPerBank,
			WordCount: prof.Characterization.WordsPerRow,
		}
		res, err := profiler.Recharacterize(ctrl, region, rcfg)
		if err != nil {
			return nil, fmt.Errorf("re-characterizing bank %d: %w", bank, err)
		}
		for _, sc := range res.Stable {
			cc := core.RNGCell{
				Addr:          sc.Addr,
				WordIdx:       sc.Addr.Col / wordBits,
				Fprob:         sc.MeanFprob,
				SymbolEntropy: symbolEntropy3(sc.MeanFprob),
			}
			coreCells = append(coreCells, cc)
			deltaCells = append(deltaCells, cellFromCore(cc))
		}
	}
	var deltaSels []Selection
	if len(coreCells) > 0 {
		sels, err := core.SelectBankWords(coreCells)
		if err == nil {
			for _, s := range sels {
				deltaSels = append(deltaSels, selectionFromCore(s))
			}
		}
	}
	if len(deltaSels) == 0 {
		return nil, fmt.Errorf("no bank retained a valid RNG word pair (%d stable cells across %d banks)",
			len(deltaCells), len(banks))
	}
	d := &ProfileDelta{
		Version:      ProfileDeltaVersion,
		Sequence:     len(prof.Deltas) + 1,
		BaseChecksum: prof.Checksum,
		Reason:       cause,
		Characterization: DeltaCharacterization{
			TRCDNS:           rcfg.Profile.TRCDNS,
			Iterations:       rcfg.Profile.Iterations,
			ScreenIterations: rcfg.ScreenIterations,
			Rounds:           rcfg.Rounds,
			MaxDrift:         rcfg.MaxDrift,
			LowFprob:         rcfg.LowFprob,
			HighFprob:        rcfg.HighFprob,
			Pattern:          prof.Characterization.Pattern,
		},
		Banks:      banks,
		Cells:      deltaCells,
		Selections: deltaSels,
	}
	if err := d.Seal(); err != nil {
		return nil, err
	}
	return prof.AppendDelta(d)
}

// symbolEntropy3 models the 3-bit symbol entropy of a cell with failure
// probability p: three independent draws give 3·H2(p) bits per symbol,
// capped at the 3-bit maximum (SymbolBits in the identification defaults).
func symbolEntropy3(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	h := -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	if e := 3 * h; e < 3 {
		return e
	}
	return 3
}

// readmit builds a fresh engine over m's re-characterized profile, self-tests
// it when health tests are attached, and swaps it into the member — the hot
// profile swap. The engine build and startup test run off-lock (they read the
// device, not pool state); only the swap itself holds mu. Publication order
// matters for the lock-free fast path: the fresh engine is stored in fastEng
// before the serving state, so a reader that observes the member serving
// always loads the engine that state belongs to.
func (c *servingCore) readmit(m *servingMember, prof *Profile, start time.Time) error {
	pat, err := parsePattern(prof.Characterization.Pattern)
	if err != nil {
		return err
	}
	sels, err := coreSelections(prof.EffectiveCells(), prof.EffectiveSelections())
	if err != nil {
		return err
	}
	eng, err := core.NewEngine(c.pctx, m.dev, sels, core.EngineConfig{
		Shards: m.shards,
		TRNG:   core.TRNGConfig{TRCDNS: m.trcdNS, Pattern: pat},
	})
	if err != nil {
		return err
	}
	m.state.Store(int32(memberReadmitting))
	tested := false
	if c.testsEnabled && c.testsPolicy.StartupBits > 0 {
		sample, err := eng.ReadBits(c.testsPolicy.StartupBits)
		if err == nil {
			err = runStartup(sample, c.testsPolicy, m.idx)
		}
		if err != nil {
			eng.Close()
			return fmt.Errorf("readmission startup health test: %w", err)
		}
		tested = true
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		eng.Close()
		return fmt.Errorf("pool closed during readmission")
	}
	m.profile = prof
	m.src, m.eng = eng, eng
	m.cur, m.curBits = 0, 0
	m.win.Store(0)
	m.biasDelta = 0
	// The re-characterized operating point is the new health baseline: bias
	// windows restart clean and temperature drift is measured from now.
	m.baseTempC = m.pub.Temperature()
	if m.monitor != nil {
		m.monitor.Reset()
		m.startupOK = tested || !c.testsEnabled
	}
	m.reason = ""
	m.readmissions++
	m.lastRecharMS = float64(time.Since(start)) / float64(time.Millisecond)
	m.recharAttempts = 0
	m.fastEng.Store(eng)
	m.state.Store(int32(memberServing))
	// Re-arm the member's DRBG best-effort: a reseed folds fresh screened
	// entropy from the rebuilt engine into the existing state; a member that
	// never got a DRBG (evicted before instantiation never happens here, but
	// a pool without WithDRBG has none) is left alone. Errors surface when
	// the member is next picked to serve.
	if c.drbgOn && m.drbg != nil {
		_ = c.reseedMemberLocked(m)
	}
	return nil
}
