// Package drange is the public facade of the D-RaNGe reproduction (Kim et
// al., HPCA 2019). Its API mirrors the paper's two-phase lifecycle:
//
//   - Characterize runs the one-time-per-device identification of RNG cells
//     (Sections 6.1–6.2) and returns a serializable Profile;
//   - Open starts a random number Source against a device matching a
//     profile, skipping identification entirely.
//
// Typical use — characterize once, open many times:
//
//	profile, err := drange.Characterize(ctx, drange.WithManufacturer("A"))
//	if err != nil { ... }
//	// persist: data, _ := profile.Encode(); os.WriteFile("device.json", data, 0o600)
//
//	src, err := drange.Open(ctx, profile)            // sequential sampler
//	src, err = drange.Open(ctx, profile, drange.WithShards(4)) // sharded engine
//	if err != nil { ... }
//	defer src.Close()
//	buf := make([]byte, 32)
//	if _, err := src.Read(buf); err != nil { ... }   // 32 true random bytes
//
// Both forms return the same Source interface (io.ReadCloser + ReadBits +
// Uint64 + Stats); WithShards only changes throughput and thread scheduling.
// Configuration uses functional options (WithManufacturer, WithSerial,
// WithDeterministic, WithGeometry, WithTRCD, WithProfilingRegion,
// WithPaperIdentification, WithShards, WithPostprocess, ...), which
// distinguish unset parameters from explicit zeros. The deprecated New and
// Config remain as thin shims over the new API.
//
// Devices are opened through pluggable backends implementing the public
// Device contract: "sim" (the default simulator), "replay" (operation-log
// record/replay for byte-reproducible runs) and "faulty" (fault injection
// over another backend), selected with WithBackend or injected directly with
// WithDevice; RegisterBackend adds custom backends. OpenPool multiplexes
// many devices — one per profile — behind a single Source with per-device
// sharded engines, least-loaded word scheduling and health tracking that
// evicts bias- or temperature-drifting devices without failing readers:
//
//	pool, err := drange.OpenPool(ctx, profiles,
//	    drange.WithShards(2),                // shards per device
//	    drange.WithHealth(drange.HealthPolicy{}))
//	if err != nil { ... }
//	defer pool.Close()
//	st := pool.Stats()                       // st.Devices: per-device breakdown
//
// WithHealthTests attaches the SP 800-90B style online health tests
// (repetition count, adaptive proportion, windowed bias, startup self-test)
// to any Source: trips fail reads with a typed *HealthError, block until a
// clean window, or evict the offending pool member, and Stats.Health carries
// the accounting:
//
//	src, err := drange.Open(ctx, profile,
//	    drange.WithHealthTests(drange.HealthTestPolicy{}))  // full default battery
//
// WithDRBG adds a deterministic output stage (SP 800-90A style) in front of
// the physical harvest, splitting the Source into two tiers: Read, ReadBits
// and Uint64 serve a DRBG — DRBGChaCha20 (fast-key-erasure, default) or
// DRBGCTRAES256 (CTR_DRBG, AES-256 no-df, CAVP-tested in
// repro/internal/drbg) — reseeded from health-screened physical seeds every
// ReseedInterval requests (or before every request under
// PredictionResistance), while ReadRaw keeps serving the raw physical tier.
// WithDRBG implies WithHealthTests: a seed cannot bypass the 90B screens. An
// entropy credit ledger credits every clean health window and debits every
// seed; Stats reports it (Stats.DRBG.Credit) alongside per-tier read/byte
// counts (Stats.TierRaw, Stats.TierDRBG). On pools each member runs its own
// DRBG with staggered reseed deadlines and least-loaded serving:
//
//	src, err := drange.Open(ctx, profile, drange.WithDRBG(drange.DRBGPolicy{}))
//	_, err = src.Read(buf)     // DRBG tier: expanded from screened seeds
//	_, err = src.ReadRaw(buf)  // raw tier: the physical harvest
//
// WithRecharacterization turns a pool's member lifecycle from terminal
// eviction into self-healing. Each member moves through explicit states —
// serving → quarantined → recharacterizing → readmitting → serving — driven
// by the health machinery: a drift or health-test trip quarantines the
// member (its engine stops, its device stays open) and a background
// recharacterizer re-runs a targeted identification pass over only the banks
// the member's profile selects, folds the surviving cells into a versioned,
// checksummed ProfileDelta (Profile.AppendDelta), rebuilds the engine and
// readmits the member with a hot profile swap. Reads never fail or stall
// while a member is out — the rest of the pool keeps serving — and a member
// whose pass fails repeatedly (RecharacterizationPolicy.MaxAttempts) is
// evicted terminally. Stats.Lifecycle and the per-device State/Readmissions
// fields surface the cycle:
//
//	pool, err := drange.OpenPool(ctx, profiles,
//	    drange.WithRecharacterization(drange.RecharacterizationPolicy{}))
//
// # Machine-checked invariants
//
// The concurrency and allocation rules this package relies on are not just
// documented — they are enforced by cmd/drange-vet, a go/analysis suite run
// in CI as "go vet -vettool". Source comments carry the annotations it
// checks: "// drange:guardedby <mu>" on a struct field restricts access to
// lock holders (functions named *Locked, functions annotated
// "//drange:holds <mu>", or code after an explicit <mu>.Lock()),
// "//drange:noalloc" on a function bans allocating constructs from the
// serving fast path ("//drange:noalloc amortized" permits amortized buffer
// growth), and "//drange:entropyflow-exempt <reason>" waives the
// pseudo-randomness ban for a file whose entropy only flows outward.
// "// drange:atomic" on a struct field restricts it to sync/atomic access
// (atomiccheck), and the interprocedural seedtaint analyzer proves that raw
// device entropy passes health.Monitor before reaching DRBG seed material or
// an exported reader — the documented ReadRaw tier carries the only
// sanctioned "//drange:seedtaint-exempt" waiver. The full grammar is
// documented in repro/internal/analysis. Run the suite locally with
// "make lint" or:
//
//	go build -o bin/drange-vet ./cmd/drange-vet
//	go vet -vettool=$PWD/bin/drange-vet ./...
package drange

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/health"
	"repro/internal/memctrl"
	"repro/internal/nist"
	"repro/internal/pattern"
	"repro/internal/power"
	"repro/internal/profiler"
	"repro/internal/timing"
)

// deterministicNoiseSalt decorrelates the seeded noise stream from the
// device serial (which also seeds the process variation).
const deterministicNoiseSalt = 0xD0A11CE5

// newDevice opens a simulated device for the given identity. Deterministic
// devices use per-bank seeded noise streams, so multi-shard harvests stay
// reproducible.
func newDevice(manufacturer string, serial uint64, deterministic bool, geom Geometry) (*dram.Device, error) {
	m := dram.Manufacturer(manufacturer)
	if _, err := dram.ProfileFor(m); err != nil {
		return nil, fmt.Errorf("drange: %w", err)
	}
	var noise dram.NoiseSource
	if deterministic {
		noise = dram.NewDeterministicBankNoise(serial ^ deterministicNoiseSalt)
	}
	dev, err := dram.NewDevice(dram.Config{
		Serial:       serial,
		Manufacturer: m,
		Geometry:     geom.internal(),
		Timing:       timing.NewLPDDR4(),
		Noise:        noise,
	})
	if err != nil {
		return nil, fmt.Errorf("drange: %w", err)
	}
	return dev, nil
}

// resolveDevice opens the device the options select: an explicitly supplied
// Device, a registered backend (WithBackend), or the default sim backend. It
// returns the internal pipeline view alongside the public device (for
// Close/Temperature) and the backend name used.
func (o *options) resolveDevice(manufacturer string, serial uint64, deterministic bool, geom Geometry) (device.Device, Device, string, error) {
	if o.device != nil {
		if o.backend != nil {
			return nil, nil, "", fmt.Errorf("drange: WithDevice and WithBackend are mutually exclusive")
		}
		return internalDevice(o.device), o.device, "custom", nil
	}
	spec := backendSpec{name: "sim"}
	if o.backend != nil {
		spec = *o.backend
	}
	pub, err := OpenBackend(spec.name, BackendParams{
		Manufacturer:  manufacturer,
		Serial:        serial,
		Deterministic: deterministic,
		Geometry:      geom,
		Options:       spec.params,
	})
	if err != nil {
		return nil, nil, "", err
	}
	return internalDevice(pub), pub, spec.name, nil
}

// characterize runs RNG-cell identification and word selection over the
// controller's device and builds the sealed profile.
func characterize(ctx context.Context, ctrl *memctrl.Controller, p charParams) (*Profile, []core.BankSelection, error) {
	idCfg := core.DefaultIdentifyConfig(p.Manufacturer)
	idCfg.TRCDNS = p.TRCDNS
	idCfg.Samples = p.Samples
	idCfg.Tolerance = p.Tolerance
	idCfg.MaxBiasDelta = p.MaxBiasDelta
	idCfg.ScreenIterations = p.ScreenIterations

	geom := ctrl.Device().Geometry()
	banks := p.Banks
	if banks <= 0 || banks > geom.Banks {
		banks = geom.Banks
	}
	rows := p.RowsPerBank
	if rows > geom.RowsPerBank {
		rows = geom.RowsPerBank
	}
	words := p.WordsPerRow
	if words > geom.WordsPerRow() {
		words = geom.WordsPerRow()
	}
	var cells []core.RNGCell
	for bank := 0; bank < banks; bank++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("drange: characterization cancelled: %w", err)
		}
		region := profiler.Region{Bank: bank, RowStart: 0, RowCount: rows, WordStart: 0, WordCount: words}
		found, err := core.IdentifyRNGCells(ctrl, region, idCfg)
		if err != nil {
			return nil, nil, fmt.Errorf("drange: identifying RNG cells in bank %d: %w", bank, err)
		}
		cells = append(cells, found...)
	}
	if len(cells) == 0 {
		return nil, nil, fmt.Errorf("drange: no RNG cells found; enlarge the profiling region or loosen the tolerance")
	}
	sels, err := core.SelectBankWords(cells)
	if err != nil {
		return nil, nil, fmt.Errorf("drange: %w", err)
	}

	profile := &Profile{
		Version:      ProfileVersion,
		Manufacturer: p.Manufacturer,
		Serial:       p.Serial,
		Geometry:     geometryFromInternal(geom),
		Characterization: CharacterizationParams{
			TRCDNS:           p.TRCDNS,
			Samples:          p.Samples,
			Tolerance:        p.Tolerance,
			MaxBiasDelta:     p.MaxBiasDelta,
			ScreenIterations: p.ScreenIterations,
			Pattern:          idCfg.Pattern.String(),
			RowsPerBank:      rows,
			WordsPerRow:      words,
			Banks:            banks,
			Deterministic:    p.Deterministic,
		},
	}
	for _, c := range cells {
		profile.Cells = append(profile.Cells, cellFromCore(c))
	}
	for _, s := range sels {
		profile.Selections = append(profile.Selections, selectionFromCore(s))
	}
	if err := profile.Seal(); err != nil {
		return nil, nil, err
	}
	return profile, sels, nil
}

// Characterize opens a simulated device and runs the paper's
// one-time-per-device characterization: it identifies the device's RNG cells
// (Section 6.1) and selects the best two DRAM words per bank (Section 6.2),
// returning a serializable Profile. Persist the profile (Profile.Encode /
// Profile.Save) and hand it to Open — possibly in another process, much
// later — to start generating without repeating this work.
//
// ctx cancellation is observed between banks. Generation options
// (WithShards, WithPostprocess) are rejected here; they belong to Open.
func Characterize(ctx context.Context, opts ...Option) (*Profile, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := buildOptions(opts)
	if o.shards != nil || len(o.post) > 0 || o.healthTests != nil || o.drbg != nil {
		return nil, fmt.Errorf("drange: generation options (WithShards, WithPostprocess, WithHealthTests, WithDRBG) apply to Open, not Characterize")
	}
	if err := o.rejectPoolOnly("Characterize"); err != nil {
		return nil, err
	}
	p := o.charParams()
	dev, pub, _, err := o.resolveDevice(p.Manufacturer, p.Serial, p.Deterministic, p.Geometry)
	if err != nil {
		return nil, err
	}
	ctrl := memctrl.NewController(dev)
	profile, _, err := characterize(ctx, ctrl, p)
	// Characterize owns the device it opened through a backend; release it
	// (flushing, for example, a replay recorder's log). A caller-supplied
	// WithDevice device stays open for the caller's next move.
	if o.device == nil {
		if cerr := closeDevice(pub); err == nil && cerr != nil {
			err = cerr
		}
	}
	return profile, err
}

// Open starts a random number Source against a device matching the profile.
// It never re-runs identification: the profile's cells and selections are
// loaded directly, so Open completes in milliseconds regardless of device
// size. Opening a profile against a different device identity
// (WithManufacturer, WithSerial or WithGeometry disagreeing with the
// profile) errors loudly — RNG-cell locations are per-device process
// variation, and sampling the wrong device's cells would not be random.
//
// WithShards(0), the default, opens the sequential single-controller
// sampler; WithShards(n) for n > 0 starts the concurrent sharded engine, and
// ctx cancellation stops its harvesting goroutines. Both return the same
// Source interface and, under deterministic noise, the same byte stream per
// shard layout. The concrete type is *Generator, which additionally exposes
// the profile and the paper's throughput/latency/energy estimators.
//
//drange:holds mu construction: the Generator is not published until Open returns
func Open(ctx context.Context, profile *Profile, opts ...Option) (Source, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if profile == nil {
		return nil, fmt.Errorf("drange: nil profile")
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	if err := o.rejectCharacterizationOnly(); err != nil {
		return nil, err
	}
	if err := o.rejectPoolOnly("Open"); err != nil {
		return nil, err
	}
	// Resolve the DRBG tier first: it implies the health tests, so the
	// monitor construction below must already see the implied policy.
	drbgPolicy, drbgOn, err := o.resolveDRBG()
	if err != nil {
		return nil, err
	}
	if o.manufacturer != nil && *o.manufacturer != profile.Manufacturer {
		return nil, fmt.Errorf("drange: device mismatch: profile was characterized on manufacturer %q, not %q", profile.Manufacturer, *o.manufacturer)
	}
	if o.serial != nil && *o.serial != profile.Serial {
		return nil, fmt.Errorf("drange: device mismatch: profile was characterized on serial %d, not %d", profile.Serial, *o.serial)
	}
	if o.geometry != nil && *o.geometry != profile.Geometry {
		return nil, fmt.Errorf("drange: device mismatch: profile geometry %+v differs from requested %+v", profile.Geometry, *o.geometry)
	}

	deterministic := profile.Characterization.Deterministic
	if o.deterministic != nil {
		deterministic = *o.deterministic
	}
	trcd := profile.Characterization.TRCDNS
	if o.trcdNS != nil {
		trcd = *o.trcdNS
	}
	pat, err := parsePattern(profile.Characterization.Pattern)
	if err != nil {
		return nil, err
	}
	sels, err := coreSelections(profile.EffectiveCells(), profile.EffectiveSelections())
	if err != nil {
		return nil, err
	}
	dev, pub, backend, err := o.resolveDevice(profile.Manufacturer, profile.Serial, deterministic, profile.Geometry)
	if err != nil {
		return nil, err
	}
	ownsDev := o.device == nil
	fail := func(err error) (Source, error) {
		if ownsDev {
			closeDevice(pub)
		}
		return nil, err
	}
	// Backends construct to the profile's identity, but a WithDevice device
	// is whatever the caller handed us: verify it before sampling — RNG-cell
	// locations are per-device process variation, and reading another
	// device's cells would not be random.
	if s := pub.Serial(); s != profile.Serial {
		return fail(fmt.Errorf("drange: device mismatch: profile was characterized on serial %d, but the device reports %d", profile.Serial, s))
	}
	if dg := pub.Geometry(); dg != profile.Geometry {
		return fail(fmt.Errorf("drange: device mismatch: profile geometry %+v differs from the device's %+v", profile.Geometry, dg))
	}

	g := &Generator{
		profile: profile,
		dev:     dev,
		pubDev:  pub,
		ownsDev: ownsDev,
		backend: backend,
		pat:     pat,
		trcdNS:  trcd,
		sels:    sels,
	}
	// The generator serves as a 1-member pool on the shared serving core:
	// idx -1 is the Device value its HealthErrors report, and the pool
	// device-health policy (bias/temperature windows) stays disabled — it is
	// an OpenPool feature.
	m := &servingMember{
		idx:     -1,
		profile: profile,
		backend: backend,
		pub:     pub,
		dev:     dev,
		trcdNS:  trcd,
		ownsDev: ownsDev,
	}
	g.single = true
	g.members = []*servingMember{m}
	g.policy = HealthPolicy{Disabled: true}
	g.closeHook = g.closeLegacyLocked
	if len(o.post) > 0 {
		chain, err := newPostChain(o.post)
		if err != nil {
			return fail(err)
		}
		g.post = chain
	}
	shards := 0
	if o.shards != nil {
		shards = *o.shards
	}
	if shards < 0 {
		return fail(fmt.Errorf("drange: negative shard count %d", shards))
	}
	if shards == 0 {
		ctrl := memctrl.NewController(dev)
		trng, err := core.NewTRNG(ctrl, sels, core.TRNGConfig{TRCDNS: trcd, Pattern: pat})
		if err != nil {
			return fail(fmt.Errorf("drange: %w", err))
		}
		g.ctrl, g.trng = ctrl, trng
		m.src = trng
	} else {
		eng, err := core.NewEngine(ctx, dev, sels, core.EngineConfig{
			Shards: shards,
			TRNG:   core.TRNGConfig{TRCDNS: trcd, Pattern: pat},
		})
		if err != nil {
			return fail(fmt.Errorf("drange: %w", err))
		}
		g.eng = eng
		m.src, m.eng = eng, eng
		m.shards = shards
		m.fastEng.Store(eng)
		// The engine is thread-safe, so the core's lock-free fast path is
		// available (the sequential TRNG sampler is not).
		g.concurrent = true
	}
	if o.healthTests != nil && !o.healthTests.Disabled {
		// The sampler is live from here on, so failures release it through
		// Close (stopping harvest goroutines), not the bare device closer.
		failStarted := func(err error) (Source, error) {
			g.Close()
			return nil, err
		}
		hp := o.healthTests.withDefaults(false)
		if hp.OnFailure == HealthActionEvict {
			return failStarted(fmt.Errorf("drange: health action %q applies to OpenPool, not Open (there is no pool member to evict)", hp.OnFailure))
		}
		mon, err := health.New(hp.config())
		if err != nil {
			return failStarted(fmt.Errorf("drange: %w", err))
		}
		g.testsEnabled, g.testsPolicy = true, hp
		m.monitor, m.startupOK = mon, true
		if err := g.runStartupTests(); err != nil {
			return failStarted(err)
		}
		if drbgOn {
			// Instantiate the DRBG tier from a health-screened seed: the
			// ledger registers as the monitor's credit sink before the seed
			// harvest, so even the first seed accrues toward the credit
			// windows.
			g.drbgOn, g.drbgPolicy = true, drbgPolicy
			if err := g.instantiateDRBGs(); err != nil {
				return failStarted(err)
			}
		}
	}
	return g, nil
}

// Generator is the concrete Source returned by Open (and by the deprecated
// New). Beyond the Source interface it exposes the profile it runs under and
// the evaluation estimators of Section 7.3. It is safe for concurrent use.
//
// A Generator is served as a 1-member pool: the embedded servingCore carries
// the single member (health monitor, DRBG state, tier accounting) and
// implements Read, ReadBits, ReadRaw, Uint64 and Close — the same
// implementations a Pool serves through.
type Generator struct {
	servingCore

	profile *Profile
	dev     device.Device
	// pubDev is the public backend view of dev; ownsDev records whether the
	// generator opened it (and must close it) or the caller supplied it via
	// WithDevice. backend is the backend name the device came from.
	pubDev  Device
	ownsDev bool
	backend string
	pat     pattern.Pattern
	trcdNS  float64
	sels    []core.BankSelection

	// Exactly one of trng (sequential) and eng (sharded) is non-nil; the
	// serving member's sampler is the same object.
	ctrl *memctrl.Controller
	trng *core.TRNG
	eng  *core.Engine

	// legacy is the Engine attached through the deprecated Engine method;
	// while set, estimates refuse to run (their fresh controllers would
	// desynchronise the running shards' bank state).
	legacy *Engine // drange:guardedby mu
}

// closeLegacyLocked stops an engine attached through the deprecated Engine
// method. It runs as the serving core's closeHook, under mu.
func (g *Generator) closeLegacyLocked() {
	if g.legacy != nil {
		g.legacy.eng.Close()
		g.legacy = nil
	}
}

// Profile returns the device profile this generator runs under.
func (g *Generator) Profile() *Profile { return g.profile }

// Backend returns the name of the device backend this generator samples
// ("sim" unless WithBackend or WithDevice chose otherwise; "custom" for a
// WithDevice device).
func (g *Generator) Backend() string { return g.backend }

// Device returns the public view of the device this generator samples.
func (g *Generator) Device() Device { return g.pubDev }

// Banks returns the number of banks sampled for generation.
func (g *Generator) Banks() int { return len(g.sels) }

// Shards returns the number of parallel harvesting shards (0 for the
// sequential sampler).
func (g *Generator) Shards() int {
	if g.eng != nil {
		return g.eng.Shards()
	}
	return 0
}

// Cells returns the RNG cells sampled for generation, with the profile's
// delta chain resolved.
func (g *Generator) Cells() []Cell { return g.profile.EffectiveCells() }

// Selections returns the per-bank DRAM-word selections used for generation,
// with the profile's delta chain resolved.
func (g *Generator) Selections() []Selection { return g.profile.EffectiveSelections() }

// DensityHistograms returns the Figure 7 data for this device: the number of
// DRAM words containing x RNG cells, per bank.
func (g *Generator) DensityHistograms() []Density { return g.profile.DensityHistograms() }

// Stats returns the per-shard and aggregate throughput/latency accounting in
// simulated DRAM time. A sequential generator reports itself as one shard.
func (g *Generator) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.eng != nil {
		st := statsFromEngine(g.eng.Stats())
		// Per-shard delivery counts bits drained from the shard rings; the
		// aggregate reports what callers actually received (they differ
		// only under a post-processing chain).
		st.BitsDelivered = g.delivered.Load()
		st.Health = g.healthStatsLocked()
		g.tierStatsLocked(&st)
		return st
	}
	bits := g.trng.BitsGenerated()
	cycles := g.ctrl.Now()
	ns := g.ctrl.Params().NS(cycles)
	ss := ShardStats{
		Shard:            0,
		Banks:            g.trng.Banks(),
		BitsPerIteration: g.trng.BitsPerIteration(),
		BitsHarvested:    bits,
		BitsDelivered:    g.members[0].fetched.Load(),
		SimCycles:        cycles,
		SimNS:            ns,
	}
	if ns > 0 && bits > 0 {
		ss.ThroughputMbps = float64(bits) / ns * 1000.0
		ss.Latency64NS = ns / float64(bits) * 64.0
	}
	st := Stats{
		Shards:                  []ShardStats{ss},
		BitsHarvested:           bits,
		BitsDelivered:           g.delivered.Load(),
		AggregateThroughputMbps: ss.ThroughputMbps,
		Latency64NS:             ss.Latency64NS,
		Health:                  g.healthStatsLocked(),
	}
	g.tierStatsLocked(&st)
	return st
}

// errEngineActive is returned by the estimators while harvesting shards own
// the device.
func errEngineActive() error {
	return fmt.Errorf("drange: estimates unavailable while a harvesting engine is active on this device: the estimator's fresh controller would race the shards' bank state; Close the engine (or open a sequential Source) first")
}

// estimate runs fn while holding the generator lock, guarding against an
// active engine and re-synchronising the sequential sampler's bank state
// afterwards (the estimator's fresh controller precharges the device).
func (g *Generator) estimate(fn func() error) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed.Load() {
		return fmt.Errorf("drange: source is closed")
	}
	if g.eng != nil || g.legacy != nil {
		return errEngineActive()
	}
	err := fn()
	if rerr := g.resyncBanks(); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// resyncBanks restores the "all banks precharged" state both in the device
// and in the sequential controller's view of it, after another controller
// has driven the device.
func (g *Generator) resyncBanks() error {
	if g.ctrl == nil {
		return nil
	}
	for bank := 0; bank < g.dev.Geometry().Banks; bank++ {
		// Sync the controller's bank-state machine first (issues a PRE for
		// rows it believes open), then close whatever the estimator's
		// controller actually left open in the device.
		if err := g.ctrl.PrechargeBank(bank); err != nil {
			return fmt.Errorf("drange: resynchronising bank %d: %w", bank, err)
		}
		if err := g.dev.Precharge(bank); err != nil {
			return fmt.Errorf("drange: resynchronising bank %d: %w", bank, err)
		}
	}
	return nil
}

// EstimateThroughput measures the single-channel throughput (Mb/s) with the
// given number of banks on a fresh controller over the same device — the
// computation behind Figure 8. banks must be in [1, Banks()]; out-of-range
// values error rather than silently clamping.
func (g *Generator) EstimateThroughput(banks, iterations int) (Throughput, error) {
	var out Throughput
	err := g.estimate(func() error {
		if banks <= 0 || banks > len(g.sels) {
			return fmt.Errorf("drange: %d banks requested but the profile selects %d; pass a value in [1,%d]", banks, len(g.sels), len(g.sels))
		}
		ctrl := memctrl.NewController(g.dev)
		res, err := core.ThroughputEstimate(ctrl, g.sels, g.trcdNS, banks, iterations)
		if err != nil {
			return fmt.Errorf("drange: %w", err)
		}
		out = Throughput{
			Banks:            res.Banks,
			BitsPerIteration: res.BitsPerIteration,
			NSPerIteration:   res.NSPerIteration,
			ThroughputMbps:   res.ThroughputMbps,
		}
		return nil
	})
	return out, err
}

// EstimateLatency measures the time in nanoseconds to produce bits random
// bits using the top banks bank selections — the Section 7.3 latency
// analysis, whose bounds come from a single sparse bank (worst case) versus
// every bank of every channel (best case).
func (g *Generator) EstimateLatency(banks, bits int) (float64, error) {
	var out float64
	err := g.estimate(func() error {
		if banks <= 0 || banks > len(g.sels) {
			return fmt.Errorf("drange: %d banks requested but the profile selects %d; pass a value in [1,%d]", banks, len(g.sels), len(g.sels))
		}
		ctrl := memctrl.NewController(g.dev)
		lat, err := core.LatencyEstimate(ctrl, g.sels, g.trcdNS, banks, bits)
		if err != nil {
			return fmt.Errorf("drange: %w", err)
		}
		out = lat
		return nil
	})
	return out, err
}

// EstimateLatency64 measures the time in nanoseconds to produce 64 random
// bits using all selected banks (Section 7.3).
func (g *Generator) EstimateLatency64() (float64, error) {
	return g.EstimateLatency(len(g.sels), 64)
}

// EstimateEnergyPerBit returns the marginal energy per generated bit in
// nanojoules, using the LPDDR4 power model (Section 7.3).
func (g *Generator) EstimateEnergyPerBit(iterations int) (float64, error) {
	var out float64
	err := g.estimate(func() error {
		ctrl := memctrl.NewController(g.dev, memctrl.WithTrace())
		nj, err := core.EnergyEstimate(ctrl, g.sels, g.trcdNS, len(g.sels), iterations, power.NewLPDDR4Model())
		if err != nil {
			return fmt.Errorf("drange: %w", err)
		}
		out = nj
		return nil
	})
	return out, err
}

// maxNISTBits bounds a RunNIST request: the battery needs the whole stream
// in memory (one byte per bit), so an absurd request is rejected up front
// instead of attempting a multi-gigabyte allocation.
const maxNISTBits = 1 << 30

// RunNIST generates bits from the generator and runs the full NIST SP 800-22
// suite over them at the given significance level (the NIST-recommended
// α = 0.0001 when 0). bits must be in (0, 2^30]: the suite holds the whole
// bit-per-byte stream in memory.
func (g *Generator) RunNIST(bits int, alpha float64) ([]NISTResult, error) {
	if bits > maxNISTBits {
		return nil, fmt.Errorf("drange: RunNIST request of %d bits exceeds the %d-bit limit", bits, maxNISTBits)
	}
	if alpha == 0 {
		alpha = nist.DefaultAlpha
	}
	stream, err := g.ReadBits(bits)
	if err != nil {
		return nil, err
	}
	res, err := nist.RunAll(stream, alpha)
	if err != nil {
		return nil, fmt.Errorf("drange: %w", err)
	}
	out := make([]NISTResult, 0, len(res.Results))
	for _, r := range res.Results {
		out = append(out, NISTResult{
			Name:       r.Name,
			PValue:     r.PValue,
			Applicable: r.Applicable,
			Pass:       r.Pass,
			Detail:     r.Detail,
		})
	}
	return out, nil
}

var _ Source = (*Generator)(nil)
