// Package drange is the public facade of the D-RaNGe reproduction: it wires
// the simulated DRAM substrate, the memory controller, the characterization
// pipeline and the Algorithm 2 sampler into a single high-level API.
//
// Typical use:
//
//	gen, err := drange.New(drange.Config{Manufacturer: "A"})
//	if err != nil { ... }
//	buf := make([]byte, 32)
//	if _, err := gen.Read(buf); err != nil { ... } // 32 random bytes
//
// New profiles the simulated device, identifies RNG cells (Section 6.1 of
// the paper), selects the best two DRAM words per bank (Section 6.2), and
// returns a Generator whose Read method streams true random bytes produced
// by deliberately violating the DRAM activation latency.
package drange

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/nist"
	"repro/internal/pattern"
	"repro/internal/power"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Config describes how to open a simulated device and prepare it for random
// number generation. The zero value is usable: it opens a manufacturer-A
// LPDDR4 device with OS-entropy-backed noise and profiles a modest region of
// every bank.
type Config struct {
	// Manufacturer selects the device profile: "A", "B" or "C".
	Manufacturer string
	// Serial selects the simulated device instance (process variation).
	Serial uint64
	// Deterministic replaces the OS-entropy noise source with a seeded one,
	// making the generator reproducible. Never use this for real keys.
	Deterministic bool
	// Geometry optionally overrides the simulated device geometry.
	Geometry dram.Geometry

	// ReducedTRCDNS is the activation latency used for profiling and
	// generation; 0 selects the paper's 10 ns.
	ReducedTRCDNS float64

	// ProfileRowsPerBank and ProfileWordsPerRow bound the region profiled in
	// each bank during RNG-cell identification; 0 selects 128 rows and 8
	// words. Larger regions find more RNG cells (higher throughput) at the
	// cost of a longer identification phase.
	ProfileRowsPerBank int
	ProfileWordsPerRow int
	// ProfileBanks is the number of banks to profile; 0 profiles all banks.
	ProfileBanks int

	// Identification parameters; zero values select practical defaults
	// (600 samples, ±35% symbol tolerance, ±2% bias bound).
	// PaperIdentification selects the paper's exact criterion (1000
	// samples, ±10%), which is slower and much more selective.
	Samples             int
	Tolerance           float64
	MaxBiasDelta        float64
	ScreenIterations    int
	PaperIdentification bool
}

func (c Config) withDefaults() Config {
	if c.Manufacturer == "" {
		c.Manufacturer = "A"
	}
	if c.ReducedTRCDNS == 0 {
		c.ReducedTRCDNS = 10.0
	}
	if c.ProfileRowsPerBank == 0 {
		c.ProfileRowsPerBank = 128
	}
	if c.ProfileWordsPerRow == 0 {
		c.ProfileWordsPerRow = 8
	}
	if c.Samples == 0 {
		c.Samples = 600
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.35
	}
	if c.MaxBiasDelta == 0 {
		c.MaxBiasDelta = 0.02
	}
	if c.ScreenIterations == 0 {
		c.ScreenIterations = 50
	}
	if c.PaperIdentification {
		c.Samples = 1000
		c.Tolerance = 0.10
		c.ScreenIterations = 100
	}
	return c
}

// Generator is a ready-to-use D-RaNGe true random number generator over one
// simulated DRAM channel. It implements io.Reader. It is not safe for
// concurrent use; for a thread-safe, multi-bank-parallel generator call
// Engine.
type Generator struct {
	cfg        Config
	device     *dram.Device
	controller *memctrl.Controller
	pattern    pattern.Pattern
	cells      []core.RNGCell
	selections []core.BankSelection
	trng       *core.TRNG
}

// New opens a simulated device, identifies its RNG cells and prepares the
// Algorithm 2 sampler.
func New(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	m := dram.Manufacturer(cfg.Manufacturer)
	if _, err := dram.ProfileFor(m); err != nil {
		return nil, fmt.Errorf("drange: %w", err)
	}
	var noise dram.NoiseSource
	if cfg.Deterministic {
		// Per-bank streams keep deterministic output reproducible even when
		// a sharded Engine harvests several banks concurrently.
		noise = dram.NewDeterministicBankNoise(cfg.Serial ^ 0xD0A11CE5)
	}
	dev, err := dram.NewDevice(dram.Config{
		Serial:       cfg.Serial,
		Manufacturer: m,
		Geometry:     cfg.Geometry,
		Timing:       timing.NewLPDDR4(),
		Noise:        noise,
	})
	if err != nil {
		return nil, fmt.Errorf("drange: %w", err)
	}
	ctrl := memctrl.NewController(dev, memctrl.WithTrace())
	g := &Generator{cfg: cfg, device: dev, controller: ctrl}

	idCfg := core.DefaultIdentifyConfig(cfg.Manufacturer)
	g.pattern = idCfg.Pattern
	idCfg.TRCDNS = cfg.ReducedTRCDNS
	idCfg.Samples = cfg.Samples
	idCfg.Tolerance = cfg.Tolerance
	idCfg.MaxBiasDelta = cfg.MaxBiasDelta
	idCfg.ScreenIterations = cfg.ScreenIterations

	geom := dev.Geometry()
	banks := cfg.ProfileBanks
	if banks <= 0 || banks > geom.Banks {
		banks = geom.Banks
	}
	rows := cfg.ProfileRowsPerBank
	if rows > geom.RowsPerBank {
		rows = geom.RowsPerBank
	}
	words := cfg.ProfileWordsPerRow
	if words > geom.WordsPerRow() {
		words = geom.WordsPerRow()
	}
	for bank := 0; bank < banks; bank++ {
		region := profiler.Region{Bank: bank, RowStart: 0, RowCount: rows, WordStart: 0, WordCount: words}
		cells, err := core.IdentifyRNGCells(ctrl, region, idCfg)
		if err != nil {
			return nil, fmt.Errorf("drange: identifying RNG cells in bank %d: %w", bank, err)
		}
		g.cells = append(g.cells, cells...)
	}
	if len(g.cells) == 0 {
		return nil, fmt.Errorf("drange: no RNG cells found; enlarge the profiling region or loosen the tolerance")
	}
	sels, err := core.SelectBankWords(g.cells)
	if err != nil {
		return nil, fmt.Errorf("drange: %w", err)
	}
	g.selections = sels
	trng, err := core.NewTRNG(ctrl, sels, core.TRNGConfig{
		TRCDNS:  cfg.ReducedTRCDNS,
		Pattern: idCfg.Pattern,
	})
	if err != nil {
		return nil, fmt.Errorf("drange: %w", err)
	}
	g.trng = trng
	return g, nil
}

// Read fills p with true random bytes (io.Reader).
func (g *Generator) Read(p []byte) (int, error) { return g.trng.Read(p) }

// ReadBits returns n random bits, one per byte.
func (g *Generator) ReadBits(n int) ([]byte, error) { return g.trng.ReadBits(n) }

// Uint64 returns a 64-bit random value.
func (g *Generator) Uint64() (uint64, error) { return g.trng.Uint64() }

// Cells returns the identified RNG cells.
func (g *Generator) Cells() []core.RNGCell { return g.cells }

// Selections returns the per-bank DRAM-word selections used for generation.
func (g *Generator) Selections() []core.BankSelection { return g.selections }

// Banks returns the number of banks sampled in parallel.
func (g *Generator) Banks() int { return g.trng.Banks() }

// Device returns the underlying simulated DRAM device.
func (g *Generator) Device() *dram.Device { return g.device }

// Controller returns the underlying memory controller.
func (g *Generator) Controller() *memctrl.Controller { return g.controller }

// DensityHistograms returns the Figure 7 data for this device: the number of
// DRAM words containing x RNG cells, per bank.
func (g *Generator) DensityHistograms() []core.DensityHistogram {
	return core.RNGCellDensity(g.cells)
}

// EstimateThroughput measures the single-channel throughput (Mb/s) with the
// given number of banks on a fresh controller over the same device.
func (g *Generator) EstimateThroughput(banks, iterations int) (sim.LoopResult, error) {
	ctrl := memctrl.NewController(g.device)
	if banks > len(g.selections) {
		banks = len(g.selections)
	}
	return core.ThroughputEstimate(ctrl, g.selections, g.cfg.ReducedTRCDNS, banks, iterations)
}

// EstimateLatency64 measures the time in nanoseconds to produce 64 random
// bits using all selected banks.
func (g *Generator) EstimateLatency64() (float64, error) {
	ctrl := memctrl.NewController(g.device)
	return core.LatencyEstimate(ctrl, g.selections, g.cfg.ReducedTRCDNS, len(g.selections), 64)
}

// EstimateEnergyPerBit returns the marginal energy per generated bit in
// nanojoules, using the LPDDR4 power model.
func (g *Generator) EstimateEnergyPerBit(iterations int) (float64, error) {
	ctrl := memctrl.NewController(g.device, memctrl.WithTrace())
	return core.EnergyEstimate(ctrl, g.selections, g.cfg.ReducedTRCDNS, len(g.selections), iterations, power.NewLPDDR4Model())
}

// RunNIST generates bits from the generator and runs the full NIST SP 800-22
// suite over them at the given significance level (DefaultAlpha when 0).
func (g *Generator) RunNIST(bits int, alpha float64) (nist.SuiteResult, error) {
	if alpha == 0 {
		alpha = nist.DefaultAlpha
	}
	stream, err := g.ReadBits(bits)
	if err != nil {
		return nist.SuiteResult{}, err
	}
	return nist.RunAll(stream, alpha)
}

var _ io.Reader = (*Generator)(nil)

// EngineStats and ShardStats re-export the engine's per-shard and aggregate
// throughput/latency accounting.
type (
	EngineStats = core.EngineStats
	ShardStats  = core.ShardStats
)

// Engine is a concurrent sharded D-RaNGe generator: the Generator's bank
// selections partitioned across per-shard memory controllers (one simulated
// channel/rank per shard) harvesting in parallel into a bounded packed-bit
// ring. It is safe for concurrent use and implements io.Reader. See
// core.Engine for the sharding and determinism semantics.
type Engine struct {
	eng *core.Engine
}

// Engine starts a sharded harvesting engine over the generator's device and
// bank selections; shards <= 0 selects the default (one shard per bank, at
// most four). The engine stops when ctx is cancelled or Close is called.
//
// The engine's controllers take over the device, so use either the Engine or
// the Generator's own Read at a time, not both: Generator reads issued after
// the engine starts fail loudly with a bank-state error.
func (g *Generator) Engine(ctx context.Context, shards int) (*Engine, error) {
	if shards < 0 {
		shards = 0
	}
	eng, err := core.NewEngine(ctx, g.device, g.selections, core.EngineConfig{
		Shards: shards,
		TRNG:   core.TRNGConfig{TRCDNS: g.cfg.ReducedTRCDNS, Pattern: g.pattern},
	})
	if err != nil {
		return nil, fmt.Errorf("drange: %w", err)
	}
	return &Engine{eng: eng}, nil
}

// Read fills p with true random bytes (io.Reader). Safe for concurrent use.
func (e *Engine) Read(p []byte) (int, error) { return e.eng.Read(p) }

// ReadBits returns n random bits, one per byte. Safe for concurrent use.
func (e *Engine) ReadBits(n int) ([]byte, error) { return e.eng.ReadBits(n) }

// Uint64 returns a 64-bit random value. Safe for concurrent use.
func (e *Engine) Uint64() (uint64, error) { return e.eng.Uint64() }

// Shards returns the number of harvesting shards.
func (e *Engine) Shards() int { return e.eng.Shards() }

// Stats returns the per-shard and aggregate throughput/latency accounting in
// simulated DRAM time.
func (e *Engine) Stats() EngineStats { return e.eng.Stats() }

// Close stops the harvesting goroutines and waits for them to exit.
func (e *Engine) Close() error { return e.eng.Close() }

var (
	_ io.Reader = (*Engine)(nil)
	_ io.Closer = (*Engine)(nil)
)
