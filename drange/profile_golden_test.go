package drange

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// updateGolden rewrites the golden files instead of comparing against them:
//
//	go test ./drange -run TestProfileV1GoldenFile -update
//
// Only do this for a deliberate, documented format change.
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// newV1GoldenProfile is a hand-built, fully deterministic v1 profile
// covering every wire-format field. The golden-file test freezes its
// encoding byte-for-byte (so any accidental change to field names, ordering,
// number formatting or checksum placement fails loudly) and FuzzProfileDecode
// derives its seed corpus from it. It panics rather than taking a *testing.T
// because fuzz seeding has none.
func newV1GoldenProfile() *Profile {
	p := &Profile{
		Version:      ProfileVersion,
		Manufacturer: "A",
		Serial:       42,
		Geometry: Geometry{
			Banks:        2,
			RowsPerBank:  64,
			ColsPerRow:   1024,
			SubarrayRows: 32,
			WordBits:     256,
		},
		Characterization: CharacterizationParams{
			TRCDNS:           10,
			Samples:          600,
			Tolerance:        0.35,
			MaxBiasDelta:     0.02,
			ScreenIterations: 50,
			Pattern:          "SOLID0",
			RowsPerBank:      64,
			WordsPerRow:      4,
			Banks:            2,
			Deterministic:    true,
		},
		Cells: []Cell{
			{Bank: 0, Row: 1, Col: 10, Word: 0, FailProbability: 0.5, SymbolEntropy: 2.99},
			{Bank: 0, Row: 2, Col: 300, Word: 1, FailProbability: 0.49, SymbolEntropy: 2.97},
		},
		Selections: []Selection{
			{
				Bank:  0,
				Word1: WordSelection{Row: 1, Word: 0, Cols: []int{10}},
				Word2: WordSelection{Row: 2, Word: 1, Cols: []int{300}},
			},
		},
	}
	if err := p.Seal(); err != nil {
		panic(err)
	}
	return p
}

const goldenProfilePath = "testdata/profile_v1.golden.json"

// TestProfileV1GoldenFile freezes the v1 Profile JSON wire format: the
// committed golden file must decode and validate, and re-encoding the same
// logical profile must reproduce it byte-for-byte. A mismatch means the wire
// format changed — which requires a version bump and a compatibility shim,
// not a silent re-blessing of the golden file.
func TestProfileV1GoldenFile(t *testing.T) {
	encoded, err := newV1GoldenProfile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenProfilePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenProfilePath, encoded, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenProfilePath)
		return
	}
	golden, err := os.ReadFile(goldenProfilePath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(encoded, golden) {
		t.Fatalf("profile v1 wire format changed.\nEncoding a fixed profile no longer matches %s.\nIf this is intentional, bump ProfileVersion, keep a decode path for v1, and regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s",
			goldenProfilePath, encoded, golden)
	}

	// The golden bytes must round-trip through the public decode path.
	decoded, err := DecodeProfile(golden)
	if err != nil {
		t.Fatalf("golden profile no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(decoded, newV1GoldenProfile()) {
		t.Error("decoded golden profile differs from the in-memory original")
	}
}

// TestProfileV1GoldenShape pins the structural facts a byte comparison alone
// would bury in a diff: the exact top-level field set, their order, and the
// checksum sitting last (so the integrity digest visibly covers everything
// before it).
func TestProfileV1GoldenShape(t *testing.T) {
	golden, err := os.ReadFile(goldenProfilePath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	dec := json.NewDecoder(bytes.NewReader(golden))
	if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
		t.Fatalf("golden file does not open an object: %v %v", tok, err)
	}
	var keys []string
	depth := 0
	expectKey := true
	for dec.More() || depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch v := tok.(type) {
		case json.Delim:
			switch v {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
			expectKey = depth == 0
		case string:
			if depth == 0 && expectKey {
				keys = append(keys, v)
				expectKey = false
				continue
			}
			if depth == 0 {
				expectKey = true
			}
		default:
			if depth == 0 {
				expectKey = true
			}
		}
	}
	want := []string{"version", "manufacturer", "serial", "geometry", "characterization", "cells", "selections", "checksum"}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("top-level field order = %v, want %v", keys, want)
	}
	if keys[len(keys)-1] != "checksum" {
		t.Error("checksum is not the last top-level field")
	}
	if !strings.Contains(string(golden), `"checksum": "sha256:`) {
		t.Error("checksum is not a sha256-tagged digest")
	}
}
