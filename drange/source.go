package drange

// The math/rand/v2 import below is interface-only: RandSource adapts a
// Source INTO a rand.Source so D-RaNGe entropy can back stdlib consumers.
// Entropy flows out through the adapter; no pseudo-random bit ever enters
// the entropy path.
//
//drange:entropyflow-exempt rand.Source adapter exports entropy to math/rand, none flows in

import (
	"fmt"
	"io"
	mrand "math/rand/v2"

	"repro/internal/postproc"
)

// Source is a running D-RaNGe random number source. Open returns a Source
// whether the underlying sampler is the sequential single-controller core or
// the concurrent sharded engine — WithShards is the only difference callers
// see. Every Source is safe for concurrent use; Read never returns a short
// read except on error, and Close releases the sampling resources (stopping
// harvest goroutines when sharded).
//
// Read is the fast representation: it fills the caller's buffer directly
// from the sampler's packed 64-bit words (zero steady-state allocations
// without a monitor or post-processing chain). ReadBits serves the same
// stream bit-granularly — one value-0/1 byte per bit — as an unpacking
// adapter; mixing the two drains a single well-defined bit sequence, no bit
// is dropped or duplicated at the boundary.
// With WithDRBG attached, Read (and ReadBits and Uint64) serve the DRBG
// tier — deterministic output expanded from health-screened raw entropy —
// and ReadRaw keeps serving the raw physical tier. Without WithDRBG the two
// are the same stream.
type Source interface {
	io.ReadCloser
	// ReadBits returns n random bits, one bit per returned byte (0 or 1).
	ReadBits(n int) ([]byte, error)
	// ReadRaw fills p with raw harvested bytes — the physical tier,
	// bypassing any WithDRBG expansion (health tests and post-processing
	// still apply). Without WithDRBG it is identical to Read.
	ReadRaw(p []byte) (int, error)
	// Uint64 returns a 64-bit random value.
	Uint64() (uint64, error)
	// Stats returns the per-shard and aggregate throughput/latency
	// accounting in simulated DRAM time.
	Stats() Stats
}

// randSource adapts a Source to math/rand/v2.
type randSource struct {
	src Source
}

// Uint64 implements math/rand/v2.Source. A Source only fails when its device
// simulation fails or it has been closed — programming errors, not
// transients — so the adapter panics rather than silently degrading a
// randomness stream.
func (r randSource) Uint64() uint64 {
	v, err := r.src.Uint64()
	if err != nil {
		panic(fmt.Sprintf("drange: rand.Source read failed: %v", err))
	}
	return v
}

// RandSource adapts s to a math/rand/v2 Source, so D-RaNGe can back
// rand.New for shuffles, samplers and every other stdlib consumer. The
// adapter panics if the underlying Source fails (e.g. after Close).
func RandSource(s Source) mrand.Source {
	return randSource{src: s}
}

// Corrector is one post-processing (de-biasing) stage from Section 2.2 of
// the paper, applied to a raw bitstream of one bit per byte. Correctors
// typically shrink the stream. Implementations must be deterministic and
// must not fail on an empty input; parameter validation may reject an empty
// input call with an error, which Open surfaces when the chain is attached.
type Corrector interface {
	// Name identifies the technique.
	Name() string
	// Process returns the corrected bitstream.
	Process(bits []byte) ([]byte, error)
}

// corrector adapts an internal postproc.Corrector and remembers its block
// granularity so the streaming chain can size batches that no stage
// truncates mid-block.
type corrector struct {
	inner postproc.Corrector
	block int
}

func (c corrector) Name() string                        { return c.inner.Name() }
func (c corrector) Process(bits []byte) ([]byte, error) { return c.inner.Process(bits) }

// VonNeumann returns the classic von Neumann corrector: it consumes bits in
// pairs, emits the first bit of each 01/10 pair, and discards 00/11 pairs.
func VonNeumann() Corrector {
	return corrector{inner: postproc.VonNeumann{}, block: 2}
}

// XORDecimator returns a corrector that XORs non-overlapping groups of
// factor raw bits into single output bits, reducing bias exponentially at a
// linear throughput cost. factor must be at least 2.
func XORDecimator(factor int) Corrector {
	return corrector{inner: postproc.XORDecimator{Factor: factor}, block: factor}
}

// SHA256Conditioner returns a corrector that hashes inputBlockBits-sized raw
// blocks with SHA-256 and emits the digest bits — the cryptographic
// conditioning approach of the retention-based TRNGs. inputBlockBits must be
// at least 256.
func SHA256Conditioner(inputBlockBits int) Corrector {
	return corrector{inner: postproc.SHA256Conditioner{InputBlockBits: inputBlockBits}, block: inputBlockBits}
}

// postStage is one corrector in a streaming chain plus its carry buffer:
// input bits short of the stage's block granularity wait here for the next
// batch instead of being truncated, so the streamed output equals the
// corrector applied to the whole concatenated input. The stream is carried in
// the packed representation; built-in correctors process it packed, and
// correctors of unknown provenance are served through an unpack/repack
// adapter around their bit-per-byte Process.
type postStage struct {
	c Corrector
	// packed is the corrector's packed fast path (nil for custom correctors).
	packed postproc.PackedCorrector
	// block is the stage's processing granularity (0 for correctors of
	// unknown structure, which are fed batch-at-a-time).
	block int
	carry postproc.Packed
}

// feed runs the stage over its carry plus the incoming bits, consuming the
// largest block-aligned prefix and retaining the remainder for later.
func (s *postStage) feed(in postproc.Packed) (postproc.Packed, error) {
	s.carry.Append(in)
	usable := s.carry.Len
	if s.block > 1 {
		usable -= usable % s.block
	}
	if usable == 0 {
		return postproc.Packed{}, nil
	}
	// The carry always starts at bit 0, so a fully consumed carry is a
	// cheap view; a partial prefix is re-materialised so the bits past Len
	// stay zero, the invariant postproc.Packed consumers rely on.
	prefix := postproc.Packed{Data: s.carry.Data, Len: usable}
	if usable < s.carry.Len {
		prefix = s.carry.Slice(0, usable)
	}
	var out postproc.Packed
	var err error
	if s.packed != nil {
		out, err = s.packed.ProcessPacked(prefix)
	} else {
		var legacy []byte
		legacy, err = s.c.Process(prefix.Unpack())
		if err == nil {
			out = postproc.PackBits(legacy)
		}
	}
	if err != nil {
		return postproc.Packed{}, fmt.Errorf("drange: postprocess stage %s: %w", s.c.Name(), err)
	}
	s.carry = s.carry.Slice(usable, s.carry.Len-usable)
	return out, nil
}

// postChain streams a corrector chain over a raw bit source: raw bits are
// harvested in packed batches, flow through every stage (each carrying
// sub-block remainders across batches), and corrected bits accumulate packed
// in buf until readers drain them.
type postChain struct {
	stages []*postStage
	buf    postproc.Packed
	// rawBuf is the reusable packed harvest buffer.
	rawBuf []byte
}

// basePostBatch is the raw-bit batch harvested per round; it grows
// transiently when a heavily-discarding chain yields nothing. It is a
// multiple of 8, so packed harvests are whole bytes.
const basePostBatch = 4096

// maxPostBatch bounds batch growth when a chain yields nothing, so a chain
// that discards everything fails loudly instead of harvesting forever.
const maxPostBatch = 1 << 22

func newPostChain(chain []Corrector) (*postChain, error) {
	p := &postChain{}
	for _, c := range chain {
		// Surface parameter errors (bad decimation factor, short SHA block)
		// at open time: every built-in corrector validates its configuration
		// before looking at input bits.
		if _, err := c.Process(nil); err != nil {
			return nil, fmt.Errorf("drange: postprocess stage %s: %w", c.Name(), err)
		}
		s := &postStage{c: c}
		if a, ok := c.(corrector); ok {
			s.block = a.block
			if pc, ok := a.inner.(postproc.PackedCorrector); ok {
				s.packed = pc
			}
		} else if pc, ok := c.(postproc.PackedCorrector); ok {
			s.packed = pc
		}
		p.stages = append(p.stages, s)
	}
	return p, nil
}

// fill harvests and corrects until at least need bits are buffered. rawPacked
// fills its argument with packed raw bytes.
func (p *postChain) fill(need int, rawPacked func([]byte) error) error {
	batch := basePostBatch
	// sinceYield counts the raw bits harvested since the chain last produced
	// output, so the exhaustion error reports the real total the doubling
	// rounds consumed (not just the final batch size).
	sinceYield := 0
	for p.buf.Len < need {
		nb := batch / 8
		if cap(p.rawBuf) < nb {
			p.rawBuf = make([]byte, nb)
		}
		raw := p.rawBuf[:nb]
		if err := rawPacked(raw); err != nil {
			return err
		}
		sinceYield += batch
		bits := postproc.Packed{Data: raw, Len: batch}
		for _, s := range p.stages {
			var err error
			bits, err = s.feed(bits)
			if err != nil {
				return err
			}
			if bits.Len == 0 {
				break
			}
		}
		if bits.Len == 0 {
			batch *= 2
			if batch > maxPostBatch {
				return fmt.Errorf("drange: postprocess chain produced no output from %d raw bits; the chain discards everything", sinceYield)
			}
			continue
		}
		batch = basePostBatch
		sinceYield = 0
		p.buf.Append(bits)
	}
	return nil
}

// readPacked fills dst with corrected bytes, harvesting raw bits via
// rawPacked as needed.
func (p *postChain) readPacked(dst []byte, rawPacked func([]byte) error) error {
	if err := p.fill(len(dst)*8, rawPacked); err != nil {
		return err
	}
	// buf always starts at bit 0, so whole bytes copy straight out.
	copy(dst, p.buf.Data[:len(dst)])
	p.buf = p.buf.Slice(len(dst)*8, p.buf.Len-len(dst)*8)
	return nil
}

// readBits returns n corrected bits, one bit per byte, harvesting raw bits
// via rawPacked as needed.
func (p *postChain) readBits(n int, rawPacked func([]byte) error) ([]byte, error) {
	if err := p.fill(n, rawPacked); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = p.buf.Bit(i)
	}
	p.buf = p.buf.Slice(n, p.buf.Len-n)
	return out, nil
}
