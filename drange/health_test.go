package drange

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// stuckBackendOpts configures the faulty backend as a fully stuck device:
// every column reads 1, the worst case the health tests must catch.
func stuckBackendOpts() map[string]string {
	return map[string]string{"stuck": "1", "stuck-value": "1"}
}

// noStartup disables the startup self-test so the continuous RCT/APT path is
// exercised (the startup test would otherwise reject a stuck device at Open).
func noStartup(p HealthTestPolicy) HealthTestPolicy {
	p.StartupBits = -1
	return p
}

// TestHealthStartupRejectsStuckDevice: with the default policy the startup
// self-test runs at Open, before any byte is served — a stuck device never
// produces a usable Source.
func TestHealthStartupRejectsStuckDevice(t *testing.T) {
	_, err := Open(context.Background(), quickProfile(t),
		WithBackend("faulty", stuckBackendOpts()),
		WithHealthTests(HealthTestPolicy{}))
	var herr *HealthError
	if !errors.As(err, &herr) {
		t.Fatalf("Open on a stuck device returned %v, want a *HealthError", err)
	}
	if herr.Test != "startup" || herr.Device != -1 {
		t.Errorf("startup failure reported as %+v", herr)
	}

	// The same policy on a healthy device opens fine, serves bytes, and
	// reports the startup pass in Stats.Health.
	src := openQuick(t, WithHealthTests(HealthTestPolicy{}))
	buf := make([]byte, 64)
	if _, err := src.Read(buf); err != nil {
		t.Fatal(err)
	}
	h := src.Stats().Health
	if h == nil || !h.StartupPassed || h.TotalTrips != 0 {
		t.Errorf("healthy source health stats = %+v", h)
	}
}

// TestHealthErrorPolicyOnStuckDevice: acceptance check for the Error policy —
// a faulty stuck-column device trips the RCT/APT and every read surfaces a
// typed *HealthError while the source stays open.
func TestHealthErrorPolicyOnStuckDevice(t *testing.T) {
	src, err := Open(context.Background(), quickProfile(t),
		WithBackend("faulty", stuckBackendOpts()),
		WithHealthTests(noStartup(HealthTestPolicy{OnFailure: HealthActionError})))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	_, rerr := src.ReadBits(256)
	var herr *HealthError
	if !errors.As(rerr, &herr) {
		t.Fatalf("read from a stuck device returned %v, want a *HealthError", rerr)
	}
	if herr.Test != "rct" && herr.Test != "apt" {
		t.Errorf("stuck columns tripped %q, want rct or apt", herr.Test)
	}
	if herr.Device != -1 {
		t.Errorf("single-source trip reports device %d, want -1", herr.Device)
	}
	// Repeated reads keep failing and the trip counters keep climbing.
	if _, err := src.ReadBits(256); err == nil {
		t.Error("second read from a stuck device succeeded")
	}
	h := src.Stats().Health
	if h == nil || h.RCTTrips+h.APTTrips < 2 || h.TotalTrips != h.RCTTrips+h.APTTrips+h.BiasTrips {
		t.Errorf("health stats after two trips = %+v", h)
	}
	if h.LastViolation == "" {
		t.Error("LastViolation empty after a trip")
	}
}

// TestHealthBlockPolicy: Block stalls on dirty windows — on a permanently
// stuck device it exhausts MaxBlockedWindows and fails loudly; on a healthy
// device it is invisible.
func TestHealthBlockPolicy(t *testing.T) {
	src, err := Open(context.Background(), quickProfile(t),
		WithBackend("faulty", stuckBackendOpts()),
		WithHealthTests(noStartup(HealthTestPolicy{OnFailure: HealthActionBlock, MaxBlockedWindows: 4})))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	_, rerr := src.ReadBits(256)
	var herr *HealthError
	if !errors.As(rerr, &herr) || herr.Test != "blocked" {
		t.Fatalf("blocked read returned %v, want a *HealthError with Test=blocked", rerr)
	}
	if h := src.Stats().Health; h == nil || h.BlockedWindows != 4 {
		t.Errorf("health stats after exhausting the block budget = %+v", h)
	}

	healthy := openQuick(t, WithHealthTests(noStartup(HealthTestPolicy{OnFailure: HealthActionBlock})))
	bits, err := healthy.ReadBits(4096)
	if err != nil || len(bits) != 4096 {
		t.Fatalf("healthy blocking read: %d bits, err %v", len(bits), err)
	}
	if h := healthy.Stats().Health; h.BlockedWindows != 0 {
		t.Errorf("healthy source discarded %d windows", h.BlockedWindows)
	}
}

// TestHealthEvictPolicyInPool: acceptance check for the pool policy — the
// stuck member is evicted by the health tests while Read keeps succeeding,
// and the output stays unbiased.
func TestHealthEvictPolicyInPool(t *testing.T) {
	profiles := poolProfiles(t, 4)
	pool, err := OpenPool(context.Background(), profiles,
		WithDeviceBackend(2, "faulty", stuckBackendOpts()),
		WithHealthTests(noStartup(HealthTestPolicy{})))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	buf := make([]byte, 512)
	for i := 0; i < 16; i++ {
		if _, err := pool.Read(buf); err != nil {
			t.Fatalf("pool read %d failed during health eviction: %v", i, err)
		}
	}
	if pool.Healthy() != 3 {
		t.Fatalf("healthy devices = %d, want 3 (devices: %+v)", pool.Healthy(), pool.Stats().Devices)
	}
	st := pool.Stats()
	d := st.Devices[2]
	if !d.Evicted || !strings.Contains(d.Reason, "health test") {
		t.Errorf("stuck member state = %+v, want a health-test eviction", d)
	}
	if d.Health == nil || d.Health.RCTTrips+d.Health.APTTrips == 0 {
		t.Errorf("stuck member health stats = %+v, want RCT/APT trips", d.Health)
	}
	if st.Health == nil || st.Health.TotalTrips == 0 {
		t.Errorf("aggregate health stats = %+v", st.Health)
	}
	for i, dd := range st.Devices {
		if i == 2 {
			continue
		}
		if dd.Evicted {
			t.Errorf("healthy device %d evicted: %+v", i, dd)
		}
		if dd.Health == nil || dd.Health.TotalTrips != 0 {
			t.Errorf("healthy device %d health stats = %+v", i, dd.Health)
		}
	}
	post := make([]byte, 2048)
	if _, err := pool.Read(post); err != nil {
		t.Fatal(err)
	}
	checkBias(t, post)
}

// TestHealthPoolStartupEviction: a member failing its startup self-test under
// the (default) evict action never serves a byte; a pool whose every member
// fails must not open at all.
func TestHealthPoolStartupEviction(t *testing.T) {
	profiles := poolProfiles(t, 3)
	pool, err := OpenPool(context.Background(), profiles,
		WithDeviceBackend(1, "faulty", stuckBackendOpts()),
		WithHealthTests(HealthTestPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Healthy() != 2 {
		t.Fatalf("healthy devices = %d, want 2 after startup eviction", pool.Healthy())
	}
	d := pool.Stats().Devices[1]
	if !d.Evicted || !strings.Contains(d.Reason, "startup") || d.Health == nil || d.Health.StartupPassed {
		t.Errorf("startup-failed member state = %+v (health %+v)", d, d.Health)
	}
	if st := pool.Stats(); st.Health == nil || st.Health.StartupPassed {
		t.Errorf("aggregate startup state = %+v, want StartupPassed=false", st.Health)
	}
	buf := make([]byte, 256)
	if _, err := pool.Read(buf); err != nil {
		t.Fatalf("read after startup eviction: %v", err)
	}

	if _, err := OpenPool(context.Background(), profiles[:1],
		WithBackend("faulty", stuckBackendOpts()),
		WithHealthTests(HealthTestPolicy{})); err == nil {
		t.Error("a pool whose every member fails startup opened anyway")
	}
}

// TestHealthPoolErrorPolicy: the Error action surfaces the member index.
func TestHealthPoolErrorPolicy(t *testing.T) {
	profiles := poolProfiles(t, 2)
	pool, err := OpenPool(context.Background(), profiles,
		WithDeviceBackend(1, "faulty", stuckBackendOpts()),
		WithHealthTests(noStartup(HealthTestPolicy{OnFailure: HealthActionError})))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	var herr *HealthError
	for i := 0; i < 64; i++ {
		if _, err := pool.ReadBits(64); err != nil {
			if !errors.As(err, &herr) {
				t.Fatalf("pool read failed with %v, want a *HealthError", err)
			}
			break
		}
	}
	if herr == nil {
		t.Fatal("no health error from a pool with a stuck member under the Error action")
	}
	if herr.Device != 1 {
		t.Errorf("trip reported on device %d, want 1", herr.Device)
	}
}

// TestHealthySoakZeroTrips: the acceptance soak — healthy sim devices, the
// full default battery, concurrent readers under the race detector, zero
// trips. Both the single sharded source and the pool are exercised.
func TestHealthySoakZeroTrips(t *testing.T) {
	soak := func(t *testing.T, src Source) {
		t.Helper()
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]byte, 1024)
				for i := 0; i < 8; i++ {
					if _, err := src.Read(buf); err != nil {
						t.Errorf("soak read: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		h := src.Stats().Health
		if h == nil {
			t.Fatal("Stats.Health nil with WithHealthTests attached")
		}
		if h.TotalTrips != 0 || h.BlockedWindows != 0 {
			t.Errorf("healthy soak tripped: %+v", h)
		}
		if !h.StartupPassed {
			t.Error("healthy startup reported as failed")
		}
		if h.BitsTested < 4*8*1024*8 {
			t.Errorf("BitsTested = %d, want at least the %d delivered bits", h.BitsTested, 4*8*1024*8)
		}
	}
	t.Run("sharded", func(t *testing.T) {
		soak(t, openQuick(t, WithShards(2), WithHealthTests(HealthTestPolicy{})))
	})
	t.Run("pool", func(t *testing.T) {
		pool, err := OpenPool(context.Background(), poolProfiles(t, 2), WithHealthTests(HealthTestPolicy{}))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pool.Close() })
		soak(t, pool)
	})
}

// TestHealthTestsOptionValidation covers option scoping and bad policies.
func TestHealthTestsOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Characterize(ctx, WithHealthTests(HealthTestPolicy{})); err == nil {
		t.Error("WithHealthTests accepted by Characterize")
	}
	if _, err := Open(ctx, quickProfile(t), WithHealthTests(HealthTestPolicy{OnFailure: HealthActionEvict})); err == nil {
		t.Error("HealthActionEvict accepted by Open (nothing to evict)")
	}
	if _, err := Open(ctx, quickProfile(t), WithHealthTests(HealthTestPolicy{SymbolBits: 99})); err == nil {
		t.Error("symbol width 99 accepted")
	}
	// Disabled policies are inert: no Stats.Health, no startup harvest.
	src := openQuick(t, WithHealthTests(HealthTestPolicy{Disabled: true}))
	if h := src.Stats().Health; h != nil {
		t.Errorf("disabled policy still reports health stats: %+v", h)
	}
	// The deprecated Engine shim reads around the monitor, so the
	// combination is rejected rather than silently untested.
	monitored := openQuick(t, WithHealthTests(HealthTestPolicy{}))
	if _, err := monitored.(*Generator).Engine(ctx, 2); err == nil {
		t.Error("deprecated Engine shim accepted on a health-monitored source")
	}
}

// TestHealthTestsWithPostprocess: the monitor watches the raw stream feeding
// the corrector chain, so BitsTested outpaces the post-processed delivery.
func TestHealthTestsWithPostprocess(t *testing.T) {
	src := openQuick(t,
		WithPostprocess(VonNeumann()),
		WithHealthTests(noStartup(HealthTestPolicy{})))
	bits, err := src.ReadBits(1024)
	if err != nil || len(bits) != 1024 {
		t.Fatalf("post-processed read: %d bits, err %v", len(bits), err)
	}
	h := src.Stats().Health
	if h == nil || h.BitsTested <= 1024 {
		t.Errorf("health stats %+v; the raw stream must be tested, not the corrected one", h)
	}
}
