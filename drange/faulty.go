package drange

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// The "faulty" backend wraps another backend and injects the failure modes
// the paper warns about, for robustness testing of pools, health monitoring
// and the self-healing lifecycle. Beyond the original static stuck cells and
// temperature drift it models a scenario matrix of time-dependent faults —
// aging curves, temperature and voltage schedules, retention-time drift — all
// keyed to the device's accumulated read count, so scenarios replay
// deterministically under deterministic noise.
//
// Options (this comment is the backend's help; every option is validated and
// unknown options are rejected):
//
//   - "inner": the wrapped backend (default "sim"); inner options via
//     "inner.<key>".
//   - "stuck": fraction of columns stuck from the first read, in [0,1]
//     (default 1 — every read returns the stuck value, the worst case).
//     Models failed sense amplifiers: the same deterministic per-(bank,
//     column) subset is stuck on every access.
//   - "stuck-value": "0" or "1", the value stuck cells read as (default "1").
//   - "drift": temperature drift in °C per 1000 reads, >= 0 (default 0).
//     Models a part heating continuously with use (Section 5.3 of the paper
//     shows failure probabilities shift with temperature).
//   - "aging": additional fraction of columns, in [0,1], that become stuck as
//     the device ages (default 0). Aging begins after "aging-onset" reads
//     (default 0) and ramps over "aging-reads" further reads (default 1000)
//     following "aging-shape": "linear" (wear proportional to use) or
//     "accel" (quadratic — accelerating wear-out, the classic end-of-life
//     bathtub wall). Aged columns accumulate monotonically: a column once
//     stuck stays stuck.
//   - "temp-schedule": piecewise temperature offsets "reads:degC[,reads:degC
//     ...]" added on top of "drift"; each step applies from its read count on
//     (read counts strictly ascending, offsets any sign — models ambient or
//     workload temperature excursions, e.g. "0:0,5000:15" for a +15 °C step
//     after 5000 reads).
//   - "voltage-schedule": piecewise supply droop "reads:frac[,reads:frac
//     ...]"; each step sets an extra stuck-column fraction in [0,1] applying
//     from its read count on (models voltage droop weakening sense margins —
//     unlike aging the extra fraction follows the schedule back down when a
//     later step lowers it).
//   - "retention": fraction of columns, in [0,1], whose cells lose their
//     charge and read as 0 regardless of the written value (default 0) —
//     retention-time failures, drawn from an independent deterministic
//     per-(bank, column) subset. Active after "retention-onset" reads
//     (default 0).
func openFaultyBackend(p BackendParams) (Device, error) {
	stuck, err := parseFaultyFraction(p, "stuck", 1.0)
	if err != nil {
		return nil, err
	}
	drift, err := parseFloatOption(p, "drift", 0)
	if err != nil {
		return nil, err
	}
	if drift < 0 {
		return nil, fmt.Errorf(`option "drift" must be >= 0 °C per 1000 reads, got %v`, drift)
	}
	stuckValue := uint64(1)
	if v, ok := p.Options["stuck-value"]; ok {
		n, err := strconv.ParseUint(v, 10, 1)
		if err != nil {
			return nil, fmt.Errorf(`option "stuck-value" must be 0 or 1, got %q`, v)
		}
		stuckValue = n
	}
	aging, err := parseFaultyFraction(p, "aging", 0)
	if err != nil {
		return nil, err
	}
	agingOnset, err := parseFaultyCount(p, "aging-onset", 0)
	if err != nil {
		return nil, err
	}
	agingReads, err := parseFaultyCount(p, "aging-reads", 1000)
	if err != nil {
		return nil, err
	}
	if agingReads == 0 {
		return nil, fmt.Errorf(`option "aging-reads" must be positive`)
	}
	agingShape := p.option("aging-shape", "linear")
	switch agingShape {
	case "linear", "accel":
	default:
		return nil, fmt.Errorf(`option "aging-shape" must be "linear" or "accel", got %q`, agingShape)
	}
	tempSchedule, err := parseFaultySchedule(p, "temp-schedule", false)
	if err != nil {
		return nil, err
	}
	voltSchedule, err := parseFaultySchedule(p, "voltage-schedule", true)
	if err != nil {
		return nil, err
	}
	retention, err := parseFaultyFraction(p, "retention", 0)
	if err != nil {
		return nil, err
	}
	retentionOnset, err := parseFaultyCount(p, "retention-onset", 0)
	if err != nil {
		return nil, err
	}
	innerOpts := map[string]string{}
	for k, v := range p.Options {
		switch k {
		case "inner", "stuck", "stuck-value", "drift",
			"aging", "aging-onset", "aging-reads", "aging-shape",
			"temp-schedule", "voltage-schedule",
			"retention", "retention-onset":
		default:
			if len(k) > 6 && k[:6] == "inner." {
				innerOpts[k[6:]] = v
				continue
			}
			return nil, fmt.Errorf("faulty backend: unknown option %q", k)
		}
	}
	inner, err := OpenBackend(p.option("inner", "sim"), BackendParams{
		Manufacturer:  p.Manufacturer,
		Serial:        p.Serial,
		Deterministic: p.Deterministic,
		Geometry:      p.Geometry,
		Options:       innerOpts,
	})
	if err != nil {
		return nil, err
	}
	return &faultyDevice{
		inner:          inner,
		stuck:          stuck,
		stuckValue:     stuckValue,
		driftPerK:      drift,
		aging:          aging,
		agingOnset:     int64(agingOnset),
		agingReads:     int64(agingReads),
		agingAccel:     agingShape == "accel",
		tempSchedule:   tempSchedule,
		voltSchedule:   voltSchedule,
		retention:      retention,
		retentionOnset: int64(retentionOnset),
		salt:           inner.Serial()*0x9e3779b97f4a7c15 + 0xfa17,
		retentionSalt:  inner.Serial()*0x9e3779b97f4a7c15 + 0x4e7e,
	}, nil
}

// parseFaultyFraction parses a [0,1] fraction option, rejecting negatives and
// values over 1 with the option name in the error.
func parseFaultyFraction(p BackendParams, key string, def float64) (float64, error) {
	v, err := parseFloatOption(p, key, def)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("option %q must be in [0,1], got %v", key, v)
	}
	return v, nil
}

// parseFaultyCount parses a non-negative integer read-count option.
func parseFaultyCount(p BackendParams, key string, def uint64) (uint64, error) {
	v, ok := p.Options[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 63)
	if err != nil {
		return 0, fmt.Errorf("option %q must be a non-negative read count, got %q", key, v)
	}
	return n, nil
}

// scheduleStep is one step of a piecewise read-count schedule: value applies
// from read count from on, until a later step replaces it.
type scheduleStep struct {
	from  int64
	value float64
}

// parseFaultySchedule parses "reads:value[,reads:value...]". Read counts must
// be strictly ascending; fraction schedules constrain values to [0,1].
func parseFaultySchedule(p BackendParams, key string, fraction bool) ([]scheduleStep, error) {
	v, ok := p.Options[key]
	if !ok || v == "" {
		return nil, nil
	}
	parts := strings.Split(v, ",")
	steps := make([]scheduleStep, 0, len(parts))
	for _, part := range parts {
		fromStr, valStr, found := strings.Cut(strings.TrimSpace(part), ":")
		if !found {
			return nil, fmt.Errorf("option %q: step %q is not reads:value", key, part)
		}
		from, err := strconv.ParseUint(fromStr, 10, 63)
		if err != nil {
			return nil, fmt.Errorf("option %q: read count %q is not a non-negative integer", key, fromStr)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("option %q: value %q is not a number", key, valStr)
		}
		if fraction && (val < 0 || val > 1) {
			return nil, fmt.Errorf("option %q: value %v outside [0,1]", key, val)
		}
		steps = append(steps, scheduleStep{from: int64(from), value: val})
	}
	if !sort.SliceIsSorted(steps, func(i, j int) bool { return steps[i].from < steps[j].from }) {
		return nil, fmt.Errorf("option %q: read counts must be strictly ascending", key)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].from == steps[i-1].from {
			return nil, fmt.Errorf("option %q: read counts must be strictly ascending", key)
		}
	}
	return steps, nil
}

// at returns the schedule's value at read count r (0 before the first step).
func scheduleAt(steps []scheduleStep, r int64) float64 {
	v := 0.0
	for _, s := range steps {
		if r < s.from {
			break
		}
		v = s.value
	}
	return v
}

// faultyDevice injects the scenario matrix over an inner device. Stuck and
// retention columns are chosen deterministically per (bank, column) from
// independent hash streams, like failed sense amplifiers and weak cells: the
// same cells fail on every access, and a growing fault fraction only ever
// adds columns (the per-column hash is compared against a threshold, so the
// stuck set is monotone in the fraction).
type faultyDevice struct {
	inner      Device
	stuck      float64
	stuckValue uint64
	driftPerK  float64

	// Aging curve: aging more columns stick after agingOnset reads, ramping
	// over agingReads reads, quadratically when agingAccel.
	aging      float64
	agingOnset int64
	agingReads int64
	agingAccel bool

	// Schedules keyed to the read count; voltSchedule's value is an extra
	// stuck fraction, tempSchedule's an extra temperature offset.
	tempSchedule []scheduleStep
	voltSchedule []scheduleStep

	// Retention failures: retention of the columns read 0 from
	// retentionOnset reads on, drawn from retentionSalt's hash stream.
	retention      float64
	retentionOnset int64

	salt          uint64
	retentionSalt uint64
	reads         atomic.Int64 // drange:atomic
}

// agingFraction returns the extra stuck fraction contributed by the aging
// curve at read count r.
func (f *faultyDevice) agingFraction(r int64) float64 {
	if f.aging <= 0 || r < f.agingOnset {
		return 0
	}
	x := float64(r-f.agingOnset) / float64(f.agingReads)
	if x > 1 {
		x = 1
	}
	if f.agingAccel {
		x *= x
	}
	return f.aging * x
}

// stuckFraction returns the total stuck-column fraction at read count r:
// static stuck cells, plus the aging curve, plus the voltage schedule's
// droop, clamped to [0,1].
func (f *faultyDevice) stuckFraction(r int64) float64 {
	v := f.stuck + f.agingFraction(r) + scheduleAt(f.voltSchedule, r)
	if v > 1 {
		return 1
	}
	return v
}

// hashThreshold decides column membership in a fault set: the per-(bank,
// column) hash under salt is compared against the fraction, so the set grows
// monotonically with the fraction and is identical on every access.
func hashThreshold(salt uint64, bank, col int, fraction float64) bool {
	if fraction >= 1 {
		return true
	}
	if fraction <= 0 {
		return false
	}
	x := salt ^ uint64(bank)<<32 ^ uint64(col)
	// splitmix64 finalizer for diffusion.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < fraction
}

// columnStuck decides, deterministically, whether the column is stuck at read
// count r.
func (f *faultyDevice) columnStuck(bank, col int, r int64) bool {
	return hashThreshold(f.salt, bank, col, f.stuckFraction(r))
}

// columnDischarged decides whether the column's cell has lost its charge by
// read count r (retention failure: it reads 0 regardless of the written
// value).
func (f *faultyDevice) columnDischarged(bank, col int, r int64) bool {
	if r < f.retentionOnset {
		return false
	}
	return hashThreshold(f.retentionSalt, bank, col, f.retention)
}

func (f *faultyDevice) Serial() uint64     { return f.inner.Serial() }
func (f *faultyDevice) Geometry() Geometry { return f.inner.Geometry() }

func (f *faultyDevice) Activate(bank, row int, trcdNS float64) error {
	return f.inner.Activate(bank, row, trcdNS)
}
func (f *faultyDevice) Precharge(bank int) error { return f.inner.Precharge(bank) }
func (f *faultyDevice) Refresh() error           { return f.inner.Refresh() }

// ReadWord reads through to the inner device, then forces stuck columns to
// the stuck value and discharged columns to 0 — after failure injection,
// exactly where a stuck sense amplifier sits in the real read path.
func (f *faultyDevice) ReadWord(bank, wordIdx int) ([]uint64, error) {
	data, err := f.inner.ReadWord(bank, wordIdx)
	if err != nil {
		return nil, err
	}
	r := f.reads.Add(1)
	g := f.inner.Geometry()
	base := wordIdx * g.WordBits
	for bit := 0; bit < g.WordBits && bit/64 < len(data); bit++ {
		col := base + bit
		if f.columnStuck(bank, col, r) {
			if f.stuckValue != 0 {
				data[bit/64] |= 1 << uint(bit%64)
			} else {
				data[bit/64] &^= 1 << uint(bit%64)
			}
			continue
		}
		if f.columnDischarged(bank, col, r) {
			data[bit/64] &^= 1 << uint(bit%64)
		}
	}
	return data, nil
}

func (f *faultyDevice) WriteWord(bank, wordIdx int, word []uint64) error {
	return f.inner.WriteWord(bank, wordIdx, word)
}
func (f *faultyDevice) WriteRow(bank, row int, data []uint64) error {
	return f.inner.WriteRow(bank, row, data)
}
func (f *faultyDevice) ReadRowRaw(bank, row int) ([]uint64, error) {
	return f.inner.ReadRowRaw(bank, row)
}
func (f *faultyDevice) StartupRow(bank, row int) ([]uint64, error) {
	return f.inner.StartupRow(bank, row)
}

func (f *faultyDevice) SetTemperature(c float64) error { return f.inner.SetTemperature(c) }

// Temperature reports the inner temperature plus the accumulated drift and
// the temperature schedule's current offset, so a pool's health monitor sees
// the part heating with use and stepping with the scenario.
func (f *faultyDevice) Temperature() float64 {
	r := f.reads.Load()
	return f.inner.Temperature() + f.driftPerK*float64(r)/1000.0 + scheduleAt(f.tempSchedule, r)
}

func (f *faultyDevice) OpStats() DeviceStats { return f.inner.OpStats() }

// Close closes the inner device if it holds resources.
func (f *faultyDevice) Close() error { return closeDevice(f.inner) }
