package drange

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// The "faulty" backend wraps another backend and injects the failure modes
// the paper warns about, for robustness testing of pools and health
// monitoring: stuck cells (a deterministic subset of columns always reads a
// fixed value, destroying the unbiasedness the RNG-cell selection relies on)
// and temperature drift (the reported device temperature creeps with use,
// modelling a part heating beyond its characterized operating point —
// Section 5.3 shows failure probabilities shift with temperature).
//
// Options:
//
//   - "inner": the wrapped backend (default "sim"); inner options via
//     "inner.<key>".
//   - "stuck": fraction of columns stuck, in [0,1] (default 1 — every read
//     returns the stuck value, the worst case).
//   - "stuck-value": "0" or "1", the value stuck cells read as (default "1").
//   - "drift": temperature drift in °C per 1000 reads (default 0).
func openFaultyBackend(p BackendParams) (Device, error) {
	stuck, err := parseFloatOption(p, "stuck", 1.0)
	if err != nil {
		return nil, err
	}
	if stuck < 0 || stuck > 1 {
		return nil, fmt.Errorf(`option "stuck" must be in [0,1], got %v`, stuck)
	}
	drift, err := parseFloatOption(p, "drift", 0)
	if err != nil {
		return nil, err
	}
	stuckValue := uint64(1)
	if v, ok := p.Options["stuck-value"]; ok {
		n, err := strconv.ParseUint(v, 10, 1)
		if err != nil {
			return nil, fmt.Errorf(`option "stuck-value" must be 0 or 1, got %q`, v)
		}
		stuckValue = n
	}
	innerOpts := map[string]string{}
	for k, v := range p.Options {
		switch k {
		case "inner", "stuck", "stuck-value", "drift":
		default:
			if len(k) > 6 && k[:6] == "inner." {
				innerOpts[k[6:]] = v
				continue
			}
			return nil, fmt.Errorf("faulty backend: unknown option %q", k)
		}
	}
	inner, err := OpenBackend(p.option("inner", "sim"), BackendParams{
		Manufacturer:  p.Manufacturer,
		Serial:        p.Serial,
		Deterministic: p.Deterministic,
		Geometry:      p.Geometry,
		Options:       innerOpts,
	})
	if err != nil {
		return nil, err
	}
	return &faultyDevice{
		inner:      inner,
		stuck:      stuck,
		stuckValue: stuckValue,
		driftPerK:  drift,
		salt:       inner.Serial()*0x9e3779b97f4a7c15 + 0xfa17,
	}, nil
}

// faultyDevice injects stuck columns and temperature drift over an inner
// device. Stuck columns are chosen deterministically per (bank, column), like
// a failed sense amplifier: the same cells are stuck on every access.
type faultyDevice struct {
	inner      Device
	stuck      float64
	stuckValue uint64
	driftPerK  float64
	salt       uint64
	reads      atomic.Int64 // drange:atomic
}

// columnStuck decides, deterministically, whether the column is stuck.
func (f *faultyDevice) columnStuck(bank, col int) bool {
	if f.stuck >= 1 {
		return true
	}
	if f.stuck <= 0 {
		return false
	}
	x := f.salt ^ uint64(bank)<<32 ^ uint64(col)
	// splitmix64 finalizer for diffusion.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < f.stuck
}

func (f *faultyDevice) Serial() uint64     { return f.inner.Serial() }
func (f *faultyDevice) Geometry() Geometry { return f.inner.Geometry() }

func (f *faultyDevice) Activate(bank, row int, trcdNS float64) error {
	return f.inner.Activate(bank, row, trcdNS)
}
func (f *faultyDevice) Precharge(bank int) error { return f.inner.Precharge(bank) }
func (f *faultyDevice) Refresh() error           { return f.inner.Refresh() }

// ReadWord reads through to the inner device, then forces stuck columns to
// the stuck value — after failure injection, exactly where a stuck sense
// amplifier sits in the real read path.
func (f *faultyDevice) ReadWord(bank, wordIdx int) ([]uint64, error) {
	data, err := f.inner.ReadWord(bank, wordIdx)
	if err != nil {
		return nil, err
	}
	f.reads.Add(1)
	g := f.inner.Geometry()
	base := wordIdx * g.WordBits
	for bit := 0; bit < g.WordBits && bit/64 < len(data); bit++ {
		if !f.columnStuck(bank, base+bit) {
			continue
		}
		if f.stuckValue != 0 {
			data[bit/64] |= 1 << uint(bit%64)
		} else {
			data[bit/64] &^= 1 << uint(bit%64)
		}
	}
	return data, nil
}

func (f *faultyDevice) WriteWord(bank, wordIdx int, word []uint64) error {
	return f.inner.WriteWord(bank, wordIdx, word)
}
func (f *faultyDevice) WriteRow(bank, row int, data []uint64) error {
	return f.inner.WriteRow(bank, row, data)
}
func (f *faultyDevice) ReadRowRaw(bank, row int) ([]uint64, error) {
	return f.inner.ReadRowRaw(bank, row)
}
func (f *faultyDevice) StartupRow(bank, row int) ([]uint64, error) {
	return f.inner.StartupRow(bank, row)
}

func (f *faultyDevice) SetTemperature(c float64) error { return f.inner.SetTemperature(c) }

// Temperature reports the inner temperature plus the accumulated drift, so a
// pool's bias-drift monitor sees the part heating with use.
func (f *faultyDevice) Temperature() float64 {
	return f.inner.Temperature() + f.driftPerK*float64(f.reads.Load())/1000.0
}

func (f *faultyDevice) OpStats() DeviceStats { return f.inner.OpStats() }

// Close closes the inner device if it holds resources.
func (f *faultyDevice) Close() error { return closeDevice(f.inner) }
