package drange

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// openQuickPool opens a 1-member pool over the shared test profile — the
// serving-core equivalence counterpart of openQuick.
func openQuickPool(t *testing.T, opts ...Option) *Pool {
	t.Helper()
	pool, err := OpenPool(context.Background(), []*Profile{quickProfile(t)}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	return pool
}

// servingOp is one step of an interleaving applied identically to two
// sources; it returns the bytes the step produced (packed for byte reads,
// bit-per-byte for ReadBits) so the streams can be compared step by step.
type servingOp struct {
	name string
	run  func(t *testing.T, src Source) []byte
}

func opRead(n int) servingOp {
	return servingOp{"Read", func(t *testing.T, src Source) []byte {
		t.Helper()
		buf := make([]byte, n)
		if _, err := src.Read(buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}}
}

func opReadRaw(n int) servingOp {
	return servingOp{"ReadRaw", func(t *testing.T, src Source) []byte {
		t.Helper()
		buf := make([]byte, n)
		if _, err := src.ReadRaw(buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}}
}

func opReadBits(n int) servingOp {
	return servingOp{"ReadBits", func(t *testing.T, src Source) []byte {
		t.Helper()
		bits, err := src.ReadBits(n)
		if err != nil {
			t.Fatal(err)
		}
		return bits
	}}
}

var opUint64 = servingOp{"Uint64", func(t *testing.T, src Source) []byte {
	t.Helper()
	v, err := src.Uint64()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = byte(v >> uint(56-8*i))
	}
	return out
}}

// runInterleaving drives both sources through the same op sequence and
// asserts every step produces identical bytes.
func runInterleaving(t *testing.T, gen, pool Source, ops []servingOp) {
	t.Helper()
	for i, op := range ops {
		gb := op.run(t, gen)
		pb := op.run(t, pool)
		if !bytes.Equal(gb, pb) {
			t.Fatalf("step %d (%s): generator and 1-member pool diverge\n gen:  %x\n pool: %x", i, op.name, gb, pb)
		}
	}
}

// TestGeneratorMatchesSinglePoolRaw pins the Generator ≡ 1-member-Pool
// contract on the raw tier: under deterministic noise a sharded Generator and
// a 1-member Pool over the same profile serve byte-for-byte identical streams
// across interleaved Read, ReadRaw, ReadBits (including sub-word residues)
// and Uint64 calls.
func TestGeneratorMatchesSinglePoolRaw(t *testing.T) {
	gen := openQuick(t, WithShards(1))
	pool := openQuickPool(t, WithShards(1))
	runInterleaving(t, gen, pool, []servingOp{
		opRead(7),
		opReadBits(13), // leaves a sub-word residue: the next Read must drain it in order
		opRead(16),
		opUint64,
		opReadBits(3),
		opReadRaw(32),
		opReadBits(64),
		opRead(129),
	})
}

// TestGeneratorMatchesSinglePoolDRBG pins the same contract on the DRBG
// tier: seeds are harvested and screened identically, so the expanded
// streams — and the raw tier next to them — match byte for byte.
func TestGeneratorMatchesSinglePoolDRBG(t *testing.T) {
	policy := DRBGPolicy{ReseedInterval: 4, MaxRequestBytes: 32}
	gen := openQuick(t, WithShards(1), WithDRBG(policy))
	pool := openQuickPool(t, WithShards(1), WithDRBG(policy))
	runInterleaving(t, gen, pool, []servingOp{
		opRead(16),
		opReadBits(13),
		opUint64,
		opRead(100), // spans multiple MaxRequestBytes chunks and a reseed
		opReadRaw(24),
		opRead(8),
	})
}

// TestTierCountersAdvanceOnlyOnSuccess pins the fixed accounting semantics:
// a read that returns (0, err) must leave the tier counters untouched, on
// both the lock-free fast path and the locked path.
func TestTierCountersAdvanceOnlyOnSuccess(t *testing.T) {
	t.Run("fast-path", func(t *testing.T) {
		g := openQuick(t, WithShards(1)).(*Generator)
		buf := make([]byte, 32)
		if _, err := g.ReadRaw(buf); err != nil {
			t.Fatal(err)
		}
		before := g.Stats()
		// Kill the sampler out from under the facade: a read deep enough to
		// drain the shard rings' leftover words fails.
		g.eng.Close()
		if _, err := g.ReadRaw(make([]byte, 1<<20)); err == nil {
			t.Fatal("ReadRaw on a closed engine unexpectedly succeeded")
		}
		after := g.Stats()
		if after.TierRaw != before.TierRaw {
			t.Errorf("failed ReadRaw moved TierRaw: %+v -> %+v", before.TierRaw, after.TierRaw)
		}
		if after.BitsDelivered != before.BitsDelivered {
			t.Errorf("failed ReadRaw moved BitsDelivered: %d -> %d", before.BitsDelivered, after.BitsDelivered)
		}
	})
	t.Run("locked-path", func(t *testing.T) {
		// A health monitor forces the locked serving path.
		g := openQuick(t, WithShards(1), WithHealthTests(HealthTestPolicy{})).(*Generator)
		buf := make([]byte, 32)
		if _, err := g.ReadRaw(buf); err != nil {
			t.Fatal(err)
		}
		if _, err := g.ReadBits(13); err != nil {
			t.Fatal(err)
		}
		before := g.Stats()
		if before.TierRaw.Reads != 2 || before.TierRaw.Bytes != 34 {
			// 32 packed bytes + ceil(13/8) = 2: ReadBits traffic must be
			// visible in the raw tier.
			t.Errorf("TierRaw = %+v, want {Reads:2 Bytes:34}", before.TierRaw)
		}
		g.eng.Close()
		if _, err := g.ReadRaw(make([]byte, 1<<20)); err == nil {
			t.Fatal("ReadRaw on a closed engine unexpectedly succeeded")
		}
		if _, err := g.ReadBits(1 << 23); err == nil {
			t.Fatal("ReadBits on a closed engine unexpectedly succeeded")
		}
		after := g.Stats()
		if after.TierRaw != before.TierRaw {
			t.Errorf("failed reads moved TierRaw: %+v -> %+v", before.TierRaw, after.TierRaw)
		}
		if after.BitsDelivered != before.BitsDelivered {
			t.Errorf("failed reads moved BitsDelivered: %d -> %d", before.BitsDelivered, after.BitsDelivered)
		}
	})
}

// poolDeliveryConservation asserts the pool aggregate equals the sum of the
// per-device deliveries — the invariant the old per-chunk DRBG accounting
// violated on partial failure.
func poolDeliveryConservation(t *testing.T, p *Pool, when string) {
	t.Helper()
	st := p.Stats()
	var sum int64
	for _, d := range st.Devices {
		sum += d.BitsDelivered
	}
	if sum != st.BitsDelivered {
		t.Errorf("%s: per-device deliveries sum to %d, aggregate says %d", when, sum, st.BitsDelivered)
	}
}

// TestPoolDRBGPartialFailureConservation pins the satellite-3 fix: a DRBG
// read whose later chunk fails (here: the reseed it needs cannot harvest)
// returns (0, err), and the chunks generated before the failure must not
// leak into the member's delivered count.
func TestPoolDRBGPartialFailureConservation(t *testing.T) {
	p := openQuickPool(t, WithShards(1),
		WithDRBG(DRBGPolicy{ReseedInterval: 2, MaxRequestBytes: 16}))
	buf := make([]byte, 16)
	if _, err := p.Read(buf); err != nil { // 1st generate of the interval
		t.Fatal(err)
	}
	poolDeliveryConservation(t, p, "after clean read")
	// Kill the member's sampler: the 2nd chunk below falls due for a reseed,
	// whose seed harvest fails. A closed engine still serves the words its
	// shard rings had buffered, so drain them directly — below the pool's
	// accounting — until the engine errors.
	p.members[0].eng.Close()
	if _, err := p.members[0].eng.Read(make([]byte, 1<<20)); err == nil {
		t.Fatal("draining the closed engine unexpectedly succeeded")
	}
	big := make([]byte, 48) // 3 chunks; chunk 1 generates, chunk 2 needs the reseed
	n, err := p.Read(big)
	if err == nil || n != 0 {
		t.Fatalf("Read with a dead reseed source = (%d, %v), want (0, error)", n, err)
	}
	if !strings.Contains(err.Error(), "device") {
		t.Errorf("error %q does not identify the failing device", err)
	}
	poolDeliveryConservation(t, p, "after failed read")
	st := p.Stats()
	if st.BitsDelivered != int64(len(buf))*8 {
		t.Errorf("BitsDelivered = %d, want %d (only the clean read)", st.BitsDelivered, len(buf)*8)
	}
	if st.TierDRBG.Reads != 1 || st.TierDRBG.Bytes != int64(len(buf)) {
		t.Errorf("TierDRBG = %+v, want {Reads:1 Bytes:%d}", st.TierDRBG, len(buf))
	}
}

// TestStatsTierConservation pins the stats-conservation property: over any
// byte-aligned interleaving of successful reads, the tier byte counters
// account for exactly the delivered bits — on both facades.
func TestStatsTierConservation(t *testing.T) {
	ops := []servingOp{
		opRead(32),
		opReadBits(64),
		opReadRaw(16),
		opUint64,
		opRead(7),
		opReadRaw(9),
		opReadBits(24),
	}
	check := func(t *testing.T, src Source) {
		t.Helper()
		for _, op := range ops {
			op.run(t, src)
		}
		st := src.Stats()
		if got := (st.TierRaw.Bytes + st.TierDRBG.Bytes) * 8; got != st.BitsDelivered {
			t.Errorf("tier bytes account for %d bits, BitsDelivered = %d (TierRaw %+v, TierDRBG %+v)",
				got, st.BitsDelivered, st.TierRaw, st.TierDRBG)
		}
		if st.TierRaw.Reads+st.TierDRBG.Reads != int64(len(ops)) {
			t.Errorf("tier reads = %d+%d, want %d", st.TierRaw.Reads, st.TierDRBG.Reads, len(ops))
		}
	}
	t.Run("generator-raw", func(t *testing.T) { check(t, openQuick(t, WithShards(1))) })
	t.Run("generator-sequential", func(t *testing.T) { check(t, openQuick(t)) })
	t.Run("generator-drbg", func(t *testing.T) {
		check(t, openQuick(t, WithShards(1), WithDRBG(DRBGPolicy{})))
	})
	t.Run("pool-raw", func(t *testing.T) { check(t, openQuickPool(t, WithShards(1))) })
	t.Run("pool-drbg", func(t *testing.T) {
		check(t, openQuickPool(t, WithShards(1), WithDRBG(DRBGPolicy{})))
	})
}
