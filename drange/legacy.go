package drange

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/memctrl"
)

// Config is the legacy all-in-one configuration of the deprecated New.
//
// Deprecated: use Characterize with functional options, then Open. Config
// carries the historical zero-value sentinel semantics: a zero
// ReducedTRCDNS, Samples, Tolerance, MaxBiasDelta or ScreenIterations is
// silently replaced by the default, so explicit zeros are unrepresentable
// (an explicit MaxBiasDelta of 0, for example, becomes 0.02), and
// PaperIdentification overrides any explicit Samples/Tolerance/
// ScreenIterations. The options API (WithMaxBiasDelta, WithTolerance, ...)
// has neither flaw.
type Config struct {
	// Manufacturer selects the device profile: "A", "B" or "C".
	Manufacturer string
	// Serial selects the simulated device instance (process variation).
	Serial uint64
	// Deterministic replaces the OS-entropy noise source with a seeded one,
	// making the generator reproducible. Never use this for real keys.
	Deterministic bool
	// Geometry optionally overrides the simulated device geometry.
	Geometry Geometry

	// ReducedTRCDNS is the activation latency used for profiling and
	// generation; 0 selects the paper's 10 ns.
	ReducedTRCDNS float64

	// ProfileRowsPerBank and ProfileWordsPerRow bound the region profiled in
	// each bank during RNG-cell identification; 0 selects 128 rows and 8
	// words.
	ProfileRowsPerBank int
	ProfileWordsPerRow int
	// ProfileBanks is the number of banks to profile; 0 profiles all banks.
	ProfileBanks int

	// Identification parameters; zero values select practical defaults
	// (600 samples, ±35% symbol tolerance, ±2% bias bound).
	// PaperIdentification selects the paper's exact criterion (1000
	// samples, ±10%), which is slower and much more selective.
	Samples             int
	Tolerance           float64
	MaxBiasDelta        float64
	ScreenIterations    int
	PaperIdentification bool
}

// withDefaults applies the legacy zero-value sentinel semantics.
func (c Config) withDefaults() Config {
	if c.Manufacturer == "" {
		c.Manufacturer = "A"
	}
	if c.ReducedTRCDNS == 0 {
		c.ReducedTRCDNS = 10.0
	}
	if c.ProfileRowsPerBank == 0 {
		c.ProfileRowsPerBank = 128
	}
	if c.ProfileWordsPerRow == 0 {
		c.ProfileWordsPerRow = 8
	}
	if c.Samples == 0 {
		c.Samples = 600
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.35
	}
	if c.MaxBiasDelta == 0 {
		c.MaxBiasDelta = 0.02
	}
	if c.ScreenIterations == 0 {
		c.ScreenIterations = 50
	}
	if c.PaperIdentification {
		c.Samples = 1000
		c.Tolerance = 0.10
		c.ScreenIterations = 100
	}
	return c
}

// New opens a simulated device, re-runs the full RNG-cell identification
// pass, and returns a ready Generator — characterization and generation
// fused in one call, as the original API did.
//
// Deprecated: use Characterize once per device and Open per generator; New
// repeats the expensive identification on every call. New is now a literal
// shim over the two-step API: it characterizes, then opens a sequential
// Source on a fresh device matching the profile, so under deterministic
// noise it produces the same byte stream as Characterize followed by Open
// (regression-tested in legacy_test.go).
func New(cfg Config) (*Generator, error) {
	cfg = cfg.withDefaults()
	p := charParams{
		Manufacturer:     cfg.Manufacturer,
		Serial:           cfg.Serial,
		Deterministic:    cfg.Deterministic,
		Geometry:         cfg.Geometry,
		TRCDNS:           cfg.ReducedTRCDNS,
		RowsPerBank:      cfg.ProfileRowsPerBank,
		WordsPerRow:      cfg.ProfileWordsPerRow,
		Banks:            cfg.ProfileBanks,
		Samples:          cfg.Samples,
		Tolerance:        cfg.Tolerance,
		MaxBiasDelta:     cfg.MaxBiasDelta,
		ScreenIterations: cfg.ScreenIterations,
	}
	dev, err := newDevice(p.Manufacturer, p.Serial, p.Deterministic, p.Geometry)
	if err != nil {
		return nil, err
	}
	ctrl := memctrl.NewController(dev)
	profile, _, err := characterize(context.Background(), ctrl, p)
	if err != nil {
		return nil, err
	}
	src, err := Open(context.Background(), profile)
	if err != nil {
		return nil, err
	}
	return src.(*Generator), nil
}

// Engine is a concurrent sharded generator attached to an existing
// Generator.
//
// Deprecated: open a sharded Source directly with
// Open(ctx, profile, WithShards(n)); it implements the same Source
// interface. Engine remains for callers of the old two-step API.
type Engine struct {
	g   *Generator
	eng *core.Engine
}

// Engine starts a sharded harvesting engine over the generator's device and
// bank selections; shards <= 0 selects the default (one shard per bank, at
// most four). The engine stops when ctx is cancelled or Close is called.
//
// The engine's controllers take over the device, so use either the Engine or
// the Generator's own Read at a time, not both: Generator reads issued after
// the engine starts fail loudly with a bank-state error, and the estimate
// methods return an engine-active error until Close.
//
// Deprecated: use Open(ctx, profile, WithShards(n)).
func (g *Generator) Engine(ctx context.Context, shards int) (*Engine, error) {
	if shards < 0 {
		shards = 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed.Load() {
		return nil, fmt.Errorf("drange: source is closed")
	}
	if g.eng != nil {
		return nil, fmt.Errorf("drange: this Source was opened with WithShards; read from it directly")
	}
	if g.legacy != nil {
		return nil, fmt.Errorf("drange: an engine is already active on this generator; Close it first")
	}
	if g.testsEnabled {
		// The shim reads straight from core.Engine, which would bypass the
		// online health tests and void the "every bit is tested before a
		// caller sees it" guarantee.
		return nil, fmt.Errorf("drange: the deprecated Engine shim cannot be combined with WithHealthTests; open the source with WithShards(%d) instead", shards)
	}
	eng, err := core.NewEngine(ctx, g.dev, g.sels, core.EngineConfig{
		Shards: shards,
		TRNG:   core.TRNGConfig{TRCDNS: g.trcdNS, Pattern: g.pat},
	})
	if err != nil {
		return nil, fmt.Errorf("drange: %w", err)
	}
	e := &Engine{g: g, eng: eng}
	g.legacy = e
	return e, nil
}

// Read fills p with true random bytes (io.Reader). Safe for concurrent use.
func (e *Engine) Read(p []byte) (int, error) { return e.eng.Read(p) }

// ReadRaw is identical to Read: the shim predates the DRBG tier and only
// ever serves raw harvested bits. Safe for concurrent use.
func (e *Engine) ReadRaw(p []byte) (int, error) { return e.eng.Read(p) }

// ReadBits returns n random bits, one per byte. Safe for concurrent use.
func (e *Engine) ReadBits(n int) ([]byte, error) { return e.eng.ReadBits(n) }

// Uint64 returns a 64-bit random value. Safe for concurrent use.
func (e *Engine) Uint64() (uint64, error) { return e.eng.Uint64() }

// Shards returns the number of harvesting shards.
func (e *Engine) Shards() int { return e.eng.Shards() }

// Stats returns the per-shard and aggregate throughput/latency accounting in
// simulated DRAM time.
func (e *Engine) Stats() Stats { return statsFromEngine(e.eng.Stats()) }

// Close stops the harvesting goroutines, waits for them to exit, and
// re-enables the parent generator's estimate methods.
func (e *Engine) Close() error {
	err := e.eng.Close()
	e.g.mu.Lock()
	if e.g.legacy == e {
		e.g.legacy = nil
	}
	e.g.mu.Unlock()
	return err
}

var _ Source = (*Engine)(nil)
