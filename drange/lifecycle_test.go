package drange

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var (
	lifecycleOnce sync.Once
	lifecycleProf []*Profile
	lifecycleErr  error
)

// lifecycleProfiles characterizes three small deterministic devices for the
// self-healing tests. The region is kept tiny so the targeted
// re-characterization pass (which the tests wait out, sometimes under the
// race detector) completes in test time.
func lifecycleProfiles(t *testing.T, n int) []*Profile {
	t.Helper()
	lifecycleOnce.Do(func() {
		for serial := uint64(301); serial < 301+3; serial++ {
			p, err := Characterize(context.Background(),
				WithManufacturer("A"),
				WithSerial(serial),
				WithDeterministic(true),
				WithGeometry(quickGeometry()),
				WithProfilingRegion(16, 4, 2),
				WithSamples(300),
				WithTolerance(0.4),
				WithMaxBiasDelta(0.03),
				WithScreenIterations(25),
			)
			if err != nil {
				lifecycleErr = err
				return
			}
			lifecycleProf = append(lifecycleProf, p)
		}
	})
	if lifecycleErr != nil {
		t.Fatal(lifecycleErr)
	}
	if n > len(lifecycleProf) {
		t.Fatalf("test wants %d profiles, harness builds %d", n, len(lifecycleProf))
	}
	return lifecycleProf[:n]
}

// quickRecharPolicy keeps the in-test re-characterization passes short.
func quickRecharPolicy() RecharacterizationPolicy {
	return RecharacterizationPolicy{Iterations: 30, Rounds: 2, MaxDrift: 0.3}
}

// forceQuarantine pushes a serving member into the lifecycle the way a health
// trip would, through the same retireLocked path.
func forceQuarantine(t *testing.T, p *Pool, idx int, reason string) {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.members[idx].serving() {
		t.Fatalf("member %d not serving before forced quarantine", idx)
	}
	p.retireLocked(p.members[idx], reason)
	if got := p.members[idx].lifecycle(); got != memberQuarantined {
		t.Fatalf("member %d lifecycle after retire = %v, want quarantined", idx, got)
	}
}

// waitReadmitted polls Stats until device idx is serving again with at least
// one readmission, failing the test on timeout.
func waitReadmitted(t *testing.T, p *Pool, idx int, timeout time.Duration) PoolDeviceStats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := p.Stats()
		d := st.Devices[idx]
		if d.State == "serving" && d.Readmissions >= 1 {
			return d
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("device %d not readmitted within %v: state %q, readmissions %d, rechar failures %d, reason %q",
				idx, timeout, d.State, d.Readmissions, d.RecharFailures, d.Reason)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolReadmitUnderConcurrentReads cycles a member through
// quarantine → re-characterization → readmission while 8 goroutines read the
// pool continuously. No read may fail at any point in the cycle, and the
// member must come back serving with a profile delta. Run under -race this
// also pins the readmission publication order (fastEng before state).
func TestPoolReadmitUnderConcurrentReads(t *testing.T) {
	profiles := lifecycleProfiles(t, 3)
	pool, err := OpenPool(context.Background(), profiles,
		WithRecharacterization(quickRecharPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	stop := make(chan struct{})
	var readErr atomic.Value
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := pool.Read(buf); err != nil {
					readErr.Store(err)
					return
				}
			}
		}()
	}

	forceQuarantine(t, pool, 1, "test: forced bias drift")
	d := waitReadmitted(t, pool, 1, 2*time.Minute)
	close(stop)
	wg.Wait()

	if err, ok := readErr.Load().(error); ok {
		t.Fatalf("concurrent read failed during the lifecycle cycle: %v", err)
	}
	if d.ProfileDeltas < 1 {
		t.Errorf("readmitted device carries %d profile deltas, want >= 1", d.ProfileDeltas)
	}
	if d.Reason != "" {
		t.Errorf("readmitted device still carries reason %q", d.Reason)
	}
	st := pool.Stats()
	if st.Lifecycle == nil {
		t.Fatal("pool with WithRecharacterization reports no lifecycle stats")
	}
	if st.Lifecycle.Serving != 3 || st.Lifecycle.Evicted != 0 {
		t.Errorf("lifecycle = %+v, want 3 serving / 0 evicted", st.Lifecycle)
	}
	if st.Lifecycle.Readmissions < 1 || st.Lifecycle.Recharacterizations < 1 {
		t.Errorf("lifecycle counters = %+v, want >= 1 readmission and re-characterization", st.Lifecycle)
	}
	// The readmitted member must serve again: drain enough that the
	// least-loaded scheduler reaches it.
	buf := make([]byte, 4096)
	if _, err := pool.Read(buf); err != nil {
		t.Fatal(err)
	}
}

// quiescePools stops issuing reads and waits until every device of both
// pools has filled its engine buffers and stopped harvesting, with both
// pools at identical per-device harvest counts. Only then is the devices'
// deterministic noise position equal across the pools, which the
// byte-identical resume property below depends on.
func quiescePools(t *testing.T, a, b *Pool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var last []int64
	stable := 0
	for time.Now().Before(deadline) {
		sa, sb := a.Stats(), b.Stats()
		cur := make([]int64, 0, len(sa.Devices)*2)
		equal := len(sa.Devices) == len(sb.Devices)
		for i := range sa.Devices {
			cur = append(cur, sa.Devices[i].BitsHarvested, sb.Devices[i].BitsHarvested)
			if sa.Devices[i].BitsHarvested != sb.Devices[i].BitsHarvested {
				equal = false
			}
		}
		same := last != nil && len(cur) == len(last)
		if same {
			for i := range cur {
				if cur[i] != last[i] {
					same = false
					break
				}
			}
		}
		if equal && same {
			if stable++; stable >= 3 {
				return
			}
		} else {
			stable = 0
		}
		last = cur
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("pools did not quiesce to equal harvest counts")
}

// TestReadmitResumesDeterministicStream is the resume property: an undrifted
// member taken through the full quarantine → re-characterization →
// readmission cycle under deterministic noise is a reproducible operation.
// Two identical pools driven through the identical cycle serve byte-identical
// streams afterwards, and produce byte-identical profile deltas.
func TestReadmitResumesDeterministicStream(t *testing.T) {
	profiles := lifecycleProfiles(t, 3)
	open := func() *Pool {
		p, err := OpenPool(context.Background(), profiles,
			WithShards(1), WithRecharacterization(quickRecharPolicy()))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	a, b := open(), open()

	readBoth := func(n, step int, when string) {
		t.Helper()
		ab, bb := make([]byte, step), make([]byte, step)
		for off := 0; off < n; off += step {
			if _, err := a.Read(ab); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Read(bb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ab, bb) {
				t.Fatalf("%s: pools diverge at offset %d\n a: %x\n b: %x", when, off, ab, bb)
			}
		}
	}

	readBoth(256, 16, "before quarantine")
	// The engines run ahead of the readers nondeterministically; only once
	// both pools' devices are blocked on full buffers at equal harvest
	// counts do their noise streams sit at the same position.
	quiescePools(t, a, b)

	forceQuarantine(t, a, 1, "test: forced bias drift")
	forceQuarantine(t, b, 1, "test: forced bias drift")
	da := waitReadmitted(t, a, 1, 2*time.Minute)
	db := waitReadmitted(t, b, 1, 2*time.Minute)
	if da.ProfileDeltas != db.ProfileDeltas {
		t.Fatalf("delta counts diverge: %d vs %d", da.ProfileDeltas, db.ProfileDeltas)
	}

	readBoth(1024, 16, "after readmission")

	// The targeted pass itself must have been deterministic: same stable
	// cells, same selections, same sealed delta checksum.
	a.mu.Lock()
	pa := a.members[1].profile
	a.mu.Unlock()
	b.mu.Lock()
	pb := b.members[1].profile
	b.mu.Unlock()
	if len(pa.Deltas) == 0 || len(pb.Deltas) == 0 {
		t.Fatal("readmitted members carry no profile delta")
	}
	if pa.Deltas[0].Checksum != pb.Deltas[0].Checksum {
		t.Errorf("profile deltas diverge:\n a: %s\n b: %s", pa.Deltas[0].Checksum, pb.Deltas[0].Checksum)
	}
	if pa.Checksum != pb.Checksum {
		t.Errorf("readmitted profiles diverge: %s vs %s", pa.Checksum, pb.Checksum)
	}
}

// TestRecharacterizationDisabledEvicts: Disabled turns the lifecycle off —
// a retired member is evicted terminally, as without WithRecharacterization.
func TestRecharacterizationDisabledEvicts(t *testing.T) {
	profiles := lifecycleProfiles(t, 3)
	pool, err := OpenPool(context.Background(), profiles,
		WithRecharacterization(RecharacterizationPolicy{Disabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.mu.Lock()
	pool.retireLocked(pool.members[1], "test: forced drift")
	state := pool.members[1].lifecycle()
	pool.mu.Unlock()
	if state != memberEvicted {
		t.Fatalf("disabled lifecycle left member in %v, want evicted", state)
	}
	st := pool.Stats()
	if st.Lifecycle != nil {
		t.Error("disabled lifecycle still reports lifecycle stats")
	}
	if !st.Devices[1].Evicted || st.Devices[1].State != "evicted" {
		t.Errorf("device 1 stats = %+v, want evicted", st.Devices[1])
	}
}

// TestRecharacterizationRejectedOutsidePools: the option is pool-only.
func TestRecharacterizationRejectedOutsidePools(t *testing.T) {
	ctx := context.Background()
	if _, err := Open(ctx, lifecycleProfiles(t, 1)[0], WithRecharacterization(RecharacterizationPolicy{})); err == nil ||
		!strings.Contains(err.Error(), "WithRecharacterization") {
		t.Errorf("Open accepted WithRecharacterization: %v", err)
	}
	if _, err := Characterize(ctx, WithRecharacterization(RecharacterizationPolicy{})); err == nil ||
		!strings.Contains(err.Error(), "WithRecharacterization") {
		t.Errorf("Characterize accepted WithRecharacterization: %v", err)
	}
}
