package drange

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/profiler"
)

// Geometry describes the addressable organisation of a simulated DRAM device
// as seen through the public API. It mirrors the internal device geometry so
// that no internal type appears in an exported signature; the zero value
// selects the default LPDDR4 geometry.
type Geometry struct {
	// Banks is the number of banks in the device.
	Banks int `json:"banks"`
	// RowsPerBank is the number of DRAM rows per bank.
	RowsPerBank int `json:"rows_per_bank"`
	// ColsPerRow is the number of cells (bits) in one DRAM row.
	ColsPerRow int `json:"cols_per_row"`
	// SubarrayRows is the number of rows sharing one set of local sense
	// amplifiers.
	SubarrayRows int `json:"subarray_rows"`
	// WordBits is the number of bits transferred by one READ burst.
	WordBits int `json:"word_bits"`
}

// IsZero reports whether the geometry is entirely unset.
func (g Geometry) IsZero() bool { return g == Geometry{} }

// wordsPerRow returns the number of DRAM words in one row (0 when unset).
func (g Geometry) wordsPerRow() int {
	if g.WordBits <= 0 {
		return 0
	}
	return g.ColsPerRow / g.WordBits
}

func (g Geometry) internal() dram.Geometry {
	return dram.Geometry{
		Banks:        g.Banks,
		RowsPerBank:  g.RowsPerBank,
		ColsPerRow:   g.ColsPerRow,
		SubarrayRows: g.SubarrayRows,
		WordBits:     g.WordBits,
	}
}

func geometryFromInternal(g dram.Geometry) Geometry {
	return Geometry{
		Banks:        g.Banks,
		RowsPerBank:  g.RowsPerBank,
		ColsPerRow:   g.ColsPerRow,
		SubarrayRows: g.SubarrayRows,
		WordBits:     g.WordBits,
	}
}

// Cell is one identified RNG cell: a DRAM cell whose reduced-latency reads
// are statistically uniform (Section 6.1 of the paper).
type Cell struct {
	// Bank, Row and Col locate the cell in the device.
	Bank int `json:"bank"`
	Row  int `json:"row"`
	Col  int `json:"col"`
	// Word is the index of the DRAM word containing the cell.
	Word int `json:"word"`
	// FailProbability is the activation-failure probability observed during
	// identification.
	FailProbability float64 `json:"fail_probability"`
	// SymbolEntropy is the Shannon entropy (bits per symbol) of the 3-bit
	// symbol distribution observed during identification.
	SymbolEntropy float64 `json:"symbol_entropy"`
}

func cellFromCore(c core.RNGCell) Cell {
	return Cell{
		Bank:            c.Addr.Bank,
		Row:             c.Addr.Row,
		Col:             c.Addr.Col,
		Word:            c.WordIdx,
		FailProbability: c.Fprob,
		SymbolEntropy:   c.SymbolEntropy,
	}
}

func (c Cell) core() core.RNGCell {
	return core.RNGCell{
		Addr:          profiler.CellAddr{Bank: c.Bank, Row: c.Row, Col: c.Col},
		WordIdx:       c.Word,
		Fprob:         c.FailProbability,
		SymbolEntropy: c.SymbolEntropy,
	}
}

// WordSelection is one DRAM word chosen for generation and the columns of
// the RNG cells it contains.
type WordSelection struct {
	Row  int `json:"row"`
	Word int `json:"word"`
	// Cols lists the absolute column indices (within the row) of the RNG
	// cells harvested from this word, in ascending order.
	Cols []int `json:"cols"`
}

// Selection is the per-bank choice Algorithm 2 requires: the two DRAM words
// in distinct rows with the highest density of RNG cells (Section 6.2).
type Selection struct {
	Bank  int           `json:"bank"`
	Word1 WordSelection `json:"word1"`
	Word2 WordSelection `json:"word2"`
}

// Bits returns the number of RNG cells across the two selected words: the
// bank's TRNG data rate per core-loop iteration.
func (s Selection) Bits() int { return len(s.Word1.Cols) + len(s.Word2.Cols) }

func wordSelectionFromCore(w core.WordRef) WordSelection {
	cols := make([]int, 0, len(w.RNGCells))
	for _, c := range w.RNGCells {
		cols = append(cols, c.Addr.Col)
	}
	sort.Ints(cols)
	return WordSelection{Row: w.Row, Word: w.WordIdx, Cols: cols}
}

func selectionFromCore(s core.BankSelection) Selection {
	return Selection{
		Bank:  s.Bank,
		Word1: wordSelectionFromCore(s.Word1),
		Word2: wordSelectionFromCore(s.Word2),
	}
}

// cellKey indexes a profile's cell list by location.
type cellKey struct{ bank, row, col int }

// coreSelections rebuilds the internal bank selections from serialized form,
// resolving every selected column against the profile's cell list.
func coreSelections(cells []Cell, sels []Selection) ([]core.BankSelection, error) {
	byAddr := make(map[cellKey]Cell, len(cells))
	for _, c := range cells {
		byAddr[cellKey{c.Bank, c.Row, c.Col}] = c
	}
	wordRef := func(bank int, w WordSelection) (core.WordRef, error) {
		ref := core.WordRef{Bank: bank, Row: w.Row, WordIdx: w.Word}
		for _, col := range w.Cols {
			c, ok := byAddr[cellKey{bank, w.Row, col}]
			if !ok {
				return core.WordRef{}, fmt.Errorf("drange: selection references cell (bank %d, row %d, col %d) absent from the profile's cell list", bank, w.Row, col)
			}
			ref.RNGCells = append(ref.RNGCells, c.core())
		}
		return ref, nil
	}
	out := make([]core.BankSelection, 0, len(sels))
	for _, s := range sels {
		w1, err := wordRef(s.Bank, s.Word1)
		if err != nil {
			return nil, err
		}
		w2, err := wordRef(s.Bank, s.Word2)
		if err != nil {
			return nil, err
		}
		out = append(out, core.BankSelection{Bank: s.Bank, Word1: w1, Word2: w2})
	}
	return out, nil
}

// Density is the Figure 7 data for one bank: how many DRAM words contain
// exactly n RNG cells.
type Density struct {
	Bank int
	// WordsWithNCells[n] is the number of words containing exactly n RNG
	// cells (n ≥ 1).
	WordsWithNCells map[int]int
	// MaxCellsPerWord is the largest number of RNG cells found in one word.
	MaxCellsPerWord int
	// TotalRNGCells is the total number of RNG cells in the bank.
	TotalRNGCells int
}

// ShardStats is the throughput/latency accounting of one harvesting shard,
// measured in simulated DRAM time. A sequential Source reports itself as a
// single shard.
type ShardStats struct {
	Shard int `json:"shard"`
	// Banks is the number of banks the shard samples.
	Banks int `json:"banks"`
	// BitsPerIteration is the shard's data rate per core-loop pass.
	BitsPerIteration int `json:"bits_per_iteration"`
	// BitsHarvested counts bits extracted from the DRAM (buffered included).
	BitsHarvested int64 `json:"bits_harvested"`
	// BitsDelivered counts bits consumers drained from this shard, before
	// any post-processing chain.
	BitsDelivered int64 `json:"bits_delivered"`
	// SimCycles and SimNS are the shard controller's simulated time spent.
	SimCycles int64   `json:"sim_cycles"`
	SimNS     float64 `json:"sim_ns"`
	// ThroughputMbps is the shard's harvest rate in simulated time.
	ThroughputMbps float64 `json:"throughput_mbps"`
	// Latency64NS is the shard's simulated time to produce 64 bits.
	Latency64NS float64 `json:"latency_64_ns"`
}

// Stats is the per-shard and aggregate accounting of a Source. For a sharded
// Source the aggregate throughput is the sum of the shard rates, mirroring
// the paper's multi-channel scaling (Section 7.3, Table 2).
type Stats struct {
	Shards []ShardStats `json:"shards"`
	// Devices is the per-device breakdown of a Pool (nil for single-device
	// Sources). Its shard lists repeat the Shards entries grouped by device,
	// with per-device shard numbering.
	Devices []PoolDeviceStats `json:"devices,omitempty"`
	// BitsHarvested counts bits extracted from the DRAM across all shards.
	BitsHarvested int64 `json:"bits_harvested"`
	// BitsDelivered counts bits callers actually received — after any
	// post-processing chain, so it lags the per-shard drain counts by the
	// chain's discard rate.
	BitsDelivered           int64   `json:"bits_delivered"`
	AggregateThroughputMbps float64 `json:"aggregate_throughput_mbps"`
	Latency64NS             float64 `json:"latency_64_ns"`
	// Health is the online health-test accounting (nil unless
	// WithHealthTests is attached). For a Pool it aggregates the member
	// monitors; the per-device breakdown sits in each PoolDeviceStats.
	Health *HealthStats `json:"health,omitempty"`
	// TierRaw and TierDRBG count the serving requests and bytes per tier of
	// the two-tier read path: ReadRaw (and Read/ReadBits/Uint64 without
	// WithDRBG) serves the raw tier, Read/ReadBits/Uint64 with WithDRBG the
	// DRBG tier. Both are zero until the corresponding tier serves. Only
	// successful reads count: a read that returns (0, err) leaves both
	// untouched, so over byte-aligned requests the tier byte counters sum to
	// exactly BitsDelivered/8.
	TierRaw  TierStats `json:"tier_raw"`
	TierDRBG TierStats `json:"tier_drbg"`
	// DRBG is the DRBG-tier accounting (nil unless WithDRBG is attached).
	// For a Pool it aggregates the member instances; the per-device
	// breakdown sits in each PoolDeviceStats.
	DRBG *DRBGStats `json:"drbg,omitempty"`
	// Lifecycle aggregates the member lifecycle of a self-healing Pool (nil
	// unless WithRecharacterization is attached).
	Lifecycle *LifecycleStats `json:"lifecycle,omitempty"`
}

// LifecycleStats aggregates the member lifecycle state machine of a
// self-healing Pool: how many members sit in each state right now, and the
// cumulative transition counters.
type LifecycleStats struct {
	// Serving..Evicted count members currently in each lifecycle state.
	Serving          int `json:"serving"`
	Quarantined      int `json:"quarantined"`
	Recharacterizing int `json:"recharacterizing"`
	Readmitting      int `json:"readmitting"`
	Evicted          int `json:"evicted"`
	// Readmissions counts successful quarantine→serving round trips;
	// Recharacterizations counts re-characterization passes started, and
	// RecharFailures the passes that did not end in a readmission.
	Readmissions        int64 `json:"readmissions"`
	Recharacterizations int64 `json:"recharacterizations"`
	RecharFailures      int64 `json:"rechar_failures"`
}

// TierStats counts the serving traffic of one tier of the two-tier read
// path.
type TierStats struct {
	// Reads counts serving calls (Read/ReadRaw/ReadBits/Uint64) answered by
	// this tier.
	Reads int64 `json:"reads"`
	// Bytes counts bytes this tier delivered (bit-granular reads round up
	// to whole bytes).
	Bytes int64 `json:"bytes"`
}

// CreditStats is the entropy credit ledger of one DRBG-backed producer:
// CreditedBits counts raw bits that passed a full online health-test window,
// DebitedBits counts screened bits consumed as DRBG seed material, and
// BalanceBits is their difference — screened entropy harvested but not yet
// folded into DRBG state. A negative balance means a seed was consumed
// before its screening window completed (credit lands in whole-window
// quanta).
type CreditStats struct {
	CreditedBits int64 `json:"credited_bits"`
	DebitedBits  int64 `json:"debited_bits"`
	BalanceBits  int64 `json:"balance_bits"`
}

// DRBGStats is the accounting of one DRBG tier (or, aggregated, of a pool's
// member DRBGs).
type DRBGStats struct {
	// Algorithm names the construction ("chacha20" or "ctr-aes256").
	Algorithm string `json:"algorithm"`
	// Reseeds counts seedings, the open-time instantiation included;
	// Generates counts served DRBG requests (one Read may span several when
	// it exceeds MaxRequestBytes).
	Reseeds   int64 `json:"reseeds"`
	Generates int64 `json:"generates"`
	// PredictionResistance reports whether every request reseeds first.
	PredictionResistance bool `json:"prediction_resistance"`
	// Credit is the entropy credit ledger.
	Credit CreditStats `json:"credit"`
}

// PoolDeviceStats is the accounting and health state of one device of a
// Pool.
type PoolDeviceStats struct {
	// Device is the index into the profiles slice passed to OpenPool.
	Device int `json:"device"`
	// Serial is the device serial from its profile.
	Serial uint64 `json:"serial"`
	// Backend is the backend the device was opened through.
	Backend string `json:"backend"`
	// Healthy reports whether the device is still serving reads; Evicted
	// and Reason describe why not (Reason is also set, with Healthy still
	// true, when the last remaining device violates the health policy but
	// is retained). State is the full lifecycle state: "serving",
	// "quarantined", "recharacterizing", "readmitting" or "evicted" —
	// Healthy and Evicted are redundant with it but kept for compatibility.
	Healthy bool   `json:"healthy"`
	Evicted bool   `json:"evicted"`
	State   string `json:"state"`
	Reason  string `json:"reason,omitempty"`
	// Readmissions, Recharacterizations and RecharFailures count this
	// device's lifecycle transitions under WithRecharacterization;
	// LastRecharMS is the wall-clock duration of the most recent
	// re-characterization pass, and ProfileDeltas the number of versioned
	// deltas the device's (possibly re-characterized) profile carries.
	Readmissions        int64   `json:"readmissions"`
	Recharacterizations int64   `json:"recharacterizations"`
	RecharFailures      int64   `json:"rechar_failures"`
	LastRecharMS        float64 `json:"last_rechar_ms,omitempty"`
	ProfileDeltas       int     `json:"profile_deltas,omitempty"`
	// BiasDelta is |ones-fraction − 0.5| over the last completed health
	// window of this device's harvested bits.
	BiasDelta float64 `json:"bias_delta"`
	// TemperatureC is the device's last observed temperature.
	TemperatureC float64 `json:"temperature_c"`
	// BitsHarvested/BitsDelivered count bits the device's engine extracted
	// and bits the pool handed to callers from this device.
	BitsHarvested int64 `json:"bits_harvested"`
	BitsDelivered int64 `json:"bits_delivered"`
	// ThroughputMbps and Latency64NS are the device engine's aggregate rate
	// in simulated DRAM time.
	ThroughputMbps float64 `json:"throughput_mbps"`
	Latency64NS    float64 `json:"latency_64_ns"`
	// Shards is the device's per-shard breakdown.
	Shards []ShardStats `json:"shards"`
	// Health is this device's online health-test accounting (nil unless
	// WithHealthTests is attached to the pool).
	Health *HealthStats `json:"health,omitempty"`
	// DRBG is this device's DRBG instance and entropy credit accounting
	// (nil unless WithDRBG is attached to the pool).
	DRBG *DRBGStats `json:"drbg,omitempty"`
}

// EngineStats is the former name of Stats.
//
// Deprecated: use Stats.
type EngineStats = Stats

func statsFromEngine(st core.EngineStats) Stats {
	out := Stats{
		Shards:                  make([]ShardStats, len(st.Shards)),
		BitsHarvested:           st.BitsHarvested,
		BitsDelivered:           st.BitsDelivered,
		AggregateThroughputMbps: st.AggregateThroughputMbps,
		Latency64NS:             st.Latency64NS,
	}
	for i, s := range st.Shards {
		out.Shards[i] = ShardStats{
			Shard:            s.Shard,
			Banks:            s.Banks,
			BitsPerIteration: s.BitsPerIteration,
			BitsHarvested:    s.BitsHarvested,
			BitsDelivered:    s.BitsDelivered,
			SimCycles:        s.SimCycles,
			SimNS:            s.SimNS,
			ThroughputMbps:   s.ThroughputMbps,
			Latency64NS:      s.Latency64NS,
		}
	}
	return out
}

// Throughput is the measured timing of the Algorithm 2 core loop, the data
// behind Figure 8 and Equation 1 of the paper.
type Throughput struct {
	// Banks is the number of banks sampled in parallel.
	Banks int
	// BitsPerIteration is the number of random bits per core-loop pass.
	BitsPerIteration int
	// NSPerIteration is the simulated time of one core-loop pass.
	NSPerIteration float64
	// ThroughputMbps is the single-channel throughput in Mb/s.
	ThroughputMbps float64
}

// NISTResult is the outcome of one NIST SP 800-22 test over a bitstream.
type NISTResult struct {
	// Name is the test name as reported in Table 1 of the paper.
	Name string
	// PValue is the headline p-value (the minimum when the test produces
	// several).
	PValue float64
	// Applicable is false when the bitstream was too short for the test.
	Applicable bool
	// Pass reports whether every p-value met the significance level; it is
	// false for inapplicable results.
	Pass bool
	// Detail carries an optional human-readable note.
	Detail string
}
