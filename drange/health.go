package drange

import (
	"fmt"

	"repro/internal/health"
)

// HealthAction selects what a Source does when a continuous health test
// trips. The zero value resolves to the surface's default: HealthActionError
// for Open, HealthActionEvict for OpenPool.
type HealthAction int

const (
	// HealthActionDefault resolves to HealthActionError on a single Source
	// and HealthActionEvict on a Pool.
	HealthActionDefault HealthAction = iota
	// HealthActionBlock stalls the read: the dirty window is discarded and fresh
	// bits are harvested until a window passes cleanly (bounded by
	// HealthTestPolicy.MaxBlockedWindows, after which the read fails with a
	// HealthError). Readers of a transiently noisy device see latency, never
	// tainted bits.
	HealthActionBlock
	// HealthActionError fails the read with a *HealthError, leaving the
	// decision to the caller. The source remains usable; the tripped test
	// restarts from a clean window.
	HealthActionError
	// HealthActionEvict removes the offending device from a Pool via the existing
	// per-device eviction (reads continue from the surviving members; the
	// last healthy member is retained with the violation recorded). It only
	// applies to OpenPool.
	HealthActionEvict
)

// String implements fmt.Stringer.
func (a HealthAction) String() string {
	switch a {
	case HealthActionDefault:
		return "default"
	case HealthActionBlock:
		return "block"
	case HealthActionError:
		return "error"
	case HealthActionEvict:
		return "evict"
	}
	return fmt.Sprintf("HealthAction(%d)", int(a))
}

// HealthTestPolicy configures the SP 800-90B style online health tests
// attached with WithHealthTests: the Repetition Count Test and Adaptive
// Proportion Test over configurable symbol widths, a windowed bias monitor,
// and a startup self-test that must pass before Open (or OpenPool) serves a
// single byte. Zero fields select the documented defaults, so
// WithHealthTests(HealthTestPolicy{}) enables the full default battery.
type HealthTestPolicy struct {
	// SymbolBits is the RCT/APT symbol width in [1, 16]; harvested bits are
	// packed MSB-first. 0 selects 1 (the raw bitstream). Wider symbols catch
	// periodic structure single bits cannot.
	SymbolBits int
	// RCTCutoff trips the repetition count test at this many consecutive
	// identical symbols. 0 derives the SP 800-90B cutoff for a full-entropy
	// source at a 2^-30 false-positive rate (31 for 1-bit symbols).
	RCTCutoff int
	// APTWindow and APTCutoff parameterize the adaptive proportion test. 0
	// selects the SP 800-90B window (1024 symbols binary, 512 otherwise) and
	// the exact critical binomial cutoff at 2^-30.
	APTWindow int
	APTCutoff int
	// BiasWindowBits is the bias monitor's window (0 selects 4096);
	// MaxBiasDelta trips it when |ones-fraction − 0.5| over a window exceeds
	// it (0 selects 0.1; negative disables the bias monitor).
	BiasWindowBits int
	MaxBiasDelta   float64
	// StartupBits is the number of bits harvested and self-tested at Open
	// before any byte is served: a fresh RCT/APT/bias pass plus a NIST
	// battery (tests inapplicable at this length are skipped). The sample is
	// discarded. 0 selects 4096; negative disables the startup self-test.
	StartupBits int
	// StartupAlpha is the significance level of the startup NIST battery. 0
	// selects 1e-6 — loose enough that a healthy source false-fails an Open
	// with negligible probability, while a stuck or biased device produces
	// p-values indistinguishable from zero.
	StartupAlpha float64
	// OnFailure selects the response to a trip; see HealthAction.
	OnFailure HealthAction
	// MaxBlockedWindows bounds HealthActionBlock: after discarding this many dirty
	// batches within one read, the read fails with a HealthError instead of
	// stalling forever on a dead device. 0 selects 64.
	MaxBlockedWindows int
	// Disabled turns the subsystem off (as if WithHealthTests was never
	// applied); it exists so callers can thread one policy value through
	// configuration layers.
	Disabled bool
}

// withDefaults resolves the zero fields the facade reads itself; pool
// selects the surface default action. The monitor knobs (cutoffs, windows,
// bias bound) are deliberately left to health.New — internal/health owns
// those defaults, and resolving them here too would be a second table that
// could drift.
func (p HealthTestPolicy) withDefaults(pool bool) HealthTestPolicy {
	if p.SymbolBits == 0 {
		p.SymbolBits = 1
	}
	if p.StartupBits == 0 {
		p.StartupBits = 4096
	}
	if p.StartupAlpha == 0 {
		p.StartupAlpha = 1e-6
	}
	if p.MaxBlockedWindows == 0 {
		p.MaxBlockedWindows = 64
	}
	if p.OnFailure == HealthActionDefault {
		if pool {
			p.OnFailure = HealthActionEvict
		} else {
			p.OnFailure = HealthActionError
		}
	}
	return p
}

// config maps the policy onto the internal monitor configuration.
func (p HealthTestPolicy) config() health.Config {
	return health.Config{
		SymbolBits:     p.SymbolBits,
		RCTCutoff:      p.RCTCutoff,
		APTWindow:      p.APTWindow,
		APTCutoff:      p.APTCutoff,
		BiasWindowBits: p.BiasWindowBits,
		MaxBiasDelta:   p.MaxBiasDelta,
	}
}

// HealthError is the typed error surfaced when an online health test trips
// under the HealthActionError policy (or when HealthActionBlock exhausts its window
// budget, or a startup self-test fails at Open/OpenPool). Match it with
// errors.As.
type HealthError struct {
	// Test is the tripped test: "rct", "apt", "bias", "startup" or
	// "blocked" (a HealthActionBlock source that never found a clean window).
	Test string
	// Device is the pool member index the trip occurred on, or -1 for a
	// single-device Source.
	Device int
	// Detail describes the trip.
	Detail string
}

// Error implements error.
func (e *HealthError) Error() string {
	dev := ""
	if e.Device >= 0 {
		dev = fmt.Sprintf(" on pool device %d", e.Device)
	}
	return fmt.Sprintf("drange: health test %q tripped%s: %s", e.Test, dev, e.Detail)
}

// HealthStats is the online health-test accounting of a Source, reported in
// Stats.Health (and per pool member in PoolDeviceStats.Health) when
// WithHealthTests is attached.
type HealthStats struct {
	// SymbolBits is the RCT/APT symbol width in effect.
	SymbolBits int `json:"symbol_bits"`
	// BitsTested and SymbolsTested count the stream fed through the tests.
	BitsTested    int64 `json:"bits_tested"`
	SymbolsTested int64 `json:"symbols_tested"`
	// RCTTrips, APTTrips and BiasTrips count trips per test; TotalTrips is
	// their sum.
	RCTTrips   int64 `json:"rct_trips"`
	APTTrips   int64 `json:"apt_trips"`
	BiasTrips  int64 `json:"bias_trips"`
	TotalTrips int64 `json:"total_trips"`
	// LongestRun is the longest run of identical symbols observed.
	LongestRun int64 `json:"longest_run"`
	// BlockedWindows counts dirty batches discarded under HealthActionBlock.
	BlockedWindows int64 `json:"blocked_windows"`
	// StartupPassed reports whether the startup self-test passed (true when
	// the startup test is disabled: nothing failed).
	StartupPassed bool `json:"startup_passed"`
	// LastViolation describes the most recent trip ("" when none).
	LastViolation string `json:"last_violation,omitempty"`
}

// healthStatsFrom assembles the public snapshot from a monitor's counters.
func healthStatsFrom(m *health.Monitor, blockedWindows int64, startupOK bool) *HealthStats {
	c := m.Counters()
	return &HealthStats{
		SymbolBits:     m.Config().SymbolBits,
		BitsTested:     c.BitsTested,
		SymbolsTested:  c.SymbolsTested,
		RCTTrips:       c.RCTTrips,
		APTTrips:       c.APTTrips,
		BiasTrips:      c.BiasTrips,
		TotalTrips:     c.Trips(),
		LongestRun:     c.LongestRun,
		BlockedWindows: blockedWindows,
		StartupPassed:  startupOK,
		LastViolation:  c.LastViolation,
	}
}

// runStartup runs the startup self-test over a freshly harvested sample and
// maps failures onto HealthError. device is the pool member index (-1 for
// single sources).
func runStartup(bits []byte, p HealthTestPolicy, device int) error {
	v, err := health.Startup(bits, p.config(), p.StartupAlpha)
	if err != nil {
		return fmt.Errorf("drange: startup health test: %w", err)
	}
	if v != nil {
		return &HealthError{Test: string(health.TestStartup), Device: device, Detail: v.Detail}
	}
	return nil
}

// WithHealthTests attaches the SP 800-90B style online health tests to the
// opened Source: every harvested bit streams through the Repetition Count
// Test, the Adaptive Proportion Test and a windowed bias monitor before it
// reaches the caller (and before any WithPostprocess chain — the tests watch
// the raw noise source, as SP 800-90B prescribes), and Open/OpenPool run a
// startup self-test on the first StartupBits bits before serving any byte.
// The zero policy enables the full default battery; see HealthTestPolicy for
// the knobs and HealthAction for the trip responses. Health accounting is
// reported in Stats.Health. It applies to Open and OpenPool, not
// Characterize.
func WithHealthTests(p HealthTestPolicy) Option {
	return func(o *options) { o.healthTests = &p }
}
