package drange

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/pattern"
)

// ProfileVersion is the profile file format version this package writes.
// Decoding rejects versions newer than this; older versions remain readable
// within the compatibility policy documented in the README.
const ProfileVersion = 1

// checksumPrefix tags the integrity digest algorithm in the profile file.
const checksumPrefix = "sha256:"

// CharacterizationParams records the identification parameters a profile was
// characterized with, so an Open'd generator reproduces the original
// sampling conditions exactly.
type CharacterizationParams struct {
	// TRCDNS is the reduced activation latency (ns) used for identification
	// and, by default, generation.
	TRCDNS float64 `json:"trcd_ns"`
	// Samples, Tolerance, MaxBiasDelta and ScreenIterations are the Section
	// 6.1 identification parameters (see the corresponding With* options).
	Samples          int     `json:"samples"`
	Tolerance        float64 `json:"tolerance"`
	MaxBiasDelta     float64 `json:"max_bias_delta"`
	ScreenIterations int     `json:"screen_iterations"`
	// Pattern is the canonical name of the data pattern maintained around
	// the RNG cells ("SOLID0", "CHECKERED0", ...).
	Pattern string `json:"pattern"`
	// RowsPerBank, WordsPerRow and Banks describe the region characterized.
	RowsPerBank int `json:"rows_per_bank"`
	WordsPerRow int `json:"words_per_row"`
	Banks       int `json:"banks"`
	// Deterministic records whether the device was opened with the seeded
	// noise source; Open reuses the same mode unless overridden.
	Deterministic bool `json:"deterministic"`
}

// Profile is the serializable result of one device characterization: the
// device identity, the identified RNG cells, and the per-bank DRAM-word
// selections Algorithm 2 samples. Characterization is a one-time-per-device
// step (Sections 6.1–6.2 of the paper); a saved profile lets Open start
// generating in milliseconds without re-running it.
//
// Profiles marshal to versioned JSON with an integrity checksum. Mutating a
// profile invalidates the checksum; call Seal to recompute it.
type Profile struct {
	// Version is the file format version (ProfileVersion when written by
	// this package).
	Version int `json:"version"`
	// Manufacturer and Serial identify the simulated device the profile was
	// characterized on. Opening a profile against a different device is an
	// error: RNG-cell locations are per-device process variation.
	Manufacturer string `json:"manufacturer"`
	Serial       uint64 `json:"serial"`
	// Geometry is the device organisation the cells were identified under.
	Geometry Geometry `json:"geometry"`
	// Characterization records the identification parameters used.
	Characterization CharacterizationParams `json:"characterization"`
	// Cells lists every identified RNG cell.
	Cells []Cell `json:"cells"`
	// Selections lists the per-bank word pairs chosen for generation, in
	// descending data-rate order.
	Selections []Selection `json:"selections"`
	// Deltas is the ordered chain of re-characterization deltas applied on
	// top of the base characterization (empty for a freshly characterized
	// profile; omitted from the encoding when empty, so v1 profiles without
	// deltas are byte-identical to those written before deltas existed).
	// Each delta replaces the cells and selections of the banks it names;
	// EffectiveCells/EffectiveSelections resolve the chain.
	Deltas []*ProfileDelta `json:"deltas,omitempty"`
	// Checksum is the integrity digest ("sha256:<hex>") over the profile's
	// canonical JSON with this field empty.
	Checksum string `json:"checksum"`
}

// ProfileDeltaVersion is the delta wire format version this package writes.
const ProfileDeltaVersion = 1

// DeltaCharacterization records the targeted re-characterization parameters
// a delta was produced with — the profiler.Recharacterize configuration, not
// the full Section 6.1 sweep parameters of the base profile.
type DeltaCharacterization struct {
	TRCDNS float64 `json:"trcd_ns"`
	// Iterations is the Algorithm 1 iteration count of each stability round;
	// ScreenIterations is the narrowing screen's count.
	Iterations       int `json:"iterations"`
	ScreenIterations int `json:"screen_iterations"`
	// Rounds and MaxDrift are the stability acceptance parameters.
	Rounds   int     `json:"rounds"`
	MaxDrift float64 `json:"max_drift"`
	// LowFprob/HighFprob bound the accepted mean failure probability.
	LowFprob  float64 `json:"low_fprob"`
	HighFprob float64 `json:"high_fprob"`
	Pattern   string  `json:"pattern"`
}

// ProfileDelta is one versioned, checksummed re-characterization of a subset
// of a profile's banks. Deltas form a chain: each one names the checksum of
// the exact profile state it was measured against (the base profile plus all
// earlier deltas), so a delta can never be replayed onto a profile it does
// not belong to, reordered, or carried across devices.
type ProfileDelta struct {
	// Version is the delta wire format version (ProfileDeltaVersion when
	// written by this package).
	Version int `json:"version"`
	// Sequence is the delta's 1-based position in the profile's chain.
	Sequence int `json:"sequence"`
	// BaseChecksum is the sealed checksum of the profile the delta applies
	// to — the base profile with every earlier delta appended.
	BaseChecksum string `json:"base_checksum"`
	// Reason records why the member was re-characterized (the quarantine
	// reason), for operators reading the profile.
	Reason string `json:"reason,omitempty"`
	// Characterization records the targeted pass parameters.
	Characterization DeltaCharacterization `json:"characterization"`
	// Banks lists the banks this delta re-characterizes, ascending. The
	// delta replaces those banks' cells and selections wholesale; a listed
	// bank with no surviving selection is dropped from generation.
	Banks []int `json:"banks"`
	// Cells lists the re-characterized RNG cells of the affected banks.
	Cells []Cell `json:"cells"`
	// Selections lists the affected banks' new word pairs.
	Selections []Selection `json:"selections"`
	// Checksum is the integrity digest ("sha256:<hex>") over the delta's
	// canonical JSON with this field empty.
	Checksum string `json:"checksum"`
}

// computeChecksum digests the delta's canonical JSON with Checksum blank.
func (d *ProfileDelta) computeChecksum() (string, error) {
	shadow := *d
	shadow.Checksum = ""
	data, err := json.Marshal(&shadow)
	if err != nil {
		return "", fmt.Errorf("drange: computing profile delta checksum: %w", err)
	}
	sum := sha256.Sum256(data)
	return checksumPrefix + hex.EncodeToString(sum[:]), nil
}

// Seal recomputes the delta's integrity checksum after a mutation.
func (d *ProfileDelta) Seal() error {
	sum, err := d.computeChecksum()
	if err != nil {
		return err
	}
	d.Checksum = sum
	return nil
}

// validateAgainst checks the delta's own integrity and its structural
// consistency against the profile's geometry. seq is the delta's expected
// 1-based chain position and base the checksum of the profile state it must
// have been measured against.
func (d *ProfileDelta) validateAgainst(p *Profile, seq int, base string) error {
	if d.Version <= 0 {
		return fmt.Errorf("drange: profile delta %d has no version", seq)
	}
	if d.Version > ProfileDeltaVersion {
		return fmt.Errorf("drange: profile delta %d version %d is newer than the supported version %d; upgrade this package to read it", seq, d.Version, ProfileDeltaVersion)
	}
	sum, err := d.computeChecksum()
	if err != nil {
		return err
	}
	if d.Checksum == "" {
		return fmt.Errorf("drange: profile delta %d has no integrity checksum; call Seal after mutating a delta", seq)
	}
	if d.Checksum != sum {
		return fmt.Errorf("drange: profile delta %d integrity check failed (checksum mismatch)", seq)
	}
	if d.Sequence != seq {
		return fmt.Errorf("drange: profile delta claims chain position %d, found at position %d; the delta chain was reordered", d.Sequence, seq)
	}
	if d.BaseChecksum != base {
		return fmt.Errorf("drange: profile delta %d was measured against a different profile state (base checksum mismatch); the chain was edited or the delta replayed onto the wrong profile", seq)
	}
	if d.Characterization.TRCDNS <= 0 {
		return fmt.Errorf("drange: profile delta %d tRCD %v ns must be positive", seq, d.Characterization.TRCDNS)
	}
	if _, err := parsePattern(d.Characterization.Pattern); err != nil {
		return err
	}
	if len(d.Banks) == 0 {
		return fmt.Errorf("drange: profile delta %d names no banks", seq)
	}
	geom := p.Geometry.internal()
	affected := make(map[int]bool, len(d.Banks))
	for i, b := range d.Banks {
		if b < 0 || b >= geom.Banks {
			return fmt.Errorf("drange: profile delta %d bank %d outside device geometry", seq, b)
		}
		if i > 0 && b <= d.Banks[i-1] {
			return fmt.Errorf("drange: profile delta %d bank list is not strictly ascending", seq)
		}
		affected[b] = true
	}
	for _, cell := range d.Cells {
		if !affected[cell.Bank] {
			return fmt.Errorf("drange: profile delta %d cell in bank %d, which the delta does not name", seq, cell.Bank)
		}
		if cell.Row < 0 || cell.Row >= geom.RowsPerBank ||
			cell.Col < 0 || cell.Col >= geom.ColsPerRow {
			return fmt.Errorf("drange: profile delta %d cell (bank %d, row %d, col %d) outside device geometry", seq, cell.Bank, cell.Row, cell.Col)
		}
		if cell.Word != cell.Col/geom.WordBits {
			return fmt.Errorf("drange: profile delta %d cell (bank %d, row %d, col %d) has inconsistent word index %d", seq, cell.Bank, cell.Row, cell.Col, cell.Word)
		}
	}
	for _, s := range d.Selections {
		if !affected[s.Bank] {
			return fmt.Errorf("drange: profile delta %d selection for bank %d, which the delta does not name", seq, s.Bank)
		}
		if s.Word1.Row == s.Word2.Row {
			return fmt.Errorf("drange: profile delta %d bank %d selection uses a single row %d; Algorithm 2 requires distinct rows", seq, s.Bank, s.Word1.Row)
		}
		if s.Bits() == 0 {
			return fmt.Errorf("drange: profile delta %d bank %d selection has no RNG cells", seq, s.Bank)
		}
	}
	return nil
}

// AppendDelta returns a new sealed profile carrying d at the end of p's
// delta chain. p itself is not modified — sealed profiles stay immutable, so
// readers holding the old profile keep a consistent view. The delta must be
// sealed and must name p's current checksum as its base.
func (p *Profile) AppendDelta(d *ProfileDelta) (*Profile, error) {
	if d == nil {
		return nil, fmt.Errorf("drange: nil profile delta")
	}
	if err := d.validateAgainst(p, len(p.Deltas)+1, p.Checksum); err != nil {
		return nil, err
	}
	next := *p
	next.Deltas = make([]*ProfileDelta, 0, len(p.Deltas)+1)
	next.Deltas = append(next.Deltas, p.Deltas...)
	next.Deltas = append(next.Deltas, d)
	if err := next.Seal(); err != nil {
		return nil, err
	}
	if err := next.Validate(); err != nil {
		return nil, err
	}
	return &next, nil
}

// EffectiveCells resolves the delta chain into the profile's current RNG
// cells: each delta replaces the cells of the banks it names.
func (p *Profile) EffectiveCells() []Cell {
	cells := p.Cells
	for _, d := range p.Deltas {
		affected := make(map[int]bool, len(d.Banks))
		for _, b := range d.Banks {
			affected[b] = true
		}
		next := make([]Cell, 0, len(cells)+len(d.Cells))
		for _, c := range cells {
			if !affected[c.Bank] {
				next = append(next, c)
			}
		}
		cells = append(next, d.Cells...)
	}
	return cells
}

// EffectiveSelections resolves the delta chain into the profile's current
// per-bank word selections: each delta replaces the selections of the banks
// it names (a named bank without a new selection drops out of generation).
func (p *Profile) EffectiveSelections() []Selection {
	sels := p.Selections
	for _, d := range p.Deltas {
		affected := make(map[int]bool, len(d.Banks))
		for _, b := range d.Banks {
			affected[b] = true
		}
		next := make([]Selection, 0, len(sels)+len(d.Selections))
		for _, s := range sels {
			if !affected[s.Bank] {
				next = append(next, s)
			}
		}
		sels = append(next, d.Selections...)
	}
	return sels
}

// computeChecksum digests the profile's canonical JSON with Checksum blank.
func (p *Profile) computeChecksum() (string, error) {
	shadow := *p
	shadow.Checksum = ""
	data, err := json.Marshal(&shadow)
	if err != nil {
		return "", fmt.Errorf("drange: computing profile checksum: %w", err)
	}
	sum := sha256.Sum256(data)
	return checksumPrefix + hex.EncodeToString(sum[:]), nil
}

// Seal recomputes the integrity checksum after a mutation. Profiles returned
// by Characterize and DecodeProfile are already sealed.
func (p *Profile) Seal() error {
	sum, err := p.computeChecksum()
	if err != nil {
		return err
	}
	p.Checksum = sum
	return nil
}

// Validate checks the profile's version, integrity checksum and internal
// consistency (device identity, geometry bounds, selection structure).
func (p *Profile) Validate() error {
	if p.Version <= 0 {
		return fmt.Errorf("drange: profile has no version")
	}
	if p.Version > ProfileVersion {
		return fmt.Errorf("drange: profile version %d is newer than the supported version %d; upgrade this package to read it", p.Version, ProfileVersion)
	}
	sum, err := p.computeChecksum()
	if err != nil {
		return err
	}
	if p.Checksum == "" {
		return fmt.Errorf("drange: profile has no integrity checksum; call Seal after mutating a profile")
	}
	if p.Checksum != sum {
		return fmt.Errorf("drange: profile integrity check failed (checksum mismatch); the profile was corrupted or edited without Seal")
	}
	if _, err := dram.ProfileFor(dram.Manufacturer(p.Manufacturer)); err != nil {
		return fmt.Errorf("drange: %w", err)
	}
	geom := p.Geometry.internal()
	if err := geom.Validate(); err != nil {
		return fmt.Errorf("drange: profile geometry: %w", err)
	}
	c := p.Characterization
	if c.TRCDNS <= 0 {
		return fmt.Errorf("drange: profile tRCD %v ns must be positive", c.TRCDNS)
	}
	if _, err := parsePattern(c.Pattern); err != nil {
		return err
	}
	if len(p.Cells) == 0 {
		return fmt.Errorf("drange: profile contains no RNG cells")
	}
	for _, cell := range p.Cells {
		if cell.Bank < 0 || cell.Bank >= geom.Banks ||
			cell.Row < 0 || cell.Row >= geom.RowsPerBank ||
			cell.Col < 0 || cell.Col >= geom.ColsPerRow {
			return fmt.Errorf("drange: profile cell (bank %d, row %d, col %d) outside device geometry", cell.Bank, cell.Row, cell.Col)
		}
		if cell.Word != cell.Col/geom.WordBits {
			return fmt.Errorf("drange: profile cell (bank %d, row %d, col %d) has inconsistent word index %d", cell.Bank, cell.Row, cell.Col, cell.Word)
		}
	}
	if len(p.Selections) == 0 {
		return fmt.Errorf("drange: profile contains no bank selections")
	}
	for _, s := range p.Selections {
		if s.Bank < 0 || s.Bank >= geom.Banks {
			return fmt.Errorf("drange: selection bank %d outside device geometry", s.Bank)
		}
		if s.Word1.Row == s.Word2.Row {
			return fmt.Errorf("drange: bank %d selection uses a single row %d; Algorithm 2 requires distinct rows", s.Bank, s.Word1.Row)
		}
		if s.Bits() == 0 {
			return fmt.Errorf("drange: bank %d selection has no RNG cells", s.Bank)
		}
	}
	// Walk the delta chain: every delta must be internally sound and must
	// name the checksum of exactly the profile state before it — the base
	// profile plus all earlier deltas — so chains cannot be reordered,
	// truncated in the middle, or replayed across profiles.
	shadow := *p
	for i, d := range p.Deltas {
		if d == nil {
			return fmt.Errorf("drange: profile delta %d is null", i+1)
		}
		shadow.Deltas = p.Deltas[:i]
		base, err := shadow.computeChecksum()
		if err != nil {
			return err
		}
		if err := d.validateAgainst(p, i+1, base); err != nil {
			return err
		}
	}
	if len(p.EffectiveSelections()) == 0 {
		return fmt.Errorf("drange: profile's delta chain leaves no bank selections")
	}
	if _, err := coreSelections(p.EffectiveCells(), p.EffectiveSelections()); err != nil {
		return err
	}
	return nil
}

// Encode marshals the profile to indented JSON, sealing it first.
func (p *Profile) Encode() ([]byte, error) {
	if err := p.Seal(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("drange: encoding profile: %w", err)
	}
	return append(data, '\n'), nil
}

// Save writes the profile as JSON to w.
func (p *Profile) Save(w io.Writer) error {
	data, err := p.Encode()
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("drange: writing profile: %w", err)
	}
	return nil
}

// DecodeProfile parses and validates a JSON-encoded profile. It rejects
// truncated or corrupted data (checksum mismatch) and profiles written by a
// newer format version.
func DecodeProfile(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("drange: decoding profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadProfile reads and validates a JSON-encoded profile from r.
func LoadProfile(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("drange: reading profile: %w", err)
	}
	return DecodeProfile(data)
}

// Banks returns the number of banks the profile currently selects for
// generation, after resolving the delta chain.
func (p *Profile) Banks() int { return len(p.EffectiveSelections()) }

// BitsPerIteration returns the number of random bits one pass of the
// Algorithm 2 core loop harvests across all currently selected banks, after
// resolving the delta chain.
func (p *Profile) BitsPerIteration() int {
	n := 0
	for _, s := range p.EffectiveSelections() {
		n += s.Bits()
	}
	return n
}

// DensityHistograms returns the Figure 7 data for the characterized device:
// the number of DRAM words containing x RNG cells, per bank.
func (p *Profile) DensityHistograms() []Density {
	cells := make([]core.RNGCell, 0, len(p.Cells))
	for _, c := range p.Cells {
		cells = append(cells, c.core())
	}
	hists := core.RNGCellDensity(cells)
	out := make([]Density, 0, len(hists))
	for _, h := range hists {
		counts := make(map[int]int, len(h.WordsWithNCells))
		for n, c := range h.WordsWithNCells {
			counts[n] = c
		}
		out = append(out, Density{
			Bank:            h.Bank,
			WordsWithNCells: counts,
			MaxCellsPerWord: h.MaxCellsPerWord,
			TotalRNGCells:   h.TotalRNGCells,
		})
	}
	return out
}

// patternByName maps every canonical pattern name to its definition.
var patternByName = func() map[string]pattern.Pattern {
	m := make(map[string]pattern.Pattern)
	for _, p := range pattern.All() {
		m[p.String()] = p
	}
	return m
}()

func parsePattern(name string) (pattern.Pattern, error) {
	p, ok := patternByName[name]
	if !ok {
		return pattern.Pattern{}, fmt.Errorf("drange: profile references unknown data pattern %q", name)
	}
	return p, nil
}
