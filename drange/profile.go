package drange

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/pattern"
)

// ProfileVersion is the profile file format version this package writes.
// Decoding rejects versions newer than this; older versions remain readable
// within the compatibility policy documented in the README.
const ProfileVersion = 1

// checksumPrefix tags the integrity digest algorithm in the profile file.
const checksumPrefix = "sha256:"

// CharacterizationParams records the identification parameters a profile was
// characterized with, so an Open'd generator reproduces the original
// sampling conditions exactly.
type CharacterizationParams struct {
	// TRCDNS is the reduced activation latency (ns) used for identification
	// and, by default, generation.
	TRCDNS float64 `json:"trcd_ns"`
	// Samples, Tolerance, MaxBiasDelta and ScreenIterations are the Section
	// 6.1 identification parameters (see the corresponding With* options).
	Samples          int     `json:"samples"`
	Tolerance        float64 `json:"tolerance"`
	MaxBiasDelta     float64 `json:"max_bias_delta"`
	ScreenIterations int     `json:"screen_iterations"`
	// Pattern is the canonical name of the data pattern maintained around
	// the RNG cells ("SOLID0", "CHECKERED0", ...).
	Pattern string `json:"pattern"`
	// RowsPerBank, WordsPerRow and Banks describe the region characterized.
	RowsPerBank int `json:"rows_per_bank"`
	WordsPerRow int `json:"words_per_row"`
	Banks       int `json:"banks"`
	// Deterministic records whether the device was opened with the seeded
	// noise source; Open reuses the same mode unless overridden.
	Deterministic bool `json:"deterministic"`
}

// Profile is the serializable result of one device characterization: the
// device identity, the identified RNG cells, and the per-bank DRAM-word
// selections Algorithm 2 samples. Characterization is a one-time-per-device
// step (Sections 6.1–6.2 of the paper); a saved profile lets Open start
// generating in milliseconds without re-running it.
//
// Profiles marshal to versioned JSON with an integrity checksum. Mutating a
// profile invalidates the checksum; call Seal to recompute it.
type Profile struct {
	// Version is the file format version (ProfileVersion when written by
	// this package).
	Version int `json:"version"`
	// Manufacturer and Serial identify the simulated device the profile was
	// characterized on. Opening a profile against a different device is an
	// error: RNG-cell locations are per-device process variation.
	Manufacturer string `json:"manufacturer"`
	Serial       uint64 `json:"serial"`
	// Geometry is the device organisation the cells were identified under.
	Geometry Geometry `json:"geometry"`
	// Characterization records the identification parameters used.
	Characterization CharacterizationParams `json:"characterization"`
	// Cells lists every identified RNG cell.
	Cells []Cell `json:"cells"`
	// Selections lists the per-bank word pairs chosen for generation, in
	// descending data-rate order.
	Selections []Selection `json:"selections"`
	// Checksum is the integrity digest ("sha256:<hex>") over the profile's
	// canonical JSON with this field empty.
	Checksum string `json:"checksum"`
}

// computeChecksum digests the profile's canonical JSON with Checksum blank.
func (p *Profile) computeChecksum() (string, error) {
	shadow := *p
	shadow.Checksum = ""
	data, err := json.Marshal(&shadow)
	if err != nil {
		return "", fmt.Errorf("drange: computing profile checksum: %w", err)
	}
	sum := sha256.Sum256(data)
	return checksumPrefix + hex.EncodeToString(sum[:]), nil
}

// Seal recomputes the integrity checksum after a mutation. Profiles returned
// by Characterize and DecodeProfile are already sealed.
func (p *Profile) Seal() error {
	sum, err := p.computeChecksum()
	if err != nil {
		return err
	}
	p.Checksum = sum
	return nil
}

// Validate checks the profile's version, integrity checksum and internal
// consistency (device identity, geometry bounds, selection structure).
func (p *Profile) Validate() error {
	if p.Version <= 0 {
		return fmt.Errorf("drange: profile has no version")
	}
	if p.Version > ProfileVersion {
		return fmt.Errorf("drange: profile version %d is newer than the supported version %d; upgrade this package to read it", p.Version, ProfileVersion)
	}
	sum, err := p.computeChecksum()
	if err != nil {
		return err
	}
	if p.Checksum == "" {
		return fmt.Errorf("drange: profile has no integrity checksum; call Seal after mutating a profile")
	}
	if p.Checksum != sum {
		return fmt.Errorf("drange: profile integrity check failed (checksum mismatch); the profile was corrupted or edited without Seal")
	}
	if _, err := dram.ProfileFor(dram.Manufacturer(p.Manufacturer)); err != nil {
		return fmt.Errorf("drange: %w", err)
	}
	geom := p.Geometry.internal()
	if err := geom.Validate(); err != nil {
		return fmt.Errorf("drange: profile geometry: %w", err)
	}
	c := p.Characterization
	if c.TRCDNS <= 0 {
		return fmt.Errorf("drange: profile tRCD %v ns must be positive", c.TRCDNS)
	}
	if _, err := parsePattern(c.Pattern); err != nil {
		return err
	}
	if len(p.Cells) == 0 {
		return fmt.Errorf("drange: profile contains no RNG cells")
	}
	for _, cell := range p.Cells {
		if cell.Bank < 0 || cell.Bank >= geom.Banks ||
			cell.Row < 0 || cell.Row >= geom.RowsPerBank ||
			cell.Col < 0 || cell.Col >= geom.ColsPerRow {
			return fmt.Errorf("drange: profile cell (bank %d, row %d, col %d) outside device geometry", cell.Bank, cell.Row, cell.Col)
		}
		if cell.Word != cell.Col/geom.WordBits {
			return fmt.Errorf("drange: profile cell (bank %d, row %d, col %d) has inconsistent word index %d", cell.Bank, cell.Row, cell.Col, cell.Word)
		}
	}
	if len(p.Selections) == 0 {
		return fmt.Errorf("drange: profile contains no bank selections")
	}
	for _, s := range p.Selections {
		if s.Bank < 0 || s.Bank >= geom.Banks {
			return fmt.Errorf("drange: selection bank %d outside device geometry", s.Bank)
		}
		if s.Word1.Row == s.Word2.Row {
			return fmt.Errorf("drange: bank %d selection uses a single row %d; Algorithm 2 requires distinct rows", s.Bank, s.Word1.Row)
		}
		if s.Bits() == 0 {
			return fmt.Errorf("drange: bank %d selection has no RNG cells", s.Bank)
		}
	}
	if _, err := coreSelections(p.Cells, p.Selections); err != nil {
		return err
	}
	return nil
}

// Encode marshals the profile to indented JSON, sealing it first.
func (p *Profile) Encode() ([]byte, error) {
	if err := p.Seal(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("drange: encoding profile: %w", err)
	}
	return append(data, '\n'), nil
}

// Save writes the profile as JSON to w.
func (p *Profile) Save(w io.Writer) error {
	data, err := p.Encode()
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("drange: writing profile: %w", err)
	}
	return nil
}

// DecodeProfile parses and validates a JSON-encoded profile. It rejects
// truncated or corrupted data (checksum mismatch) and profiles written by a
// newer format version.
func DecodeProfile(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("drange: decoding profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadProfile reads and validates a JSON-encoded profile from r.
func LoadProfile(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("drange: reading profile: %w", err)
	}
	return DecodeProfile(data)
}

// Banks returns the number of banks the profile selects for generation.
func (p *Profile) Banks() int { return len(p.Selections) }

// BitsPerIteration returns the number of random bits one pass of the
// Algorithm 2 core loop harvests across all selected banks.
func (p *Profile) BitsPerIteration() int {
	n := 0
	for _, s := range p.Selections {
		n += s.Bits()
	}
	return n
}

// DensityHistograms returns the Figure 7 data for the characterized device:
// the number of DRAM words containing x RNG cells, per bank.
func (p *Profile) DensityHistograms() []Density {
	cells := make([]core.RNGCell, 0, len(p.Cells))
	for _, c := range p.Cells {
		cells = append(cells, c.core())
	}
	hists := core.RNGCellDensity(cells)
	out := make([]Density, 0, len(hists))
	for _, h := range hists {
		counts := make(map[int]int, len(h.WordsWithNCells))
		for n, c := range h.WordsWithNCells {
			counts[n] = c
		}
		out = append(out, Density{
			Bank:            h.Bank,
			WordsWithNCells: counts,
			MaxCellsPerWord: h.MaxCellsPerWord,
			TotalRNGCells:   h.TotalRNGCells,
		})
	}
	return out
}

// patternByName maps every canonical pattern name to its definition.
var patternByName = func() map[string]pattern.Pattern {
	m := make(map[string]pattern.Pattern)
	for _, p := range pattern.All() {
		m[p.String()] = p
	}
	return m
}()

func parsePattern(name string) (pattern.Pattern, error) {
	p, ok := patternByName[name]
	if !ok {
		return pattern.Pattern{}, fmt.Errorf("drange: profile references unknown data pattern %q", name)
	}
	return p, nil
}
