package drange

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// newV1GoldenDelta is the delta counterpart of newV1GoldenProfile: a
// hand-built, fully deterministic re-characterization delta covering every
// delta wire-format field, sealed against the golden base profile. It panics
// rather than taking a *testing.T because fuzz seeding has none.
func newV1GoldenDelta(base *Profile) *ProfileDelta {
	d := &ProfileDelta{
		Version:      ProfileDeltaVersion,
		Sequence:     len(base.Deltas) + 1,
		BaseChecksum: base.Checksum,
		Reason:       "bias drift: |ones-fraction-0.5| = 0.210 over 1024 bits exceeds 0.020",
		Characterization: DeltaCharacterization{
			TRCDNS:           10,
			Iterations:       60,
			ScreenIterations: 40,
			Rounds:           3,
			MaxDrift:         0.15,
			LowFprob:         0.15,
			HighFprob:        0.85,
			Pattern:          "SOLID0",
		},
		Banks: []int{0},
		Cells: []Cell{
			{Bank: 0, Row: 3, Col: 20, Word: 0, FailProbability: 0.52, SymbolEntropy: 2.98},
			{Bank: 0, Row: 5, Col: 700, Word: 2, FailProbability: 0.48, SymbolEntropy: 2.96},
		},
		Selections: []Selection{
			{
				Bank:  0,
				Word1: WordSelection{Row: 3, Word: 0, Cols: []int{20}},
				Word2: WordSelection{Row: 5, Word: 2, Cols: []int{700}},
			},
		},
	}
	if err := d.Seal(); err != nil {
		panic(err)
	}
	return d
}

// newV1GoldenProfileWithDelta appends the golden delta to the golden base
// profile — the canonical self-healed profile the delta golden file freezes.
func newV1GoldenProfileWithDelta() *Profile {
	base := newV1GoldenProfile()
	p, err := base.AppendDelta(newV1GoldenDelta(base))
	if err != nil {
		panic(err)
	}
	return p
}

const goldenDeltaProfilePath = "testdata/profile_delta_v1.golden.json"

// TestProfileDeltaV1GoldenFile freezes the delta-carrying v1 Profile wire
// format the way TestProfileV1GoldenFile freezes the base format. It also
// pins the compatibility promise that makes deltas a backward-compatible
// extension: a profile with no deltas must still encode byte-identically to
// the pre-delta golden file.
func TestProfileDeltaV1GoldenFile(t *testing.T) {
	encoded, err := newV1GoldenProfileWithDelta().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenDeltaProfilePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDeltaProfilePath, encoded, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenDeltaProfilePath)
		return
	}
	golden, err := os.ReadFile(goldenDeltaProfilePath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(encoded, golden) {
		t.Fatalf("profile delta v1 wire format changed.\nEncoding a fixed delta-carrying profile no longer matches %s.\nIf this is intentional, bump ProfileDeltaVersion, keep a decode path for v1, and regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s",
			goldenDeltaProfilePath, encoded, golden)
	}

	decoded, err := DecodeProfile(golden)
	if err != nil {
		t.Fatalf("golden delta profile no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(decoded, newV1GoldenProfileWithDelta()) {
		t.Error("decoded golden delta profile differs from the in-memory original")
	}

	// Backward compatibility: the no-delta encoding is untouched by the
	// delta extension (deltas are omitempty), so pre-delta readers and
	// golden files stay valid.
	baseEncoded, err := newV1GoldenProfile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	baseGolden, err := os.ReadFile(goldenProfilePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseEncoded, baseGolden) {
		t.Error("adding the delta format changed the no-delta profile encoding; deltas must stay an omitempty extension")
	}
	if bytes.Contains(baseGolden, []byte(`"deltas"`)) {
		t.Error("no-delta golden profile mentions deltas; the field must be omitted when empty")
	}
}

// TestProfileDeltaV1GoldenShape pins the delta's structural facts: the field
// set and order inside each delta, with both checksums placed so integrity
// visibly covers everything before them.
func TestProfileDeltaV1GoldenShape(t *testing.T) {
	golden, err := os.ReadFile(goldenDeltaProfilePath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	s := string(golden)
	// Deltas slot between the base selections and the profile checksum, so
	// the profile digest covers the chain.
	di := strings.Index(s, `"deltas"`)
	if di < 0 {
		t.Fatal("golden delta profile has no deltas field")
	}
	if ci := strings.LastIndex(s, `"checksum"`); ci < di {
		t.Error("profile checksum does not follow the delta chain")
	}
	// The delta's own field order, as documented in the wire format.
	want := []string{`"version"`, `"sequence"`, `"base_checksum"`, `"reason"`, `"characterization"`, `"banks"`, `"cells"`, `"selections"`, `"checksum"`}
	at := di
	for _, key := range want {
		i := strings.Index(s[at:], key)
		if i < 0 {
			t.Fatalf("delta field %s missing or out of order", key)
		}
		at += i + len(key)
	}
	if !strings.Contains(s[di:], `"base_checksum": "sha256:`) {
		t.Error("delta base_checksum is not a sha256-tagged digest")
	}
}

// TestProfileDeltaChainValidation pins the chain rules AppendDelta enforces:
// a delta binds to the exact profile state it was measured against and can
// be neither replayed, reordered nor edited.
func TestProfileDeltaChainValidation(t *testing.T) {
	base := newV1GoldenProfile()

	t.Run("append-and-resolve", func(t *testing.T) {
		p, err := base.AppendDelta(newV1GoldenDelta(base))
		if err != nil {
			t.Fatal(err)
		}
		if len(base.Deltas) != 0 {
			t.Error("AppendDelta mutated the base profile")
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		// Bank 0 is replaced wholesale by the delta's cells and selections.
		for _, c := range p.EffectiveCells() {
			if c.Bank == 0 && c.Row != 3 && c.Row != 5 {
				t.Errorf("stale bank-0 cell survived the delta: %+v", c)
			}
		}
		sels := p.EffectiveSelections()
		if len(sels) != 1 || sels[0].Word1.Row != 3 {
			t.Errorf("effective selections = %+v, want the delta's bank-0 pair", sels)
		}
	})

	t.Run("wrong-base", func(t *testing.T) {
		other := newV1GoldenProfile()
		other.Serial = 43
		if err := other.Seal(); err != nil {
			t.Fatal(err)
		}
		if _, err := other.AppendDelta(newV1GoldenDelta(base)); err == nil {
			t.Error("delta accepted against a profile it was not measured on")
		}
	})

	t.Run("replay", func(t *testing.T) {
		p, err := base.AppendDelta(newV1GoldenDelta(base))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.AppendDelta(newV1GoldenDelta(base)); err == nil {
			t.Error("same delta replayed onto the grown chain")
		}
	})

	t.Run("edited-without-reseal", func(t *testing.T) {
		d := newV1GoldenDelta(base)
		d.Reason = "edited"
		if _, err := base.AppendDelta(d); err == nil {
			t.Error("edited delta accepted without resealing")
		}
	})

	t.Run("unsealed", func(t *testing.T) {
		d := newV1GoldenDelta(base)
		d.Checksum = ""
		if _, err := base.AppendDelta(d); err == nil {
			t.Error("unsealed delta accepted")
		}
	})

	t.Run("future-version", func(t *testing.T) {
		d := newV1GoldenDelta(base)
		d.Version = ProfileDeltaVersion + 1
		if err := d.Seal(); err != nil {
			t.Fatal(err)
		}
		if _, err := base.AppendDelta(d); err == nil || !strings.Contains(err.Error(), "newer") {
			t.Errorf("future delta version error = %v, want an upgrade hint", err)
		}
	})
}
