package drange

import (
	"bytes"
	"context"
	"math/bits"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/memctrl"
)

func TestBackendRegistry(t *testing.T) {
	names := Backends()
	for _, want := range []string{"sim", "replay", "faulty"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in backend %q not registered (have %v)", want, names)
		}
	}
	if err := RegisterBackend("sim", openSimBackend); err == nil {
		t.Error("duplicate backend registration accepted")
	}
	if err := RegisterBackend("", openSimBackend); err == nil {
		t.Error("empty backend name accepted")
	}
	if err := RegisterBackend("nilfactory", nil); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := OpenBackend("no-such-backend", BackendParams{}); err == nil || !strings.Contains(err.Error(), "no-such-backend") {
		t.Errorf("unknown backend error = %v, want it to name the backend", err)
	}
	if _, err := OpenBackend("sim", BackendParams{Manufacturer: "A", Options: map[string]string{"bogus": "1"}}); err == nil {
		t.Error("sim backend accepted an unknown option")
	}
}

// TestNoInternalTypesInExportedAPI is the acceptance gate that the public
// Device contract really decouples the facade: a custom backend written
// purely against package drange (no internal imports) must drive the whole
// pipeline. countingDevice also proves WithDevice wiring end to end.
type countingDevice struct {
	Device
	reads int64
}

func (c *countingDevice) ReadWord(bank, wordIdx int) ([]uint64, error) {
	c.reads++
	return c.Device.ReadWord(bank, wordIdx)
}

func TestWithDeviceCustomBackend(t *testing.T) {
	profile := quickProfile(t)
	inner, err := OpenBackend("sim", BackendParams{
		Manufacturer:  profile.Manufacturer,
		Serial:        profile.Serial,
		Deterministic: true,
		Geometry:      profile.Geometry,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := &countingDevice{Device: inner}
	src, err := Open(context.Background(), profile, WithDevice(dev))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	buf := make([]byte, 64)
	if _, err := src.Read(buf); err != nil {
		t.Fatal(err)
	}
	if dev.reads == 0 {
		t.Error("generation did not flow through the WithDevice device")
	}
	if g := src.(*Generator); g.Backend() != "custom" {
		t.Errorf("Backend() = %q, want custom", g.Backend())
	}

	// The same bytes must come out of the plain sim path: a passthrough
	// wrapper is behaviour-neutral.
	ref, err := Open(context.Background(), profile)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refBuf := make([]byte, 64)
	if _, err := ref.Read(refBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, refBuf) {
		t.Error("WithDevice passthrough wrapper changed the byte stream")
	}
}

func TestWithDeviceMismatchRejected(t *testing.T) {
	profile := quickProfile(t)
	wrong, err := OpenBackend("sim", BackendParams{
		Manufacturer:  profile.Manufacturer,
		Serial:        profile.Serial + 999,
		Deterministic: true,
		Geometry:      profile.Geometry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(context.Background(), profile, WithDevice(wrong)); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("Open accepted a device with the wrong serial (err=%v)", err)
	}
	if _, err := Open(context.Background(), profile, WithDevice(wrong), WithBackend("sim", nil)); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("WithDevice+WithBackend accepted together (err=%v)", err)
	}
}

func TestReplayRecordReplayByteIdentical(t *testing.T) {
	profile := quickProfile(t)
	log := filepath.Join(t.TempDir(), "ops.jsonl")

	record := func() []byte {
		src, err := Open(context.Background(), profile, WithBackend("replay", map[string]string{
			"mode": "record", "path": log,
		}))
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 128)
		if _, err := src.Read(buf); err != nil {
			t.Fatal(err)
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	recorded := record()

	replayed := func() []byte {
		src, err := Open(context.Background(), profile, WithBackend("replay", map[string]string{
			"mode": "replay", "path": log,
		}))
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		buf := make([]byte, 128)
		if _, err := src.Read(buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}()
	if !bytes.Equal(recorded, replayed) {
		t.Fatal("replayed run is not byte-identical to the recorded run")
	}

	// Reading past the recorded operations must fail loudly, not invent
	// bits.
	src, err := Open(context.Background(), profile, WithBackend("replay", map[string]string{
		"mode": "replay", "path": log,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	big := make([]byte, 4096)
	if _, err := src.Read(big); err == nil || !strings.Contains(err.Error(), "replay log exhausted") {
		t.Errorf("overreading a replay log: err = %v, want log-exhausted failure", err)
	}
}

func TestReplayRejectsWrongIdentity(t *testing.T) {
	profile := quickProfile(t)
	log := filepath.Join(t.TempDir(), "ops.jsonl")
	src, err := Open(context.Background(), profile, WithBackend("replay", map[string]string{
		"mode": "record", "path": log,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.ReadBits(64); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBackend("replay", BackendParams{
		Serial: profile.Serial + 1, Geometry: profile.Geometry,
		Options: map[string]string{"mode": "replay", "path": log},
	}); err == nil || !strings.Contains(err.Error(), "serial") {
		t.Errorf("replay of another device's log: err = %v, want serial mismatch", err)
	}
	if _, err := OpenBackend("replay", BackendParams{Options: map[string]string{"mode": "replay"}}); err == nil {
		t.Error("replay without a path accepted")
	}
	if _, err := OpenBackend("replay", BackendParams{Options: map[string]string{"path": log, "mode": "rewind"}}); err == nil {
		t.Error("replay with a bogus mode accepted")
	}
}

// TestRecordPathExclusive: two live recorders on one log would interleave
// buffered writes and corrupt it silently; the second open must fail, and
// closing the first must release the path.
func TestRecordPathExclusive(t *testing.T) {
	log := filepath.Join(t.TempDir(), "ops.jsonl")
	params := BackendParams{
		Manufacturer: "A", Serial: 5, Deterministic: true, Geometry: quickGeometry(),
		Options: map[string]string{"mode": "record", "path": log},
	}
	first, err := OpenBackend("replay", params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBackend("replay", params); err == nil || !strings.Contains(err.Error(), "already being recorded") {
		t.Errorf("second recorder on one path: err = %v, want already-recording failure", err)
	}
	if err := closeDevice(first); err != nil {
		t.Fatal(err)
	}
	second, err := OpenBackend("replay", params)
	if err != nil {
		t.Fatalf("path not released after Close: %v", err)
	}
	closeDevice(second)
}

func TestFaultyBackendStuckCells(t *testing.T) {
	profile := quickProfile(t)
	src, err := Open(context.Background(), profile, WithBackend("faulty", map[string]string{
		"stuck": "1", "stuck-value": "1",
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	bits, err := src.ReadBits(512)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bits {
		if b != 1 {
			t.Fatalf("bit %d = %d; with every column stuck at 1 the harvest must be all ones", i, b)
		}
	}

	if _, err := OpenBackend("faulty", BackendParams{Manufacturer: "A", Options: map[string]string{"stuck": "2"}}); err == nil {
		t.Error("stuck fraction above 1 accepted")
	}
	if _, err := OpenBackend("faulty", BackendParams{Manufacturer: "A", Options: map[string]string{"bogus": "x"}}); err == nil {
		t.Error("unknown faulty option accepted")
	}
}

func TestFaultyTemperatureDrift(t *testing.T) {
	profile := quickProfile(t)
	dev, err := OpenBackend("faulty", BackendParams{
		Manufacturer:  profile.Manufacturer,
		Serial:        profile.Serial,
		Deterministic: true,
		Geometry:      profile.Geometry,
		Options:       map[string]string{"stuck": "0", "drift": "5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := dev.Temperature()
	src, err := Open(context.Background(), profile, WithDevice(dev))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := src.ReadBits(2048); err != nil {
		t.Fatal(err)
	}
	if got := dev.Temperature(); got <= base {
		t.Errorf("temperature %v after reads, want drift above the %v baseline", got, base)
	}
}

// TestCharacterizeOnReplayBackend closes the loop on backend-agnostic
// characterization: a characterization recorded through the replay backend
// replays into an identical profile without a simulated device.
func TestCharacterizeOnReplayBackend(t *testing.T) {
	log := filepath.Join(t.TempDir(), "char.jsonl")
	opts := []Option{
		WithManufacturer("A"),
		WithSerial(77),
		WithDeterministic(true),
		WithGeometry(quickGeometry()),
		WithProfilingRegion(64, 8, 2),
		WithSamples(200),
		WithTolerance(0.45),
		WithMaxBiasDelta(0.05),
		WithScreenIterations(20),
	}
	rec, err := Characterize(context.Background(), append(opts,
		WithBackend("replay", map[string]string{"mode": "record", "path": log}))...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Characterize(context.Background(), append(opts,
		WithBackend("replay", map[string]string{"mode": "replay", "path": log}))...)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("characterization replay produced a different profile")
	}
}

// openFaultyDevice opens the faulty backend over the deterministic simulator
// for the scenario-matrix tests.
func openFaultyDevice(t *testing.T, opts map[string]string) Device {
	t.Helper()
	dev, err := OpenBackend("faulty", BackendParams{
		Manufacturer: "A", Serial: 9, Deterministic: true,
		Geometry: quickGeometry(), Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { closeDevice(dev) })
	return dev
}

// TestFaultyScenarioMatrix covers the time-dependent fault scenarios the
// faulty backend models beyond static stuck cells: aging curves, retention
// failures, voltage droop and temperature schedules, all keyed to the
// device's read count.
func TestFaultyScenarioMatrix(t *testing.T) {
	// countOnes reads word 0 of (bank 0, row 0) through a controller at safe
	// timing and counts set bits; writes/asserts drive the scenario clock,
	// since every ReadWord advances the device's read count by one.
	readWord := func(ctrl *memctrl.Controller) int {
		t.Helper()
		data, _, err := ctrl.ReadWord(0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ones := 0
		for _, w := range data {
			ones += bits.OnesCount64(w)
		}
		return ones
	}
	wordBits := quickGeometry().WordBits

	t.Run("aging-ramp", func(t *testing.T) {
		dev := openFaultyDevice(t, map[string]string{
			"stuck": "0", "aging": "1", "aging-onset": "8", "aging-reads": "8",
		})
		ctrl := memctrl.NewController(internalDevice(dev))
		if _, err := ctrl.WriteWord(0, 0, 0, make([]uint64, wordBits/64)); err != nil {
			t.Fatal(err)
		}
		var ones []int
		for i := 0; i < 24; i++ {
			ones = append(ones, readWord(ctrl))
		}
		if ones[0] != 0 {
			t.Errorf("read 1 (before aging onset) has %d stuck bits, want 0", ones[0])
		}
		last := ones[len(ones)-1]
		if last != wordBits {
			t.Errorf("read %d (past the ramp) has %d stuck bits, want all %d", len(ones), last, wordBits)
		}
		for i := 1; i < len(ones); i++ {
			if ones[i] < ones[i-1] {
				t.Fatalf("aged columns recovered between reads %d and %d (%d -> %d); the stuck set must be monotone",
					i, i+1, ones[i-1], ones[i])
			}
		}
	})

	t.Run("aging-accel-lags-linear", func(t *testing.T) {
		linear := openFaultyDevice(t, map[string]string{
			"stuck": "0", "aging": "0.8", "aging-reads": "1000",
		}).(*faultyDevice)
		accel := openFaultyDevice(t, map[string]string{
			"stuck": "0", "aging": "0.8", "aging-reads": "1000", "aging-shape": "accel",
		}).(*faultyDevice)
		if l, a := linear.agingFraction(500), accel.agingFraction(500); a >= l {
			t.Errorf("mid-ramp: accel fraction %v >= linear %v; quadratic wear must lag", a, l)
		}
		if l, a := linear.agingFraction(2000), accel.agingFraction(2000); l != 0.8 || a != 0.8 {
			t.Errorf("past the ramp both shapes must reach the full fraction: linear %v, accel %v", l, a)
		}
	})

	t.Run("retention-discharge", func(t *testing.T) {
		dev := openFaultyDevice(t, map[string]string{
			"stuck": "0", "retention": "1", "retention-onset": "4",
		})
		ctrl := memctrl.NewController(internalDevice(dev))
		full := make([]uint64, wordBits/64)
		for i := range full {
			full[i] = ^uint64(0)
		}
		if _, err := ctrl.WriteWord(0, 0, 0, full); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ { // reads 1-3 precede the onset
			if got := readWord(ctrl); got != wordBits {
				t.Fatalf("read %d before retention onset lost bits: %d/%d ones", i+1, got, wordBits)
			}
		}
		if got := readWord(ctrl); got != 0 { // read 4 hits the onset
			t.Errorf("discharged cells read %d ones, want 0 regardless of the written value", got)
		}
	})

	t.Run("voltage-droop-recovers", func(t *testing.T) {
		dev := openFaultyDevice(t, map[string]string{
			"stuck": "0", "voltage-schedule": "0:1,8:0",
		})
		ctrl := memctrl.NewController(internalDevice(dev))
		if _, err := ctrl.WriteWord(0, 0, 0, make([]uint64, wordBits/64)); err != nil {
			t.Fatal(err)
		}
		if got := readWord(ctrl); got != wordBits { // read 1: full droop
			t.Errorf("under full droop %d/%d bits stuck, want all", got, wordBits)
		}
		for i := 0; i < 6; i++ {
			readWord(ctrl) // reads 2-7
		}
		if got := readWord(ctrl); got != 0 { // read 8: droop lifted
			t.Errorf("after the droop lifts %d bits remain stuck, want 0 (voltage faults are not wear)", got)
		}
	})

	t.Run("temperature-schedule", func(t *testing.T) {
		plain := openFaultyDevice(t, map[string]string{"stuck": "0"})
		dev := openFaultyDevice(t, map[string]string{
			"stuck": "0", "temp-schedule": "0:5,6:15",
		})
		base := plain.Temperature()
		if got := dev.Temperature(); got != base+5 {
			t.Errorf("temperature before the step = %v, want base %v + 5", got, base)
		}
		ctrl := memctrl.NewController(internalDevice(dev))
		for i := 0; i < 6; i++ {
			readWord(ctrl)
		}
		if got := dev.Temperature(); got != base+15 {
			t.Errorf("temperature after the step = %v, want base %v + 15", got, base)
		}
	})

	t.Run("rejections", func(t *testing.T) {
		for _, bad := range []map[string]string{
			{"stuck": "-0.1"},
			{"stuck": "1.5"},
			{"stuck-value": "2"},
			{"stuck-value": "-1"},
			{"drift": "-3"},
			{"aging": "-0.5"},
			{"aging-reads": "0"},
			{"aging-reads": "-10"},
			{"aging-onset": "-1"},
			{"aging-shape": "cubic"},
			{"temp-schedule": "5:1,5:2"},
			{"temp-schedule": "10:1,5:2"},
			{"temp-schedule": "abc"},
			{"voltage-schedule": "0:2"},
			{"voltage-schedule": "0:-0.1"},
			{"retention": "2"},
			{"retention-onset": "-4"},
		} {
			if _, err := OpenBackend("faulty", BackendParams{Manufacturer: "A", Options: bad}); err == nil {
				t.Errorf("faulty backend accepted %v", bad)
			}
		}
	})
}
