package drange

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/entropy"
)

// poolProfiles characterizes n small deterministic devices (distinct
// serials), cached across the pool tests.
var (
	poolOnce sync.Once
	poolProf []*Profile
	poolErr  error
)

func poolProfiles(t *testing.T, n int) []*Profile {
	t.Helper()
	poolOnce.Do(func() {
		for serial := uint64(101); serial < 101+4; serial++ {
			p, err := Characterize(context.Background(),
				WithManufacturer("A"),
				WithSerial(serial),
				WithDeterministic(true),
				WithGeometry(quickGeometry()),
				WithProfilingRegion(48, 8, 4),
				WithSamples(300),
				WithTolerance(0.4),
				WithMaxBiasDelta(0.03),
				WithScreenIterations(25),
			)
			if err != nil {
				poolErr = err
				return
			}
			poolProf = append(poolProf, p)
		}
	})
	if poolErr != nil {
		t.Fatal(poolErr)
	}
	if n > len(poolProf) {
		t.Fatalf("test wants %d profiles, harness builds %d", n, len(poolProf))
	}
	return poolProf[:n]
}

func TestPoolReadAndStatsBreakdown(t *testing.T) {
	profiles := poolProfiles(t, 4)
	pool, err := OpenPool(context.Background(), profiles)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Devices() != 4 || pool.Healthy() != 4 {
		t.Fatalf("pool opened %d devices (%d healthy), want 4/4", pool.Devices(), pool.Healthy())
	}
	buf := make([]byte, 2048)
	if _, err := pool.Read(buf); err != nil {
		t.Fatal(err)
	}
	checkBias(t, buf)

	st := pool.Stats()
	if len(st.Devices) != 4 {
		t.Fatalf("stats report %d devices, want 4", len(st.Devices))
	}
	if st.BitsDelivered != int64(len(buf)*8) {
		t.Errorf("BitsDelivered = %d, want %d", st.BitsDelivered, len(buf)*8)
	}
	var delivered, harvested int64
	for i, d := range st.Devices {
		if d.Device != i || d.Serial != profiles[i].Serial || d.Backend != "sim" {
			t.Errorf("device %d breakdown = %+v", i, d)
		}
		if !d.Healthy || d.Evicted {
			t.Errorf("device %d unexpectedly unhealthy: %+v", i, d)
		}
		if d.BitsDelivered == 0 {
			t.Errorf("device %d delivered no bits; least-loaded scheduling should spread demand", i)
		}
		if len(d.Shards) == 0 || d.ThroughputMbps <= 0 {
			t.Errorf("device %d missing shard stats or throughput: %+v", i, d)
		}
		delivered += d.BitsDelivered
		harvested += d.BitsHarvested
	}
	if delivered != st.BitsDelivered {
		t.Errorf("per-device delivered bits sum to %d, aggregate says %d", delivered, st.BitsDelivered)
	}
	if harvested != st.BitsHarvested {
		t.Errorf("per-device harvested bits sum to %d, aggregate says %d", harvested, st.BitsHarvested)
	}
	if len(st.Shards) != 4 {
		t.Errorf("flattened shard list has %d entries, want 4 (1 shard per device)", len(st.Shards))
	}

	// Least-loaded scheduling over same-rate devices is near-uniform.
	for i, d := range st.Devices {
		share := float64(d.BitsDelivered) / float64(delivered)
		if math.Abs(share-0.25) > 0.05 {
			t.Errorf("device %d served %.0f%% of demand, want ~25%%", i, share*100)
		}
	}
}

// TestPoolDeterministicAndConcurrent drives a 4-device pool from many
// goroutines under the race detector, then checks that a sequential run over
// an identical pool is deterministic.
func TestPoolDeterministicAndConcurrent(t *testing.T) {
	profiles := poolProfiles(t, 4)
	pool, err := OpenPool(context.Background(), profiles)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 512)
			for i := 0; i < 4; i++ {
				if _, err := pool.Read(buf); err != nil {
					t.Errorf("concurrent pool read: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Read(make([]byte, 8)); err == nil {
		t.Error("read after Close succeeded")
	}

	readAll := func() []byte {
		p, err := OpenPool(context.Background(), profiles)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		buf := make([]byte, 1024)
		if _, err := p.Read(buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	if !bytes.Equal(readAll(), readAll()) {
		t.Error("two identical deterministic pools produced different bytes")
	}
}

// TestPoolThroughputScaling is the acceptance check that a 4-device pool
// reaches at least 3x the simulated throughput of a single-device source:
// each device is an independent DRAM channel hierarchy, so aggregate rate is
// the sum of the member rates (the paper's multi-channel scaling argument at
// fleet scale). BenchmarkPoolScaling reports the same numbers as a benchmark.
func TestPoolThroughputScaling(t *testing.T) {
	profiles := poolProfiles(t, 4)

	rate := func(n int) float64 {
		p, err := OpenPool(context.Background(), profiles[:n])
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		buf := make([]byte, 4096)
		if _, err := p.Read(buf); err != nil {
			t.Fatal(err)
		}
		return p.Stats().AggregateThroughputMbps
	}
	single := rate(1)
	quad := rate(4)
	if single <= 0 || quad <= 0 {
		t.Fatalf("non-positive throughput: single=%v quad=%v", single, quad)
	}
	if quad < 3*single {
		t.Errorf("4-device pool sustains %.1f Mb/s, single device %.1f Mb/s; want >= 3x", quad, single)
	}
}

// TestPoolEvictsFaultyDevice is the acceptance check for health tracking: a
// pool with one faulty member (every column stuck at 1 — maximal bias drift)
// must evict it once a health window completes, and no Read may ever fail
// while healthy devices remain.
func TestPoolEvictsFaultyDevice(t *testing.T) {
	profiles := poolProfiles(t, 4)
	pool, err := OpenPool(context.Background(), profiles,
		WithDeviceBackend(2, "faulty", map[string]string{"stuck": "1", "stuck-value": "1"}),
		WithHealth(HealthPolicy{WindowBits: 512, MaxBiasDelta: 0.2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Drive well past the faulty member's first health window; every read
	// must succeed.
	buf := make([]byte, 512)
	for i := 0; i < 16; i++ {
		if _, err := pool.Read(buf); err != nil {
			t.Fatalf("pool read %d failed during eviction: %v", i, err)
		}
	}
	st := pool.Stats()
	if pool.Healthy() != 3 {
		t.Fatalf("healthy devices = %d, want 3 after evicting the faulty member (devices: %+v)", pool.Healthy(), st.Devices)
	}
	d := st.Devices[2]
	if !d.Evicted || d.Backend != "faulty" || !strings.Contains(d.Reason, "bias drift") {
		t.Errorf("faulty member state = %+v, want bias-drift eviction", d)
	}
	if d.BiasDelta < 0.4 {
		t.Errorf("faulty member bias delta = %v, want ~0.5 (all-ones harvest)", d.BiasDelta)
	}
	for i, dd := range st.Devices {
		if i != 2 && dd.Evicted {
			t.Errorf("healthy device %d evicted: %+v", i, dd)
		}
	}

	// Post-eviction output comes from healthy devices only and stays
	// unbiased.
	post := make([]byte, 2048)
	if _, err := pool.Read(post); err != nil {
		t.Fatal(err)
	}
	checkBias(t, post)
}

// TestPoolKeepsLastDevice: the health policy never evicts the final healthy
// device — degraded output with a recorded violation beats failing reads.
func TestPoolKeepsLastDevice(t *testing.T) {
	profiles := poolProfiles(t, 1)
	pool, err := OpenPool(context.Background(), profiles,
		WithBackend("faulty", map[string]string{"stuck": "1"}),
		WithHealth(HealthPolicy{WindowBits: 256, MaxBiasDelta: 0.1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	buf := make([]byte, 512)
	for i := 0; i < 4; i++ {
		if _, err := pool.Read(buf); err != nil {
			t.Fatalf("read from a degraded single-device pool failed: %v", err)
		}
	}
	if pool.Healthy() != 1 {
		t.Fatalf("last device was evicted")
	}
	d := pool.Stats().Devices[0]
	if !strings.Contains(d.Reason, "retained") {
		t.Errorf("retained-device violation not recorded: %+v", d)
	}
}

func TestPoolTemperatureDriftEviction(t *testing.T) {
	profiles := poolProfiles(t, 2)
	pool, err := OpenPool(context.Background(), profiles,
		// Device 1 heats by 50 °C per 1000 reads but stays unbiased; only
		// the temperature monitor can catch it.
		WithDeviceBackend(1, "faulty", map[string]string{"stuck": "0", "drift": "50"}),
		WithHealth(HealthPolicy{WindowBits: 512, MaxTempDriftC: 5}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	buf := make([]byte, 2048)
	for i := 0; i < 8 && pool.Healthy() == 2; i++ {
		if _, err := pool.Read(buf); err != nil {
			t.Fatalf("read during temperature eviction: %v", err)
		}
	}
	if pool.Healthy() != 1 {
		t.Fatalf("hot device not evicted (devices: %+v)", pool.Stats().Devices)
	}
	d := pool.Stats().Devices[1]
	if !d.Evicted || !strings.Contains(d.Reason, "temperature drift") {
		t.Errorf("hot device state = %+v, want temperature-drift eviction", d)
	}
}

func TestPoolOptionValidation(t *testing.T) {
	profiles := poolProfiles(t, 2)
	ctx := context.Background()
	if _, err := OpenPool(ctx, nil); err == nil {
		t.Error("empty profile list accepted")
	}
	if _, err := OpenPool(ctx, []*Profile{profiles[0], nil}); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := OpenPool(ctx, profiles, WithDeviceBackend(5, "sim", nil)); err == nil {
		t.Error("out-of-range WithDeviceBackend index accepted")
	}
	dev, err := OpenBackend("sim", BackendParams{Manufacturer: "A"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPool(ctx, profiles, WithDevice(dev)); err == nil {
		t.Error("WithDevice accepted by OpenPool")
	}
	if _, err := OpenPool(ctx, profiles, WithSamples(10)); err == nil {
		t.Error("characterization option accepted by OpenPool")
	}
	if _, err := Open(ctx, profiles[0], WithHealth(HealthPolicy{})); err == nil {
		t.Error("WithHealth accepted by Open")
	}
	if _, err := Characterize(ctx, WithDeviceBackend(0, "sim", nil)); err == nil {
		t.Error("WithDeviceBackend accepted by Characterize")
	}
}

// TestPoolPostprocess runs a corrector chain over the multiplexed stream.
func TestPoolPostprocess(t *testing.T) {
	profiles := poolProfiles(t, 2)
	pool, err := OpenPool(context.Background(), profiles, WithPostprocess(VonNeumann()))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	bits, err := pool.ReadBits(1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 1024 {
		t.Fatalf("ReadBits returned %d bits", len(bits))
	}
	bias, err := entropy.Bias(bits)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bias-0.5) > 0.06 {
		t.Errorf("post-processed pool bias = %v", bias)
	}
	st := pool.Stats()
	if st.BitsDelivered != 1024 {
		t.Errorf("BitsDelivered = %d, want the post-chain output count 1024", st.BitsDelivered)
	}
	if st.BitsHarvested <= 1024 {
		t.Errorf("BitsHarvested = %d; von Neumann should consume far more raw bits than it yields", st.BitsHarvested)
	}
}
