package drange

import (
	"bytes"
	"context"
	"sync"
	"testing"
)

// openDRBG opens a deterministic single-device Source with the DRBG tier.
func openDRBG(t *testing.T, p DRBGPolicy, extra ...Option) Source {
	t.Helper()
	src, err := Open(context.Background(), quickProfile(t), append([]Option{WithDRBG(p)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

func TestDRBGGeneratorServing(t *testing.T) {
	// Credits accrue in whole bias windows; the 256-bit window makes every
	// 32-byte seed harvest complete one, so the ledger moves within the test.
	src := openDRBG(t, DRBGPolicy{},
		WithHealthTests(HealthTestPolicy{BiasWindowBits: 256}))
	buf := make([]byte, 8192)
	if n, err := src.Read(buf); n != len(buf) || err != nil {
		t.Fatalf("DRBG Read = (%d, %v), want (%d, nil)", n, err, len(buf))
	}
	checkBias(t, buf)

	raw := make([]byte, 256)
	if n, err := src.ReadRaw(raw); n != len(raw) || err != nil {
		t.Fatalf("ReadRaw = (%d, %v), want (%d, nil)", n, err, len(raw))
	}

	st := src.Stats()
	if st.TierDRBG.Reads != 1 || st.TierDRBG.Bytes != int64(len(buf)) {
		t.Errorf("TierDRBG = %+v, want 1 read of %d bytes", st.TierDRBG, len(buf))
	}
	if st.TierRaw.Reads != 1 || st.TierRaw.Bytes != int64(len(raw)) {
		t.Errorf("TierRaw = %+v, want 1 read of %d bytes", st.TierRaw, len(raw))
	}
	if st.DRBG == nil {
		t.Fatal("Stats.DRBG missing with WithDRBG attached")
	}
	if st.DRBG.Algorithm != string(DRBGChaCha20) {
		t.Errorf("default algorithm = %q, want %q", st.DRBG.Algorithm, DRBGChaCha20)
	}
	if st.DRBG.Reseeds < 1 || st.DRBG.Generates == 0 {
		t.Errorf("DRBG counters = %+v, want >=1 reseed (instantiation) and >0 generates", st.DRBG)
	}
	// The instantiation seed was debited, and the raw harvest backing it
	// (plus the startup self-test and ReadRaw bits) accrued credit windows.
	if st.DRBG.Credit.DebitedBits == 0 {
		t.Errorf("credit ledger never debited: %+v", st.DRBG.Credit)
	}
	if st.DRBG.Credit.CreditedBits == 0 {
		t.Errorf("credit ledger never credited: %+v", st.DRBG.Credit)
	}
	if st.DRBG.Credit.BalanceBits != st.DRBG.Credit.CreditedBits-st.DRBG.Credit.DebitedBits {
		t.Errorf("credit balance inconsistent: %+v", st.DRBG.Credit)
	}
	if st.Health == nil {
		t.Error("WithDRBG implies WithHealthTests, but Stats.Health is nil")
	}
}

func TestDRBGReadBits(t *testing.T) {
	src := openDRBG(t, DRBGPolicy{})
	bits, err := src.ReadBits(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 1000 {
		t.Fatalf("got %d bits, want 1000", len(bits))
	}
	ones := 0
	for i, b := range bits {
		if b > 1 {
			t.Fatalf("bit %d = %d, want 0 or 1", i, b)
		}
		ones += int(b)
	}
	if ones < 400 || ones > 600 {
		t.Errorf("ones fraction %d/1000 outside [400, 600]", ones)
	}
	if st := src.Stats(); st.TierDRBG.Reads != 1 {
		t.Errorf("ReadBits did not account to the DRBG tier: %+v", st.TierDRBG)
	}
}

// TestDRBGDeterministicStream: with deterministic noise the whole pipeline —
// harvest, health screening, seed, DRBG expansion — is reproducible, and the
// two constructions expand the same seed to different streams.
func TestDRBGDeterministicStream(t *testing.T) {
	read := func(alg DRBGAlgorithm) []byte {
		src := openDRBG(t, DRBGPolicy{Algorithm: alg})
		buf := make([]byte, 1024)
		if _, err := src.Read(buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := read(DRBGChaCha20), read(DRBGChaCha20)
	if !bytes.Equal(a, b) {
		t.Error("identical deterministic opens produced different DRBG streams")
	}
	c := read(DRBGCTRAES256)
	if bytes.Equal(a, c) {
		t.Error("ChaCha20 and CTR_DRBG produced the same stream")
	}
	// The DRBG tier must not replay the raw tier.
	rawSrc, err := Open(context.Background(), quickProfile(t), WithDeterministic(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rawSrc.Close()
	raw := make([]byte, 1024)
	if _, err := rawSrc.Read(raw); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, raw) {
		t.Error("DRBG tier replayed the raw stream")
	}
}

func TestDRBGPredictionResistance(t *testing.T) {
	src := openDRBG(t, DRBGPolicy{PredictionResistance: true})
	buf := make([]byte, 64)
	for i := 0; i < 3; i++ {
		if _, err := src.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	st := src.Stats()
	if !st.DRBG.PredictionResistance {
		t.Error("prediction resistance not reported in Stats")
	}
	// Instantiation counts as the first seeding; every request forces one
	// more reseed.
	if st.DRBG.Reseeds != 4 {
		t.Errorf("Reseeds = %d after 3 prediction-resistant reads, want 4", st.DRBG.Reseeds)
	}
}

func TestDRBGReseedInterval(t *testing.T) {
	src := openDRBG(t, DRBGPolicy{ReseedInterval: 4})
	buf := make([]byte, 16)
	for i := 0; i < 12; i++ {
		if _, err := src.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	st := src.Stats()
	// 12 requests on a 4-request budget: instantiation plus reseeds after
	// requests 4 and 8.
	if st.DRBG.Reseeds != 3 {
		t.Errorf("Reseeds = %d after 12 reads at interval 4, want 3", st.DRBG.Reseeds)
	}
	if st.DRBG.Generates != 12 {
		t.Errorf("Generates = %d, want 12", st.DRBG.Generates)
	}
}

func TestDRBGOptionValidation(t *testing.T) {
	ctx := context.Background()
	profile := quickProfile(t)
	if _, err := Characterize(ctx, WithDRBG(DRBGPolicy{})); err == nil {
		t.Error("WithDRBG accepted by Characterize")
	}
	if _, err := Open(ctx, profile, WithDRBG(DRBGPolicy{Algorithm: "md5"})); err == nil {
		t.Error("unknown DRBG algorithm accepted")
	}
	if _, err := Open(ctx, profile, WithDRBG(DRBGPolicy{ReseedInterval: -1})); err == nil {
		t.Error("negative reseed interval accepted")
	}
	if _, err := Open(ctx, profile, WithDRBG(DRBGPolicy{MaxRequestBytes: 1 << 20})); err == nil {
		t.Error("over-ceiling request size accepted")
	}
	if _, err := Open(ctx, profile,
		WithDRBG(DRBGPolicy{}), WithHealthTests(HealthTestPolicy{Disabled: true})); err == nil {
		t.Error("WithDRBG combined with disabled health tests accepted")
	}
	// Disabled policy is a no-op, not an error, and leaves the raw tier.
	src, err := Open(ctx, profile, WithDRBG(DRBGPolicy{Disabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if st := src.Stats(); st.DRBG != nil {
		t.Error("disabled DRBG policy still attached a DRBG")
	}
}

// TestDRBGGeneratorReadNoAlloc: the steady-state DRBG serving path — generate
// plus periodic reseed through the health monitor — allocates nothing.
func TestDRBGGeneratorReadNoAlloc(t *testing.T) {
	src := openDRBG(t, DRBGPolicy{ReseedInterval: 8})
	buf := make([]byte, 1024)
	if _, err := src.Read(buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(64, func() {
		if _, err := src.Read(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DRBG Read allocates %.1f times per call, want 0", allocs)
	}
}

func TestPoolDRBGServing(t *testing.T) {
	profiles := poolProfiles(t, 3)
	pool, err := OpenPool(context.Background(), profiles, WithDRBG(DRBGPolicy{}),
		WithHealthTests(HealthTestPolicy{BiasWindowBits: 256}))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	buf := make([]byte, 4096)
	if _, err := pool.Read(buf); err != nil {
		t.Fatal(err)
	}
	checkBias(t, buf)
	st := pool.Stats()
	if st.DRBG == nil {
		t.Fatal("pool Stats.DRBG missing with WithDRBG attached")
	}
	if st.TierDRBG.Reads != 1 || st.TierDRBG.Bytes != int64(len(buf)) {
		t.Errorf("pool TierDRBG = %+v, want 1 read of %d bytes", st.TierDRBG, len(buf))
	}
	var reseeds, generates int64
	for i, d := range st.Devices {
		if d.DRBG == nil {
			t.Fatalf("device %d has no DRBG stats", i)
		}
		if d.DRBG.Reseeds < 1 {
			t.Errorf("device %d never seeded: %+v", i, d.DRBG)
		}
		reseeds += d.DRBG.Reseeds
		generates += d.DRBG.Generates
	}
	if st.DRBG.Reseeds != reseeds || st.DRBG.Generates != generates {
		t.Errorf("aggregate DRBG counters %+v do not sum the members (%d reseeds, %d generates)",
			st.DRBG, reseeds, generates)
	}
	if st.DRBG.Credit.DebitedBits == 0 || st.DRBG.Credit.CreditedBits == 0 {
		t.Errorf("pool credit ledger unused: %+v", st.DRBG.Credit)
	}
}

// TestPoolDRBGReseedUnderLoad is the acceptance check for the staged reseed
// scheduler: a short reseed interval under concurrent read load must never
// fail a read, and every member must reseed at least once beyond its
// instantiation.
func TestPoolDRBGReseedUnderLoad(t *testing.T) {
	profiles := poolProfiles(t, 3)
	pool, err := OpenPool(context.Background(), profiles,
		WithDRBG(DRBGPolicy{ReseedInterval: 4, MaxRequestBytes: 256}))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const readers, readsPerReader = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 1024)
			for i := 0; i < readsPerReader; i++ {
				if _, err := pool.Read(buf); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("read failed under reseed load: %v", err)
	}

	st := pool.Stats()
	for i, d := range st.Devices {
		if d.DRBG == nil {
			t.Fatalf("device %d has no DRBG stats", i)
		}
		// Reseeds == 1 would mean the member only ever saw its
		// instantiation seed — the staged scheduler never refreshed it.
		if d.DRBG.Reseeds < 2 {
			t.Errorf("device %d reseeded %d times under load, want >= 2", i, d.DRBG.Reseeds)
		}
	}
	if st.TierDRBG.Reads != readers*readsPerReader {
		t.Errorf("TierDRBG.Reads = %d, want %d", st.TierDRBG.Reads, readers*readsPerReader)
	}
}

// TestPoolDRBGEvictsFaultyMember: the DRBG tier inherits the pool's health
// machinery — a stuck member is dropped (its seeds cannot pass the startup
// self-test or the online tests) and reads reroute to the survivors.
func TestPoolDRBGEvictsFaultyMember(t *testing.T) {
	profiles := poolProfiles(t, 3)
	pool, err := OpenPool(context.Background(), profiles,
		WithDeviceBackend(1, "faulty", map[string]string{"stuck": "1", "stuck-value": "1"}),
		WithDRBG(DRBGPolicy{ReseedInterval: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	buf := make([]byte, 1024)
	for i := 0; i < 32; i++ {
		if _, err := pool.Read(buf); err != nil {
			t.Fatalf("read %d failed during DRBG-tier eviction: %v", i, err)
		}
	}
	if pool.Healthy() != 2 {
		t.Fatalf("healthy = %d, want 2 (faulty member evicted); devices: %+v",
			pool.Healthy(), pool.Stats().Devices)
	}
	st := pool.Stats()
	if !st.Devices[1].Evicted {
		t.Errorf("faulty member not evicted: %+v", st.Devices[1])
	}
	for _, i := range []int{0, 2} {
		if d := st.Devices[i]; d.DRBG == nil || d.DRBG.Generates == 0 {
			t.Errorf("surviving device %d did not serve DRBG output: %+v", i, d)
		}
	}
}
