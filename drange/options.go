package drange

import "fmt"

// Option configures Characterize and Open. Unlike the deprecated Config
// struct, options distinguish "unset" from "explicitly zero": a parameter is
// defaulted only when its option is never applied, so explicit zeros (for
// example a zero bias bound via WithMaxBiasDelta(0)) are honoured, and
// explicit values that are invalid (WithTRCD(0), WithTolerance(0)) fail
// loudly instead of being silently replaced.
type Option func(*options)

// options records which knobs were explicitly set. Pointer fields are nil
// until the corresponding With* option runs.
type options struct {
	manufacturer  *string
	serial        *uint64
	deterministic *bool
	geometry      *Geometry

	trcdNS *float64

	rowsPerBank *int
	wordsPerRow *int
	banks       *int

	samples          *int
	tolerance        *float64
	maxBiasDelta     *float64
	screenIterations *int
	paper            bool

	shards *int
	post   []Corrector

	backend        *backendSpec
	device         Device
	deviceBackends map[int]backendSpec
	health         *HealthPolicy
	healthTests    *HealthTestPolicy
	drbg           *DRBGPolicy
	rechar         *RecharacterizationPolicy
}

// backendSpec names a registered backend plus its options.
type backendSpec struct {
	name   string
	params map[string]string
}

func buildOptions(opts []Option) *options {
	o := &options{}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// WithManufacturer selects the device profile: "A", "B" or "C" (default "A").
func WithManufacturer(m string) Option {
	return func(o *options) { o.manufacturer = &m }
}

// WithSerial selects the simulated device instance; the serial seeds the
// procedural process variation (default 0).
func WithSerial(serial uint64) Option {
	return func(o *options) { o.serial = &serial }
}

// WithDeterministic replaces the OS-entropy noise source with a seeded
// per-bank one, making characterization and generation reproducible. Never
// use this for real keys. Open defaults to the noise mode recorded in the
// profile; this option overrides it.
func WithDeterministic(on bool) Option {
	return func(o *options) { o.deterministic = &on }
}

// WithGeometry overrides the simulated device geometry. With Open, a
// geometry differing from the profile's is a mismatch error.
func WithGeometry(g Geometry) Option {
	return func(o *options) { o.geometry = &g }
}

// WithTRCD sets the reduced activation latency in nanoseconds used for
// profiling and generation (default 10 ns, the paper's value). The value
// must be positive and at most the JEDEC default.
func WithTRCD(ns float64) Option {
	return func(o *options) { o.trcdNS = &ns }
}

// WithProfilingRegion bounds the region characterized in each bank:
// rowsPerBank rows and wordsPerRow DRAM words per row, over the first banks
// banks (banks <= 0 profiles every bank). Defaults: 128 rows, 8 words, all
// banks. Larger regions find more RNG cells (higher throughput) at the cost
// of a longer characterization.
func WithProfilingRegion(rowsPerBank, wordsPerRow, banks int) Option {
	return func(o *options) {
		o.rowsPerBank = &rowsPerBank
		o.wordsPerRow = &wordsPerRow
		o.banks = &banks
	}
}

// WithSamples sets the number of reduced-latency reads per candidate cell in
// the deep profiling pass (default 600; the paper uses 1000).
func WithSamples(n int) Option {
	return func(o *options) { o.samples = &n }
}

// WithTolerance sets the allowed deviation of each 3-bit symbol count from
// the expected count (default ±35%; the paper uses ±10%). An explicit 0 is
// rejected during characterization rather than silently defaulted.
func WithTolerance(t float64) Option {
	return func(o *options) { o.tolerance = &t }
}

// WithMaxBiasDelta sets the maximum allowed deviation of a cell's observed
// failure probability from one half (default ±2%). An explicit 0 is
// honoured: only cells observed at exactly 50% pass.
func WithMaxBiasDelta(d float64) Option {
	return func(o *options) { o.maxBiasDelta = &d }
}

// WithScreenIterations sets the number of iterations of the cheap screening
// pass (Algorithm 1) that precedes deep profiling (default 50).
func WithScreenIterations(n int) Option {
	return func(o *options) { o.screenIterations = &n }
}

// WithPaperIdentification selects the paper's exact Section 6.1 criterion:
// 1000 samples, ±10% symbol tolerance, 100 screening iterations. It is a
// preset: explicit WithSamples/WithTolerance/WithScreenIterations/
// WithMaxBiasDelta options take precedence regardless of order, so the
// paper's strict criterion can be combined with, say, a zero bias bound.
func WithPaperIdentification() Option {
	return func(o *options) { o.paper = true }
}

// WithShards selects how many parallel harvesting shards the opened Source
// uses. 0 (the default) opens a sequential single-controller sampler; n > 0
// starts the concurrent sharded engine with n per-shard channel controllers
// (clamped to the number of selected banks). The returned Source behaves
// identically either way — sharding only changes throughput and thread
// scheduling.
func WithShards(n int) Option {
	return func(o *options) { o.shards = &n }
}

// WithPostprocess appends the Section 2.2 post-processing chain to the
// opened Source: every corrector is applied in order to the raw harvested
// bitstream before bits reach the caller. D-RaNGe does not need
// post-processing (RNG cells are selected to be unbiased), and the paper
// notes correctors can cost up to 80% of raw throughput; the option exists
// for defence-in-depth and for comparing against the corrected baselines.
func WithPostprocess(correctors ...Corrector) Option {
	return func(o *options) { o.post = append(o.post, correctors...) }
}

// WithBackend selects the device backend used to open the device: one of the
// registered backend names ("sim", "replay", "faulty", or anything added via
// RegisterBackend), with backend-specific options. The default is "sim", the
// built-in simulated device. In OpenPool the backend applies to every device
// unless overridden per device with WithDeviceBackend.
func WithBackend(name string, params map[string]string) Option {
	return func(o *options) {
		o.backend = &backendSpec{name: name, params: copyParams(params)}
	}
}

// WithDevice supplies the device directly instead of opening one through a
// backend, for caller-constructed or middleware-wrapped devices (see
// OpenBackend). With Open, the device's serial and geometry must match the
// profile. It is mutually exclusive with WithBackend and not accepted by
// OpenPool, which opens one device per profile.
func WithDevice(dev Device) Option {
	return func(o *options) { o.device = dev }
}

// WithDeviceBackend overrides the backend for one device of a pool, by index
// into the profiles slice passed to OpenPool — for heterogeneous fleets, or
// for injecting a "faulty" member in robustness tests.
func WithDeviceBackend(index int, name string, params map[string]string) Option {
	return func(o *options) {
		if o.deviceBackends == nil {
			o.deviceBackends = make(map[int]backendSpec)
		}
		o.deviceBackends[index] = backendSpec{name: name, params: copyParams(params)}
	}
}

// WithHealth sets the pool's device-health policy (bias-drift and
// temperature-drift eviction); see HealthPolicy for the defaults applied to
// zero fields. It only applies to OpenPool.
func WithHealth(p HealthPolicy) Option {
	return func(o *options) { o.health = &p }
}

// WithRecharacterization turns a pool's health evictions into a self-healing
// lifecycle: instead of leaving the pool forever, a member tripping the
// health policy is quarantined, re-characterized in the background over the
// drifted banks, and readmitted with a hot profile swap while the remaining
// members keep serving. See RecharacterizationPolicy for the defaults
// applied to zero fields. It only applies to OpenPool.
func WithRecharacterization(p RecharacterizationPolicy) Option {
	return func(o *options) { o.rechar = &p }
}

func copyParams(params map[string]string) map[string]string {
	if len(params) == 0 {
		return nil
	}
	out := make(map[string]string, len(params))
	for k, v := range params {
		out[k] = v
	}
	return out
}

// rejectPoolOnly errors when pool-only options reach Characterize or Open.
func (o *options) rejectPoolOnly(fn string) error {
	if o.health != nil {
		return fmt.Errorf("drange: WithHealth applies to OpenPool, not %s", fn)
	}
	if len(o.deviceBackends) > 0 {
		return fmt.Errorf("drange: WithDeviceBackend applies to OpenPool, not %s", fn)
	}
	if o.rechar != nil {
		return fmt.Errorf("drange: WithRecharacterization applies to OpenPool, not %s", fn)
	}
	return nil
}

// charParams is the fully-resolved characterization parameter set.
type charParams struct {
	Manufacturer     string
	Serial           uint64
	Deterministic    bool
	Geometry         Geometry
	TRCDNS           float64
	RowsPerBank      int
	WordsPerRow      int
	Banks            int
	Samples          int
	Tolerance        float64
	MaxBiasDelta     float64
	ScreenIterations int
}

// charParams resolves defaults, then the paper preset, then explicit options
// — so explicit values always win, including explicit zeros.
func (o *options) charParams() charParams {
	p := charParams{
		Manufacturer:     "A",
		TRCDNS:           10.0,
		RowsPerBank:      128,
		WordsPerRow:      8,
		Banks:            0,
		Samples:          600,
		Tolerance:        0.35,
		MaxBiasDelta:     0.02,
		ScreenIterations: 50,
	}
	if o.paper {
		p.Samples = 1000
		p.Tolerance = 0.10
		p.ScreenIterations = 100
	}
	if o.manufacturer != nil {
		p.Manufacturer = *o.manufacturer
	}
	if o.serial != nil {
		p.Serial = *o.serial
	}
	if o.deterministic != nil {
		p.Deterministic = *o.deterministic
	}
	if o.geometry != nil {
		p.Geometry = *o.geometry
	}
	if o.trcdNS != nil {
		p.TRCDNS = *o.trcdNS
	}
	if o.rowsPerBank != nil {
		p.RowsPerBank = *o.rowsPerBank
	}
	if o.wordsPerRow != nil {
		p.WordsPerRow = *o.wordsPerRow
	}
	if o.banks != nil {
		p.Banks = *o.banks
	}
	if o.samples != nil {
		p.Samples = *o.samples
	}
	if o.tolerance != nil {
		p.Tolerance = *o.tolerance
	}
	if o.maxBiasDelta != nil {
		p.MaxBiasDelta = *o.maxBiasDelta
	}
	if o.screenIterations != nil {
		p.ScreenIterations = *o.screenIterations
	}
	return p
}

// rejectCharacterizationOnly errors when options that only make sense during
// characterization are passed to Open, which never re-identifies cells.
func (o *options) rejectCharacterizationOnly() error {
	switch {
	case o.samples != nil, o.tolerance != nil, o.maxBiasDelta != nil,
		o.screenIterations != nil, o.paper,
		o.rowsPerBank != nil, o.wordsPerRow != nil, o.banks != nil:
		return fmt.Errorf("drange: identification options (samples, tolerance, bias bound, screening, profiling region, paper preset) apply to Characterize, not Open — the profile already fixes them")
	}
	return nil
}
