package drange

import (
	"bytes"
	"context"
	"math"
	mrand "math/rand/v2"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/entropy"
	"repro/internal/postproc"
)

// quickGeometry keeps facade tests fast: a small device with every
// structural feature present.
func quickGeometry() Geometry {
	return Geometry{
		Banks:        4,
		RowsPerBank:  128,
		ColsPerRow:   2048,
		SubarrayRows: 64,
		WordBits:     256,
	}
}

// quickOptions characterizes a small region with deterministic noise so the
// whole suite shares one cached profile.
func quickOptions() []Option {
	return []Option{
		WithManufacturer("A"),
		WithSerial(1),
		WithDeterministic(true),
		WithGeometry(quickGeometry()),
		WithProfilingRegion(64, 8, 4),
		WithSamples(400),
		WithTolerance(0.4),
		WithMaxBiasDelta(0.02),
		WithScreenIterations(30),
	}
}

var (
	quickOnce sync.Once
	quickProf *Profile
	quickErr  error
)

// quickProfile characterizes the shared test device exactly once; every test
// that needs a generator Opens it from this profile — the workflow the
// redesign exists for.
func quickProfile(t *testing.T) *Profile {
	t.Helper()
	quickOnce.Do(func() {
		quickProf, quickErr = Characterize(context.Background(), quickOptions()...)
	})
	if quickErr != nil {
		t.Fatal(quickErr)
	}
	return quickProf
}

func openQuick(t *testing.T, opts ...Option) Source {
	t.Helper()
	src, err := Open(context.Background(), quickProfile(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

func checkBias(t *testing.T, buf []byte) {
	t.Helper()
	bits := entropy.BytesToBits(buf)
	bias, err := entropy.Bias(bits)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bias-0.5) > 0.06 {
		t.Errorf("output bias %v, want ~0.5", bias)
	}
}

func TestCharacterizeProducesSealedProfile(t *testing.T) {
	p := quickProfile(t)
	if p.Version != ProfileVersion {
		t.Errorf("profile version = %d, want %d", p.Version, ProfileVersion)
	}
	if p.Manufacturer != "A" || p.Serial != 1 {
		t.Errorf("profile identity = %s/%d, want A/1", p.Manufacturer, p.Serial)
	}
	if !strings.HasPrefix(p.Checksum, "sha256:") {
		t.Errorf("profile checksum %q lacks algorithm prefix", p.Checksum)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("fresh profile fails validation: %v", err)
	}
	if len(p.Cells) == 0 || len(p.Selections) == 0 {
		t.Fatalf("profile has %d cells, %d selections; want both non-empty", len(p.Cells), len(p.Selections))
	}
	if p.Characterization.Pattern == "" {
		t.Error("profile records no data pattern")
	}
	if _, err := parsePattern(p.Characterization.Pattern); err != nil {
		t.Error(err)
	}
	for i := 1; i < len(p.Selections); i++ {
		if p.Selections[i].Bits() > p.Selections[i-1].Bits() {
			t.Errorf("selections not sorted by descending data rate at %d", i)
		}
	}
	if p.BitsPerIteration() <= 0 || p.Banks() == 0 {
		t.Errorf("profile reports %d bits/iteration over %d banks", p.BitsPerIteration(), p.Banks())
	}
	if len(p.DensityHistograms()) == 0 {
		t.Error("no density histograms")
	}
}

func TestOpenEndToEnd(t *testing.T) {
	src := openQuick(t)
	buf := make([]byte, 512)
	n, err := src.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("short read %d", n)
	}
	checkBias(t, buf)

	v1, err := src.Uint64()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := src.Uint64()
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Error("consecutive Uint64 outputs identical")
	}

	raw, err := src.ReadBits(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 64 {
		t.Fatalf("ReadBits returned %d bits", len(raw))
	}

	st := src.Stats()
	if st.BitsDelivered != int64(len(buf)*8+64+128) {
		t.Errorf("BitsDelivered = %d, want %d", st.BitsDelivered, len(buf)*8+64+128)
	}
	if st.AggregateThroughputMbps <= 0 || st.Latency64NS <= 0 {
		t.Errorf("stats = %+v, want positive throughput and latency", st)
	}
	if len(st.Shards) != 1 {
		t.Errorf("sequential source reports %d shards, want 1", len(st.Shards))
	}

	if _, err := src.Read(nil); err != nil {
		t.Errorf("zero-length read errored: %v", err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Read(buf); err == nil {
		t.Error("read after Close succeeded")
	}
}

// TestOpenSkipsIdentification is the acceptance check that Open performs no
// identification work: a freshly opened generator has issued zero reads and
// zero reduced-tRCD activations against the device — preparation writes data
// patterns only — while characterization performs hundreds of thousands.
func TestOpenSkipsIdentification(t *testing.T) {
	src := openQuick(t)
	g := src.(*Generator)
	st := g.dev.Stats()
	if st.Reads != 0 {
		t.Errorf("Open issued %d device reads; identification must not run on the open path", st.Reads)
	}
	if st.ReducedTRCDAct != 0 {
		t.Errorf("Open issued %d reduced-tRCD activations; profiling must not run on the open path", st.ReducedTRCDAct)
	}
	if _, err := src.ReadBits(64); err != nil {
		t.Fatal(err)
	}
	st = g.dev.Stats()
	if st.ReducedTRCDAct == 0 {
		t.Error("generation performed no reduced-tRCD activations; sampler not wired to the device")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p := quickProfile(t)
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := DecodeProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Checksum != p.Checksum {
		t.Errorf("checksum changed across round trip: %q vs %q", loaded.Checksum, p.Checksum)
	}
	if len(loaded.Cells) != len(p.Cells) || len(loaded.Selections) != len(p.Selections) {
		t.Fatalf("round trip lost cells/selections: %d/%d vs %d/%d",
			len(loaded.Cells), len(loaded.Selections), len(p.Cells), len(p.Selections))
	}
	for i := range p.Selections {
		a, b := p.Selections[i], loaded.Selections[i]
		if a.Bank != b.Bank || a.Word1.Row != b.Word1.Row || a.Word2.Row != b.Word2.Row ||
			len(a.Word1.Cols) != len(b.Word1.Cols) || len(a.Word2.Cols) != len(b.Word2.Cols) {
			t.Errorf("selection %d changed across round trip: %+v vs %+v", i, a, b)
		}
	}

	// Deterministic noise: a generator opened from the reloaded profile
	// produces byte-identical output to one opened from the original.
	src1 := openQuick(t)
	src2, err := Open(context.Background(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	defer src2.Close()
	buf1 := make([]byte, 256)
	buf2 := make([]byte, 256)
	if _, err := src1.Read(buf1); err != nil {
		t.Fatal(err)
	}
	if _, err := src2.Read(buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1, buf2) {
		t.Error("reloaded profile produces different bytes than the original")
	}
}

func TestProfileMismatchesRejected(t *testing.T) {
	p := quickProfile(t)
	ctx := context.Background()

	if _, err := Open(ctx, p, WithSerial(2)); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("wrong serial accepted (err=%v)", err)
	}
	if _, err := Open(ctx, p, WithManufacturer("B")); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("wrong manufacturer accepted (err=%v)", err)
	}
	g := quickGeometry()
	g.Banks = 8
	if _, err := Open(ctx, p, WithGeometry(g)); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("wrong geometry accepted (err=%v)", err)
	}

	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(data), `"serial": 1`, `"serial": 2`, 1)
	if corrupted == string(data) {
		t.Fatal("corruption did not apply; test needs updating")
	}
	if _, err := DecodeProfile([]byte(corrupted)); err == nil || !strings.Contains(err.Error(), "integrity") {
		t.Errorf("corrupted profile accepted (err=%v)", err)
	}

	if _, err := DecodeProfile(data[:len(data)/2]); err == nil {
		t.Error("truncated profile accepted")
	}

	future := *p
	future.Version = ProfileVersion + 1
	if err := future.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ctx, &future); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Errorf("future-version profile accepted (err=%v)", err)
	}

	tampered := *p
	tampered.Serial++
	if _, err := Open(ctx, &tampered); err == nil || !strings.Contains(err.Error(), "integrity") {
		t.Errorf("tampered unsealed profile accepted (err=%v)", err)
	}
}

// TestShardedSourceMatchesEngine is the acceptance check that the redesigned
// Source is a transparent facade: Open(profile, WithShards(4)) produces the
// same deterministic byte stream as the sharded core.Engine built directly
// from the profile's selections over an identical device.
func TestShardedSourceMatchesEngine(t *testing.T) {
	p := quickProfile(t)
	ctx := context.Background()

	src, err := Open(ctx, p, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	sels, err := coreSelections(p.Cells, p.Selections)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := parsePattern(p.Characterization.Pattern)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := newDevice(p.Manufacturer, p.Serial, true, p.Geometry)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ctx, dev, sels, core.EngineConfig{
		Shards: 4,
		TRNG:   core.TRNGConfig{TRCDNS: p.Characterization.TRCDNS, Pattern: pat},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	want := make([]byte, 256)
	got := make([]byte, 256)
	if _, err := eng.Read(want); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Read(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("sharded Source bytes differ from the core Engine's")
	}
	checkBias(t, got)

	st := src.Stats()
	if st.BitsDelivered != int64(len(got)*8) {
		t.Errorf("BitsDelivered = %d, want %d", st.BitsDelivered, len(got)*8)
	}
	if len(st.Shards) != src.(*Generator).Shards() || len(st.Shards) == 0 {
		t.Errorf("got %d shard stats for %d shards", len(st.Shards), src.(*Generator).Shards())
	}
	if st.AggregateThroughputMbps <= 0 || st.Latency64NS <= 0 {
		t.Errorf("stats = %+v, want positive throughput and latency", st)
	}
}

func TestSequentialOpenDeterministic(t *testing.T) {
	a := openQuick(t)
	b := openQuick(t)
	b1 := make([]byte, 128)
	b2 := make([]byte, 128)
	if _, err := a.Read(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("two sequential opens of the same deterministic profile diverge")
	}
}

func TestGeneratorEstimates(t *testing.T) {
	src := openQuick(t)
	g := src.(*Generator)
	res, err := g.EstimateThroughput(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMbps <= 0 {
		t.Errorf("throughput estimate %v, want positive", res.ThroughputMbps)
	}
	lat, err := g.EstimateLatency64()
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Errorf("latency estimate %v, want positive", lat)
	}
	nj, err := g.EstimateEnergyPerBit(50)
	if err != nil {
		t.Fatal(err)
	}
	if nj <= 0 || nj > 100 {
		t.Errorf("energy estimate %v nJ/bit, want small positive value", nj)
	}

	// Out-of-range bank counts error instead of silently clamping.
	if _, err := g.EstimateThroughput(len(g.sels)+1, 20); err == nil {
		t.Error("bank count above the selection count accepted")
	}
	if _, err := g.EstimateThroughput(0, 20); err == nil {
		t.Error("zero banks accepted")
	}

	// Estimates resynchronise bank state: generation still works afterwards.
	buf := make([]byte, 64)
	if _, err := src.Read(buf); err != nil {
		t.Errorf("read after estimates failed: %v", err)
	}
}

func TestEstimatesRejectedWhileEngineActive(t *testing.T) {
	src := openQuick(t)
	g := src.(*Generator)
	eng, err := g.Engine(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.EstimateThroughput(1, 10); err == nil || !strings.Contains(err.Error(), "engine is active") {
		t.Errorf("EstimateThroughput during engine run: err = %v, want engine-active error", err)
	}
	if _, err := g.EstimateLatency64(); err == nil || !strings.Contains(err.Error(), "engine is active") {
		t.Errorf("EstimateLatency64 during engine run: err = %v, want engine-active error", err)
	}
	if _, err := g.EstimateEnergyPerBit(10); err == nil || !strings.Contains(err.Error(), "engine is active") {
		t.Errorf("EstimateEnergyPerBit during engine run: err = %v, want engine-active error", err)
	}
	buf := make([]byte, 64)
	if _, err := eng.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.EstimateThroughput(1, 10); err != nil {
		t.Errorf("EstimateThroughput after engine Close failed: %v", err)
	}

	sharded := openQuick(t, WithShards(2))
	if _, err := sharded.(*Generator).EstimateLatency64(); err == nil || !strings.Contains(err.Error(), "engine is active") {
		t.Errorf("estimate on a sharded Source: err = %v, want engine-active error", err)
	}
}

func TestPostprocessChain(t *testing.T) {
	raw := openQuick(t)
	vn := openQuick(t, WithPostprocess(VonNeumann()))

	// Identical deterministic devices: the corrected stream must equal the
	// von Neumann corrector applied to the raw stream.
	rawBits, err := raw.ReadBits(basePostBatch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := postproc.VonNeumann{}.Process(rawBits)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 100 {
		t.Fatalf("von Neumann kept only %d of %d bits; device too small for this test", len(want), basePostBatch)
	}
	got, err := vn.ReadBits(100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[:100]) {
		t.Error("post-processed stream differs from corrector applied to raw stream")
	}

	if _, err := Open(context.Background(), quickProfile(t), WithPostprocess(XORDecimator(1))); err == nil {
		t.Error("invalid decimation factor accepted at Open")
	}
}

// TestPostprocessMultiStageStreaming checks that a multi-stage chain carries
// sub-block remainders between batches: the streamed output must equal the
// whole-stream composition of the correctors over the raw bits consumed, with
// no bits truncated at batch boundaries.
func TestPostprocessMultiStageStreaming(t *testing.T) {
	chain, err := newPostChain([]Corrector{VonNeumann(), SHA256Conditioner(1024)})
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic synthetic raw source that records everything it hands
	// out; the von Neumann stage's variable-length output exercises the
	// carry path of the SHA stage on every batch.
	var consumed []byte
	state := uint64(1)
	rawPacked := func(dst []byte) error {
		for i := range dst {
			var b byte
			for j := 0; j < 8; j++ {
				state = state*6364136223846793005 + 1442695040888963407
				bit := byte(state >> 63)
				consumed = append(consumed, bit)
				b = b<<1 | bit
			}
			dst[i] = b
		}
		return nil
	}
	got, err := chain.readBits(512, rawPacked)
	if err != nil {
		t.Fatal(err)
	}

	vn, err := postproc.VonNeumann{}.Process(consumed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := postproc.SHA256Conditioner{InputBlockBits: 1024}.Process(vn)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 512 {
		t.Fatalf("whole-stream composition yielded only %d bits", len(want))
	}
	if !bytes.Equal(got, want[:512]) {
		t.Error("streamed multi-stage output differs from whole-stream composition; batch boundaries truncated bits")
	}
}

func TestRandSourceAdapter(t *testing.T) {
	src := openQuick(t)
	rng := mrand.New(RandSource(src))
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		seen[rng.IntN(10)] = true
	}
	if len(seen) != 10 {
		t.Errorf("rand/v2 adapter produced only %d of 10 values", len(seen))
	}
	src.Close()
	defer func() {
		if recover() == nil {
			t.Error("RandSource did not panic on a closed Source")
		}
	}()
	rng.Uint64()
}

func TestOptionPrecedenceAndScoping(t *testing.T) {
	o := buildOptions([]Option{WithPaperIdentification(), WithSamples(200), WithMaxBiasDelta(0)})
	p := o.charParams()
	if p.Samples != 200 {
		t.Errorf("explicit WithSamples overridden by paper preset: %d", p.Samples)
	}
	if p.Tolerance != 0.10 || p.ScreenIterations != 100 {
		t.Errorf("paper preset not applied: %+v", p)
	}
	if p.MaxBiasDelta != 0 {
		t.Errorf("explicit zero bias bound replaced by default: %v", p.MaxBiasDelta)
	}

	ctx := context.Background()
	if _, err := Characterize(ctx, WithShards(2)); err == nil {
		t.Error("WithShards accepted by Characterize")
	}
	if _, err := Characterize(ctx, WithPostprocess(VonNeumann())); err == nil {
		t.Error("WithPostprocess accepted by Characterize")
	}
	if _, err := Open(ctx, quickProfile(t), WithSamples(100)); err == nil {
		t.Error("identification option accepted by Open")
	}
	if _, err := Open(ctx, quickProfile(t), WithShards(-1)); err == nil {
		t.Error("negative shard count accepted by Open")
	}
}

// TestExplicitZeroBiasBound exercises the sentinel fix end to end: a zero
// bias bound must reach identification (admitting only exactly-50% cells)
// instead of silently becoming the 2% default.
func TestExplicitZeroBiasBound(t *testing.T) {
	profile, err := Characterize(context.Background(),
		WithManufacturer("A"),
		WithSerial(1),
		WithDeterministic(true),
		WithGeometry(quickGeometry()),
		WithProfilingRegion(32, 4, 1),
		WithSamples(200),
		WithTolerance(0.4),
		WithScreenIterations(30),
		WithMaxBiasDelta(0),
	)
	if err != nil {
		if !strings.Contains(err.Error(), "no RNG cells") {
			t.Fatalf("unexpected characterization error: %v", err)
		}
		return // the strict bound legitimately rejected every cell
	}
	if profile.Characterization.MaxBiasDelta != 0 {
		t.Errorf("profile records bias bound %v, want explicit 0", profile.Characterization.MaxBiasDelta)
	}
	for _, c := range profile.Cells {
		if c.FailProbability != 0.5 {
			t.Errorf("cell %+v passed a zero bias bound with Fprob %v", c, c.FailProbability)
		}
	}
}

func TestCharacterizeHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Characterize(ctx, quickOptions()...); err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("cancelled characterization returned %v", err)
	}
}

func TestNISTSmokeTest(t *testing.T) {
	src := openQuick(t)
	res, err := src.(*Generator).RunNIST(20000, 0)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(name string) NISTResult {
		for _, r := range res {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("test %q missing from NIST results", name)
		return NISTResult{}
	}
	if mono := lookup("monobit"); !mono.Pass {
		t.Errorf("monobit failed on D-RaNGe output (p=%v)", mono.PValue)
	}
	if runs := lookup("runs"); !runs.Pass {
		t.Errorf("runs failed on D-RaNGe output (p=%v)", runs.PValue)
	}
}

// legacyConfig mirrors the old test configuration for the deprecated shim.
func legacyConfig() Config {
	return Config{
		Manufacturer:       "A",
		Serial:             1,
		Deterministic:      true,
		Geometry:           quickGeometry(),
		ProfileRowsPerBank: 48,
		ProfileWordsPerRow: 8,
		ProfileBanks:       2,
		Samples:            300,
		Tolerance:          0.4,
		MaxBiasDelta:       0.02,
		ScreenIterations:   30,
	}
}

func TestLegacyNewShim(t *testing.T) {
	g, err := New(legacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if len(g.Cells()) == 0 || len(g.Selections()) == 0 || g.Banks() == 0 {
		t.Fatal("legacy New returned an empty generator")
	}
	if g.Profile() == nil || g.Profile().Validate() != nil {
		t.Error("legacy New did not produce a valid profile")
	}
	buf := make([]byte, 256)
	if _, err := g.Read(buf); err != nil {
		t.Fatal(err)
	}
	checkBias(t, buf)

	// Stats must account generation time only, not the characterization
	// cycles New spent on the same controller: with those included the
	// apparent rate would be orders of magnitude below a real harvest rate.
	if st := g.Stats(); st.AggregateThroughputMbps < 1 {
		t.Errorf("legacy generator throughput = %v Mb/s; characterization cycles leaked into Stats", st.AggregateThroughputMbps)
	}

	eng, err := g.Engine(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Shards() == 0 {
		t.Fatal("legacy engine has no shards")
	}
	if _, err := eng.Read(buf); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.BitsDelivered != int64(len(buf)*8) || len(st.Shards) != eng.Shards() {
		t.Errorf("legacy engine stats = %+v", st)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := legacyConfig()
	cfg.Manufacturer = "Z"
	if _, err := New(cfg); err == nil {
		t.Error("unknown manufacturer accepted")
	}
	cfg = legacyConfig()
	cfg.ReducedTRCDNS = 50
	if _, err := New(cfg); err == nil {
		t.Error("tRCD above default accepted")
	}
	cfg = legacyConfig()
	cfg.Geometry.WordBits = 100
	if _, err := New(cfg); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestLegacyConfigSentinels(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Manufacturer != "A" || c.ReducedTRCDNS != 10.0 || c.Samples != 600 {
		t.Errorf("defaults = %+v", c)
	}
	p := Config{PaperIdentification: true}.withDefaults()
	if p.Samples != 1000 || p.Tolerance != 0.10 {
		t.Errorf("paper identification defaults = %+v", p)
	}
	// The documented legacy flaw the options API fixes: an explicit zero is
	// indistinguishable from unset and silently becomes the default.
	z := Config{MaxBiasDelta: 0}.withDefaults()
	if z.MaxBiasDelta != 0.02 {
		t.Errorf("legacy explicit zero bias bound = %v, want the documented sentinel default 0.02", z.MaxBiasDelta)
	}
}
