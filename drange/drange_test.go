package drange

import (
	"context"
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/dram"
	"repro/internal/entropy"
)

// quickConfig keeps facade tests fast: a small device, a small profiling
// region, deterministic noise.
func quickConfig() Config {
	return Config{
		Manufacturer:  "A",
		Serial:        1,
		Deterministic: true,
		Geometry: dram.Geometry{
			Banks:        4,
			RowsPerBank:  128,
			ColsPerRow:   2048,
			SubarrayRows: 64,
			WordBits:     256,
		},
		ProfileRowsPerBank: 64,
		ProfileWordsPerRow: 8,
		ProfileBanks:       2,
		Samples:            400,
		Tolerance:          0.4,
		MaxBiasDelta:       0.02,
		ScreenIterations:   30,
	}
}

func newGenerator(t *testing.T) *Generator {
	t.Helper()
	g, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeneratorEndToEnd(t *testing.T) {
	g := newGenerator(t)
	if len(g.Cells()) == 0 {
		t.Fatal("no RNG cells identified")
	}
	if len(g.Selections()) == 0 || g.Banks() == 0 {
		t.Fatal("no bank selections")
	}
	if g.Device() == nil || g.Controller() == nil {
		t.Fatal("device/controller not exposed")
	}

	buf := make([]byte, 512)
	n, err := g.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("short read %d", n)
	}
	bits := entropy.BytesToBits(buf)
	bias, err := entropy.Bias(bits)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bias-0.5) > 0.06 {
		t.Errorf("output bias %v, want ~0.5", bias)
	}

	v1, err := g.Uint64()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := g.Uint64()
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Error("consecutive Uint64 outputs identical")
	}

	raw, err := g.ReadBits(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 64 {
		t.Fatalf("ReadBits returned %d bits", len(raw))
	}
}

func TestGeneratorEstimates(t *testing.T) {
	g := newGenerator(t)
	res, err := g.EstimateThroughput(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMbps <= 0 {
		t.Errorf("throughput estimate %v, want positive", res.ThroughputMbps)
	}
	lat, err := g.EstimateLatency64()
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Errorf("latency estimate %v, want positive", lat)
	}
	nj, err := g.EstimateEnergyPerBit(50)
	if err != nil {
		t.Fatal(err)
	}
	if nj <= 0 || nj > 100 {
		t.Errorf("energy estimate %v nJ/bit, want small positive value", nj)
	}
	hists := g.DensityHistograms()
	if len(hists) == 0 {
		t.Error("no density histograms")
	}
}

func TestGeneratorNISTSmokeTest(t *testing.T) {
	g := newGenerator(t)
	// A short stream: only the quick tests are applicable, but they should
	// pass for D-RaNGe output.
	res, err := g.RunNIST(20000, 0)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := res.Lookup("monobit")
	if err != nil {
		t.Fatal(err)
	}
	if !mono.Pass {
		t.Errorf("monobit failed on D-RaNGe output (p=%v)", mono.PValue)
	}
	runs, err := res.Lookup("runs")
	if err != nil {
		t.Fatal(err)
	}
	if !runs.Pass {
		t.Errorf("runs failed on D-RaNGe output (p=%v)", runs.PValue)
	}
}

func TestGeneratorEngine(t *testing.T) {
	g := newGenerator(t)
	eng, err := g.Engine(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Shards() == 0 {
		t.Fatal("engine has no shards")
	}

	buf := make([]byte, 256)
	if n, err := eng.Read(buf); n != len(buf) || err != nil {
		t.Fatalf("Read = (%d, %v)", n, err)
	}
	bits := entropy.BytesToBits(buf)
	bias, err := entropy.Bias(bits)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bias-0.5) > 0.06 {
		t.Errorf("engine output bias %v, want ~0.5", bias)
	}

	st := eng.Stats()
	if st.BitsDelivered != int64(len(buf)*8) {
		t.Errorf("BitsDelivered = %d, want %d", st.BitsDelivered, len(buf)*8)
	}
	if st.AggregateThroughputMbps <= 0 || st.Latency64NS <= 0 {
		t.Errorf("stats = %+v, want positive throughput and latency", st)
	}
	if len(st.Shards) != eng.Shards() {
		t.Errorf("got %d shard stats for %d shards", len(st.Shards), eng.Shards())
	}

	// The engine's Table 2 row reports the measured aggregate figures.
	row := baselines.DRangeRowFromEngine(st, 4.4)
	if row.PeakThroughputMbps != st.AggregateThroughputMbps || row.Latency64NS != st.Latency64NS {
		t.Errorf("DRangeRowFromEngine = %+v, want engine's measured figures", row)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := quickConfig()
	cfg.Manufacturer = "Z"
	if _, err := New(cfg); err == nil {
		t.Error("unknown manufacturer accepted")
	}
	cfg = quickConfig()
	cfg.ReducedTRCDNS = 50
	if _, err := New(cfg); err == nil {
		t.Error("tRCD above default accepted")
	}
	cfg = quickConfig()
	cfg.Geometry.WordBits = 100
	if _, err := New(cfg); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Manufacturer != "A" || c.ReducedTRCDNS != 10.0 || c.Samples != 600 {
		t.Errorf("defaults = %+v", c)
	}
	p := Config{PaperIdentification: true}.withDefaults()
	if p.Samples != 1000 || p.Tolerance != 0.10 {
		t.Errorf("paper identification defaults = %+v", p)
	}
}
