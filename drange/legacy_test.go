package drange

import (
	"bytes"
	"context"
	"sync"
	"testing"
)

// legacyParityConfig is a deliberately small deterministic device so the
// parity tests can afford the repeated characterizations the deprecated New
// performs.
func legacyParityConfig() Config {
	return Config{
		Manufacturer:       "A",
		Serial:             31,
		Deterministic:      true,
		Geometry:           quickGeometry(),
		ProfileRowsPerBank: 48,
		ProfileWordsPerRow: 8,
		ProfileBanks:       4,
		Samples:            300,
		Tolerance:          0.4,
		MaxBiasDelta:       0.03,
		ScreenIterations:   25,
	}
}

// legacyParityOptions is the options-API spelling of legacyParityConfig.
func legacyParityOptions() []Option {
	return []Option{
		WithManufacturer("A"),
		WithSerial(31),
		WithDeterministic(true),
		WithGeometry(quickGeometry()),
		WithProfilingRegion(48, 8, 4),
		WithSamples(300),
		WithTolerance(0.4),
		WithMaxBiasDelta(0.03),
		WithScreenIterations(25),
	}
}

var (
	parityOnce    sync.Once
	parityProfile *Profile
	parityErr     error
)

// parityReference characterizes through the modern API once, shared by the
// parity tests.
func parityReference(t *testing.T) *Profile {
	t.Helper()
	parityOnce.Do(func() {
		parityProfile, parityErr = Characterize(context.Background(), legacyParityOptions()...)
	})
	if parityErr != nil {
		t.Fatal(parityErr)
	}
	return parityProfile
}

// TestLegacyNewMatchesCharacterizeOpen is the compatibility contract of the
// deprecated one-shot API: New must remain a pure shim over
// Characterize+Open — same profile, and under deterministic noise the same
// byte stream.
func TestLegacyNewMatchesCharacterizeOpen(t *testing.T) {
	profile := parityReference(t)

	g, err := New(legacyParityConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// The shim's internal characterization must reproduce the modern one
	// exactly, checksum included.
	wantProfile, err := profile.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotProfile, err := g.Profile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantProfile, gotProfile) {
		t.Fatal("legacy New produced a different profile than Characterize")
	}

	src, err := Open(context.Background(), profile)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	want := make([]byte, 512)
	if _, err := src.Read(want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if _, err := g.Read(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("legacy New byte stream differs from Characterize+Open")
	}
	checkBias(t, got)
}

// TestLegacyEngineMatchesShardedOpen: the deprecated two-step Engine
// attachment must produce the same bytes as the modern
// Open(..., WithShards(n)) under deterministic noise.
func TestLegacyEngineMatchesShardedOpen(t *testing.T) {
	profile := parityReference(t)

	g, err := New(legacyParityConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	eng, err := g.Engine(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Shards() != 2 {
		t.Fatalf("legacy engine has %d shards, want 2", eng.Shards())
	}

	src, err := Open(context.Background(), profile, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	want := make([]byte, 512)
	if _, err := src.Read(want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if _, err := eng.Read(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("legacy Engine byte stream differs from Open with WithShards")
	}

	// While the engine owns the device, estimates must refuse to run, and
	// a second engine must be rejected.
	if _, err := g.EstimateLatency64(); err == nil {
		t.Error("estimate ran while the legacy engine was active")
	}
	if _, err := g.Engine(context.Background(), 2); err == nil {
		t.Error("second legacy engine attached while one was active")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.EstimateLatency64(); err != nil {
		t.Errorf("estimates still blocked after the legacy engine closed: %v", err)
	}
}

// TestLegacyGeneratorStatsAndClose: the shim still reports sane generation
// statistics and closes down cleanly.
func TestLegacyGeneratorStatsAndClose(t *testing.T) {
	g, err := New(legacyParityConfig())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if _, err := g.Read(buf); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.BitsDelivered != int64(len(buf)*8) || len(st.Shards) != 1 {
		t.Errorf("legacy stats = %+v", st)
	}
	// The generator runs on a fresh post-characterization device, so the
	// apparent rate is a pure generation rate.
	if st.AggregateThroughputMbps < 1 {
		t.Errorf("legacy generator throughput = %v Mb/s; characterization time leaked into Stats", st.AggregateThroughputMbps)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Errorf("second Close errored: %v", err)
	}
	if _, err := g.Read(buf); err == nil {
		t.Error("read after Close succeeded")
	}
}
