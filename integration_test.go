package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/entropy"
	"repro/internal/memctrl"
	"repro/internal/nist"
	"repro/internal/pattern"
	"repro/internal/profiler"
	"repro/internal/timing"
)

// TestEndToEndPipelineLPDDR4 exercises the whole stack the way the paper's
// deployment would: profile a device, identify RNG cells, select words,
// generate a bitstream, and check it with the fast NIST tests.
func TestEndToEndPipelineLPDDR4(t *testing.T) {
	prof := dram.MustProfile(dram.ManufacturerB)
	prof.WeakColumnDensity = 1.0 / 16.0
	prof.SubarrayRows = 64
	dev, err := dram.NewDevice(dram.Config{
		Serial:  2024,
		Profile: &prof,
		Geometry: dram.Geometry{
			Banks: 4, RowsPerBank: 128, ColsPerRow: 2048, SubarrayRows: 64, WordBits: 256,
		},
		Noise: dram.NewDeterministicNoise(2024),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := memctrl.NewController(dev)

	idCfg := core.DefaultIdentifyConfig("B")
	idCfg.ScreenIterations = 30
	idCfg.Samples = 300
	idCfg.Tolerance = 0.4
	idCfg.MaxBiasDelta = 0.03

	var cells []core.RNGCell
	for bank := 0; bank < 2; bank++ {
		region := profiler.Region{Bank: bank, RowStart: 0, RowCount: 64, WordStart: 0, WordCount: 8}
		found, err := core.IdentifyRNGCells(ctrl, region, idCfg)
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, found...)
	}
	if len(cells) == 0 {
		t.Fatal("no RNG cells identified on the manufacturer-B device")
	}
	sels, err := core.SelectBankWords(cells)
	if err != nil {
		t.Fatal(err)
	}
	trng, err := core.NewTRNG(ctrl, sels, core.DefaultTRNGConfig("B"))
	if err != nil {
		t.Fatal(err)
	}
	bits, err := trng.ReadBits(20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"monobit", "runs", "cumulative_sums"} {
		var r nist.Result
		var err error
		switch name {
		case "monobit":
			r, err = nist.Monobit(bits)
		case "runs":
			r, err = nist.Runs(bits)
		case "cumulative_sums":
			r, err = nist.CumulativeSums(bits)
		}
		if err != nil {
			t.Fatal(err)
		}
		r.Evaluate(nist.DefaultAlpha)
		if !r.Pass {
			t.Errorf("%s failed on end-to-end output (p=%v)", name, r.PValue)
		}
	}
}

// TestDDR3CrossValidation mirrors the paper's DDR3 validation study: the
// same profiling methodology applied to a DDR3 device (SoftMC-style
// substrate) also finds activation-failure-prone cells with ~50% behaviour.
func TestDDR3CrossValidation(t *testing.T) {
	prof := dram.MustProfile(dram.ManufacturerA)
	prof.WeakColumnDensity = 1.0 / 16.0
	prof.SubarrayRows = 64
	dev, err := dram.NewDevice(dram.Config{
		Serial:  3333,
		Profile: &prof,
		Timing:  timing.NewDDR3(),
		Geometry: dram.Geometry{
			Banks: 2, RowsPerBank: 128, ColsPerRow: 2048, SubarrayRows: 64, WordBits: 512,
		},
		Noise: dram.NewDeterministicNoise(3333),
	})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Timing().Type != timing.DDR3 {
		t.Fatal("device is not DDR3")
	}
	ctrl := memctrl.NewController(dev)
	region := profiler.Region{Bank: 0, RowStart: 0, RowCount: 64, WordStart: 0, WordCount: 4}
	cfg := profiler.Config{TRCDNS: 8.0, Iterations: 30, Pattern: pattern.Solid0()}
	res, err := profiler.Run(ctrl, region, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) == 0 {
		t.Fatal("no activation failures observed on the DDR3 device")
	}
	if len(res.CellsWithFprobBetween(0.4, 0.6)) == 0 {
		t.Error("no ~50% cells observed on the DDR3 device")
	}
	// At the DDR3 default tRCD there must be no failures.
	cfgDefault := cfg
	cfgDefault.TRCDNS = dev.Timing().TRCD
	cfgDefault.Iterations = 5
	clean, err := profiler.Run(ctrl, region, cfgDefault)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Counts) != 0 {
		t.Errorf("%d failures at the DDR3 default tRCD, want 0", len(clean.Counts))
	}
}

// TestGeneratedStreamEntropy checks aggregate entropy measures of a
// generated stream against what a true random source must provide.
func TestGeneratedStreamEntropy(t *testing.T) {
	prof := dram.MustProfile(dram.ManufacturerA)
	prof.WeakColumnDensity = 1.0 / 16.0
	prof.SubarrayRows = 64
	dev, err := dram.NewDevice(dram.Config{
		Serial:  77,
		Profile: &prof,
		Geometry: dram.Geometry{
			Banks: 2, RowsPerBank: 128, ColsPerRow: 2048, SubarrayRows: 64, WordBits: 256,
		},
		Noise: dram.NewDeterministicNoise(77),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := memctrl.NewController(dev)
	idCfg := core.DefaultIdentifyConfig("A")
	idCfg.ScreenIterations = 30
	idCfg.Samples = 300
	idCfg.Tolerance = 0.4
	idCfg.MaxBiasDelta = 0.03
	cells, err := core.IdentifyRNGCells(ctrl, profiler.Region{Bank: 0, RowCount: 64, WordCount: 8}, idCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Skip("no RNG cells with this seed")
	}
	sels, err := core.SelectBankWords(cells)
	if err != nil {
		t.Skip("no usable selection with this seed")
	}
	trng, err := core.NewTRNG(ctrl, sels, core.DefaultTRNGConfig("A"))
	if err != nil {
		t.Fatal(err)
	}
	bits, err := trng.ReadBits(30000)
	if err != nil {
		t.Fatal(err)
	}
	shannon, err := entropy.ShannonBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	if shannon < 0.995 {
		t.Errorf("Shannon entropy of generated stream = %v bits/bit, want ≥ 0.995", shannon)
	}
	minEnt, err := entropy.MinEntropy(bits)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports a minimum per-cell Shannon entropy of 0.9507.
	if minEnt < 0.93 {
		t.Errorf("min-entropy of generated stream = %v bits/bit, want ≥ 0.93", minEnt)
	}
	symEnt, err := entropy.ShannonSymbolEntropy(bits, 3)
	if err != nil {
		t.Fatal(err)
	}
	if symEnt < 2.97 {
		t.Errorf("3-bit symbol entropy = %v, want ≈ 3", symEnt)
	}
}
