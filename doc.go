// Package repro is the root of the D-RaNGe reproduction (Kim et al.,
// HPCA 2019): a DRAM-based true random number generator that harvests
// entropy from activation failures induced by reading DRAM with a reduced
// tRCD.
//
// # Module layout
//
// The public API lives in the drange package and mirrors the paper's
// two-phase lifecycle: drange.Characterize runs the one-time-per-device
// RNG-cell identification (Sections 6.1–6.2) and returns a serializable
// drange.Profile; drange.Open starts a drange.Source against a device
// matching the profile without re-running identification. WithShards selects
// the sequential sampler (0) or the concurrent sharded engine (n > 0) behind
// the same Source interface, and WithPostprocess attaches the Section 2.2
// corrector chain. No internal type appears in an exported drange
// signature. The simulated substrates live under internal/:
//
//   - internal/device — the device contract the whole pipeline is written
//     against; every layer below accepts this interface, not a concrete
//     simulator.
//   - internal/dram — the reference device implementation: per-cell process
//     variation, activation-failure injection, data-pattern and temperature
//     coupling, pluggable noise sources (including per-bank deterministic
//     streams).
//   - internal/memctrl — the cycle-accurate memory controller: programmable
//     tRCD, per-bank state machines, tRRD/tFAW, bus occupancy, refresh.
//   - internal/core — D-RaNGe itself: RNG-cell identification (Section
//     6.1), bank-word selection (Section 6.2), the single-shard TRNG
//     sampler (Algorithm 2) and the sharded Engine that composes one TRNG
//     per simulated channel/rank for multi-bank parallel harvesting.
//   - internal/health — the SP 800-90B style online health tests
//     (Repetition Count Test, Adaptive Proportion Test, windowed bias
//     monitor, startup self-test) that guard every Source's hot path.
//   - internal/sim, internal/power, internal/nist, internal/baselines —
//     the evaluation: loop timing, DRAMPower-style energy, the NIST
//     SP 800-22 suite, and the prior-work TRNG baselines of Table 2.
//
// # Device backends
//
// drange.Device is the public mirror of the device contract: geometry and
// identity, reduced-tRCD activation plus word reads (the entropy mechanism),
// writes/precharge/refresh, the profiling row shortcuts, temperature, and
// operation counters. Devices are opened through a registry
// (drange.RegisterBackend, drange.WithBackend, drange.OpenBackend) with
// three built-ins: "sim" (the simulator), "replay" (records every device
// operation of a run to a log and replays it byte-identically — the CI
// determinism anchor, independent of noise-source seeding), and "faulty"
// (wraps another backend injecting stuck columns and temperature drift for
// robustness tests). drange.WithDevice injects a caller-built Device
// directly.
//
// # Multi-device pools
//
// drange.OpenPool multiplexes one device per profile behind a single Source:
// every device runs its own sharded engine, a least-loaded scheduler
// interleaves 64-bit words across the healthy members, and per-device health
// tracking (bias-drift and temperature-drift monitoring, per the paper's
// Section 5.3 temperature sensitivity) evicts a degraded device without ever
// failing readers while a healthy member remains. Stats gains a per-device
// breakdown (Stats.Devices) on top of the per-shard accounting.
//
// # Serving core
//
// Both Source facades sit on one serving core: a Generator is served as a
// one-member pool. One scheduler, one lock-free fast path, one locked path,
// one DRBG tier and one tier-accounting site implement Read, ReadBits,
// ReadRaw and Uint64 for Generator and Pool alike, so the two facades cannot
// drift apart — a single-member pool and a Generator over the same profile
// produce byte-for-byte identical streams under deterministic noise
// (regression-tested). The shared accounting is success-only: a read that
// fails with (0, err) never advances the tier counters or delivered totals,
// and a multi-chunk DRBG read commits its per-member deliveries only when
// the whole request succeeds, so per-device deliveries always sum to the
// pool aggregate.
//
// # Online health tests
//
// The paper validates output quality offline with the NIST battery and
// notes RNG cells drift with temperature and aging; drange.WithHealthTests
// adds the runtime counterpart. Every harvested bit streams through the SP
// 800-90B continuous health tests — the Repetition Count Test and Adaptive
// Proportion Test over a configurable symbol width, plus a windowed bias
// monitor — before it reaches a caller (and before any postprocess chain),
// and a startup self-test (a fresh RCT/APT/bias pass plus a mini
// internal/nist battery over the first bits) must pass before Open or
// OpenPool serves a byte. Trips follow a policy: HealthActionError fails
// reads with a typed *drange.HealthError, HealthActionBlock stalls until a
// clean window (bounded), and pools default to HealthActionEvict, feeding
// the existing per-device eviction so readers never fail while a healthy
// member remains. Stats.Health (and the per-member
// PoolDeviceStats.Health) carry the accounting. cmd/drange-soak is the
// soak/conformance harness: it drives internal/workload request profiles
// against sim, faulty and pooled sources and emits a JSON report of
// throughput, trip counts and a NIST summary — CI asserts a healthy soak
// trips nothing and a stuck-column device trips RCT/APT under every policy.
//
// # Profiles: characterize once, open many
//
// Characterization is expensive (it deep-profiles every candidate cell) and
// per-device (RNG-cell locations are process variation), but it is also
// stable over time — the paper observes no significant change over 15 days.
// drange.Profile therefore captures its entire result: device identity,
// geometry, identified cells, per-bank word selections, and the
// identification parameters, as versioned JSON with an integrity checksum.
// drange.Open validates the profile against the device it is asked to open
// (erroring loudly on identity or geometry mismatch) and starts generating
// in milliseconds. cmd/drange-char -profile-out and cmd/drange-gen
// -profile-in demonstrate the workflow end to end.
//
// # TRNG versus Engine
//
// core.TRNG is the sequential single-shard core: one memory controller
// walking its selected banks, buffering harvested bits in a packed 64-bit
// word queue. core.Engine partitions the bank selections across several
// controllers — one simulated channel/rank per shard — and runs one
// harvesting goroutine per shard into bounded per-shard rings of packed
// words, drained round-robin by a thread-safe io.Reader facade. The
// per-shard throughput/latency accounting (Source.Stats) reproduces the
// paper's claim that D-RaNGe throughput scales with the number of banks and
// channels sampled in parallel (Figure 8, Table 2).
//
// # The packed serving path
//
// Packed 64-bit words are the native representation of the whole serving
// path: Source.Read and Pool.Read fill the caller's buffer directly from
// the packed shard rings (no intermediate bit-per-byte slice, zero
// steady-state allocations), the post-processing correctors and the online
// health monitor both operate on the packed stream, and ReadBits remains a
// thin unpacking adapter for callers that want individual bits. A sharded
// Source without monitor or post chain reads lock-free behind the engine's
// consumer lock; a Pool in the same configuration schedules concurrent
// readers onto its least-loaded members with atomic counters, so
// multi-reader throughput scales instead of serializing behind the pool
// mutex. Attaching WithHealthTests or WithPostprocess engages the locked
// path: windowed tests and corrector carries need one well-defined stream
// order. BENCH_pr5.json records the measured serving-path trajectory; the
// CI bench job regenerates it on every push.
//
// The benchmark harness in bench_test.go regenerates every table and figure
// of the paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured numbers, and README.md for the
// module guide and the migration table from the deprecated drange.New API.
package repro
