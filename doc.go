// Package repro is the root of the D-RaNGe reproduction (Kim et al.,
// HPCA 2019): a DRAM-based true random number generator that harvests
// entropy from activation failures induced by reading DRAM with a reduced
// tRCD.
//
// # Module layout
//
// The public API lives in the drange package: drange.New profiles a
// simulated device, identifies RNG cells and returns a Generator
// (io.Reader); Generator.Engine starts the concurrent sharded harvesting
// engine. The simulated substrates live under internal/:
//
//   - internal/dram — the device model: per-cell process variation,
//     activation-failure injection, data-pattern and temperature coupling,
//     pluggable noise sources (including per-bank deterministic streams).
//   - internal/memctrl — the cycle-accurate memory controller: programmable
//     tRCD, per-bank state machines, tRRD/tFAW, bus occupancy, refresh.
//   - internal/core — D-RaNGe itself: RNG-cell identification (Section
//     6.1), bank-word selection (Section 6.2), the single-shard TRNG
//     sampler (Algorithm 2) and the sharded Engine that composes one TRNG
//     per simulated channel/rank for multi-bank parallel harvesting.
//   - internal/sim, internal/power, internal/nist, internal/baselines —
//     the evaluation: loop timing, DRAMPower-style energy, the NIST
//     SP 800-22 suite, and the prior-work TRNG baselines of Table 2.
//
// # TRNG versus Engine
//
// core.TRNG is the sequential single-shard core: one memory controller
// walking its selected banks, buffering harvested bits in a packed 64-bit
// word queue. core.Engine partitions the bank selections across several
// controllers — one simulated channel/rank per shard — and runs one
// harvesting goroutine per shard into bounded per-shard rings of packed
// words, drained round-robin by a thread-safe io.Reader facade. The
// per-shard throughput/latency accounting (Engine.Stats) reproduces the
// paper's claim that D-RaNGe throughput scales with the number of banks and
// channels sampled in parallel (Figure 8, Table 2).
//
// The benchmark harness in bench_test.go regenerates every table and figure
// of the paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured numbers, and README.md for the
// module guide.
package repro
