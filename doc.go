// Package repro is the root of the D-RaNGe reproduction (Kim et al.,
// HPCA 2019): a DRAM-based true random number generator that harvests
// entropy from activation failures induced by reading DRAM with a reduced
// tRCD.
//
// The public API lives in the drange package; the simulated substrates
// (DRAM device model, memory controller, cycle simulator, power model, NIST
// test suite, prior-work baselines) live under internal/. The benchmark
// harness in bench_test.go regenerates every table and figure of the paper's
// evaluation; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-versus-measured numbers.
package repro
