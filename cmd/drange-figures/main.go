// Command drange-figures regenerates the tables and figures of the paper's
// evaluation from the simulated DRAM population, printing the same rows and
// series the paper reports. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured numbers.
//
// The generator-level results go through the public profile-centric API
// (drange.Characterize once, drange.Open per configuration); the Section 5
// characterization experiments drive a raw simulated device through the
// internal profiler, as the paper's methodology does.
//
// Examples:
//
//	drange-figures -fig 8          # TRNG throughput vs number of banks
//	drange-figures -table 2        # comparison with prior DRAM TRNGs
//	drange-figures -table 1 -bits 200000
//	drange-figures -all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/drange"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/nist"
	"repro/internal/pattern"
	"repro/internal/power"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/workload"
)

type harness struct {
	manufacturer string
	profile      *drange.Profile
	gen          *drange.Generator
	// expDev is a raw simulated device of the same identity used by the
	// Section 5 characterization experiments, which operate below the
	// public API.
	expDev *dram.Device
}

func main() {
	var (
		fig          = flag.String("fig", "", "figure to regenerate: 4, 5, 6, 7, 8, time, trcd, scaling")
		table        = flag.String("table", "", "table to regenerate: 1, 2, latency, energy, interference")
		all          = flag.Bool("all", false, "regenerate everything")
		manufacturer = flag.String("manufacturer", "A", "manufacturer profile: A, B or C")
		serial       = flag.Uint64("serial", 1, "device serial number")
		bits         = flag.Int("bits", 100000, "bits per bitstream for the Table 1 NIST evaluation")
		cells        = flag.Int("cells", 2, "RNG cells to evaluate for Table 1")
	)
	flag.Parse()
	if *fig == "" && *table == "" && !*all {
		fmt.Fprintln(os.Stderr, "drange-figures: pass -fig, -table or -all")
		os.Exit(2)
	}

	ctx := context.Background()
	profile, err := drange.Characterize(ctx,
		drange.WithManufacturer(*manufacturer),
		drange.WithSerial(*serial),
		drange.WithDeterministic(true),
	)
	if err != nil {
		fatal(err)
	}
	src, err := drange.Open(ctx, profile)
	if err != nil {
		fatal(err)
	}
	defer src.Close()
	// The experiment device shares the profiled device's process variation
	// (same serial and manufacturer, so identical weak cells) but draws its
	// own seeded noise stream: per-cell failure outcomes are statistically
	// equivalent, not draw-for-draw identical, to the characterization run.
	expDev, err := dram.NewDevice(dram.Config{
		Serial:       *serial,
		Manufacturer: dram.Manufacturer(*manufacturer),
		Noise:        dram.NewDeterministicBankNoise(*serial),
	})
	if err != nil {
		fatal(err)
	}
	h := &harness{
		manufacturer: *manufacturer,
		profile:      profile,
		gen:          src.(*drange.Generator),
		expDev:       expDev,
	}
	fmt.Printf("# device: manufacturer %s, serial %d, %d RNG cells identified across %d banks\n\n",
		*manufacturer, *serial, len(profile.Cells), profile.Banks())

	run := func(name string, f func() error) {
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if *all || *fig == "4" {
		run("Figure 4: spatial distribution of activation failures", h.figure4)
	}
	if *all || *fig == "5" {
		run("Figure 5: data pattern dependence", h.figure5)
	}
	if *all || *fig == "6" {
		run("Figure 6: temperature effects", h.figure6)
	}
	if *all || *fig == "time" {
		run("Section 5.4: entropy variation over time", h.timeStability)
	}
	if *all || *fig == "trcd" {
		run("Ablation: tRCD sweep", h.trcdSweep)
	}
	if *all || *table == "1" {
		run("Table 1: NIST statistical test suite", func() error { return h.table1(*bits, *cells) })
	}
	if *all || *fig == "7" {
		run("Figure 7: RNG cells per DRAM word", h.figure7)
	}
	if *all || *fig == "8" {
		run("Figure 8: TRNG throughput vs banks", h.figure8)
	}
	if *all || *fig == "scaling" {
		run("Engine scaling: measured multi-shard throughput", h.engineScaling)
	}
	if *all || *table == "latency" {
		run("Section 7.3: 64-bit latency", h.latency)
	}
	if *all || *table == "energy" {
		run("Section 7.3: energy per bit", h.energy)
	}
	if *all || *table == "interference" {
		run("Section 7.3: idle-bandwidth throughput under workloads", h.interference)
	}
	if *all || *table == "2" {
		run("Table 2: comparison with prior DRAM TRNGs", h.table2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "drange-figures: %v\n", err)
	os.Exit(1)
}

func (h *harness) charConfig(iterations int) profiler.Config {
	return profiler.Config{TRCDNS: 10.0, Iterations: iterations, Pattern: pattern.BestFor(h.manufacturer)}
}

func (h *harness) figure4() error {
	ctrl := memctrl.NewController(h.expDev)
	rows := h.expDev.Geometry().RowsPerBank
	if rows > 512 {
		rows = 512
	}
	m, err := profiler.SpatialDistribution(ctrl, 0, rows, 1024, h.charConfig(10))
	if err != nil {
		return err
	}
	fmt.Printf("window: %d rows x 1024 columns; failing columns: %v\n", rows, m.FailingColumns())
	lower, upper := 0, 0
	for r := 0; r < rows/2; r++ {
		lower += m.FailuresPerRow[r]
	}
	for r := rows / 2; r < rows; r++ {
		upper += m.FailuresPerRow[r]
	}
	fmt.Printf("failing cells in lower half rows: %d, upper half rows: %d (paper: failures increase with row index in a subarray)\n", lower, upper)
	return nil
}

func (h *harness) figure5() error {
	ctrl := memctrl.NewController(h.expDev)
	region := profiler.Region{Bank: 0, RowStart: 0, RowCount: 128, WordStart: 0, WordCount: 8}
	cov, err := profiler.DataPatternDependence(ctrl, region, pattern.All(), h.charConfig(10))
	if err != nil {
		return err
	}
	fmt.Println("pattern coverage failures cells_with_fprob_40_60")
	for _, c := range cov {
		fmt.Printf("%-12s %.3f %6d %6d\n", c.Pattern, c.Coverage, c.Failures, c.MidProbCells)
	}
	best, err := profiler.BestPatternByMidProbCells(cov)
	if err != nil {
		return err
	}
	fmt.Printf("best pattern by ~50%% cells: %v\n", best.Pattern)
	return nil
}

func (h *harness) figure6() error {
	ctrl := memctrl.NewController(h.expDev)
	region := profiler.Region{Bank: 0, RowStart: 0, RowCount: 128, WordStart: 0, WordCount: 8}
	fmt.Println("baseT cells increased decreased median_delta")
	for _, base := range []float64{55, 60, 65} {
		res, err := profiler.TemperatureSweep(ctrl, region, h.charConfig(25), base, 5)
		if err != nil {
			return err
		}
		fmt.Printf("%.0f %5d %.3f %.3f %+.4f\n", base, len(res.Points), res.IncreasedFraction, res.DecreasedFraction, res.DeltaSummary.Median)
	}
	return nil
}

func (h *harness) timeStability() error {
	ctrl := memctrl.NewController(h.expDev)
	region := profiler.Region{Bank: 0, RowStart: 0, RowCount: 64, WordStart: 0, WordCount: 8}
	res, err := profiler.TimeStability(ctrl, region, h.charConfig(25), 5)
	if err != nil {
		return err
	}
	fmt.Printf("rounds: %d, tracked cells: %d, worst Fprob drift: %.4f (paper: no significant change over 15 days)\n",
		res.Rounds, len(res.MeanFprobPerCell), res.WorstDrift)
	return nil
}

func (h *harness) trcdSweep() error {
	ctrl := memctrl.NewController(h.expDev)
	region := profiler.Region{Bank: 0, RowStart: 0, RowCount: 64, WordStart: 0, WordCount: 8}
	points, err := profiler.TRCDSweep(ctrl, region, h.charConfig(10), []float64{6, 8, 10, 12, 13, 14, 16, 18})
	if err != nil {
		return err
	}
	fmt.Println("trcd_ns failing_cells cells_with_fprob_40_60")
	for _, p := range points {
		fmt.Printf("%5.1f %6d %6d\n", p.TRCDNS, p.FailingCells, p.MidProbCells)
	}
	return nil
}

func (h *harness) table1(bitsPerStream, nCells int) error {
	cells := h.profile.Cells
	if nCells > len(cells) {
		nCells = len(cells)
	}
	if nCells == 0 {
		return fmt.Errorf("no RNG cells identified")
	}
	agg := make(map[string][]float64)
	for i := 0; i < nCells; i++ {
		cell := core.RNGCell{
			Addr:          profiler.CellAddr{Bank: cells[i].Bank, Row: cells[i].Row, Col: cells[i].Col},
			WordIdx:       cells[i].Word,
			Fprob:         cells[i].FailProbability,
			SymbolEntropy: cells[i].SymbolEntropy,
		}
		ctrl := memctrl.NewController(h.expDev)
		stream, err := core.SampleCell(ctrl, cell, pattern.BestFor(h.manufacturer), 10.0, bitsPerStream)
		if err != nil {
			return err
		}
		res, err := nist.RunAll(stream, nist.DefaultAlpha)
		if err != nil {
			return err
		}
		for _, r := range res.Results {
			if r.Applicable {
				agg[r.Name] = append(agg[r.Name], r.PValue)
			}
		}
	}
	fmt.Printf("%d bitstreams of %d bits, alpha = %g\n", nCells, bitsPerStream, nist.DefaultAlpha)
	fmt.Printf("%-38s %-10s %s\n", "NIST Test Name", "P-value", "Status")
	for _, name := range nist.TestNames() {
		ps, ok := agg[name]
		if !ok {
			fmt.Printf("%-38s %-10s N/A (stream too short)\n", name, "-")
			continue
		}
		mean, minP := 0.0, 1.0
		for _, p := range ps {
			mean += p
			if p < minP {
				minP = p
			}
		}
		mean /= float64(len(ps))
		status := "PASS"
		if minP < nist.DefaultAlpha {
			status = "FAIL"
		}
		fmt.Printf("%-38s %-10.3f %s\n", name, mean, status)
	}
	return nil
}

func (h *harness) figure7() error {
	hists := h.profile.DensityHistograms()
	fmt.Println("bank words_with_1 words_with_2 words_with_3 words_with_4+ total_rng_cells max_per_word")
	for _, hist := range hists {
		fourPlus := 0
		for n, c := range hist.WordsWithNCells {
			if n >= 4 {
				fourPlus += c
			}
		}
		fmt.Printf("%4d %12d %12d %12d %13d %15d %12d\n", hist.Bank,
			hist.WordsWithNCells[1], hist.WordsWithNCells[2], hist.WordsWithNCells[3], fourPlus,
			hist.TotalRNGCells, hist.MaxCellsPerWord)
	}
	return nil
}

func (h *harness) figure8() error {
	fmt.Println("banks Mb/s_per_channel Mb/s_4_channels")
	for banks := 1; banks <= h.profile.Banks() && banks <= 8; banks++ {
		res, err := h.gen.EstimateThroughput(banks, 200)
		if err != nil {
			return err
		}
		four, err := core.MultiChannelThroughputMbps(res.ThroughputMbps, 4)
		if err != nil {
			return err
		}
		fmt.Printf("%5d %16.1f %15.1f\n", banks, res.ThroughputMbps, four)
	}
	return nil
}

// engineScaling measures the sharded harvesting engine at increasing shard
// counts by opening the same profile with WithShards: each shard is an
// independent channel/rank controller over a subset of the selected banks,
// so the aggregate simulated throughput reproduces the paper's claim that
// D-RaNGe scales with the banks and channels sampled in parallel. The final
// row is the Table 2 D-RaNGe entry built from the largest measured
// configuration.
func (h *harness) engineScaling() error {
	ctx := context.Background()
	fmt.Println("shards banks Mb/s_aggregate latency64_ns")
	var last drange.Stats
	for _, shards := range []int{1, 2, 4} {
		if shards > h.profile.Banks() {
			continue
		}
		src, err := drange.Open(ctx, h.profile, drange.WithShards(shards))
		if err != nil {
			return err
		}
		// Pull enough bits through every shard for a stable measurement.
		if _, err := src.ReadBits(4096 * shards); err != nil {
			src.Close()
			return err
		}
		st := src.Stats()
		src.Close()
		banks := 0
		for _, ss := range st.Shards {
			banks += ss.Banks
		}
		fmt.Printf("%6d %5d %14.1f %12.0f\n", len(st.Shards), banks, st.AggregateThroughputMbps, st.Latency64NS)
		last = st
	}
	energy, err := h.gen.EstimateEnergyPerBit(200)
	if err != nil {
		return err
	}
	row := baselines.DRangeRow(last.Latency64NS, energy, last.AggregateThroughputMbps)
	fmt.Printf("Table 2 row from measured engine figures: %.0f ns / 64 bits, %.2f nJ/bit, %.1f Mb/s peak\n",
		row.Latency64NS, row.EnergyPerBitNJ, row.PeakThroughputMbps)
	return nil
}

func (h *harness) latency() error {
	lat, err := h.gen.EstimateLatency64()
	if err != nil {
		return err
	}
	slow, err := h.gen.EstimateLatency(1, 64)
	if err != nil {
		return err
	}
	fmt.Printf("64-bit latency, all banks of one channel: %.0f ns\n", lat)
	fmt.Printf("64-bit latency, single bank:             %.0f ns\n", slow)
	fmt.Println("(paper: 100 ns best case with 4 channels, 960 ns worst case)")
	return nil
}

func (h *harness) energy() error {
	nj, err := h.gen.EstimateEnergyPerBit(200)
	if err != nil {
		return err
	}
	fmt.Printf("marginal energy: %.2f nJ/bit (paper: 4.4 nJ/bit)\n", nj)
	return nil
}

func (h *harness) interference() error {
	geom := h.profile.Geometry
	standalone, err := h.gen.EstimateThroughput(h.gen.Banks(), 200)
	if err != nil {
		return err
	}
	fmt.Println("workload idle_fraction trng_Mb/s")
	sum, minT, maxT := 0.0, 1e18, 0.0
	profiles := workload.Profiles()
	for _, p := range profiles {
		reqs, err := workload.Generate(p, workload.Config{
			Banks: geom.Banks, RowsPerBank: geom.RowsPerBank, WordsPerRow: geom.ColsPerRow / geom.WordBits,
			DurationNS: 200000, Seed: 11,
		})
		if err != nil {
			return err
		}
		rep, err := sim.ReplayWorkload(memctrl.NewController(h.expDev), reqs)
		if err != nil {
			return err
		}
		tput, err := sim.IdleBandwidthThroughputMbps(standalone.ThroughputMbps, rep.IdleFraction)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %.3f %10.1f\n", p.Name, rep.IdleFraction, tput)
		sum += tput
		if tput < minT {
			minT = tput
		}
		if tput > maxT {
			maxT = tput
		}
	}
	fmt.Printf("average %.1f Mb/s (min %.1f, max %.1f); paper: 83.1 (49.1–98.3) Mb/s\n",
		sum/float64(len(profiles)), minT, maxT)
	return nil
}

func (h *harness) table2() error {
	energy, err := h.gen.EstimateEnergyPerBit(200)
	if err != nil {
		return err
	}
	latency, err := h.gen.EstimateLatency64()
	if err != nil {
		return err
	}
	perChannel, err := h.gen.EstimateThroughput(h.gen.Banks(), 200)
	if err != nil {
		return err
	}
	peak, err := core.MultiChannelThroughputMbps(perChannel.ThroughputMbps, 4)
	if err != nil {
		return err
	}
	rows, err := baselines.Table2(h.expDev.Timing(), power.NewLPDDR4Model(), baselines.DRangeRow(latency, energy, peak))
	if err != nil {
		return err
	}
	fmt.Printf("%-32s %-6s %-6s %-14s %-16s %s\n", "Proposal", "True", "Stream", "64-bit latency", "Energy", "Peak throughput")
	for _, r := range rows {
		fmt.Printf("%-32s %-6v %-6v %12.0f ns %12.2f nJ/b %10.2f Mb/s\n",
			r.Name, r.TrueRandom, r.StreamingCapable, r.Latency64NS, r.EnergyPerBitNJ, r.PeakThroughputMbps)
	}
	return nil
}
