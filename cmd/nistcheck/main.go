// Command nistcheck runs the NIST SP 800-22 statistical test suite over a
// file of random bytes and prints one line per test, in the format of
// Table 1 of the paper.
//
// Example:
//
//	drange-gen -bytes 131072 -out sample.bin
//	nistcheck -in sample.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/entropy"
	"repro/internal/nist"
)

func main() {
	var (
		in    = flag.String("in", "", "file of random bytes to test (required)")
		alpha = flag.Float64("alpha", nist.DefaultAlpha, "significance level")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "nistcheck: -in is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nistcheck: %v\n", err)
		os.Exit(1)
	}
	bits := entropy.BytesToBits(data)
	res, err := nist.RunAll(bits, *alpha)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nistcheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("NIST SP 800-22 over %d bits (alpha = %g)\n", res.Bits, res.Alpha)
	fmt.Printf("%-38s %-10s %s\n", "Test", "P-value", "Status")
	for _, r := range res.Results {
		status := "PASS"
		if !r.Applicable {
			status = "N/A (" + r.Detail + ")"
		} else if !r.Pass {
			status = "FAIL"
		}
		fmt.Printf("%-38s %-10.4f %s\n", r.Name, r.PValue, status)
	}
	passed, applicable := res.Passed()
	fmt.Printf("\n%d/%d applicable tests passed\n", passed, applicable)
	if !res.AllPass() {
		os.Exit(1)
	}
}
