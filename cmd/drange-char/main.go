// Command drange-char runs the Section 5 characterization experiments over
// one simulated device and prints their data: the spatial distribution of
// activation failures (Figure 4), data-pattern dependence (Figure 5), the
// temperature sweep (Figure 6), stability over time (Section 5.4) and the
// tRCD sweep. With -profile-out it instead runs the Section 6.1–6.2 RNG-cell
// identification through the public API and saves the resulting device
// profile, which drange-gen -profile-in reopens without re-characterizing.
//
// Example:
//
//	drange-char -manufacturer A -experiment spatial
//	drange-char -experiment patterns -iterations 50
//	drange-char -profile-out device.json -rows 64 -banks 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/drange"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/pattern"
	"repro/internal/profiler"
)

func main() {
	var (
		manufacturer  = flag.String("manufacturer", "A", "DRAM manufacturer profile: A, B or C")
		serial        = flag.Uint64("serial", 1, "simulated device serial number")
		experiment    = flag.String("experiment", "spatial", "experiment: spatial, patterns, temperature, stability, trcd")
		iterations    = flag.Int("iterations", 20, "profiling iterations per cell")
		rows          = flag.Int("rows", 256, "rows of bank 0 to profile")
		words         = flag.Int("words", 8, "DRAM words per row to profile")
		banks         = flag.Int("banks", 2, "banks to profile for -profile-out (0 = all)")
		trcd          = flag.Float64("trcd", 10.0, "reduced activation latency in ns")
		deterministic = flag.Bool("deterministic", true, "use a seeded noise source for reproducible characterization")
		profileOut    = flag.String("profile-out", "", "identify RNG cells and write the device profile (JSON) to this file instead of running an experiment")
	)
	flag.Parse()

	if *profileOut != "" {
		writeProfile(*profileOut, *manufacturer, *serial, *deterministic, *rows, *words, *banks, *trcd)
		return
	}

	var noise dram.NoiseSource
	if *deterministic {
		noise = dram.NewDeterministicNoise(*serial)
	}
	dev, err := dram.NewDevice(dram.Config{
		Serial:       *serial,
		Manufacturer: dram.Manufacturer(*manufacturer),
		Noise:        noise,
	})
	if err != nil {
		fatal(err)
	}
	ctrl := memctrl.NewController(dev)
	region := profiler.Region{Bank: 0, RowStart: 0, RowCount: *rows, WordStart: 0, WordCount: *words}
	cfg := profiler.Config{TRCDNS: *trcd, Iterations: *iterations, Pattern: pattern.BestFor(*manufacturer)}

	switch *experiment {
	case "spatial":
		runSpatial(ctrl, cfg, *rows)
	case "patterns":
		runPatterns(ctrl, region, cfg)
	case "temperature":
		runTemperature(ctrl, region, cfg)
	case "stability":
		runStability(ctrl, region, cfg)
	case "trcd":
		runTRCD(ctrl, region, cfg)
	default:
		fmt.Fprintf(os.Stderr, "drange-char: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "drange-char: %v\n", err)
	os.Exit(1)
}

// writeProfile runs the one-time-per-device RNG-cell identification through
// the public API and saves the serializable profile.
func writeProfile(path, manufacturer string, serial uint64, deterministic bool, rows, words, banks int, trcd float64) {
	profile, err := drange.Characterize(context.Background(),
		drange.WithManufacturer(manufacturer),
		drange.WithSerial(serial),
		drange.WithDeterministic(deterministic),
		drange.WithTRCD(trcd),
		drange.WithProfilingRegion(rows, words, banks),
	)
	if err != nil {
		fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		fatal(err)
	}
	if err := profile.Save(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("# identified %d RNG cells across %d banks; profile written to %s\n",
		len(profile.Cells), profile.Banks(), path)
	fmt.Printf("# reopen without re-characterizing: drange-gen -profile-in %s\n", path)
}

func runSpatial(ctrl *memctrl.Controller, cfg profiler.Config, rows int) {
	cols := 1024
	m, err := profiler.SpatialDistribution(ctrl, 0, rows, cols, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# Figure 4: spatial distribution of activation failures (%d x %d window)\n", rows, cols)
	fmt.Printf("# failing columns: %v\n", m.FailingColumns())
	fmt.Println("# row failing_cells")
	for r, n := range m.FailuresPerRow {
		if n > 0 {
			fmt.Printf("%d %d\n", r, n)
		}
	}
}

func runPatterns(ctrl *memctrl.Controller, region profiler.Region, cfg profiler.Config) {
	cov, err := profiler.DataPatternDependence(ctrl, region, pattern.All(), cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println("# Figure 5: data pattern dependence")
	fmt.Println("# pattern coverage failures cells_with_fprob_40_60")
	for _, c := range cov {
		fmt.Printf("%-12s %.3f %d %d\n", c.Pattern, c.Coverage, c.Failures, c.MidProbCells)
	}
	best, err := profiler.BestPatternByMidProbCells(cov)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# best pattern by ~50%% cells: %v (%d cells)\n", best.Pattern, best.MidProbCells)
}

func runTemperature(ctrl *memctrl.Controller, region profiler.Region, cfg profiler.Config) {
	fmt.Println("# Figure 6: temperature effect on failure probability")
	fmt.Println("# baseT cells increased_fraction decreased_fraction median_delta")
	for _, base := range []float64{55, 60, 65} {
		res, err := profiler.TemperatureSweep(ctrl, region, cfg, base, 5)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%.0f %d %.3f %.3f %.4f\n", base, len(res.Points), res.IncreasedFraction, res.DecreasedFraction, res.DeltaSummary.Median)
	}
}

func runStability(ctrl *memctrl.Controller, region profiler.Region, cfg profiler.Config) {
	res, err := profiler.TimeStability(ctrl, region, cfg, 5)
	if err != nil {
		fatal(err)
	}
	fmt.Println("# Section 5.4: failure probability stability over repeated rounds")
	fmt.Printf("rounds %d\ncells %d\nworst_fprob_drift %.4f\n", res.Rounds, len(res.MeanFprobPerCell), res.WorstDrift)
}

func runTRCD(ctrl *memctrl.Controller, region profiler.Region, cfg profiler.Config) {
	points, err := profiler.TRCDSweep(ctrl, region, cfg, []float64{6, 7, 8, 9, 10, 11, 12, 13, 14, 16, 18})
	if err != nil {
		fatal(err)
	}
	fmt.Println("# tRCD sweep: failing cells and ~50% cells vs activation latency")
	fmt.Println("# trcd_ns failing_cells cells_with_fprob_40_60")
	for _, p := range points {
		fmt.Printf("%.1f %d %d\n", p.TRCDNS, p.FailingCells, p.MidProbCells)
	}
}
