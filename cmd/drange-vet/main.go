// Command drange-vet runs the repo's custom analyzers (lockcheck, noalloc,
// entropyflow, packedpath, deprecations) over Go packages.
//
// Standalone mode loads packages itself via the go command:
//
//	drange-vet ./...
//
// It also speaks the go vet vettool protocol, so the same binary works as
//
//	go build -o /tmp/drange-vet ./cmd/drange-vet
//	go vet -vettool=/tmp/drange-vet ./...
//
// In vettool mode the go command hands the tool a JSON .cfg file per
// package, with file lists and export-data locations; diagnostics go to
// stderr and a non-zero exit marks the package as failing vet.
//
// Exit status: 0 clean, 1 tool error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/deprecations"
	"repro/internal/analysis/entropyflow"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/packedpath"
)

var analyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	noalloc.Analyzer,
	entropyflow.Analyzer,
	packedpath.Analyzer,
	deprecations.Analyzer,
}

func main() {
	args := os.Args[1:]

	// vettool protocol: version and flag discovery.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("drange-vet version %s\n", selfID())
			return
		}
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: drange-vet <packages>")
		os.Exit(1)
	}
	findings, err := analysis.Run("", args, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drange-vet:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// selfID hashes the executable so the go command's vet result cache is
// invalidated when the tool changes.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "devel"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "devel"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "devel"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// vetConfig mirrors the JSON the go command writes for vet tools.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drange-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "drange-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command expects the facts file regardless; the analyzers are
	// factless, so it is always empty.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "drange-vet:", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "drange-vet:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := analysis.CheckFiles(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "drange-vet:", err)
		return 1
	}
	findings, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drange-vet:", err)
		return 1
	}
	writeVetx()
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
