// Command drange-vet runs the repo's custom analyzers (lockcheck, noalloc,
// entropyflow, packedpath, deprecations, seedtaint, atomiccheck) over Go
// packages.
//
// Standalone mode loads packages itself via the go command:
//
//	drange-vet ./...
//	drange-vet -fix ./...   # additionally apply suggested fixes
//
// It also speaks the go vet vettool protocol, so the same binary works as
//
//	go build -o /tmp/drange-vet ./cmd/drange-vet
//	go vet -vettool=/tmp/drange-vet ./...
//
// In vettool mode the go command hands the tool a JSON .cfg file per
// package, with file lists and export-data locations; diagnostics go to
// stderr and a non-zero exit marks the package as failing vet.
//
// The interprocedural analyzers (seedtaint, atomiccheck) exchange facts
// between packages. Under the vet driver the serialized facts ride in the
// .vetx file the protocol already caches per package: a VetxOnly invocation
// type-checks the dependency and computes facts without reporting, a full
// invocation reads the dependencies' facts from PackageVetx and writes its
// own to VetxOutput. Fact computation is best-effort — a package that fails
// to type-check in VetxOnly mode yields empty facts (analyses degrade to
// unknown-callee conservatism) rather than failing the build. Standalone
// mode threads the same facts in memory, in dependency order.
//
// Exit status: 0 clean, 1 tool error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomiccheck"
	"repro/internal/analysis/deprecations"
	"repro/internal/analysis/entropyflow"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/packedpath"
	"repro/internal/analysis/seedtaint"
)

var analyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	noalloc.Analyzer,
	entropyflow.Analyzer,
	packedpath.Analyzer,
	deprecations.Analyzer,
	seedtaint.Analyzer,
	atomiccheck.Analyzer,
}

func main() {
	args := os.Args[1:]

	// vettool protocol: version and flag discovery.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("drange-vet version %s\n", selfID())
			return
		}
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	applyFixes := false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-fix", "--fix":
			applyFixes = true
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		fmt.Fprintln(os.Stderr, "usage: drange-vet [-fix] <packages>")
		os.Exit(1)
	}
	findings, err := analysis.Run("", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drange-vet:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if applyFixes {
		n, err := fixAll(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "drange-vet:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "drange-vet: applied %d suggested fix(es)\n", n)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// fixAll applies the first suggested fix of every finding that has one.
// Edits are grouped per file and applied back to front so earlier offsets
// stay valid; overlapping edits within a file are dropped with a warning.
func fixAll(findings []analysis.Finding) (int, error) {
	type edit = analysis.ResolvedEdit
	byFile := map[string][]edit{}
	applied := 0
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		fix := f.Fixes[0]
		for _, e := range fix.Edits {
			byFile[e.Filename] = append(byFile[e.Filename], e)
		}
		applied++
	}
	for _, name := range analysis.SortedKeys(byFile) {
		edits := byFile[name]
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		data, err := os.ReadFile(name)
		if err != nil {
			return applied, err
		}
		lastStart := len(data) + 1
		for _, e := range edits {
			if e.Start < 0 || e.End > len(data) || e.End > lastStart {
				fmt.Fprintf(os.Stderr, "drange-vet: skipping overlapping fix in %s\n", name)
				continue
			}
			data = append(data[:e.Start], append(append([]byte{}, e.NewText...), data[e.End:]...)...)
			lastStart = e.Start
		}
		if err := os.WriteFile(name, data, 0o666); err != nil {
			return applied, err
		}
	}
	return applied, nil
}

// selfID hashes the executable so the go command's vet result cache is
// invalidated when the tool changes.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "devel"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "devel"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "devel"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// vetConfig mirrors the JSON the go command writes for vet tools.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drange-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "drange-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command expects a facts file regardless of whether the package
	// contributed facts.
	writeVetx := func(payload []byte) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "drange-vet:", err)
			}
		}
	}
	if cfg.VetxOnly && (cfg.Standard[cfg.ImportPath] || len(cfg.GoFiles) == 0) {
		// Stdlib dependency: the policy packages all live in this module, so
		// no facts are lost by skipping it, and stdlib (cgo, asm) does not
		// reliably type-check under the trimmed importer below.
		writeVetx(nil)
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
				writeVetx(nil)
				return 0
			}
			fmt.Fprintln(os.Stderr, "drange-vet:", err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := analysis.CheckFiles(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
			writeVetx(nil)
			return 0
		}
		fmt.Fprintln(os.Stderr, "drange-vet:", err)
		return 1
	}

	// Thread dependency facts out of the .vetx files the go command already
	// computed for this package's deps, and collect our own for VetxOutput.
	facts := loadDepFacts(cfg)
	findings, err := analysis.RunPackageFacts(pkg, analyzers, facts, cfg.VetxOnly)
	if err != nil {
		if cfg.VetxOnly {
			writeVetx(nil)
			return 0
		}
		fmt.Fprintln(os.Stderr, "drange-vet:", err)
		return 1
	}
	payload, err := analysis.EncodeFacts(facts[cfg.ImportPath])
	if err != nil {
		fmt.Fprintln(os.Stderr, "drange-vet:", err)
		return 1
	}
	writeVetx(payload)
	if cfg.VetxOnly {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// loadDepFacts reads every dependency .vetx named by the config into a
// FactBase. Empty and malformed files are skipped: facts are an accuracy
// optimization, never a hard requirement.
func loadDepFacts(cfg vetConfig) analysis.FactBase {
	facts := make(analysis.FactBase)
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue
		}
		m, err := analysis.DecodeFacts(data)
		if err != nil {
			continue
		}
		for name, payload := range m {
			facts.Set(path, name, payload)
		}
	}
	return facts
}
