// Command drange-gen generates random bytes from simulated DRAM devices
// using D-RaNGe and writes them to stdout (hex) or a file (raw).
//
// Characterization is a one-time-per-device step: run it once and save the
// device profile with -profile-out, then start generating in milliseconds on
// later runs with -profile-in.
//
// Example:
//
//	drange-gen -bytes 64
//	drange-gen -bytes 1048576 -out random.bin -manufacturer B
//	drange-gen -bytes 4096 -parallel 4   # sharded engine, 4 channel controllers
//	drange-gen -profile-out device.json -bytes 32   # characterize once, save
//	drange-gen -profile-in device.json -bytes 4096  # reopen without re-profiling
//	drange-gen -bytes 4096 -devices 4 -json         # 4-device pool, JSON stats
//	drange-gen -bytes 1048576 -tier drbg            # DRBG tier: 90B-screened seeds, 90A expansion
//
// Device backends (-backend, -backend-opt key=value) select how the device
// is opened: the default "sim" simulator, "replay" for operation-log
// record/replay (byte-reproducible CI runs), or "faulty" for fault
// injection:
//
//	drange-gen -profile-in p.json -bytes 64 -out a.bin \
//	    -backend replay -backend-opt mode=record -backend-opt path=ops.jsonl
//	drange-gen -profile-in p.json -bytes 64 -out b.bin \
//	    -backend replay -backend-opt mode=replay -backend-opt path=ops.jsonl
//	# a.bin and b.bin are byte-identical
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/drange"
)

// backendOpts collects repeated -backend-opt key=value flags.
type backendOpts map[string]string

func (b backendOpts) String() string {
	parts := make([]string, 0, len(b))
	for k, v := range b {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (b backendOpts) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	b[k] = v
	return nil
}

// jsonReport is the machine-readable output emitted by -json.
type jsonReport struct {
	Bytes    int          `json:"bytes"`
	Hex      string       `json:"hex,omitempty"`
	Devices  int          `json:"devices"`
	Backend  string       `json:"backend"`
	Tier     string       `json:"tier"`
	Profiles []uint64     `json:"profile_serials"`
	Stats    drange.Stats `json:"stats"`
}

func main() {
	bopts := backendOpts{}
	var (
		manufacturer  = flag.String("manufacturer", "A", "DRAM manufacturer profile: A, B or C")
		serial        = flag.Uint64("serial", 1, "simulated device serial number")
		nBytes        = flag.Int("bytes", 32, "number of random bytes to generate")
		out           = flag.String("out", "", "write raw bytes to this file instead of hex to stdout")
		deterministic = flag.Bool("deterministic", false, "use a seeded noise source (reproducible output, NOT for keys)")
		parallel      = flag.Int("parallel", 0, "harvest with a sharded engine using this many parallel controllers per device, clamped to the bank count (0 = sequential; pools default to 1)")
		devices       = flag.Int("devices", 1, "open a multi-device pool of this many devices (serials serial..serial+N-1, characterized individually)")
		backend       = flag.String("backend", "", "device backend: sim (default), replay, faulty, or a registered name")
		tier          = flag.String("tier", "raw", "serving tier: raw (physical harvested bits) or drbg (ChaCha20 DRBG reseeded from the health-screened harvest; implies the online health tests)")
		jsonOut       = flag.Bool("json", false, "print a JSON report (bytes as hex unless -out, plus aggregate and per-device/per-shard stats) to stdout")
		profileIn     = flag.String("profile-in", "", "open this saved device profile instead of re-running characterization")
		profileOut    = flag.String("profile-out", "", "write the device profile (JSON) to this file after characterization")
	)
	flag.Var(bopts, "backend-opt", "backend option key=value (repeatable), e.g. -backend-opt mode=record -backend-opt path=ops.jsonl")
	flag.Parse()

	if *nBytes <= 0 {
		fmt.Fprintln(os.Stderr, "drange-gen: -bytes must be positive")
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "drange-gen: -parallel must be non-negative")
		os.Exit(2)
	}
	if *devices < 1 {
		fmt.Fprintln(os.Stderr, "drange-gen: -devices must be at least 1")
		os.Exit(2)
	}
	if *devices > 1 && *profileIn != "" {
		fmt.Fprintln(os.Stderr, "drange-gen: -devices opens one device per serial and characterizes each; it cannot combine with -profile-in (a profile is per-device)")
		os.Exit(2)
	}
	if *devices > 1 && *profileOut != "" {
		fmt.Fprintln(os.Stderr, "drange-gen: -profile-out writes a single per-device profile; it cannot combine with -devices (save each device's profile in its own run)")
		os.Exit(2)
	}
	if *tier != "raw" && *tier != "drbg" {
		fmt.Fprintln(os.Stderr, "drange-gen: -tier must be raw or drbg")
		os.Exit(2)
	}
	if *backend == "replay" && *profileIn == "" {
		// Characterize and Open each open their own device, so one log path
		// cannot record both phases: Open's recorder would truncate the
		// characterization ops and a replay of the same command line would
		// diverge. Record/replay generation runs against a saved profile.
		fmt.Fprintln(os.Stderr, "drange-gen: -backend replay requires -profile-in (record or replay a generation run against a saved profile)")
		os.Exit(2)
	}

	// Track which identity flags were set explicitly, so loading a profile
	// for a different device still errors loudly on a mismatch while plain
	// `-profile-in file` works without repeating the identity flags.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	ctx := context.Background()
	var backendOpt []drange.Option
	if *backend != "" {
		backendOpt = append(backendOpt, drange.WithBackend(*backend, bopts))
	} else if len(bopts) > 0 {
		fmt.Fprintln(os.Stderr, "drange-gen: -backend-opt requires -backend")
		os.Exit(2)
	}

	var profiles []*drange.Profile
	if *profileIn != "" {
		data, err := os.ReadFile(*profileIn)
		if err != nil {
			fatal(err)
		}
		profile, err := drange.DecodeProfile(data)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "drange-gen: loaded profile %s (manufacturer %s, serial %d, %d RNG cells, %d banks)\n",
			*profileIn, profile.Manufacturer, profile.Serial, len(profile.Cells), profile.Banks())
		profiles = []*drange.Profile{profile}
	} else {
		for i := 0; i < *devices; i++ {
			// Characterization runs against the same backend the generator
			// will use (e.g. a faulty backend is characterized as-is).
			profile, err := drange.Characterize(ctx, append([]drange.Option{
				drange.WithManufacturer(*manufacturer),
				drange.WithSerial(*serial + uint64(i)),
				drange.WithDeterministic(*deterministic),
			}, backendOpt...)...)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "drange-gen: device %d (serial %d): identified %d RNG cells across %d banks\n",
				i, *serial+uint64(i), len(profile.Cells), profile.Banks())
			profiles = append(profiles, profile)
		}
	}
	if *profileOut != "" {
		f, err := os.OpenFile(*profileOut, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
		if err != nil {
			fatal(err)
		}
		if err := profiles[0].Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "drange-gen: wrote profile to %s\n", *profileOut)
	}

	opts := append([]drange.Option{}, backendOpt...)
	if *profileIn != "" {
		// Explicit identity flags cross-check the loaded profile. The
		// deterministic flag is checked here because Open treats
		// WithDeterministic as an override, not an identity.
		if explicit["manufacturer"] {
			opts = append(opts, drange.WithManufacturer(*manufacturer))
		}
		if explicit["serial"] {
			opts = append(opts, drange.WithSerial(*serial))
		}
		if explicit["deterministic"] && *deterministic != profiles[0].Characterization.Deterministic {
			fatal(fmt.Errorf("profile %s was characterized with deterministic=%v, not %v",
				*profileIn, profiles[0].Characterization.Deterministic, *deterministic))
		}
	}

	opts = append(opts, drange.WithShards(*parallel))
	if *tier == "drbg" {
		opts = append(opts, drange.WithDRBG(drange.DRBGPolicy{}))
	}
	var src drange.Source
	var err error
	if *devices > 1 {
		src, err = drange.OpenPool(ctx, profiles, opts...)
	} else {
		src, err = drange.Open(ctx, profiles[0], opts...)
	}
	if err != nil {
		fatal(err)
	}
	defer src.Close()

	buf := make([]byte, *nBytes)
	if _, err := src.Read(buf); err != nil {
		fatal(err)
	}
	st := src.Stats()
	if *parallel > 0 || *devices > 1 {
		fmt.Fprintf(os.Stderr, "drange-gen: %d devices, %d shards, aggregate %.1f Mb/s simulated (64-bit latency %.0f ns)\n",
			*devices, len(st.Shards), st.AggregateThroughputMbps, st.Latency64NS)
	}
	if st.DRBG != nil {
		fmt.Fprintf(os.Stderr, "drange-gen: drbg tier (%s): %d generates, %d reseeds, credit %+d bits (%d credited, %d debited)\n",
			st.DRBG.Algorithm, st.DRBG.Generates, st.DRBG.Reseeds,
			st.DRBG.Credit.BalanceBits, st.DRBG.Credit.CreditedBits, st.DRBG.Credit.DebitedBits)
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o600); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "drange-gen: wrote %d bytes to %s\n", len(buf), *out)
	}
	switch {
	case *jsonOut:
		rep := jsonReport{
			Bytes:   len(buf),
			Devices: *devices,
			Backend: *backend,
			Tier:    *tier,
			Stats:   st,
		}
		if rep.Backend == "" {
			rep.Backend = "sim"
		}
		if *out == "" {
			rep.Hex = hex.EncodeToString(buf)
		}
		for _, p := range profiles {
			rep.Profiles = append(rep.Profiles, p.Serial)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	case *out == "":
		fmt.Println(hex.EncodeToString(buf))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "drange-gen: %v\n", err)
	os.Exit(1)
}
