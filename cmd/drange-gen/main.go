// Command drange-gen generates random bytes from a simulated DRAM device
// using D-RaNGe and writes them to stdout (hex) or a file (raw).
//
// Example:
//
//	drange-gen -bytes 64
//	drange-gen -bytes 1048576 -out random.bin -manufacturer B
//	drange-gen -bytes 4096 -parallel 4   # sharded engine, 4 channel controllers
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"repro/drange"
)

func main() {
	var (
		manufacturer  = flag.String("manufacturer", "A", "DRAM manufacturer profile: A, B or C")
		serial        = flag.Uint64("serial", 1, "simulated device serial number")
		nBytes        = flag.Int("bytes", 32, "number of random bytes to generate")
		out           = flag.String("out", "", "write raw bytes to this file instead of hex to stdout")
		deterministic = flag.Bool("deterministic", false, "use a seeded noise source (reproducible output, NOT for keys)")
		parallel      = flag.Int("parallel", 0, "harvest with a sharded engine using this many parallel controllers, clamped to the bank count (0 = sequential TRNG)")
	)
	flag.Parse()

	if *nBytes <= 0 {
		fmt.Fprintln(os.Stderr, "drange-gen: -bytes must be positive")
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "drange-gen: -parallel must be non-negative")
		os.Exit(2)
	}

	gen, err := drange.New(drange.Config{
		Manufacturer:  *manufacturer,
		Serial:        *serial,
		Deterministic: *deterministic,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "drange-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "drange-gen: identified %d RNG cells across %d banks\n", len(gen.Cells()), gen.Banks())

	buf := make([]byte, *nBytes)
	if *parallel == 0 {
		if _, err := gen.Read(buf); err != nil {
			fmt.Fprintf(os.Stderr, "drange-gen: %v\n", err)
			os.Exit(1)
		}
	} else {
		eng, err := gen.Engine(context.Background(), *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drange-gen: %v\n", err)
			os.Exit(1)
		}
		if _, err := eng.Read(buf); err != nil {
			fmt.Fprintf(os.Stderr, "drange-gen: %v\n", err)
			os.Exit(1)
		}
		st := eng.Stats()
		eng.Close()
		fmt.Fprintf(os.Stderr, "drange-gen: %d shards, aggregate %.1f Mb/s simulated (64-bit latency %.0f ns)\n",
			eng.Shards(), st.AggregateThroughputMbps, st.Latency64NS)
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o600); err != nil {
			fmt.Fprintf(os.Stderr, "drange-gen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "drange-gen: wrote %d bytes to %s\n", len(buf), *out)
		return
	}
	fmt.Println(hex.EncodeToString(buf))
}
