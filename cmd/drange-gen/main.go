// Command drange-gen generates random bytes from a simulated DRAM device
// using D-RaNGe and writes them to stdout (hex) or a file (raw).
//
// Characterization is a one-time-per-device step: run it once and save the
// device profile with -profile-out, then start generating in milliseconds on
// later runs with -profile-in.
//
// Example:
//
//	drange-gen -bytes 64
//	drange-gen -bytes 1048576 -out random.bin -manufacturer B
//	drange-gen -bytes 4096 -parallel 4   # sharded engine, 4 channel controllers
//	drange-gen -profile-out device.json -bytes 32   # characterize once, save
//	drange-gen -profile-in device.json -bytes 4096  # reopen without re-profiling
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"repro/drange"
)

func main() {
	var (
		manufacturer  = flag.String("manufacturer", "A", "DRAM manufacturer profile: A, B or C")
		serial        = flag.Uint64("serial", 1, "simulated device serial number")
		nBytes        = flag.Int("bytes", 32, "number of random bytes to generate")
		out           = flag.String("out", "", "write raw bytes to this file instead of hex to stdout")
		deterministic = flag.Bool("deterministic", false, "use a seeded noise source (reproducible output, NOT for keys)")
		parallel      = flag.Int("parallel", 0, "harvest with a sharded engine using this many parallel controllers, clamped to the bank count (0 = sequential)")
		profileIn     = flag.String("profile-in", "", "open this saved device profile instead of re-running characterization")
		profileOut    = flag.String("profile-out", "", "write the device profile (JSON) to this file after characterization")
	)
	flag.Parse()

	if *nBytes <= 0 {
		fmt.Fprintln(os.Stderr, "drange-gen: -bytes must be positive")
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "drange-gen: -parallel must be non-negative")
		os.Exit(2)
	}

	// Track which identity flags were set explicitly, so loading a profile
	// for a different device still errors loudly on a mismatch while plain
	// `-profile-in file` works without repeating the identity flags.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	ctx := context.Background()
	var profile *drange.Profile
	if *profileIn != "" {
		data, err := os.ReadFile(*profileIn)
		if err != nil {
			fatal(err)
		}
		profile, err = drange.DecodeProfile(data)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "drange-gen: loaded profile %s (manufacturer %s, serial %d, %d RNG cells, %d banks)\n",
			*profileIn, profile.Manufacturer, profile.Serial, len(profile.Cells), profile.Banks())
	} else {
		var err error
		profile, err = drange.Characterize(ctx,
			drange.WithManufacturer(*manufacturer),
			drange.WithSerial(*serial),
			drange.WithDeterministic(*deterministic),
		)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "drange-gen: identified %d RNG cells across %d banks\n",
			len(profile.Cells), profile.Banks())
	}
	if *profileOut != "" {
		f, err := os.OpenFile(*profileOut, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
		if err != nil {
			fatal(err)
		}
		if err := profile.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "drange-gen: wrote profile to %s\n", *profileOut)
	}

	opts := []drange.Option{drange.WithShards(*parallel)}
	if *profileIn != "" {
		// Explicit identity flags cross-check the loaded profile. The
		// deterministic flag is checked here because Open treats
		// WithDeterministic as an override, not an identity.
		if explicit["manufacturer"] {
			opts = append(opts, drange.WithManufacturer(*manufacturer))
		}
		if explicit["serial"] {
			opts = append(opts, drange.WithSerial(*serial))
		}
		if explicit["deterministic"] && *deterministic != profile.Characterization.Deterministic {
			fatal(fmt.Errorf("profile %s was characterized with deterministic=%v, not %v",
				*profileIn, profile.Characterization.Deterministic, *deterministic))
		}
	}
	src, err := drange.Open(ctx, profile, opts...)
	if err != nil {
		fatal(err)
	}
	defer src.Close()

	buf := make([]byte, *nBytes)
	if _, err := src.Read(buf); err != nil {
		fatal(err)
	}
	if *parallel > 0 {
		st := src.Stats()
		fmt.Fprintf(os.Stderr, "drange-gen: %d shards, aggregate %.1f Mb/s simulated (64-bit latency %.0f ns)\n",
			len(st.Shards), st.AggregateThroughputMbps, st.Latency64NS)
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o600); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "drange-gen: wrote %d bytes to %s\n", len(buf), *out)
		return
	}
	fmt.Println(hex.EncodeToString(buf))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "drange-gen: %v\n", err)
	os.Exit(1)
}
