// Command drange-soak is the soak/conformance harness over the D-RaNGe
// runtime: it drives the synthetic memory-request profiles of
// internal/workload as random-number demand against simulated, faulty or
// pooled sources for a configurable wall-clock duration, with the online
// health-test subsystem attached, and emits a JSON report of throughput,
// health-test trip counts and a NIST summary per workload scenario.
//
// The harness exists to *prove* the health tests catch real failure modes: a
// healthy device must soak with zero trips, a stuck-column device must trip
// the RCT/APT on every read, and a pool with a faulty member must evict it
// while reads keep succeeding — and CI asserts exactly that over this tool's
// JSON output.
//
// Profiles are characterized on the pristine simulator; the backend under
// test is injected at Open, modelling a device that degraded *after*
// characterization (the paper's temperature/aging concern — Section 5.3).
//
// Examples:
//
//	drange-soak -duration 10s -deterministic                 # healthy soak
//	drange-soak -duration 10s -backend faulty -startup-bits -1
//	drange-soak -duration 10s -devices 4 -faulty-member 2 -policy evict
//	drange-soak -duration 10s -devices 3 -faulty-member 1 -tier drbg  # DRBG tier over a degraded pool
//	drange-soak -duration 30s -workloads stream-like,gcc-like -out report.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/drange"
	"repro/internal/nist"
	"repro/internal/workload"
)

// backendOpts collects repeated -backend-opt key=value flags.
type backendOpts map[string]string

func (b backendOpts) String() string {
	parts := make([]string, 0, len(b))
	for k, v := range b {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (b backendOpts) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	b[k] = v
	return nil
}

// tripReport is the health-test trip accounting of one scenario (or the run
// totals).
type tripReport struct {
	RCT     int64 `json:"rct"`
	APT     int64 `json:"apt"`
	Bias    int64 `json:"bias"`
	Blocked int64 `json:"blocked_windows"`
	Total   int64 `json:"total"`
}

func (t *tripReport) add(h *drange.HealthStats) {
	if h == nil {
		return
	}
	t.RCT += h.RCTTrips
	t.APT += h.APTTrips
	t.Bias += h.BiasTrips
	t.Blocked += h.BlockedWindows
	t.Total += h.TotalTrips
}

// nistSummary condenses a NIST suite run for the report.
type nistSummary struct {
	Bits       int    `json:"bits"`
	Passed     int    `json:"passed"`
	Applicable int    `json:"applicable"`
	AllPass    bool   `json:"all_pass"`
	Skipped    string `json:"skipped,omitempty"`
}

// scenarioReport is the outcome of soaking one workload profile.
type scenarioReport struct {
	Workload string `json:"workload"`
	// Requests/ReadsOK/ReadErrors/HealthErrors count the request loop:
	// every request reads -bytes-per-request bytes; HealthErrors is the
	// subset of failures that were typed *drange.HealthError.
	Requests     int64 `json:"requests"`
	ReadsOK      int64 `json:"reads_ok"`
	ReadErrors   int64 `json:"read_errors"`
	HealthErrors int64 `json:"health_errors"`
	Bytes        int64 `json:"bytes"`
	// StartupFailed reports that the source never opened because the
	// startup self-test rejected the device.
	StartupFailed bool   `json:"startup_failed,omitempty"`
	OpenError     string `json:"open_error,omitempty"`
	// WallMS is the scenario's wall-clock budget actually spent;
	// WallMbps the delivered wall-clock rate; SimMbps the simulated
	// aggregate harvest rate from Stats.
	WallMS   float64 `json:"wall_ms"`
	WallMbps float64 `json:"wall_mbps"`
	SimMbps  float64 `json:"sim_mbps"`
	// LatencyP50MS/LatencyP99MS are wall-clock per-request read latency
	// percentiles over the scenario's successful requests, in milliseconds.
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	// DeliveredBits and the tier counters snapshot the source's final
	// Stats(): serving-core accounting is success-only, so after a clean
	// scenario (tier_raw_bytes + tier_drbg_bytes) * 8 == delivered_bits —
	// CI asserts exactly that on the healthy soak.
	DeliveredBits int64 `json:"delivered_bits"`
	TierRawReads  int64 `json:"tier_raw_reads"`
	TierRawBytes  int64 `json:"tier_raw_bytes"`
	TierDRBGReads int64 `json:"tier_drbg_reads"`
	TierDRBGBytes int64 `json:"tier_drbg_bytes"`
	// DevicesEvicted counts pool members terminally evicted during the
	// scenario; Readmissions and Recharacterizations sum the members'
	// self-healing lifecycle counters, and Devices carries the per-device
	// lifecycle breakdown (state, reason, counters) so conformance scenarios
	// can assert on *why* a member left serving.
	DevicesEvicted      int                 `json:"devices_evicted"`
	Readmissions        int64               `json:"readmissions"`
	Recharacterizations int64               `json:"recharacterizations"`
	Devices             []deviceReport      `json:"devices,omitempty"`
	Trips               tripReport          `json:"trips"`
	Health              *drange.HealthStats `json:"health,omitempty"`
	// DRBG carries the DRBG-tier counters (reseeds, generates, entropy
	// credit) when the scenario serves through -tier drbg.
	DRBG *drange.DRBGStats `json:"drbg,omitempty"`
	NIST *nistSummary      `json:"nist,omitempty"`
}

// deviceReport is one pool member's lifecycle state at scenario end.
type deviceReport struct {
	Device  int    `json:"device"`
	Serial  uint64 `json:"serial"`
	Backend string `json:"backend"`
	// State is the lifecycle state ("serving", "quarantined",
	// "recharacterizing", "readmitting", "evicted"); Reason records why the
	// member last left serving (empty while healthy).
	State   string `json:"state"`
	Reason  string `json:"reason,omitempty"`
	Evicted bool   `json:"evicted"`
	// The self-healing counters mirror drange.PoolDeviceStats.
	Readmissions        int64   `json:"readmissions"`
	Recharacterizations int64   `json:"recharacterizations"`
	RecharFailures      int64   `json:"rechar_failures"`
	LastRecharMS        float64 `json:"last_rechar_ms,omitempty"`
	ProfileDeltas       int     `json:"profile_deltas,omitempty"`
}

// totalsReport aggregates every scenario.
type totalsReport struct {
	Requests        int64      `json:"requests"`
	ReadsOK         int64      `json:"reads_ok"`
	ReadErrors      int64      `json:"read_errors"`
	HealthErrors    int64      `json:"health_errors"`
	Bytes           int64      `json:"bytes"`
	StartupFailures int64      `json:"startup_failures"`
	DevicesEvicted  int        `json:"devices_evicted"`
	Readmissions    int64      `json:"readmissions"`
	Trips           tripReport `json:"trips"`
}

// report is the tool's JSON output.
type report struct {
	Config    map[string]any   `json:"config"`
	Scenarios []scenarioReport `json:"scenarios"`
	Totals    totalsReport     `json:"totals"`
}

func main() {
	bopts := backendOpts{}
	fopts := backendOpts{}
	var (
		duration      = flag.Duration("duration", 30*time.Second, "total soak wall-clock budget, split evenly across the selected workloads")
		workloads     = flag.String("workloads", "all", "comma-separated workload profile names (see internal/workload), or \"all\"")
		manufacturer  = flag.String("manufacturer", "A", "DRAM manufacturer profile: A, B or C")
		serial        = flag.Uint64("serial", 1, "first device serial (pools use serial..serial+N-1)")
		deterministic = flag.Bool("deterministic", false, "seeded noise source (reproducible soak, NOT for keys)")
		devices       = flag.Int("devices", 1, "number of pool devices (1 opens a single Source unless -policy evict)")
		parallel      = flag.Int("parallel", 1, "harvesting shards per device")
		backend       = flag.String("backend", "", "device backend for every device: sim (default), faulty, or a registered name")
		tier          = flag.String("tier", "raw", "serving tier: raw (physical harvested bits) or drbg (ChaCha20 DRBG reseeded from the health-screened harvest; implies the online health tests)")
		faultyMember  = flag.Int("faulty-member", -1, "pool member index opened through the faulty backend (default scenario: every column stuck at 1; override with -faulty-opt)")
		rechar        = flag.Bool("recharacterize", false, "self-healing pools: quarantine evicted members, re-characterize them in the background and readmit them (WithRecharacterization)")
		settle        = flag.Duration("settle", 30*time.Second, "with -recharacterize, how long after the soak budget to wait for quarantined members to finish re-characterizing before the final snapshot")
		policy        = flag.String("policy", "", "health action on a trip: error, block, evict, or off (default: error; evict for pools)")
		symbolBits    = flag.Int("symbol-bits", 1, "RCT/APT symbol width in bits")
		startupBits   = flag.Int("startup-bits", 4096, "startup self-test sample size in bits (negative disables)")
		rows          = flag.Int("rows", 64, "rows per bank to characterize (the soak needs working devices, not maximal throughput)")
		words         = flag.Int("words", 8, "DRAM words per row to characterize")
		banks         = flag.Int("banks", 4, "banks to characterize (0 = all)")
		perRequest    = flag.Int("bytes-per-request", 32, "random bytes read per workload request")
		nistBits      = flag.Int("nist-bits", 20000, "bits read after each soak for the NIST summary (0 disables)")
		out           = flag.String("out", "", "write the JSON report to this file instead of stdout")
	)
	flag.Var(bopts, "backend-opt", "backend option key=value (repeatable)")
	flag.Var(fopts, "faulty-opt", "faulty-member backend option key=value (repeatable; default stuck=1,stuck-value=1)")
	flag.Parse()

	if *duration <= 0 {
		fatal(fmt.Errorf("-duration must be positive"))
	}
	if *devices < 1 {
		fatal(fmt.Errorf("-devices must be at least 1"))
	}
	if *perRequest < 1 {
		fatal(fmt.Errorf("-bytes-per-request must be at least 1"))
	}
	if *faultyMember >= *devices {
		fatal(fmt.Errorf("-faulty-member %d outside the %d devices", *faultyMember, *devices))
	}
	if *tier != "raw" && *tier != "drbg" {
		fatal(fmt.Errorf("-tier must be raw or drbg"))
	}
	if *backend == "faulty" && len(bopts) == 0 {
		// The faulty backend's default is every column stuck: the worst case.
		bopts["stuck"] = "1"
	}
	if len(fopts) > 0 && *faultyMember < 0 {
		fatal(fmt.Errorf("-faulty-opt needs -faulty-member"))
	}
	if len(fopts) == 0 {
		fopts = backendOpts{"stuck": "1", "stuck-value": "1"}
	}

	profiles := pickWorkloads(*workloads)
	htp, healthOn := healthPolicy(*policy, *symbolBits, *startupBits)
	if *tier == "drbg" && !healthOn {
		fatal(fmt.Errorf("-tier drbg requires the health tests (the DRBG expands screened entropy); drop -policy off"))
	}
	// A faulty member or an explicit evict policy forces the pool path even
	// for one device; resolve the effective trip policy from the same facts
	// so the report's config block matches what actually ran.
	isPool := *devices > 1 || *faultyMember >= 0 || htp.OnFailure == drange.HealthActionEvict
	effectivePolicy := "off"
	if healthOn {
		effectivePolicy = htp.OnFailure.String()
		if htp.OnFailure == drange.HealthActionDefault {
			if isPool {
				effectivePolicy = drange.HealthActionEvict.String()
			} else {
				effectivePolicy = drange.HealthActionError.String()
			}
		}
	}

	ctx := context.Background()
	deviceProfiles := characterizeAll(ctx, *devices, *manufacturer, *serial, *deterministic, *rows, *words, *banks)

	rep := report{Config: map[string]any{
		"duration":          duration.String(),
		"devices":           *devices,
		"parallel":          *parallel,
		"backend":           backendName(*backend),
		"backend_opts":      bopts.String(),
		"faulty_member":     *faultyMember,
		"faulty_opts":       fopts.String(),
		"recharacterize":    *rechar,
		"policy":            effectivePolicy,
		"symbol_bits":       *symbolBits,
		"startup_bits":      *startupBits,
		"tier":              *tier,
		"bytes_per_request": *perRequest,
		"deterministic":     *deterministic,
		"workloads":         names(profiles),
	}}

	perScenario := *duration / time.Duration(len(profiles))
	for i, wp := range profiles {
		opts := []drange.Option{drange.WithShards(*parallel)}
		if *backend != "" {
			opts = append(opts, drange.WithBackend(*backend, bopts))
		}
		if *faultyMember >= 0 {
			opts = append(opts, drange.WithDeviceBackend(*faultyMember, "faulty", fopts))
		}
		if *rechar {
			opts = append(opts, drange.WithRecharacterization(drange.RecharacterizationPolicy{}))
		}
		var settleBudget time.Duration
		if *rechar {
			settleBudget = *settle
		}
		if healthOn {
			opts = append(opts, drange.WithHealthTests(htp))
		}
		if *tier == "drbg" {
			opts = append(opts, drange.WithDRBG(drange.DRBGPolicy{}))
		}
		sc := soakScenario(ctx, wp, scenarioConfig{
			profiles:   deviceProfiles,
			opts:       opts,
			pool:       isPool,
			budget:     perScenario,
			perRequest: *perRequest,
			nistBits:   *nistBits,
			seed:       *serial + uint64(i)*1000,
			settle:     settleBudget,
		})
		rep.Scenarios = append(rep.Scenarios, sc)

		rep.Totals.Requests += sc.Requests
		rep.Totals.ReadsOK += sc.ReadsOK
		rep.Totals.ReadErrors += sc.ReadErrors
		rep.Totals.HealthErrors += sc.HealthErrors
		rep.Totals.Bytes += sc.Bytes
		rep.Totals.DevicesEvicted += sc.DevicesEvicted
		rep.Totals.Readmissions += sc.Readmissions
		if sc.StartupFailed {
			rep.Totals.StartupFailures++
		}
		rep.Totals.Trips.add(sc.Health)
		fmt.Fprintf(os.Stderr, "drange-soak: %-16s %7d requests, %5.1f Mb/s wall, p50 %.2f ms, p99 %.2f ms, trips %d, health errors %d\n",
			wp.Name, sc.Requests, sc.WallMbps, sc.LatencyP50MS, sc.LatencyP99MS, sc.Trips.Total, sc.HealthErrors)
	}

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// scenarioConfig carries one scenario's fixed inputs.
type scenarioConfig struct {
	profiles   []*drange.Profile
	opts       []drange.Option
	pool       bool
	budget     time.Duration
	perRequest int
	nistBits   int
	seed       uint64
	// settle bounds a post-soak wait for the self-healing lifecycle to
	// quiesce: a member quarantined near the end of the budget is given this
	// long to finish re-characterizing before the final snapshot, so the
	// report records the lifecycle outcome, not a race with it.
	settle time.Duration
}

// settleLifecycle polls the source until no member is in a transitional
// lifecycle state (quarantined, recharacterizing, readmitting) or the budget
// runs out. It returns immediately for sources without lifecycle stats.
func settleLifecycle(src drange.Source, budget time.Duration) {
	deadline := time.Now().Add(budget)
	for {
		lc := src.Stats().Lifecycle
		if lc == nil || lc.Quarantined+lc.Recharacterizing+lc.Readmitting == 0 {
			return
		}
		if !time.Now().Before(deadline) {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// soakScenario opens a fresh source (so health counters are per-scenario),
// replays the workload's request trace as random-number demand until the
// wall-clock budget runs out, and snapshots the health and NIST state.
func soakScenario(ctx context.Context, wp workload.Profile, cfg scenarioConfig) scenarioReport {
	sc := scenarioReport{Workload: wp.Name}
	start := time.Now()

	var src drange.Source
	var err error
	if cfg.pool {
		src, err = drange.OpenPool(ctx, cfg.profiles, cfg.opts...)
	} else {
		src, err = drange.Open(ctx, cfg.profiles[0], cfg.opts...)
	}
	if err != nil {
		var herr *drange.HealthError
		if errors.As(err, &herr) && herr.Test == "startup" {
			// The startup self-test caught the device before a byte was
			// served — for a conformance run over a faulty backend this IS
			// the expected outcome; record it as such.
			sc.StartupFailed = true
		}
		sc.OpenError = err.Error()
		sc.WallMS = float64(time.Since(start).Microseconds()) / 1000.0
		return sc
	}
	defer src.Close()

	geom := cfg.profiles[0].Geometry
	trace, err := workload.Generate(wp, workload.Config{
		Banks:       geom.Banks,
		RowsPerBank: geom.RowsPerBank,
		WordsPerRow: geom.ColsPerRow / geom.WordBits,
		DurationNS:  100_000, // 100 µs of simulated arrivals per trace pass
		Seed:        cfg.seed,
	})
	if err != nil {
		sc.OpenError = err.Error()
		return sc
	}
	if len(trace) == 0 {
		trace = append(trace, workload.Request{})
	}

	deadline := start.Add(cfg.budget)
	buf := make([]byte, cfg.perRequest)
	var lats []time.Duration
	for time.Now().Before(deadline) {
		// Each trace request is one unit of random-number demand (the trace's
		// arrival intensity is what differentiates the workloads); the trace
		// replays until the wall-clock budget runs out.
		for range trace {
			if !time.Now().Before(deadline) {
				break
			}
			sc.Requests++
			t0 := time.Now()
			if _, err := src.Read(buf); err != nil {
				sc.ReadErrors++
				var herr *drange.HealthError
				if errors.As(err, &herr) {
					sc.HealthErrors++
					continue // the source stays usable; keep soaking
				}
				sc.OpenError = err.Error()
				sc.WallMS = float64(time.Since(start).Microseconds()) / 1000.0
				return sc
			}
			if len(lats) < maxLatencySamples {
				lats = append(lats, time.Since(t0))
			}
			sc.ReadsOK++
			sc.Bytes += int64(len(buf))
		}
	}
	wall := time.Since(start)
	sc.WallMS = float64(wall.Microseconds()) / 1000.0
	if cfg.settle > 0 {
		settleLifecycle(src, cfg.settle)
	}
	if wall > 0 {
		sc.WallMbps = float64(sc.Bytes) * 8 / wall.Seconds() / 1e6
	}
	sc.LatencyP50MS, sc.LatencyP99MS = latencyPercentiles(lats)

	st := src.Stats()
	sc.SimMbps = st.AggregateThroughputMbps
	sc.Health = st.Health
	sc.DRBG = st.DRBG
	sc.Trips.add(st.Health)

	if cfg.nistBits > 0 {
		sc.NIST = &nistSummary{Bits: cfg.nistBits}
		bits, err := src.ReadBits(cfg.nistBits)
		if err != nil {
			sc.NIST.Skipped = fmt.Sprintf("sample read failed: %v", err)
		} else if res, err := nist.RunAll(bits, nist.DefaultAlpha); err != nil {
			sc.NIST.Skipped = err.Error()
		} else {
			sc.NIST.Passed, sc.NIST.Applicable = res.Passed()
			sc.NIST.AllPass = res.AllPass()
		}
		// Refresh the trip accounting: the sample read runs the health tests
		// too, and on a faulty source it is often what trips them.
		sc.Health = src.Stats().Health
		sc.Trips = tripReport{}
		sc.Trips.add(sc.Health)
	}

	// The delivery/tier snapshot comes last so it covers the NIST sample read
	// too; every read the scenario issued is byte-aligned, so the tier byte
	// counters must account for exactly the delivered bits.
	final := src.Stats()
	sc.DeliveredBits = final.BitsDelivered
	sc.TierRawReads = final.TierRaw.Reads
	sc.TierRawBytes = final.TierRaw.Bytes
	sc.TierDRBGReads = final.TierDRBG.Reads
	sc.TierDRBGBytes = final.TierDRBG.Bytes
	for _, d := range final.Devices {
		if d.Evicted {
			sc.DevicesEvicted++
		}
		sc.Readmissions += d.Readmissions
		sc.Recharacterizations += d.Recharacterizations
		sc.Devices = append(sc.Devices, deviceReport{
			Device:              d.Device,
			Serial:              d.Serial,
			Backend:             d.Backend,
			State:               d.State,
			Reason:              d.Reason,
			Evicted:             d.Evicted,
			Readmissions:        d.Readmissions,
			Recharacterizations: d.Recharacterizations,
			RecharFailures:      d.RecharFailures,
			LastRecharMS:        d.LastRecharMS,
			ProfileDeltas:       d.ProfileDeltas,
		})
	}
	return sc
}

// maxLatencySamples bounds the per-scenario latency sample buffer; a soak
// long enough to overflow it computes its percentiles over the first million
// requests rather than growing without bound.
const maxLatencySamples = 1 << 20

// latencyPercentiles returns the p50/p99 of the successful-request read
// latencies in milliseconds (zeros when no request succeeded). lats is
// reordered in place.
func latencyPercentiles(lats []time.Duration) (p50, p99 float64) {
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pick := func(q float64) float64 {
		return float64(lats[int(q*float64(len(lats)-1))].Nanoseconds()) / 1e6
	}
	return pick(0.50), pick(0.99)
}

// characterizeAll runs the one-time characterization for every device serial
// on the pristine simulator.
func characterizeAll(ctx context.Context, n int, manufacturer string, serial uint64, deterministic bool, rows, words, banks int) []*drange.Profile {
	out := make([]*drange.Profile, 0, n)
	for i := 0; i < n; i++ {
		p, err := drange.Characterize(ctx,
			drange.WithManufacturer(manufacturer),
			drange.WithSerial(serial+uint64(i)),
			drange.WithDeterministic(deterministic),
			drange.WithProfilingRegion(rows, words, banks),
		)
		if err != nil {
			fatal(fmt.Errorf("characterizing device %d: %w", i, err))
		}
		fmt.Fprintf(os.Stderr, "drange-soak: device %d (serial %d): %d RNG cells across %d banks\n",
			i, serial+uint64(i), len(p.Cells), p.Banks())
		out = append(out, p)
	}
	return out
}

// pickWorkloads resolves the -workloads flag.
func pickWorkloads(spec string) []workload.Profile {
	if spec == "" || spec == "all" {
		return workload.Profiles()
	}
	var out []workload.Profile
	for _, name := range strings.Split(spec, ",") {
		p, err := workload.ProfileByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		fatal(fmt.Errorf("-workloads selected nothing"))
	}
	return out
}

// healthPolicy resolves the -policy/-symbol-bits/-startup-bits flags.
func healthPolicy(policy string, symbolBits, startupBits int) (drange.HealthTestPolicy, bool) {
	p := drange.HealthTestPolicy{SymbolBits: symbolBits, StartupBits: startupBits}
	switch policy {
	case "off":
		return p, false
	case "", "default":
		// surface default: error for single sources, evict for pools
	case "error":
		p.OnFailure = drange.HealthActionError
	case "block":
		p.OnFailure = drange.HealthActionBlock
	case "evict":
		p.OnFailure = drange.HealthActionEvict
	default:
		fatal(fmt.Errorf("unknown -policy %q (want error, block, evict or off)", policy))
	}
	return p, true
}

func backendName(b string) string {
	if b == "" {
		return "sim"
	}
	return b
}

func names(ps []workload.Profile) []string {
	out := make([]string, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.Name)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "drange-soak: %v\n", err)
	os.Exit(1)
}
