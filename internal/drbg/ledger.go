package drbg

import "sync/atomic"

// Ledger is the entropy credit account for one raw-entropy producer (one
// Generator, or one pool member). The health monitor credits bits as whole
// bias windows pass the continuous 90B tests — screened bits are the only
// bits that count — and the serving layer debits the full seed length every
// time those bits are consumed to instantiate or reseed a DRBG. The balance
// is therefore the screened raw entropy harvested but not yet folded into
// DRBG state; it is an audit trail, not a gate — the DRBG reseed schedule,
// not the balance, decides when to harvest.
//
// All methods are safe for concurrent use (the stats path reads while the
// serving path writes).
type Ledger struct {
	credited atomic.Int64 // drange:atomic
	debited  atomic.Int64 // drange:atomic
}

// CreditBits records n raw bits that passed the continuous health tests.
// It implements the health package's credit-sink hook.
func (l *Ledger) CreditBits(n int64) { l.credited.Add(n) }

// DebitBits records n raw bits consumed as DRBG seed material.
func (l *Ledger) DebitBits(n int64) { l.debited.Add(n) }

// Credited returns the lifetime total of health-screened bits credited.
func (l *Ledger) Credited() int64 { return l.credited.Load() }

// Debited returns the lifetime total of bits consumed as seed material.
func (l *Ledger) Debited() int64 { return l.debited.Load() }

// Balance returns Credited minus Debited. A negative balance is possible
// and meaningful: seed harvests screen bits through the health monitor in
// window-sized quanta, so a seed consumed before its window completes is
// debited before it is credited.
func (l *Ledger) Balance() int64 { return l.credited.Load() - l.debited.Load() }
