package drbg

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// newBoth instantiates both constructions from deterministic seeds so the
// shared behavioural tests run against each.
func newBoth(t *testing.T, opts Options) map[string]DRBG {
	t.Helper()
	both := make(map[string]DRBG)
	seed := make([]byte, ctrSeedLen)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	c, err := NewCTR(seed, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	both[c.Algorithm()] = c
	h, err := NewChaCha(seed[:chachaSeedLen], nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	both[h.Algorithm()] = h
	return both
}

func TestSeedLengthValidation(t *testing.T) {
	if _, err := NewCTR(make([]byte, 47), nil, Options{}); err == nil {
		t.Error("NewCTR accepted a 47-byte seed")
	}
	if _, err := NewChaCha(make([]byte, 31), nil, Options{}); err == nil {
		t.Error("NewChaCha accepted a 31-byte seed")
	}
	if _, err := NewCTR(make([]byte, ctrSeedLen), make([]byte, ctrSeedLen+1), Options{}); err == nil {
		t.Error("NewCTR accepted an oversized personalization string")
	}
	if _, err := NewChaCha(make([]byte, chachaSeedLen), make([]byte, chachaSeedLen+1), Options{}); err == nil {
		t.Error("NewChaCha accepted an oversized personalization string")
	}
	for name, d := range newBoth(t, Options{}) {
		if err := d.Reseed(make([]byte, d.SeedLen()-1), nil); err == nil {
			t.Errorf("%s: Reseed accepted a short seed", name)
		}
	}
}

func TestRequestLimit(t *testing.T) {
	for name, d := range newBoth(t, Options{MaxRequestBytes: 128}) {
		if err := d.Generate(make([]byte, 129), nil); !errors.Is(err, ErrRequestTooLarge) {
			t.Errorf("%s: want ErrRequestTooLarge, got %v", name, err)
		}
		if err := d.Generate(make([]byte, 128), nil); err != nil {
			t.Errorf("%s: in-limit request failed: %v", name, err)
		}
	}
	// The SP 800-90A hard ceiling applies even when the option asks for more.
	for name, d := range newBoth(t, Options{MaxRequestBytes: MaxRequestBytes * 2}) {
		if err := d.Generate(make([]byte, MaxRequestBytes+1), nil); !errors.Is(err, ErrRequestTooLarge) {
			t.Errorf("%s: hard per-request ceiling not enforced: %v", name, err)
		}
	}
}

func TestReseedInterval(t *testing.T) {
	for name, d := range newBoth(t, Options{ReseedInterval: 3}) {
		out := make([]byte, 16)
		for i := 0; i < 3; i++ {
			if d.NeedsReseed() {
				t.Fatalf("%s: NeedsReseed before interval elapsed (request %d)", name, i)
			}
			if err := d.Generate(out, nil); err != nil {
				t.Fatalf("%s: generate %d: %v", name, i, err)
			}
		}
		if !d.NeedsReseed() {
			t.Errorf("%s: NeedsReseed false after interval elapsed", name)
		}
		if err := d.Generate(out, nil); !errors.Is(err, ErrReseedRequired) {
			t.Errorf("%s: want ErrReseedRequired, got %v", name, err)
		}
		if err := d.Reseed(make([]byte, d.SeedLen()), nil); err != nil {
			t.Fatalf("%s: reseed: %v", name, err)
		}
		if d.NeedsReseed() {
			t.Errorf("%s: NeedsReseed still true after Reseed", name)
		}
		if err := d.Generate(out, nil); err != nil {
			t.Errorf("%s: generate after reseed: %v", name, err)
		}
		if got := d.Reseeds(); got != 2 { // instantiate + explicit reseed
			t.Errorf("%s: Reseeds() = %d, want 2", name, got)
		}
		if got := d.Generates(); got != 4 {
			t.Errorf("%s: Generates() = %d, want 4", name, got)
		}
	}
}

// TestFirstInterval checks the pool-staggering knob: the first seed serves
// only FirstInterval requests, later seeds the full interval.
func TestFirstInterval(t *testing.T) {
	for name, d := range newBoth(t, Options{ReseedInterval: 10, FirstInterval: 2}) {
		out := make([]byte, 8)
		for i := 0; i < 2; i++ {
			if err := d.Generate(out, nil); err != nil {
				t.Fatalf("%s: generate %d: %v", name, i, err)
			}
		}
		if !d.NeedsReseed() {
			t.Fatalf("%s: FirstInterval=2 not honoured", name)
		}
		if err := d.Reseed(make([]byte, d.SeedLen()), nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := d.Generate(out, nil); err != nil {
				t.Fatalf("%s: post-reseed generate %d: %v", name, i, err)
			}
		}
		if !d.NeedsReseed() {
			t.Errorf("%s: full interval not honoured after first reseed", name)
		}
	}
}

// TestDeterminismAndDivergence: identical seeds give identical streams;
// a reseed or additional input diverges them.
func TestDeterminismAndDivergence(t *testing.T) {
	for _, name := range []string{"ctr-aes256", "chacha20"} {
		a := newBoth(t, Options{})[name]
		b := newBoth(t, Options{})[name]
		outA := make([]byte, 96)
		outB := make([]byte, 96)
		if err := a.Generate(outA, nil); err != nil {
			t.Fatal(err)
		}
		if err := b.Generate(outB, nil); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(outA, outB) {
			t.Errorf("%s: same seed, different output", name)
		}
		// Additional input must change the stream.
		if err := a.Generate(outA, []byte{1}); err != nil {
			t.Fatal(err)
		}
		if err := b.Generate(outB, nil); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(outA, outB) {
			t.Errorf("%s: additional input did not change the output", name)
		}
	}
}

// TestChaChaBacktrackingErasure: consecutive Generate outputs must differ
// (the key is replaced every request) and a zeroed request after a large one
// must not replay keystream.
func TestChaChaOutputsNeverRepeat(t *testing.T) {
	d, err := NewChaCha(make([]byte, chachaSeedLen), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[16]byte]bool)
	out := make([]byte, 16)
	for i := 0; i < 1000; i++ {
		if err := d.Generate(out, nil); err != nil {
			t.Fatal(err)
		}
		var k [16]byte
		copy(k[:], out)
		if seen[k] {
			t.Fatalf("output repeated at request %d", i)
		}
		seen[k] = true
	}
}

// TestChaChaGenerateNoAlloc enforces the BENCH_pr7 claim at the unit level:
// the fast-tier Generate allocates nothing once instantiated.
func TestChaChaGenerateNoAlloc(t *testing.T) {
	d, err := NewChaCha(make([]byte, chachaSeedLen), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		if err := d.Generate(out, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ChaCha Generate allocates %.1f times per op, want 0", allocs)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ReseedInterval != DefaultReseedInterval || o.MaxRequestBytes != DefaultMaxRequestBytes {
		t.Errorf("zero Options resolved to %+v", o)
	}
	if o.FirstInterval != o.ReseedInterval {
		t.Errorf("FirstInterval default = %d, want ReseedInterval %d", o.FirstInterval, o.ReseedInterval)
	}
	o = Options{ReseedInterval: 10, FirstInterval: 99}.withDefaults()
	if o.FirstInterval != 10 {
		t.Errorf("FirstInterval above ReseedInterval not clamped: %d", o.FirstInterval)
	}
}

func TestLedger(t *testing.T) {
	var l Ledger
	l.CreditBits(4096)
	l.CreditBits(4096)
	l.DebitBits(384)
	if got := l.Credited(); got != 8192 {
		t.Errorf("Credited() = %d, want 8192", got)
	}
	if got := l.Debited(); got != 384 {
		t.Errorf("Debited() = %d, want 384", got)
	}
	if got := l.Balance(); got != 8192-384 {
		t.Errorf("Balance() = %d, want %d", got, 8192-384)
	}
	// Negative balances are representable (seed debited before its screening
	// window completes).
	var early Ledger
	early.DebitBits(384)
	if got := early.Balance(); got != -384 {
		t.Errorf("early Balance() = %d, want -384", got)
	}
}

// TestLedgerConcurrent drives credits and debits from concurrent goroutines;
// run under -race this checks the atomic contract.
func TestLedgerConcurrent(t *testing.T) {
	var l Ledger
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.CreditBits(2)
				l.DebitBits(1)
				_ = l.Balance()
			}
		}()
	}
	wg.Wait()
	if got := l.Balance(); got != 8000 {
		t.Errorf("Balance() = %d, want 8000", got)
	}
}
