// Package drbg implements the deterministic random bit generators behind
// the drange two-tier serving pipeline: an SP 800-90A CTR-DRBG (AES-256,
// no derivation function) and a ChaCha20-based fast-key-erasure DRBG, both
// behind one DRBG interface (instantiate via the constructors, then
// Reseed/Generate), plus the entropy credit Ledger that keeps the raw-entropy
// accounting auditable when a DRBG expands it.
//
// The physical D-RaNGe harvest rate tops out well below line rate — every
// raw bit is a real activation-failure sample — so production serving uses
// the standard construction: the TRNG seeds and periodically reseeds a fast
// deterministic generator, and callers who need raw physics keep the raw
// tier. A DRBG instance is deliberately not safe for concurrent use, exactly
// like health.Monitor: the drange facade drives one instance per source (or
// per pool member) under the source's lock, which is also what gives the
// reseed scheduler one well-defined request order to stage reseeds against.
//
// Both constructions are pinned by known-answer tests: the CTR-DRBG against
// NIST CAVP vectors and the ChaCha20 core against the RFC 8439 test vectors,
// with the ChaCha20 DRBG construction frozen by golden vectors under
// testdata/.
package drbg

import (
	"errors"
	"fmt"
)

// DRBG is one deterministic random bit generator instance. Constructors
// correspond to SP 800-90A Instantiate: they consume a full seed of fresh
// entropy and an optional personalization string. Instances are not safe for
// concurrent use; the caller serializes (and the drange facade does so under
// its source lock).
type DRBG interface {
	// Generate fills out with pseudorandom bytes derived from the current
	// seed, mixing additional into the state first when non-nil. It fails
	// with ErrReseedRequired once the instance's reseed interval has elapsed
	// and with ErrRequestTooLarge when len(out) exceeds the per-request
	// limit — callers reseed or chunk, the instance never silently degrades.
	Generate(out, additional []byte) error
	// Reseed folds a fresh full seed of entropy (SeedLen bytes) and optional
	// additional input into the state and restarts the reseed interval.
	Reseed(entropy, additional []byte) error
	// SeedLen is the entropy input length in bytes required by the
	// constructor and by Reseed.
	SeedLen() int
	// NeedsReseed reports whether the reseed interval has elapsed, i.e.
	// whether the next Generate would fail with ErrReseedRequired.
	NeedsReseed() bool
	// Algorithm names the construction ("ctr-aes256" or "chacha20").
	Algorithm() string
	// Generates and Reseeds count successful Generate and Reseed/instantiate
	// operations over the instance's lifetime (instantiation counts as the
	// first reseed).
	Generates() int64
	Reseeds() int64
}

// Errors returned by Generate; package-level values so the serving fast path
// can return them without formatting (and so callers can errors.Is them).
var (
	// ErrReseedRequired means the reseed interval elapsed: Reseed with fresh
	// entropy before generating again.
	ErrReseedRequired = errors.New("drbg: reseed required: reseed interval elapsed")
	// ErrRequestTooLarge means a single Generate asked for more bytes than
	// the per-request limit; chunk the request.
	ErrRequestTooLarge = errors.New("drbg: generate request exceeds the per-request limit")
)

// Limits below mirror SP 800-90A Table 3 for the supported constructions.
const (
	// MaxRequestBytes is the hard SP 800-90A per-request ceiling
	// (2^19 bits = 64 KiB); Options.MaxRequestBytes may only lower it.
	MaxRequestBytes = 1 << 16
	// MaxReseedInterval is the hard ceiling on requests between reseeds.
	// SP 800-90A allows up to 2^48; the default below is far more
	// conservative because reseeding from D-RaNGe is cheap.
	MaxReseedInterval = 1 << 48
	// DefaultReseedInterval is the default number of Generate requests
	// served per seed.
	DefaultReseedInterval = 1 << 20
	// DefaultMaxRequestBytes is the default per-request limit.
	DefaultMaxRequestBytes = MaxRequestBytes
)

// Seed lengths per construction in bytes, exported so callers can size
// harvest buffers before instantiating.
const (
	// CTRSeedLen is the CTR_DRBG AES-256 no-df seed length (keylen +
	// blocklen).
	CTRSeedLen = ctrSeedLen
	// ChaChaSeedLen is the ChaCha20 DRBG seed length (one 256-bit key).
	ChaChaSeedLen = chachaSeedLen
)

// Options bound one instance: how many Generate requests a seed may serve
// and how large one request may be. The zero value selects the defaults.
type Options struct {
	// ReseedInterval is the number of Generate requests served before
	// NeedsReseed trips (0 selects DefaultReseedInterval; capped at
	// MaxReseedInterval).
	ReseedInterval int64
	// FirstInterval optionally shortens only the first interval (0 selects
	// ReseedInterval). The drange pool staggers member DRBGs with it so the
	// members' reseed points spread out instead of bunching at open+interval.
	FirstInterval int64
	// MaxRequestBytes is the per-Generate byte limit (0 selects
	// DefaultMaxRequestBytes; capped at MaxRequestBytes).
	MaxRequestBytes int
}

// withDefaults resolves zero fields and clamps to the SP 800-90A ceilings.
func (o Options) withDefaults() Options {
	if o.ReseedInterval <= 0 {
		o.ReseedInterval = DefaultReseedInterval
	}
	if o.ReseedInterval > MaxReseedInterval {
		o.ReseedInterval = MaxReseedInterval
	}
	if o.FirstInterval <= 0 || o.FirstInterval > o.ReseedInterval {
		o.FirstInterval = o.ReseedInterval
	}
	if o.MaxRequestBytes <= 0 || o.MaxRequestBytes > MaxRequestBytes {
		o.MaxRequestBytes = DefaultMaxRequestBytes
	}
	return o
}

// limiter is the shared interval/request bookkeeping embedded by both
// constructions: requests served since the last seed, lifetime counters, and
// the resolved bounds.
type limiter struct {
	opts Options
	// sinceSeed counts Generate requests since the last (re)seed; interval
	// is the budget for the current seed (FirstInterval for the first one).
	sinceSeed int64
	interval  int64

	generates int64
	reseeds   int64
}

// newLimiter records the instantiation itself as the first seeding (so
// Reseeds starts at 1) while keeping FirstInterval as the first budget —
// didReseed would promote it to the full interval.
func newLimiter(opts Options) limiter {
	o := opts.withDefaults()
	return limiter{opts: o, interval: o.FirstInterval, reseeds: 1}
}

// checkGenerate gates one Generate request of n bytes.
func (l *limiter) checkGenerate(n int) error {
	if n > l.opts.MaxRequestBytes {
		return ErrRequestTooLarge
	}
	if l.sinceSeed >= l.interval {
		return ErrReseedRequired
	}
	return nil
}

// didGenerate records one served request.
func (l *limiter) didGenerate() {
	l.sinceSeed++
	l.generates++
}

// didReseed restarts the interval (later intervals use the full budget).
func (l *limiter) didReseed() {
	l.sinceSeed = 0
	l.interval = l.opts.ReseedInterval
	l.reseeds++
}

func (l *limiter) NeedsReseed() bool { return l.sinceSeed >= l.interval }

// Generates returns the lifetime count of served Generate requests.
func (l *limiter) Generates() int64 { return l.generates }

// Reseeds returns the lifetime seeding count (instantiation included).
func (l *limiter) Reseeds() int64 { return l.reseeds }

// checkSeed validates an entropy input length against the construction's
// seed length.
func checkSeed(entropy []byte, seedLen int, algorithm string) error {
	if len(entropy) != seedLen {
		return fmt.Errorf("drbg: %s needs exactly %d bytes of entropy input, got %d", algorithm, seedLen, len(entropy))
	}
	return nil
}
