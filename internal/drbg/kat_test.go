package drbg

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ctrVector is one CAVP CTR_DRBG known-answer case: instantiate, optionally
// reseed, generate twice, compare the second output.
type ctrVector struct {
	name            string
	entropy         []byte
	personalization []byte
	reseedEntropy   []byte // nil when the file has no reseed step
	reseedAdd       []byte
	add1, add2      []byte
	haveAdd1        bool
	returned        []byte
}

// parseRSP reads a NIST CAVP .rsp response file. Only the key/value lines
// matter; [bracketed] parameter blocks and comments are skipped. The two
// AdditionalInput lines per COUNT are distinguished by order.
func parseRSP(t *testing.T, path string) []ctrVector {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	unhex := func(s string) []byte {
		b, err := hex.DecodeString(s)
		if err != nil {
			t.Fatalf("%s: bad hex %q: %v", path, s, err)
		}
		return b
	}

	var vecs []ctrVector
	var cur *ctrVector
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "[") {
			continue
		}
		key, val, _ := strings.Cut(line, "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "COUNT":
			vecs = append(vecs, ctrVector{name: fmt.Sprintf("%s/COUNT=%s", filepath.Base(path), val)})
			cur = &vecs[len(vecs)-1]
		case "EntropyInput":
			cur.entropy = unhex(val)
		case "PersonalizationString":
			cur.personalization = unhex(val)
		case "EntropyInputReseed":
			cur.reseedEntropy = unhex(val)
		case "AdditionalInputReseed":
			cur.reseedAdd = unhex(val)
		case "AdditionalInput":
			if !cur.haveAdd1 {
				cur.add1 = unhex(val)
				cur.haveAdd1 = true
			} else {
				cur.add2 = unhex(val)
			}
		case "ReturnedBits":
			cur.returned = unhex(val)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(vecs) == 0 {
		t.Fatalf("%s: no vectors parsed", path)
	}
	return vecs
}

// TestCTRCAVP pins the CTR_DRBG (AES-256, no df) construction against the
// NIST CAVP response-file vectors under testdata.
func TestCTRCAVP(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "ctr_drbg_aes256_no_df_*.rsp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no CTR_DRBG .rsp files under testdata")
	}
	for _, path := range files {
		for _, v := range parseRSP(t, path) {
			t.Run(v.name, func(t *testing.T) {
				d, err := NewCTR(v.entropy, v.personalization, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if v.reseedEntropy != nil {
					if err := d.Reseed(v.reseedEntropy, v.reseedAdd); err != nil {
						t.Fatal(err)
					}
				}
				out := make([]byte, len(v.returned))
				if err := d.Generate(out, v.add1); err != nil {
					t.Fatal(err)
				}
				if err := d.Generate(out, v.add2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(out, v.returned) {
					t.Errorf("ReturnedBits mismatch:\n got %x\nwant %x", out, v.returned)
				}
			})
		}
	}
}

// mustHex decodes compile-time hex constants.
func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestChaChaBlockRFC8439 pins the ChaCha20 block function against the
// RFC 8439 §2.3.2 test vector (key 00..1f, nonce 000000090000004a00000000,
// counter 1).
func TestChaChaBlockRFC8439(t *testing.T) {
	var key [chachaSeedLen]byte
	for i := range key {
		key[i] = byte(i)
	}
	// Nonce bytes 00 00 00 09 | 00 00 00 4a | 00 00 00 00 as LE words.
	var out [64]byte
	chachaBlock(&key, 1, 0x09000000, 0x4a000000, 0, &out)
	want := mustHex(t, "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
	if !bytes.Equal(out[:], want) {
		t.Errorf("keystream mismatch:\n got %x\nwant %x", out[:], want)
	}
}

// TestChaChaEncryptRFC8439 pins the full multi-block keystream against the
// RFC 8439 §2.4.2 encryption vector (the "sunscreen" plaintext, counter
// starting at 1).
func TestChaChaEncryptRFC8439(t *testing.T) {
	var key [chachaSeedLen]byte
	for i := range key {
		key[i] = byte(i)
	}
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.")
	want := mustHex(t, "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a35be6b40b8eedf2785e42874d")
	// Nonce bytes 00 00 00 00 | 00 00 00 4a | 00 00 00 00 as LE words.
	got := make([]byte, len(plaintext))
	var blk [64]byte
	for off, ctr := 0, uint32(1); off < len(plaintext); off, ctr = off+64, ctr+1 {
		chachaBlock(&key, ctr, 0, 0x4a000000, 0, &blk)
		for i := 0; off+i < len(plaintext) && i < 64; i++ {
			got[off+i] = plaintext[off+i] ^ blk[i]
		}
	}
	if !bytes.Equal(got, want) {
		t.Errorf("ciphertext mismatch:\n got %x\nwant %x", got, want)
	}
}

// chachaGoldenPath holds the golden vectors freezing the ChaCha20 DRBG
// construction (key schedule, nonce layout, domain separation, fast key
// erasure). The underlying block function is pinned independently by the
// RFC 8439 vectors above; these vectors pin everything this package builds
// on top of it. Regenerate with DRANGE_UPDATE_KAT=1 go test ./internal/drbg
// after an intentional construction change.
var chachaGoldenPath = filepath.Join("testdata", "chacha20_drbg_kat.txt")

// chachaGoldenTranscript runs the fixed operation sequence the golden file
// records and returns its transcript.
func chachaGoldenTranscript(t *testing.T) string {
	t.Helper()
	entropy := mustHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	reseed := mustHex(t, "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f")
	pers := []byte("drange golden kat")
	add := mustHex(t, "ffeeddccbbaa99887766554433221100")

	var sb strings.Builder
	d, err := NewChaCha(entropy, pers, Options{})
	if err != nil {
		t.Fatal(err)
	}
	step := func(label string, out []byte) {
		fmt.Fprintf(&sb, "%s = %x\n", label, out)
	}
	out := make([]byte, 64)
	if err := d.Generate(out, nil); err != nil {
		t.Fatal(err)
	}
	step("Generate1", out)
	if err := d.Generate(out, add); err != nil {
		t.Fatal(err)
	}
	step("Generate2WithAdditional", out)
	if err := d.Reseed(reseed, nil); err != nil {
		t.Fatal(err)
	}
	long := make([]byte, 100) // crosses a block boundary
	if err := d.Generate(long, nil); err != nil {
		t.Fatal(err)
	}
	step("Generate3AfterReseed", long)
	return sb.String()
}

// TestChaChaDRBGGolden freezes the ChaCha20 DRBG construction against the
// committed golden transcript.
func TestChaChaDRBGGolden(t *testing.T) {
	got := chachaGoldenTranscript(t)
	if os.Getenv("DRANGE_UPDATE_KAT") == "1" {
		if err := os.WriteFile(chachaGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", chachaGoldenPath)
		return
	}
	want, err := os.ReadFile(chachaGoldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("golden transcript mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}
