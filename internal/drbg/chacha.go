package drbg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// chachaSeedLen is the ChaCha20 key length: the construction is seeded by a
// fresh 256-bit key, so seedlen is 32 bytes.
const chachaSeedLen = 32

// Nonce word 15 domain-separates the two ways the DRBG derives bytes from a
// key, so Generate keystream can never alias Reseed key-derivation keystream
// even under an (impossible) seq collision.
const (
	chachaDomainGenerate = 0
	chachaDomainReseed   = 1
)

// errChaChaAdditional is returned (not formatted — Generate is on the
// allocation-free serving path) when additional input exceeds the key size.
var errChaChaAdditional = errors.New("drbg: chacha20 additional input exceeds 32 bytes")

// ChaCha is a fast-key-erasure DRBG over the ChaCha20 block function
// (RFC 8439 core): every Generate derives the request's output and a
// replacement key from the current key, then discards the old key, so the
// state never allows reconstructing past output (backtracking resistance by
// construction). A 64-bit sequence number feeds the nonce and increments on
// every key change, so (key, nonce, counter) triples never repeat. This is
// the allocation-free tier: Generate touches only fixed-size state arrays.
// Not safe for concurrent use.
type ChaCha struct {
	lim limiter
	// key is the current 256-bit ChaCha20 key, replaced on every Generate
	// (fast key erasure) and folded with fresh entropy on Reseed.
	key [chachaSeedLen]byte
	// seq is the nonce sequence number, incremented on every key change.
	seq uint64
	// blk is the per-call keystream scratch block.
	blk [64]byte
}

// NewChaCha instantiates the ChaCha20 DRBG from exactly 32 bytes of
// full-entropy input and an optional personalization string of at most 32
// bytes, XOR-folded into the initial key.
func NewChaCha(entropy, personalization []byte, opts Options) (*ChaCha, error) {
	c := &ChaCha{lim: newLimiter(opts)}
	if err := checkSeed(entropy, chachaSeedLen, c.Algorithm()); err != nil {
		return nil, err
	}
	if len(personalization) > chachaSeedLen {
		return nil, fmt.Errorf("drbg: %s personalization string exceeds key size (%d > %d bytes)", c.Algorithm(), len(personalization), chachaSeedLen)
	}
	copy(c.key[:], entropy)
	for i, b := range personalization {
		c.key[i] ^= b
	}
	return c, nil
}

// Algorithm implements DRBG.
func (c *ChaCha) Algorithm() string { return "chacha20" }

// SeedLen implements DRBG: one 256-bit key, 32 bytes.
func (c *ChaCha) SeedLen() int { return chachaSeedLen }

// NeedsReseed implements DRBG.
func (c *ChaCha) NeedsReseed() bool { return c.lim.NeedsReseed() }

// Generates implements DRBG.
func (c *ChaCha) Generates() int64 { return c.lim.Generates() }

// Reseeds implements DRBG.
func (c *ChaCha) Reseeds() int64 { return c.lim.Reseeds() }

// Generate implements DRBG. The keystream for one request starts at counter
// 0 under a nonce no prior request used; its first 64-byte block is split
// into the replacement key (first 32 bytes) and the first output bytes, so
// the request's own output and the next key come from one pass.
//
//drange:noalloc
func (c *ChaCha) Generate(out, additional []byte) error {
	if err := c.lim.checkGenerate(len(out)); err != nil {
		return err
	}
	if len(additional) > chachaSeedLen {
		return errChaChaAdditional
	}
	for i, b := range additional {
		c.key[i] ^= b
	}
	var nextKey [chachaSeedLen]byte
	counter := uint32(0)
	chachaBlock(&c.key, counter, uint32(c.seq), uint32(c.seq>>32), chachaDomainGenerate, &c.blk)
	copy(nextKey[:], c.blk[:chachaSeedLen])
	n := copy(out, c.blk[chachaSeedLen:])
	out = out[n:]
	for len(out) > 0 {
		counter++
		chachaBlock(&c.key, counter, uint32(c.seq), uint32(c.seq>>32), chachaDomainGenerate, &c.blk)
		n = copy(out, c.blk[:])
		out = out[n:]
	}
	c.key = nextKey
	c.seq++
	c.lim.didGenerate()
	return nil
}

// Reseed implements DRBG: the new key is one domain-separated keystream
// block of the old key XORed with the fresh entropy, so the result depends
// on both the accumulated state and the new seed (matching the CTR_DRBG
// reseed's state-folding property). Additional input folds into the old key
// first.
func (c *ChaCha) Reseed(entropy, additional []byte) error {
	if err := checkSeed(entropy, chachaSeedLen, c.Algorithm()); err != nil {
		return err
	}
	if len(additional) > chachaSeedLen {
		return errChaChaAdditional
	}
	for i, b := range additional {
		c.key[i] ^= b
	}
	chachaBlock(&c.key, 0, uint32(c.seq), uint32(c.seq>>32), chachaDomainReseed, &c.blk)
	for i := range c.key {
		c.key[i] = c.blk[i] ^ entropy[i]
	}
	c.seq++
	c.lim.didReseed()
	return nil
}

// chachaBlock computes one 64-byte ChaCha20 keystream block (RFC 8439 §2.3)
// for the given key, 32-bit block counter and 96-bit nonce (three
// little-endian words; the DRBG passes its sequence number as n0‖n1 and the
// domain tag as n2).
//
//drange:noalloc
func chachaBlock(key *[chachaSeedLen]byte, counter, n0, n1, n2 uint32, out *[64]byte) {
	var x [16]uint32
	x[0] = 0x61707865
	x[1] = 0x3320646e
	x[2] = 0x79622d32
	x[3] = 0x6b206574
	for i := 0; i < 8; i++ {
		x[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	x[12] = counter
	x[13] = n0
	x[14] = n1
	x[15] = n2
	init := x
	for round := 0; round < 10; round++ {
		// Column rounds.
		x[0], x[4], x[8], x[12] = chachaQuarter(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = chachaQuarter(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = chachaQuarter(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = chachaQuarter(x[3], x[7], x[11], x[15])
		// Diagonal rounds.
		x[0], x[5], x[10], x[15] = chachaQuarter(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = chachaQuarter(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = chachaQuarter(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = chachaQuarter(x[3], x[4], x[9], x[14])
	}
	for i := range x {
		binary.LittleEndian.PutUint32(out[4*i:], x[i]+init[i])
	}
}

// chachaQuarter is the RFC 8439 §2.1 quarter round.
func chachaQuarter(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d = bits.RotateLeft32(d^a, 16)
	c += d
	b = bits.RotateLeft32(b^c, 12)
	a += b
	d = bits.RotateLeft32(d^a, 8)
	c += d
	b = bits.RotateLeft32(b^c, 7)
	return a, b, c, d
}

var _ DRBG = (*ChaCha)(nil)
