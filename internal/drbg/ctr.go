package drbg

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
)

// SP 800-90A §10.2.1 CTR_DRBG using AES-256 without a derivation function:
// keylen = 256 bits, blocklen = 128 bits, seedlen = keylen + blocklen.
const (
	ctrKeyLen  = 32
	ctrBlock   = aes.BlockSize
	ctrSeedLen = ctrKeyLen + ctrBlock
)

// CTR is the SP 800-90A CTR_DRBG (AES-256, no derivation function). Because
// no df is used, the entropy input must be full-entropy and exactly seedlen
// (48) bytes, which is what the drange harvest path provides: raw D-RaNGe
// bits that already passed the 90B health tests. Not safe for concurrent use.
type CTR struct {
	lim limiter
	// CTR_DRBG working state per §10.2.1.1: the AES key and the counter V.
	key [ctrSeedLen - ctrBlock]byte
	v   [ctrBlock]byte
	// block is the AES instance for the current key; CTR_DRBG_Update swaps
	// the key on every call, so this is re-derived each update (an inherent
	// per-request allocation of the construction — the ChaCha20 DRBG is the
	// allocation-free tier).
	block cipher.Block

	// scratch buffers so Generate/Reseed themselves stay off the heap.
	temp [ctrSeedLen]byte
	seed [ctrSeedLen]byte
}

// NewCTR instantiates a CTR_DRBG from exactly 48 bytes of full-entropy
// input and an optional personalization string of at most 48 bytes.
func NewCTR(entropy, personalization []byte, opts Options) (*CTR, error) {
	c := &CTR{lim: newLimiter(opts)}
	if err := checkSeed(entropy, ctrSeedLen, c.Algorithm()); err != nil {
		return nil, err
	}
	if len(personalization) > ctrSeedLen {
		return nil, fmt.Errorf("drbg: %s personalization string exceeds seedlen (%d > %d bytes)", c.Algorithm(), len(personalization), ctrSeedLen)
	}
	// §10.2.1.3.1: seed_material = entropy_input XOR padded personalization;
	// Key = 0^keylen, V = 0^blocklen, then update.
	copy(c.seed[:], entropy)
	for i, b := range personalization {
		c.seed[i] ^= b
	}
	var err error
	if c.block, err = aes.NewCipher(c.key[:]); err != nil {
		return nil, err
	}
	c.update(&c.seed)
	return c, nil
}

// Algorithm implements DRBG.
func (c *CTR) Algorithm() string { return "ctr-aes256" }

// SeedLen implements DRBG: seedlen = keylen + blocklen = 48 bytes.
func (c *CTR) SeedLen() int { return ctrSeedLen }

// NeedsReseed implements DRBG.
func (c *CTR) NeedsReseed() bool { return c.lim.NeedsReseed() }

// Generates implements DRBG.
func (c *CTR) Generates() int64 { return c.lim.Generates() }

// Reseeds implements DRBG.
func (c *CTR) Reseeds() int64 { return c.lim.Reseeds() }

// incV increments the counter V modulo 2^blocklen (big-endian per §10.2.1.2).
func (c *CTR) incV() {
	for i := ctrBlock - 1; i >= 0; i-- {
		c.v[i]++
		if c.v[i] != 0 {
			break
		}
	}
}

// update is CTR_DRBG_Update (§10.2.1.2): generate seedlen bytes of AES-CTR
// keystream, XOR in provided_data, and install the result as the new Key‖V.
func (c *CTR) update(provided *[ctrSeedLen]byte) {
	for off := 0; off < ctrSeedLen; off += ctrBlock {
		c.incV()
		c.block.Encrypt(c.temp[off:off+ctrBlock], c.v[:])
	}
	for i := range c.temp {
		c.temp[i] ^= provided[i]
	}
	copy(c.key[:], c.temp[:ctrKeyLen])
	copy(c.v[:], c.temp[ctrKeyLen:])
	// aes.NewCipher cannot fail for a 32-byte key (validated at instantiate).
	c.block, _ = aes.NewCipher(c.key[:])
}

// padAdditional XORs nothing — it stages additional input padded to seedlen
// into c.seed, reporting whether any was provided.
func (c *CTR) padAdditional(additional []byte) (bool, error) {
	if len(additional) > ctrSeedLen {
		return false, fmt.Errorf("drbg: %s additional input exceeds seedlen (%d > %d bytes)", c.Algorithm(), len(additional), ctrSeedLen)
	}
	clear(c.seed[:])
	copy(c.seed[:], additional)
	return len(additional) > 0, nil
}

// Generate implements DRBG per §10.2.1.5.1 (no df).
func (c *CTR) Generate(out, additional []byte) error {
	if err := c.lim.checkGenerate(len(out)); err != nil {
		return err
	}
	withAdd, err := c.padAdditional(additional)
	if err != nil {
		return err
	}
	if withAdd {
		c.update(&c.seed)
	}
	for len(out) > 0 {
		c.incV()
		if len(out) >= ctrBlock {
			c.block.Encrypt(out[:ctrBlock], c.v[:])
			out = out[ctrBlock:]
			continue
		}
		c.block.Encrypt(c.temp[:ctrBlock], c.v[:])
		copy(out, c.temp[:ctrBlock])
		out = nil
	}
	// Backtracking resistance: update with the (padded) additional input,
	// or with zeros when none was provided.
	if !withAdd {
		clear(c.seed[:])
	}
	c.update(&c.seed)
	c.lim.didGenerate()
	return nil
}

// Reseed implements DRBG per §10.2.1.4.1 (no df): seed_material =
// entropy_input XOR padded additional input.
func (c *CTR) Reseed(entropy, additional []byte) error {
	if err := checkSeed(entropy, ctrSeedLen, c.Algorithm()); err != nil {
		return err
	}
	if _, err := c.padAdditional(additional); err != nil {
		return err
	}
	for i, b := range entropy {
		c.seed[i] ^= b
	}
	c.update(&c.seed)
	c.lim.didReseed()
	return nil
}

var _ DRBG = (*CTR)(nil)
