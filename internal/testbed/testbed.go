// Package testbed models the experimental infrastructure of the paper
// (Section 4): populations of LPDDR4 and DDR3 DRAM devices from the three
// major manufacturers, and a thermally-controlled chamber whose ambient
// temperature is regulated by a PID loop, with the DRAM devices held 15 °C
// above ambient by a local heater.
package testbed

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/timing"
)

// PopulationConfig describes a population of simulated DRAM devices.
type PopulationConfig struct {
	// LPDDR4PerManufacturer is the number of LPDDR4 devices instantiated per
	// manufacturer. The paper characterizes 282 devices total (94 per
	// manufacturer); smaller populations are used for quick runs.
	LPDDR4PerManufacturer int

	// DDR3Devices is the number of DDR3 devices (all from a single
	// manufacturer, as in the paper's cross-validation study).
	DDR3Devices int

	// Geometry optionally overrides the LPDDR4 device geometry (the DDR3
	// devices always use the DDR3 default geometry scaled to the same row
	// count).
	Geometry dram.Geometry

	// Seed seeds the device serial numbers, so a population is fully
	// reproducible.
	Seed uint64

	// Deterministic selects the seeded noise source for every device. When
	// false, devices use the OS entropy pool, which is what a real
	// deployment would do.
	Deterministic bool
}

// DefaultPopulationConfig returns the paper-scale population: 94 LPDDR4
// devices per manufacturer (282 total) and 4 DDR3 devices, deterministic
// noise disabled.
func DefaultPopulationConfig() PopulationConfig {
	return PopulationConfig{
		LPDDR4PerManufacturer: 94,
		DDR3Devices:           4,
		Seed:                  0xD0A11CE5,
	}
}

// SmallPopulationConfig returns a reduced population (a handful of devices
// per manufacturer) suitable for unit tests and quick characterization runs.
func SmallPopulationConfig() PopulationConfig {
	return PopulationConfig{
		LPDDR4PerManufacturer: 2,
		DDR3Devices:           1,
		Seed:                  7,
		Deterministic:         true,
	}
}

// Population is a collection of simulated devices grouped the way the
// paper's experiments consume them.
type Population struct {
	LPDDR4 map[dram.Manufacturer][]*dram.Device
	DDR3   []*dram.Device
}

// NewPopulation instantiates the device population described by cfg.
func NewPopulation(cfg PopulationConfig) (*Population, error) {
	if cfg.LPDDR4PerManufacturer < 0 || cfg.DDR3Devices < 0 {
		return nil, fmt.Errorf("testbed: negative device counts")
	}
	if cfg.LPDDR4PerManufacturer == 0 && cfg.DDR3Devices == 0 {
		return nil, fmt.Errorf("testbed: empty population")
	}
	pop := &Population{LPDDR4: make(map[dram.Manufacturer][]*dram.Device)}
	serial := cfg.Seed
	newNoise := func() dram.NoiseSource {
		if cfg.Deterministic {
			serialCopy := serial
			return dram.NewDeterministicNoise(serialCopy * 0x9e3779b97f4a7c15)
		}
		return dram.NewPhysicalNoise()
	}
	for _, m := range dram.AllManufacturers() {
		for i := 0; i < cfg.LPDDR4PerManufacturer; i++ {
			serial++
			d, err := dram.NewDevice(dram.Config{
				Serial:       serial,
				Manufacturer: m,
				Geometry:     cfg.Geometry,
				Timing:       timing.NewLPDDR4(),
				Noise:        newNoise(),
			})
			if err != nil {
				return nil, fmt.Errorf("testbed: building LPDDR4 device for %v: %w", m, err)
			}
			pop.LPDDR4[m] = append(pop.LPDDR4[m], d)
		}
	}
	for i := 0; i < cfg.DDR3Devices; i++ {
		serial++
		d, err := dram.NewDevice(dram.Config{
			Serial:       serial,
			Manufacturer: dram.ManufacturerA,
			Timing:       timing.NewDDR3(),
			Noise:        newNoise(),
		})
		if err != nil {
			return nil, fmt.Errorf("testbed: building DDR3 device: %w", err)
		}
		pop.DDR3 = append(pop.DDR3, d)
	}
	return pop, nil
}

// AllLPDDR4 returns every LPDDR4 device in a stable order (manufacturer A,
// then B, then C).
func (p *Population) AllLPDDR4() []*dram.Device {
	var out []*dram.Device
	for _, m := range dram.AllManufacturers() {
		out = append(out, p.LPDDR4[m]...)
	}
	return out
}

// TotalDevices returns the number of devices in the population.
func (p *Population) TotalDevices() int {
	return len(p.AllLPDDR4()) + len(p.DDR3)
}

// Representative returns the first device of the given manufacturer, the
// "representative chip" the paper uses for single-device figures.
func (p *Population) Representative(m dram.Manufacturer) (*dram.Device, error) {
	devs := p.LPDDR4[m]
	if len(devs) == 0 {
		return nil, fmt.Errorf("testbed: no LPDDR4 devices for manufacturer %v", m)
	}
	return devs[0], nil
}
