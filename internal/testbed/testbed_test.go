package testbed

import (
	"math"
	"testing"

	"repro/internal/dram"
	"repro/internal/timing"
)

func TestNewPopulationSmall(t *testing.T) {
	pop, err := NewPopulation(SmallPopulationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := pop.TotalDevices(); got != 7 {
		t.Errorf("TotalDevices = %d, want 7 (2×3 LPDDR4 + 1 DDR3)", got)
	}
	for _, m := range dram.AllManufacturers() {
		if len(pop.LPDDR4[m]) != 2 {
			t.Errorf("manufacturer %v has %d devices, want 2", m, len(pop.LPDDR4[m]))
		}
		for _, d := range pop.LPDDR4[m] {
			if d.Manufacturer() != m {
				t.Errorf("device manufacturer = %v, want %v", d.Manufacturer(), m)
			}
			if d.Timing().Type != timing.LPDDR4 {
				t.Errorf("LPDDR4 device has timing type %v", d.Timing().Type)
			}
		}
	}
	if len(pop.DDR3) != 1 {
		t.Fatalf("DDR3 devices = %d, want 1", len(pop.DDR3))
	}
	if pop.DDR3[0].Timing().Type != timing.DDR3 {
		t.Errorf("DDR3 device has timing type %v", pop.DDR3[0].Timing().Type)
	}
}

func TestNewPopulationDefaultsMatchPaperScale(t *testing.T) {
	cfg := DefaultPopulationConfig()
	if cfg.LPDDR4PerManufacturer*3 != 282 {
		t.Errorf("default population has %d LPDDR4 devices, want 282", cfg.LPDDR4PerManufacturer*3)
	}
	if cfg.DDR3Devices != 4 {
		t.Errorf("default population has %d DDR3 devices, want 4", cfg.DDR3Devices)
	}
}

func TestNewPopulationUniqueSerials(t *testing.T) {
	pop, err := NewPopulation(SmallPopulationConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, d := range append(pop.AllLPDDR4(), pop.DDR3...) {
		if seen[d.Serial()] {
			t.Errorf("duplicate serial %d", d.Serial())
		}
		seen[d.Serial()] = true
	}
}

func TestNewPopulationRejectsBadConfig(t *testing.T) {
	if _, err := NewPopulation(PopulationConfig{}); err == nil {
		t.Error("empty population accepted")
	}
	if _, err := NewPopulation(PopulationConfig{LPDDR4PerManufacturer: -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestRepresentative(t *testing.T) {
	pop, err := NewPopulation(SmallPopulationConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := pop.Representative(dram.ManufacturerB)
	if err != nil {
		t.Fatal(err)
	}
	if d.Manufacturer() != dram.ManufacturerB {
		t.Errorf("representative manufacturer = %v, want B", d.Manufacturer())
	}
	empty := &Population{LPDDR4: map[dram.Manufacturer][]*dram.Device{}}
	if _, err := empty.Representative(dram.ManufacturerA); err == nil {
		t.Error("representative of empty population accepted")
	}
}

func TestChamberSetAmbient(t *testing.T) {
	d, err := dram.NewDevice(dram.Config{Serial: 1, Manufacturer: dram.ManufacturerA, Noise: dram.NewDeterministicNoise(1)})
	if err != nil {
		t.Fatal(err)
	}
	c := NewChamber(d)
	if err := c.SetAmbient(50); err != nil {
		t.Fatalf("SetAmbient(50): %v", err)
	}
	if math.Abs(c.Ambient()-50) > c.ToleranceC {
		t.Errorf("ambient = %v, want 50 ± %v", c.Ambient(), c.ToleranceC)
	}
	if math.Abs(d.Temperature()-(c.Ambient()+DRAMTempOffsetC)) > 1e-9 {
		t.Errorf("device temperature %v, want ambient+15 = %v", d.Temperature(), c.Ambient()+DRAMTempOffsetC)
	}
}

func TestChamberSetDRAMTemperature(t *testing.T) {
	d, err := dram.NewDevice(dram.Config{Serial: 2, Manufacturer: dram.ManufacturerC, Noise: dram.NewDeterministicNoise(2)})
	if err != nil {
		t.Fatal(err)
	}
	c := NewChamber(d)
	for _, target := range []float64{55, 60, 65, 70} {
		if err := c.SetDRAMTemperature(target); err != nil {
			t.Fatalf("SetDRAMTemperature(%v): %v", target, err)
		}
		if math.Abs(d.Temperature()-target) > c.ToleranceC+1e-9 {
			t.Errorf("device temperature %v, want %v ± %v", d.Temperature(), target, c.ToleranceC)
		}
	}
}

func TestChamberRejectsOutOfRange(t *testing.T) {
	c := NewChamber()
	if err := c.SetAmbient(20); err == nil {
		t.Error("ambient below reliable range accepted")
	}
	if err := c.SetAmbient(80); err == nil {
		t.Error("ambient above reliable range accepted")
	}
	lo, hi := c.ReliableDRAMRange()
	if lo != 55 || hi != 70 {
		t.Errorf("reliable DRAM range = [%v, %v], want [55, 70]", lo, hi)
	}
}
