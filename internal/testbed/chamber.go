package testbed

import (
	"fmt"

	"repro/internal/dram"
)

// DRAMTempOffsetC is the offset the paper maintains between the ambient
// chamber temperature and the DRAM device temperature using a local heating
// source (15 °C).
const DRAMTempOffsetC = 15.0

// Chamber models the temperature-controlled chamber of Section 4: ambient
// temperature is regulated by heaters and fans driven by a
// proportional-integral-derivative (PID) loop to within ±0.25 °C over a
// reliable range of 40–55 °C ambient, and the devices inside are held at
// ambient + 15 °C.
type Chamber struct {
	devices []*dram.Device

	// PID gains for the simulated control loop.
	kp, ki, kd float64

	setpointC float64
	ambientC  float64
	integral  float64
	prevError float64

	// ToleranceC is the regulation accuracy (0.25 °C in the paper).
	ToleranceC float64

	// MinAmbientC and MaxAmbientC bound the reliable testing range.
	MinAmbientC float64
	MaxAmbientC float64
}

// NewChamber builds a chamber housing the given devices, initially settled
// at a 40 °C ambient setpoint.
func NewChamber(devices ...*dram.Device) *Chamber {
	c := &Chamber{
		devices:     devices,
		kp:          0.6,
		ki:          0.15,
		kd:          0.05,
		setpointC:   40,
		ambientC:    40,
		ToleranceC:  0.25,
		MinAmbientC: 40,
		MaxAmbientC: 55,
	}
	c.applyToDevices()
	return c
}

// SetAmbient commands a new ambient setpoint and runs the PID loop until the
// chamber settles within tolerance. It returns an error if the setpoint is
// outside the reliable testing range or if the loop fails to settle.
func (c *Chamber) SetAmbient(targetC float64) error {
	if targetC < c.MinAmbientC || targetC > c.MaxAmbientC {
		return fmt.Errorf("testbed: ambient setpoint %.1f °C outside reliable range [%.1f, %.1f]",
			targetC, c.MinAmbientC, c.MaxAmbientC)
	}
	c.setpointC = targetC
	c.integral = 0
	c.prevError = 0
	const maxSteps = 10000
	for step := 0; step < maxSteps; step++ {
		err := c.setpointC - c.ambientC
		if err < c.ToleranceC && err > -c.ToleranceC && step > 5 {
			c.applyToDevices()
			return nil
		}
		c.integral += err
		derivative := err - c.prevError
		c.prevError = err
		drive := c.kp*err + c.ki*c.integral + c.kd*derivative
		// The chamber responds sluggishly to the heater/fan drive, and loses
		// a little heat to the room each step.
		c.ambientC += 0.2*drive - 0.01*(c.ambientC-22)
	}
	return fmt.Errorf("testbed: PID loop failed to settle at %.1f °C", targetC)
}

// SetDRAMTemperature commands the chamber so that the devices reach the
// given DRAM temperature (ambient + 15 °C offset).
func (c *Chamber) SetDRAMTemperature(dramTempC float64) error {
	return c.SetAmbient(dramTempC - DRAMTempOffsetC)
}

// Ambient returns the current ambient temperature.
func (c *Chamber) Ambient() float64 { return c.ambientC }

// DRAMTemperature returns the temperature the housed devices are held at.
func (c *Chamber) DRAMTemperature() float64 { return c.ambientC + DRAMTempOffsetC }

// ReliableDRAMRange returns the DRAM-temperature range the chamber can hold
// reliably (55–70 °C in the paper).
func (c *Chamber) ReliableDRAMRange() (minC, maxC float64) {
	return c.MinAmbientC + DRAMTempOffsetC, c.MaxAmbientC + DRAMTempOffsetC
}

func (c *Chamber) applyToDevices() {
	for _, d := range c.devices {
		// Device temperature setting only fails for implausible values,
		// which the setpoint validation already excludes.
		_ = d.SetTemperature(c.DRAMTemperature())
	}
}
