package dram

import "math"

// BaselineTemperatureC is the ambient characterization temperature of the
// paper's infrastructure (45 °C); cell critical latencies are defined at this
// temperature and shifted by the per-cell temperature coefficient away from
// it.
const BaselineTemperatureC = 45.0

// CellCharacter is the manufacturing-time character of one DRAM cell: the
// quantities fixed by process variation that determine how the cell behaves
// when activated with a reduced tRCD. It is derived procedurally from the
// device serial number and the cell address, so it never changes over the
// lifetime of a simulated device.
type CellCharacter struct {
	// WeakColumn reports whether the cell sits on a weak local bitline
	// (shared with a weak local sense amplifier). Only such cells can fail
	// at the tRCD values used in the paper.
	WeakColumn bool

	// TCritNS is the critical activation latency of the cell in
	// nanoseconds at the baseline temperature with an all-agreeing
	// neighbourhood: activating with tRCD well above TCritNS always reads
	// correctly, well below always fails, and near TCritNS the outcome is
	// decided by analog noise.
	TCritNS float64

	// AntiCell reports the vulnerable polarity: true cells (false) can only
	// fail when they store a logical 0, anti cells (true) only when they
	// store a logical 1.
	AntiCell bool

	// TempCoeffNSPerC is the shift of TCritNS per degree Celsius above the
	// baseline temperature.
	TempCoeffNSPerC float64

	// NoiseSigmaNS is the standard deviation of the per-access noise for
	// this cell, in equivalent nanoseconds of latency margin.
	NoiseSigmaNS float64

	// MetastableWindowNS is the half-width of the sense amplifier's
	// metastable window in equivalent latency margin: accesses whose noisy
	// margin lands inside ±MetastableWindowNS resolve from symmetric
	// thermal noise and return a fair coin flip.
	MetastableWindowNS float64

	// CouplingNS is the shift of TCritNS contributed by each neighbouring
	// cell that stores the opposite value.
	CouplingNS float64
}

const (
	saltWeakColumn = 0x57454143 // "WEAC"
	saltTCrit1     = 0x54435231
	saltTCrit2     = 0x54435232
	saltAntiCell   = 0x414e5449
	saltTempCo1    = 0x54454d31
	saltTempCo2    = 0x54454d32
	saltStartup    = 0x53545550
)

// columnIsWeak reports whether the column col of subarray sub in bank bank is
// a weak column for the device identified by serial, under profile p.
func columnIsWeak(serial uint64, bank, sub, col int, p Profile) bool {
	h := mix64(serial, uint64(bank), uint64(sub), uint64(col), saltWeakColumn)
	return unitFloat(h) < p.WeakColumnDensity
}

// cellCharacter derives the full character of the cell at (bank, row, col) of
// the device identified by serial, under geometry g and profile p.
func cellCharacter(serial uint64, bank, row, col int, g Geometry, p Profile) CellCharacter {
	subRows := p.SubarrayRows
	if subRows <= 0 {
		subRows = g.SubarrayRows
	}
	sub := row / subRows
	rowInSub := row % subRows

	c := CellCharacter{
		NoiseSigmaNS:       p.NoiseSigmaNS,
		MetastableWindowNS: p.MetastableWindowNS,
		CouplingNS:         p.CouplingNS,
	}
	c.WeakColumn = columnIsWeak(serial, bank, sub, col, p)
	if !c.WeakColumn {
		c.TCritNS = p.StrongTCritNS
		c.TempCoeffNSPerC = p.TempCoeffMeanNSPerC
		return c
	}

	// Per-cell Gaussian offset around the weak-cell mean.
	g1 := mix64(serial, uint64(bank), uint64(row), uint64(col), saltTCrit1)
	g2 := mix64(serial, uint64(bank), uint64(row), uint64(col), saltTCrit2)
	offset := gaussianFromHash(g1, g2) * p.TCritSpreadNS

	// Cells further from the local sense amplifiers (higher row index within
	// the subarray) have less time to develop their bitlines, so their
	// critical latency is higher (Figure 4's row-position gradient).
	gradient := p.RowGradientNS * float64(rowInSub) / float64(subRows)

	c.TCritNS = p.TCritMeanNS + offset + gradient
	if c.TCritNS < p.StrongTCritNS {
		c.TCritNS = p.StrongTCritNS
	}

	ha := mix64(serial, uint64(bank), uint64(row), uint64(col), saltAntiCell)
	c.AntiCell = unitFloat(ha) < p.AntiCellFraction

	t1 := mix64(serial, uint64(bank), uint64(row), uint64(col), saltTempCo1)
	t2 := mix64(serial, uint64(bank), uint64(row), uint64(col), saltTempCo2)
	c.TempCoeffNSPerC = p.TempCoeffMeanNSPerC + gaussianFromHash(t1, t2)*p.TempCoeffSigmaNSPerC

	return c
}

// EffectiveTCritNS returns the cell's critical latency adjusted for the
// operating temperature (°C) and the number of neighbouring cells storing the
// opposite value.
func (c CellCharacter) EffectiveTCritNS(temperatureC float64, differingNeighbors int) float64 {
	t := c.TCritNS
	t += c.TempCoeffNSPerC * (temperatureC - BaselineTemperatureC)
	t += c.CouplingNS * float64(differingNeighbors)
	return t
}

// FailureProbability returns the probability that reading this cell with the
// given activation latency, temperature and neighbourhood returns the wrong
// value, assuming the cell stores its vulnerable polarity. Callers must
// separately account for the stored value: a cell storing its non-vulnerable
// polarity does not fail.
//
// The model is: the bitline differential at read time is the latency margin
// plus Gaussian analog noise. A differential below -w (w = the metastable
// window) is read wrongly, above +w correctly, and inside ±w the sense
// amplifier is metastable and resolves from symmetric noise — a fair coin.
// Cells whose margin sits deep inside the window therefore fail with a
// probability of exactly one half, which is what makes them usable RNG
// cells.
func (c CellCharacter) FailureProbability(trcdNS, temperatureC float64, differingNeighbors int) float64 {
	m := trcdNS - c.EffectiveTCritNS(temperatureC, differingNeighbors)
	w := c.MetastableWindowNS
	s := c.NoiseSigmaNS
	pWrong := normalCDF((-w - m) / s)
	pMeta := normalCDF((w-m)/s) - pWrong
	return pWrong + 0.5*pMeta
}

// VulnerableWhenStoring reports whether the cell can fail when it stores the
// given bit value.
func (c CellCharacter) VulnerableWhenStoring(bit uint64) bool {
	if c.AntiCell {
		return bit == 1
	}
	return bit == 0
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
