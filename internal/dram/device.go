package dram

import (
	"fmt"
	"sync"

	"repro/internal/timing"
)

// Config describes one simulated DRAM device.
type Config struct {
	// Serial is the device serial number; it seeds the procedural process
	// variation, so two devices with different serials have different (but
	// individually stable) weak cells.
	Serial uint64

	// Manufacturer selects the built-in manufacturer profile. Ignored when
	// Profile is non-nil.
	Manufacturer Manufacturer

	// Profile optionally overrides the built-in manufacturer profile.
	Profile *Profile

	// Geometry describes the device organisation. The zero value selects
	// DefaultLPDDR4Geometry or DefaultDDR3Geometry based on Timing.Type.
	Geometry Geometry

	// Timing is the JEDEC timing parameter set of the device. The zero
	// value selects LPDDR4-3200 defaults.
	Timing timing.Params

	// Noise is the per-access noise source. Nil selects a PhysicalNoise
	// source (OS entropy).
	Noise NoiseSource
}

// Device is one simulated DRAM device (a channel's worth of chips operating
// in lock step, as seen by a memory controller). It models row-buffer
// semantics, activation-failure injection when activated with a reduced
// tRCD, per-cell process variation, data-pattern coupling and temperature
// dependence.
//
// Device methods are safe for concurrent use by multiple goroutines; the
// paper exploits bank-level parallelism and callers may drive different banks
// concurrently.
type Device struct {
	serial  uint64
	profile Profile
	geom    Geometry
	timing  timing.Params
	noise   NoiseSource
	// bankNoise caches the BankNoiseSource capability of noise (nil when
	// unsupported) so the per-word failure-injection path does not repeat
	// the type assertion.
	bankNoise BankNoiseSource

	mu           sync.Mutex
	temperatureC float64        // drange:guardedby mu
	banks        []*bankStorage // drange:guardedby mu

	// weakCols caches, per bank and subarray, the weak column indices
	// grouped by DRAM word, so failure injection only inspects candidate
	// cells.
	weakCols map[weakKey][][]int // drange:guardedby mu

	// chars caches the procedurally derived per-cell character, keyed by
	// packed (bank, row, col); inject caches, per (bank, row, wordIdx), the
	// word's weak columns together with their characters. The character is a
	// pure function of the device identity, so both caches are transparent;
	// they remove the dominant hashing cost from the failure-injection hot
	// path, where generation re-reads the same few words forever.
	chars  map[uint64]CellCharacter // drange:guardedby mu
	inject map[uint64]*injectInfo   // drange:guardedby mu

	stats DeviceStats // drange:guardedby mu
}

// injectInfo is everything failure injection needs about one DRAM word: the
// weak column indices and, aligned with them, the cell characters.
type injectInfo struct {
	cols  []int
	chars []CellCharacter
}

// DeviceStats counts the operations a device has performed; useful for
// asserting experimental methodology in tests and for energy accounting
// cross-checks.
type DeviceStats struct {
	Activates      int64
	Precharges     int64
	Reads          int64
	Writes         int64
	Refreshes      int64
	InjectedFlips  int64
	ReducedTRCDAct int64
}

type weakKey struct {
	bank, sub int
}

// bankStorage holds the mutable state of one bank: lazily-allocated row data
// and the row-buffer state. rows is direct-indexed by row (nil = not yet
// materialised): one pointer per row costs kilobytes while keeping the
// per-access lookup a bounds-checked load instead of a map probe.
type bankStorage struct {
	rows [][]uint64

	openRow            int
	open               bool
	activatedTRCD      float64
	firstAccessPending bool
}

// NewDevice constructs a simulated device from cfg.
//
//drange:holds mu construction: the device is not shared until NewDevice returns
func NewDevice(cfg Config) (*Device, error) {
	prof := Profile{}
	if cfg.Profile != nil {
		prof = *cfg.Profile
	} else {
		m := cfg.Manufacturer
		if m == "" {
			m = ManufacturerA
		}
		p, err := ProfileFor(m)
		if err != nil {
			return nil, err
		}
		prof = p
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}

	tp := cfg.Timing
	if tp.ClockNS == 0 {
		tp = timing.NewLPDDR4()
	}
	if err := tp.Validate(); err != nil {
		return nil, err
	}

	geom := cfg.Geometry
	if geom.Banks == 0 {
		if tp.Type == timing.DDR3 {
			geom = DefaultDDR3Geometry()
		} else {
			geom = DefaultLPDDR4Geometry()
		}
	}
	if err := geom.Validate(); err != nil {
		return nil, err
	}

	// The character caches pack (bank, row, col/wordIdx) into 64-bit keys
	// (16/24/24 bits); reject geometries the packing cannot address rather
	// than silently colliding cache entries.
	if geom.Banks >= 1<<16 || geom.RowsPerBank >= 1<<24 || geom.ColsPerRow >= 1<<24 || geom.WordsPerRow() >= 1<<16 {
		return nil, fmt.Errorf("dram: geometry %d banks x %d rows x %d cols (%d words/row) exceeds the addressable simulation bounds (2^16 banks, 2^24 rows, 2^24 cols, 2^16 words/row)",
			geom.Banks, geom.RowsPerBank, geom.ColsPerRow, geom.WordsPerRow())
	}

	noise := cfg.Noise
	if noise == nil {
		noise = NewPhysicalNoise()
	}

	bankNoise, _ := noise.(BankNoiseSource)
	d := &Device{
		serial:       cfg.Serial,
		profile:      prof,
		geom:         geom,
		timing:       tp,
		noise:        noise,
		bankNoise:    bankNoise,
		temperatureC: BaselineTemperatureC,
		banks:        make([]*bankStorage, geom.Banks),
		weakCols:     make(map[weakKey][][]int),
		chars:        make(map[uint64]CellCharacter),
		inject:       make(map[uint64]*injectInfo),
	}
	for i := range d.banks {
		d.banks[i] = &bankStorage{rows: make([][]uint64, geom.RowsPerBank), openRow: -1}
	}
	return d, nil
}

// Serial returns the device serial number.
func (d *Device) Serial() uint64 { return d.serial }

// Manufacturer returns the manufacturer of the device.
func (d *Device) Manufacturer() Manufacturer { return d.profile.Manufacturer }

// Profile returns the device's manufacturing profile.
func (d *Device) Profile() Profile { return d.profile }

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geom }

// Timing returns the device's JEDEC timing parameters.
func (d *Device) Timing() timing.Params { return d.timing }

// Stats returns a snapshot of the device's operation counters.
func (d *Device) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// SetTemperature sets the DRAM temperature in degrees Celsius.
func (d *Device) SetTemperature(c float64) error {
	if c < -40 || c > 150 {
		return fmt.Errorf("dram: temperature %v °C outside plausible operating range", c)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.temperatureC = c
	return nil
}

// Temperature returns the current DRAM temperature in degrees Celsius.
func (d *Device) Temperature() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.temperatureC
}

// CellCharacter returns the manufacturing character of the cell at
// (bank, row, col).
func (d *Device) CellCharacter(bank, row, col int) (CellCharacter, error) {
	if err := d.checkCell(bank, row, col); err != nil {
		return CellCharacter{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cellCharacterLocked(bank, row, col), nil
}

// cellCharacterLocked returns the cached character of (bank, row, col),
// deriving and caching it on first touch. Callers hold d.mu.
func (d *Device) cellCharacterLocked(bank, row, col int) CellCharacter {
	key := uint64(bank)<<48 | uint64(row)<<24 | uint64(col)
	if c, ok := d.chars[key]; ok {
		return c
	}
	c := cellCharacter(d.serial, bank, row, col, d.geom, d.profile)
	d.chars[key] = c
	return c
}

// injectInfoLocked returns (computing and caching if needed) the injection
// data of DRAM word (bank, row, wordIdx). Callers hold d.mu.
func (d *Device) injectInfoLocked(bank, row, wordIdx int) *injectInfo {
	key := uint64(bank)<<40 | uint64(row)<<16 | uint64(wordIdx)
	if info, ok := d.inject[key]; ok {
		return info
	}
	weak := d.weakColumnsLocked(bank, d.subarrayOf(row))[wordIdx]
	info := &injectInfo{cols: weak, chars: make([]CellCharacter, len(weak))}
	for i, col := range weak {
		info.chars[i] = cellCharacter(d.serial, bank, row, col, d.geom, d.profile)
	}
	d.inject[key] = info
	return info
}

// WeakColumnsInWord returns the column indices (absolute within the row) of
// weak columns that fall inside DRAM word wordIdx for rows of the subarray
// containing row.
func (d *Device) WeakColumnsInWord(bank, row, wordIdx int) ([]int, error) {
	if bank < 0 || bank >= d.geom.Banks {
		return nil, fmt.Errorf("dram: bank %d out of range [0,%d)", bank, d.geom.Banks)
	}
	if row < 0 || row >= d.geom.RowsPerBank {
		return nil, fmt.Errorf("dram: row %d out of range [0,%d)", row, d.geom.RowsPerBank)
	}
	if wordIdx < 0 || wordIdx >= d.geom.WordsPerRow() {
		return nil, fmt.Errorf("dram: word %d out of range [0,%d)", wordIdx, d.geom.WordsPerRow())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	sub := d.subarrayOf(row)
	return d.weakColumnsLocked(bank, sub)[wordIdx], nil
}

func (d *Device) subarrayOf(row int) int {
	subRows := d.profile.SubarrayRows
	if subRows <= 0 {
		subRows = d.geom.SubarrayRows
	}
	return row / subRows
}

// weakColumnsLocked returns (computing and caching if needed) the weak column
// indices of (bank, subarray), grouped by DRAM word index.
func (d *Device) weakColumnsLocked(bank, sub int) [][]int {
	key := weakKey{bank, sub}
	if cols, ok := d.weakCols[key]; ok {
		return cols
	}
	words := d.geom.WordsPerRow()
	grouped := make([][]int, words)
	for col := 0; col < d.geom.ColsPerRow; col++ {
		if columnIsWeak(d.serial, bank, sub, col, d.profile) {
			w := col / d.geom.WordBits
			grouped[w] = append(grouped[w], col)
		}
	}
	d.weakCols[key] = grouped
	return grouped
}

func (d *Device) checkBank(bank int) error {
	if bank < 0 || bank >= d.geom.Banks {
		return fmt.Errorf("dram: bank %d out of range [0,%d)", bank, d.geom.Banks)
	}
	return nil
}

func (d *Device) checkRow(bank, row int) error {
	if err := d.checkBank(bank); err != nil {
		return err
	}
	if row < 0 || row >= d.geom.RowsPerBank {
		return fmt.Errorf("dram: row %d out of range [0,%d)", row, d.geom.RowsPerBank)
	}
	return nil
}

func (d *Device) checkCell(bank, row, col int) error {
	if err := d.checkRow(bank, row); err != nil {
		return err
	}
	if col < 0 || col >= d.geom.ColsPerRow {
		return fmt.Errorf("dram: column %d out of range [0,%d)", col, d.geom.ColsPerRow)
	}
	return nil
}

// startupRow returns the deterministic power-up content of (bank, row).
func (d *Device) startupRow(bank, row int) []uint64 {
	n := d.geom.rowU64s()
	data := make([]uint64, n)
	for i := range data {
		data[i] = mix64(d.serial, uint64(bank), uint64(row), uint64(i), saltStartup)
	}
	return data
}

// StartupRow returns the device's power-up content for (bank, row): the
// values cells settle to at power-on before any write, used by the
// startup-value TRNG baselines. It does not disturb the device state.
func (d *Device) StartupRow(bank, row int) ([]uint64, error) {
	if err := d.checkRow(bank, row); err != nil {
		return nil, err
	}
	return d.startupRow(bank, row), nil
}

// rowDataLocked returns the stored content of (bank, row), materialising the
// startup content lazily on first touch.
func (d *Device) rowDataLocked(bank, row int) []uint64 {
	b := d.banks[bank]
	if data := b.rows[row]; data != nil {
		return data
	}
	data := d.startupRow(bank, row)
	b.rows[row] = data
	return data
}

func getBit(data []uint64, col int) uint64 {
	return (data[col>>6] >> uint(col&63)) & 1
}

func flipBit(data []uint64, col int) {
	data[col>>6] ^= 1 << uint(col&63)
}

func setBit(data []uint64, col int, v uint64) {
	if v != 0 {
		data[col>>6] |= 1 << uint(col&63)
	} else {
		data[col>>6] &^= 1 << uint(col&63)
	}
}

// Activate opens row in bank with the given activation latency (tRCD, in
// nanoseconds). Activating with a latency below the cell-dependent critical
// latency arms activation-failure injection for the first DRAM word read
// from the row. Activating an already-open bank is an error (the controller
// must precharge first), matching real DRAM behaviour.
func (d *Device) Activate(bank, row int, trcdNS float64) error {
	if err := d.checkRow(bank, row); err != nil {
		return err
	}
	if trcdNS <= 0 {
		return fmt.Errorf("dram: activation latency must be positive, got %v", trcdNS)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.banks[bank]
	if b.open {
		return fmt.Errorf("dram: bank %d already has row %d open", bank, b.openRow)
	}
	b.open = true
	b.openRow = row
	b.activatedTRCD = trcdNS
	b.firstAccessPending = true
	d.stats.Activates++
	if trcdNS < d.timing.TRCD {
		d.stats.ReducedTRCDAct++
	}
	return nil
}

// Precharge closes the open row of bank. Precharging an already-closed bank
// is a no-op, as in real devices.
func (d *Device) Precharge(bank int) error {
	if err := d.checkBank(bank); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.banks[bank]
	b.open = false
	b.openRow = -1
	b.firstAccessPending = false
	d.stats.Precharges++
	return nil
}

// OpenRow returns the row currently open in bank, or -1 if the bank is
// precharged.
func (d *Device) OpenRow(bank int) (int, error) {
	if err := d.checkBank(bank); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.banks[bank]
	if !b.open {
		return -1, nil
	}
	return b.openRow, nil
}

// Refresh models an all-bank refresh. All banks must be precharged. Data
// retention is not modelled (cells never leak in this simulator), so the
// operation only updates statistics.
func (d *Device) Refresh() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, b := range d.banks {
		if b.open {
			return fmt.Errorf("dram: refresh issued while bank %d has row %d open", i, b.openRow)
		}
	}
	d.stats.Refreshes++
	return nil
}

// ReadWord reads DRAM word wordIdx from the row currently open in bank. If
// the row was activated with a reduced tRCD and this is the first word
// accessed since the activation, activation failures are injected: each
// vulnerable cell in the word may return (and restore into the array) the
// wrong value, with a probability determined by its process variation, the
// surrounding data pattern, and the device temperature, resolved by the
// device's noise source. The returned slice is a copy owned by the caller.
func (d *Device) ReadWord(bank, wordIdx int) ([]uint64, error) {
	out := make([]uint64, d.geom.wordU64s())
	if err := d.ReadWordInto(bank, wordIdx, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadWordInto is ReadWord writing into dst (which must hold wordU64s
// uint64s): the allocation-free fast path sampling loops use through
// device.WordReaderInto. Failure-injection semantics are identical.
func (d *Device) ReadWordInto(bank, wordIdx int, dst []uint64) error {
	if err := d.checkBank(bank); err != nil {
		return err
	}
	if wordIdx < 0 || wordIdx >= d.geom.WordsPerRow() {
		return fmt.Errorf("dram: word %d out of range [0,%d)", wordIdx, d.geom.WordsPerRow())
	}
	nw := d.geom.wordU64s()
	if len(dst) != nw {
		return fmt.Errorf("dram: destination length %d, want %d uint64s", len(dst), nw)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.banks[bank]
	if !b.open {
		return fmt.Errorf("dram: read from bank %d with no open row", bank)
	}
	row := b.openRow
	data := d.rowDataLocked(bank, row)

	if b.firstAccessPending {
		b.firstAccessPending = false
		if b.activatedTRCD < d.timing.TRCD {
			d.injectFailuresLocked(bank, row, wordIdx, b.activatedTRCD, data)
		}
	}

	d.stats.Reads++
	copy(dst, data[wordIdx*nw:(wordIdx+1)*nw])
	return nil
}

// WriteWord writes DRAM word wordIdx of the row currently open in bank.
func (d *Device) WriteWord(bank, wordIdx int, word []uint64) error {
	if err := d.checkBank(bank); err != nil {
		return err
	}
	if wordIdx < 0 || wordIdx >= d.geom.WordsPerRow() {
		return fmt.Errorf("dram: word %d out of range [0,%d)", wordIdx, d.geom.WordsPerRow())
	}
	nw := d.geom.wordU64s()
	if len(word) != nw {
		return fmt.Errorf("dram: word length %d, want %d uint64s", len(word), nw)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	b := d.banks[bank]
	if !b.open {
		return fmt.Errorf("dram: write to bank %d with no open row", bank)
	}
	// A write is a column access: it clears the first-access window just as
	// a read does (subsequent reads come from fully-restored cells).
	b.firstAccessPending = false
	data := d.rowDataLocked(bank, b.openRow)
	copy(data[wordIdx*nw:(wordIdx+1)*nw], word)
	d.stats.Writes++
	return nil
}

// WriteRow writes the full content of (bank, row) directly, bypassing the
// command interface. It is a profiling convenience equivalent to opening the
// row and writing every word with nominal timing.
func (d *Device) WriteRow(bank, row int, data []uint64) error {
	if err := d.checkRow(bank, row); err != nil {
		return err
	}
	if len(data) != d.geom.rowU64s() {
		return fmt.Errorf("dram: row data length %d, want %d uint64s", len(data), d.geom.rowU64s())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	stored := make([]uint64, len(data))
	copy(stored, data)
	d.banks[bank].rows[row] = stored
	d.stats.Writes += int64(d.geom.WordsPerRow())
	return nil
}

// ReadRowRaw returns the stored content of (bank, row) without opening the
// row and without failure injection. It is a verification convenience; real
// controllers cannot do this.
func (d *Device) ReadRowRaw(bank, row int) ([]uint64, error) {
	if err := d.checkRow(bank, row); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	data := d.rowDataLocked(bank, row)
	out := make([]uint64, len(data))
	copy(out, data)
	return out, nil
}

// injectFailuresLocked applies activation-failure injection to DRAM word
// wordIdx of row (whose stored data is data), for an activation performed
// with latency trcdNS. Failed cells are flipped both in the returned data and
// in the stored array (the sense amplifier restores the wrong value).
func (d *Device) injectFailuresLocked(bank, row, wordIdx int, trcdNS float64, data []uint64) {
	info := d.injectInfoLocked(bank, row, wordIdx)
	if len(info.cols) == 0 {
		return
	}
	// Materialise the neighbouring rows once per injection instead of once
	// per neighbour probe; the slices alias the stored rows, so intra-word
	// flips stay visible to later cells exactly as before.
	var above, below []uint64
	if row > 0 {
		above = d.rowDataLocked(bank, row-1)
	}
	if row < d.geom.RowsPerBank-1 {
		below = d.rowDataLocked(bank, row+1)
	}
	temp := d.temperatureC
	for i, col := range info.cols {
		c := &info.chars[i]
		stored := getBit(data, col)
		if !c.VulnerableWhenStoring(stored) {
			continue
		}
		diff := differingNeighbors(data, above, below, col, d.geom.ColsPerRow, stored)
		margin := trcdNS - c.EffectiveTCritNS(temp, diff)
		// The bitline differential at read time is the margin plus analog
		// noise. Below the metastable window the sense amplifier latches the
		// wrong value; inside the window it is metastable and resolves from
		// symmetric noise — a fair coin flip drawn from the noise source.
		differential := margin + c.NoiseSigmaNS*d.gaussianFor(bank)
		fail := false
		switch {
		case differential < -c.MetastableWindowNS:
			fail = true
		case differential <= c.MetastableWindowNS:
			fail = d.gaussianFor(bank) < 0
		}
		if fail {
			flipBit(data, col)
			d.stats.InjectedFlips++
		}
	}
}

// gaussianFor returns one analog-noise sample attributed to bank. Per-bank
// noise sources tie each draw to the bank being accessed, so a bank's
// failure outcomes depend only on its own command order (see
// BankNoiseSource); other sources draw from their single shared stream.
func (d *Device) gaussianFor(bank int) float64 {
	if d.bankNoise != nil {
		return d.bankNoise.GaussianFor(bank)
	}
	return d.noise.Gaussian()
}

// differingNeighborsLocked counts the neighbouring cells (left, right, above,
// below) that store the opposite value of the victim cell.
func (d *Device) differingNeighborsLocked(bank, row, col int, stored uint64) int {
	var above, below []uint64
	if row > 0 {
		above = d.rowDataLocked(bank, row-1)
	}
	if row < d.geom.RowsPerBank-1 {
		below = d.rowDataLocked(bank, row+1)
	}
	return differingNeighbors(d.rowDataLocked(bank, row), above, below, col, d.geom.ColsPerRow, stored)
}

// differingNeighbors counts the neighbours of (row data, col) storing the
// opposite value, given the already-materialised row and its vertical
// neighbours (nil at array edges).
func differingNeighbors(data, above, below []uint64, col, colsPerRow int, stored uint64) int {
	diff := 0
	if col > 0 && getBit(data, col-1) != stored {
		diff++
	}
	if col < colsPerRow-1 && getBit(data, col+1) != stored {
		diff++
	}
	if above != nil && getBit(above, col) != stored {
		diff++
	}
	if below != nil && getBit(below, col) != stored {
		diff++
	}
	return diff
}

// FailureProbabilityAt returns the model's failure probability for the cell
// at (bank, row, col) if it were read immediately after an activation with
// the given tRCD at the current device temperature, given the currently
// stored data pattern. It returns 0 for cells that cannot fail (non-weak
// columns or a stored value of the non-vulnerable polarity).
func (d *Device) FailureProbabilityAt(bank, row, col int, trcdNS float64) (float64, error) {
	if err := d.checkCell(bank, row, col); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	c := d.cellCharacterLocked(bank, row, col)
	if !c.WeakColumn {
		return 0, nil
	}
	data := d.rowDataLocked(bank, row)
	stored := getBit(data, col)
	if !c.VulnerableWhenStoring(stored) {
		return 0, nil
	}
	diff := d.differingNeighborsLocked(bank, row, col, stored)
	return c.FailureProbability(trcdNS, d.temperatureC, diff), nil
}
