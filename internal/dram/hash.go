// Package dram models commodity DRAM devices at the level of detail the
// D-RaNGe paper depends on: channels, banks, subarrays, rows and cells, a
// per-cell analog activation (bitline development) model with process
// variation, data-pattern (neighbour coupling) dependence, temperature
// dependence, and a pluggable physical-noise source.
//
// The model is "procedural": every cell's manufacturing character is a pure
// function of (device serial, bank, row, column) through a 64-bit mixing
// function, so a device costs no memory for its variation map and a cell's
// character is perfectly stable over time — matching the paper's observation
// (Section 5.4) that a cell's activation-failure probability does not change
// significantly across 15 days of testing.
package dram

// splitmix64 advances the state and returns the next value of the SplitMix64
// sequence. It is used as the mixing core of the procedural variation model
// and of the deterministic noise source.
func splitmix64(state uint64) (next uint64, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return state, z
}

// mix64 hashes an arbitrary sequence of 64-bit words into a single 64-bit
// value with good avalanche behaviour.
func mix64(words ...uint64) uint64 {
	h := uint64(0x8c2f9d71ab3e07b5)
	for _, w := range words {
		h ^= w
		_, h = splitmix64(h)
	}
	return h
}

// unitFloat maps a 64-bit hash to a float64 uniformly distributed in [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// gaussianPair converts two uniform hashes into one standard-normal sample
// using the Box–Muller transform. Only the first of the pair is returned;
// callers that need independent samples must supply independent hashes.
func gaussianFromHash(h1, h2 uint64) float64 {
	return boxMuller(unitFloat(h1), unitFloat(h2))
}
