package dram

import "fmt"

// Geometry describes the addressable organisation of one simulated DRAM
// device (one chip/channel pair as seen by the memory controller). The
// defaults are intentionally smaller than a real multi-gigabit part so that
// full-device characterization runs in seconds, but every structural property
// the paper relies on (banks, subarrays, rows, DRAM-word granularity) is
// present and configurable.
type Geometry struct {
	// Banks is the number of banks in the device.
	Banks int
	// RowsPerBank is the number of DRAM rows per bank.
	RowsPerBank int
	// ColsPerRow is the number of cells (bits) in one DRAM row.
	ColsPerRow int
	// SubarrayRows is the number of rows that share one set of local sense
	// amplifiers; the paper observes 512 or 1024 depending on manufacturer.
	SubarrayRows int
	// WordBits is the number of bits transferred by one READ burst (the
	// DRAM word); activation failures are only observable in the first
	// word read after an activation.
	WordBits int
}

// DefaultLPDDR4Geometry returns the geometry used for the simulated LPDDR4
// population: 8 banks, 1024 rows per bank, 8192-bit (1 KiB) rows, 512-row
// subarrays, and a 256-bit DRAM word (x16 channel, burst length 16).
func DefaultLPDDR4Geometry() Geometry {
	return Geometry{
		Banks:        8,
		RowsPerBank:  1024,
		ColsPerRow:   8192,
		SubarrayRows: 512,
		WordBits:     256,
	}
}

// DefaultDDR3Geometry returns the geometry used for the simulated DDR3
// cross-validation devices: 8 banks, 1024 rows, 8192-bit rows, 512-row
// subarrays, and a 512-bit (64-byte) DRAM word.
func DefaultDDR3Geometry() Geometry {
	return Geometry{
		Banks:        8,
		RowsPerBank:  1024,
		ColsPerRow:   8192,
		SubarrayRows: 512,
		WordBits:     512,
	}
}

// Validate reports an error if the geometry is not internally consistent.
func (g Geometry) Validate() error {
	if g.Banks <= 0 {
		return fmt.Errorf("dram: Banks must be positive, got %d", g.Banks)
	}
	if g.RowsPerBank <= 0 {
		return fmt.Errorf("dram: RowsPerBank must be positive, got %d", g.RowsPerBank)
	}
	if g.ColsPerRow <= 0 {
		return fmt.Errorf("dram: ColsPerRow must be positive, got %d", g.ColsPerRow)
	}
	if g.SubarrayRows <= 0 {
		return fmt.Errorf("dram: SubarrayRows must be positive, got %d", g.SubarrayRows)
	}
	if g.WordBits <= 0 {
		return fmt.Errorf("dram: WordBits must be positive, got %d", g.WordBits)
	}
	if g.ColsPerRow%g.WordBits != 0 {
		return fmt.Errorf("dram: ColsPerRow (%d) must be a multiple of WordBits (%d)", g.ColsPerRow, g.WordBits)
	}
	if g.ColsPerRow%64 != 0 {
		return fmt.Errorf("dram: ColsPerRow (%d) must be a multiple of 64", g.ColsPerRow)
	}
	if g.WordBits%64 != 0 {
		return fmt.Errorf("dram: WordBits (%d) must be a multiple of 64", g.WordBits)
	}
	return nil
}

// WordsPerRow returns the number of DRAM words in one row.
func (g Geometry) WordsPerRow() int {
	return g.ColsPerRow / g.WordBits
}

// WordsPerBank returns the number of DRAM words in one bank.
func (g Geometry) WordsPerBank() int {
	return g.WordsPerRow() * g.RowsPerBank
}

// Subarray returns the subarray index containing row.
func (g Geometry) Subarray(row int) int {
	return row / g.SubarrayRows
}

// SubarrayCount returns the number of subarrays in one bank (rounded up).
func (g Geometry) SubarrayCount() int {
	return (g.RowsPerBank + g.SubarrayRows - 1) / g.SubarrayRows
}

// RowInSubarray returns the row's position within its subarray, in [0,
// SubarrayRows).
func (g Geometry) RowInSubarray(row int) int {
	return row % g.SubarrayRows
}

// CellsPerBank returns the number of cells (bits) in one bank.
func (g Geometry) CellsPerBank() int {
	return g.RowsPerBank * g.ColsPerRow
}

// CellsPerDevice returns the number of cells (bits) in the device.
func (g Geometry) CellsPerDevice() int {
	return g.Banks * g.CellsPerBank()
}

// wordsU64 returns the number of 64-bit words needed to hold one DRAM word.
func (g Geometry) wordU64s() int {
	return g.WordBits / 64
}

// rowU64s returns the number of 64-bit words needed to hold one DRAM row.
func (g Geometry) rowU64s() int {
	return g.ColsPerRow / 64
}
