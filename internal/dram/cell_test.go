package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfilesValid(t *testing.T) {
	for _, m := range AllManufacturers() {
		p, err := ProfileFor(m)
		if err != nil {
			t.Fatalf("ProfileFor(%v): %v", m, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %v invalid: %v", m, err)
		}
		if p.Manufacturer != m {
			t.Errorf("profile manufacturer = %v, want %v", p.Manufacturer, m)
		}
	}
}

func TestProfileForUnknown(t *testing.T) {
	if _, err := ProfileFor(Manufacturer("X")); err == nil {
		t.Error("ProfileFor(X) should fail")
	}
}

func TestMustProfilePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProfile should panic on unknown manufacturer")
		}
	}()
	MustProfile(Manufacturer("Z"))
}

func TestProfileValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"missing manufacturer", func(p *Profile) { p.Manufacturer = "" }},
		{"zero subarray rows", func(p *Profile) { p.SubarrayRows = 0 }},
		{"zero density", func(p *Profile) { p.WeakColumnDensity = 0 }},
		{"density above 1", func(p *Profile) { p.WeakColumnDensity = 1.5 }},
		{"zero tcrit", func(p *Profile) { p.TCritMeanNS = 0 }},
		{"zero noise", func(p *Profile) { p.NoiseSigmaNS = 0 }},
		{"bad anticell fraction", func(p *Profile) { p.AntiCellFraction = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := MustProfile(ManufacturerA)
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("Validate() accepted %s", tc.name)
			}
		})
	}
}

func TestCellCharacterDeterministic(t *testing.T) {
	g := DefaultLPDDR4Geometry()
	p := MustProfile(ManufacturerA)
	a := cellCharacter(42, 1, 100, 200, g, p)
	b := cellCharacter(42, 1, 100, 200, g, p)
	if a != b {
		t.Errorf("cell character not stable: %+v vs %+v", a, b)
	}
}

func TestCellCharacterVariesAcrossDevices(t *testing.T) {
	g := DefaultLPDDR4Geometry()
	p := MustProfile(ManufacturerA)
	// Over many cells, the set of weak columns must differ between two
	// serial numbers.
	sameWeak := 0
	total := 0
	for col := 0; col < 4096; col++ {
		a := cellCharacter(1, 0, 0, col, g, p)
		b := cellCharacter(2, 0, 0, col, g, p)
		if a.WeakColumn || b.WeakColumn {
			total++
			if a.WeakColumn && b.WeakColumn {
				sameWeak++
			}
		}
	}
	if total == 0 {
		t.Fatal("no weak columns found in 4096 columns; density too low")
	}
	if sameWeak == total {
		t.Error("weak columns identical across two different device serials")
	}
}

func TestWeakColumnDensityApproximatesProfile(t *testing.T) {
	for _, m := range AllManufacturers() {
		p := MustProfile(m)
		count := 0
		const cols = 100000
		for col := 0; col < cols; col++ {
			if columnIsWeak(7, 0, 0, col, p) {
				count++
			}
		}
		got := float64(count) / cols
		if got < p.WeakColumnDensity*0.6 || got > p.WeakColumnDensity*1.4 {
			t.Errorf("manufacturer %v: weak column density %v, profile says %v", m, got, p.WeakColumnDensity)
		}
	}
}

func TestStrongCellsNeverFailAtReducedTRCD(t *testing.T) {
	g := DefaultLPDDR4Geometry()
	p := MustProfile(ManufacturerA)
	for col := 0; col < 2000; col++ {
		c := cellCharacter(3, 0, 10, col, g, p)
		if c.WeakColumn {
			continue
		}
		// Even at the aggressive end of the paper's range (6 ns), a strong
		// cell's failure probability must be negligible.
		if fp := c.FailureProbability(10.0, BaselineTemperatureC, 4); fp > 1e-6 {
			t.Fatalf("strong cell col %d has failure probability %v at tRCD=10", col, fp)
		}
	}
}

func TestFailureProbabilityMonotonicInTRCD(t *testing.T) {
	c := CellCharacter{WeakColumn: true, TCritNS: 10, NoiseSigmaNS: 0.5, CouplingNS: 0.1, TempCoeffNSPerC: 0.02}
	prev := 1.1
	for trcd := 6.0; trcd <= 18.0; trcd += 0.5 {
		fp := c.FailureProbability(trcd, BaselineTemperatureC, 0)
		if fp > prev+1e-12 {
			t.Fatalf("failure probability increased with tRCD at %v: %v > %v", trcd, fp, prev)
		}
		prev = fp
	}
	if got := c.FailureProbability(10.0, BaselineTemperatureC, 0); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Fprob at tRCD == TCrit = %v, want 0.5", got)
	}
}

func TestFailureProbabilityMonotonicInTemperature(t *testing.T) {
	c := CellCharacter{WeakColumn: true, TCritNS: 9.5, NoiseSigmaNS: 0.5, TempCoeffNSPerC: 0.02}
	prev := -1.0
	for temp := 40.0; temp <= 75.0; temp += 5 {
		fp := c.FailureProbability(10.0, temp, 0)
		if fp < prev-1e-12 {
			t.Fatalf("failure probability decreased with temperature at %v °C", temp)
		}
		prev = fp
	}
}

func TestFailureProbabilityIncreasesWithDifferingNeighbors(t *testing.T) {
	c := CellCharacter{WeakColumn: true, TCritNS: 9.5, NoiseSigmaNS: 0.5, CouplingNS: 0.3}
	p0 := c.FailureProbability(10, BaselineTemperatureC, 0)
	p4 := c.FailureProbability(10, BaselineTemperatureC, 4)
	if p4 <= p0 {
		t.Errorf("Fprob with 4 differing neighbors (%v) should exceed Fprob with 0 (%v)", p4, p0)
	}
}

func TestVulnerablePolarity(t *testing.T) {
	trueCell := CellCharacter{AntiCell: false}
	antiCell := CellCharacter{AntiCell: true}
	if !trueCell.VulnerableWhenStoring(0) || trueCell.VulnerableWhenStoring(1) {
		t.Error("true cell must be vulnerable storing 0 only")
	}
	if !antiCell.VulnerableWhenStoring(1) || antiCell.VulnerableWhenStoring(0) {
		t.Error("anti cell must be vulnerable storing 1 only")
	}
}

func TestNormalCDFProperties(t *testing.T) {
	if math.Abs(normalCDF(0)-0.5) > 1e-12 {
		t.Errorf("normalCDF(0) = %v, want 0.5", normalCDF(0))
	}
	if normalCDF(6) < 0.999999 {
		t.Errorf("normalCDF(6) = %v, want ~1", normalCDF(6))
	}
	if normalCDF(-6) > 1e-6 {
		t.Errorf("normalCDF(-6) = %v, want ~0", normalCDF(-6))
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := normalCDF(x)
		return v >= 0 && v <= 1 && math.Abs(v+normalCDF(-x)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowGradientIncreasesTCrit(t *testing.T) {
	g := DefaultLPDDR4Geometry()
	p := MustProfile(ManufacturerA)
	// Compare average TCrit of weak cells in low rows vs high rows of the
	// same subarray; the gradient term must push the average up.
	avg := func(rowLo, rowHi int) (float64, int) {
		sum, n := 0.0, 0
		for row := rowLo; row < rowHi; row++ {
			for col := 0; col < 2048; col++ {
				c := cellCharacter(11, 0, row, col, g, p)
				if c.WeakColumn {
					sum += c.TCritNS
					n++
				}
			}
		}
		return sum / float64(n), n
	}
	lowAvg, nLow := avg(0, 32)
	highAvg, nHigh := avg(480, 512)
	if nLow == 0 || nHigh == 0 {
		t.Fatal("no weak cells found for gradient comparison")
	}
	if highAvg <= lowAvg {
		t.Errorf("TCrit should increase with row position in subarray: low=%v high=%v", lowAvg, highAvg)
	}
}
