package dram

import "testing"

func TestDefaultGeometriesValid(t *testing.T) {
	for _, g := range []Geometry{DefaultLPDDR4Geometry(), DefaultDDR3Geometry()} {
		if err := g.Validate(); err != nil {
			t.Errorf("default geometry invalid: %v", err)
		}
	}
}

func TestGeometryValidateRejects(t *testing.T) {
	base := DefaultLPDDR4Geometry()
	cases := []struct {
		name   string
		mutate func(*Geometry)
	}{
		{"zero banks", func(g *Geometry) { g.Banks = 0 }},
		{"zero rows", func(g *Geometry) { g.RowsPerBank = 0 }},
		{"zero cols", func(g *Geometry) { g.ColsPerRow = 0 }},
		{"zero subarray", func(g *Geometry) { g.SubarrayRows = 0 }},
		{"zero word", func(g *Geometry) { g.WordBits = 0 }},
		{"cols not multiple of word", func(g *Geometry) { g.ColsPerRow = g.WordBits*3 + 64 }},
		{"word not multiple of 64", func(g *Geometry) { g.WordBits = 100; g.ColsPerRow = 1000 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := base
			tc.mutate(&g)
			if err := g.Validate(); err == nil {
				t.Errorf("Validate() accepted %s", tc.name)
			}
		})
	}
}

func TestGeometryDerivedQuantities(t *testing.T) {
	g := DefaultLPDDR4Geometry()
	if got := g.WordsPerRow(); got != 32 {
		t.Errorf("WordsPerRow = %d, want 32", got)
	}
	if got := g.WordsPerBank(); got != 32*1024 {
		t.Errorf("WordsPerBank = %d, want %d", got, 32*1024)
	}
	if got := g.SubarrayCount(); got != 2 {
		t.Errorf("SubarrayCount = %d, want 2", got)
	}
	if got := g.Subarray(511); got != 0 {
		t.Errorf("Subarray(511) = %d, want 0", got)
	}
	if got := g.Subarray(512); got != 1 {
		t.Errorf("Subarray(512) = %d, want 1", got)
	}
	if got := g.RowInSubarray(513); got != 1 {
		t.Errorf("RowInSubarray(513) = %d, want 1", got)
	}
	if got := g.CellsPerBank(); got != 1024*8192 {
		t.Errorf("CellsPerBank = %d, want %d", got, 1024*8192)
	}
	if got := g.CellsPerDevice(); got != 8*1024*8192 {
		t.Errorf("CellsPerDevice = %d, want %d", got, 8*1024*8192)
	}
	if got := g.wordU64s(); got != 4 {
		t.Errorf("wordU64s = %d, want 4", got)
	}
	if got := g.rowU64s(); got != 128 {
		t.Errorf("rowU64s = %d, want 128", got)
	}
}
