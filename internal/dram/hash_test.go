package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	a := mix64(1, 2, 3)
	b := mix64(1, 2, 3)
	if a != b {
		t.Errorf("mix64 not deterministic: %x vs %x", a, b)
	}
}

func TestMix64SensitiveToInputOrder(t *testing.T) {
	if mix64(1, 2) == mix64(2, 1) {
		t.Error("mix64(1,2) should differ from mix64(2,1)")
	}
	if mix64(0) == mix64(0, 0) {
		t.Error("mix64(0) should differ from mix64(0,0)")
	}
}

func TestMix64AvalancheProperty(t *testing.T) {
	// Flipping one input bit should change roughly half the output bits.
	f := func(x uint64, bit uint8) bool {
		b := uint(bit % 64)
		h1 := mix64(x)
		h2 := mix64(x ^ (1 << b))
		diff := h1 ^ h2
		popcount := 0
		for diff != 0 {
			popcount++
			diff &= diff - 1
		}
		return popcount >= 10 && popcount <= 54
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnitFloatRange(t *testing.T) {
	f := func(h uint64) bool {
		v := unitFloat(h)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitFloatDistribution(t *testing.T) {
	// The mean of unitFloat over a mixed sequence should be close to 0.5.
	const n = 20000
	sum := 0.0
	state := uint64(12345)
	for i := 0; i < n; i++ {
		var out uint64
		state, out = splitmix64(state)
		sum += unitFloat(out)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean of unitFloat = %v, want ~0.5", mean)
	}
}

func TestGaussianFromHashMoments(t *testing.T) {
	const n = 20000
	sum, sumSq := 0.0, 0.0
	state := uint64(987654321)
	for i := 0; i < n; i++ {
		var h1, h2 uint64
		state, h1 = splitmix64(state)
		state, h2 = splitmix64(state)
		g := gaussianFromHash(h1, h2)
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("gaussian variance = %v, want ~1", variance)
	}
}

func TestSplitmix64Progresses(t *testing.T) {
	s := uint64(42)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		var out uint64
		s, out = splitmix64(s)
		if seen[out] {
			t.Fatalf("splitmix64 produced a repeat within 1000 outputs at step %d", i)
		}
		seen[out] = true
	}
}
