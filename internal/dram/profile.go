package dram

import "fmt"

// Manufacturer identifies one of the three anonymised DRAM manufacturers
// from the paper's characterization study.
type Manufacturer string

const (
	// ManufacturerA corresponds to "manufacturer A" in the paper.
	ManufacturerA Manufacturer = "A"
	// ManufacturerB corresponds to "manufacturer B" in the paper.
	ManufacturerB Manufacturer = "B"
	// ManufacturerC corresponds to "manufacturer C" in the paper.
	ManufacturerC Manufacturer = "C"
)

// Profile captures the manufacturer- and process-dependent constants of the
// activation-failure model. The constants are chosen so that the simulated
// populations reproduce the qualitative observations of Section 5 of the
// paper:
//
//   - activation failures cluster in a few "weak" columns per subarray
//     (weak local sense amplifiers / bitlines), Figure 4;
//   - within a subarray, failure probability increases with the row's
//     distance from the sense amplifiers, Figure 4;
//   - failures are inducible for tRCD roughly between 6 ns and 13 ns and
//     absent at the default 18 ns (Section 7.3);
//   - the data pattern that exposes the most ~50%-probability cells differs
//     by manufacturer (solid 0s for A and C, checkered 0s for B), Section 5.2;
//   - increasing temperature generally increases failure probability, with
//     manufacturer A showing the tightest correlation, Section 5.3.
type Profile struct {
	Manufacturer Manufacturer

	// SubarrayRows is the subarray height this manufacturer uses (512 or
	// 1024 in the paper).
	SubarrayRows int

	// WeakColumnDensity is the fraction of columns in a subarray whose local
	// bitline/sense amplifier is weak enough to produce activation failures
	// at reduced tRCD.
	WeakColumnDensity float64

	// TCritMeanNS and TCritSpreadNS describe the distribution of the
	// critical activation latency of cells on weak columns: the tRCD below
	// which the cell's read becomes unreliable. The spread is the standard
	// deviation of the per-cell Gaussian component.
	TCritMeanNS   float64
	TCritSpreadNS float64

	// StrongTCritNS is the critical latency of cells on non-weak columns;
	// it is far below any tRCD used in the experiments, so those cells never
	// fail.
	StrongTCritNS float64

	// RowGradientNS is the additional critical latency of a cell at the far
	// end of the subarray relative to a cell adjacent to the sense
	// amplifiers (signal-propagation delay along the bitline).
	RowGradientNS float64

	// NoiseSigmaNS is the standard deviation (in nanoseconds of equivalent
	// latency margin) of the per-access analog noise.
	NoiseSigmaNS float64

	// MetastableWindowNS is the half-width of the sense amplifier's
	// metastable window: when a cell's latency margin (plus the per-access
	// noise) lands inside ±MetastableWindowNS, the sense amplifier resolves
	// purely from symmetric thermal noise and the read value is a fair coin
	// flip. This is the paper's hypothesis for why RNG cells produce
	// unbiased output (Sections 5.4 and 7.3, citing Chang et al.).
	MetastableWindowNS float64

	// TempCoeffMeanNSPerC and TempCoeffSigmaNSPerC describe the per-cell
	// temperature coefficient: the change of critical latency per degree
	// Celsius above the 45 °C characterization baseline. A mostly-positive
	// distribution makes failures more likely as temperature rises, with a
	// minority of cells moving the other way, as in Figure 6.
	TempCoeffMeanNSPerC  float64
	TempCoeffSigmaNSPerC float64

	// CouplingNS is the shift in critical latency contributed by each
	// neighbouring cell that stores the opposite value of the victim cell
	// (bitline-to-bitline and wordline coupling). Positive values make
	// "disagreeing" neighbourhoods fail more easily.
	CouplingNS float64

	// AntiCellFraction is the fraction of weak cells that are "anti cells":
	// vulnerable when they store a logical 1 rather than a logical 0. The
	// rest ("true cells") are vulnerable when storing 0. This is what makes
	// solid-0 patterns most effective for manufacturers dominated by true
	// cells.
	AntiCellFraction float64
}

// ProfileFor returns the built-in profile of the given manufacturer.
func ProfileFor(m Manufacturer) (Profile, error) {
	switch m {
	case ManufacturerA:
		return Profile{
			Manufacturer:         ManufacturerA,
			SubarrayRows:         512,
			WeakColumnDensity:    1.0 / 112.0,
			TCritMeanNS:          9.4,
			TCritSpreadNS:        1.8,
			StrongTCritNS:        5.2,
			RowGradientNS:        1.0,
			NoiseSigmaNS:         0.06,
			MetastableWindowNS:   0.40,
			TempCoeffMeanNSPerC:  0.020,
			TempCoeffSigmaNSPerC: 0.006,
			CouplingNS:           0.10,
			AntiCellFraction:     0.12,
		}, nil
	case ManufacturerB:
		return Profile{
			Manufacturer:         ManufacturerB,
			SubarrayRows:         512,
			WeakColumnDensity:    1.0 / 128.0,
			TCritMeanNS:          9.0,
			TCritSpreadNS:        2.0,
			StrongTCritNS:        5.0,
			RowGradientNS:        1.2,
			NoiseSigmaNS:         0.07,
			MetastableWindowNS:   0.45,
			TempCoeffMeanNSPerC:  0.022,
			TempCoeffSigmaNSPerC: 0.014,
			CouplingNS:           0.55,
			AntiCellFraction:     0.45,
		}, nil
	case ManufacturerC:
		return Profile{
			Manufacturer:         ManufacturerC,
			SubarrayRows:         1024,
			WeakColumnDensity:    1.0 / 112.0,
			TCritMeanNS:          9.5,
			TCritSpreadNS:        1.9,
			StrongTCritNS:        5.4,
			RowGradientNS:        0.9,
			NoiseSigmaNS:         0.065,
			MetastableWindowNS:   0.42,
			TempCoeffMeanNSPerC:  0.024,
			TempCoeffSigmaNSPerC: 0.012,
			CouplingNS:           0.15,
			AntiCellFraction:     0.15,
		}, nil
	default:
		return Profile{}, fmt.Errorf("dram: unknown manufacturer %q", m)
	}
}

// MustProfile is like ProfileFor but panics on an unknown manufacturer. It is
// intended for package-level defaults and tests.
func MustProfile(m Manufacturer) Profile {
	p, err := ProfileFor(m)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate reports an error if the profile contains non-physical values.
func (p Profile) Validate() error {
	if p.Manufacturer == "" {
		return fmt.Errorf("dram: profile missing manufacturer")
	}
	if p.SubarrayRows <= 0 {
		return fmt.Errorf("dram: profile SubarrayRows must be positive, got %d", p.SubarrayRows)
	}
	if p.WeakColumnDensity <= 0 || p.WeakColumnDensity > 1 {
		return fmt.Errorf("dram: WeakColumnDensity must be in (0,1], got %v", p.WeakColumnDensity)
	}
	if p.TCritMeanNS <= 0 || p.TCritSpreadNS <= 0 || p.StrongTCritNS <= 0 {
		return fmt.Errorf("dram: critical latencies must be positive")
	}
	if p.NoiseSigmaNS <= 0 {
		return fmt.Errorf("dram: NoiseSigmaNS must be positive, got %v", p.NoiseSigmaNS)
	}
	if p.MetastableWindowNS < 0 {
		return fmt.Errorf("dram: MetastableWindowNS must be non-negative, got %v", p.MetastableWindowNS)
	}
	if p.AntiCellFraction < 0 || p.AntiCellFraction > 1 {
		return fmt.Errorf("dram: AntiCellFraction must be in [0,1], got %v", p.AntiCellFraction)
	}
	return nil
}

// AllManufacturers lists the three manufacturers in a stable order.
func AllManufacturers() []Manufacturer {
	return []Manufacturer{ManufacturerA, ManufacturerB, ManufacturerC}
}
