package dram

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// NoiseSource supplies the per-access analog noise that makes activation
// failures non-deterministic. In real hardware this is thermal/sense-amplifier
// noise; here it is an abstraction with two implementations:
//
//   - PhysicalNoise draws from the operating system's entropy pool
//     (crypto/rand), the closest available stand-in for physical randomness.
//   - DeterministicNoise is a seeded, reproducible source used by tests and
//     benchmarks so that experiments are repeatable.
//
// Implementations must be safe for concurrent use.
type NoiseSource interface {
	// Gaussian returns one sample from a standard normal distribution
	// (mean 0, standard deviation 1).
	Gaussian() float64
}

// boxMuller converts two independent uniform samples in [0,1) into one
// standard-normal sample.
func boxMuller(u1, u2 float64) float64 {
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// PhysicalNoise is a NoiseSource backed by the operating system entropy pool.
// It buffers entropy to avoid a system call per sample.
type PhysicalNoise struct {
	mu  sync.Mutex
	buf []byte // drange:guardedby mu
	off int    // drange:guardedby mu
}

// NewPhysicalNoise returns a NoiseSource that draws from crypto/rand.
func NewPhysicalNoise() *PhysicalNoise {
	return &PhysicalNoise{}
}

func (p *PhysicalNoise) uniform() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.off+8 > len(p.buf) {
		p.buf = make([]byte, 4096)
		p.off = 0
		if _, err := rand.Read(p.buf); err != nil {
			// crypto/rand failing is unrecoverable for a TRNG; surface it
			// loudly rather than silently degrade to predictable output.
			panic(fmt.Sprintf("dram: reading OS entropy failed: %v", err))
		}
	}
	v := binary.LittleEndian.Uint64(p.buf[p.off:])
	p.off += 8
	return float64(v>>11) / float64(1<<53)
}

// Gaussian implements NoiseSource.
func (p *PhysicalNoise) Gaussian() float64 {
	return boxMuller(p.uniform(), p.uniform())
}

// DeterministicNoise is a seeded, reproducible NoiseSource based on
// SplitMix64. It is intended for tests, characterization reproducibility and
// benchmarks; it is NOT suitable for generating keys.
type DeterministicNoise struct {
	mu    sync.Mutex
	state uint64 // drange:guardedby mu
}

// NewDeterministicNoise returns a reproducible noise source seeded with seed.
func NewDeterministicNoise(seed uint64) *DeterministicNoise {
	return &DeterministicNoise{state: seed ^ 0xd1b54a32d192ed03}
}

func (d *DeterministicNoise) next() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out uint64
	d.state, out = splitmix64(d.state)
	return out
}

// Gaussian implements NoiseSource.
func (d *DeterministicNoise) Gaussian() float64 {
	return boxMuller(unitFloat(d.next()), unitFloat(d.next()))
}

// BankNoiseSource is an optional NoiseSource extension providing one
// independent noise stream per bank. When a Device's noise source implements
// it, activation-failure injection draws from the stream of the bank being
// accessed, so the bit sequence harvested from a bank depends only on that
// bank's own command order. This models per-bank sense amplifiers having
// independent analog noise, and it is what makes concurrent multi-bank
// harvesting reproducible: goroutines driving disjoint banks cannot perturb
// each other's noise draws no matter how the scheduler interleaves them.
type BankNoiseSource interface {
	NoiseSource
	// GaussianFor returns one standard-normal sample from the stream
	// dedicated to bank.
	GaussianFor(bank int) float64
}

// DeterministicBankNoise is a seeded NoiseSource with an independent
// reproducible SplitMix64 stream per bank. Like DeterministicNoise it is for
// tests, characterization and benchmarks only — never for generating keys.
type DeterministicBankNoise struct {
	mu   sync.Mutex
	seed uint64
	// streams holds the per-bank stream states indexed by bank+1 (slot 0 is
	// the bankless stream), lazily initialised; init marks live slots. A
	// dense slice keeps the per-draw cost to an uncontended lock and an
	// index, which matters in the failure-injection hot path.
	streams []uint64 // drange:guardedby mu
	init    []bool   // drange:guardedby mu
}

// NewDeterministicBankNoise returns a reproducible per-bank noise source
// seeded with seed.
func NewDeterministicBankNoise(seed uint64) *DeterministicBankNoise {
	return &DeterministicBankNoise{seed: seed}
}

// stateLocked returns the stream slot for bank, deriving its seed on first
// use. Callers hold d.mu.
func (d *DeterministicBankNoise) stateLocked(bank int) *uint64 {
	slot := bank + 1
	if slot >= len(d.streams) {
		streams := make([]uint64, slot+1)
		copy(streams, d.streams)
		initd := make([]bool, slot+1)
		copy(initd, d.init)
		d.streams, d.init = streams, initd
	}
	if !d.init[slot] {
		// Derive the stream seed from (seed, bank) so streams are
		// decorrelated; run one splitmix round over the mix for diffusion.
		s, _ := splitmix64(d.seed ^ (uint64(bank)+1)*0x9e3779b97f4a7c15)
		d.streams[slot] = s
		d.init[slot] = true
	}
	return &d.streams[slot]
}

func (d *DeterministicBankNoise) nextFor(bank int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	state := d.stateLocked(bank)
	var out uint64
	*state, out = splitmix64(*state)
	return out
}

// GaussianFor implements BankNoiseSource. Both uniform draws come from the
// bank's stream under one lock acquisition, in the same order as two nextFor
// calls — the sample sequence is unchanged.
func (d *DeterministicBankNoise) GaussianFor(bank int) float64 {
	d.mu.Lock()
	state := d.stateLocked(bank)
	var u1, u2 uint64
	*state, u1 = splitmix64(*state)
	*state, u2 = splitmix64(*state)
	d.mu.Unlock()
	return boxMuller(unitFloat(u1), unitFloat(u2))
}

// Gaussian implements NoiseSource; draws not attributable to a bank (e.g. the
// retention baseline's block perturbation) come from a dedicated stream.
func (d *DeterministicBankNoise) Gaussian() float64 {
	return d.GaussianFor(-1)
}

var (
	_ NoiseSource     = (*PhysicalNoise)(nil)
	_ NoiseSource     = (*DeterministicNoise)(nil)
	_ BankNoiseSource = (*DeterministicBankNoise)(nil)
)
