package dram

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// NoiseSource supplies the per-access analog noise that makes activation
// failures non-deterministic. In real hardware this is thermal/sense-amplifier
// noise; here it is an abstraction with two implementations:
//
//   - PhysicalNoise draws from the operating system's entropy pool
//     (crypto/rand), the closest available stand-in for physical randomness.
//   - DeterministicNoise is a seeded, reproducible source used by tests and
//     benchmarks so that experiments are repeatable.
//
// Implementations must be safe for concurrent use.
type NoiseSource interface {
	// Gaussian returns one sample from a standard normal distribution
	// (mean 0, standard deviation 1).
	Gaussian() float64
}

// boxMuller converts two independent uniform samples in [0,1) into one
// standard-normal sample.
func boxMuller(u1, u2 float64) float64 {
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// PhysicalNoise is a NoiseSource backed by the operating system entropy pool.
// It buffers entropy to avoid a system call per sample.
type PhysicalNoise struct {
	mu  sync.Mutex
	buf []byte
	off int
}

// NewPhysicalNoise returns a NoiseSource that draws from crypto/rand.
func NewPhysicalNoise() *PhysicalNoise {
	return &PhysicalNoise{}
}

func (p *PhysicalNoise) uniform() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.off+8 > len(p.buf) {
		p.buf = make([]byte, 4096)
		p.off = 0
		if _, err := rand.Read(p.buf); err != nil {
			// crypto/rand failing is unrecoverable for a TRNG; surface it
			// loudly rather than silently degrade to predictable output.
			panic(fmt.Sprintf("dram: reading OS entropy failed: %v", err))
		}
	}
	v := binary.LittleEndian.Uint64(p.buf[p.off:])
	p.off += 8
	return float64(v>>11) / float64(1<<53)
}

// Gaussian implements NoiseSource.
func (p *PhysicalNoise) Gaussian() float64 {
	return boxMuller(p.uniform(), p.uniform())
}

// DeterministicNoise is a seeded, reproducible NoiseSource based on
// SplitMix64. It is intended for tests, characterization reproducibility and
// benchmarks; it is NOT suitable for generating keys.
type DeterministicNoise struct {
	mu    sync.Mutex
	state uint64
}

// NewDeterministicNoise returns a reproducible noise source seeded with seed.
func NewDeterministicNoise(seed uint64) *DeterministicNoise {
	return &DeterministicNoise{state: seed ^ 0xd1b54a32d192ed03}
}

func (d *DeterministicNoise) next() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out uint64
	d.state, out = splitmix64(d.state)
	return out
}

// Gaussian implements NoiseSource.
func (d *DeterministicNoise) Gaussian() float64 {
	return boxMuller(unitFloat(d.next()), unitFloat(d.next()))
}

// BankNoiseSource is an optional NoiseSource extension providing one
// independent noise stream per bank. When a Device's noise source implements
// it, activation-failure injection draws from the stream of the bank being
// accessed, so the bit sequence harvested from a bank depends only on that
// bank's own command order. This models per-bank sense amplifiers having
// independent analog noise, and it is what makes concurrent multi-bank
// harvesting reproducible: goroutines driving disjoint banks cannot perturb
// each other's noise draws no matter how the scheduler interleaves them.
type BankNoiseSource interface {
	NoiseSource
	// GaussianFor returns one standard-normal sample from the stream
	// dedicated to bank.
	GaussianFor(bank int) float64
}

// DeterministicBankNoise is a seeded NoiseSource with an independent
// reproducible SplitMix64 stream per bank. Like DeterministicNoise it is for
// tests, characterization and benchmarks only — never for generating keys.
type DeterministicBankNoise struct {
	mu      sync.Mutex
	seed    uint64
	streams map[int]*uint64
}

// NewDeterministicBankNoise returns a reproducible per-bank noise source
// seeded with seed.
func NewDeterministicBankNoise(seed uint64) *DeterministicBankNoise {
	return &DeterministicBankNoise{seed: seed, streams: make(map[int]*uint64)}
}

func (d *DeterministicBankNoise) nextFor(bank int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	state, ok := d.streams[bank]
	if !ok {
		// Derive the stream seed from (seed, bank) so streams are
		// decorrelated; run one splitmix round over the mix for diffusion.
		s, _ := splitmix64(d.seed ^ (uint64(bank)+1)*0x9e3779b97f4a7c15)
		state = &s
		d.streams[bank] = state
	}
	var out uint64
	*state, out = splitmix64(*state)
	return out
}

// GaussianFor implements BankNoiseSource.
func (d *DeterministicBankNoise) GaussianFor(bank int) float64 {
	return boxMuller(unitFloat(d.nextFor(bank)), unitFloat(d.nextFor(bank)))
}

// Gaussian implements NoiseSource; draws not attributable to a bank (e.g. the
// retention baseline's block perturbation) come from a dedicated stream.
func (d *DeterministicBankNoise) Gaussian() float64 {
	return d.GaussianFor(-1)
}

var (
	_ NoiseSource     = (*PhysicalNoise)(nil)
	_ NoiseSource     = (*DeterministicNoise)(nil)
	_ BankNoiseSource = (*DeterministicBankNoise)(nil)
)
