package dram

import (
	"testing"

	"repro/internal/timing"
)

func testDevice(t *testing.T, seed uint64) *Device {
	t.Helper()
	d, err := NewDevice(Config{
		Serial:       seed,
		Manufacturer: ManufacturerA,
		Noise:        NewDeterministicNoise(seed),
	})
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func TestNewDeviceDefaults(t *testing.T) {
	d := testDevice(t, 1)
	if d.Geometry().Banks != 8 {
		t.Errorf("default banks = %d, want 8", d.Geometry().Banks)
	}
	if d.Timing().Type != timing.LPDDR4 {
		t.Errorf("default timing type = %v, want LPDDR4", d.Timing().Type)
	}
	if d.Manufacturer() != ManufacturerA {
		t.Errorf("manufacturer = %v, want A", d.Manufacturer())
	}
	if d.Temperature() != BaselineTemperatureC {
		t.Errorf("initial temperature = %v, want %v", d.Temperature(), BaselineTemperatureC)
	}
	if d.Serial() != 1 {
		t.Errorf("serial = %d, want 1", d.Serial())
	}
}

func TestNewDeviceDDR3Defaults(t *testing.T) {
	d, err := NewDevice(Config{Serial: 5, Manufacturer: ManufacturerB, Timing: timing.NewDDR3(), Noise: NewDeterministicNoise(1)})
	if err != nil {
		t.Fatal(err)
	}
	if d.Geometry().WordBits != 512 {
		t.Errorf("DDR3 word bits = %d, want 512", d.Geometry().WordBits)
	}
}

func TestNewDeviceRejectsBadConfig(t *testing.T) {
	if _, err := NewDevice(Config{Manufacturer: Manufacturer("X")}); err == nil {
		t.Error("unknown manufacturer accepted")
	}
	bad := MustProfile(ManufacturerA)
	bad.NoiseSigmaNS = 0
	if _, err := NewDevice(Config{Profile: &bad}); err == nil {
		t.Error("invalid profile accepted")
	}
	g := DefaultLPDDR4Geometry()
	g.WordBits = 100
	if _, err := NewDevice(Config{Manufacturer: ManufacturerA, Geometry: g}); err == nil {
		t.Error("invalid geometry accepted")
	}
	tp := timing.NewLPDDR4()
	tp.TRCD = -1
	if _, err := NewDevice(Config{Manufacturer: ManufacturerA, Timing: tp}); err == nil {
		t.Error("invalid timing accepted")
	}
}

func TestSetTemperatureBounds(t *testing.T) {
	d := testDevice(t, 2)
	if err := d.SetTemperature(55); err != nil {
		t.Errorf("SetTemperature(55): %v", err)
	}
	if d.Temperature() != 55 {
		t.Errorf("Temperature = %v, want 55", d.Temperature())
	}
	if err := d.SetTemperature(-100); err == nil {
		t.Error("SetTemperature(-100) should fail")
	}
	if err := d.SetTemperature(500); err == nil {
		t.Error("SetTemperature(500) should fail")
	}
}

func TestActivateReadWriteRoundTrip(t *testing.T) {
	d := testDevice(t, 3)
	g := d.Geometry()
	word := make([]uint64, g.WordBits/64)
	for i := range word {
		word[i] = 0xAAAAAAAAAAAAAAAA
	}

	if err := d.Activate(0, 10, d.Timing().TRCD); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteWord(0, 3, word); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadWord(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range word {
		if got[i] != word[i] {
			t.Fatalf("word[%d] = %x, want %x (default tRCD must be error-free)", i, got[i], word[i])
		}
	}
	if err := d.Precharge(0); err != nil {
		t.Fatal(err)
	}
	if row, _ := d.OpenRow(0); row != -1 {
		t.Errorf("OpenRow after precharge = %d, want -1", row)
	}
}

func TestActivateErrors(t *testing.T) {
	d := testDevice(t, 4)
	if err := d.Activate(-1, 0, 18); err == nil {
		t.Error("negative bank accepted")
	}
	if err := d.Activate(0, -1, 18); err == nil {
		t.Error("negative row accepted")
	}
	if err := d.Activate(0, 1<<30, 18); err == nil {
		t.Error("out-of-range row accepted")
	}
	if err := d.Activate(0, 0, 0); err == nil {
		t.Error("zero tRCD accepted")
	}
	if err := d.Activate(0, 0, 18); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(0, 1, 18); err == nil {
		t.Error("double activation accepted")
	}
}

func TestReadWriteRequireOpenRow(t *testing.T) {
	d := testDevice(t, 5)
	if _, err := d.ReadWord(0, 0); err == nil {
		t.Error("read with closed row accepted")
	}
	word := make([]uint64, d.Geometry().WordBits/64)
	if err := d.WriteWord(0, 0, word); err == nil {
		t.Error("write with closed row accepted")
	}
	if err := d.WriteWord(0, 0, word[:1]); err == nil {
		t.Error("short word accepted")
	}
}

func TestDefaultTRCDNeverFails(t *testing.T) {
	d := testDevice(t, 6)
	g := d.Geometry()
	zero := make([]uint64, g.rowU64s())
	for row := 0; row < 64; row++ {
		if err := d.WriteRow(0, row, zero); err != nil {
			t.Fatal(err)
		}
	}
	for row := 0; row < 64; row++ {
		if err := d.Activate(0, row, d.Timing().TRCD); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < g.WordsPerRow(); w++ {
			got, err := d.ReadWord(0, w)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range got {
				if v != 0 {
					t.Fatalf("row %d word %d: default-tRCD read returned %x, want all zeros", row, w, v)
				}
			}
		}
		if err := d.Precharge(0); err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().InjectedFlips != 0 {
		t.Errorf("InjectedFlips = %d, want 0 at default tRCD", d.Stats().InjectedFlips)
	}
}

func TestReducedTRCDInducesFailures(t *testing.T) {
	d := testDevice(t, 7)
	g := d.Geometry()
	zero := make([]uint64, g.rowU64s())
	flips := 0
	for row := 0; row < 256; row++ {
		if err := d.WriteRow(0, row, zero); err != nil {
			t.Fatal(err)
		}
	}
	for iter := 0; iter < 5; iter++ {
		for row := 0; row < 256; row++ {
			if err := d.Activate(0, row, 8.0); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < g.WordsPerRow(); w++ {
				got, err := d.ReadWord(0, w)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range got {
					if v != 0 {
						flips++
					}
				}
				// Restore original data as Algorithm 2 does.
				if err := d.WriteWord(0, w, zero[:g.wordU64s()]); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Precharge(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if flips == 0 {
		t.Error("no activation failures observed at tRCD=8 ns across 256 rows and 5 iterations")
	}
}

func TestOnlyFirstWordAfterActivationFails(t *testing.T) {
	d := testDevice(t, 8)
	g := d.Geometry()
	zero := make([]uint64, g.rowU64s())

	// Find a word with at least one weak, vulnerable cell and high failure
	// probability by scanning the model directly.
	targetRow, targetWord := -1, -1
	for row := 0; row < g.RowsPerBank && targetRow < 0; row++ {
		for w := 0; w < g.WordsPerRow(); w++ {
			cols, err := d.WeakColumnsInWord(0, row, w)
			if err != nil {
				t.Fatal(err)
			}
			for _, col := range cols {
				c, err := d.CellCharacter(0, row, col)
				if err != nil {
					t.Fatal(err)
				}
				if !c.AntiCell && c.FailureProbability(6.0, BaselineTemperatureC, 0) > 0.95 {
					targetRow, targetWord = row, w
					break
				}
			}
			if targetRow >= 0 {
				break
			}
		}
	}
	if targetRow < 0 {
		t.Skip("no high-probability cell found with this seed")
	}

	if err := d.WriteRow(0, targetRow, zero); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(0, targetRow, 6.0); err != nil {
		t.Fatal(err)
	}
	// First access goes to a DIFFERENT word: failures are bound to the first
	// accessed word only, so the target word must then read clean.
	otherWord := (targetWord + 1) % g.WordsPerRow()
	if _, err := d.ReadWord(0, otherWord); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadWord(0, targetWord)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v != 0 {
			t.Error("second accessed word contained failures; only the first word after activation may fail")
		}
	}
	if err := d.Precharge(0); err != nil {
		t.Fatal(err)
	}
}

func TestFailuresCorruptStoredRowUntilRewritten(t *testing.T) {
	d := testDevice(t, 9)
	g := d.Geometry()
	zero := make([]uint64, g.rowU64s())

	// Find a near-certain failing cell.
	targetRow, targetWord, targetCol := -1, -1, -1
	for row := 0; row < g.RowsPerBank && targetRow < 0; row++ {
		for w := 0; w < g.WordsPerRow(); w++ {
			cols, _ := d.WeakColumnsInWord(0, row, w)
			for _, col := range cols {
				c, _ := d.CellCharacter(0, row, col)
				if !c.AntiCell && c.FailureProbability(6.0, BaselineTemperatureC, 0) > 0.999 {
					targetRow, targetWord, targetCol = row, w, col
					break
				}
			}
			if targetRow >= 0 {
				break
			}
		}
	}
	if targetRow < 0 {
		t.Skip("no near-certain failing cell found with this seed")
	}
	if err := d.WriteRow(0, targetRow, zero); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(0, targetRow, 6.0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadWord(0, targetWord); err != nil {
		t.Fatal(err)
	}
	if err := d.Precharge(0); err != nil {
		t.Fatal(err)
	}
	raw, err := d.ReadRowRaw(0, targetRow)
	if err != nil {
		t.Fatal(err)
	}
	if getBit(raw, targetCol) == 0 {
		t.Error("activation failure should have been restored into the array (bit still 0)")
	}
}

func TestStartupRowDeterministicAndDeviceSpecific(t *testing.T) {
	d1 := testDevice(t, 10)
	d2 := testDevice(t, 11)
	a, err := d1.StartupRow(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d1.StartupRow(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := d2.StartupRow(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("startup values not stable across reads")
	}
	if !diff {
		t.Error("startup values identical across different devices")
	}
	if _, err := d1.StartupRow(99, 0); err == nil {
		t.Error("out-of-range bank accepted")
	}
}

func TestRefreshRequiresClosedRows(t *testing.T) {
	d := testDevice(t, 12)
	if err := d.Refresh(); err != nil {
		t.Fatalf("refresh with all banks closed: %v", err)
	}
	if err := d.Activate(2, 5, 18); err != nil {
		t.Fatal(err)
	}
	if err := d.Refresh(); err == nil {
		t.Error("refresh with open row accepted")
	}
}

func TestDeviceStatsCount(t *testing.T) {
	d := testDevice(t, 13)
	g := d.Geometry()
	word := make([]uint64, g.wordU64s())
	if err := d.Activate(0, 0, 10.0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadWord(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteWord(0, 0, word); err != nil {
		t.Fatal(err)
	}
	if err := d.Precharge(0); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Activates != 1 || s.Reads != 1 || s.Writes != 1 || s.Precharges != 1 {
		t.Errorf("stats = %+v, want 1 of each", s)
	}
	if s.ReducedTRCDAct != 1 {
		t.Errorf("ReducedTRCDAct = %d, want 1", s.ReducedTRCDAct)
	}
}

func TestFailureProbabilityAtMatchesCellModel(t *testing.T) {
	d := testDevice(t, 14)
	g := d.Geometry()
	zero := make([]uint64, g.rowU64s())
	if err := d.WriteRow(0, 0, zero); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRow(0, 1, zero); err != nil {
		t.Fatal(err)
	}
	found := false
	for col := 0; col < g.ColsPerRow; col++ {
		p, err := d.FailureProbabilityAt(0, 0, col, 10.0)
		if err != nil {
			t.Fatal(err)
		}
		if p > 0 {
			found = true
			if p > 1 {
				t.Errorf("probability %v > 1", p)
			}
		}
	}
	if !found {
		t.Error("no cell with positive failure probability at tRCD=10 in row 0")
	}
	if _, err := d.FailureProbabilityAt(0, 0, -1, 10); err == nil {
		t.Error("negative column accepted")
	}
}

func TestWriteRowValidation(t *testing.T) {
	d := testDevice(t, 15)
	if err := d.WriteRow(0, 0, make([]uint64, 3)); err == nil {
		t.Error("short row data accepted")
	}
	if err := d.WriteRow(0, 1<<30, make([]uint64, d.Geometry().rowU64s())); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := d.ReadRowRaw(0, 1<<30); err == nil {
		t.Error("out-of-range row accepted by ReadRowRaw")
	}
}

func TestBitHelpers(t *testing.T) {
	data := make([]uint64, 2)
	setBit(data, 5, 1)
	if getBit(data, 5) != 1 {
		t.Error("setBit/getBit mismatch")
	}
	setBit(data, 5, 0)
	if getBit(data, 5) != 0 {
		t.Error("clearing a bit failed")
	}
	flipBit(data, 70)
	if getBit(data, 70) != 1 {
		t.Error("flipBit failed to set")
	}
	flipBit(data, 70)
	if getBit(data, 70) != 0 {
		t.Error("flipBit failed to clear")
	}
}
