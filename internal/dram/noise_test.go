package dram

import (
	"math"
	"sync"
	"testing"
)

func checkGaussianMoments(t *testing.T, name string, src NoiseSource, n int) {
	t.Helper()
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		g := src.Gaussian()
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("%s produced non-finite sample %v", name, g)
		}
		sum += g
		sumSq += g * g
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.08 {
		t.Errorf("%s mean = %v, want ~0", name, mean)
	}
	if math.Abs(variance-1) > 0.15 {
		t.Errorf("%s variance = %v, want ~1", name, variance)
	}
}

func TestPhysicalNoiseMoments(t *testing.T) {
	checkGaussianMoments(t, "PhysicalNoise", NewPhysicalNoise(), 5000)
}

func TestDeterministicNoiseMoments(t *testing.T) {
	checkGaussianMoments(t, "DeterministicNoise", NewDeterministicNoise(7), 5000)
}

func TestDeterministicNoiseReproducible(t *testing.T) {
	a := NewDeterministicNoise(99)
	b := NewDeterministicNoise(99)
	for i := 0; i < 100; i++ {
		if a.Gaussian() != b.Gaussian() {
			t.Fatalf("same-seed sources diverged at sample %d", i)
		}
	}
}

func TestDeterministicNoiseSeedSensitivity(t *testing.T) {
	a := NewDeterministicNoise(1)
	b := NewDeterministicNoise(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Gaussian() == b.Gaussian() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds produced %d/100 identical samples", same)
	}
}

func TestDeterministicBankNoiseMoments(t *testing.T) {
	checkGaussianMoments(t, "DeterministicBankNoise", NewDeterministicBankNoise(7), 5000)
}

func TestDeterministicBankNoiseStreamsIndependent(t *testing.T) {
	// Draws on one bank's stream must not advance another bank's stream, no
	// matter how draws interleave across banks.
	a := NewDeterministicBankNoise(42)
	b := NewDeterministicBankNoise(42)
	var seqA []float64
	for i := 0; i < 50; i++ {
		seqA = append(seqA, a.GaussianFor(2))
	}
	for i := 0; i < 50; i++ {
		_ = b.GaussianFor(0)
		got := b.GaussianFor(2)
		_ = b.GaussianFor(5)
		if got != seqA[i] {
			t.Fatalf("bank-2 stream diverged at sample %d when interleaved with other banks", i)
		}
	}
	// Distinct banks must produce decorrelated streams.
	c := NewDeterministicBankNoise(42)
	same := 0
	for i := 0; i < 100; i++ {
		if c.GaussianFor(0) == c.GaussianFor(1) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("banks 0 and 1 produced %d/100 identical samples", same)
	}
}

func TestNoiseSourcesConcurrentUse(t *testing.T) {
	for _, src := range []NoiseSource{NewPhysicalNoise(), NewDeterministicNoise(3), NewDeterministicBankNoise(3)} {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					_ = src.Gaussian()
				}
			}()
		}
		wg.Wait()
	}
}

func TestBoxMullerHandlesZeroUniform(t *testing.T) {
	v := boxMuller(0, 0.5)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("boxMuller(0, 0.5) = %v, want finite", v)
	}
}
