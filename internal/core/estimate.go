package core

import (
	"fmt"

	"repro/internal/memctrl"
	"repro/internal/power"
	"repro/internal/sim"
)

// ThroughputEstimate measures the D-RaNGe throughput (Mb/s) achievable with
// the top `banks` bank selections, by timing the Algorithm 2 core loop on
// the cycle-accurate controller. This is the computation behind Figure 8 and
// Equation 1 of the paper.
func ThroughputEstimate(ctrl *memctrl.Controller, selections []BankSelection, trcdNS float64, banks, iterations int) (sim.LoopResult, error) {
	if banks <= 0 {
		return sim.LoopResult{}, fmt.Errorf("core: banks must be positive, got %d", banks)
	}
	if banks > len(selections) {
		return sim.LoopResult{}, fmt.Errorf("core: requested %d banks but only %d selections available", banks, len(selections))
	}
	words := make([]sim.BankWords, 0, banks)
	for _, s := range selections[:banks] {
		words = append(words, s.ToSimWords())
	}
	return sim.MeasureAlg2Loop(ctrl, words, trcdNS, iterations)
}

// MultiChannelThroughputMbps scales a single-channel throughput to a memory
// hierarchy with the given number of independent DRAM channels, as the paper
// does to report the 4-channel peak of 717.4 Mb/s.
func MultiChannelThroughputMbps(perChannelMbps float64, channels int) (float64, error) {
	if channels <= 0 {
		return 0, fmt.Errorf("core: channels must be positive, got %d", channels)
	}
	if perChannelMbps < 0 {
		return 0, fmt.Errorf("core: negative per-channel throughput")
	}
	return perChannelMbps * float64(channels), nil
}

// LatencyEstimate measures the time (ns) to harvest targetBits random bits
// with the given bank selections — the Section 7.3 latency analysis. The
// paper's bounds come from the two extremes: a single bank whose words hold
// one RNG cell each (maximum latency) and all banks of all channels with
// four RNG cells per word (minimum latency). Multiple channels operate
// independently, so the caller divides targetBits across channels before
// calling.
func LatencyEstimate(ctrl *memctrl.Controller, selections []BankSelection, trcdNS float64, banks, targetBits int) (float64, error) {
	if banks <= 0 || banks > len(selections) {
		return 0, fmt.Errorf("core: banks must be in [1,%d], got %d", len(selections), banks)
	}
	words := make([]sim.BankWords, 0, banks)
	for _, s := range selections[:banks] {
		words = append(words, s.ToSimWords())
	}
	return sim.SimulateLatency(ctrl, words, trcdNS, targetBits)
}

// EnergyEstimate runs the Algorithm 2 loop on a trace-enabled controller and
// returns the marginal energy per generated bit in nanojoules, following the
// paper's DRAMPower-based methodology (trace energy minus idle energy,
// divided by bits generated).
func EnergyEstimate(ctrl *memctrl.Controller, selections []BankSelection, trcdNS float64, banks, iterations int, model power.Model) (float64, error) {
	if banks <= 0 || banks > len(selections) {
		return 0, fmt.Errorf("core: banks must be in [1,%d], got %d", len(selections), banks)
	}
	ctrl.ResetTrace()
	startCycle := ctrl.Now()
	res, err := ThroughputEstimate(ctrl, selections, trcdNS, banks, iterations)
	if err != nil {
		return 0, err
	}
	bits := int64(res.BitsPerIteration) * int64(iterations)
	if bits == 0 {
		return 0, fmt.Errorf("core: selections yielded no bits")
	}
	trace := ctrl.Trace()
	if len(trace) == 0 {
		return 0, fmt.Errorf("core: controller has no command trace; construct it with memctrl.WithTrace()")
	}
	return model.EnergyPerBitNJ(trace, ctrl.Params(), ctrl.Now()-startCycle, bits)
}
