package core

import (
	"testing"

	"repro/internal/memctrl"
	"repro/internal/power"
)

// selectionsForEstimation builds selections across several banks of a test
// device; estimation only needs plausible word choices, not real RNG cells,
// so it synthesises selections with a fixed bit count when identification
// yields too few banks.
func selectionsForEstimation(t *testing.T, ctrl *memctrl.Controller, banks, bitsPerBank int) []BankSelection {
	t.Helper()
	sels := make([]BankSelection, 0, banks)
	for b := 0; b < banks; b++ {
		cells1 := make([]RNGCell, 0, bitsPerBank/2+1)
		cells2 := make([]RNGCell, 0, bitsPerBank/2)
		for i := 0; i < bitsPerBank; i++ {
			c := RNGCell{Fprob: 0.5}
			if i%2 == 0 {
				c.Addr.Bank, c.Addr.Row, c.Addr.Col = b, 10, i
				c.WordIdx = 0
				cells1 = append(cells1, c)
			} else {
				c.Addr.Bank, c.Addr.Row, c.Addr.Col = b, 20, 256+i
				c.WordIdx = 1
				cells2 = append(cells2, c)
			}
		}
		sels = append(sels, BankSelection{
			Bank:  b,
			Word1: WordRef{Bank: b, Row: 10, WordIdx: 0, RNGCells: cells1},
			Word2: WordRef{Bank: b, Row: 20, WordIdx: 1, RNGCells: cells2},
		})
	}
	return sels
}

func TestThroughputEstimateScalesWithBanks(t *testing.T) {
	sels := selectionsForEstimation(t, nil, 4, 2)
	var prev float64
	for _, banks := range []int{1, 2, 4} {
		ctrl := newController(t, 200)
		res, err := ThroughputEstimate(ctrl, sels, 10.0, banks, 40)
		if err != nil {
			t.Fatal(err)
		}
		if res.ThroughputMbps <= prev {
			t.Errorf("throughput with %d banks (%v Mb/s) did not exceed %v", banks, res.ThroughputMbps, prev)
		}
		prev = res.ThroughputMbps
	}
}

func TestThroughputEstimateValidation(t *testing.T) {
	ctrl := newController(t, 201)
	sels := selectionsForEstimation(t, ctrl, 2, 2)
	if _, err := ThroughputEstimate(ctrl, sels, 10, 0, 10); err == nil {
		t.Error("zero banks accepted")
	}
	if _, err := ThroughputEstimate(ctrl, sels, 10, 5, 10); err == nil {
		t.Error("more banks than selections accepted")
	}
}

func TestMultiChannelThroughput(t *testing.T) {
	got, err := MultiChannelThroughputMbps(108.9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4*108.9 {
		t.Errorf("MultiChannelThroughputMbps = %v, want %v", got, 4*108.9)
	}
	if _, err := MultiChannelThroughputMbps(1, 0); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := MultiChannelThroughputMbps(-1, 1); err == nil {
		t.Error("negative throughput accepted")
	}
}

func TestLatencyEstimateOrdering(t *testing.T) {
	sels := selectionsForEstimation(t, nil, 4, 2)
	slowCtrl := newController(t, 202)
	slow, err := LatencyEstimate(slowCtrl, sels[:1], 10.0, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	fastCtrl := newController(t, 203)
	fast, err := LatencyEstimate(fastCtrl, sels, 10.0, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if fast >= slow {
		t.Errorf("4-bank latency (%v ns) should beat 1-bank latency (%v ns)", fast, slow)
	}
	if _, err := LatencyEstimate(fastCtrl, sels, 10, 0, 64); err == nil {
		t.Error("zero banks accepted")
	}
}

func TestEnergyEstimateInNanojouleRange(t *testing.T) {
	ctrl := newController(t, 204, memctrl.WithTrace())
	sels := selectionsForEstimation(t, ctrl, 4, 2)
	nj, err := EnergyEstimate(ctrl, sels, 10.0, 4, 100, power.NewLPDDR4Model())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ~4.4 nJ/bit; the model should land within an order
	// of magnitude.
	if nj < 0.4 || nj > 44 {
		t.Errorf("energy per bit = %v nJ, want within [0.4, 44] (paper: 4.4 nJ/bit)", nj)
	}
}

func TestEnergyEstimateRequiresTrace(t *testing.T) {
	ctrl := newController(t, 205) // no trace
	sels := selectionsForEstimation(t, ctrl, 2, 2)
	if _, err := EnergyEstimate(ctrl, sels, 10.0, 2, 10, power.NewLPDDR4Model()); err == nil {
		t.Error("controller without trace accepted")
	}
	ctrlT := newController(t, 206, memctrl.WithTrace())
	if _, err := EnergyEstimate(ctrlT, sels, 10.0, 0, 10, power.NewLPDDR4Model()); err == nil {
		t.Error("zero banks accepted")
	}
}
