package core

import "math/bits"

// bitBuffer is a FIFO of bits packed 64 per uint64 word. It replaces the
// byte-per-bit queue the original TRNG used: an 8× smaller footprint for the
// same number of buffered bits, and a representation the Engine's packed-word
// ring can drain without re-encoding. The zero value is an empty buffer.
type bitBuffer struct {
	words []uint64
	// head and tail are absolute bit offsets into words: head is the first
	// unconsumed bit, tail is one past the last appended bit.
	head int
	tail int
}

// Len returns the number of buffered (unconsumed) bits.
func (b *bitBuffer) Len() int { return b.tail - b.head }

// Append adds one bit (0 or 1) at the tail.
func (b *bitBuffer) Append(bit byte) {
	if b.tail == len(b.words)*64 {
		b.words = append(b.words, 0)
	}
	if bit != 0 {
		b.words[b.tail>>6] |= 1 << uint(b.tail&63)
	} else {
		b.words[b.tail>>6] &^= 1 << uint(b.tail&63)
	}
	b.tail++
}

// popBit removes and returns the bit at the head without reclaiming storage;
// bulk callers compact once when done. It panics on an empty buffer; callers
// check Len first.
func (b *bitBuffer) popBit() byte {
	bit := byte((b.words[b.head>>6] >> uint(b.head&63)) & 1)
	b.head++
	return bit
}

// PopBits removes the first n bits and returns them one per byte (values 0
// or 1). It panics if fewer than n bits are buffered.
func (b *bitBuffer) PopBits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b.popBit()
	}
	b.compact()
	return out
}

// popChunk removes the first n bits (n <= 64) and returns them packed
// LSB-first: bit i of the result is the i-th popped bit. It panics if fewer
// than n bits are buffered; callers check Len first. Storage is not
// reclaimed; bulk callers compact once when done.
func (b *bitBuffer) popChunk(n int) uint64 {
	w, off := b.head>>6, uint(b.head&63)
	v := b.words[w] >> off
	if got := 64 - int(off); got < n {
		v |= b.words[w+1] << uint(got)
	}
	if n < 64 {
		v &= (1 << uint(n)) - 1
	}
	b.head += n
	return v
}

// PopPacked removes the first 8*len(p) bits and packs them into p, eight bits
// per output byte, most significant bit first — the same encoding
// PackBitsMSBFirst produces — without any intermediate bit-per-byte slice. It
// panics if fewer than 8*len(p) bits are buffered.
//
//drange:noalloc
func (b *bitBuffer) PopPacked(p []byte) {
	i := 0
	for ; i+8 <= len(p); i += 8 {
		w := b.popChunk(64)
		// The chunk is LSB-first in stream order; Reverse8 of each byte
		// yields the MSB-first byte encoding.
		p[i] = bits.Reverse8(byte(w))
		p[i+1] = bits.Reverse8(byte(w >> 8))
		p[i+2] = bits.Reverse8(byte(w >> 16))
		p[i+3] = bits.Reverse8(byte(w >> 24))
		p[i+4] = bits.Reverse8(byte(w >> 32))
		p[i+5] = bits.Reverse8(byte(w >> 40))
		p[i+6] = bits.Reverse8(byte(w >> 48))
		p[i+7] = bits.Reverse8(byte(w >> 56))
	}
	for ; i < len(p); i++ {
		p[i] = bits.Reverse8(byte(b.popChunk(8)))
	}
	b.compact()
}

// PopWord removes up to 64 bits and returns them packed LSB-first together
// with the number of valid bits. An empty buffer returns (0, 0).
func (b *bitBuffer) PopWord() (word uint64, n int) {
	n = b.Len()
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		word |= uint64(b.popBit()) << uint(i)
	}
	b.compact()
	return word, n
}

// PackBitsMSBFirst packs bits (one value-0/1 byte each) into p, eight bits
// per output byte, most significant bit first. len(bits) must be 8*len(p).
// TRNG, Engine and the public facade share it so their byte encodings
// cannot diverge.
func PackBitsMSBFirst(bits []byte, p []byte) {
	for i := range p {
		var b byte
		for j := 0; j < 8; j++ {
			b = b<<1 | (bits[i*8+j] & 1)
		}
		p[i] = b
	}
}

// BEUint64 assembles a big-endian 64-bit value from buf.
func BEUint64(buf [8]byte) uint64 {
	var v uint64
	for _, b := range buf {
		v = v<<8 | uint64(b)
	}
	return v
}

// compact reclaims fully-consumed leading words and resets an empty buffer so
// long-lived buffers do not grow without bound.
func (b *bitBuffer) compact() {
	if b.head == b.tail {
		b.words = b.words[:0]
		b.head, b.tail = 0, 0
		return
	}
	if w := b.head >> 6; w > 0 {
		b.words = append(b.words[:0], b.words[w:]...)
		b.head -= w << 6
		b.tail -= w << 6
	}
}
