package core

import (
	"bytes"
	"testing"
)

func TestBitBufferRoundTrip(t *testing.T) {
	var b bitBuffer
	var want []byte
	for i := 0; i < 300; i++ {
		bit := byte((i * 7 / 3) & 1)
		b.Append(bit)
		want = append(want, bit)
	}
	if b.Len() != 300 {
		t.Fatalf("Len = %d, want 300", b.Len())
	}
	got := b.PopBits(300)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bit %d = %d, want %d", i, got[i], want[i])
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", b.Len())
	}
}

func TestBitBufferPopWordPacksLSBFirst(t *testing.T) {
	var b bitBuffer
	// 64 bits: alternating 1,0,1,0,... => 0x5555... pattern.
	for i := 0; i < 64; i++ {
		b.Append(byte((i + 1) & 1))
	}
	word, n := b.PopWord()
	if n != 64 {
		t.Fatalf("PopWord n = %d, want 64", n)
	}
	if word != 0x5555555555555555 {
		t.Fatalf("PopWord = %#x, want 0x5555555555555555", word)
	}
	// Partial word.
	b.Append(1)
	b.Append(1)
	b.Append(0)
	word, n = b.PopWord()
	if n != 3 || word != 0b011 {
		t.Fatalf("PopWord = (%#b, %d), want (0b11, 3)", word, n)
	}
	if word, n := b.PopWord(); n != 0 || word != 0 {
		t.Fatalf("PopWord on empty buffer = (%d, %d), want (0, 0)", word, n)
	}
}

func TestBitBufferInterleavedAppendPop(t *testing.T) {
	var b bitBuffer
	next, popped := 0, 0
	bitAt := func(i int) byte { return byte((i*i + i/5) & 1) }
	for round := 0; round < 50; round++ {
		for i := 0; i < 37; i++ {
			b.Append(bitAt(next))
			next++
		}
		for _, bit := range b.PopBits(29) {
			if bit != bitAt(popped) {
				t.Fatalf("bit %d corrupted across interleaved append/pop", popped)
			}
			popped++
		}
	}
	if b.Len() != next-popped {
		t.Fatalf("Len = %d, want %d", b.Len(), next-popped)
	}
	// The buffer must not retain consumed words: with ~8 words of live bits
	// the backing array should stay small.
	if len(b.words) > 32 {
		t.Errorf("buffer retains %d words for %d live bits; compaction failed", len(b.words), b.Len())
	}
}

// TestPopPackedMatchesPopBits: PopPacked must produce the PackBitsMSBFirst
// encoding of the same bits PopBits would return, across random chunkings
// and non-byte-aligned interleavings.
func TestPopPackedMatchesPopBits(t *testing.T) {
	state := uint64(42)
	nextBit := func() byte {
		state = state*6364136223846793005 + 1442695040888963407
		return byte(state >> 63)
	}
	var a, b bitBuffer
	var stream []byte
	for i := 0; i < 10000; i++ {
		bit := nextBit()
		a.Append(bit)
		b.Append(bit)
		stream = append(stream, bit)
	}
	// Interleave byte-aligned packed pops with odd-length bit pops on buffer
	// a; buffer b serves as the bit-per-byte reference.
	sizes := []int{8, 3, 64, 1, 16, 7, 120, 33}
	off := 0
	for i := 0; a.Len() > 200; i++ {
		n := sizes[i%len(sizes)]
		if n%8 == 0 {
			packed := make([]byte, n/8)
			a.PopPacked(packed)
			want := make([]byte, n/8)
			PackBitsMSBFirst(stream[off:off+n], want)
			if !bytes.Equal(packed, want) {
				t.Fatalf("PopPacked at offset %d: got %x want %x", off, packed, want)
			}
			b.PopBits(n)
		} else {
			got := a.PopBits(n)
			if !bytes.Equal(got, stream[off:off+n]) {
				t.Fatalf("PopBits at offset %d diverged", off)
			}
			b.PopBits(n)
		}
		off += n
	}
}
