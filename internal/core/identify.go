// Package core implements D-RaNGe, the paper's contribution: identifying
// DRAM cells that produce truly random values when read with a reduced
// activation latency (RNG cells, Section 6.1), selecting the best DRAM words
// per bank, and continuously sampling those cells to produce a
// high-throughput stream of true random numbers (Algorithm 2, Section 6.2),
// together with the throughput, latency and energy estimators used in the
// evaluation (Section 7.3).
package core

import (
	"fmt"
	"sort"

	"repro/internal/entropy"
	"repro/internal/memctrl"
	"repro/internal/pattern"
	"repro/internal/profiler"
)

// RNGCell is a DRAM cell identified as a reliable entropy source: reading it
// with a reduced tRCD returns values that are statistically uniform.
type RNGCell struct {
	Addr profiler.CellAddr
	// WordIdx is the DRAM word containing the cell.
	WordIdx int
	// Fprob is the observed activation-failure probability during
	// identification.
	Fprob float64
	// SymbolEntropy is the Shannon entropy (bits per symbol) of the 3-bit
	// symbol distribution observed during identification.
	SymbolEntropy float64
}

// IdentifyConfig controls RNG-cell identification.
type IdentifyConfig struct {
	// TRCDNS is the reduced activation latency used for sampling (10 ns by
	// default, as in the characterization).
	TRCDNS float64
	// ScreenIterations is the number of iterations of the cheap screening
	// pass (Algorithm 1) used to find candidate cells before deep
	// profiling.
	ScreenIterations int
	// Samples is the number of reads per candidate cell in the deep
	// profiling pass (1000 in the paper).
	Samples int
	// SymbolBits is the symbol width used for the uniformity test (3 in the
	// paper).
	SymbolBits int
	// Tolerance is the allowed deviation of each symbol count from the
	// expected count (±10% in the paper).
	Tolerance float64
	// MaxBiasDelta is the maximum allowed deviation of the cell's observed
	// failure probability from one half. An explicit 0 is honoured: it
	// admits only cells whose observed failure probability is exactly one
	// half. DefaultIdentifyConfig selects 0.05. The paper's
	// symbol-uniformity criterion implies such a bound; making it explicit
	// keeps loose-tolerance configurations from admitting biased cells.
	MaxBiasDelta float64
	// Pattern is the data pattern written around the cells during
	// identification and later during generation.
	Pattern pattern.Pattern
}

// DefaultIdentifyConfig returns the paper's identification parameters for a
// device of the given manufacturer: tRCD 10 ns, 1000-sample profiling, 3-bit
// symbols within ±10%, and the manufacturer's best data pattern.
func DefaultIdentifyConfig(m string) IdentifyConfig {
	return IdentifyConfig{
		TRCDNS:           10.0,
		ScreenIterations: 100,
		Samples:          1000,
		SymbolBits:       3,
		Tolerance:        0.10,
		MaxBiasDelta:     0.05,
		Pattern:          pattern.BestFor(m),
	}
}

func (c IdentifyConfig) validate(ctrl *memctrl.Controller) error {
	if c.TRCDNS <= 0 || c.TRCDNS > ctrl.Params().TRCD {
		return fmt.Errorf("core: identification tRCD %v ns outside (0, %v]", c.TRCDNS, ctrl.Params().TRCD)
	}
	if c.ScreenIterations <= 0 {
		return fmt.Errorf("core: screen iterations must be positive, got %d", c.ScreenIterations)
	}
	if c.Samples < 8 {
		return fmt.Errorf("core: need at least 8 samples per cell, got %d", c.Samples)
	}
	if c.SymbolBits < 1 || c.SymbolBits > 8 {
		return fmt.Errorf("core: symbol width %d outside [1,8]", c.SymbolBits)
	}
	if c.Tolerance <= 0 || c.Tolerance >= 1 {
		return fmt.Errorf("core: tolerance %v outside (0,1)", c.Tolerance)
	}
	if c.MaxBiasDelta < 0 || c.MaxBiasDelta >= 0.5 {
		return fmt.Errorf("core: MaxBiasDelta %v outside [0,0.5)", c.MaxBiasDelta)
	}
	return nil
}

// IdentifyRNGCells finds the RNG cells within the region. It first runs a
// cheap screening pass (Algorithm 1) to find candidate failure-prone cells,
// then samples the DRAM words containing candidates cfg.Samples times and
// keeps the cells whose read-value streams are uniform at the configured
// symbol width and tolerance (the Section 6.1 criterion).
func IdentifyRNGCells(ctrl *memctrl.Controller, region profiler.Region, cfg IdentifyConfig) ([]RNGCell, error) {
	if err := cfg.validate(ctrl); err != nil {
		return nil, err
	}
	if err := region.Validate(ctrl); err != nil {
		return nil, err
	}

	// Phase 1: cheap screen for failure-prone cells. A cell whose failure
	// probability is near 0 or 1 cannot produce a uniform stream, so only
	// cells in a broad middle band proceed to deep profiling.
	screen, err := profiler.Run(ctrl, region, profiler.Config{
		TRCDNS:     cfg.TRCDNS,
		Iterations: cfg.ScreenIterations,
		Pattern:    cfg.Pattern,
	})
	if err != nil {
		return nil, err
	}
	candidates := screen.CellsWithFprobBetween(0.15, 0.85)
	if len(candidates) == 0 {
		return nil, nil
	}

	// Group candidates by (row, word) so the deep pass only touches words
	// that contain candidates.
	g := ctrl.Device().Geometry()
	type rw struct{ row, word int }
	byWord := make(map[rw][]profiler.CellAddr)
	for _, c := range candidates {
		key := rw{c.Row, c.Col / g.WordBits}
		byWord[key] = append(byWord[key], c)
	}
	keys := make([]rw, 0, len(byWord))
	for k := range byWord {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].row != keys[j].row {
			return keys[i].row < keys[j].row
		}
		return keys[i].word < keys[j].word
	})

	// Phase 2: deep profiling. Record every candidate cell's read-value
	// stream over cfg.Samples reduced-latency reads.
	if err := profiler.WritePattern(ctrl, region, cfg.Pattern); err != nil {
		return nil, err
	}
	if err := ctrl.SetReducedTRCD(cfg.TRCDNS); err != nil {
		return nil, err
	}
	defer ctrl.ResetTRCD()

	streams := make(map[profiler.CellAddr][]byte, len(candidates))
	for _, cells := range byWord {
		for _, c := range cells {
			streams[c] = make([]byte, 0, cfg.Samples)
		}
	}
	wordU64s := g.WordBits / 64
	for s := 0; s < cfg.Samples; s++ {
		for _, k := range keys {
			expected, err := cfg.Pattern.FillRow(k.row, g.ColsPerRow)
			if err != nil {
				return nil, err
			}
			expWord := expected[k.word*wordU64s : (k.word+1)*wordU64s]
			if err := ctrl.RefreshRow(region.Bank, k.row); err != nil {
				return nil, err
			}
			got, _, err := ctrl.ReadWord(region.Bank, k.row, k.word)
			if err != nil {
				return nil, err
			}
			dirty := false
			for u := 0; u < wordU64s; u++ {
				if got[u] != expWord[u] {
					dirty = true
					break
				}
			}
			for _, c := range byWord[k] {
				bitIdx := c.Col - k.word*g.WordBits
				v := byte((got[bitIdx/64] >> uint(bitIdx%64)) & 1)
				streams[c] = append(streams[c], v)
			}
			if dirty {
				if _, err := ctrl.WriteWord(region.Bank, k.row, k.word, expWord); err != nil {
					return nil, err
				}
			}
			if err := ctrl.PrechargeBank(region.Bank); err != nil {
				return nil, err
			}
		}
	}

	// Apply the Section 6.1 criterion.
	var out []RNGCell
	for c, stream := range streams {
		uniform, err := entropy.SymbolsUniform(stream, cfg.SymbolBits, cfg.Tolerance)
		if err != nil {
			return nil, err
		}
		if !uniform {
			continue
		}
		expBit := cfg.Pattern.Bit(c.Row, c.Col)
		fails := 0
		for _, v := range stream {
			if uint64(v) != expBit {
				fails++
			}
		}
		fprob := float64(fails) / float64(len(stream))
		if fprob < 0.5-cfg.MaxBiasDelta || fprob > 0.5+cfg.MaxBiasDelta {
			continue
		}
		symEnt, err := entropy.ShannonSymbolEntropy(stream, cfg.SymbolBits)
		if err != nil {
			return nil, err
		}
		out = append(out, RNGCell{
			Addr:          c,
			WordIdx:       c.Col / g.WordBits,
			Fprob:         fprob,
			SymbolEntropy: symEnt,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Addr, out[j].Addr
		if a.Bank != b.Bank {
			return a.Bank < b.Bank
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
	return out, nil
}
