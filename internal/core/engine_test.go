package core

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dram"
	"repro/internal/entropy"
	"repro/internal/memctrl"
	"repro/internal/profiler"
)

// engineSetup builds a test device with the given noise source, identifies
// RNG cells over the first `banks` banks and returns the device plus the
// bank-word selections the engine partitions.
func engineSetup(t *testing.T, seed uint64, noise dram.NoiseSource, banks int) (*dram.Device, []BankSelection) {
	t.Helper()
	prof := testProfile()
	dev, err := dram.NewDevice(dram.Config{
		Serial:   seed,
		Profile:  &prof,
		Geometry: testGeometry(),
		Noise:    noise,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := memctrl.NewController(dev)
	var cells []RNGCell
	for b := 0; b < banks; b++ {
		found, err := IdentifyRNGCells(ctrl, testRegion(b), quickIdentifyConfig())
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, found...)
	}
	sels, err := SelectBankWords(cells)
	if err != nil {
		t.Fatal(err)
	}
	return dev, sels
}

func TestNewEngineValidation(t *testing.T) {
	dev, sels := engineSetup(t, 200, dram.NewDeterministicNoise(200), 1)
	if _, err := NewEngine(context.Background(), nil, sels, EngineConfig{}); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := NewEngine(context.Background(), dev, nil, EngineConfig{}); err == nil {
		t.Error("empty selections accepted")
	}
	if _, err := NewEngine(context.Background(), dev, sels, EngineConfig{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	bad := EngineConfig{TRNG: TRNGConfig{TRCDNS: 99}}
	if _, err := NewEngine(context.Background(), dev, sels, bad); err == nil {
		t.Error("tRCD above default accepted")
	}
	// Shard counts above the selection count are clamped: each shard needs a
	// bank.
	eng, err := NewEngine(context.Background(), dev, sels, EngineConfig{Shards: 64, TRNG: DefaultTRNGConfig("A")})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Shards() != len(sels) {
		t.Errorf("Shards() = %d, want clamped to %d", eng.Shards(), len(sels))
	}
}

func TestEngineProducesUnbiasedBitsWithAccounting(t *testing.T) {
	dev, sels := engineSetup(t, 201, dram.NewDeterministicNoise(201), 4)
	eng, err := NewEngine(context.Background(), dev, sels, EngineConfig{Shards: 2, TRNG: DefaultTRNGConfig("A")})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const n = 4096
	bits, err := eng.ReadBits(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != n {
		t.Fatalf("got %d bits, want %d", len(bits), n)
	}
	bias, err := entropy.Bias(bits)
	if err != nil {
		t.Fatal(err)
	}
	if bias < 0.45 || bias > 0.55 {
		t.Errorf("engine output bias = %v, want ~0.5", bias)
	}
	if _, err := eng.ReadBits(0); err == nil {
		t.Error("zero bit request accepted")
	}

	st := eng.Stats()
	if st.BitsDelivered != n {
		t.Errorf("BitsDelivered = %d, want %d", st.BitsDelivered, n)
	}
	if st.BitsHarvested < st.BitsDelivered {
		t.Errorf("BitsHarvested = %d < BitsDelivered = %d", st.BitsHarvested, st.BitsDelivered)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("got %d shard stats, want 2", len(st.Shards))
	}
	banks := 0
	for _, ss := range st.Shards {
		banks += ss.Banks
		if ss.BitsHarvested > 0 && (ss.ThroughputMbps <= 0 || ss.Latency64NS <= 0) {
			t.Errorf("shard %d harvested %d bits but reports throughput %v Mb/s, latency %v ns",
				ss.Shard, ss.BitsHarvested, ss.ThroughputMbps, ss.Latency64NS)
		}
	}
	if banks != len(sels) {
		t.Errorf("shards cover %d banks, want %d", banks, len(sels))
	}
	if st.AggregateThroughputMbps <= 0 {
		t.Error("aggregate throughput not positive")
	}

	var buf [16]byte
	if n, err := eng.Read(buf[:]); n != len(buf) || err != nil {
		t.Fatalf("Read = (%d, %v), want (%d, nil)", n, err, len(buf))
	}
	a, err := eng.Uint64()
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Uint64()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two consecutive Uint64 values identical; extremely unlikely for a TRNG")
	}
}

// TestEngineConcurrentReaders exercises the thread-safe facade from many
// goroutines; run with -race this is the engine's concurrency regression.
func TestEngineConcurrentReaders(t *testing.T) {
	dev, sels := engineSetup(t, 202, dram.NewDeterministicNoise(202), 3)
	eng, err := NewEngine(context.Background(), dev, sels, EngineConfig{Shards: 3, TRNG: DefaultTRNGConfig("A")})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 32)
			for i := 0; i < 10; i++ {
				if _, err := eng.Read(buf); err != nil {
					t.Errorf("concurrent Read: %v", err)
					return
				}
				if _, err := eng.Uint64(); err != nil {
					t.Errorf("concurrent Uint64: %v", err)
					return
				}
				_ = eng.Stats()
			}
		}()
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}
	st := eng.Stats()
	want := int64(8 * 10 * (32*8 + 64))
	if st.BitsDelivered != want {
		t.Errorf("BitsDelivered = %d, want %d", st.BitsDelivered, want)
	}
}

// TestEngineDeterministicSingleShard: under a seeded noise source the
// single-shard engine is a pure function of the device configuration.
func TestEngineDeterministicSingleShard(t *testing.T) {
	run := func() []byte {
		dev, sels := engineSetup(t, 203, dram.NewDeterministicNoise(203), 2)
		eng, err := NewEngine(context.Background(), dev, sels, EngineConfig{Shards: 1, TRNG: DefaultTRNGConfig("A")})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		bits, err := eng.ReadBits(2000)
		if err != nil {
			t.Fatal(err)
		}
		return bits
	}
	if !bytes.Equal(run(), run()) {
		t.Error("single-shard engine output not reproducible under deterministic noise")
	}
}

// TestEngineShardedMatchesSequentialTRNGs is the sharding regression: with
// per-bank noise streams, a 4-shard engine must produce, per shard, exactly
// the bit sequence a sequential single-shard TRNG over the same bank subset
// produces on an identical device — so the engine's output multiset equals
// the union of the four sequential TRNG outputs.
func TestEngineShardedMatchesSequentialTRNGs(t *testing.T) {
	const seed = 204
	devA, selsA := engineSetup(t, seed, dram.NewDeterministicBankNoise(seed), 4)
	if len(selsA) < 4 {
		t.Fatalf("test device yielded %d bank selections, need 4", len(selsA))
	}
	eng, err := NewEngine(context.Background(), devA, selsA, EngineConfig{Shards: 4, TRNG: DefaultTRNGConfig("A")})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Read until every shard has contributed: the ring's arrival order
	// depends on host scheduling, so a fixed read count could be served
	// entirely by the shards that filled the ring first.
	perShard := make([][]byte, eng.Shards())
	for chunk := 0; chunk < 200; chunk++ {
		var tags []int
		bits, err := eng.readBits(1024, &tags)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range bits {
			perShard[tags[i]] = append(perShard[tags[i]], b)
		}
		enough := true
		for _, p := range perShard {
			if len(p) < 256 {
				enough = false
			}
		}
		if enough {
			break
		}
	}

	// An identically-configured device harvested by four sequential
	// single-shard TRNGs over the same partitions.
	devB, selsB := engineSetup(t, seed, dram.NewDeterministicBankNoise(seed), 4)
	if !reflect.DeepEqual(selsA, selsB) {
		t.Fatal("identification diverged between identically-seeded devices")
	}
	for i, part := range eng.parts {
		if len(perShard[i]) == 0 {
			t.Fatalf("shard %d contributed no bits", i)
		}
		trng, err := NewTRNG(memctrl.NewController(devB), part, DefaultTRNGConfig("A"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := trng.ReadBits(len(perShard[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(perShard[i], want) {
			t.Errorf("shard %d bit stream diverged from the sequential single-shard TRNG", i)
		}
	}
}

// TestEngineThroughputScalesWithShards is the Table 2 scaling regression: in
// simulated DRAM time, four shards (four channel controllers, four banks
// each) must harvest at not less than twice the rate of a single controller
// driving the same sixteen banks. One controller pipelines its banks'
// activation latencies but saturates on its command/data bus, which is
// exactly the ceiling the paper's channel-level parallelism lifts.
func TestEngineThroughputScalesWithShards(t *testing.T) {
	prof := testProfile()
	dev, err := dram.NewDevice(dram.Config{
		Serial:  205,
		Profile: &prof,
		Geometry: dram.Geometry{
			Banks:        16,
			RowsPerBank:  64,
			ColsPerRow:   1024,
			SubarrayRows: 64,
			WordBits:     256,
		},
		Noise: dram.NewDeterministicNoise(205),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := memctrl.NewController(dev)
	var cells []RNGCell
	for b := 0; b < 16; b++ {
		region := profiler.Region{Bank: b, RowStart: 0, RowCount: 32, WordStart: 0, WordCount: 4}
		found, err := IdentifyRNGCells(ctrl, region, quickIdentifyConfig())
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, found...)
	}
	sels, err := SelectBankWords(cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) < 8 {
		t.Fatalf("test device yielded %d bank selections, need at least 8", len(sels))
	}

	measure := func(shards int) float64 {
		eng, err := NewEngine(context.Background(), dev, sels, EngineConfig{Shards: shards, TRNG: DefaultTRNGConfig("A")})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if _, err := eng.ReadBits(8192); err != nil {
			t.Fatal(err)
		}
		st := eng.Stats()
		if st.AggregateThroughputMbps <= 0 {
			t.Fatal("no measured throughput")
		}
		return st.AggregateThroughputMbps
	}
	single := measure(1)
	quad := measure(4)
	t.Logf("single-shard %.1f Mb/s, 4-shard %.1f Mb/s (%.2fx)", single, quad, quad/single)
	if quad < 2*single {
		t.Errorf("4-shard engine throughput %.1f Mb/s < 2x single-shard %.1f Mb/s", quad, single)
	}
}

// TestEngineShutdown covers context-based shutdown: readers drain what was
// harvested, then observe a sticky error.
func TestEngineShutdown(t *testing.T) {
	dev, sels := engineSetup(t, 206, dram.NewDeterministicNoise(206), 2)
	ctx, cancel := context.WithCancel(context.Background())
	eng, err := NewEngine(ctx, dev, sels, EngineConfig{Shards: 2, TRNG: DefaultTRNGConfig("A")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ReadBits(256); err != nil {
		t.Fatal(err)
	}
	cancel()
	eng.Close()
	// The bounded ring holds finitely many words, so reads must hit the
	// shutdown error quickly once the buffered bits drain.
	sawErr := false
	for i := 0; i < 1000; i++ {
		if _, err := eng.ReadBits(64); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("reads kept succeeding long after shutdown; ring should drain and error")
	}
}
