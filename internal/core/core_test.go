package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/entropy"
	"repro/internal/memctrl"
	"repro/internal/pattern"
	"repro/internal/profiler"
)

// testGeometry keeps identification fast in unit tests.
func testGeometry() dram.Geometry {
	return dram.Geometry{
		Banks:        4,
		RowsPerBank:  128,
		ColsPerRow:   2048,
		SubarrayRows: 64,
		WordBits:     256,
	}
}

func testProfile() dram.Profile {
	p := dram.MustProfile(dram.ManufacturerA)
	p.WeakColumnDensity = 1.0 / 12.0
	p.SubarrayRows = 64
	return p
}

func newController(t *testing.T, seed uint64, opts ...memctrl.Option) *memctrl.Controller {
	t.Helper()
	prof := testProfile()
	dev, err := dram.NewDevice(dram.Config{
		Serial:   seed,
		Profile:  &prof,
		Geometry: testGeometry(),
		Noise:    dram.NewDeterministicNoise(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	return memctrl.NewController(dev, opts...)
}

func testRegion(bank int) profiler.Region {
	return profiler.Region{Bank: bank, RowStart: 0, RowCount: 48, WordStart: 0, WordCount: 6}
}

// quickIdentifyConfig trades the paper's strict ±10% criterion over 1000
// samples for a looser tolerance over fewer samples so unit tests run
// quickly; the statistical structure of the pipeline is unchanged.
func quickIdentifyConfig() IdentifyConfig {
	cfg := DefaultIdentifyConfig("A")
	cfg.ScreenIterations = 30
	cfg.Samples = 240
	cfg.Tolerance = 0.6
	return cfg
}

// identifyForTest runs identification over a couple of banks and requires at
// least one RNG cell.
func identifyForTest(t *testing.T, ctrl *memctrl.Controller, banks int) []RNGCell {
	t.Helper()
	var all []RNGCell
	for b := 0; b < banks; b++ {
		cells, err := IdentifyRNGCells(ctrl, testRegion(b), quickIdentifyConfig())
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, cells...)
	}
	if len(all) == 0 {
		t.Fatal("identification found no RNG cells in the test device")
	}
	return all
}

func TestDefaultIdentifyConfig(t *testing.T) {
	cfg := DefaultIdentifyConfig("B")
	if cfg.Samples != 1000 || cfg.SymbolBits != 3 || cfg.Tolerance != 0.10 {
		t.Errorf("default identify config = %+v, want paper parameters", cfg)
	}
	if cfg.Pattern != pattern.Checkered0() {
		t.Errorf("manufacturer B pattern = %v, want CHECKERED0", cfg.Pattern)
	}
}

func TestIdentifyRNGCellsFindsMidProbabilityCells(t *testing.T) {
	ctrl := newController(t, 100)
	cells := identifyForTest(t, ctrl, 1)
	for _, c := range cells {
		if c.Fprob < 0.2 || c.Fprob > 0.8 {
			t.Errorf("RNG cell %+v has Fprob %v; identified cells should sit near 50%%", c.Addr, c.Fprob)
		}
		if c.SymbolEntropy < 2.5 {
			t.Errorf("RNG cell %+v has 3-bit symbol entropy %v, want near 3", c.Addr, c.SymbolEntropy)
		}
		if c.WordIdx != c.Addr.Col/testGeometry().WordBits {
			t.Errorf("RNG cell %+v has inconsistent word index %d", c.Addr, c.WordIdx)
		}
	}
	// The controller must be restored to default timing.
	if ctrl.EffectiveTRCD() != ctrl.Params().TRCD {
		t.Error("identification left reduced tRCD programmed")
	}
}

func TestIdentifyRNGCellsValidation(t *testing.T) {
	ctrl := newController(t, 101)
	cfg := quickIdentifyConfig()
	cfg.Samples = 2
	if _, err := IdentifyRNGCells(ctrl, testRegion(0), cfg); err == nil {
		t.Error("too-few samples accepted")
	}
	cfg = quickIdentifyConfig()
	cfg.TRCDNS = 99
	if _, err := IdentifyRNGCells(ctrl, testRegion(0), cfg); err == nil {
		t.Error("tRCD above default accepted")
	}
	cfg = quickIdentifyConfig()
	cfg.Tolerance = 0
	if _, err := IdentifyRNGCells(ctrl, testRegion(0), cfg); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := IdentifyRNGCells(ctrl, profiler.Region{Bank: 99, RowCount: 1, WordCount: 1}, quickIdentifyConfig()); err == nil {
		t.Error("bad region accepted")
	}
}

func TestIdentifiedCellStreamsPassUniformityByConstruction(t *testing.T) {
	// Re-sample an identified cell and check the fresh stream is close to
	// unbiased: identification must select cells whose randomness persists.
	ctrl := newController(t, 102)
	cells := identifyForTest(t, ctrl, 1)
	cell := cells[0]
	stream, err := SampleCell(ctrl, cell, pattern.Solid0(), 10.0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	bias, err := entropy.Bias(stream)
	if err != nil {
		t.Fatal(err)
	}
	if bias < 0.3 || bias > 0.7 {
		t.Errorf("re-sampled RNG cell bias = %v, want near 0.5", bias)
	}
}

func TestGroupByWordAndSelection(t *testing.T) {
	ctrl := newController(t, 103)
	cells := identifyForTest(t, ctrl, 2)
	words := GroupByWord(cells)
	if len(words) == 0 {
		t.Fatal("no words grouped")
	}
	total := 0
	for _, w := range words {
		total += len(w.RNGCells)
		for _, c := range w.RNGCells {
			if c.Addr.Bank != w.Bank || c.Addr.Row != w.Row || c.WordIdx != w.WordIdx {
				t.Errorf("cell %+v grouped into wrong word %+v", c.Addr, w)
			}
		}
	}
	if total != len(cells) {
		t.Errorf("grouping lost cells: %d vs %d", total, len(cells))
	}

	sels, err := SelectBankWords(cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sels {
		if s.Word1.Row == s.Word2.Row {
			t.Errorf("bank %d selection uses the same row twice", s.Bank)
		}
		if s.Bits() <= 0 {
			t.Errorf("bank %d selection has no bits", s.Bank)
		}
		if len(s.Word1.RNGCells) < len(s.Word2.RNGCells) {
			t.Errorf("bank %d: word1 should be the denser word", s.Bank)
		}
		sw := s.ToSimWords()
		if sw.Bits != s.Bits() || sw.Bank != s.Bank {
			t.Errorf("ToSimWords mismatch: %+v vs %+v", sw, s)
		}
	}
	// Selections must be sorted by descending data rate.
	for i := 1; i < len(sels); i++ {
		if sels[i].Bits() > sels[i-1].Bits() {
			t.Error("selections not sorted by descending bits")
		}
	}
	if _, err := SelectBankWords(nil); err == nil {
		t.Error("empty cell list accepted")
	}
}

func TestRNGCellDensityHistogram(t *testing.T) {
	ctrl := newController(t, 104)
	cells := identifyForTest(t, ctrl, 2)
	hists := RNGCellDensity(cells)
	if len(hists) == 0 {
		t.Fatal("no histograms")
	}
	for _, h := range hists {
		sum := 0
		for n, words := range h.WordsWithNCells {
			if n <= 0 || words <= 0 {
				t.Errorf("bank %d histogram has non-positive entry %d:%d", h.Bank, n, words)
			}
			sum += n * words
			if n > h.MaxCellsPerWord {
				t.Errorf("bank %d: entry %d exceeds MaxCellsPerWord %d", h.Bank, n, h.MaxCellsPerWord)
			}
		}
		if sum != h.TotalRNGCells {
			t.Errorf("bank %d: histogram total %d != TotalRNGCells %d", h.Bank, sum, h.TotalRNGCells)
		}
		if got := len(CellsForBank(cells, h.Bank)); got != h.TotalRNGCells {
			t.Errorf("bank %d: CellsForBank found %d cells, histogram says %d", h.Bank, got, h.TotalRNGCells)
		}
	}
}

func TestTRNGProducesUnbiasedBytes(t *testing.T) {
	ctrl := newController(t, 105)
	cells := identifyForTest(t, ctrl, 2)
	sels, err := SelectBankWords(cells)
	if err != nil {
		t.Fatal(err)
	}
	trng, err := NewTRNG(ctrl, sels, DefaultTRNGConfig("A"))
	if err != nil {
		t.Fatal(err)
	}
	if trng.Banks() == 0 || trng.BitsPerIteration() == 0 {
		t.Fatalf("TRNG misconfigured: banks=%d bits/iter=%d", trng.Banks(), trng.BitsPerIteration())
	}

	buf := make([]byte, 2048)
	n, err := trng.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("short read: %d", n)
	}
	bits := entropy.BytesToBits(buf)
	bias, err := entropy.Bias(bits)
	if err != nil {
		t.Fatal(err)
	}
	if bias < 0.45 || bias > 0.55 {
		t.Errorf("TRNG output bias = %v, want ~0.5", bias)
	}
	sc, err := entropy.SerialCorrelation(bits)
	if err != nil {
		t.Fatal(err)
	}
	if sc > 0.1 || sc < -0.1 {
		t.Errorf("TRNG serial correlation = %v, want ~0", sc)
	}
	if trng.BitsGenerated() < int64(len(buf)*8) {
		t.Errorf("BitsGenerated = %d, want at least %d", trng.BitsGenerated(), len(buf)*8)
	}
	// Timing registers restored after reads.
	if ctrl.EffectiveTRCD() != ctrl.Params().TRCD {
		t.Error("TRNG left reduced tRCD programmed")
	}
}

func TestTRNGReadBitsAndUint64(t *testing.T) {
	ctrl := newController(t, 106)
	cells := identifyForTest(t, ctrl, 1)
	sels, err := SelectBankWords(cells)
	if err != nil {
		t.Fatal(err)
	}
	trng, err := NewTRNG(ctrl, sels, DefaultTRNGConfig("A"))
	if err != nil {
		t.Fatal(err)
	}
	bits, err := trng.ReadBits(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 100 {
		t.Fatalf("got %d bits, want 100", len(bits))
	}
	for _, b := range bits {
		if b > 1 {
			t.Fatalf("bit value %d", b)
		}
	}
	if _, err := trng.ReadBits(0); err == nil {
		t.Error("zero bit request accepted")
	}
	a, err := trng.Uint64()
	if err != nil {
		t.Fatal(err)
	}
	b, err := trng.Uint64()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two consecutive Uint64 values identical; extremely unlikely for a TRNG")
	}
	if n, err := trng.Read(nil); n != 0 || err != nil {
		t.Errorf("empty read = (%d, %v), want (0, nil)", n, err)
	}
}

func TestTRNGRestoresDataPattern(t *testing.T) {
	ctrl := newController(t, 107)
	cells := identifyForTest(t, ctrl, 1)
	sels, err := SelectBankWords(cells)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTRNGConfig("A")
	trng, err := NewTRNG(ctrl, sels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trng.ReadBits(500); err != nil {
		t.Fatal(err)
	}
	// After generation, the selected words must hold the data pattern again
	// (Algorithm 2 restores the original value after every sample).
	g := ctrl.Device().Geometry()
	nw := g.WordBits / 64
	s := sels[0]
	for _, w := range []WordRef{s.Word1, s.Word2} {
		raw, err := ctrl.Device().ReadRowRaw(s.Bank, w.Row)
		if err != nil {
			t.Fatal(err)
		}
		expected, err := cfg.Pattern.FillRow(w.Row, g.ColsPerRow)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < nw; u++ {
			if raw[w.WordIdx*nw+u] != expected[w.WordIdx*nw+u] {
				t.Errorf("bank %d row %d word %d not restored after generation", s.Bank, w.Row, w.WordIdx)
			}
		}
	}
}

func TestNewTRNGValidation(t *testing.T) {
	ctrl := newController(t, 108)
	cells := identifyForTest(t, ctrl, 1)
	sels, err := SelectBankWords(cells)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTRNG(nil, sels, DefaultTRNGConfig("A")); err == nil {
		t.Error("nil controller accepted")
	}
	if _, err := NewTRNG(ctrl, nil, DefaultTRNGConfig("A")); err == nil {
		t.Error("empty selections accepted")
	}
	bad := DefaultTRNGConfig("A")
	bad.TRCDNS = 99
	if _, err := NewTRNG(ctrl, sels, bad); err == nil {
		t.Error("tRCD above default accepted")
	}
	bad = DefaultTRNGConfig("A")
	bad.MaxBanks = -1
	if _, err := NewTRNG(ctrl, sels, bad); err == nil {
		t.Error("negative MaxBanks accepted")
	}
	sameRow := []BankSelection{{
		Bank:  0,
		Word1: WordRef{Bank: 0, Row: 3, WordIdx: 0, RNGCells: []RNGCell{{Addr: profiler.CellAddr{Bank: 0, Row: 3, Col: 1}}}},
		Word2: WordRef{Bank: 0, Row: 3, WordIdx: 1, RNGCells: []RNGCell{{Addr: profiler.CellAddr{Bank: 0, Row: 3, Col: 300}, WordIdx: 1}}},
	}}
	if _, err := NewTRNG(ctrl, sameRow, DefaultTRNGConfig("A")); err == nil {
		t.Error("single-row selection accepted")
	}
}

func TestTRNGMaxBanksLimit(t *testing.T) {
	ctrl := newController(t, 109)
	cells := identifyForTest(t, ctrl, 3)
	sels, err := SelectBankWords(cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) < 2 {
		t.Skip("need at least two banks with RNG cells for this test")
	}
	cfg := DefaultTRNGConfig("A")
	cfg.MaxBanks = 1
	trng, err := NewTRNG(ctrl, sels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trng.Banks() != 1 {
		t.Errorf("Banks = %d, want 1 with MaxBanks=1", trng.Banks())
	}
}

func TestSampleCellValidation(t *testing.T) {
	ctrl := newController(t, 110)
	if _, err := SampleCell(ctrl, RNGCell{Addr: profiler.CellAddr{Bank: 99}}, pattern.Solid0(), 10, 10); err == nil {
		t.Error("out-of-range cell accepted")
	}
	if _, err := SampleCell(ctrl, RNGCell{}, pattern.Solid0(), 10, 0); err == nil {
		t.Error("zero samples accepted")
	}
}
