package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/device"
	"repro/internal/memctrl"
)

// EngineConfig controls the concurrent sharded harvesting engine.
type EngineConfig struct {
	// Shards is the number of harvesting shards. Each shard drives its own
	// memctrl.Controller — one simulated channel/rank — over a disjoint
	// subset of the bank selections, which is how the paper's throughput
	// scales with the number of banks and channels sampled in parallel.
	// 0 selects min(4, len(selections)); values above len(selections) are
	// clamped (a shard needs at least one bank).
	Shards int
	// TRNG holds the per-shard generation parameters. MaxBanks is ignored:
	// the engine's partitioning decides which banks each shard samples.
	TRNG TRNGConfig
	// BufferWords is the per-shard capacity of the bounded ring of packed
	// 64-bit words between each shard and the readers; 0 selects 32 (2 KiB
	// of buffered random bits per shard). A shard stalls once its ring is
	// full, so the engine does not run the simulation ahead of demand
	// without bound.
	BufferWords int
	// BatchBits is the number of bits a shard harvests per core-loop batch
	// before publishing packed words to the ring; 0 selects 256.
	BatchBits int
}

func (c EngineConfig) withDefaults(nSel int) EngineConfig {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Shards > nSel {
		c.Shards = nSel
	}
	if c.BufferWords == 0 {
		c.BufferWords = 32
	}
	if c.BatchBits == 0 {
		c.BatchBits = 256
	}
	c.TRNG.MaxBanks = 0
	return c
}

// ringWord is one ring entry: up to 64 harvested bits packed LSB-first.
type ringWord struct {
	bits int
	word uint64
}

// engineShard is one harvesting unit: a dedicated controller and single-shard
// TRNG over a disjoint subset of the banks, publishing packed words into its
// own bounded ring.
type engineShard struct {
	idx  int
	ctrl *memctrl.Controller
	trng *TRNG
	out  chan ringWord

	// bitsHarvested and simCycles are published by the shard goroutine after
	// every batch and read by Stats without stopping the harvest.
	bitsHarvested atomic.Int64 // drange:atomic
	simCycles     atomic.Int64 // drange:atomic
}

// Engine is the concurrent sharded harvesting engine: it partitions the bank
// selections across per-shard controllers over the shared DRAM substrate,
// runs one harvesting goroutine per shard feeding a bounded per-shard ring
// of packed 64-bit words, and exposes a thread-safe io.Reader plus
// ReadBits/Uint64 facade. Consumers drain the shard rings round-robin, which
// keeps every shard on the critical path no matter how the host schedules
// the goroutines — demand pulls each shard forward in turn — and makes the
// multi-shard output stream deterministic when the device noise source is:
// output word k always comes from shard k mod Shards. Shutdown is
// context-based: cancel the context passed to NewEngine or call Close.
type Engine struct {
	cfg   EngineConfig
	dev   device.Device
	parts [][]BankSelection

	shards []*engineShard

	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once

	errMu    sync.Mutex
	shardErr error // drange:guardedby errMu

	// mu serialises consumers and guards the partially-consumed word, the
	// round-robin cursor and the per-shard delivery counters.
	mu        sync.Mutex
	cur       ringWord // drange:guardedby mu
	curShard  int      // drange:guardedby mu
	curOff    int      // drange:guardedby mu
	rr        int      // drange:guardedby mu
	delivered []int64  // drange:guardedby mu
}

// NewEngine partitions selections round-robin across cfg.Shards shards (the
// selections are sorted by descending data rate, so round-robin balances the
// per-shard bit yield), prepares one controller and single-shard TRNG per
// shard, and starts the harvesting goroutines. The engine stops when ctx is
// cancelled or Close is called.
func NewEngine(ctx context.Context, dev device.Device, selections []BankSelection, cfg EngineConfig) (*Engine, error) {
	if dev == nil {
		return nil, fmt.Errorf("core: nil device")
	}
	if len(selections) == 0 {
		return nil, fmt.Errorf("core: no bank selections")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("core: negative shard count")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults(len(selections))

	parts := make([][]BankSelection, cfg.Shards)
	for i, s := range selections {
		parts[i%cfg.Shards] = append(parts[i%cfg.Shards], s)
	}

	ectx, cancel := context.WithCancel(ctx)
	e := &Engine{
		cfg:       cfg,
		dev:       dev,
		parts:     parts,
		ctx:       ectx,
		cancel:    cancel,
		delivered: make([]int64, cfg.Shards),
	}

	// Construct every controller before any TRNG: taking over a device
	// precharges all banks, so a controller built after another shard's TRNG
	// started issuing commands would desynchronise that shard's bank state.
	ctrls := make([]*memctrl.Controller, cfg.Shards)
	for i := range ctrls {
		ctrls[i] = memctrl.NewController(dev)
	}
	for i, part := range parts {
		trng, err := NewTRNG(ctrls[i], part, cfg.TRNG)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("core: engine shard %d: %w", i, err)
		}
		e.shards = append(e.shards, &engineShard{
			idx:  i,
			ctrl: ctrls[i],
			trng: trng,
			out:  make(chan ringWord, cfg.BufferWords),
		})
	}

	for _, s := range e.shards {
		e.wg.Add(1)
		go e.runShard(s)
	}
	return e, nil
}

// runShard is the per-shard harvesting loop: run the Algorithm 2 core loop
// for a batch of bits, publish accounting, then drain full packed words into
// the shard's ring, blocking when the ring is full. Bits short of a full
// word stay buffered in the TRNG for the next batch, so no bit is dropped or
// reordered.
func (e *Engine) runShard(s *engineShard) {
	defer e.wg.Done()
	for {
		select {
		case <-e.ctx.Done():
			return
		default:
		}
		if err := s.trng.harvest(e.cfg.BatchBits); err != nil {
			e.errMu.Lock()
			if e.shardErr == nil {
				e.shardErr = fmt.Errorf("core: engine shard %d: %w", s.idx, err)
			}
			e.errMu.Unlock()
			e.cancel()
			return
		}
		s.bitsHarvested.Store(s.trng.BitsGenerated())
		s.simCycles.Store(s.ctrl.Now())
		for s.trng.bits.Len() >= 64 {
			word, n := s.trng.bits.PopWord()
			select {
			case s.out <- ringWord{bits: n, word: word}:
			case <-e.ctx.Done():
				return
			}
		}
	}
}

// failure returns the sticky error readers observe once the engine stops.
func (e *Engine) failure() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	if e.shardErr != nil {
		return e.shardErr
	}
	if err := e.ctx.Err(); err != nil {
		return fmt.Errorf("core: engine stopped: %w", err)
	}
	return fmt.Errorf("core: engine stopped")
}

// nextWordLocked blocks until the round-robin shard's next packed word is
// available, advancing the cursor on success. Words already buffered in the
// shard rings are delivered even after shutdown began, so readers drain what
// was harvested before the stop.
func (e *Engine) nextWordLocked() (ringWord, int, error) {
	s := e.shards[e.rr]
	select {
	case w := <-s.out:
		e.rr = (e.rr + 1) % len(e.shards)
		return w, s.idx, nil
	default:
	}
	select {
	case w := <-s.out:
		e.rr = (e.rr + 1) % len(e.shards)
		return w, s.idx, nil
	case <-e.ctx.Done():
		// The engine stopped: deliver whatever remains across the shard
		// rings, scanning from the cursor so pre-shutdown words keep their
		// order, before surfacing the sticky error.
		for i := 0; i < len(e.shards); i++ {
			d := e.shards[(e.rr+i)%len(e.shards)]
			select {
			case w := <-d.out:
				e.rr = (e.rr + i + 1) % len(e.shards)
				return w, d.idx, nil
			default:
			}
		}
		return ringWord{}, 0, e.failure()
	}
}

// readBits is the consumer core: pop n bits from the current word and the
// ring, appending each bit's producing shard to tags when non-nil.
func (e *Engine) readBits(n int, tags *[]int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: bit count must be positive, got %d", n)
	}
	prealloc := n
	if prealloc > maxSamplePrealloc {
		prealloc = maxSamplePrealloc
	}
	out := make([]byte, 0, prealloc)
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(out) < n {
		if e.curOff == e.cur.bits {
			w, shard, err := e.nextWordLocked()
			if err != nil {
				return nil, err
			}
			e.cur, e.curShard, e.curOff = w, shard, 0
		}
		out = append(out, byte((e.cur.word>>uint(e.curOff))&1))
		e.curOff++
		e.delivered[e.curShard]++
		if tags != nil {
			*tags = append(*tags, e.curShard)
		}
	}
	return out, nil
}

// ReadBits returns n random bits, one bit per returned byte (values 0 or 1).
// It is safe for concurrent use.
func (e *Engine) ReadBits(n int) ([]byte, error) {
	return e.readBits(n, nil)
}

// ReadPacked fills p with random bytes straight from the shard rings: each
// ring word becomes eight output bytes with no intermediate bit-per-byte
// slice and no allocation. The byte encoding and the round-robin word order
// are identical to Read's. It is safe for concurrent use.
//
//drange:noalloc
func (e *Engine) ReadPacked(p []byte) error {
	if len(p) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := 0; i < len(p); {
		if e.curOff == e.cur.bits {
			w, shard, err := e.nextWordLocked()
			if err != nil {
				return err
			}
			e.cur, e.curShard, e.curOff = w, shard, 0
		}
		if e.curOff == 0 && e.cur.bits == 64 && i+8 <= len(p) {
			// Whole ring word to eight bytes: the word is LSB-first in
			// stream order, so reversing it and storing big-endian yields
			// the MSB-first byte encoding.
			binary.BigEndian.PutUint64(p[i:], bits.Reverse64(e.cur.word))
			e.curOff = 64
			e.delivered[e.curShard] += 64
			i += 8
			continue
		}
		// Assemble one byte across word boundaries (a partially consumed
		// word — e.g. after an odd-length ReadBits — or a short final word).
		var acc byte
		for accN := 0; accN < 8; {
			if e.curOff == e.cur.bits {
				w, shard, err := e.nextWordLocked()
				if err != nil {
					return err
				}
				e.cur, e.curShard, e.curOff = w, shard, 0
			}
			take := 8 - accN
			if avail := e.cur.bits - e.curOff; take > avail {
				take = avail
			}
			chunk := (e.cur.word >> uint(e.curOff)) & (1<<uint(take) - 1)
			acc |= byte(chunk << uint(accN))
			e.curOff += take
			e.delivered[e.curShard] += int64(take)
			accN += take
		}
		p[i] = bits.Reverse8(acc)
		i++
	}
	return nil
}

// Read fills p with random bytes, implementing io.Reader. It never returns a
// short read except on error. It is safe for concurrent use.
func (e *Engine) Read(p []byte) (int, error) {
	if err := e.ReadPacked(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Uint64 returns a 64-bit random value. It is safe for concurrent use.
func (e *Engine) Uint64() (uint64, error) {
	var buf [8]byte
	if _, err := e.Read(buf[:]); err != nil {
		return 0, err
	}
	return BEUint64(buf), nil
}

// Shards returns the number of harvesting shards.
func (e *Engine) Shards() int { return len(e.shards) }

// Close stops the harvesting goroutines and waits for them to exit. It is
// idempotent and safe to call concurrently with readers; blocked readers
// return an error once the ring drains.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		e.cancel()
		e.wg.Wait()
	})
	return nil
}

// ShardStats is the per-shard throughput/latency accounting of one
// harvesting shard, measured in simulated DRAM time.
type ShardStats struct {
	Shard int
	// Banks is the number of banks the shard samples.
	Banks int
	// BitsPerIteration is the shard's data rate per core-loop pass.
	BitsPerIteration int
	// BitsHarvested counts bits the shard extracted from its banks
	// (buffered bits included).
	BitsHarvested int64
	// BitsDelivered counts bits consumers actually read from this shard.
	BitsDelivered int64
	// SimCycles and SimNS are the shard controller's simulated time spent.
	SimCycles int64
	SimNS     float64
	// ThroughputMbps is the shard's harvest rate in simulated time.
	ThroughputMbps float64
	// Latency64NS is the shard's simulated time to produce 64 bits.
	Latency64NS float64
}

// EngineStats aggregates the engine's accounting. Shards run concurrently in
// simulated time — each models an independent channel/rank controller — so
// the aggregate throughput is the sum of the shard rates and the aggregate
// 64-bit latency is 64 bits at the summed rate, mirroring the paper's
// multi-channel scaling (Section 7.3, Table 2).
type EngineStats struct {
	Shards                  []ShardStats
	BitsHarvested           int64
	BitsDelivered           int64
	AggregateThroughputMbps float64
	Latency64NS             float64
}

// Stats returns a snapshot of the per-shard and aggregate accounting. It is
// safe to call while the engine is harvesting.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	delivered := append([]int64(nil), e.delivered...)
	e.mu.Unlock()

	st := EngineStats{Shards: make([]ShardStats, len(e.shards))}
	bitsPerNS := 0.0
	for i, s := range e.shards {
		bits := s.bitsHarvested.Load()
		cycles := s.simCycles.Load()
		ns := s.ctrl.Params().NS(cycles)
		ss := ShardStats{
			Shard:            i,
			Banks:            s.trng.Banks(),
			BitsPerIteration: s.trng.BitsPerIteration(),
			BitsHarvested:    bits,
			BitsDelivered:    delivered[i],
			SimCycles:        cycles,
			SimNS:            ns,
		}
		if ns > 0 && bits > 0 {
			ss.ThroughputMbps = float64(bits) / ns * 1000.0
			ss.Latency64NS = ns / float64(bits) * 64.0
			bitsPerNS += float64(bits) / ns
		}
		st.Shards[i] = ss
		st.BitsHarvested += bits
		st.BitsDelivered += delivered[i]
	}
	if bitsPerNS > 0 {
		st.AggregateThroughputMbps = bitsPerNS * 1000.0
		st.Latency64NS = 64.0 / bitsPerNS
	}
	return st
}

var _ io.Reader = (*Engine)(nil)
var _ io.Closer = (*Engine)(nil)
