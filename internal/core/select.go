package core

import (
	"fmt"
	"sort"

	"repro/internal/profiler"
	"repro/internal/sim"
)

// WordRef identifies one DRAM word and the RNG cells it contains.
type WordRef struct {
	Bank     int
	Row      int
	WordIdx  int
	RNGCells []RNGCell
}

// BankSelection is the per-bank selection Algorithm 2 requires: two DRAM
// words in distinct rows, chosen to maximise the number of RNG cells
// (Section 6.2's "DRAM words with the highest density of RNG cells in each
// bank").
type BankSelection struct {
	Bank  int
	Word1 WordRef
	Word2 WordRef
}

// Bits returns the number of RNG cells across the two selected words: the
// bank's TRNG data rate per loop iteration.
func (s BankSelection) Bits() int {
	return len(s.Word1.RNGCells) + len(s.Word2.RNGCells)
}

// ToSimWords converts the selection into the representation the cycle
// simulator consumes.
func (s BankSelection) ToSimWords() sim.BankWords {
	return sim.BankWords{
		Bank:  s.Bank,
		Row1:  s.Word1.Row,
		Word1: s.Word1.WordIdx,
		Row2:  s.Word2.Row,
		Word2: s.Word2.WordIdx,
		Bits:  s.Bits(),
	}
}

// GroupByWord groups RNG cells into the DRAM words containing them.
func GroupByWord(cells []RNGCell) []WordRef {
	type key struct{ bank, row, word int }
	m := make(map[key][]RNGCell)
	for _, c := range cells {
		k := key{c.Addr.Bank, c.Addr.Row, c.WordIdx}
		m[k] = append(m[k], c)
	}
	out := make([]WordRef, 0, len(m))
	for k, cs := range m {
		out = append(out, WordRef{Bank: k.bank, Row: k.row, WordIdx: k.word, RNGCells: cs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bank != out[j].Bank {
			return out[i].Bank < out[j].Bank
		}
		if len(out[i].RNGCells) != len(out[j].RNGCells) {
			return len(out[i].RNGCells) > len(out[j].RNGCells)
		}
		if out[i].Row != out[j].Row {
			return out[i].Row < out[j].Row
		}
		return out[i].WordIdx < out[j].WordIdx
	})
	return out
}

// SelectBankWords picks, for each bank that has at least two RNG-cell-bearing
// words in distinct rows, the two words with the most RNG cells. Banks that
// cannot satisfy the distinct-row requirement are skipped. The result is
// sorted by descending TRNG data rate, so callers wanting the best x banks
// take a prefix.
func SelectBankWords(cells []RNGCell) ([]BankSelection, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("core: no RNG cells to select from")
	}
	words := GroupByWord(cells)
	byBank := make(map[int][]WordRef)
	for _, w := range words {
		byBank[w.Bank] = append(byBank[w.Bank], w)
	}
	var out []BankSelection
	for bank, ws := range byBank {
		// ws is already sorted by density within GroupByWord ordering, but
		// re-sort within the bank to be explicit.
		sort.Slice(ws, func(i, j int) bool { return len(ws[i].RNGCells) > len(ws[j].RNGCells) })
		best := ws[0]
		var second *WordRef
		for i := 1; i < len(ws); i++ {
			if ws[i].Row != best.Row {
				second = &ws[i]
				break
			}
		}
		if second == nil {
			continue
		}
		out = append(out, BankSelection{Bank: bank, Word1: best, Word2: *second})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no bank offers two RNG-cell words in distinct rows")
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bits() != out[j].Bits() {
			return out[i].Bits() > out[j].Bits()
		}
		return out[i].Bank < out[j].Bank
	})
	return out, nil
}

// DensityHistogram is the data behind Figure 7: for one bank, how many DRAM
// words contain exactly x RNG cells, for x ≥ 1. Words with zero RNG cells
// are not stored (they are the overwhelming majority).
type DensityHistogram struct {
	Bank int
	// WordsWithNCells[n] is the number of words containing exactly n RNG
	// cells (n ≥ 1).
	WordsWithNCells map[int]int
	// MaxCellsPerWord is the largest number of RNG cells found in a single
	// word.
	MaxCellsPerWord int
	// TotalRNGCells is the total number of RNG cells in the bank.
	TotalRNGCells int
}

// RNGCellDensity computes the per-bank histogram of RNG cells per DRAM word
// from an identification result.
func RNGCellDensity(cells []RNGCell) []DensityHistogram {
	words := GroupByWord(cells)
	byBank := make(map[int]*DensityHistogram)
	for _, w := range words {
		h, ok := byBank[w.Bank]
		if !ok {
			h = &DensityHistogram{Bank: w.Bank, WordsWithNCells: make(map[int]int)}
			byBank[w.Bank] = h
		}
		n := len(w.RNGCells)
		h.WordsWithNCells[n]++
		h.TotalRNGCells += n
		if n > h.MaxCellsPerWord {
			h.MaxCellsPerWord = n
		}
	}
	banks := make([]int, 0, len(byBank))
	for b := range byBank {
		banks = append(banks, b)
	}
	sort.Ints(banks)
	out := make([]DensityHistogram, 0, len(banks))
	for _, b := range banks {
		out = append(out, *byBank[b])
	}
	return out
}

// CellsForCtrl filters an identification result down to the cells belonging
// to a given bank, a convenience for per-bank analyses.
func CellsForBank(cells []RNGCell, bank int) []RNGCell {
	var out []RNGCell
	for _, c := range cells {
		if c.Addr.Bank == bank {
			out = append(out, c)
		}
	}
	return out
}

// addrSetForSelection returns the cell addresses harvested from a selection,
// word by word, in a stable order (ascending column). The TRNG uses this
// ordering to map read data to output bits deterministically.
func addrSetForSelection(w WordRef) []profiler.CellAddr {
	addrs := make([]profiler.CellAddr, 0, len(w.RNGCells))
	for _, c := range w.RNGCells {
		addrs = append(addrs, c.Addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Col < addrs[j].Col })
	return addrs
}
