package core

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/memctrl"
	"repro/internal/pattern"
)

// TRNGConfig controls the D-RaNGe generator.
type TRNGConfig struct {
	// TRCDNS is the reduced activation latency used while sampling.
	TRCDNS float64
	// Pattern is the data pattern maintained in the selected words and
	// their neighbours (line 4 of Algorithm 2).
	Pattern pattern.Pattern
	// MaxBanks limits how many banks are sampled in parallel; 0 means all
	// selected banks. Fewer banks reduce system interference at the cost of
	// throughput (Section 7.3).
	MaxBanks int
}

// DefaultTRNGConfig returns the generation parameters used in the
// evaluation: tRCD 10 ns and the manufacturer's best data pattern.
func DefaultTRNGConfig(manufacturer string) TRNGConfig {
	return TRNGConfig{TRCDNS: 10.0, Pattern: pattern.BestFor(manufacturer)}
}

// TRNG is the D-RaNGe true random number generator: it continuously samples
// previously-identified RNG cells by inducing activation failures, and
// exposes the harvested bits as an io.Reader. It is the single-shard
// harvesting core: one TRNG drives one controller (one simulated
// channel/rank) over its subset of banks. Engine composes several of them
// for the paper's multi-bank/multi-channel parallelism. A TRNG is not safe
// for concurrent use; Engine provides the thread-safe facade.
type TRNG struct {
	ctrl *memctrl.Controller
	cfg  TRNGConfig

	sels []trngBank

	// bits holds harvested bits, packed 64 per word, not yet consumed.
	bits bitBuffer

	// scratch is the reusable destination of sampleWord's device reads, so
	// the steady-state harvest loop performs no allocations.
	scratch []uint64

	bitsGenerated int64
}

// trngBank is the runtime state for one selected bank.
type trngBank struct {
	bank  int
	word1 trngWord
	word2 trngWord
}

type trngWord struct {
	row     int
	wordIdx int
	// cols are the bit positions of the RNG cells within the word.
	cols []int
	// original is the word's data-pattern content, restored after every
	// sample.
	original []uint64
}

// NewTRNG prepares a D-RaNGe generator over the given bank selections
// (lines 2–6 of Algorithm 2): it writes the data pattern to the chosen DRAM
// words and their neighbouring rows, captures the restore values, and
// retains the per-word RNG-cell positions.
func NewTRNG(ctrl *memctrl.Controller, selections []BankSelection, cfg TRNGConfig) (*TRNG, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("core: nil controller")
	}
	if len(selections) == 0 {
		return nil, fmt.Errorf("core: no bank selections")
	}
	if cfg.TRCDNS <= 0 || cfg.TRCDNS > ctrl.Params().TRCD {
		return nil, fmt.Errorf("core: generation tRCD %v ns outside (0, %v]", cfg.TRCDNS, ctrl.Params().TRCD)
	}
	if cfg.MaxBanks < 0 {
		return nil, fmt.Errorf("core: negative MaxBanks")
	}
	sels := selections
	if cfg.MaxBanks > 0 && cfg.MaxBanks < len(sels) {
		sels = sels[:cfg.MaxBanks]
	}

	g := ctrl.Device().Geometry()
	// The sampling scratch buffer is sized here, not lazily in sampleWord,
	// so the steady-state sampling path never allocates.
	t := &TRNG{ctrl: ctrl, cfg: cfg, scratch: make([]uint64, g.WordBits/64)}
	for _, s := range sels {
		if s.Bits() == 0 {
			return nil, fmt.Errorf("core: bank %d selection has no RNG cells", s.Bank)
		}
		if s.Word1.Row == s.Word2.Row {
			return nil, fmt.Errorf("core: bank %d selection uses a single row %d", s.Bank, s.Word1.Row)
		}
		// Line 4: write the data pattern to the chosen DRAM words and their
		// neighbouring cells (we write the full rows and the adjacent rows).
		for _, w := range []WordRef{s.Word1, s.Word2} {
			for _, row := range []int{w.Row - 1, w.Row, w.Row + 1} {
				if row < 0 || row >= g.RowsPerBank {
					continue
				}
				data, err := cfg.Pattern.FillRow(row, g.ColsPerRow)
				if err != nil {
					return nil, err
				}
				if err := ctrl.Device().WriteRow(s.Bank, row, data); err != nil {
					return nil, err
				}
			}
		}
		tb := trngBank{bank: s.Bank}
		var err error
		tb.word1, err = t.prepareWord(s.Bank, s.Word1)
		if err != nil {
			return nil, err
		}
		tb.word2, err = t.prepareWord(s.Bank, s.Word2)
		if err != nil {
			return nil, err
		}
		t.sels = append(t.sels, tb)
	}
	return t, nil
}

func (t *TRNG) prepareWord(bank int, w WordRef) (trngWord, error) {
	g := t.ctrl.Device().Geometry()
	if w.WordIdx < 0 || w.WordIdx >= g.WordsPerRow() || w.Row < 0 || w.Row >= g.RowsPerBank {
		return trngWord{}, fmt.Errorf("core: word %+v outside device geometry", w)
	}
	nw := g.WordBits / 64
	rowData, err := t.ctrl.Device().ReadRowRaw(bank, w.Row)
	if err != nil {
		return trngWord{}, err
	}
	tw := trngWord{
		row:      w.Row,
		wordIdx:  w.WordIdx,
		original: append([]uint64(nil), rowData[w.WordIdx*nw:(w.WordIdx+1)*nw]...),
	}
	for _, addr := range addrSetForSelection(w) {
		if addr.Bank != bank {
			return trngWord{}, fmt.Errorf("core: RNG cell %+v does not belong to bank %d", addr, bank)
		}
		col := addr.Col - w.WordIdx*g.WordBits
		if col < 0 || col >= g.WordBits {
			return trngWord{}, fmt.Errorf("core: RNG cell %+v is not inside word %d", addr, w.WordIdx)
		}
		tw.cols = append(tw.cols, col)
	}
	sort.Ints(tw.cols)
	return tw, nil
}

// Banks returns the number of banks the generator samples in parallel.
func (t *TRNG) Banks() int { return len(t.sels) }

// BitsPerIteration returns the number of random bits harvested by one pass
// of the Algorithm 2 core loop over all selected banks.
func (t *TRNG) BitsPerIteration() int {
	n := 0
	for _, s := range t.sels {
		n += len(s.word1.cols) + len(s.word2.cols)
	}
	return n
}

// BitsGenerated returns the total number of random bits harvested so far.
func (t *TRNG) BitsGenerated() int64 { return t.bitsGenerated }

// sampleWord performs one reduced-latency read of a selected word, appends
// the RNG-cell values to the bit queue, and restores the word's original
// content (lines 8–11 / 12–15 of Algorithm 2).
func (t *TRNG) sampleWord(bank int, w *trngWord) error {
	got := t.scratch
	if _, err := t.ctrl.ReadWordInto(bank, w.row, w.wordIdx, got); err != nil {
		return err
	}
	for _, col := range w.cols {
		bit := byte((got[col/64] >> uint(col%64)) & 1)
		t.bits.Append(bit)
		t.bitsGenerated++
	}
	if _, err := t.ctrl.WriteWord(bank, w.row, w.wordIdx, w.original); err != nil {
		return err
	}
	return nil
}

// harvest runs Algorithm 2's core loop until at least n bits are queued.
func (t *TRNG) harvest(n int) error {
	if err := t.ctrl.SetReducedTRCD(t.cfg.TRCDNS); err != nil {
		return err
	}
	defer t.ctrl.ResetTRCD()
	for t.bits.Len() < n {
		for i := range t.sels {
			s := &t.sels[i]
			if err := t.sampleWord(s.bank, &s.word1); err != nil {
				return err
			}
			if err := t.sampleWord(s.bank, &s.word2); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadBits returns n random bits, one bit per returned byte (values 0 or 1).
func (t *TRNG) ReadBits(n int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: bit count must be positive, got %d", n)
	}
	if err := t.harvest(n); err != nil {
		return nil, err
	}
	return t.bits.PopBits(n), nil
}

// ReadPacked fills p with random bytes straight from the packed bit queue —
// the same byte encoding as Read, with no intermediate bit-per-byte slice and
// no allocation in steady state.
//
//drange:noalloc
func (t *TRNG) ReadPacked(p []byte) error {
	if len(p) == 0 {
		return nil
	}
	if len(p) > math.MaxInt/8 {
		return fmt.Errorf("core: read of %d bytes overflows the bit counter", len(p))
	}
	if err := t.harvest(len(p) * 8); err != nil {
		return err
	}
	t.bits.PopPacked(p)
	return nil
}

// Read fills p with random bytes, implementing io.Reader. It never returns a
// short read except on error.
func (t *TRNG) Read(p []byte) (int, error) {
	if err := t.ReadPacked(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Uint64 returns a 64-bit random value.
func (t *TRNG) Uint64() (uint64, error) {
	var buf [8]byte
	if _, err := t.Read(buf[:]); err != nil {
		return 0, err
	}
	return BEUint64(buf), nil
}

var _ io.Reader = (*TRNG)(nil)

// maxSamplePrealloc bounds the up-front allocation of SampleCell's output
// buffer (one byte per sample); larger requests grow incrementally.
const maxSamplePrealloc = 1 << 20

// SampleCell reads a single identified RNG cell n times with the reduced
// activation latency and returns its value stream (one bit per byte). This
// is the procedure behind Table 1: the paper samples each identified RNG
// cell one million times and feeds the resulting bitstream to the NIST test
// suite.
func SampleCell(ctrl *memctrl.Controller, cell RNGCell, pat pattern.Pattern, trcdNS float64, n int) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: sample count must be positive, got %d", n)
	}
	g := ctrl.Device().Geometry()
	addr := cell.Addr
	if addr.Bank < 0 || addr.Bank >= g.Banks || addr.Row < 0 || addr.Row >= g.RowsPerBank ||
		addr.Col < 0 || addr.Col >= g.ColsPerRow {
		return nil, fmt.Errorf("core: cell %+v outside device geometry", addr)
	}
	wordIdx := addr.Col / g.WordBits
	nw := g.WordBits / 64

	// Maintain the data pattern in the cell's row and neighbours.
	for _, row := range []int{addr.Row - 1, addr.Row, addr.Row + 1} {
		if row < 0 || row >= g.RowsPerBank {
			continue
		}
		data, err := pat.FillRow(row, g.ColsPerRow)
		if err != nil {
			return nil, err
		}
		if err := ctrl.Device().WriteRow(addr.Bank, row, data); err != nil {
			return nil, err
		}
	}
	rowData, err := pat.FillRow(addr.Row, g.ColsPerRow)
	if err != nil {
		return nil, err
	}
	original := append([]uint64(nil), rowData[wordIdx*nw:(wordIdx+1)*nw]...)

	if err := ctrl.SetReducedTRCD(trcdNS); err != nil {
		return nil, err
	}
	defer ctrl.ResetTRCD()

	colInWord := addr.Col - wordIdx*g.WordBits
	// n is caller-controlled; cap the prealloc and let append grow the slice
	// so an oversized request cannot allocate unbounded memory up front.
	prealloc := n
	if prealloc > maxSamplePrealloc {
		prealloc = maxSamplePrealloc
	}
	out := make([]byte, 0, prealloc)
	for i := 0; i < n; i++ {
		got, _, err := ctrl.ReadWord(addr.Bank, addr.Row, wordIdx)
		if err != nil {
			return nil, err
		}
		out = append(out, byte((got[colInWord/64]>>uint(colInWord%64))&1))
		if _, err := ctrl.WriteWord(addr.Bank, addr.Row, wordIdx, original); err != nil {
			return nil, err
		}
		if err := ctrl.PrechargeBank(addr.Bank); err != nil {
			return nil, err
		}
	}
	return out, nil
}
