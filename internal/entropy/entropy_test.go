package entropy

import (
	"math"
	"testing"
	"testing/quick"
)

func altBits(n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(i & 1)
	}
	return bits
}

func constBits(n int, v byte) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = v
	}
	return bits
}

func prngBits(n int, seed uint64) []byte {
	bits := make([]byte, n)
	s := seed
	for i := range bits {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		bits[i] = byte(s & 1)
	}
	return bits
}

func TestBitCountsAndBias(t *testing.T) {
	zeros, ones := BitCounts([]byte{0, 1, 1, 0, 1})
	if zeros != 2 || ones != 3 {
		t.Errorf("BitCounts = (%d,%d), want (2,3)", zeros, ones)
	}
	b, err := Bias([]byte{0, 1, 1, 0})
	if err != nil || b != 0.5 {
		t.Errorf("Bias = %v, %v; want 0.5, nil", b, err)
	}
	if _, err := Bias(nil); err == nil {
		t.Error("Bias(empty) should error")
	}
}

func TestShannonBits(t *testing.T) {
	h, err := ShannonBits(altBits(1000))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1.0) > 1e-12 {
		t.Errorf("Shannon entropy of balanced stream = %v, want 1", h)
	}
	h, err = ShannonBits(constBits(1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Errorf("Shannon entropy of constant stream = %v, want 0", h)
	}
	if _, err := ShannonBits(nil); err == nil {
		t.Error("empty stream should error")
	}
}

func TestBinaryEntropyProperties(t *testing.T) {
	if BinaryEntropy(0.5) != 1 {
		t.Errorf("BinaryEntropy(0.5) = %v, want 1", BinaryEntropy(0.5))
	}
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Error("BinaryEntropy at extremes should be 0")
	}
	f := func(raw uint16) bool {
		p := float64(raw) / 65535.0
		h := BinaryEntropy(p)
		// Entropy is symmetric and bounded by 1.
		return h >= 0 && h <= 1+1e-12 && math.Abs(h-BinaryEntropy(1-p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymbolHistogram(t *testing.T) {
	// 0,1 repeated: 3-bit symbols of "010101..." are 010=2, 101=5, 010...
	bits := altBits(12)
	counts, err := SymbolHistogram(bits, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Errorf("total symbols = %d, want 4", total)
	}
	if counts[0b010] != 2 || counts[0b101] != 2 {
		t.Errorf("histogram = %v, want two each of 010 and 101", counts)
	}
	if _, err := SymbolHistogram(bits, 0); err == nil {
		t.Error("symbol size 0 accepted")
	}
	if _, err := SymbolHistogram(bits, 17); err == nil {
		t.Error("symbol size 17 accepted")
	}
}

func TestShannonSymbolEntropy(t *testing.T) {
	// A periodic pattern has low symbol entropy; a PRNG stream is near 3
	// bits for 3-bit symbols.
	low, err := ShannonSymbolEntropy(altBits(3000), 3)
	if err != nil {
		t.Fatal(err)
	}
	if low > 1.1 {
		t.Errorf("symbol entropy of alternating stream = %v, want ~1", low)
	}
	high, err := ShannonSymbolEntropy(prngBits(30000, 99), 3)
	if err != nil {
		t.Fatal(err)
	}
	if high < 2.95 {
		t.Errorf("symbol entropy of pseudorandom stream = %v, want ~3", high)
	}
	if _, err := ShannonSymbolEntropy(altBits(2), 3); err == nil {
		t.Error("too-short stream accepted")
	}
}

func TestMinEntropy(t *testing.T) {
	m, err := MinEntropy(altBits(100))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-1) > 1e-12 {
		t.Errorf("min-entropy of balanced stream = %v, want 1", m)
	}
	m, err = MinEntropy(constBits(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m != 0 {
		t.Errorf("min-entropy of constant stream = %v, want 0", m)
	}
}

func TestSymbolsUniform(t *testing.T) {
	ok, err := SymbolsUniform(prngBits(60000, 1234), 3, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("pseudorandom stream should satisfy the ±10% criterion")
	}
	ok, err = SymbolsUniform(constBits(60000, 1), 3, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("constant stream should fail the ±10% criterion")
	}
	if _, err := SymbolsUniform(prngBits(100, 1), 3, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := SymbolsUniform(nil, 3, 0.1); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestSerialCorrelation(t *testing.T) {
	// Alternating bits are perfectly anti-correlated.
	c, err := SerialCorrelation(altBits(1000))
	if err != nil {
		t.Fatal(err)
	}
	if c > -0.9 {
		t.Errorf("serial correlation of alternating stream = %v, want ~-1", c)
	}
	c, err = SerialCorrelation(prngBits(50000, 7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c) > 0.05 {
		t.Errorf("serial correlation of pseudorandom stream = %v, want ~0", c)
	}
	if _, err := SerialCorrelation([]byte{1}); err == nil {
		t.Error("single-bit stream accepted")
	}
	c, err = SerialCorrelation(constBits(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Errorf("serial correlation of constant stream = %v, want 1 by convention", c)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 5 || s.Min != 1 || s.Max != 9 || s.N != 9 {
		t.Errorf("summary = %+v", s)
	}
	if s.Q1 != 3 || s.Q3 != 7 {
		t.Errorf("quartiles = %v, %v; want 3, 7", s.Q1, s.Q3)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if len(s.Outliers) != 0 {
		t.Errorf("unexpected outliers %v", s.Outliers)
	}

	// An extreme point becomes an outlier and the whisker excludes it.
	s, err = Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Outliers) != 1 || s.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", s.Outliers)
	}
	if s.WhiskerHigh == 100 {
		t.Error("whisker should not extend to the outlier")
	}

	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample accepted")
	}

	s, err = Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 42 || s.Q1 != 42 || s.Q3 != 42 {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestBytesBitsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBits(data)
		if len(bits) != len(data)*8 {
			return false
		}
		back := BitsToBytes(bits)
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if data[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesToBitsOrder(t *testing.T) {
	bits := BytesToBits([]byte{0x80, 0x01})
	want := []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d = %d, want %d", i, bits[i], want[i])
		}
	}
}
