// Package entropy provides the statistical measures the paper uses to
// characterize DRAM cells and bitstreams: Shannon entropy of n-bit symbol
// distributions, min-entropy, bias, the ±10% symbol-uniformity criterion for
// RNG-cell identification (Section 6.1), and the box-and-whisker summaries
// used by the characterization figures.
package entropy

import (
	"fmt"
	"math"
	"sort"
)

// BitCounts returns the number of zero and one bits in the stream.
func BitCounts(bits []byte) (zeros, ones int) {
	for _, b := range bits {
		if b != 0 {
			ones++
		} else {
			zeros++
		}
	}
	return zeros, ones
}

// Bias returns the proportion of ones in the bitstream (0.5 is unbiased).
// It returns an error for an empty stream.
func Bias(bits []byte) (float64, error) {
	if len(bits) == 0 {
		return 0, fmt.Errorf("entropy: bias of empty bitstream")
	}
	_, ones := BitCounts(bits)
	return float64(ones) / float64(len(bits)), nil
}

// ShannonBits returns the Shannon entropy (in bits per bit) of the 1-bit
// symbol distribution of the stream: -p log2 p - q log2 q.
func ShannonBits(bits []byte) (float64, error) {
	p, err := Bias(bits)
	if err != nil {
		return 0, err
	}
	return BinaryEntropy(p), nil
}

// BinaryEntropy returns the entropy of a Bernoulli(p) source in bits.
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// SymbolHistogram counts the occurrences of each n-bit symbol in the
// bitstream, consuming the stream in non-overlapping n-bit chunks (trailing
// bits that do not fill a symbol are ignored). bits must contain values 0
// or 1; n must be in [1, 16].
func SymbolHistogram(bits []byte, n int) ([]int, error) {
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("entropy: symbol size %d outside [1,16]", n)
	}
	counts := make([]int, 1<<uint(n))
	for i := 0; i+n <= len(bits); i += n {
		sym := 0
		for j := 0; j < n; j++ {
			sym = sym<<1 | int(bits[i+j]&1)
		}
		counts[sym]++
	}
	return counts, nil
}

// ShannonSymbolEntropy returns the Shannon entropy, in bits per symbol, of
// the n-bit symbol distribution of the stream.
func ShannonSymbolEntropy(bits []byte, n int) (float64, error) {
	counts, err := SymbolHistogram(bits, n)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, fmt.Errorf("entropy: bitstream too short for %d-bit symbols", n)
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h, nil
}

// MinEntropy returns the min-entropy (in bits per bit) of the 1-bit symbol
// distribution: -log2(max(p, 1-p)).
func MinEntropy(bits []byte) (float64, error) {
	p, err := Bias(bits)
	if err != nil {
		return 0, err
	}
	pmax := math.Max(p, 1-p)
	if pmax >= 1 {
		return 0, nil
	}
	return -math.Log2(pmax), nil
}

// SymbolsUniform implements the paper's RNG-cell selection criterion
// (Section 6.1): it reports whether every n-bit symbol occurs within
// ±tolerance (as a fraction) of the expected count for a uniform source.
func SymbolsUniform(bits []byte, n int, tolerance float64) (bool, error) {
	if tolerance <= 0 || tolerance >= 1 {
		return false, fmt.Errorf("entropy: tolerance must be in (0,1), got %v", tolerance)
	}
	counts, err := SymbolHistogram(bits, n)
	if err != nil {
		return false, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return false, fmt.Errorf("entropy: bitstream too short for %d-bit symbols", n)
	}
	expected := float64(total) / float64(len(counts))
	lo := expected * (1 - tolerance)
	hi := expected * (1 + tolerance)
	for _, c := range counts {
		if float64(c) < lo || float64(c) > hi {
			return false, nil
		}
	}
	return true, nil
}

// SerialCorrelation returns the lag-1 serial correlation coefficient of the
// bitstream, a quick indicator of sample-to-sample dependence.
func SerialCorrelation(bits []byte) (float64, error) {
	n := len(bits)
	if n < 2 {
		return 0, fmt.Errorf("entropy: need at least 2 bits, got %d", n)
	}
	var sum, sumSq, sumProd float64
	for i := 0; i < n; i++ {
		x := float64(bits[i] & 1)
		sum += x
		sumSq += x * x
		if i+1 < n {
			sumProd += x * float64(bits[i+1]&1)
		}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance == 0 {
		return 1, nil
	}
	cov := sumProd/float64(n-1) - mean*mean
	return cov / variance, nil
}

// Summary is a box-and-whisker summary of a sample: the quartiles, whisker
// bounds (1.5 IQR beyond the box), and the outliers, matching the plot
// format used throughout the paper's figures.
type Summary struct {
	N        int
	Min, Max float64
	Q1       float64
	Median   float64
	Q3       float64
	// WhiskerLow and WhiskerHigh are the most extreme samples within
	// 1.5×IQR of the box.
	WhiskerLow  float64
	WhiskerHigh float64
	Outliers    []float64
	Mean        float64
}

// Summarize computes a box-and-whisker summary of the sample. It returns an
// error for an empty sample.
func Summarize(sample []float64) (Summary, error) {
	if len(sample) == 0 {
		return Summary{}, fmt.Errorf("entropy: summary of empty sample")
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)

	s := Summary{
		N:   len(sorted),
		Min: sorted[0],
		Max: sorted[len(sorted)-1],
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	s.Median = quantile(sorted, 0.5)
	s.Q1 = quantile(sorted, 0.25)
	s.Q3 = quantile(sorted, 0.75)
	iqr := s.Q3 - s.Q1
	loBound := s.Q1 - 1.5*iqr
	hiBound := s.Q3 + 1.5*iqr
	s.WhiskerLow = s.Max
	s.WhiskerHigh = s.Min
	for _, v := range sorted {
		if v < loBound || v > hiBound {
			s.Outliers = append(s.Outliers, v)
			continue
		}
		if v < s.WhiskerLow {
			s.WhiskerLow = v
		}
		if v > s.WhiskerHigh {
			s.WhiskerHigh = v
		}
	}
	if s.WhiskerLow > s.WhiskerHigh {
		// All points were outliers (degenerate); collapse whiskers onto the
		// median.
		s.WhiskerLow, s.WhiskerHigh = s.Median, s.Median
	}
	return s, nil
}

// quantile returns the q-quantile of an already-sorted sample using linear
// interpolation between order statistics.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BytesToBits expands a packed byte slice into one byte per bit (values 0 or
// 1), most significant bit first. It is the format the NIST tests and the
// entropy measures consume.
func BytesToBits(data []byte) []byte {
	bits := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>uint(i))&1)
		}
	}
	return bits
}

// BitsToBytes packs a slice of bits (one byte per bit) into bytes, most
// significant bit first; trailing bits that do not fill a byte are dropped.
func BitsToBytes(bits []byte) []byte {
	out := make([]byte, 0, len(bits)/8)
	for i := 0; i+8 <= len(bits); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			b = b<<1 | (bits[i+j] & 1)
		}
		out = append(out, b)
	}
	return out
}
