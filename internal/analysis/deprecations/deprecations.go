// Package deprecations flags uses of the legacy drange.New / drange.Config
// API outside its home file, legacy.go. It replaces the CI grep gate with a
// type-aware check: aliasing the package or the identifiers cannot dodge it.
//
// Each finding carries a SuggestedFix inserting a migration TODO at the use
// site. New(cfg) fuses identification and opening, so there is no
// expression-for-expression rewrite; the fix marks the site and the
// diagnostic spells out the replacement (Characterize + Open, or functional
// Options in place of Config).
//
// Test files are exempt: exercising the deprecated shims in tests is how
// their behavior stays pinned.
package deprecations

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "deprecations",
	Doc:  "flag drange.New and drange.Config uses outside legacy.go",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		if filepath.Base(pass.Fset.File(f.Pos()).Name()) == "legacy.go" {
			continue
		}
		// Qualified uses (drange.New) report on the whole selector so the
		// suggested fix lands before the package qualifier.
		qualified := make(map[*ast.Ident]ast.Node)
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				qualified[sel.Sel] = sel
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || !analysis.PkgPathIs(obj.Pkg().Path(), "drange") {
				return true
			}
			var msg string
			switch obj.(type) {
			case *types.Func:
				if obj.Name() != "New" {
					return true
				}
				msg = "drange.New is deprecated: it re-runs identification on every call; use drange.Characterize once, then drange.Open (or drange.OpenPool) with the profile"
			case *types.TypeName:
				if obj.Name() != "Config" {
					return true
				}
				msg = "drange.Config is deprecated: use the functional Options (drange.WithSerial, drange.WithDeterministic, ...) accepted by Characterize and Open"
			default:
				return true
			}
			at := ast.Node(id)
			if sel, ok := qualified[id]; ok {
				at = sel
			}
			pass.Report(analysis.Diagnostic{
				Pos:     at.Pos(),
				End:     at.End(),
				Message: msg,
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: "mark the call site for migration",
					TextEdits: []analysis.TextEdit{{
						Pos:     at.Pos(),
						End:     at.Pos(),
						NewText: []byte("/* TODO(drange-vet): migrate off deprecated API */ "),
					}},
				}},
			})
			return true
		})
	}
	return nil
}
