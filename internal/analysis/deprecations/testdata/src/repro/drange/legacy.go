// Package drange stands in for the facade; legacy.go is where the
// deprecated API lives and may reference itself freely.
package drange

// Config is the deprecated all-in-one configuration.
type Config struct {
	Serial        uint64
	Deterministic bool
}

// Engine is the deprecated generator shim.
type Engine struct{ cfg Config }

// New is the deprecated fused constructor.
func New(cfg Config) (*Engine, error) {
	def := Config{Serial: cfg.Serial, Deterministic: cfg.Deterministic}
	return &Engine{cfg: def}, nil
}
