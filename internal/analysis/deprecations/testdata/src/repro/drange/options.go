package drange

// Option is the supported configuration mechanism.
type Option func(*Engine)

// Open is the supported constructor.
func Open(opts ...Option) (*Engine, error) {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}
