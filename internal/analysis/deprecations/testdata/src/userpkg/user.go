// Package userpkg consumes the deprecated API and gets flagged for it.
package userpkg

import "repro/drange"

func Build() error {
	var cfg drange.Config // want "drange.Config is deprecated"
	cfg.Serial = 7
	eng, err := drange.New(cfg) // want "drange.New is deprecated"
	_ = eng
	return err
}

func BuildSupported() error {
	_, err := drange.Open()
	return err
}
