package deprecations_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/deprecations"
)

func TestDeprecations(t *testing.T) {
	analysistest.Run(t, "testdata", deprecations.Analyzer,
		"userpkg",
		"repro/drange",
	)
}

// TestSuggestedFix applies the analyzer's TextEdits to the flagged file and
// checks the migration markers land at the use sites.
func TestSuggestedFix(t *testing.T) {
	loader := analysis.NewLoader("", "testdata/src")
	pkg, err := loader.LoadFromSource("userpkg")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{deprecations.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}

	src, err := os.ReadFile(filepath.Join("testdata", "src", "userpkg", "user.go"))
	if err != nil {
		t.Fatal(err)
	}
	// Apply all edits back to front so earlier offsets stay valid.
	type edit struct {
		off  int
		text []byte
	}
	var edits []edit
	for _, f := range findings {
		if len(f.Diag.SuggestedFixes) != 1 {
			t.Fatalf("finding %v: want exactly one suggested fix", f)
		}
		for _, te := range f.Diag.SuggestedFixes[0].TextEdits {
			if te.Pos != te.End {
				t.Fatalf("expected pure insertions, got replacement")
			}
			edits = append(edits, edit{off: pkg.Fset.Position(te.Pos).Offset, text: te.NewText})
		}
	}
	for i := range edits {
		for j := i + 1; j < len(edits); j++ {
			if edits[j].off > edits[i].off {
				edits[i], edits[j] = edits[j], edits[i]
			}
		}
	}
	fixed := string(src)
	for _, e := range edits {
		fixed = fixed[:e.off] + string(e.text) + fixed[e.off:]
	}
	if got := strings.Count(fixed, "TODO(drange-vet): migrate off deprecated API"); got != 2 {
		t.Fatalf("applied fixes contain %d migration markers, want 2:\n%s", got, fixed)
	}
	if !strings.Contains(fixed, "/* TODO(drange-vet): migrate off deprecated API */ drange.New(cfg)") {
		t.Fatalf("fix not anchored at drange.New use:\n%s", fixed)
	}
}
