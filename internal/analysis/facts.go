package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Facts are per-package payloads an analyzer exports while analyzing one
// package and imports while analyzing the package's dependents. They are how
// analyses compose interprocedurally across package boundaries: seedtaint
// serializes function taint summaries, atomiccheck the set of annotated
// fields. The framework treats payloads as opaque bytes; each analyzer
// defines its own (deterministic) encoding.
//
// Under the vet driver the payloads ride in the .vetx "facts" file the
// unitchecker protocol already caches per package (see cmd/drange-vet); in
// standalone and analysistest modes a FactBase held in memory plays the same
// role.

// A FactBase accumulates serialized facts by import path and analyzer name.
// It is the in-memory fact store used by standalone Run and analysistest.
type FactBase map[string]map[string][]byte

// Get returns the payload analyzer exported for the package at path, or nil.
func (fb FactBase) Get(path, analyzer string) []byte {
	return fb[path][analyzer]
}

// Set records the payload analyzer exported for the package at path.
func (fb FactBase) Set(path, analyzer string, payload []byte) {
	if len(payload) == 0 {
		return
	}
	m := fb[path]
	if m == nil {
		m = make(map[string][]byte)
		fb[path] = m
	}
	m[analyzer] = payload
}

// EncodeFacts serializes one package's analyzer→payload map into the bytes
// stored in a .vetx facts file. The encoding is JSON with sorted keys, so
// identical analysis results always produce byte-identical facts files —
// CI's cold-cache vs warm-cache determinism check depends on this.
func EncodeFacts(m map[string][]byte) ([]byte, error) {
	if len(m) == 0 {
		return nil, nil
	}
	return json.Marshal(m)
}

// DecodeFacts is the inverse of EncodeFacts. Empty input yields a nil map.
func DecodeFacts(data []byte) (map[string][]byte, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var m map[string][]byte
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("decoding facts: %v", err)
	}
	return m, nil
}

// SortedKeys returns the map's keys in sorted order; analyzers use it to keep
// their own fact encodings deterministic.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
