package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// A CallGraph is the static, package-local call graph of one package: nodes
// are the functions and methods declared in the package, edges are direct
// call expressions whose callee resolves statically to another node.
// Dynamic calls (func values, closures, interface dispatch) are not edges —
// interprocedural analyses treat them through policy intrinsics or as
// unknown callees.
type CallGraph struct {
	// Decls maps each declared function to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// SCCs holds the strongly connected components in callee-first order:
	// by the time an SCC is visited, every function it calls outside the
	// SCC has already been visited. Within an SCC the order is by source
	// position. This is the iteration order that makes per-function summary
	// computation converge fastest.
	SCCs [][]*types.Func

	calls map[*types.Func][]*types.Func
}

// StaticCallee resolves a call expression to the *types.Func it statically
// invokes: a package function, a method on a concrete receiver, or an
// interface method (useful for intrinsic matching). Returns nil for dynamic
// calls, conversions and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		} else if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // pkg-qualified call: otherpkg.Func(...)
		}
	}
	return nil
}

// BuildCallGraph constructs the package-local call graph for the pass.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		Decls: make(map[*types.Func]*ast.FuncDecl),
		calls: make(map[*types.Func][]*types.Func),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decls[fn] = fd
		}
	}
	for fn, fd := range g.Decls {
		seen := map[*types.Func]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // closures are analyzed as dynamic calls
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(pass.TypesInfo, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, local := g.Decls[callee]; local {
				seen[callee] = true
				g.calls[fn] = append(g.calls[fn], callee)
			}
			return true
		})
	}
	g.buildSCCs(pass)
	return g
}

// Callees returns fn's statically resolved package-local callees.
func (g *CallGraph) Callees(fn *types.Func) []*types.Func { return g.calls[fn] }

// buildSCCs runs Tarjan's algorithm (iteratively, to be safe on deep call
// chains) and records the components. Tarjan emits SCCs in reverse
// topological order of the condensation — exactly the callee-first order the
// summaries need — so the emission order is kept as-is.
func (g *CallGraph) buildSCCs(pass *Pass) {
	// Deterministic node order: by source position.
	nodes := make([]*types.Func, 0, len(g.Decls))
	for fn := range g.Decls {
		nodes = append(nodes, fn)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos() < nodes[j].Pos() })

	index := make(map[*types.Func]int, len(nodes))
	low := make(map[*types.Func]int, len(nodes))
	onStack := make(map[*types.Func]bool, len(nodes))
	var stack []*types.Func
	next := 0

	type frame struct {
		fn *types.Func
		ci int // next callee index to visit
	}
	var visit func(root *types.Func)
	visit = func(root *types.Func) {
		frames := []frame{{fn: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			callees := g.calls[f.fn]
			if f.ci < len(callees) {
				c := callees[f.ci]
				f.ci++
				if _, seen := index[c]; !seen {
					index[c] = next
					low[c] = next
					next++
					stack = append(stack, c)
					onStack[c] = true
					frames = append(frames, frame{fn: c})
				} else if onStack[c] {
					if index[c] < low[f.fn] {
						low[f.fn] = index[c]
					}
				}
				continue
			}
			// All callees done: pop frame, maybe emit SCC.
			fn := f.fn
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].fn
				if low[fn] < low[parent] {
					low[parent] = low[fn]
				}
			}
			if low[fn] == index[fn] {
				var scc []*types.Func
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == fn {
						break
					}
				}
				sort.Slice(scc, func(i, j int) bool { return scc[i].Pos() < scc[j].Pos() })
				g.SCCs = append(g.SCCs, scc)
			}
		}
	}
	for _, fn := range nodes {
		if _, seen := index[fn]; !seen {
			visit(fn)
		}
	}
}
