// Package atomiccheck implements the drange-vet analyzer that enforces the
// //drange:atomic field annotation: an annotated field may be touched only
// through sync/atomic.
//
// Two field shapes are supported:
//
//   - Typed wrappers (atomic.Int64, atomic.Uint64, atomic.Bool, ...): the
//     field may only be used as the receiver of its own methods
//     (x.f.Load(), x.f.Add(1)) or have its address taken (&x.f, to pass the
//     counter somewhere that calls its methods). Copying the wrapper by
//     value is a diagnostic — a copy silently forks the counter.
//   - Plain integer fields: every access must be an &x.f argument directly
//     inside a sync/atomic call (atomic.AddInt64(&x.f, 1)). A plain load, a
//     plain store, or an address escaping into non-atomic code is a
//     diagnostic.
//
// Mixing disciplines is also a diagnostic: a field annotated both
// //drange:atomic and //drange:guardedby has no coherent access story — the
// mutex readers would race the atomic writers.
//
// The annotated-field inventory is exported as facts keyed "Type.Field", so
// a dependent package touching an exported annotated field is held to the
// same rules.
package atomiccheck

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomiccheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomiccheck",
	Doc:  "check that //drange:atomic fields are only touched through sync/atomic",
	Run:  run,
}

// fieldKind distinguishes the two supported field shapes.
type fieldKind int

const (
	kindWrapper fieldKind = iota // atomic.Int64-style typed wrapper
	kindPlain                    // plain integer manipulated via atomic free functions
)

type fieldInfo struct {
	Kind fieldKind `json:"k"`
}

func isAtomicWrapper(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// fieldKey names a field position-independently: "Type.Field". Used for the
// fact encoding and for resolving imported annotations.
func fieldKey(typeName, field string) string { return typeName + "." + field }

func run(pass *analysis.Pass) error {
	// Collect annotated fields declared in this package: object → kind, and
	// the fact inventory keyed by "Type.Field" for dependents.
	local := map[*types.Var]fieldKind{}
	keys := map[string]fieldInfo{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				collectStruct(pass, ts.Name.Name, st, local, keys)
			}
		}
	}

	// Imported annotations, lazily decoded per dependency package.
	imported := map[string]map[string]fieldInfo{}
	annotationOf := func(sel *types.Selection) (fieldKind, bool) {
		fld, ok := sel.Obj().(*types.Var)
		if !ok || !fld.IsField() {
			return 0, false
		}
		if k, ok := local[fld]; ok {
			return k, true
		}
		pkg := fld.Pkg()
		if pkg == nil || pkg == pass.Pkg || pass.ImportFacts == nil {
			return 0, false
		}
		m, seen := imported[pkg.Path()]
		if !seen {
			if payload := pass.ImportFacts(pkg.Path()); len(payload) > 0 {
				_ = json.Unmarshal(payload, &m) // malformed facts degrade to unannotated
			}
			imported[pkg.Path()] = m
		}
		if m == nil {
			return 0, false
		}
		t := sel.Recv()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := types.Unalias(t).(*types.Named)
		if !ok {
			return 0, false
		}
		fi, ok := m[fieldKey(n.Obj().Name(), fld.Name())]
		if !ok {
			return 0, false
		}
		return fi.Kind, true
	}

	if !pass.FactsOnly {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if analysis.IsTestFile(pass.Fset, fd.Pos()) {
					continue
				}
				checkBody(pass, fd.Body, annotationOf)
			}
		}
	}

	if pass.ExportFacts != nil && len(keys) > 0 {
		payload, err := json.Marshal(keys)
		if err != nil {
			return err
		}
		pass.ExportFacts(payload)
	}
	return nil
}

func collectStruct(pass *analysis.Pass, typeName string, st *ast.StructType, local map[*types.Var]fieldKind, keys map[string]fieldInfo) {
	for _, fld := range st.Fields.List {
		var hasAtomic, hasGuarded bool
		for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
			for _, d := range analysis.Directives(cg) {
				switch d.Name {
				case "atomic":
					hasAtomic = true
				case "guardedby":
					hasGuarded = true
				}
			}
		}
		if !hasAtomic {
			continue
		}
		if hasGuarded {
			pass.Reportf(fld, "field cannot be both //drange:atomic and //drange:guardedby: pick one discipline")
		}
		for _, name := range fld.Names {
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			kind := kindPlain
			if isAtomicWrapper(v.Type()) {
				kind = kindWrapper
			} else if b, ok := v.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
				pass.Reportf(name, "//drange:atomic field %s must be a sync/atomic wrapper or an integer", name.Name)
				continue
			}
			local[v] = kind
			keys[fieldKey(typeName, name.Name)] = fieldInfo{Kind: kind}
		}
	}
}

// checkBody walks one function body with parent context and classifies every
// use of an annotated field.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, annotationOf func(*types.Selection) (fieldKind, bool)) {
	info := pass.TypesInfo

	var walk func(n ast.Node, parents []ast.Node)
	walk = func(n ast.Node, parents []ast.Node) {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if s, isSel := info.Selections[sel]; isSel && s.Kind() == types.FieldVal {
				if kind, annotated := annotationOf(s); annotated {
					classifyUse(pass, sel, kind, parents)
				}
			}
		}
		parents = append(parents, n)
		for _, child := range children(n) {
			walk(child, parents)
		}
	}
	walk(body, nil)
}

// classifyUse applies the discipline rules to one annotated-field selector.
func classifyUse(pass *analysis.Pass, sel *ast.SelectorExpr, kind fieldKind, parents []ast.Node) {
	info := pass.TypesInfo
	name := sel.Sel.Name
	parent := func(i int) ast.Node {
		if len(parents) < i {
			return nil
		}
		return parents[len(parents)-i]
	}

	isAddrOf := func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		return ok && u.Op == token.AND && ast.Unparen(u.X) == sel
	}

	if kind == kindWrapper {
		// Legal: receiver of a sync/atomic method (x.f.Load()).
		if msel, ok := parent(1).(*ast.SelectorExpr); ok {
			if ms, isSel := info.Selections[msel]; isSel {
				if fn, ok := ms.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
					return
				}
			}
		}
		// Legal: &x.f, handing the counter around by reference.
		if isAddrOf(parent(1)) {
			return
		}
		pass.Reportf(sel, "atomic wrapper field %s copied by value; use its methods or take its address", name)
		return
	}

	// Plain-mode field: the only legal use is &x.f directly inside a
	// sync/atomic free-function call.
	if isAddrOf(parent(1)) {
		if call, ok := parent(2).(*ast.CallExpr); ok && isAtomicFreeCall(info, call) {
			return
		}
		pass.Reportf(sel, "address of atomic field %s escapes outside sync/atomic", name)
		return
	}
	switch p := parent(1).(type) {
	case *ast.AssignStmt:
		for _, l := range p.Lhs {
			if ast.Unparen(l) == sel {
				pass.Reportf(sel, "plain store to atomic field %s; use sync/atomic", name)
				return
			}
		}
	case *ast.IncDecStmt:
		if ast.Unparen(p.X) == sel {
			pass.Reportf(sel, "plain %s of atomic field %s; use sync/atomic", p.Tok, name)
			return
		}
	}
	pass.Reportf(sel, "plain read of atomic field %s; use sync/atomic", name)
}

// isAtomicFreeCall reports whether call invokes a sync/atomic package-level
// function (atomic.AddInt64 and friends).
func isAtomicFreeCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Signature().Recv() != nil {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// children returns n's immediate AST children in source order.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
