// Package a exercises atomiccheck's in-package rules: wrapper and plain
// integer disciplines, the legal access forms, and the annotation grammar.
package a

import (
	"sync"
	"sync/atomic"
)

type Counter struct {
	mu   sync.Mutex
	hits atomic.Int64 //drange:atomic
	raw  int64        //drange:atomic

	//drange:atomic
	//drange:guardedby mu
	both int64 // want "field cannot be both //drange:atomic and //drange:guardedby: pick one discipline"

	//drange:atomic
	bad string // want "//drange:atomic field bad must be a sync/atomic wrapper or an integer"

	plain int64
}

// Legal accesses: wrapper methods, wrapper address, atomic free calls on the
// plain integer, and unannotated fields are unconstrained.
func (c *Counter) Inc() {
	c.hits.Add(1)
	p := &c.hits
	p.Store(0)
	atomic.AddInt64(&c.raw, 1)
	_ = atomic.LoadInt64(&c.raw)
	c.plain++
}

func (c *Counter) Bad() int64 {
	c.raw = 1   // want "plain store to atomic field raw; use sync/atomic"
	c.raw++     // want "plain \\+\\+ of atomic field raw; use sync/atomic"
	h := c.hits // want "atomic wrapper field hits copied by value; use its methods or take its address"
	_ = h
	q := &c.raw // want "address of atomic field raw escapes outside sync/atomic"
	_ = q
	return c.raw // want "plain read of atomic field raw; use sync/atomic"
}

// Pub is exported so package b can exercise the fact-driven cross-package
// checks.
type Pub struct {
	N atomic.Int64 //drange:atomic
	M int64        //drange:atomic
}

var Shared Pub
