// Package b exercises atomiccheck's cross-package rules: the annotations on
// a.Pub arrive as exported facts, not source.
package b

import (
	"sync/atomic"

	"a"
)

func Touch() int64 {
	a.Shared.N.Add(1)
	atomic.AddInt64(&a.Shared.M, 1)
	a.Shared.M = 7  // want "plain store to atomic field M; use sync/atomic"
	n := a.Shared.N // want "atomic wrapper field N copied by value; use its methods or take its address"
	_ = n
	return a.Shared.M // want "plain read of atomic field M; use sync/atomic"
}
