package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file implements a forward, flow-sensitive dataflow/taint engine with
// per-function summaries. The engine is generic: a TaintConfig supplies the
// policy (what introduces taint, what cleanses it, what is a sink); the
// seedtaint analyzer instantiates it for the paper's raw-entropy invariant.
//
// # Model
//
// Each value is abstracted to a Mask, a small bitset. SourceBit means "may
// carry raw device entropy that has not passed health.Monitor". ArgBit(i)
// means "may carry whatever the function's i-th argument carried at entry" —
// the relational bits that make summaries compose: when a summary computed
// for f is applied at a call site, each ArgBit is substituted with the
// caller's mask for that argument (translate), so taint introduced three
// packages away still reaches the sink check here.
//
// A FuncSummary records, joined over all success exits: the exit mask of
// each argument's pointee (Args — a strong update at call sites, which is
// what lets health.Monitor.Ingest* cleanse a caller's buffer), the mask of
// each result (Results), and latent sink hits whose mask still depends on
// arguments (Flows — they fire at whatever call site finally supplies a
// SourceBit). Return statements whose final error-typed operand is not the
// literal nil are failure exits: they are excluded from the summary joins
// and from exit-sink checks, because error paths legitimately abandon
// half-filled buffers. Call sinks are still checked on every path.
//
// # Raw-tier guards
//
// The two-tier serving design routes around the health monitor only when no
// monitor is configured. The engine models this: when an if condition
// nil-tests an expression the policy recognizes as the monitor
// (TaintConfig.RawGuard), the branch on the monitor==nil side is the
// documented raw tier — SourceBit is stripped from the environment at branch
// entry and from every value produced inside it. Only bare `x == nil`
// conditions (or `&&` chains containing one) strip the then-branch, and only
// bare `x != nil` conditions (or `||` chains of `x == nil`) strip the
// else/fallthrough side; anything more complex strips nothing.
//
// # Fields and channels
//
// Struct fields, package-level variables and channel-typed fields share a
// package-global, monotone taint map: a store (or channel send) of a tainted
// value marks the object, every read (or receive) then yields its mask. The
// map only grows across the package fixpoint, which keeps iteration
// convergent; it is also why taint that escapes into long-lived state (a
// DRBG seed buffer, a shard ring) is not forgotten between methods.

// A Mask is the taint abstraction of one value.
type Mask uint64

// SourceBit marks raw, un-health-tested device entropy.
const SourceBit Mask = 1

// ArgBit returns the relational bit standing for "whatever argument i
// carried at function entry" (canonical numbering: receiver first, then
// parameters).
func ArgBit(i int) Mask {
	if i > 61 {
		return 0 // beyond 62 args we drop precision rather than wrap
	}
	return 1 << (uint(i) + 1)
}

// A TaintFlow is a latent sink hit inside a function: the sink fires at any
// call site whose translated mask contains SourceBit.
type TaintFlow struct {
	Mask Mask   `json:"m"`
	Sink string `json:"s"`
}

// A FuncSummary is the transfer function of one function, joined over its
// success exits.
type FuncSummary struct {
	Args    []Mask      `json:"a,omitempty"` // exit masks of argument pointees (strong at call sites)
	Results []Mask      `json:"r,omitempty"`
	Flows   []TaintFlow `json:"f,omitempty"`
}

func summaryEqual(a, b *FuncSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Args) != len(b.Args) || len(a.Results) != len(b.Results) || len(a.Flows) != len(b.Flows) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			return false
		}
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			return false
		}
	}
	return true
}

// A CallEffect is the policy's intrinsic model for one callee. Intrinsics
// take precedence over computed summaries: they are the model boundary
// (device reads are sources no matter what their bodies look like, Monitor
// ingestion cleanses by definition).
type CallEffect struct {
	// IsSource: the call's non-error results and its pointer/slice argument
	// pointees carry SourceBit after the call.
	IsSource bool
	// CleanseArgs lists canonical argument indices whose pointees are
	// strongly cleansed by the call.
	CleanseArgs []int
	// CleanResults forces all results clean (cleansers, DRBG constructors).
	CleanResults bool
	// SinkArgs lists canonical argument indices that must not carry
	// SourceBit; SinkDesc names the sink in diagnostics.
	SinkArgs []int
	SinkDesc string
}

// A TaintConfig is the policy for one taint analysis.
type TaintConfig struct {
	// Effect returns the intrinsic model for fn, if the policy has one.
	// Called for every statically resolved callee, including interface
	// methods.
	Effect func(fn *types.Func) (CallEffect, bool)
	// ExitSink returns a description if fn's success exits must be free of
	// SourceBit (in results and in pointer/slice argument pointees), or
	// "" if fn is not an exit sink.
	ExitSink func(fn *types.Func, decl *ast.FuncDecl) string
	// RawGuard reports whether e is an expression whose nil-ness selects
	// the documented raw tier (e.g. a *health.Monitor field).
	RawGuard func(info *types.Info, e ast.Expr) bool
	// Waived reports whether fn carries the policy's waiver: the function
	// is skipped entirely and summarized as the identity.
	Waived func(fn *types.Func, decl *ast.FuncDecl) bool
	// MaxFixpoint caps the package-level summary iterations (default 10).
	MaxFixpoint int
}

// A TaintAnalysis runs the engine over one pass.
type TaintAnalysis struct {
	pass  *Pass
	cfg   *TaintConfig
	graph *CallGraph

	summaries map[*types.Func]*FuncSummary
	fields    map[*types.Var]Mask // package-global: fields, globals, channels
	// observed joins, per locally-declared callee, the concrete SourceBit
	// seen flowing into each canonical argument at any call site in the
	// package. computeSummary seeds parameter environments with it, which is
	// what carries raw taint through writes to struct internals (a sampler
	// pushing a raw word into its bit buffer) without tainting every value
	// reachable from the receiver handle.
	observed map[*types.Func][]Mask
	imported map[string]map[string]*FuncSummary
	changed  bool

	reports map[string]Diagnostic
}

// RunTaint computes summaries for every function in the pass's package to a
// fixpoint, reports policy violations as diagnostics on the pass, and
// returns the analysis (for fact export).
func RunTaint(pass *Pass, cfg *TaintConfig) *TaintAnalysis {
	a := &TaintAnalysis{
		pass:      pass,
		cfg:       cfg,
		graph:     BuildCallGraph(pass),
		summaries: make(map[*types.Func]*FuncSummary),
		fields:    make(map[*types.Var]Mask),
		observed:  make(map[*types.Func][]Mask),
		imported:  make(map[string]map[string]*FuncSummary),
		reports:   make(map[string]Diagnostic),
	}
	max := cfg.MaxFixpoint
	if max <= 0 {
		max = 10
	}
	for iter := 0; iter < max; iter++ {
		a.changed = false
		for _, scc := range a.graph.SCCs {
			// Within a cycle, iterate until the component stabilizes.
			for r := 0; r < 4; r++ {
				stable := true
				for _, fn := range scc {
					ns := a.computeSummary(fn, false)
					if !summaryEqual(a.summaries[fn], ns) {
						a.summaries[fn] = ns
						stable = false
						a.changed = true
					}
				}
				if stable {
					break
				}
			}
		}
		if !a.changed {
			break
		}
	}
	// Reporting pass: summaries are stable; walk once more and emit.
	for _, scc := range a.graph.SCCs {
		for _, fn := range scc {
			a.computeSummary(fn, true)
		}
	}
	keys := SortedKeys(a.reports)
	for _, k := range keys {
		pass.Report(a.reports[k])
	}
	return a
}

// EncodeSummaries serializes the package's exported view of the summaries
// (all of them — dependents resolve callees by name and ignore the rest).
// The encoding is JSON keyed by types.Func.FullName, which is stable across
// the source-checked and export-data views of a package.
func (a *TaintAnalysis) EncodeSummaries() ([]byte, error) {
	m := make(map[string]*FuncSummary, len(a.summaries))
	for fn, s := range a.summaries {
		m[fn.FullName()] = s
	}
	if len(m) == 0 {
		return nil, nil
	}
	return json.Marshal(m)
}

// Summary returns the computed summary for a function declared in this
// package (tests use this).
func (a *TaintAnalysis) Summary(fn *types.Func) *FuncSummary { return a.summaries[fn] }

func (a *TaintAnalysis) report(pos, end token.Pos, format string, args ...any) {
	d := Diagnostic{Pos: pos, End: end, Message: fmt.Sprintf(format, args...)}
	p := a.pass.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d:%d:%s", p.Filename, p.Line, p.Column, d.Message)
	a.reports[key] = d
}

// summaryFor resolves a callee's summary: locally computed first, then
// imported facts from the callee's package. Nil means unknown.
func (a *TaintAnalysis) summaryFor(fn *types.Func) *FuncSummary {
	if s, ok := a.summaries[fn]; ok {
		return s
	}
	pkg := fn.Pkg()
	if pkg == nil || pkg == a.pass.Pkg || a.pass.ImportFacts == nil {
		return nil
	}
	path := pkg.Path()
	m, ok := a.imported[path]
	if !ok {
		if payload := a.pass.ImportFacts(path); len(payload) > 0 {
			_ = json.Unmarshal(payload, &m) // malformed facts degrade to unknown
		}
		a.imported[path] = m
	}
	if m == nil {
		return nil
	}
	return m[fn.FullName()]
}

// observeArgs joins the concrete SourceBit of a call's arguments into the
// locally-declared callee's observed-argument masks. Only SourceBit crosses
// the call boundary this way — ArgBits are caller-relative.
func (a *TaintAnalysis) observeArgs(fn *types.Func, argMasks []Mask) {
	if a.graph.Decls[fn] == nil {
		return
	}
	obs := a.observed[fn]
	if obs == nil {
		obs = make([]Mask, len(argMasks))
		a.observed[fn] = obs
	}
	for i, m := range argMasks {
		if i >= len(obs) {
			break
		}
		m &= SourceBit
		if obs[i]|m != obs[i] {
			obs[i] |= m
			a.changed = true
		}
	}
}

var errorType = types.Universe.Lookup("error").Type()

// canonicalArgs returns the canonical argument objects for a declaration:
// receiver (if any), then parameters.
func canonicalArgs(fn *types.Func, decl *ast.FuncDecl, info *types.Info) []*types.Var {
	var out []*types.Var
	sig := fn.Signature()
	if r := sig.Recv(); r != nil {
		out = append(out, r)
		// The declared receiver object differs from sig.Recv(); prefer the
		// declared one so env lookups by identifier work.
		if decl.Recv != nil && len(decl.Recv.List) > 0 && len(decl.Recv.List[0].Names) > 0 {
			if v, ok := info.Defs[decl.Recv.List[0].Names[0]].(*types.Var); ok {
				out[0] = v
			}
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

func pointerish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

func strongUpdatable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice:
		return true
	}
	return false
}

// computeSummary derives fn's summary and, with report=true, records
// diagnostics (summaries must already be at fixpoint).
//
// The body is walked twice. The concrete walk seeds the parameters with the
// SourceBit observed at the package's call sites; it exists to push taint
// into the global field map (a raw word entering a buffer method really does
// land in the buffer's field) and to report with call-site reality in view.
// The pure walk seeds parameters with ArgBits alone and produces the summary
// call sites translate: baking observed SourceBit into the summary instead
// would make every external caller of a pure helper (a byte decoder that
// core happens to feed raw words) see SOURCE regardless of what it passed.
func (a *TaintAnalysis) computeSummary(fn *types.Func, report bool) *FuncSummary {
	decl := a.graph.Decls[fn]
	args := canonicalArgs(fn, decl, a.pass.TypesInfo)
	if a.cfg.Waived != nil && a.cfg.Waived(fn, decl) {
		// Waived: identity summary, nothing reported. The waiver sanctions
		// the raw tier — its output is, by decree, not SourceBit.
		sum := &FuncSummary{
			Args:    make([]Mask, len(args)),
			Results: make([]Mask, fn.Signature().Results().Len()),
		}
		for i := range sum.Args {
			sum.Args[i] = ArgBit(i)
		}
		return sum
	}
	a.walkOnce(fn, decl, args, true, report)
	return a.walkOnce(fn, decl, args, false, false)
}

// walkOnce performs one walk of fn's body; see computeSummary for the two
// roles the seedObs flag selects between.
func (a *TaintAnalysis) walkOnce(fn *types.Func, decl *ast.FuncDecl, args []*types.Var, seedObs, report bool) *FuncSummary {
	sum := &FuncSummary{
		Args:    make([]Mask, len(args)),
		Results: make([]Mask, fn.Signature().Results().Len()),
	}
	w := &taintWalker{
		a:      a,
		fn:     fn,
		decl:   decl,
		args:   args,
		env:    make(map[types.Object]Mask),
		sum:    sum,
		report: report,
		flows:  make(map[TaintFlow]bool),
	}
	obs := a.observed[fn]
	for i, v := range args {
		w.env[v] = ArgBit(i)
		if seedObs && i < len(obs) {
			w.env[v] |= obs[i]
		}
	}
	// Named results start clean.
	res := fn.Signature().Results()
	for i := 0; i < res.Len(); i++ {
		if v := res.At(i); v.Name() != "" && v.Name() != "_" {
			w.env[v] = 0
		}
	}
	if a.cfg.ExitSink != nil && report {
		w.exitDesc = a.cfg.ExitSink(fn, decl)
	}
	w.walkStmt(decl.Body)
	if res.Len() == 0 {
		// Functions without results may fall off the end: implicit success
		// exit for the argument-pointee join.
		w.joinExit(nil, nil)
	}
	sort.Slice(sum.Flows, func(i, j int) bool {
		if sum.Flows[i].Sink != sum.Flows[j].Sink {
			return sum.Flows[i].Sink < sum.Flows[j].Sink
		}
		return sum.Flows[i].Mask < sum.Flows[j].Mask
	})
	return sum
}

type taintWalker struct {
	a        *TaintAnalysis
	fn       *types.Func
	decl     *ast.FuncDecl
	args     []*types.Var
	env      map[types.Object]Mask
	rawDepth int
	// pc is the implicit-flow ("program counter") taint: the SourceBit of
	// every enclosing branch condition. A store guarded by an entropy-derived
	// condition (if bit != 0 { words[i] |= mask }) is as entropy-laden as an
	// explicit data flow, and the repo's bit buffer moves its payload exactly
	// that way. Only SourceBit participates — ArgBits through conditions
	// would drown summaries in spurious dependences.
	pc       Mask
	report   bool
	exitDesc string
	sum      *FuncSummary
	flows    map[TaintFlow]bool
}

func copyEnv(env map[types.Object]Mask) map[types.Object]Mask {
	out := make(map[types.Object]Mask, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func joinEnv(a, b map[types.Object]Mask) map[types.Object]Mask {
	out := copyEnv(a)
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func envEqual(a, b map[types.Object]Mask) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (w *taintWalker) stripSourceEnv() {
	for k, v := range w.env {
		w.env[k] = v &^ SourceBit
	}
}

func (w *taintWalker) info() *types.Info { return w.a.pass.TypesInfo }

// ---- statement walking ----

func (w *taintWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.walkStmt(st)
		}
	case *ast.ExprStmt:
		w.eval(s.X)
	case *ast.AssignStmt:
		w.walkAssign(s)
	case *ast.DeclStmt:
		w.walkDecl(s)
	case *ast.ReturnStmt:
		w.walkReturn(s)
	case *ast.IfStmt:
		w.walkIf(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.loop(func() {
			savedPC := w.pc
			if s.Cond != nil {
				w.pc |= w.eval(s.Cond) & SourceBit
			}
			w.walkStmt(s.Body)
			if s.Post != nil {
				w.walkStmt(s.Post)
			}
			w.pc = savedPC
		})
	case *ast.RangeStmt:
		m := w.eval(s.X)
		w.loop(func() {
			if s.Key != nil {
				w.assignTo(s.Key, 0, true) // keys are indices: clean
			}
			if s.Value != nil {
				w.assignTo(s.Value, m, true)
			}
			w.walkStmt(s.Body)
		})
	case *ast.SwitchStmt:
		w.walkSwitch(s)
	case *ast.TypeSwitchStmt:
		w.walkTypeSwitch(s)
	case *ast.SelectStmt:
		w.walkSelect(s)
	case *ast.SendStmt:
		m := w.eval(s.Value)
		w.assignTo(s.Chan, m, false)
	case *ast.IncDecStmt:
		w.eval(s.X)
	case *ast.GoStmt:
		w.eval(s.Call)
	case *ast.DeferStmt:
		w.eval(s.Call)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (w *taintWalker) loop(body func()) {
	prev := copyEnv(w.env)
	for i := 0; i < 4; i++ {
		body()
		w.env = joinEnv(prev, w.env)
		if envEqual(prev, w.env) {
			break
		}
		prev = copyEnv(w.env)
	}
}

func (w *taintWalker) walkAssign(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Compound assignment: x op= y keeps x's mask and merges y's.
		m := w.eval(s.Lhs[0]) | w.eval(s.Rhs[0])
		w.assignTo(s.Lhs[0], m, true)
		return
	}
	var masks []Mask
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		masks = w.evalTuple(s.Rhs[0], len(s.Lhs))
	} else {
		for _, r := range s.Rhs {
			masks = append(masks, w.eval(r))
		}
	}
	for i, l := range s.Lhs {
		var m Mask
		if i < len(masks) {
			m = masks[i]
		}
		w.assignTo(l, m, true)
	}
}

func (w *taintWalker) walkDecl(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		var masks []Mask
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			masks = w.evalTuple(vs.Values[0], len(vs.Names))
		} else {
			for _, v := range vs.Values {
				masks = append(masks, w.eval(v))
			}
		}
		for i, name := range vs.Names {
			var m Mask
			if i < len(masks) {
				m = masks[i]
			}
			if obj := w.info().Defs[name]; obj != nil {
				w.env[obj] = m
			}
		}
	}
}

func (w *taintWalker) walkReturn(r *ast.ReturnStmt) {
	var masks []Mask
	nres := w.fn.Signature().Results().Len()
	switch {
	case len(r.Results) == 1 && nres > 1:
		masks = w.evalTuple(r.Results[0], nres)
	case len(r.Results) == 0 && nres > 0:
		// Naked return: masks of the named results.
		res := w.fn.Signature().Results()
		for i := 0; i < res.Len(); i++ {
			masks = append(masks, w.env[res.At(i)])
		}
	default:
		for _, e := range r.Results {
			masks = append(masks, w.eval(e))
		}
	}
	if w.isFailureExit(r) {
		return
	}
	w.joinExit(masks, r)
}

// isFailureExit reports whether this return is an error path: the function's
// final result is error-typed and the returned operand is not the literal
// nil. Single-operand tuple pass-throughs (`return f(x)`) count as success.
func (w *taintWalker) isFailureExit(r *ast.ReturnStmt) bool {
	res := w.fn.Signature().Results()
	if res.Len() == 0 {
		return false
	}
	if !types.Identical(res.At(res.Len()-1).Type(), errorType) {
		return false
	}
	if len(r.Results) != res.Len() {
		return false // naked return or tuple pass-through: assume success
	}
	last := ast.Unparen(r.Results[len(r.Results)-1])
	if id, ok := last.(*ast.Ident); ok {
		if _, isNil := w.info().Uses[id].(*types.Nil); isNil {
			return false
		}
	}
	return true
}

// joinExit merges one success exit into the summary and, in the reporting
// pass, checks the exit sink. rs is nil for the implicit end-of-body exit.
func (w *taintWalker) joinExit(masks []Mask, rs *ast.ReturnStmt) {
	for i, v := range w.args {
		w.sum.Args[i] |= w.env[v]
	}
	for i, m := range masks {
		if i < len(w.sum.Results) {
			w.sum.Results[i] |= m
		}
	}
	if w.exitDesc == "" || !w.report {
		return
	}
	pos, end := w.decl.Name.Pos(), w.decl.Name.End()
	if rs != nil {
		pos, end = rs.Pos(), rs.End()
	}
	if IsTestFile(w.a.pass.Fset, pos) {
		return
	}
	for _, m := range masks {
		if m&SourceBit != 0 {
			w.a.report(pos, end, "%s returns raw device entropy that has not passed health.Monitor", w.exitDesc)
			return
		}
	}
	for i, v := range w.args {
		if strongUpdatable(v.Type()) && w.env[v]&SourceBit != 0 {
			w.a.report(pos, end, "%s writes raw device entropy that has not passed health.Monitor into %s", w.exitDesc, w.args[i].Name())
			return
		}
	}
}

func (w *taintWalker) walkIf(s *ast.IfStmt) {
	if s.Init != nil {
		w.walkStmt(s.Init)
	}
	cond := w.eval(s.Cond)
	stripThen, stripElse := w.rawGuardStrips(s.Cond)
	base := copyEnv(w.env)
	savedPC := w.pc
	w.pc |= cond & SourceBit
	defer func() { w.pc = savedPC }()

	if stripThen {
		w.stripSourceEnv()
		w.rawDepth++
	}
	w.walkStmt(s.Body)
	if stripThen {
		w.rawDepth--
	}
	thenEnv := w.env
	thenTerm := terminates(s.Body)

	w.env = copyEnv(base)
	elseTerm := false
	if s.Else != nil {
		if stripElse {
			w.stripSourceEnv()
			w.rawDepth++
		}
		w.walkStmt(s.Else)
		if stripElse {
			w.rawDepth--
		}
		elseTerm = terminates(s.Else)
	} else if stripElse {
		// Fallthrough on the monitor==nil side: the code after the if is
		// reached raw-legally on this path.
		w.stripSourceEnv()
	}
	elseEnv := w.env

	switch {
	case thenTerm && !elseTerm:
		w.env = elseEnv
	case elseTerm && !thenTerm:
		w.env = thenEnv
	default:
		w.env = joinEnv(thenEnv, elseEnv)
	}
}

// rawGuardStrips classifies an if condition against the raw-tier guard
// doctrine. It returns whether the then-branch and the else/fallthrough side
// are the documented raw tier.
func (w *taintWalker) rawGuardStrips(cond ast.Expr) (then, els bool) {
	if w.a.cfg.RawGuard == nil {
		return false, false
	}
	c := ast.Unparen(cond)
	bin, ok := c.(*ast.BinaryExpr)
	if !ok {
		return false, false
	}
	isNilTest := func(x, y ast.Expr) ast.Expr {
		if id, ok := ast.Unparen(y).(*ast.Ident); ok {
			if _, isNil := w.info().Uses[id].(*types.Nil); isNil {
				return x
			}
		}
		return nil
	}
	switch bin.Op {
	case token.EQL:
		for _, pair := range [][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
			if e := isNilTest(pair[0], pair[1]); e != nil && w.a.cfg.RawGuard(w.info(), e) {
				return true, false
			}
		}
	case token.NEQ:
		for _, pair := range [][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
			if e := isNilTest(pair[0], pair[1]); e != nil && w.a.cfg.RawGuard(w.info(), e) {
				return false, true
			}
		}
	case token.LAND:
		// then-branch implies every conjunct: a monitor==nil conjunct makes
		// the then-branch raw. The else side is ambiguous.
		t1, _ := w.rawGuardStrips(bin.X)
		t2, _ := w.rawGuardStrips(bin.Y)
		return t1 || t2, false
	case token.LOR:
		// else-branch negates every disjunct: a monitor!=nil... no — a
		// monitor==nil disjunct means the else side implies monitor!=nil,
		// so nothing is raw there; but a monitor!=nil disjunct makes the
		// else side imply monitor==nil: raw.
		_, e1 := w.rawGuardStrips(bin.X)
		_, e2 := w.rawGuardStrips(bin.Y)
		return false, e1 || e2
	}
	return false, false
}

func (w *taintWalker) walkSwitch(s *ast.SwitchStmt) {
	if s.Init != nil {
		w.walkStmt(s.Init)
	}
	savedPC := w.pc
	if s.Tag != nil {
		w.pc |= w.eval(s.Tag) & SourceBit
	}
	defer func() { w.pc = savedPC }()
	w.walkClauses(s.Body, func(cc *ast.CaseClause) {
		for _, e := range cc.List {
			w.eval(e)
		}
	}, nil)
}

func (w *taintWalker) walkTypeSwitch(s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		w.walkStmt(s.Init)
	}
	var operand Mask
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		if ta, ok := ast.Unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
			operand = w.eval(ta.X)
		}
	case *ast.ExprStmt:
		if ta, ok := ast.Unparen(a.X).(*ast.TypeAssertExpr); ok {
			operand = w.eval(ta.X)
		}
	}
	w.walkClauses(s.Body, nil, func(cc *ast.CaseClause) {
		if obj := w.info().Implicits[cc]; obj != nil {
			w.env[obj] = operand
		}
	})
}

func (w *taintWalker) walkClauses(body *ast.BlockStmt, evalCase func(*ast.CaseClause), enter func(*ast.CaseClause)) {
	base := copyEnv(w.env)
	joined := copyEnv(base) // no-default switches fall through with base env
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		w.env = copyEnv(base)
		if evalCase != nil {
			evalCase(cc)
		}
		if enter != nil {
			enter(cc)
		}
		for _, st := range cc.Body {
			w.walkStmt(st)
		}
		if !terminatesList(cc.Body) {
			joined = joinEnv(joined, w.env)
		}
	}
	w.env = joined
}

func (w *taintWalker) walkSelect(s *ast.SelectStmt) {
	base := copyEnv(w.env)
	joined := copyEnv(base)
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		w.env = copyEnv(base)
		if cc.Comm != nil {
			w.walkStmt(cc.Comm)
		}
		for _, st := range cc.Body {
			w.walkStmt(st)
		}
		if !terminatesList(cc.Body) {
			joined = joinEnv(joined, w.env)
		}
	}
	w.env = joined
}

func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return terminatesList(s.List)
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	case *ast.LabeledStmt:
		return terminates(s.Stmt)
	}
	return false
}

func terminatesList(list []ast.Stmt) bool {
	return len(list) > 0 && terminates(list[len(list)-1])
}

// ---- assignment targets ----

// assignTo propagates mask m into the storage named by e. strong replaces a
// local's mask; everything reached through fields, globals, derefs, indexes
// or channels merges monotonically.
func (w *taintWalker) assignTo(e ast.Expr, m Mask, strong bool) {
	// Implicit flow: a store guarded by an entropy-derived condition carries
	// the condition's taint — but only into scalar targets. Bit-banging
	// reconstructs entropy into integers (words[i] |= 1<<k under "if bit !=
	// 0"); a struct pointer updated under an entropy-dependent health check
	// is bookkeeping, not a copy of the bits.
	if w.pc != 0 {
		if et := w.info().TypeOf(e); et != nil {
			if t, ok := et.Underlying().(*types.Basic); ok && t.Kind() != types.Invalid {
				m |= w.pc
			}
		}
	}
	if w.rawDepth > 0 {
		m &^= SourceBit
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return
		}
		obj := w.info().Defs[e]
		if obj == nil {
			obj = w.info().Uses[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if w.isPackageLevel(v) {
			w.mergeField(v, m)
			return
		}
		if strong {
			w.env[v] = m
		} else {
			w.env[v] |= m
		}
	case *ast.SelectorExpr:
		if sel, ok := w.info().Selections[e]; ok && sel.Kind() == types.FieldVal {
			// Field state is tracked per field object in the package-global
			// map, not through the base value: merging into the base would
			// let a provider's internally-raw state (an engine's shard
			// rings) taint everything reachable from a handle to it.
			if fld, ok := sel.Obj().(*types.Var); ok {
				w.mergeField(fld, m)
			}
			return
		}
		// Qualified package-level var in another package: untracked.
	case *ast.StarExpr:
		w.assignTo(e.X, m, false)
	case *ast.IndexExpr:
		w.assignTo(e.X, m, false)
	case *ast.SliceExpr:
		// x[:] denotes the whole of x, so a strong update through it (a
		// cleanser called as monitor.IngestPacked(buf[:], n)) stays strong.
		// A bounded slice covers only part of x: weak.
		if e.Low == nil && e.High == nil && !e.Slice3 {
			w.assignTo(e.X, m, strong)
		} else {
			w.assignTo(e.X, m, false)
		}
	}
}

func (w *taintWalker) isPackageLevel(v *types.Var) bool {
	return v.Parent() == w.a.pass.Pkg.Scope()
}

func (w *taintWalker) mergeField(v *types.Var, m Mask) {
	// The field map is shared by every function in the package, so only the
	// context-independent SourceBit may live in it: a caller-relative ArgBit
	// merged by one function would read as a different function's argument
	// everywhere else.
	m &= SourceBit
	old := w.a.fields[v]
	if old|m != old {
		w.a.fields[v] = old | m
		w.a.changed = true
	}
}

// ---- expression evaluation ----

func (w *taintWalker) eval(e ast.Expr) Mask {
	m := w.eval0(e)
	if w.rawDepth > 0 {
		m &^= SourceBit
	}
	return m
}

func (w *taintWalker) eval0(e ast.Expr) Mask {
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.ParenExpr:
		return w.eval(e.X)
	case *ast.Ident:
		if v, ok := w.info().Uses[e].(*types.Var); ok {
			if w.isPackageLevel(v) {
				return w.a.fields[v]
			}
			return w.env[v]
		}
		return 0
	case *ast.SelectorExpr:
		if sel, ok := w.info().Selections[e]; ok {
			if sel.Kind() == types.FieldVal {
				m := w.eval(e.X)
				if fld, ok := sel.Obj().(*types.Var); ok {
					m |= w.a.fields[fld]
				}
				return m
			}
			return 0 // method value
		}
		if v, ok := w.info().Uses[e.Sel].(*types.Var); ok {
			return w.a.fields[v] // other package's global: usually untracked
		}
		return 0
	case *ast.StarExpr:
		return w.eval(e.X)
	case *ast.UnaryExpr:
		return w.eval(e.X) // includes & (aliasing) and <- (channel receive)
	case *ast.BinaryExpr:
		return w.eval(e.X) | w.eval(e.Y)
	case *ast.IndexExpr:
		w.eval(e.Index)
		return w.eval(e.X)
	case *ast.IndexListExpr:
		return w.eval(e.X)
	case *ast.SliceExpr:
		w.eval(e.Low)
		w.eval(e.High)
		w.eval(e.Max)
		return w.eval(e.X)
	case *ast.CompositeLit:
		var m Mask
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= w.eval(kv.Value)
			} else {
				m |= w.eval(el)
			}
		}
		return m
	case *ast.TypeAssertExpr:
		return w.eval(e.X)
	case *ast.CallExpr:
		res := w.evalCall(e, 1)
		var m Mask
		for _, r := range res {
			m |= r
		}
		return m
	case *ast.FuncLit:
		return 0 // closure bodies are not summarized; their calls are unknown
	}
	return 0
}

// evalTuple evaluates a multi-value expression to n masks.
func (w *taintWalker) evalTuple(e ast.Expr, n int) []Mask {
	out := make([]Mask, n)
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		res := w.evalCall(e, n)
		copy(out, res)
	case *ast.TypeAssertExpr:
		out[0] = w.eval(e.X) // ok bool stays clean
	case *ast.IndexExpr:
		w.eval(e.Index)
		out[0] = w.eval(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			out[0] = w.eval(e.X)
		}
	}
	if w.rawDepth > 0 {
		for i := range out {
			out[i] &^= SourceBit
		}
	}
	return out
}

// evalCall models one call expression and returns its result masks.
func (w *taintWalker) evalCall(call *ast.CallExpr, nhint int) []Mask {
	info := w.info()
	// Conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []Mask{w.eval(call.Args[0])}
		}
		return []Mask{0}
	}
	// Builtin?
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return w.evalBuiltin(b.Name(), call)
		}
	}

	fn := StaticCallee(info, call)
	argExprs, argMasks := w.canonicalCallArgs(fn, call)
	nres := w.resultCount(call, fn)
	if fn != nil {
		w.a.observeArgs(fn, argMasks)
	}

	if fn != nil && w.a.cfg.Effect != nil {
		if eff, ok := w.a.cfg.Effect(fn); ok {
			return w.applyEffect(call, fn, eff, argExprs, argMasks, nres)
		}
	}
	if fn != nil {
		if sum := w.a.summaryFor(fn); sum != nil {
			return w.applySummary(call, fn, sum, argExprs, argMasks, nres)
		}
	}
	// Unknown callee: results carry the OR of all argument masks, and every
	// pointer-ish argument may have had that mask written through it.
	var all Mask
	for _, m := range argMasks {
		all |= m
	}
	if all != 0 {
		for _, ae := range argExprs {
			if pointerish(info.TypeOf(ae)) {
				w.assignTo(ae, all, false)
			}
		}
	}
	out := make([]Mask, nres)
	for i := range out {
		out[i] = all
	}
	return out
}

func (w *taintWalker) evalBuiltin(name string, call *ast.CallExpr) []Mask {
	switch name {
	case "copy":
		if len(call.Args) == 2 {
			m := w.eval(call.Args[1])
			w.eval(call.Args[0])
			w.assignTo(call.Args[0], m, false)
		}
		return []Mask{0}
	case "append", "min", "max":
		var m Mask
		for _, a := range call.Args {
			m |= w.eval(a)
		}
		return []Mask{m}
	default:
		for _, a := range call.Args {
			w.eval(a)
		}
		return []Mask{0}
	}
}

// canonicalCallArgs returns the canonical argument expressions and masks for
// a call: receiver first for method calls, then the arguments, with extra
// variadic operands folded into the final parameter slot so indices line up
// with the callee summary.
func (w *taintWalker) canonicalCallArgs(fn *types.Func, call *ast.CallExpr) ([]ast.Expr, []Mask) {
	var exprs []ast.Expr
	if fn != nil && fn.Signature().Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isMethodCall := w.info().Selections[sel]; isMethodCall {
				exprs = append(exprs, sel.X)
			}
		}
		if len(exprs) == 0 {
			// Method expression (T.M)(recv, ...): the receiver is args[0],
			// which the generic path below already handles.
			exprs = append(exprs, call.Args...)
			masks := make([]Mask, len(exprs))
			for i, e := range exprs {
				masks[i] = w.eval(e)
			}
			return exprs, masks
		}
	}
	exprs = append(exprs, call.Args...)
	masks := make([]Mask, len(exprs))
	for i, e := range exprs {
		masks[i] = w.eval(e)
	}
	if fn != nil && fn.Signature().Variadic() && call.Ellipsis == token.NoPos {
		want := fn.Signature().Params().Len()
		if fn.Signature().Recv() != nil {
			want++
		}
		if len(masks) > want && want > 0 {
			var folded Mask
			for _, m := range masks[want-1:] {
				folded |= m
			}
			masks = append(masks[:want-1], folded)
			exprs = exprs[:want]
		}
	}
	return exprs, masks
}

func (w *taintWalker) resultCount(call *ast.CallExpr, fn *types.Func) int {
	if fn != nil {
		return fn.Signature().Results().Len()
	}
	if tv, ok := w.info().Types[call]; ok && tv.Type != nil {
		if tup, ok := tv.Type.(*types.Tuple); ok {
			return tup.Len()
		}
		if tv.Type == types.Typ[types.Invalid] || tv.IsVoid() {
			return 0
		}
		return 1
	}
	return 1
}

func (w *taintWalker) applyEffect(call *ast.CallExpr, fn *types.Func, eff CallEffect, argExprs []ast.Expr, argMasks []Mask, nres int) []Mask {
	// Sinks first: Ingest-style cleansers must not hide a tainted argument
	// from a sink check attached to the same callee.
	for _, i := range eff.SinkArgs {
		if i < len(argMasks) {
			w.recordFlow(call, argMasks[i], eff.SinkDesc)
		}
	}
	for _, i := range eff.CleanseArgs {
		if i < len(argExprs) {
			w.assignTo(argExprs[i], 0, true)
			if i < len(argMasks) {
				argMasks[i] = 0
			}
		}
	}
	out := make([]Mask, nres)
	if eff.IsSource {
		results := fn.Signature().Results()
		for j := 0; j < nres && j < results.Len(); j++ {
			if !types.Identical(results.At(j).Type(), errorType) {
				out[j] = SourceBit
			}
		}
		start := 0
		if fn.Signature().Recv() != nil {
			start = 1 // the device/controller itself is not tainted
		}
		for i := start; i < len(argExprs); i++ {
			if strongUpdatable(w.info().TypeOf(argExprs[i])) {
				w.assignTo(argExprs[i], SourceBit, true)
			}
		}
		if w.rawDepth > 0 {
			for j := range out {
				out[j] &^= SourceBit
			}
		}
	}
	return out
}

func (w *taintWalker) applySummary(call *ast.CallExpr, fn *types.Func, sum *FuncSummary, argExprs []ast.Expr, argMasks []Mask, nres int) []Mask {
	translate := func(m Mask) Mask {
		out := m & SourceBit
		for i, am := range argMasks {
			if m&ArgBit(i) != 0 {
				out |= am
			}
		}
		return out
	}
	start := 0
	if fn.Signature().Recv() != nil {
		// Receiver pointee state is tracked by the callee's own package
		// field map; re-applying it here would taint the whole handle.
		start = 1
	}
	for i := start; i < len(argExprs); i++ {
		if i >= len(sum.Args) {
			break
		}
		ae := argExprs[i]
		t := w.info().TypeOf(ae)
		if strongUpdatable(t) {
			w.assignTo(ae, translate(sum.Args[i]), true)
		} else if pointerish(t) {
			w.assignTo(ae, translate(sum.Args[i])&^argMasks[i], false)
		}
	}
	for _, fl := range sum.Flows {
		w.recordFlow(call, translate(fl.Mask), fl.Sink)
	}
	out := make([]Mask, nres)
	for j := 0; j < nres && j < len(sum.Results); j++ {
		out[j] = translate(sum.Results[j])
	}
	if w.rawDepth > 0 {
		for j := range out {
			out[j] &^= SourceBit
		}
	}
	return out
}

// recordFlow handles a sink observation with mask m at a call site: a
// SourceBit is reported here; ArgBits become a latent flow the callers
// re-check with their own argument masks.
func (w *taintWalker) recordFlow(call *ast.CallExpr, m Mask, desc string) {
	if w.rawDepth > 0 {
		m &^= SourceBit
	}
	if m == 0 {
		return
	}
	if lat := m &^ SourceBit; lat != 0 {
		fl := TaintFlow{Mask: lat, Sink: desc}
		if !w.flows[fl] {
			w.flows[fl] = true
			w.sum.Flows = append(w.sum.Flows, fl)
		}
	}
	if m&SourceBit != 0 && w.report && !IsTestFile(w.a.pass.Fset, call.Pos()) {
		w.a.report(call.Pos(), call.End(), "raw device entropy reaches %s without passing health.Monitor", desc)
	}
}
