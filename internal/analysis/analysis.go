// Package analysis is a self-contained, stdlib-only re-implementation of the
// subset of golang.org/x/tools/go/analysis that drange-vet needs: an Analyzer
// runs over one type-checked package at a time and reports position-anchored
// Diagnostics, optionally carrying SuggestedFixes.
//
// The repo deliberately has no third-party dependencies, so the framework,
// the package loader (load.go) and the analysistest harness are built on
// go/ast, go/types, go/importer and the go command alone. The API mirrors
// x/tools closely enough that the analyzers in the subpackages could be
// ported to the real framework by changing imports.
//
// # Annotation grammar
//
// The analyzers are driven by machine-readable comment directives. A
// directive is a single comment line of the form
//
//	//drange:<name> [args...]
//
// The space after // is optional ("// drange:guardedby mu" and
// "//drange:guardedby mu" are equivalent). The directives understood today:
//
//	// drange:guardedby <mu>     on a struct field: the field may only be
//	                             accessed while the mutex named <mu> is held.
//	//drange:holds <mu> [why]    on a function: the function runs with <mu>
//	                             held, or with exclusive access to the value
//	                             (e.g. construction before publication).
//	//drange:noalloc [amortized] on a function: the body must be free of
//	                             allocating constructs (see the noalloc
//	                             analyzer for the exact rules).
//	//drange:entropyflow-exempt <reason>
//	                             anywhere in a file: waives the entropyflow
//	                             analyzer for that file. The reason is
//	                             mandatory.
//	//drange:atomic              on a struct field: the field may be touched
//	                             only through sync/atomic operations (or is a
//	                             sync/atomic typed wrapper used by methods);
//	                             plain loads, stores and address escapes are
//	                             diagnostics (see the atomiccheck analyzer).
//	//drange:seedtaint-exempt <reason>
//	                             on a function: waives the seedtaint analyzer
//	                             for that function, which may then hand raw
//	                             (pre-health-test) device entropy to callers.
//	                             Reserved for the documented-raw ReadRaw tier;
//	                             the reason is mandatory.
//
// # Facts
//
// Analyzers that compose across package boundaries (seedtaint, atomiccheck)
// exchange per-package facts through the Pass's ImportFacts/ExportFacts
// hooks. See facts.go for the store and cmd/drange-vet for how the payloads
// piggyback on the vet driver's .vetx cache.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and command lines.
	Name string
	// Doc is the analyzer's documentation; the first line is a summary.
	Doc string
	// Run applies the analyzer to a single package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with the syntax and types of one package and
// collects the diagnostics it reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ImportFacts returns the serialized facts this analyzer exported when
	// it analyzed the dependency package with the given import path, or nil
	// if none were recorded. Nil when the driver does not thread facts
	// (plain RunPackage); analyzers must then degrade to per-package
	// conservative results.
	ImportFacts func(importPath string) []byte
	// ExportFacts records this package's serialized facts for dependent
	// packages. Nil when the driver does not thread facts.
	ExportFacts func(payload []byte)
	// FactsOnly is true when the driver needs only the exported facts for
	// this package (it is a dependency of the packages under analysis, not
	// itself under analysis). Analyzers should still call ExportFacts but
	// may skip diagnostic reporting.
	FactsOnly bool

	diagnostics []Diagnostic
}

// A Diagnostic is a finding anchored to a source position.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos
	Analyzer       string
	Message        string
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is a named, mechanically applicable set of edits.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source in [Pos, End) with NewText. Pos == End is a
// pure insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a diagnostic at the node's position.
func (p *Pass) Reportf(rng ast.Node, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:     rng.Pos(),
		End:     rng.End(),
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the diagnostics reported so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// IsTestFile reports whether the file containing pos is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// A Directive is one parsed //drange:<name> comment line.
type Directive struct {
	Name string   // e.g. "guardedby", "noalloc"
	Args []string // whitespace-split arguments, possibly empty
	Pos  token.Pos
}

// Directives parses the drange directives in a comment group. A nil group
// yields nil.
func Directives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue // /* */ comments are not directives
		}
		// Accept both "//drange:x" and "// drange:x" (one optional space).
		text = strings.TrimPrefix(text, " ")
		rest, ok := strings.CutPrefix(text, "drange:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 || strings.ContainsAny(fields[0], ": ") {
			continue
		}
		out = append(out, Directive{Name: fields[0], Args: fields[1:], Pos: c.Pos()})
	}
	return out
}

// FuncDirective returns the first directive named name on the function's doc
// comment, or nil.
func FuncDirective(fd *ast.FuncDecl, name string) *Directive {
	for _, d := range Directives(fd.Doc) {
		if d.Name == name {
			return &d
		}
	}
	return nil
}

// FileDirective returns the first directive named name appearing in any
// comment of the file, or nil.
func FileDirective(f *ast.File, name string) *Directive {
	for _, cg := range f.Comments {
		for _, d := range Directives(cg) {
			if d.Name == name {
				return &d
			}
		}
	}
	return nil
}

// PkgPathIs reports whether path is pkg or ends in "/"+pkg. It is how
// analyzers match well-known repo packages so that testdata packages
// (e.g. "repro/internal/memctrl" under testdata/src) match too.
func PkgPathIs(path, pkg string) bool {
	return path == pkg || strings.HasSuffix(path, "/"+pkg)
}

// IsPkgIdent reports whether e is an identifier denoting the imported
// package with the given path (e.g. the "fmt" in fmt.Errorf).
func IsPkgIdent(info *types.Info, e ast.Expr, path string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
