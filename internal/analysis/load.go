package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Dir       string
}

// A Loader resolves and type-checks packages without golang.org/x/tools.
//
// Packages named by Load patterns are parsed and type-checked from source;
// their dependencies are imported from compiler export data located with
// "go list -export". SrcRoots adds GOPATH-style source trees (analysistest's
// testdata/src) that take priority over export data: an import path that
// resolves to a directory under a source root is type-checked from source
// recursively, which is how testdata packages can stand in for real repo
// packages such as repro/internal/device.
type Loader struct {
	Fset     *token.FileSet
	Dir      string   // working directory for go commands ("" = current)
	SrcRoots []string // GOPATH-style roots searched before export data

	mu       sync.Mutex
	exports  map[string]string // import path -> export data file
	gc       types.Importer
	srcPkgs  map[string]*Package // source-checked packages by import path
	srcIssue map[string]error
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string, srcRoots ...string) *Loader {
	l := &Loader{
		Fset:     token.NewFileSet(),
		Dir:      dir,
		SrcRoots: srcRoots,
		exports:  make(map[string]string),
		srcPkgs:  make(map[string]*Package),
		srcIssue: make(map[string]error),
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Deps       []string
	Error      *struct{ Err string }
}

func (l *Loader) goList(args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-export", "-deps", "-json"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// A LoadedPackage is one type-checked package plus its role in the load:
// Root packages matched the patterns; the others are non-stdlib dependencies
// loaded from source so interprocedural analyses can compute facts for them.
type LoadedPackage struct {
	*Package
	Root bool
}

// Load type-checks the packages matching the go list patterns, in a stable
// order. Test files are not part of the loaded syntax (GoFiles excludes
// them); the analyzers additionally skip _test.go files so the same analyzer
// code behaves identically under the unitchecker, where test variants do
// include them.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	all, err := l.LoadAll(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range all {
		if p.Root {
			out = append(out, p.Package)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Types.Path() < out[j].Types.Path() })
	return out, nil
}

// LoadAll type-checks the root packages matching the patterns AND their
// non-stdlib dependencies from source, returned in dependency order: every
// package appears after the packages it imports. Fact-threading drivers
// (Run) analyze the list front to back, computing facts for dependencies
// before the dependents that consume them.
func (l *Loader) LoadAll(patterns ...string) ([]*LoadedPackage, error) {
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var selected []*listPkg
	l.mu.Lock()
	for _, p := range listed {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly || !p.Standard {
			selected = append(selected, p)
		}
	}
	l.mu.Unlock()
	// Deps is the transitive closure, so |Deps| strictly grows along import
	// edges: sorting by it yields a valid dependency order. Import path
	// breaks ties deterministically.
	sort.Slice(selected, func(i, j int) bool {
		if len(selected[i].Deps) != len(selected[j].Deps) {
			return len(selected[i].Deps) < len(selected[j].Deps)
		}
		return selected[i].ImportPath < selected[j].ImportPath
	})

	var out []*LoadedPackage
	for _, p := range selected {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("package %s: cgo packages are not supported", p.ImportPath)
		}
		if p.Name == "" || len(p.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		pkg, err := l.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, &LoadedPackage{Package: pkg, Root: !p.DepOnly})
	}
	return out, nil
}

// SourcePackage returns the already source-checked package for an import
// path, if this loader has one (a pattern target or a source-root import).
// Fact-threading test drivers use it to walk a target's dependency packages.
func (l *Loader) SourcePackage(path string) (*Package, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	pkg, ok := l.srcPkgs[path]
	return pkg, ok
}

// LoadFromSource type-checks the package at the import path relative to the
// loader's source roots (analysistest mode).
func (l *Loader) LoadFromSource(path string) (*Package, error) {
	dir, ok := l.srcRootDir(path)
	if !ok {
		return nil, fmt.Errorf("package %s not found under source roots %v", path, l.SrcRoots)
	}
	return l.checkSourceDir(path, dir)
}

func (l *Loader) srcRootDir(path string) (string, bool) {
	for _, root := range l.SrcRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

func (l *Loader) checkSourceDir(path, dir string) (*Package, error) {
	l.mu.Lock()
	if pkg, ok := l.srcPkgs[path]; ok {
		l.mu.Unlock()
		return pkg, nil
	}
	if err, ok := l.srcIssue[path]; ok {
		l.mu.Unlock()
		return nil, err
	}
	l.mu.Unlock()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	pkg, err := l.check(path, dir, files)
	l.mu.Lock()
	if err != nil {
		l.srcIssue[path] = err
	} else {
		l.srcPkgs[path] = pkg
	}
	l.mu.Unlock()
	return pkg, err
}

// check parses and type-checks one package from source.
func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.Import),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	return &Package{Fset: l.Fset, Syntax: files, Types: tpkg, TypesInfo: info, Dir: dir}, nil
}

// Import implements the types.Importer used while checking from source:
// source roots first, then export data (fetched lazily via go list for
// packages outside the original pattern set, e.g. stdlib imports of
// testdata packages).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.srcRootDir(path); ok {
		pkg, err := l.checkSourceDir(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.Import(path)
}

// lookup feeds the gc export-data importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		listed, err := l.goList(path)
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		for _, p := range listed {
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
		}
		file, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(file)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// CheckFiles type-checks already-parsed files as the package at path using
// the given importer. It is the unitchecker entry point, where the vet .cfg
// supplies both the file list and the export-data locations.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	return &Package{Fset: fset, Syntax: files, Types: tpkg, TypesInfo: info}, nil
}
