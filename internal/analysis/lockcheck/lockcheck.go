// Package lockcheck formalizes the repo's mutex conventions as a static
// check.
//
// A struct field carrying a "// drange:guardedby <mu>" directive may only be
// accessed from a lock-holding context. A context holds the lock when the
// enclosing top-level function
//
//   - has a name ending in "Locked" (the repo convention for "caller holds
//     the lock"),
//   - carries a "//drange:holds <mu>" directive (exclusive access by
//     construction, e.g. before the value is published), or
//   - lexically contains a call to <mu>.Lock() or <mu>.RLock() before the
//     access.
//
// The check is lexical and per-function: it does not track Unlock, so a
// function that unlocks and then touches a guarded field is not caught. It
// is a convention enforcer, not a race detector — the -race suite remains
// the ground truth. Closures inherit the context of the function they are
// defined in, matching how the serving path passes *Locked method values
// into the post-processing chain while holding the lock.
//
// Two companion rules keep the *Locked convention itself sound:
//
//   - a *Locked (or //drange:holds) function must not acquire the mutex it
//     already holds;
//   - any reference to a *Locked function — call or method value — must come
//     from a context that holds a lock.
//
// Test files are exempt: tests freely poke single-threaded state.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "check that // drange:guardedby fields are accessed with the lock held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	guards, muNames := collectGuards(pass)
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards, muNames)
		}
	}
	return nil
}

// collectGuards maps each annotated field object to its mutex name and
// returns the set of mutex names that guard anything in this package.
func collectGuards(pass *analysis.Pass) (map[types.Object]string, map[string]bool) {
	guards := make(map[types.Object]string)
	muNames := make(map[string]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				mu := guardName(fld)
				if mu == "" {
					continue
				}
				for _, name := range fld.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
						muNames[mu] = true
					}
				}
			}
			return true
		})
	}
	return guards, muNames
}

func guardName(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		for _, d := range analysis.Directives(cg) {
			if d.Name == "guardedby" && len(d.Args) >= 1 {
				return d.Args[0]
			}
		}
	}
	return ""
}

// lockAcq records one mu.Lock()/mu.RLock() call.
type lockAcq struct {
	mu   string     // mutex field/variable name
	root *ast.Ident // leftmost identifier of the receiver chain, if any
	pos  token.Pos
	call *ast.CallExpr
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[types.Object]string, muNames map[string]bool) {
	name := fd.Name.Name
	locked := strings.HasSuffix(name, "Locked")
	holds := make(map[string]bool)
	if d := analysis.FuncDirective(fd, "holds"); d != nil && len(d.Args) >= 1 {
		holds[d.Args[0]] = true
	}

	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvObj = pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
	}

	acqs := collectAcquires(fd.Body)
	holder := locked || len(holds) > 0

	// Rule: a lock-holding function must not re-acquire a guarding mutex it
	// already holds (deadlock for sync.Mutex, convention break regardless).
	for _, a := range acqs {
		if !muNames[a.mu] {
			continue
		}
		if holds[a.mu] {
			pass.Reportf(a.call, "%s declares //drange:holds %s but acquires %s", name, a.mu, a.mu)
			continue
		}
		if locked && a.root != nil && recvObj != nil && pass.TypesInfo.Uses[a.root] == recvObj {
			pass.Reportf(a.call, "%s is a *Locked method but acquires %s.%s", name, a.root.Name, a.mu)
		}
	}

	heldAt := func(mu string, pos token.Pos) bool {
		if holder {
			return true
		}
		for _, a := range acqs {
			if a.pos < pos && (mu == "" || a.mu == mu) {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Guarded field access.
			sel := pass.TypesInfo.Selections[n]
			if sel != nil && sel.Kind() == types.FieldVal {
				if mu, ok := guards[sel.Obj()]; ok && !heldAt(mu, n.Pos()) {
					pass.Reportf(n.Sel, "access to %s (guarded by %s) in %s, which does not hold %s: lock %s, rename %s to end in Locked, or annotate it //drange:holds %s",
						sel.Obj().Name(), mu, name, mu, mu, name, mu)
				}
			}
		case *ast.Ident:
			// Reference (call or method value) to a *Locked function.
			fn, ok := pass.TypesInfo.Uses[n].(*types.Func)
			if ok && strings.HasSuffix(fn.Name(), "Locked") && !heldAt("", n.Pos()) {
				pass.Reportf(n, "reference to %s from %s, which holds no lock: *Locked functions may only be used by lock holders or other *Locked functions", fn.Name(), name)
			}
		}
		return true
	})
}

// collectAcquires finds every <chain>.<mu>.Lock() / RLock() call in the
// body, including inside closures (lexical context).
func collectAcquires(body *ast.BlockStmt) []lockAcq {
	var out []lockAcq
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.SelectorExpr: // p.mu.Lock()
			out = append(out, lockAcq{mu: x.Sel.Name, root: rootIdent(x.X), pos: call.Pos(), call: call})
		case *ast.Ident: // mu.Lock() on a local or package-level mutex
			out = append(out, lockAcq{mu: x.Name, pos: call.Pos(), call: call})
		}
		return true
	})
	return out
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
