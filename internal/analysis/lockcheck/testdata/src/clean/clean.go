// Package clean is fully annotated and produces no lockcheck findings.
package clean

import "sync"

type buf struct {
	mu sync.RWMutex
	// drange:guardedby mu
	data []int
	// seq is written only under mu.
	seq int // drange:guardedby mu
}

// newBuf has exclusive access during construction.
//
//drange:holds mu
func newBuf() *buf {
	b := &buf{}
	b.data = []int{1, 2}
	b.seq = 1
	return b
}

func (b *buf) popLocked() int {
	if len(b.data) == 0 {
		return 0
	}
	v := b.data[len(b.data)-1]
	b.data = b.data[:len(b.data)-1]
	b.seq++
	return v
}

// Drain holds the lock and may call *Locked methods, including through a
// closure and a method value, which inherit the held context lexically.
func (b *buf) Drain() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	pop := b.popLocked
	f := func() { n += pop() + b.popLocked() }
	f()
	return n + len(b.data)
}

// Peek uses a read lock.
func (b *buf) Peek() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.data) == 0 {
		return 0
	}
	return b.data[0]
}
