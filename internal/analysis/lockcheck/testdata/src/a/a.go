// Package a seeds lockcheck violations.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // drange:guardedby mu
	ok bool
}

func bad(c *counter) int {
	c.ok = true // unguarded: fine
	return c.n  // want "access to n"
}

func good(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) bumpLocked() { c.n++ }

func (c *counter) badRelockLocked() {
	c.mu.Lock() // want "acquires c.mu"
	c.n++
}

func caller(c *counter) {
	c.bumpLocked() // want "reference to bumpLocked"
}

func okCaller(c *counter) {
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
}

func methodValue(c *counter) func() {
	return c.bumpLocked // want "reference to bumpLocked"
}

// newCounter simulates construction-time exclusive access, then breaks its
// own promise by locking.
//
//drange:holds mu
func newCounter() *counter {
	c := &counter{n: 1} // composite literal: not a field access
	c.n = 2
	c.mu.Lock() // want "declares //drange:holds mu but acquires"
	c.mu.Unlock()
	return c
}
