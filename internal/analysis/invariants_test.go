package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atomiccheck"
	"repro/internal/analysis/deprecations"
	"repro/internal/analysis/entropyflow"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/packedpath"
	"repro/internal/analysis/seedtaint"
)

var repoAnalyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	noalloc.Analyzer,
	entropyflow.Analyzer,
	packedpath.Analyzer,
	deprecations.Analyzer,
	seedtaint.Analyzer,
	atomiccheck.Analyzer,
}

// repoRoot is the module root relative to this package's directory.
const repoRoot = "../.."

// TestRepoIsClean runs every drange-vet analyzer over the whole module and
// fails on any finding. This is the same sweep CI runs through the vet tool;
// having it in the test suite means `go test ./...` alone catches an invariant
// regression.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short mode")
	}
	findings, err := analysis.Run(repoRoot, []string{"./..."}, repoAnalyzers)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// requiredFieldGuards lists guarded-field annotations that must never be
// dropped: each entry pins a (file, field, mutex) triple that the concurrency
// design depends on. If a refactor removes one, this test — and with it CI —
// goes red, rather than lockcheck silently losing its subject.
var requiredFieldGuards = []struct {
	file  string // path relative to the repo root
	field string
	mu    string
}{
	{"drange/serving.go", "reason", "mu"},
	{"drange/serving.go", "cur", "mu"},
	{"drange/serving.go", "curBits", "mu"},
	{"drange/serving.go", "readEpoch", "mu"},
	{"drange/serving.go", "blockCause", "mu"},
	{"drange/serving.go", "drbg", "mu"},
	{"drange/serving.go", "monitor", "mu"},
	{"drange/serving.go", "pendingDRBG", "mu"},
	{"drange/serving.go", "readmissions", "mu"},
	{"drange/serving.go", "recharacterizations", "mu"},
	{"drange/serving.go", "recharFailures", "mu"},
	{"drange/serving.go", "lastRecharMS", "mu"},
	{"drange/serving.go", "recharAttempts", "mu"},
	{"drange/drange.go", "legacy", "mu"},
	{"drange/replay.go", "err", "mu"},
	{"drange/replay.go", "cursor", "mu"},
	{"internal/core/engine.go", "shardErr", "errMu"},
	{"internal/core/engine.go", "delivered", "mu"},
	{"internal/dram/device.go", "banks", "mu"},
	{"internal/dram/device.go", "stats", "mu"},
}

// requiredNoalloc lists the functions the paper's serving path promises are
// allocation-free (or allocation-amortized); dropping the annotation would
// stop noalloc from watching them.
var requiredNoalloc = []struct {
	file string
	fn   string // function or method name
}{
	{"drange/serving.go", "readFast"},
	{"drange/serving.go", "pickMember"},
	{"drange/serving.go", "writeBits"},
	{"drange/serving.go", "drbgReadLocked"},
	{"drange/serving.go", "reseedMemberLocked"},
	{"drange/serving.go", "commitPendingDRBGLocked"},
	{"drange/serving.go", "dropPendingDRBGLocked"},
	{"internal/drbg/chacha.go", "Generate"},
	{"internal/drbg/chacha.go", "chachaBlock"},
	{"internal/core/engine.go", "ReadPacked"},
	{"internal/core/trng.go", "ReadPacked"},
	{"internal/core/bitbuf.go", "PopPacked"},
	{"internal/memctrl/controller.go", "ReadWordInto"},
	{"internal/health/health.go", "IngestPacked"},
	{"internal/postproc/packed.go", "ProcessPacked"},
}

// TestRequiredAnnotationsPresent re-parses the annotated files and asserts the
// inventory above still exists. A dropped annotation is invisible to the
// analyzers themselves (no annotation, nothing to check), so the inventory is
// what makes removal loud.
func TestRequiredAnnotationsPresent(t *testing.T) {
	files := map[string]*ast.File{}
	fset := token.NewFileSet()
	parse := func(rel string) *ast.File {
		if f, ok := files[rel]; ok {
			return f
		}
		f, err := parser.ParseFile(fset, filepath.Join(repoRoot, rel), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", rel, err)
		}
		files[rel] = f
		return f
	}

	for _, want := range requiredFieldGuards {
		f := parse(want.file)
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if name.Name != want.field {
						continue
					}
					for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
						for _, d := range analysis.Directives(cg) {
							if d.Name == "guardedby" && len(d.Args) > 0 && d.Args[0] == want.mu {
								found = true
							}
						}
					}
				}
			}
			return true
		})
		if !found {
			t.Errorf("%s: field %s lost its // drange:guardedby %s annotation", want.file, want.field, want.mu)
		}
	}

	for _, want := range requiredNoalloc {
		f := parse(want.file)
		found := false
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != want.fn {
				continue
			}
			if analysis.FuncDirective(fd, "noalloc") != nil {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: function %s lost its //drange:noalloc annotation", want.file, want.fn)
		}
	}

	// The entropyflow waiver is a privilege: exactly one file (the
	// math/rand adapter) may hold it. A second waiver means someone routed
	// pseudo-randomness near the entropy path and silenced the analyzer
	// instead of fixing it.
	waivers := []string{}
	for _, rel := range []string{"drange/source.go", "drange/drange.go", "drange/pool.go", "drange/serving.go", "drange/replay.go", "drange/health.go"} {
		if analysis.FileDirective(parse(rel), "entropyflow-exempt") != nil {
			waivers = append(waivers, rel)
		}
	}
	if len(waivers) != 1 || waivers[0] != "drange/source.go" {
		t.Errorf("entropyflow-exempt waivers = %v, want exactly [drange/source.go]", waivers)
	}
}

// requiredAtomicFields is the exact module-wide //drange:atomic inventory:
// every lock-free counter and flag the concurrency design depends on.
// TestAtomicInventoryPinned compares as a set, so both a dropped annotation
// and a new one added without updating this table go red — the latter forces
// the author to decide deliberately that the field belongs to the atomic
// discipline.
var requiredAtomicFields = []string{
	"drange/faulty.go:faultyDevice.reads",
	"drange/serving.go:servingMember.state",
	"drange/serving.go:servingMember.fastEng",
	"drange/serving.go:servingMember.fetched",
	"drange/serving.go:servingMember.delivered",
	"drange/serving.go:servingMember.win",
	"drange/serving.go:servingCore.remainder",
	"drange/serving.go:servingCore.tierRawReads",
	"drange/serving.go:servingCore.tierRawBytes",
	"drange/serving.go:servingCore.tierDRBGReads",
	"drange/serving.go:servingCore.tierDRBGBytes",
	"drange/serving.go:servingCore.delivered",
	"drange/serving.go:servingCore.closed",
	"internal/core/engine.go:engineShard.bitsHarvested",
	"internal/core/engine.go:engineShard.simCycles",
	"internal/drbg/ledger.go:Ledger.credited",
	"internal/drbg/ledger.go:Ledger.debited",
}

// requiredSeedtaintWaivers is the exact //drange:seedtaint-exempt inventory:
// only the documented raw tier — the serving core's ReadRaw, shared by
// Generator and Pool — may bypass the health monitor. Any second waiver means
// someone silenced seedtaint instead of routing entropy through
// health.Monitor.
var requiredSeedtaintWaivers = []string{
	"drange/serving.go:ReadRaw",
}

// walkModuleFiles parses every non-test, non-testdata .go file in the module
// and hands it to visit with its repo-relative path.
func walkModuleFiles(t *testing.T, visit func(rel string, f *ast.File)) {
	t.Helper()
	fset := token.NewFileSet()
	err := filepath.WalkDir(repoRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(repoRoot, path)
		if err != nil {
			return err
		}
		visit(filepath.ToSlash(rel), f)
		return nil
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}
}

// TestAtomicInventoryPinned asserts the module-wide set of //drange:atomic
// fields is exactly requiredAtomicFields.
func TestAtomicInventoryPinned(t *testing.T) {
	got := map[string]bool{}
	walkModuleFiles(t, func(rel string, f *ast.File) {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					annotated := false
					for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
						for _, d := range analysis.Directives(cg) {
							if d.Name == "atomic" {
								annotated = true
							}
						}
					}
					if !annotated {
						continue
					}
					for _, name := range fld.Names {
						got[rel+":"+ts.Name.Name+"."+name.Name] = true
					}
				}
			}
		}
	})
	want := map[string]bool{}
	for _, k := range requiredAtomicFields {
		want[k] = true
		if !got[k] {
			t.Errorf("%s lost its // drange:atomic annotation", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected // drange:atomic on %s: add it to requiredAtomicFields if intentional", k)
		}
	}
}

// TestSeedtaintWaiverInventoryPinned asserts the module-wide set of
// //drange:seedtaint-exempt holders is exactly the two documented raw tiers.
func TestSeedtaintWaiverInventoryPinned(t *testing.T) {
	got := map[string]bool{}
	walkModuleFiles(t, func(rel string, f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if analysis.FuncDirective(fd, "seedtaint-exempt") != nil {
				got[rel+":"+fd.Name.Name] = true
			}
		}
	})
	want := map[string]bool{}
	for _, k := range requiredSeedtaintWaivers {
		want[k] = true
		if !got[k] {
			t.Errorf("%s lost its //drange:seedtaint-exempt waiver", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected //drange:seedtaint-exempt on %s: the documented raw tiers are the only sanctioned holders", k)
		}
	}
}
