// Package noalloc structurally pins the serving path's allocation-free
// guarantee: a function annotated //drange:noalloc may not contain
// constructs that allocate on the steady-state path.
//
// Banned in strict mode (//drange:noalloc):
//
//   - make and new
//   - append, unless it reuses a backing array via x[:0]
//   - slice and map composite literals, and &T{...} pointer literals
//   - calls into package fmt
//   - string <-> []byte conversions
//   - function literals (escaping closures) and go statements
//
// The relaxed mode //drange:noalloc amortized additionally permits make,
// growing append, new, slice literals and &T{...} — for functions whose
// output buffer grows to a steady-state capacity and is then reused (the
// PackedCorrectors, bitBuffer.Append). fmt, conversions, closures, map
// literals and go statements stay banned.
//
// Error paths are real code too, so banned constructs are allowed inside an
// if or switch-case body whose final statement is a return, panic, or
// branch: `if err != nil { return fmt.Errorf(...) }` is fine, because a
// diverging guard never executes on the steady-state path the annotation
// protects.
//
// The check is per-function: callees are not inspected, so the annotation
// must be present on every function of the hot path (the inventory test in
// internal/analysis pins the required set).
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "check that //drange:noalloc functions contain no allocating constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			d := analysis.FuncDirective(fd, "noalloc")
			if d == nil {
				continue
			}
			amortized := len(d.Args) >= 1 && d.Args[0] == "amortized"
			if len(d.Args) >= 1 && d.Args[0] != "amortized" {
				pass.Reportf(fd.Name, "unknown //drange:noalloc mode %q (only \"amortized\" is recognized)", d.Args[0])
			}
			checkFunc(pass, fd, amortized)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, amortized bool) {
	name := fd.Name.Name
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ban := func(format string, args ...any) {
			if !inDivergingGuard(stack) {
				pass.Reportf(n, "//drange:noalloc function %s: "+format, append([]any{name}, args...)...)
			}
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(pass, n.Fun, "make"):
				if !amortized {
					ban("make allocates")
				}
			case isBuiltin(pass, n.Fun, "new"):
				if !amortized {
					ban("new allocates")
				}
			case isBuiltin(pass, n.Fun, "append"):
				if !amortized && !isReslice0(n.Args[0]) {
					ban("append may grow the backing array (reuse via x[:0], or use //drange:noalloc amortized)")
				}
			case isFmtCall(pass, n.Fun):
				ban("call into package fmt allocates")
			case isStringBytesConversion(pass, n):
				ban("string <-> []byte conversion allocates")
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Map:
				ban("map literal allocates")
			case *types.Slice:
				if !amortized {
					ban("slice literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND && !amortized {
				ban("&composite literal escapes to the heap")
			}
		case *ast.FuncLit:
			ban("function literal may escape (closure allocation)")
		case *ast.GoStmt:
			ban("go statement allocates a goroutine")
		}
		stack = append(stack, n)
		return true
	})
}

// inDivergingGuard reports whether the innermost statement context is an if
// or case body that ends by diverging (return/panic/branch), i.e. off the
// steady-state path.
func inDivergingGuard(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.BlockStmt:
			if i > 0 {
				if _, ok := stack[i-1].(*ast.IfStmt); ok && diverges(lastStmt(n.List)) {
					return true
				}
			}
		case *ast.CaseClause:
			if diverges(lastStmt(n.Body)) {
				return true
			}
		case *ast.CommClause:
			if diverges(lastStmt(n.Body)) {
				return true
			}
		case *ast.FuncLit:
			return false // a closure body is its own steady-state path
		}
	}
	return false
}

func lastStmt(list []ast.Stmt) ast.Stmt {
	if len(list) == 0 {
		return nil
	}
	return list[len(list)-1]
}

func diverges(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isFmtCall(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	return ok && analysis.IsPkgIdent(pass.TypesInfo, sel.X, "fmt")
}

// isStringBytesConversion reports whether call is a conversion between
// string and []byte (in either direction).
func isStringBytesConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	to := tv.Type.Underlying()
	argT := pass.TypesInfo.TypeOf(call.Args[0])
	if argT == nil {
		return false
	}
	from := argT.Underlying()
	return (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && e.Kind() == types.Byte
}

// isReslice0 reports whether e is x[:0] — the append-for-compaction idiom
// (append(b.words[:0], b.words[w:]...)) that reuses the backing array.
func isReslice0(e ast.Expr) bool {
	se, ok := e.(*ast.SliceExpr)
	if !ok || se.High == nil {
		return false
	}
	lit, ok := se.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}
