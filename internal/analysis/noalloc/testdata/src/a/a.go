// Package a seeds noalloc violations alongside permitted idioms.
package a

import "fmt"

//drange:noalloc
func bad(dst []byte, s string) int {
	m := make([]byte, 8) // want "make allocates"
	_ = m
	dst = append(dst, 1) // want "append may grow"
	b := []byte(s)       // want "conversion allocates"
	_ = b
	fmt.Println(s)    // want "fmt allocates"
	_ = []int{1, 2}   // want "slice literal allocates"
	p := &point{x: 1} // want "escapes to the heap"
	_ = p
	f := func() int { return 1 } // want "function literal may escape"
	go f()                       // want "go statement"
	return f()
}

type point struct{ x int }

//drange:noalloc
func guarded(err error, n int) error {
	if err != nil {
		return fmt.Errorf("drange: read failed after %d bits: %w", n, err)
	}
	switch {
	case n < 0:
		panic(fmt.Sprintf("negative count %d", n))
	}
	return nil
}

//drange:noalloc
func compact(buf []int, keep int) []int {
	return append(buf[:0], buf[keep:]...)
}

//drange:noalloc amortized
func amortized(out []byte, v byte) []byte {
	out = append(out, v)
	tmp := make([]byte, 4)
	_ = tmp
	_ = map[string]int{"k": 1} // want "map literal allocates"
	_ = fmt.Sprint(v)          // want "fmt allocates"
	return out
}

//drange:noalloc bogus
func badMode() {} // want "unknown //drange:noalloc mode"
