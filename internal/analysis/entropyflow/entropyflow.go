// Package entropyflow enforces the repo's entropy-custody invariant: no
// path from raw DRAM bits to an exported Read may bypass the memory
// controller (and therefore the health monitor that the serving core drives
// on everything the controller returns).
//
// Two rules:
//
//  1. The entropy-bearing device methods — ReadWord, ReadWordInto and
//     Activate as provided by repro/internal/device and repro/internal/dram —
//     may only be referenced from the packages that implement or drive the
//     device (internal/memctrl, internal/profiler, internal/dram,
//     internal/device) and from the drange backend adapter files
//     (backend.go, replay.go, faulty.go), which wrap devices rather than
//     harvest from them. Setup-time geometry reads (ReadRowRaw, StartupRow)
//     are deliberately not banned: they feed characterization, not the
//     serving stream.
//
//  2. math/rand and math/rand/v2 are banned from non-test serving code
//     (package drange and everything under internal/): pseudo-randomness
//     must never be able to stand in for harvested entropy. A file that
//     legitimately touches math/rand — e.g. the adapter exposing a Source
//     as a rand.Source, where entropy flows TO math/rand, not from it —
//     declares why with "//drange:entropyflow-exempt <reason>".
//
// Test files are exempt from both rules.
package entropyflow

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "entropyflow",
	Doc:  "check that raw device entropy reads stay inside the controller layer and math/rand stays out of serving code",
	Run:  run,
}

var bannedMethods = map[string]bool{
	"ReadWord":     true,
	"ReadWordInto": true,
	"Activate":     true,
}

// providerPkgs are the packages whose methods carry raw entropy.
var providerPkgs = []string{"internal/device", "internal/dram"}

// allowedPkgs may touch raw device methods: the device implementations and
// the two layers that legitimately drive them.
var allowedPkgs = []string{"internal/device", "internal/dram", "internal/memctrl", "internal/profiler"}

// allowedDrangeFiles are the backend adapter files in package drange.
var allowedDrangeFiles = map[string]bool{"backend.go": true, "replay.go": true, "faulty.go": true}

func run(pass *analysis.Pass) error {
	pkgPath := pass.Pkg.Path()
	pkgAllowed := false
	for _, p := range allowedPkgs {
		if analysis.PkgPathIs(pkgPath, p) {
			pkgAllowed = true
		}
	}
	serving := strings.Contains(pkgPath, "internal/") || analysis.PkgPathIs(pkgPath, "drange")

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		exempt := analysis.FileDirective(f, "entropyflow-exempt")
		if exempt != nil && len(exempt.Args) == 0 {
			pass.Reportf(f.Name, "//drange:entropyflow-exempt requires a reason")
		}
		if exempt != nil {
			continue
		}
		base := filepath.Base(pass.Fset.File(f.Pos()).Name())
		fileAllowed := pkgAllowed || (pass.Pkg.Name() == "drange" && allowedDrangeFiles[base])
		if !fileAllowed {
			checkRawReads(pass, f)
		}
		if serving {
			checkMathRand(pass, f)
		}
	}
	return nil
}

func checkRawReads(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !bannedMethods[fn.Name()] || fn.Pkg() == nil {
			return true
		}
		for _, p := range providerPkgs {
			if analysis.PkgPathIs(fn.Pkg().Path(), p) {
				pass.Reportf(sel.Sel, "raw device read %s.%s outside the controller layer: entropy must flow through memctrl.Controller so the health monitor sees every bit", fn.Pkg().Name(), fn.Name())
				return true
			}
		}
		return true
	})
}

func checkMathRand(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp, "import of %s in serving code: pseudo-randomness must not reach the entropy path (waive with //drange:entropyflow-exempt <reason> if entropy only flows out)", path)
		}
	}
}
