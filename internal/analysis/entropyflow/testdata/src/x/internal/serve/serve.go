// Package serve is serving code (under internal/): math/rand is banned.
package serve

import "math/rand/v2" // want "import of math/rand/v2 in serving code"

func Sample() float64 { return rand.Float64() }
