// Package serve: this file adapts entropy OUT to math/rand consumers.
//
//drange:entropyflow-exempt entropy flows to math/rand, never from it
package serve

import "math/rand/v2"

// NewPCG seeds a rand generator from harvested entropy.
func NewPCG(seed1, seed2 uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed1, seed2))
}
