// Package drange stands in for the facade; backend.go is an allowlisted
// adapter file.
package drange

import "repro/internal/device"

type wrapped struct{ inner device.Device }

func (w wrapped) ReadWord(bank, wordIdx int) ([]uint64, error) {
	return w.inner.ReadWord(bank, wordIdx) // adapter file: allowed
}
