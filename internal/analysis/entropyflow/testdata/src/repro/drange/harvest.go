package drange

import "repro/internal/device"

func sneak(dev device.Device) ([]uint64, error) {
	return dev.ReadWord(0, 0) // want "raw device read device.ReadWord"
}
