// Package device is a stand-in for the real repro/internal/device contract;
// entropyflow keys on the package path suffix, so this fake exercises the
// same matching.
package device

// Device mirrors the entropy-bearing subset of the real device contract.
type Device interface {
	Activate(bank, row int, trcdNS float64) error
	ReadWord(bank, wordIdx int) ([]uint64, error)
	ReadRowRaw(bank, row int) ([]uint64, error)
	StartupRow(bank, row int) ([]uint64, error)
}

// WordReaderInto is the allocation-free read capability.
type WordReaderInto interface {
	ReadWordInto(bank, wordIdx int, dst []uint64) error
}
