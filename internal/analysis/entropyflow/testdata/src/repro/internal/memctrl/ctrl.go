// Package memctrl stands in for the real controller: raw device reads are
// legal here.
package memctrl

import "repro/internal/device"

func Read(dev device.Device) ([]uint64, error) {
	if err := dev.Activate(0, 1, 6.0); err != nil {
		return nil, err
	}
	return dev.ReadWord(0, 0)
}
