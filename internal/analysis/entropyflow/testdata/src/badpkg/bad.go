// Package badpkg reads raw device entropy from outside the controller layer.
package badpkg

import "repro/internal/device"

func Harvest(dev device.Device) ([]uint64, error) {
	if err := dev.Activate(0, 1, 6.0); err != nil { // want "raw device read device.Activate"
		return nil, err
	}
	return dev.ReadWord(0, 0) // want "raw device read device.ReadWord"
}

func Setup(dev device.Device) ([]uint64, error) {
	return dev.ReadRowRaw(0, 1) // setup-time read: not banned
}

func Grab(dev device.WordReaderInto, dst []uint64) error {
	return dev.ReadWordInto(0, 0, dst) // want "raw device read device.ReadWordInto"
}
