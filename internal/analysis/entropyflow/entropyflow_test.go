package entropyflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/entropyflow"
)

func TestEntropyflow(t *testing.T) {
	analysistest.Run(t, "testdata", entropyflow.Analyzer,
		"badpkg",
		"repro/internal/memctrl",
		"repro/drange",
		"x/internal/serve",
	)
}
