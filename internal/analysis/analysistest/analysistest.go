// Package analysistest runs analyzers over golden packages under a
// testdata/src tree and checks their diagnostics against expectations
// embedded in the sources, mirroring golang.org/x/tools/go/analysis/analysistest
// on the standard library alone.
//
// An expectation is a trailing comment of the form
//
//	// want "regexp" "another regexp"
//
// Each diagnostic reported on that line must match one (still unmatched)
// regexp, and every regexp must be matched by exactly one diagnostic.
// Diagnostics on lines without a matching expectation, and expectations left
// unmatched, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each package path from dir (a testdata directory containing a
// src/ tree), applies the analyzer, and checks the findings against the
// // want comments in the package's files.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewLoader("", dir+"/src")
	for _, path := range pkgPaths {
		pkg, err := loader.LoadFromSource(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		// Thread facts exactly as the real drivers do: every source-root
		// dependency is analyzed facts-only, in dependency order, before the
		// target — cross-package expectations (taint propagated through an
		// imported helper, an annotated field of an imported struct) need the
		// dependency's facts in place.
		facts := make(analysis.FactBase)
		for _, dep := range sourceDeps(loader, pkg) {
			if _, err := analysis.RunPackageFacts(dep, []*analysis.Analyzer{a}, facts, true); err != nil {
				t.Errorf("computing %s facts for %s: %v", a.Name, dep.Types.Path(), err)
			}
		}
		findings, err := analysis.RunPackageFacts(pkg, []*analysis.Analyzer{a}, facts, false)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkExpectations(t, pkg, findings)
	}
}

// sourceDeps returns the target's transitive source-checked dependencies in
// dependency order (imports before importers), target excluded.
func sourceDeps(loader *analysis.Loader, pkg *analysis.Package) []*analysis.Package {
	var out []*analysis.Package
	seen := map[string]bool{pkg.Types.Path(): true}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if seen[p.Path()] {
			return
		}
		seen[p.Path()] = true
		for _, imp := range p.Imports() {
			visit(imp)
		}
		if sp, ok := loader.SourcePackage(p.Path()); ok {
			out = append(out, sp)
		}
	}
	for _, imp := range pkg.Types.Imports() {
		visit(imp)
	}
	return out
}

func checkExpectations(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	expects := collectExpectations(t, pkg.Fset, pkg.Syntax)
	for _, f := range findings {
		matched := false
		for _, e := range expects {
			if e.matched || e.file != f.Position.Filename || e.line != f.Position.Line {
				continue
			}
			if e.re.MatchString(f.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Position, f.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
		}
	}
}

func collectExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWant(m[1])
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				for _, r := range res {
					re, err := regexp.Compile(r)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, r, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: r})
				}
			}
		}
	}
	return out
}

// parseWant splits a want payload like `"a b" "c"` into its quoted strings.
func parseWant(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted regexp, got %q", s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated regexp in %q", s)
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", s[:end+1], err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no regexps")
	}
	return out, nil
}
