package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is a Diagnostic resolved to a printable position.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
	Diag     Diagnostic
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// RunPackage applies the analyzers to one loaded package and returns the
// findings, sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Types.Path(), err)
		}
		for _, d := range pass.Diagnostics() {
			out = append(out, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
				Diag:     d,
			})
		}
	}
	sortFindings(out)
	return out, nil
}

// Run loads the packages matching the patterns (relative to dir) and applies
// every analyzer to each, returning all findings sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	l := NewLoader(dir)
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
