package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is a Diagnostic resolved to a printable position.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
	Diag     Diagnostic
	// Fixes are the diagnostic's suggested fixes resolved to file/offset
	// edits, ready for drange-vet's -fix flag to apply.
	Fixes []ResolvedFix
}

// A ResolvedFix is a SuggestedFix with its edits resolved against the file
// set that produced the diagnostic, so it survives past the loader.
type ResolvedFix struct {
	Message string
	Edits   []ResolvedEdit
}

// A ResolvedEdit replaces bytes [Start, End) of Filename with NewText.
type ResolvedEdit struct {
	Filename   string
	Start, End int
	NewText    []byte
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

func resolveFixes(fset *token.FileSet, d Diagnostic) []ResolvedFix {
	var out []ResolvedFix
	for _, fix := range d.SuggestedFixes {
		rf := ResolvedFix{Message: fix.Message}
		ok := true
		for _, e := range fix.TextEdits {
			start := fset.Position(e.Pos)
			end := fset.Position(e.End)
			if !start.IsValid() || !end.IsValid() || start.Filename != end.Filename {
				ok = false
				break
			}
			rf.Edits = append(rf.Edits, ResolvedEdit{
				Filename: start.Filename,
				Start:    start.Offset,
				End:      end.Offset,
				NewText:  e.NewText,
			})
		}
		if ok && len(rf.Edits) > 0 {
			out = append(out, rf)
		}
	}
	return out
}

// RunPackage applies the analyzers to one loaded package and returns the
// findings, sorted by position. No facts are threaded: interprocedural
// analyzers degrade to per-package results. Use Run (or RunPackageFacts) for
// cross-package precision.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunPackageFacts(pkg, analyzers, nil, false)
}

// RunPackageFacts applies the analyzers to one loaded package with facts
// threaded through the given FactBase: each analyzer reads the facts its
// earlier runs recorded for the package's dependencies and records this
// package's facts for dependents. With factsOnly set, diagnostics are not
// wanted (the package is a dependency, not under analysis); facts are still
// recorded.
func RunPackageFacts(pkg *Package, analyzers []*Analyzer, facts FactBase, factsOnly bool) ([]Finding, error) {
	var out []Finding
	path := pkg.Types.Path()
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			FactsOnly: factsOnly,
		}
		if facts != nil {
			name := a.Name
			pass.ImportFacts = func(importPath string) []byte { return facts.Get(importPath, name) }
			pass.ExportFacts = func(payload []byte) { facts.Set(path, name, payload) }
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, path, err)
		}
		if factsOnly {
			continue
		}
		for _, d := range pass.Diagnostics() {
			out = append(out, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
				Diag:     d,
				Fixes:    resolveFixes(pkg.Fset, d),
			})
		}
	}
	sortFindings(out)
	return out, nil
}

// Run loads the packages matching the patterns (relative to dir) and applies
// every analyzer to each, returning all findings sorted by position. The
// packages' non-stdlib dependencies are analyzed first in dependency order,
// facts only, so interprocedural analyzers see cross-package summaries just
// as they do under the vet driver.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	l := NewLoader(dir)
	pkgs, err := l.LoadAll(patterns...)
	if err != nil {
		return nil, err
	}
	facts := make(FactBase)
	var out []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackageFacts(pkg.Package, analyzers, facts, !pkg.Root)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
