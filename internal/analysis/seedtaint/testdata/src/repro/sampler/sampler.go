// Package sampler is the middle tier of the cross-package propagation test:
// it is not a source package itself, but its Harvest helper fills the
// caller's buffer from device reads. Its exported facts are what let the
// drange testdata package see the taint.
package sampler

import "repro/internal/device"

// Harvest fills dst with raw device entropy.
func Harvest(d *device.Device, dst []byte) error {
	words := make([]uint64, (len(dst)+7)/8)
	if _, err := d.ReadWordInto(0, 0, words); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = byte(words[i/8] >> uint(8*(i%8)))
	}
	return nil
}
