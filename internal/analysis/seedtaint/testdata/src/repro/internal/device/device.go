// Package device is the testdata stand-in for repro/internal/device: its
// read methods are seedtaint sources by name and package suffix.
package device

type Device struct{ state uint64 }

func (d *Device) ReadWord(bank, wordIdx int) ([]uint64, error) {
	return []uint64{d.state}, nil
}

func (d *Device) ReadWordInto(bank, wordIdx int, dst []uint64) (int, error) {
	for i := range dst {
		dst[i] = d.state
	}
	return len(dst), nil
}
