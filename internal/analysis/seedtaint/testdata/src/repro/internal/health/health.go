// Package health is the testdata stand-in for repro/internal/health:
// Monitor ingestion is the seedtaint cleanser.
package health

type Violation struct{ Detail string }

type Monitor struct{ bits int }

func (m *Monitor) Ingest(bits []byte, n int) *Violation {
	m.bits += n
	return nil
}

func (m *Monitor) IngestPacked(p []byte, n int) *Violation {
	m.bits += n
	return nil
}
