// Package postproc is the testdata stand-in for repro/internal/postproc:
// its chain inputs are seedtaint sinks outside health and postproc itself.
package postproc

func Process(in []byte) []byte { return in }

func PackBits(bits []byte) []byte { return bits }
