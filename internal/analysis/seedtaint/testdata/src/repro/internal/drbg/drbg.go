// Package drbg is the testdata stand-in for repro/internal/drbg: its
// constructors, Reseed and Generate are seedtaint sinks.
package drbg

type Options struct{}

type DRBG struct{ key []byte }

func NewChaCha(seed, personalization []byte, opts Options) (*DRBG, error) {
	return &DRBG{key: append([]byte(nil), seed...)}, nil
}

func NewCTR(seed, personalization []byte, opts Options) (*DRBG, error) {
	return &DRBG{key: append([]byte(nil), seed...)}, nil
}

func (d *DRBG) Reseed(entropy, additional []byte) error { return nil }

func (d *DRBG) Generate(out, additional []byte) error { return nil }
