// Package drange is the seedtaint target package: its exported
// Read/ReadBits/ReadRaw/Uint64 methods are exit sinks, and the testdata
// cases below cover taint propagated cross-package through repro/sampler,
// cleansing by health.Monitor, the raw-tier guard, the waiver grammar, and
// the DRBG and post-processing sinks.
package drange

import (
	"errors"

	"repro/internal/device"
	"repro/internal/drbg"
	"repro/internal/health"
	"repro/internal/postproc"
	"repro/sampler"
)

// Leaky delivers raw entropy from its exported reader: the cross-package
// taint (device read inside sampler.Harvest) must reach the exit sink.
type Leaky struct {
	dev *device.Device
}

func (s *Leaky) Read(p []byte) (int, error) {
	if err := sampler.Harvest(s.dev, p); err != nil {
		return 0, err
	}
	return len(p), nil // want "Leaky\\.Read writes raw device entropy that has not passed health\\.Monitor into p"
}

// WordSource returns raw entropy by value rather than through a buffer.
type WordSource struct {
	dev *device.Device
}

func (w *WordSource) Uint64() (uint64, error) {
	words, err := w.dev.ReadWord(0, 0)
	if err != nil {
		return 0, err
	}
	return words[0], nil // want "WordSource\\.Uint64 returns raw device entropy that has not passed health\\.Monitor"
}

// Clean streams the harvest through the monitor before delivering: no
// diagnostic.
type Clean struct {
	dev *device.Device
	mon *health.Monitor
}

func (s *Clean) ReadBits(n int) ([]byte, error) {
	out := make([]byte, n)
	if err := sampler.Harvest(s.dev, out); err != nil {
		return nil, err
	}
	if v := s.mon.IngestPacked(out, n*8); v != nil {
		return nil, errors.New(v.Detail)
	}
	return out, nil
}

// Guarded serves raw only on the documented monitor==nil tier: no
// diagnostic on either path.
type Guarded struct {
	dev *device.Device
	mon *health.Monitor
}

func (g *Guarded) Read(p []byte) (int, error) {
	if g.mon == nil {
		if err := sampler.Harvest(g.dev, p); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	if err := sampler.Harvest(g.dev, p); err != nil {
		return 0, err
	}
	if v := g.mon.IngestPacked(p, len(p)*8); v != nil {
		return 0, errors.New(v.Detail)
	}
	return len(p), nil
}

// Raw holds the sanctioned waiver: the documented raw tier is exempt.
type Raw struct {
	dev *device.Device
}

//drange:seedtaint-exempt documented raw tier
func (r *Raw) ReadRaw(p []byte) (int, error) {
	if err := sampler.Harvest(r.dev, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// BadWaiver holds a waiver that breaks both grammar rules: no reason, and
// the function is not ReadRaw.
type BadWaiver struct {
	dev *device.Device
}

//drange:seedtaint-exempt
func (b *BadWaiver) Uint64() (uint64, error) { // want "requires a reason" "may only waive ReadRaw"
	words, err := b.dev.ReadWord(0, 0)
	if err != nil {
		return 0, err
	}
	return words[0], nil
}

// Old is the deprecated legacy facade: its exit sinks are not checked.
//
// Deprecated: use Leaky's replacement.
type Old struct {
	dev *device.Device
}

func (o *Old) Read(p []byte) (int, error) {
	if err := sampler.Harvest(o.dev, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// SeedDRBG feeds a raw harvest straight into a DRBG instantiation.
func SeedDRBG(d *device.Device) (*drbg.DRBG, error) {
	buf := make([]byte, 48)
	if err := sampler.Harvest(d, buf); err != nil {
		return nil, err
	}
	return drbg.NewChaCha(buf, nil, drbg.Options{}) // want "raw device entropy reaches the DRBG instantiation seed without passing health\\.Monitor"
}

// ReseedDRBG feeds a raw harvest into a reseed.
func ReseedDRBG(d *device.Device, g *drbg.DRBG) error {
	buf := make([]byte, 48)
	if err := sampler.Harvest(d, buf); err != nil {
		return err
	}
	return g.Reseed(buf, nil) // want "raw device entropy reaches DRBG reseed material without passing health\\.Monitor"
}

// Whiten feeds a raw harvest into the post-processing chain.
func Whiten(d *device.Device) ([]byte, error) {
	buf := make([]byte, 32)
	if err := sampler.Harvest(d, buf); err != nil {
		return nil, err
	}
	return postproc.Process(buf), nil // want "raw device entropy reaches the post-processing chain input without passing health\\.Monitor"
}

// ScreenedSeed is the clean counterpart of SeedDRBG: monitored entropy may
// instantiate a DRBG.
func ScreenedSeed(d *device.Device, m *health.Monitor) (*drbg.DRBG, error) {
	buf := make([]byte, 48)
	if err := sampler.Harvest(d, buf); err != nil {
		return nil, err
	}
	if v := m.IngestPacked(buf, len(buf)*8); v != nil {
		return nil, errors.New(v.Detail)
	}
	return drbg.NewChaCha(buf, nil, drbg.Options{})
}
