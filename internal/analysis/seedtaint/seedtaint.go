// Package seedtaint implements the drange-vet analyzer that proves the
// paper's two-tier entropy invariant interprocedurally: no raw DRAM read may
// reach a DRBG seed, a post-processing chain input, or a caller-visible
// Source.Read/ReadBits/Uint64 result without first streaming through
// health.Monitor.
//
// The analyzer instantiates the shared taint engine (internal/analysis,
// taint.go) with the repo's policy:
//
//   - Sources: Device/Controller read methods — ReadWord, ReadWordInto,
//     ReadRowRaw, StartupRow — in internal/device, internal/dram and
//     internal/memctrl. Their results and output buffers carry taint.
//   - Cleanser: health.Monitor.Ingest and IngestPacked. Ingestion is the
//     only operation that clears taint; the monitored buffer is strongly
//     cleansed.
//   - Sinks: drbg.DRBG.Reseed entropy, Generate additional input, the
//     NewCTR/NewChaCha instantiation seed, and the post-processing chain
//     inputs (postproc Process/ProcessPacked/PackBits) — plus the success
//     exits of Source.Read/ReadBits/Uint64 implementations in the drange
//     package.
//   - Raw tier: branches taken only when no monitor is configured
//     (`m.monitor == nil` guards) are the documented raw tier and do not
//     taint.
//
// Per-function summaries are exported as facts, so taint introduced in
// internal/memctrl is still visible when the drange package is analyzed —
// deleting the IngestPacked call from a DRBG reseed path is reported even
// though the raw read happens two packages away.
//
// # Waiver
//
// A function may carry
//
//	//drange:seedtaint-exempt <reason>
//
// to opt out: the documented-raw ReadRaw tier is the only sanctioned holder.
// The directive requires a reason, and the analyzer rejects it on any
// function not named ReadRaw. internal/analysis/invariants_test.go
// additionally pins the exact waiver inventory.
package seedtaint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the seedtaint analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "seedtaint",
	Doc:  "report raw device entropy reaching DRBG seeds, postprocess inputs or Source results without health.Monitor ingestion",
	Run:  run,
}

// sourceMethods are the provider-layer reads whose outputs are raw entropy.
var sourceMethods = map[string]bool{
	"ReadWord":     true,
	"ReadWordInto": true,
	"ReadRowRaw":   true,
	"StartupRow":   true,
}

var sourcePkgs = []string{"internal/device", "internal/dram", "internal/memctrl"}

// exitSinkMethods are the Source interface methods whose results must be
// monitored entropy. ReadRaw is in the set even though it is the documented
// raw tier: its implementations carry the //drange:seedtaint-exempt waiver,
// so deleting the waiver (or adding an unsanctioned raw delivery path) is a
// diagnostic rather than silence.
var exitSinkMethods = map[string]bool{
	"Read":     true,
	"ReadBits": true,
	"ReadRaw":  true,
	"Uint64":   true,
}

func pkgIs(fn *types.Func, suffixes ...string) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	for _, s := range suffixes {
		if analysis.PkgPathIs(pkg.Path(), s) {
			return true
		}
	}
	return false
}

func recvTypeName(fn *types.Func) string {
	r := fn.Signature().Recv()
	if r == nil {
		return ""
	}
	t := r.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// paramSinks returns the canonical indices of every parameter (receiver
// excluded) of fn — used for sinks that reject taint in any argument.
func paramSinks(fn *types.Func) []int {
	n := fn.Signature().Params().Len()
	off := 0
	if fn.Signature().Recv() != nil {
		off = 1
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i + off
	}
	return out
}

func run(pass *analysis.Pass) error {
	inHealth := analysis.PkgPathIs(pass.Pkg.Path(), "internal/health")
	inPostproc := analysis.PkgPathIs(pass.Pkg.Path(), "internal/postproc")

	// Pre-scan waivers: collect them, and police the grammar — a reason is
	// mandatory, and only the documented-raw ReadRaw tier may hold one.
	waived := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			d := analysis.FuncDirective(fd, "seedtaint-exempt")
			if d == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				waived[fn] = true
			}
			if analysis.IsTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			if len(d.Args) == 0 {
				pass.Report(analysis.Diagnostic{
					Pos: fd.Name.Pos(), End: fd.Name.End(),
					Message: "//drange:seedtaint-exempt requires a reason",
				})
			}
			if fd.Name.Name != "ReadRaw" {
				pass.Report(analysis.Diagnostic{
					Pos: fd.Name.Pos(), End: fd.Name.End(),
					Message: "//drange:seedtaint-exempt may only waive ReadRaw (the documented raw tier); fix the flow instead",
				})
			}
		}
	}

	deprecated := deprecatedReceivers(pass)

	cfg := &analysis.TaintConfig{
		Effect: func(fn *types.Func) (analysis.CallEffect, bool) {
			name := fn.Name()
			switch {
			case sourceMethods[name] && pkgIs(fn, sourcePkgs...):
				return analysis.CallEffect{IsSource: true}, true
			case (name == "Ingest" || name == "IngestPacked") &&
				pkgIs(fn, "internal/health") && recvTypeName(fn) == "Monitor":
				return analysis.CallEffect{CleanseArgs: []int{1}, CleanResults: true}, true
			case name == "Reseed" && pkgIs(fn, "internal/drbg") && fn.Signature().Recv() != nil:
				return analysis.CallEffect{
					SinkArgs: []int{1, 2},
					SinkDesc: "DRBG reseed material",
				}, true
			case name == "Generate" && pkgIs(fn, "internal/drbg") && fn.Signature().Recv() != nil:
				return analysis.CallEffect{
					CleanseArgs:  []int{1}, // the output buffer is DRBG output
					SinkArgs:     []int{2},
					SinkDesc:     "DRBG additional input",
					CleanResults: true,
				}, true
			case (name == "NewCTR" || name == "NewChaCha") && pkgIs(fn, "internal/drbg"):
				return analysis.CallEffect{
					SinkArgs:     []int{0, 1},
					SinkDesc:     "the DRBG instantiation seed",
					CleanResults: true,
				}, true
			case (name == "Process" || name == "ProcessPacked" || name == "PackBits") &&
				pkgIs(fn, "internal/postproc") && !inHealth && !inPostproc:
				// The health monitor itself packages raw bits for its tests,
				// and postproc's own internals shuffle Packed values freely;
				// everywhere else the chain input must be monitored.
				return analysis.CallEffect{
					SinkArgs: paramSinks(fn),
					SinkDesc: "the post-processing chain input",
				}, true
			}
			return analysis.CallEffect{}, false
		},
		ExitSink: func(fn *types.Func, decl *ast.FuncDecl) string {
			if !exitSinkMethods[fn.Name()] || !fn.Exported() {
				return ""
			}
			if !analysis.PkgPathIs(pass.Pkg.Path(), "drange") {
				return ""
			}
			recv := recvTypeName(fn)
			if recv == "" || deprecated[recv] {
				// The legacy Engine facade predates the two-tier design and
				// is marked Deprecated; its replacement is checked instead.
				return ""
			}
			return recv + "." + fn.Name()
		},
		RawGuard: func(info *types.Info, e ast.Expr) bool {
			t := info.TypeOf(e)
			p, ok := t.(*types.Pointer)
			if !ok {
				return false
			}
			n, ok := p.Elem().(*types.Named)
			if !ok || n.Obj().Name() != "Monitor" || n.Obj().Pkg() == nil {
				return false
			}
			return analysis.PkgPathIs(n.Obj().Pkg().Path(), "internal/health")
		},
		Waived: func(fn *types.Func, decl *ast.FuncDecl) bool {
			return waived[fn]
		},
	}

	ta := analysis.RunTaint(pass, cfg)
	if pass.ExportFacts != nil {
		payload, err := ta.EncodeSummaries()
		if err != nil {
			return err
		}
		pass.ExportFacts(payload)
	}
	return nil
}

// deprecatedReceivers returns the names of types declared in this package
// whose doc comment carries a "Deprecated:" marker.
func deprecatedReceivers(pass *analysis.Pass) map[string]bool {
	out := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, cg := range []*ast.CommentGroup{ts.Doc, gd.Doc} {
					if cg != nil && strings.Contains(cg.Text(), "Deprecated:") {
						out[ts.Name.Name] = true
					}
				}
			}
		}
	}
	return out
}
