package seedtaint_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seedtaint"
)

func TestSeedtaint(t *testing.T) {
	analysistest.Run(t, "testdata", seedtaint.Analyzer, "repro/drange")
}
