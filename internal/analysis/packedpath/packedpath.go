// Package packedpath keeps the packed 64-bit-word representation native
// inside the serving core: the bit-per-byte ReadBits/PopBits APIs exist only
// as adapters at the facade, and calling them from inside the internal
// serving packages (internal/core, internal/memctrl, internal/health,
// internal/postproc) would silently re-introduce the 8x-expanded
// representation the packed refactor removed.
//
// Inside a serving package, a call to a method named ReadBits or PopBits is
// only legal when the enclosing function is itself such an adapter (named
// ReadBits, readBits, PopBits or popBits). Test files are exempt — tests
// routinely compare packed output against the bit-per-byte reference.
package packedpath

import (
	"go/ast"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "packedpath",
	Doc:  "ban bit-per-byte ReadBits/PopBits calls inside the packed serving packages",
	Run:  run,
}

var servingPkgs = []string{"internal/core", "internal/memctrl", "internal/health", "internal/postproc"}

var bitAPIs = map[string]bool{"ReadBits": true, "PopBits": true}

// adapterNames are functions allowed to call the bit-per-byte APIs: the
// adapters themselves.
var adapterNames = map[string]bool{"ReadBits": true, "readBits": true, "PopBits": true, "popBits": true}

func run(pass *analysis.Pass) error {
	inServing := false
	for _, p := range servingPkgs {
		if analysis.PkgPathIs(pass.Pkg.Path(), p) {
			inServing = true
		}
	}
	if !inServing {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || adapterNames[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !bitAPIs[sel.Sel.Name] {
					return true
				}
				pass.Reportf(sel.Sel, "bit-per-byte %s call inside serving package %s: the packed representation is native here; only the %s adapters may expand it", sel.Sel.Name, pass.Pkg.Name(), sel.Sel.Name)
				return true
			})
		}
	}
	return nil
}
