package packedpath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/packedpath"
)

func TestPackedpath(t *testing.T) {
	analysistest.Run(t, "testdata", packedpath.Analyzer,
		"repro/internal/core",
		"adapterpkg",
	)
}
