// Package core stands in for a packed serving package: bit-per-byte calls
// are banned except inside the adapters themselves.
package core

type src struct{}

func (src) ReadBits(n int) []byte { return nil }

func (src) PopBits(n int) []byte { return nil }

type engine struct{ s src }

func (e engine) Read(p []byte) (int, error) {
	bits := e.s.ReadBits(len(p) * 8) // want "bit-per-byte ReadBits call"
	copy(p, bits)
	_ = e.s.PopBits(8) // want "bit-per-byte PopBits call"
	return len(p), nil
}

// ReadBits is the adapter: expanding here is its whole job.
func (e engine) ReadBits(n int) []byte {
	return e.s.ReadBits(n)
}

func (e engine) readBits(n int) []byte {
	return e.s.ReadBits(n)
}
