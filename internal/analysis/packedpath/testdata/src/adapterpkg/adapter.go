// Package adapterpkg is outside the serving set: bit-per-byte calls are
// fine here.
package adapterpkg

type src struct{}

func (src) ReadBits(n int) []byte { return nil }

func Expand(s src, n int) []byte {
	return s.ReadBits(n)
}
