package health

import (
	"strings"
	"testing"
)

// prngBits produces a pseudorandom bitstream from a xorshift generator.
func prngBits(n int, seed uint64) []byte {
	bits := make([]byte, n)
	s := seed | 1
	for i := 0; i < n; {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		for b := 0; b < 64 && i < n; b++ {
			bits[i] = byte((s >> uint(b)) & 1)
			i++
		}
	}
	return bits
}

func mustMonitor(t *testing.T, cfg Config) *Monitor {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultCutoffs(t *testing.T) {
	// C = 1 + ceil(30/H) per SP 800-90B §4.4.1 at alpha = 2^-30.
	if got := DefaultRCTCutoff(1); got != 31 {
		t.Errorf("DefaultRCTCutoff(1) = %d, want 31", got)
	}
	if got := DefaultRCTCutoff(8); got != 5 {
		t.Errorf("DefaultRCTCutoff(8) = %d, want 5", got)
	}
	if got := DefaultAPTWindow(1); got != 1024 {
		t.Errorf("DefaultAPTWindow(1) = %d, want 1024", got)
	}
	if got := DefaultAPTWindow(4); got != 512 {
		t.Errorf("DefaultAPTWindow(4) = %d, want 512", got)
	}
	// For a binary full-entropy source the critical count sits a bit above
	// the mean 512, around six standard deviations (sd = 16) out.
	c := DefaultAPTCutoff(1024, 1)
	if c <= 560 || c >= 700 {
		t.Errorf("DefaultAPTCutoff(1024, 1) = %d, want in (560, 700)", c)
	}
	// For 8-bit symbols (p = 1/256) over 512 symbols the expected count is 2;
	// the cutoff must be far smaller than the binary one.
	c8 := DefaultAPTCutoff(512, 8)
	if c8 < 3 || c8 > 30 {
		t.Errorf("DefaultAPTCutoff(512, 8) = %d, want a small count", c8)
	}
}

func TestRCTTripsAtCutoff(t *testing.T) {
	m := mustMonitor(t, Config{RCTCutoff: 5, MaxBiasDelta: -1})
	// Four identical bits: no trip.
	if v := m.Ingest([]byte{1, 1, 1, 1}); v != nil {
		t.Fatalf("tripped below the cutoff: %+v", v)
	}
	// The fifth identical bit reaches the cutoff.
	v := m.Ingest([]byte{1})
	if v == nil || v.Test != TestRCT {
		t.Fatalf("no RCT trip at the cutoff: %+v", v)
	}
	c := m.Counters()
	if c.RCTTrips != 1 || c.LongestRun != 5 {
		t.Errorf("counters = %+v, want 1 RCT trip, longest run 5", c)
	}
	if !strings.Contains(c.LastViolation, "rct") {
		t.Errorf("LastViolation = %q", c.LastViolation)
	}
	// A value change resets the run: at width 1 alternating bits never trip
	// the RCT (or the APT — exactly half the window matches the reference).
	// TestSymbolWidthCatchesPeriodicStructure shows wider symbols catch them.
	m2 := mustMonitor(t, Config{RCTCutoff: 5, MaxBiasDelta: -1})
	alt := make([]byte, 4096)
	for i := range alt {
		alt[i] = byte(i % 2)
	}
	if v := m2.Ingest(alt); v != nil {
		t.Errorf("width-1 tests tripped on alternating bits: %+v", v)
	}
	if got := m2.Counters().LongestRun; got != 1 {
		t.Errorf("longest run over alternating bits = %d, want 1", got)
	}
}

func TestSymbolWidthCatchesPeriodicStructure(t *testing.T) {
	// A 0110 stutter repeated forever: at width 1 the RCT run never exceeds
	// 2, but at width 4 every symbol is identical.
	stutter := make([]byte, 4*64)
	for i := 0; i < len(stutter); i += 4 {
		stutter[i+1], stutter[i+2] = 1, 1
	}
	m := mustMonitor(t, Config{SymbolBits: 4, RCTCutoff: 8, APTCutoff: 511, MaxBiasDelta: -1})
	v := m.Ingest(stutter)
	if v == nil || v.Test != TestRCT {
		t.Fatalf("width-4 RCT missed the 0110 stutter: %+v", v)
	}
	if !strings.Contains(v.Detail, "0x6") {
		t.Errorf("violation detail %q does not name the 0b0110 symbol", v.Detail)
	}
}

func TestAPTTripsOnHeavyHitter(t *testing.T) {
	// 8-bit symbols, symbol 0xAB appearing for ~1/4 of the window against an
	// expected 1/256.
	cfg := Config{SymbolBits: 8, APTWindow: 512, MaxBiasDelta: -1, RCTCutoff: 1 << 20}
	m := mustMonitor(t, cfg)
	cutoff := m.Config().APTCutoff
	var bits []byte
	filler := prngBits(8*3*512, 7)
	fi := 0
	for i := 0; i < 512; i++ {
		if i%4 == 0 {
			bits = append(bits, 1, 0, 1, 0, 1, 0, 1, 1) // 0xAB
		} else {
			bits = append(bits, filler[fi:fi+8]...)
			fi += 8
		}
	}
	v := m.Ingest(bits)
	if v == nil || v.Test != TestAPT {
		t.Fatalf("APT missed a symbol at 128/512 against cutoff %d: %+v", cutoff, v)
	}
	if m.Counters().APTTrips == 0 {
		t.Error("APT trip not counted")
	}
}

func TestBiasMonitorTrips(t *testing.T) {
	m := mustMonitor(t, Config{BiasWindowBits: 512, MaxBiasDelta: 0.2, RCTCutoff: 1 << 20, APTCutoff: 1 << 19, APTWindow: 1 << 20})
	// 80% ones: delta 0.3 > 0.2. Interleave to dodge the RCT/APT.
	bits := make([]byte, 512)
	for i := range bits {
		if i%5 != 0 {
			bits[i] = 1
		}
	}
	v := m.Ingest(bits)
	if v == nil || v.Test != TestBias {
		t.Fatalf("bias monitor missed an 80%% ones window: %+v", v)
	}
	if m.Counters().BiasTrips != 1 {
		t.Errorf("BiasTrips = %d, want 1", m.Counters().BiasTrips)
	}
}

func TestHealthyStreamNoTrips(t *testing.T) {
	for _, width := range []int{1, 2, 4, 8} {
		m := mustMonitor(t, Config{SymbolBits: width})
		if v := m.Ingest(prngBits(1<<20, uint64(width)*977)); v != nil {
			t.Errorf("width %d tripped on a pseudorandom megabit: %+v", width, v)
		}
		c := m.Counters()
		if c.Trips() != 0 {
			t.Errorf("width %d counters = %+v, want zero trips", width, c)
		}
		if c.BitsTested != 1<<20 {
			t.Errorf("width %d BitsTested = %d", width, c.BitsTested)
		}
		if want := int64(1<<20) / int64(width); c.SymbolsTested != want {
			t.Errorf("width %d SymbolsTested = %d, want %d", width, c.SymbolsTested, want)
		}
	}
}

func TestIngestChunkingInvariant(t *testing.T) {
	// The same stream fed bit-by-bit and in one batch must trip identically.
	bits := append(prngBits(700, 3), make([]byte, 64)...) // a 64-run of zeros at the end
	whole := mustMonitor(t, Config{MaxBiasDelta: -1})
	vWhole := whole.Ingest(bits)
	chunked := mustMonitor(t, Config{MaxBiasDelta: -1})
	var vChunked *Violation
	for i := 0; i < len(bits) && vChunked == nil; i++ {
		vChunked = chunked.Ingest(bits[i : i+1])
	}
	if vWhole == nil || vChunked == nil {
		t.Fatalf("zero-run not caught: whole=%+v chunked=%+v", vWhole, vChunked)
	}
	if vWhole.Test != vChunked.Test || vWhole.Detail != vChunked.Detail {
		t.Errorf("chunked trip %+v differs from whole-batch trip %+v", vChunked, vWhole)
	}
}

func TestResetClearsWindows(t *testing.T) {
	m := mustMonitor(t, Config{RCTCutoff: 10, MaxBiasDelta: -1})
	if v := m.Ingest([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1}); v != nil {
		t.Fatalf("tripped below cutoff: %+v", v)
	}
	m.Reset()
	// Nine more identical bits after a reset stay below the cutoff.
	if v := m.Ingest([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1}); v != nil {
		t.Errorf("run survived Reset: %+v", v)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{SymbolBits: -1},
		{SymbolBits: MaxSymbolBits + 1},
		{RCTCutoff: 1},
		{APTCutoff: 4, APTWindow: 2},
		{BiasWindowBits: 1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestStartupSelfTest(t *testing.T) {
	// A pseudorandom sample passes.
	if v, err := Startup(prngBits(4096, 99), Config{}, 0); err != nil || v != nil {
		t.Fatalf("startup failed a pseudorandom sample: v=%+v err=%v", v, err)
	}
	// An all-ones sample fails, reported as a startup violation.
	ones := make([]byte, 4096)
	for i := range ones {
		ones[i] = 1
	}
	v, err := Startup(ones, Config{}, 0)
	if err != nil || v == nil || v.Test != TestStartup {
		t.Fatalf("startup accepted an all-ones sample: v=%+v err=%v", v, err)
	}
	// Too few bits for the NIST battery: the battery is skipped, the
	// continuous tests still run.
	if v, err := Startup(prngBits(64, 0xDEADBEEF), Config{}, 0); err != nil || v != nil {
		t.Fatalf("short clean sample rejected: v=%+v err=%v", v, err)
	}
	short := make([]byte, 64)
	for i := range short {
		short[i] = 1
	}
	if v, _ := Startup(short, Config{}, 0); v == nil {
		t.Fatal("64 identical bits passed the startup RCT")
	}
}

// countingSink records credit calls for the CreditSink tests.
type countingSink struct {
	bits  int64
	calls int
}

func (s *countingSink) CreditBits(n int64) {
	s.bits += n
	s.calls++
}

// TestCreditSinkCleanWindows: every bias window completing without a
// violation credits the sink with exactly the window size, and partial
// windows earn nothing.
func TestCreditSinkCleanWindows(t *testing.T) {
	m := mustMonitor(t, Config{BiasWindowBits: 512, MaxBiasDelta: 0.2, RCTCutoff: 1 << 20, APTCutoff: 1 << 19, APTWindow: 1 << 20})
	var sink countingSink
	m.SetCreditSink(&sink)
	// Three full windows plus a partial one.
	if v := m.Ingest(prngBits(3*512+100, 42)); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	if sink.calls != 3 || sink.bits != 3*512 {
		t.Errorf("credited %d bits over %d calls, want %d over 3", sink.bits, sink.calls, 3*512)
	}
	// The partial window is discarded by Reset and must never be credited.
	m.Reset()
	if v := m.Ingest(prngBits(512, 43)); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	if sink.bits != 4*512 {
		t.Errorf("credited %d bits after reset+window, want %d", sink.bits, 4*512)
	}
}

// TestCreditSinkTrippedWindowEarnsNothing: a window failing the bias check
// credits nothing.
func TestCreditSinkTrippedWindowEarnsNothing(t *testing.T) {
	m := mustMonitor(t, Config{BiasWindowBits: 512, MaxBiasDelta: 0.05, RCTCutoff: 1 << 20, APTCutoff: 1 << 19, APTWindow: 1 << 20})
	var sink countingSink
	m.SetCreditSink(&sink)
	bits := make([]byte, 512) // all zeros: maximal bias
	if v := m.Ingest(bits); v == nil {
		t.Fatal("all-zero window did not trip the bias monitor")
	}
	if sink.bits != 0 {
		t.Errorf("tripped window credited %d bits, want 0", sink.bits)
	}
}

// TestCreditSinkPackedMatchesUnpacked: IngestPacked credits identically to
// Ingest for the same stream.
func TestCreditSinkPackedMatchesUnpacked(t *testing.T) {
	cfg := Config{BiasWindowBits: 512, MaxBiasDelta: 0.2, RCTCutoff: 1 << 20, APTCutoff: 1 << 19, APTWindow: 1 << 20}
	bits := prngBits(4096, 7)
	packed := make([]byte, len(bits)/8)
	for i, b := range bits {
		packed[i/8] |= b << (7 - i%8)
	}

	mu := mustMonitor(t, cfg)
	var su countingSink
	mu.SetCreditSink(&su)
	if v := mu.Ingest(bits); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	mp := mustMonitor(t, cfg)
	var sp countingSink
	mp.SetCreditSink(&sp)
	if v := mp.IngestPacked(packed, len(bits)); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	if su.bits != sp.bits || su.calls != sp.calls {
		t.Errorf("packed credited %d/%d, unpacked %d/%d", sp.bits, sp.calls, su.bits, su.calls)
	}
	if su.bits != 4096 {
		t.Errorf("credited %d bits, want 4096", su.bits)
	}
}
