// Package health implements the SP 800-90B style online health tests that
// guard a D-RaNGe bitstream in the hot path: the Repetition Count Test (RCT)
// and the Adaptive Proportion Test (APT) over configurable symbol widths,
// plus a windowed bias monitor. The paper validates D-RaNGe's output quality
// offline with the NIST battery and notes that RNG cells drift with
// temperature and aging (Section 5.3); these tests are the continuous
// counterpart — they run over every harvested bit and catch a degraded
// device from the bitstream itself, before biased output reaches a caller.
//
// A Monitor is not safe for concurrent use; the drange facade drives one
// monitor per source (or per pool member) under the source's lock.
package health

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/nist"
	"repro/internal/postproc"
)

// defaultAlphaExp is -log2 of the false-positive probability the default
// cutoffs are derived for. SP 800-90B recommends choosing alpha in
// [2^-40, 2^-20]; 2^-30 keeps healthy sources tripping less than once per
// ~10^9 windows while a stuck or heavily biased device trips within one.
const defaultAlphaExp = 30

// MaxSymbolBits bounds the symbol width of the RCT/APT tests. Wider symbols
// see longer-range structure but need proportionally longer windows.
const MaxSymbolBits = 16

// DefaultRCTCutoff returns the SP 800-90B §4.4.1 repetition-count cutoff for
// a full-entropy source emitting symbolBits-bit symbols:
// C = 1 + ceil(-log2(alpha) / H) with alpha = 2^-30 and H = symbolBits.
func DefaultRCTCutoff(symbolBits int) int {
	if symbolBits < 1 {
		symbolBits = 1
	}
	return 1 + (defaultAlphaExp+symbolBits-1)/symbolBits
}

// DefaultAPTWindow returns the SP 800-90B §4.4.2 window size: 1024 symbols
// for binary sources, 512 otherwise.
func DefaultAPTWindow(symbolBits int) int {
	if symbolBits <= 1 {
		return 1024
	}
	return 512
}

// DefaultAPTCutoff returns the smallest count C such that a full-entropy
// source emitting symbolBits-bit symbols sees C or more copies of any fixed
// symbol in a window-symbol window with probability at most 2^-30: the
// critical binomial value SP 800-90B §4.4.2 prescribes, computed exactly in
// log space.
func DefaultAPTCutoff(window, symbolBits int) int {
	if symbolBits < 1 {
		symbolBits = 1
	}
	if window < 1 {
		window = DefaultAPTWindow(symbolBits)
	}
	logP := -float64(symbolBits) * math.Ln2 // log of the per-symbol hit probability
	logQ := math.Log1p(-math.Exp(logP))     // log(1 - p)
	logAlpha := -defaultAlphaExp * math.Ln2 // log(2^-30)
	lgamma := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
	n := float64(window)
	// Walk the upper tail downwards, accumulating P[X >= c] until it first
	// exceeds alpha; the cutoff is one above that point.
	tail := math.Inf(-1) // log of the accumulated tail probability
	for c := window; c >= 0; c-- {
		k := float64(c)
		logTerm := lgamma(n+1) - lgamma(k+1) - lgamma(n-k+1) + k*logP + (n-k)*logQ
		// tail = log(exp(tail) + exp(logTerm)), numerically stable.
		if logTerm > tail {
			tail, logTerm = logTerm, tail
		}
		tail += math.Log1p(math.Exp(logTerm - tail))
		if tail > logAlpha {
			if c+1 > window {
				return window
			}
			return c + 1
		}
	}
	return 1
}

// Config parameterizes a Monitor. The zero value of every field selects the
// SP 800-90B style default documented on the field.
type Config struct {
	// SymbolBits is the width of the symbols the RCT and APT operate on, in
	// [1, MaxSymbolBits]. Harvested bits are packed MSB-first into symbols.
	// Width 1 (the default) watches the raw bitstream; wider symbols catch
	// periodic structure single bits cannot (e.g. a 0101... stutter trips the
	// RCT at width 4 but never at width 1).
	SymbolBits int
	// RCTCutoff is the repetition-count cutoff: RCTCutoff consecutive
	// identical symbols trip the test. 0 selects DefaultRCTCutoff.
	RCTCutoff int
	// APTWindow and APTCutoff parameterize the adaptive proportion test: at
	// each window start the first symbol is taken as reference, and APTCutoff
	// or more occurrences within APTWindow symbols trip the test. 0 selects
	// DefaultAPTWindow / DefaultAPTCutoff.
	APTWindow int
	APTCutoff int
	// BiasWindowBits is the bias monitor's window; at each full window the
	// ones-fraction of the window is compared against one half. 0 selects
	// 4096.
	BiasWindowBits int
	// MaxBiasDelta trips the bias monitor when |ones-fraction − 0.5| over a
	// window exceeds it. 0 selects 0.1; negative disables the bias monitor.
	MaxBiasDelta float64
}

// withDefaults resolves every zero field to its documented default.
func (c Config) withDefaults() Config {
	if c.SymbolBits == 0 {
		c.SymbolBits = 1
	}
	if c.RCTCutoff == 0 {
		c.RCTCutoff = DefaultRCTCutoff(c.SymbolBits)
	}
	if c.APTWindow == 0 {
		c.APTWindow = DefaultAPTWindow(c.SymbolBits)
	}
	if c.APTCutoff == 0 {
		c.APTCutoff = DefaultAPTCutoff(c.APTWindow, c.SymbolBits)
	}
	if c.BiasWindowBits == 0 {
		c.BiasWindowBits = 4096
	}
	if c.MaxBiasDelta == 0 {
		c.MaxBiasDelta = 0.1
	}
	return c
}

// validate rejects unusable parameter combinations after defaulting.
func (c Config) validate() error {
	if c.SymbolBits < 1 || c.SymbolBits > MaxSymbolBits {
		return fmt.Errorf("health: symbol width %d outside [1,%d]", c.SymbolBits, MaxSymbolBits)
	}
	if c.RCTCutoff < 2 {
		return fmt.Errorf("health: RCT cutoff %d must be at least 2", c.RCTCutoff)
	}
	if c.APTWindow < 2 {
		return fmt.Errorf("health: APT window %d must be at least 2", c.APTWindow)
	}
	if c.APTCutoff < 2 || c.APTCutoff > c.APTWindow {
		return fmt.Errorf("health: APT cutoff %d outside [2,%d]", c.APTCutoff, c.APTWindow)
	}
	if c.BiasWindowBits < 2 {
		return fmt.Errorf("health: bias window %d bits must be at least 2", c.BiasWindowBits)
	}
	return nil
}

// Test names one of the continuous health tests.
type Test string

const (
	// TestRCT is the repetition count test (SP 800-90B §4.4.1).
	TestRCT Test = "rct"
	// TestAPT is the adaptive proportion test (SP 800-90B §4.4.2).
	TestAPT Test = "apt"
	// TestBias is the windowed bias monitor.
	TestBias Test = "bias"
	// TestStartup is the startup self-test (RCT/APT plus a mini NIST battery
	// over the first bits of a source).
	TestStartup Test = "startup"
)

// Violation reports one health-test trip.
type Violation struct {
	// Test is the tripped test.
	Test Test
	// Detail is a human-readable description of the trip.
	Detail string
}

// Counters is a snapshot of a Monitor's accounting.
type Counters struct {
	// BitsTested counts bits ingested; SymbolsTested counts the packed
	// symbols the RCT/APT saw.
	BitsTested    int64
	SymbolsTested int64
	// RCTTrips, APTTrips and BiasTrips count trips per test.
	RCTTrips  int64
	APTTrips  int64
	BiasTrips int64
	// LongestRun is the longest run of identical symbols observed (capped at
	// the trip point: a tripped run resets).
	LongestRun int64
	// LastViolation describes the most recent trip ("" when none).
	LastViolation string
}

// Trips returns the total trip count across all tests.
func (c Counters) Trips() int64 { return c.RCTTrips + c.APTTrips + c.BiasTrips }

// CreditSink receives entropy credit: CreditBits(n) is called with the size
// of every bias window that completes without a violation, i.e. n raw bits
// that passed the continuous tests end to end. Implementations must be safe
// for concurrent use with their own readers (the monitor itself calls from
// its single ingest thread). The drbg package's Ledger is the canonical
// implementation.
type CreditSink interface {
	CreditBits(n int64)
}

// Monitor runs the continuous health tests over a bitstream fed to Ingest in
// arbitrary batch sizes. State carries across batches, so the tests behave
// identically however the stream is chunked.
type Monitor struct {
	cfg Config

	// symbol packing: cur accumulates curBits MSB-first bits.
	cur     uint64
	curBits int

	// RCT state: run counts consecutive occurrences of last.
	last     uint64
	haveLast bool
	run      int

	// APT state: ref is the window's reference symbol, refCount its
	// occurrences, seen the symbols consumed from the current window.
	ref      uint64
	refCount int
	seen     int

	// bias window state.
	winOnes int64
	winBits int64

	// sink, when set, is credited with every clean bias window.
	sink CreditSink

	counters Counters
}

// New returns a Monitor for the configuration, after defaulting zero fields.
func New(cfg Config) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Monitor{cfg: cfg}, nil
}

// Config returns the monitor's fully resolved configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Counters returns a snapshot of the monitor's accounting.
func (m *Monitor) Counters() Counters { return m.counters }

// SetCreditSink registers s to be credited with the bits of every bias
// window that completes cleanly from now on (nil unregisters). Credit is
// granted in whole-window quanta: bits in a window that trips, or discarded
// partially accumulated by Reset, earn nothing.
func (m *Monitor) SetCreditSink(s CreditSink) { m.sink = s }

// Reset clears every window, run and partially packed symbol — the "discard
// the dirty window and start clean" step of a blocking policy. Counters are
// preserved.
func (m *Monitor) Reset() {
	m.cur, m.curBits = 0, 0
	m.haveLast, m.run = false, 0
	m.refCount, m.seen = 0, 0
	m.winOnes, m.winBits = 0, 0
}

// Ingest feeds bits (one bit per byte, values 0 or 1) through the tests. It
// returns the first violation and leaves the remaining bits of the batch
// unprocessed — under every policy the caller discards the batch (or the
// whole source) on a trip, so the tail would only be dropped again. The
// tripped test's state is reset so a continuing caller re-accumulates from
// scratch; counters record the trip either way.
func (m *Monitor) Ingest(bits []byte) *Violation {
	for _, b := range bits {
		bit := uint64(0)
		if b != 0 {
			bit = 1
		}
		if v := m.ingestBit(bit); v != nil {
			return v
		}
	}
	return nil
}

// ingestBit advances every test by one raw bit, recording and returning the
// first violation.
func (m *Monitor) ingestBit(bit uint64) *Violation {
	m.counters.BitsTested++
	// Bias monitor runs on raw bits, whatever the symbol width.
	m.winOnes += int64(bit)
	m.winBits++
	if m.winBits >= int64(m.cfg.BiasWindowBits) {
		if v := m.biasWindowDone(); v != nil {
			m.recordTrip(v)
			return v
		}
	}
	// Pack MSB-first into the configured symbol width.
	m.cur = m.cur<<1 | bit
	m.curBits++
	if m.curBits < m.cfg.SymbolBits {
		return nil
	}
	sym := m.cur
	m.cur, m.curBits = 0, 0
	if v := m.ingestSymbol(sym); v != nil {
		m.recordTrip(v)
		return v
	}
	return nil
}

// IngestPacked feeds nbits bits packed MSB-first in p (bit i at
// p[i/8]>>(7-i%8)) through the tests — the packed-word counterpart of Ingest,
// with identical trip behaviour and counters for any chunking of the same
// stream. For 1-bit symbols (the default) it advances the bias and adaptive
// proportion windows by popcount and the repetition count test by run-length
// scanning, falling back to bit-at-a-time processing only for chunks that
// approach a window boundary or could trip. Wider symbol widths replay every
// chunk bit by bit — no word-level shortcut, the win over Ingest is only
// that the stream never materialises as a bit-per-byte slice.
//
//drange:noalloc
func (m *Monitor) IngestPacked(p []byte, nbits int) *Violation {
	stream := postproc.Packed{Data: p, Len: nbits}
	off := 0
	for off < nbits {
		n := nbits - off
		if n > 64 {
			n = 64
		}
		// Load the next chunk with the first stream bit at the most
		// significant position (chunks after the first are byte-aligned).
		v := stream.Chunk(off, n)
		if m.cfg.SymbolBits == 1 && m.chunkIsQuiet(v, n) {
			m.applyQuietChunk(v, n)
			off += n
			continue
		}
		// A window boundary, a potential trip, or a wide-symbol
		// configuration: replay the chunk bit by bit (first bit at v's MSB).
		for i := n - 1; i >= 0; i-- {
			if viol := m.ingestBit((v >> uint(i)) & 1); viol != nil {
				return viol
			}
		}
		off += n
	}
	return nil
}

// chunkIsQuiet reports whether an n-bit chunk (first bit most significant)
// can be applied to the 1-bit-symbol tests in bulk: no bias or APT window
// completes inside it, the APT cutoff cannot be reached, and no symbol run —
// including the carried-in run — can reach the RCT cutoff. Quiet chunks
// advance every test with word-level operations; loud ones replay bit by bit.
func (m *Monitor) chunkIsQuiet(v uint64, n int) bool {
	if m.winBits+int64(n) >= int64(m.cfg.BiasWindowBits) {
		return false
	}
	if m.seen+n >= m.cfg.APTWindow {
		return false
	}
	ones := bits.OnesCount64(v)
	ref := m.ref
	refCount := m.refCount
	if m.seen == 0 {
		// The window restarts inside this chunk: its first bit becomes the
		// reference symbol.
		ref = (v >> uint(n-1)) & 1
		refCount = 0
	}
	matches := ones
	if ref == 0 {
		matches = n - ones
	}
	if refCount+matches >= m.cfg.APTCutoff {
		return false
	}
	run0, run1, lead := runStats(v, n)
	carried := lead
	first := (v >> uint(n-1)) & 1
	if m.haveLast && m.last == first {
		carried += m.run
	}
	maxRun := carried
	if run0 > maxRun {
		maxRun = run0
	}
	if run1 > maxRun {
		maxRun = run1
	}
	return maxRun < m.cfg.RCTCutoff
}

// applyQuietChunk advances the 1-bit-symbol tests over a chunk that
// chunkIsQuiet accepted, without per-bit work.
func (m *Monitor) applyQuietChunk(v uint64, n int) {
	ones := int64(bits.OnesCount64(v))
	m.counters.BitsTested += int64(n)
	m.counters.SymbolsTested += int64(n)
	m.winOnes += ones
	m.winBits += int64(n)

	// RCT bookkeeping: fold the carried run into the leading run, track the
	// longest run observed, and carry the trailing run out.
	run0, run1, lead := runStats(v, n)
	first := (v >> uint(n-1)) & 1
	last := v & 1
	carried := lead
	if m.haveLast && m.last == first {
		carried += m.run
	}
	for _, r := range [3]int{carried, run0, run1} {
		if int64(r) > m.counters.LongestRun {
			m.counters.LongestRun = int64(r)
		}
	}
	if lead == n {
		// Single-symbol chunk: the whole carried run continues.
		m.run = carried
	} else if last == 1 {
		m.run = bits.TrailingZeros64(^v)
	} else {
		m.run = bits.TrailingZeros64(v | 1<<uint(n))
	}
	m.last, m.haveLast = last, true

	// APT bookkeeping (no window completes inside a quiet chunk).
	if m.seen == 0 {
		m.ref, m.refCount = first, 0
	}
	m.seen += n
	matches := int(ones)
	if m.ref == 0 {
		matches = n - int(ones)
	}
	m.refCount += matches
}

// runStats returns the longest run of zeros and of ones within the low-n-bit
// window of v (first stream bit at bit n-1), plus the length of the leading
// (first-bit) run.
func runStats(v uint64, n int) (run0, run1, lead int) {
	// Shift the window to the top of the word so leading-zero counts line up
	// with stream order; mask the vacated low bits out of the zero runs.
	top := v << uint(64-n)
	mask := ^uint64(0) << uint(64-n)
	run1 = longestOnes(top)
	run0 = longestOnes(^top & mask)
	if first := (v >> uint(n-1)) & 1; first == 1 {
		lead = bits.LeadingZeros64(^top)
	} else {
		lead = bits.LeadingZeros64(top)
	}
	if lead > n {
		lead = n
	}
	return run0, run1, lead
}

// longestOnes returns the length of the longest run of set bits.
func longestOnes(x uint64) int {
	n := 0
	for x != 0 {
		x &= x << 1
		n++
	}
	return n
}

// ingestSymbol advances the RCT and APT by one symbol.
func (m *Monitor) ingestSymbol(sym uint64) *Violation {
	m.counters.SymbolsTested++

	// Repetition count test.
	if m.haveLast && sym == m.last {
		m.run++
	} else {
		m.last, m.haveLast, m.run = sym, true, 1
	}
	if int64(m.run) > m.counters.LongestRun {
		m.counters.LongestRun = int64(m.run)
	}
	if m.run >= m.cfg.RCTCutoff {
		v := &Violation{Test: TestRCT, Detail: fmt.Sprintf(
			"symbol %#x repeated %d times (cutoff %d, width %d bits)",
			m.last, m.run, m.cfg.RCTCutoff, m.cfg.SymbolBits)}
		m.haveLast, m.run = false, 0
		return v
	}

	// Adaptive proportion test.
	if m.seen == 0 {
		m.ref, m.refCount = sym, 0
	}
	m.seen++
	if sym == m.ref {
		m.refCount++
		if m.refCount >= m.cfg.APTCutoff {
			v := &Violation{Test: TestAPT, Detail: fmt.Sprintf(
				"symbol %#x occurred %d times in a %d-symbol window (cutoff %d, width %d bits)",
				m.ref, m.refCount, m.cfg.APTWindow, m.cfg.APTCutoff, m.cfg.SymbolBits)}
			m.refCount, m.seen = 0, 0
			return v
		}
	}
	if m.seen >= m.cfg.APTWindow {
		m.refCount, m.seen = 0, 0
	}
	return nil
}

// biasWindowDone evaluates and clears a completed bias window, crediting the
// sink when the window is clean. A window reaching here passed RCT and APT
// continuously (a trip resets the stream before the window completes), so a
// clean return certifies the whole window.
func (m *Monitor) biasWindowDone() *Violation {
	ones, bits := m.winOnes, m.winBits
	m.winOnes, m.winBits = 0, 0
	if m.cfg.MaxBiasDelta >= 0 {
		delta := float64(ones)/float64(bits) - 0.5
		if delta < 0 {
			delta = -delta
		}
		if delta > m.cfg.MaxBiasDelta {
			return &Violation{Test: TestBias, Detail: fmt.Sprintf(
				"|ones-fraction - 0.5| = %.3f over %d bits exceeds %.3f",
				delta, bits, m.cfg.MaxBiasDelta)}
		}
	}
	if m.sink != nil {
		m.sink.CreditBits(bits)
	}
	return nil
}

// recordTrip updates the per-test trip counters.
func (m *Monitor) recordTrip(v *Violation) {
	switch v.Test {
	case TestRCT:
		m.counters.RCTTrips++
	case TestAPT:
		m.counters.APTTrips++
	case TestBias:
		m.counters.BiasTrips++
	}
	m.counters.LastViolation = fmt.Sprintf("%s: %s", v.Test, v.Detail)
}

// Startup runs the SP 800-90B style startup self-test over the first bits of
// a source: a fresh Monitor's RCT/APT/bias pass, then the NIST battery at
// significance alpha (nist.DefaultAlpha when 0). Bits too few for the NIST
// battery skip it — the continuous tests still apply — so a caller that
// configures a tiny startup sample is not failed for streaming too little.
// It returns the violation that tripped, or nil when the sample is clean.
func Startup(bits []byte, cfg Config, alpha float64) (*Violation, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if v := m.Ingest(bits); v != nil {
		return &Violation{Test: TestStartup, Detail: fmt.Sprintf("%s: %s", v.Test, v.Detail)}, nil
	}
	if alpha == 0 {
		alpha = nist.DefaultAlpha
	}
	res, err := nist.RunAll(bits, alpha)
	if err != nil {
		if errors.Is(err, nist.ErrInsufficientData) {
			return nil, nil // too few bits for the battery; RCT/APT passed
		}
		return nil, fmt.Errorf("health: startup battery: %w", err)
	}
	for _, r := range res.Results {
		if r.Applicable && !r.Pass {
			return &Violation{Test: TestStartup, Detail: fmt.Sprintf(
				"NIST %s failed on the first %d bits (p=%.3g < alpha %.3g)",
				r.Name, len(bits), r.PValue, alpha)}, nil
		}
	}
	return nil, nil
}
