package health

import (
	"math/rand/v2"
	"testing"
)

// packBits packs a bit-per-byte stream MSB-first, the encoding IngestPacked
// consumes.
func packBits(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b != 0 {
			out[i>>3] |= 1 << uint(7-i&7)
		}
	}
	return out
}

// streamFor builds adversarial test streams: random at a bias, with runs and
// stutters spliced in so the RCT/APT fast-path boundaries are exercised.
func streamFor(rng *rand.Rand, n int, kind int) []byte {
	out := make([]byte, n)
	switch kind {
	case 0: // fair coin
		for i := range out {
			out[i] = byte(rng.IntN(2))
		}
	case 1: // biased
		for i := range out {
			if rng.Float64() < 0.8 {
				out[i] = 1
			}
		}
	case 2: // runs of random length
		for i := 0; i < n; {
			b := byte(rng.IntN(2))
			l := 1 + rng.IntN(40)
			for j := 0; j < l && i < n; j++ {
				out[i] = b
				i++
			}
		}
	case 3: // 0101 stutter with occasional noise
		for i := range out {
			out[i] = byte(i & 1)
			if rng.IntN(97) == 0 {
				out[i] ^= 1
			}
		}
	case 4: // stuck
		for i := range out {
			out[i] = 1
		}
	}
	return out
}

// TestIngestPackedEquivalence is the acceptance property test: for random
// streams and randomized chunk boundaries, IngestPacked must return the same
// violations and leave the same counters as Ingest over the bit-per-byte
// stream — for 1-bit symbols (the popcount/run-scan fast path) and for wider
// symbol widths (the packed symbol-extraction path).
func TestIngestPackedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for _, symbolBits := range []int{1, 2, 4, 8} {
		for kind := 0; kind < 5; kind++ {
			for trial := 0; trial < 20; trial++ {
				cfg := Config{SymbolBits: symbolBits}
				if trial%3 == 1 {
					// Small windows make boundary crossings frequent.
					cfg.BiasWindowBits = 64 + rng.IntN(256)
					cfg.APTWindow = 16 + rng.IntN(64)
				}
				ref, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				packed, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				stream := streamFor(rng, 512+rng.IntN(4096), kind)
				// Feed both monitors the same stream in the same chunking; a
				// violation drops the rest of the chunk on both sides, so the
				// logical streams stay aligned.
				for off := 0; off < len(stream); {
					n := 1 + rng.IntN(300)
					if off+n > len(stream) {
						n = len(stream) - off
					}
					chunk := stream[off : off+n]
					vRef := ref.Ingest(chunk)
					vPacked := packed.IngestPacked(packBits(chunk), n)
					if (vRef == nil) != (vPacked == nil) {
						t.Fatalf("symbol=%d kind=%d trial=%d off=%d: violation mismatch: ref=%v packed=%v",
							symbolBits, kind, trial, off, vRef, vPacked)
					}
					if vRef != nil && (vRef.Test != vPacked.Test || vRef.Detail != vPacked.Detail) {
						t.Fatalf("symbol=%d kind=%d trial=%d: violation differs:\n ref:    %s: %s\n packed: %s: %s",
							symbolBits, kind, trial, vRef.Test, vRef.Detail, vPacked.Test, vPacked.Detail)
					}
					if ref.Counters() != packed.Counters() {
						t.Fatalf("symbol=%d kind=%d trial=%d off=%d n=%d: counters diverge:\n ref:    %+v\n packed: %+v",
							symbolBits, kind, trial, off, n, ref.Counters(), packed.Counters())
					}
					off += n
				}
			}
		}
	}
}

// TestIngestPackedPartialByte: nbits smaller than the packed buffer's
// capacity only consumes nbits bits.
func TestIngestPackedPartialByte(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.IngestPacked([]byte{0xFF, 0xFF}, 11); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	c := m.Counters()
	if c.BitsTested != 11 || c.SymbolsTested != 11 {
		t.Fatalf("counters = %+v, want 11 bits/symbols", c)
	}
	if c.LongestRun != 11 {
		t.Fatalf("LongestRun = %d, want 11", c.LongestRun)
	}
}
