// Package postproc implements the post-processing (de-biasing) techniques
// described in Section 2.2 of the paper: the von Neumann corrector, a simple
// XOR decimator, and SHA-256 conditioning. D-RaNGe does not need them (RNG
// cells are selected to be unbiased), but the baselines do, and the paper
// notes that post-processing can cost up to 80% of raw throughput — the
// ablation benchmark quantifies that cost.
package postproc

import (
	"crypto/sha256"
	"fmt"
)

// Corrector transforms a raw bitstream (one bit per byte) into a
// post-processed bitstream, typically shorter.
type Corrector interface {
	// Name identifies the technique.
	Name() string
	// Process returns the corrected bitstream.
	Process(bits []byte) ([]byte, error)
}

func validate(bits []byte) error {
	for i, b := range bits {
		if b > 1 {
			return fmt.Errorf("postproc: bit %d has value %d", i, b)
		}
	}
	return nil
}

// VonNeumann is the classic von Neumann corrector: it consumes bits in
// pairs, emits the first bit of each 01/10 pair, and discards 00/11 pairs.
// The output is unbiased whenever the input bits are independent, at the
// cost of discarding at least half of the input.
type VonNeumann struct{}

// Name implements Corrector.
func (VonNeumann) Name() string { return "von Neumann" }

// Process implements Corrector.
func (VonNeumann) Process(bits []byte) ([]byte, error) {
	if err := validate(bits); err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(bits)/4)
	for i := 0; i+1 < len(bits); i += 2 {
		a, b := bits[i], bits[i+1]
		if a != b {
			out = append(out, a)
		}
	}
	return out, nil
}

// XORDecimator XORs non-overlapping groups of Factor bits into single output
// bits, reducing bias exponentially at a linear throughput cost.
type XORDecimator struct {
	Factor int
}

// Name implements Corrector.
func (x XORDecimator) Name() string { return fmt.Sprintf("XOR decimator (factor %d)", x.Factor) }

// Process implements Corrector.
func (x XORDecimator) Process(bits []byte) ([]byte, error) {
	if x.Factor < 2 {
		return nil, fmt.Errorf("postproc: XOR decimation factor must be at least 2, got %d", x.Factor)
	}
	if err := validate(bits); err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(bits)/x.Factor)
	for i := 0; i+x.Factor <= len(bits); i += x.Factor {
		var v byte
		for j := 0; j < x.Factor; j++ {
			v ^= bits[i+j]
		}
		out = append(out, v)
	}
	return out, nil
}

// SHA256Conditioner hashes fixed-size input blocks with SHA-256 and emits
// the digest bits, the cryptographic conditioning approach used by the
// retention-based TRNGs.
type SHA256Conditioner struct {
	// InputBlockBits is the number of raw bits consumed per 256-bit digest.
	// It must be at least 256 for the output rate not to exceed the input
	// entropy.
	InputBlockBits int
}

// Name implements Corrector.
func (s SHA256Conditioner) Name() string {
	return fmt.Sprintf("SHA-256 conditioner (%d-bit blocks)", s.InputBlockBits)
}

// Process implements Corrector.
func (s SHA256Conditioner) Process(bits []byte) ([]byte, error) {
	if s.InputBlockBits < 256 {
		return nil, fmt.Errorf("postproc: SHA-256 input block must be at least 256 bits, got %d", s.InputBlockBits)
	}
	if err := validate(bits); err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(bits)/s.InputBlockBits*256)
	for i := 0; i+s.InputBlockBits <= len(bits); i += s.InputBlockBits {
		block := bits[i : i+s.InputBlockBits]
		packed := make([]byte, 0, (len(block)+7)/8)
		for j := 0; j < len(block); j += 8 {
			var b byte
			for k := 0; k < 8 && j+k < len(block); k++ {
				b = b<<1 | block[j+k]
			}
			packed = append(packed, b)
		}
		digest := sha256.Sum256(packed)
		for _, db := range digest {
			for k := 7; k >= 0; k-- {
				out = append(out, (db>>uint(k))&1)
			}
		}
	}
	return out, nil
}

// ThroughputCost returns the fraction of raw throughput lost by the
// corrector on the given input (0 means no loss, 0.8 means 80% lost — the
// figure the paper quotes for heavyweight post-processing).
func ThroughputCost(c Corrector, bits []byte) (float64, error) {
	if len(bits) == 0 {
		return 0, fmt.Errorf("postproc: empty input")
	}
	out, err := c.Process(bits)
	if err != nil {
		return 0, err
	}
	return 1 - float64(len(out))/float64(len(bits)), nil
}

var (
	_ Corrector = VonNeumann{}
	_ Corrector = XORDecimator{}
	_ Corrector = SHA256Conditioner{}
)
