package postproc

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func randomBits(rng *rand.Rand, n int, bias float64) []byte {
	out := make([]byte, n)
	for i := range out {
		if rng.Float64() < bias {
			out[i] = 1
		}
	}
	return out
}

// TestPackedRoundTrip pins the Packed encoding helpers against each other.
func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		bits := randomBits(rng, rng.IntN(300), 0.5)
		p := PackBits(bits)
		if p.Len != len(bits) {
			t.Fatalf("PackBits length %d, want %d", p.Len, len(bits))
		}
		if !bytes.Equal(p.Unpack(), bits) {
			t.Fatalf("trial %d: pack/unpack mismatch", trial)
		}
		for i, b := range bits {
			if p.Bit(i) != b {
				t.Fatalf("trial %d: bit %d = %d, want %d", trial, i, p.Bit(i), b)
			}
		}
		// Chunk/AppendChunk round-trip through a rebuilt stream.
		var q Packed
		for off := 0; off < p.Len; {
			n := 1 + rng.IntN(64)
			if off+n > p.Len {
				n = p.Len - off
			}
			q.AppendChunk(p.Chunk(off, n), n)
			off += n
		}
		if q.Len != p.Len || !bytes.Equal(q.Unpack(), bits) {
			t.Fatalf("trial %d: chunked rebuild mismatch", trial)
		}
		// Slice keeps order and values.
		if p.Len > 2 {
			off := rng.IntN(p.Len - 1)
			n := 1 + rng.IntN(p.Len-off-1)
			s := p.Slice(off, n)
			if !bytes.Equal(s.Unpack(), bits[off:off+n]) {
				t.Fatalf("trial %d: Slice(%d,%d) mismatch", trial, off, n)
			}
		}
		// Append onto an unaligned prefix.
		var u Packed
		cut := 0
		if p.Len > 0 {
			cut = rng.IntN(p.Len)
		}
		u.Append(p.Slice(0, cut))
		u.Append(p.Slice(cut, p.Len-cut))
		if !bytes.Equal(u.Unpack(), bits) {
			t.Fatalf("trial %d: Append mismatch", trial)
		}
	}
}

// TestPackedCorrectorEquivalence is the acceptance property test: every
// built-in corrector's ProcessPacked output must be bit-identical to the
// legacy bit-per-byte Process across random inputs, biases and lengths —
// including lengths not divisible by the corrector's block.
func TestPackedCorrectorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	correctors := []Corrector{
		VonNeumann{},
		XORDecimator{Factor: 2},
		XORDecimator{Factor: 3},
		XORDecimator{Factor: 17},
		XORDecimator{Factor: 100},
		SHA256Conditioner{InputBlockBits: 256},
		SHA256Conditioner{InputBlockBits: 512},
		SHA256Conditioner{InputBlockBits: 300}, // non-byte-aligned blocks
	}
	for _, c := range correctors {
		pc, ok := c.(PackedCorrector)
		if !ok {
			t.Fatalf("%s does not implement PackedCorrector", c.Name())
		}
		for trial := 0; trial < 40; trial++ {
			n := rng.IntN(2200)
			bias := []float64{0.5, 0.1, 0.9, 0.0, 1.0}[trial%5]
			in := randomBits(rng, n, bias)
			want, err := c.Process(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pc.ProcessPacked(PackBits(in))
			if err != nil {
				t.Fatal(err)
			}
			if got.Len != len(want) || !bytes.Equal(got.Unpack(), want) {
				t.Fatalf("%s: trial %d (n=%d bias=%.1f): packed output %d bits differs from legacy %d bits",
					c.Name(), trial, n, bias, got.Len, len(want))
			}
		}
	}
}

// TestPackedCorrectorParameterErrors: packed implementations reject the same
// bad parameters as the legacy ones.
func TestPackedCorrectorParameterErrors(t *testing.T) {
	if _, err := (XORDecimator{Factor: 1}).ProcessPacked(Packed{}); err == nil {
		t.Error("packed XOR decimator accepted factor 1")
	}
	if _, err := (SHA256Conditioner{InputBlockBits: 128}).ProcessPacked(Packed{}); err == nil {
		t.Error("packed SHA-256 conditioner accepted a 128-bit block")
	}
}
