package postproc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/entropy"
)

func biasedBits(n int, pOnePercent int, seed uint64) []byte {
	bits := make([]byte, n)
	s := seed | 1
	for i := range bits {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if int(s%100) < pOnePercent {
			bits[i] = 1
		}
	}
	return bits
}

func TestVonNeumannRemovesBias(t *testing.T) {
	in := biasedBits(200000, 70, 3)
	out, err := VonNeumann{}.Process(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty output")
	}
	b, err := entropy.Bias(out)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 0.02 {
		t.Errorf("von Neumann output bias = %v, want ~0.5 from a 70%% biased input", b)
	}
	// Output must be much shorter than input (it discards ≥ half).
	if len(out) > len(in)/2 {
		t.Errorf("von Neumann output length %d exceeds half the input %d", len(out), len(in))
	}
}

func TestVonNeumannExactBehaviour(t *testing.T) {
	out, err := VonNeumann{}.Process([]byte{0, 1, 1, 0, 1, 1, 0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 1}
	if len(out) != len(want) {
		t.Fatalf("output %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("output %v, want %v", out, want)
		}
	}
}

func TestXORDecimatorReducesBias(t *testing.T) {
	in := biasedBits(100000, 70, 5)
	out, err := XORDecimator{Factor: 4}.Process(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in)/4 {
		t.Fatalf("output length %d, want %d", len(out), len(in)/4)
	}
	inBias, _ := entropy.Bias(in)
	outBias, err := entropy.Bias(out)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(outBias-0.5) >= math.Abs(inBias-0.5) {
		t.Errorf("XOR decimation did not reduce bias: in=%v out=%v", inBias, outBias)
	}
	if _, err := (XORDecimator{Factor: 1}).Process(in); err == nil {
		t.Error("factor 1 accepted")
	}
}

func TestSHA256ConditionerBalancesOutput(t *testing.T) {
	in := biasedBits(64000, 80, 7)
	c := SHA256Conditioner{InputBlockBits: 1024}
	out, err := c.Process(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != (len(in)/1024)*256 {
		t.Fatalf("output length %d, want %d", len(out), (len(in)/1024)*256)
	}
	b, err := entropy.Bias(out)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 0.02 {
		t.Errorf("SHA-256 output bias = %v, want ~0.5", b)
	}
	if _, err := (SHA256Conditioner{InputBlockBits: 64}).Process(in); err == nil {
		t.Error("sub-256-bit block accepted")
	}
}

func TestThroughputCost(t *testing.T) {
	in := biasedBits(100000, 50, 9)
	vnCost, err := ThroughputCost(VonNeumann{}, in)
	if err != nil {
		t.Fatal(err)
	}
	// Unbiased input: von Neumann keeps ~25% of bits, so ~75% cost — this
	// is the kind of loss the paper's "up to 80%" figure refers to.
	if vnCost < 0.6 || vnCost > 0.9 {
		t.Errorf("von Neumann throughput cost = %v, want ~0.75", vnCost)
	}
	shaCost, err := ThroughputCost(SHA256Conditioner{InputBlockBits: 1024}, in)
	if err != nil {
		t.Fatal(err)
	}
	if shaCost < 0.7 || shaCost > 0.8 {
		t.Errorf("SHA-256 (1024→256) throughput cost = %v, want 0.75", shaCost)
	}
	xorCost, err := ThroughputCost(XORDecimator{Factor: 4}, in)
	if err != nil {
		t.Fatal(err)
	}
	if xorCost != 0.75 {
		t.Errorf("XOR factor-4 cost = %v, want exactly 0.75", xorCost)
	}
	if _, err := ThroughputCost(VonNeumann{}, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCorrectorsRejectInvalidBits(t *testing.T) {
	bad := []byte{0, 1, 2}
	for _, c := range []Corrector{VonNeumann{}, XORDecimator{Factor: 2}, SHA256Conditioner{InputBlockBits: 256}} {
		if _, err := c.Process(bad); err == nil {
			t.Errorf("%s accepted invalid bit values", c.Name())
		}
		if c.Name() == "" {
			t.Error("corrector has empty name")
		}
	}
}

func TestVonNeumannOutputBitsAreValidProperty(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		out, err := VonNeumann{}.Process(bits)
		if err != nil {
			return false
		}
		for _, b := range out {
			if b > 1 {
				return false
			}
		}
		return len(out) <= len(bits)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
