package postproc

import (
	"crypto/sha256"
	"fmt"
	"math/bits"
)

// Packed is an MSB-first packed bitstream: bit i of the stream lives in
// Data[i/8] at position 7-i%8 — the same byte encoding the generator's Read
// path serves. Len is the number of valid bits; bits of Data past Len are
// zero (every constructor below maintains the invariant, which lets appends
// OR bytes together without masking).
//
// Packed is the native currency of the packed post-processing path: raw
// harvested bytes flow through PackedCorrector stages without ever being
// expanded to the legacy one-bit-per-byte representation.
type Packed struct {
	Data []byte
	Len  int
}

// PackedCorrector is a Corrector with a packed fast path. Process and
// ProcessPacked must implement the same transformation bit for bit; the
// equivalence is pinned by property tests. All built-in correctors implement
// it; correctors of unknown provenance are fed through Process with an
// unpack/repack adapter.
type PackedCorrector interface {
	Corrector
	// ProcessPacked returns the corrected bitstream of in, packed.
	ProcessPacked(in Packed) (Packed, error)
}

// PackBits packs a bit-per-byte stream (values 0 or 1).
func PackBits(bitstream []byte) Packed {
	p := Packed{Data: make([]byte, 0, (len(bitstream)+7)/8)}
	for _, b := range bitstream {
		p.AppendBit(b & 1)
	}
	return p
}

// Unpack expands to the legacy one-bit-per-byte representation.
func (p Packed) Unpack() []byte {
	out := make([]byte, p.Len)
	for i := range out {
		out[i] = p.Bit(i)
	}
	return out
}

// Bit returns bit i (0 or 1).
func (p Packed) Bit(i int) byte {
	return (p.Data[i>>3] >> uint(7-i&7)) & 1
}

// Chunk returns n bits (n <= 64) starting at bit off, with the first bit of
// the stream as the most significant bit of the n-bit result — the value the
// bits spell read in order.
func (p Packed) Chunk(off, n int) uint64 {
	var v uint64
	for n > 0 {
		b := p.Data[off>>3]
		avail := 8 - off&7
		take := n
		if take > avail {
			take = avail
		}
		v = v<<uint(take) | uint64(b>>uint(avail-take))&(1<<uint(take)-1)
		off += take
		n -= take
	}
	return v
}

// Slice returns an independent copy of n bits starting at bit off, re-aligned
// to bit 0.
func (p Packed) Slice(off, n int) Packed {
	out := Packed{Data: make([]byte, 0, (n+7)/8)}
	for n > 0 {
		take := n
		if take > 64 {
			take = 64
		}
		out.AppendChunk(p.Chunk(off, take), take)
		off += take
		n -= take
	}
	return out
}

// AppendBit appends one bit (0 or 1).
func (p *Packed) AppendBit(b byte) {
	if p.Len&7 == 0 {
		p.Data = append(p.Data, 0)
	}
	p.Data[p.Len>>3] |= (b & 1) << uint(7-p.Len&7)
	p.Len++
}

// AppendChunk appends the low n bits of v (n <= 64), most significant first —
// the inverse of Chunk.
func (p *Packed) AppendChunk(v uint64, n int) {
	for n > 0 {
		if p.Len&7 == 0 {
			p.Data = append(p.Data, 0)
		}
		free := 8 - p.Len&7
		take := n
		if take > free {
			take = free
		}
		chunk := byte(v>>uint(n-take)) & (1<<uint(take) - 1)
		p.Data[p.Len>>3] |= chunk << uint(free-take)
		p.Len += take
		n -= take
	}
}

// Append appends all of q's bits.
func (p *Packed) Append(q Packed) {
	if p.Len&7 == 0 {
		// Byte-aligned bulk append; q's invariant zeroes past Len make the
		// trailing partial byte safe to copy as-is.
		p.Data = append(p.Data[:p.Len>>3], q.Data[:(q.Len+7)>>3]...)
		p.Len += q.Len
		return
	}
	for off := 0; off < q.Len; off += 64 {
		n := q.Len - off
		if n > 64 {
			n = 64
		}
		p.AppendChunk(q.Chunk(off, n), n)
	}
}

// vnEmit/vnCount tabulate the von Neumann corrector over one byte (four
// aligned bit pairs): vnEmit[b] holds the emitted bits (first emitted bit
// most significant) and vnCount[b] how many there are.
var (
	vnEmit  [256]byte
	vnCount [256]uint8
)

func init() {
	for b := 0; b < 256; b++ {
		var out byte
		n := 0
		for pair := 0; pair < 4; pair++ {
			a := byte(b>>uint(7-2*pair)) & 1
			c := byte(b>>uint(6-2*pair)) & 1
			if a != c {
				out = out<<1 | a
				n++
			}
		}
		vnEmit[b] = out
		vnCount[b] = uint8(n)
	}
}

// ProcessPacked implements PackedCorrector: the von Neumann corrector over a
// packed stream via table-driven pairwise bit extraction, one input byte
// (four pairs) at a time.
//
//drange:noalloc amortized
func (VonNeumann) ProcessPacked(in Packed) (Packed, error) {
	out := Packed{Data: make([]byte, 0, (in.Len/4+7)/8)}
	pairsBits := in.Len &^ 1 // Process ignores a trailing odd bit
	i := 0
	for ; i+8 <= pairsBits; i += 8 {
		b := in.Data[i>>3]
		if n := int(vnCount[b]); n > 0 {
			out.AppendChunk(uint64(vnEmit[b]), n)
		}
	}
	for ; i < pairsBits; i += 2 {
		a, c := in.Bit(i), in.Bit(i+1)
		if a != c {
			out.AppendBit(a)
		}
	}
	return out, nil
}

// ProcessPacked implements PackedCorrector: XOR decimation as parity folds
// over packed chunks.
//
//drange:noalloc amortized
func (x XORDecimator) ProcessPacked(in Packed) (Packed, error) {
	if x.Factor < 2 {
		return Packed{}, fmt.Errorf("postproc: XOR decimation factor must be at least 2, got %d", x.Factor)
	}
	out := Packed{Data: make([]byte, 0, (in.Len/x.Factor+7)/8)}
	for off := 0; off+x.Factor <= in.Len; off += x.Factor {
		ones := 0
		for j := 0; j < x.Factor; j += 64 {
			n := x.Factor - j
			if n > 64 {
				n = 64
			}
			ones += bits.OnesCount64(in.Chunk(off+j, n))
		}
		out.AppendBit(byte(ones & 1))
	}
	return out, nil
}

// ProcessPacked implements PackedCorrector: SHA-256 conditioning hashing the
// packed block bytes directly — zero re-encoding when blocks are byte-aligned.
//
//drange:noalloc amortized
func (s SHA256Conditioner) ProcessPacked(in Packed) (Packed, error) {
	if s.InputBlockBits < 256 {
		return Packed{}, fmt.Errorf("postproc: SHA-256 input block must be at least 256 bits, got %d", s.InputBlockBits)
	}
	blocks := in.Len / s.InputBlockBits
	out := Packed{Data: make([]byte, 0, blocks*sha256.Size)}
	var scratch []byte
	for i := 0; i < blocks; i++ {
		off := i * s.InputBlockBits
		var digest [sha256.Size]byte
		if off&7 == 0 && s.InputBlockBits&7 == 0 {
			digest = sha256.Sum256(in.Data[off>>3 : (off+s.InputBlockBits)>>3])
		} else {
			// Misaligned block: repack it the way the legacy corrector does —
			// full bytes MSB-first, a trailing partial byte right-aligned.
			scratch = scratch[:0]
			j := 0
			for ; j+8 <= s.InputBlockBits; j += 8 {
				scratch = append(scratch, byte(in.Chunk(off+j, 8)))
			}
			if r := s.InputBlockBits - j; r > 0 {
				scratch = append(scratch, byte(in.Chunk(off+j, r)))
			}
			digest = sha256.Sum256(scratch)
		}
		out.Data = append(out.Data, digest[:]...)
		out.Len += 8 * sha256.Size
	}
	return out, nil
}

var (
	_ PackedCorrector = VonNeumann{}
	_ PackedCorrector = XORDecimator{}
	_ PackedCorrector = SHA256Conditioner{}
)
