package timing

import "fmt"

// BankFSM tracks the timing state of a single bank: which row (if any) is
// open, and the earliest cycle at which each class of follow-up command may
// legally be issued. All cycle values are absolute command-clock cycles.
type BankFSM struct {
	params Params

	// Cached cycle conversions of the fixed parameters. Params conversions
	// copy the whole parameter struct per call, which shows up in the
	// per-sample hot path; converting once here keeps command application to
	// integer adds.
	cTRCD, cTRAS, cTRC, cTCL, cTCCD, cTRTP int64
	cTCWL, cTWR, cTWTR, cTRP, cTRFC        int64
	cBurst                                 int64

	state   BankState
	openRow int

	// Earliest legal issue cycles for the next command of each class.
	nextACT   int64
	nextPRE   int64
	nextRead  int64
	nextWrite int64

	// lastACTCycle is the cycle of the most recent ACT (for tRAS/tRC
	// accounting).
	lastACTCycle int64

	// lastACTReducedTRCD records the tRCD override (ns) attached to the most
	// recent ACT, or 0 for the default.
	lastACTReducedTRCD float64
}

// NewBankFSM returns a bank in the precharged state with no pending
// constraints.
func NewBankFSM(p Params) *BankFSM {
	return &BankFSM{
		params:       p,
		cTRCD:        p.Cycles(p.TRCD),
		cTRAS:        p.Cycles(p.TRAS),
		cTRC:         p.Cycles(p.TRC),
		cTCL:         p.Cycles(p.TCL),
		cTCCD:        p.Cycles(p.TCCD),
		cTRTP:        p.Cycles(p.TRTP),
		cTCWL:        p.Cycles(p.TCWL),
		cTWR:         p.Cycles(p.TWR),
		cTWTR:        p.Cycles(p.TWTR),
		cTRP:         p.Cycles(p.TRP),
		cTRFC:        p.Cycles(p.TRFC),
		cBurst:       p.BurstCycles(),
		state:        BankPrecharged,
		openRow:      -1,
		lastACTCycle: -1 << 60,
	}
}

// State returns the current row-buffer state, resolving the transient
// activating/precharging states against the supplied current cycle.
func (b *BankFSM) State(now int64) BankState {
	switch b.state {
	case BankActivating:
		if now >= b.nextRead {
			return BankActive
		}
		return BankActivating
	case BankPrecharging:
		if now >= b.nextACT {
			return BankPrecharged
		}
		return BankPrecharging
	default:
		return b.state
	}
}

// OpenRow returns the currently open row, or -1 when the bank is precharged.
func (b *BankFSM) OpenRow() int {
	if b.state == BankActive || b.state == BankActivating {
		return b.openRow
	}
	return -1
}

// EarliestACT returns the earliest cycle at which an ACT may be issued.
func (b *BankFSM) EarliestACT() int64 { return b.nextACT }

// EarliestRead returns the earliest cycle at which a READ may be issued to
// the open row (meaningful only when a row is open or opening).
func (b *BankFSM) EarliestRead() int64 { return b.nextRead }

// EarliestWrite returns the earliest cycle at which a WRITE may be issued.
func (b *BankFSM) EarliestWrite() int64 { return b.nextWrite }

// EarliestPRE returns the earliest cycle at which a PRE may be issued.
func (b *BankFSM) EarliestPRE() int64 { return b.nextPRE }

// LastACTReducedTRCD returns the tRCD override attached to the most recent
// ACT (0 when the default applied).
func (b *BankFSM) LastACTReducedTRCD() float64 { return b.lastACTReducedTRCD }

// Activate applies an ACT command at cycle now opening row. reducedTRCDNS,
// when positive, replaces the default tRCD for the purposes of the
// READ-ready constraint; the actual correctness consequence of violating the
// real tRCD is modelled by the DRAM device, not here. It returns a Violation
// (with Intentional()==true for reduced tRCD) when the command is issued
// before a constraint allows; a nil *Violation means the command was fully
// legal.
func (b *BankFSM) Activate(now int64, row int, reducedTRCDNS float64) (*Violation, error) {
	if row < 0 {
		return nil, fmt.Errorf("timing: activate of negative row %d", row)
	}
	if b.state == BankActive || b.state == BankActivating {
		return nil, fmt.Errorf("timing: activate issued to bank with open row %d (state %v)", b.openRow, b.state)
	}
	var viol *Violation
	if now < b.nextACT {
		viol = &Violation{Parameter: "tRP/tRC", RequiredCycle: b.nextACT, ActualCycle: now,
			Command: Command{Kind: CmdACT, Row: row, IssueCycle: now}}
	}

	cTRCD := b.cTRCD
	if reducedTRCDNS > 0 {
		cTRCD = b.params.Cycles(reducedTRCDNS)
	}
	b.state = BankActivating
	b.openRow = row
	b.lastACTCycle = now
	b.lastACTReducedTRCD = reducedTRCDNS

	b.nextRead = now + cTRCD
	b.nextWrite = now + cTRCD
	b.nextPRE = now + b.cTRAS
	b.nextACT = now + b.cTRC
	return viol, nil
}

// Read applies a READ command at cycle now. It returns the cycle at which the
// burst completes on the data bus, plus a Violation when the READ arrives
// before the (possibly reduced) activation latency elapsed.
func (b *BankFSM) Read(now int64) (dataDoneCycle int64, viol *Violation, err error) {
	if b.state != BankActive && b.state != BankActivating {
		return 0, nil, fmt.Errorf("timing: read issued to bank in state %v", b.state)
	}
	if now < b.nextRead {
		viol = &Violation{Parameter: "tRCD", RequiredCycle: b.nextRead, ActualCycle: now,
			Command: Command{Kind: CmdRead, Row: b.openRow, IssueCycle: now}}
	}
	b.state = BankActive
	dataDoneCycle = now + b.cTCL + b.cBurst
	// A subsequent read must respect tCCD; a precharge must respect tRTP and
	// tRAS (already captured in nextPRE).
	if nr := now + b.cTCCD; nr > b.nextRead {
		b.nextRead = nr
	}
	if nw := now + b.cTCCD; nw > b.nextWrite {
		b.nextWrite = nw
	}
	if np := now + b.cTRTP; np > b.nextPRE {
		b.nextPRE = np
	}
	return dataDoneCycle, viol, nil
}

// Write applies a WRITE command at cycle now. It returns the cycle at which
// the write data has been fully restored (write recovery complete).
func (b *BankFSM) Write(now int64) (writeDoneCycle int64, viol *Violation, err error) {
	if b.state != BankActive && b.state != BankActivating {
		return 0, nil, fmt.Errorf("timing: write issued to bank in state %v", b.state)
	}
	if now < b.nextWrite {
		viol = &Violation{Parameter: "tRCD", RequiredCycle: b.nextWrite, ActualCycle: now,
			Command: Command{Kind: CmdWrite, Row: b.openRow, IssueCycle: now}}
	}
	b.state = BankActive
	writeDoneCycle = now + b.cTCWL + b.cBurst + b.cTWR
	if nr := now + b.cTCWL + b.cBurst + b.cTWTR; nr > b.nextRead {
		b.nextRead = nr
	}
	if nw := now + b.cTCCD; nw > b.nextWrite {
		b.nextWrite = nw
	}
	if np := writeDoneCycle; np > b.nextPRE {
		b.nextPRE = np
	}
	return writeDoneCycle, viol, nil
}

// Precharge applies a PRE command at cycle now, closing the open row.
func (b *BankFSM) Precharge(now int64) (*Violation, error) {
	if b.state == BankPrecharged || b.state == BankPrecharging {
		// Precharging an already-precharged bank is legal (NOP-like) in real
		// controllers; treat it as a no-op.
		return nil, nil
	}
	var viol *Violation
	if now < b.nextPRE {
		viol = &Violation{Parameter: "tRAS/tRTP/tWR", RequiredCycle: b.nextPRE, ActualCycle: now,
			Command: Command{Kind: CmdPRE, Row: b.openRow, IssueCycle: now}}
	}
	b.state = BankPrecharging
	b.openRow = -1
	if na := now + b.cTRP; na > b.nextACT {
		b.nextACT = na
	}
	return viol, nil
}

// Refresh applies an all-bank refresh affecting this bank at cycle now. The
// bank must be precharged.
func (b *BankFSM) Refresh(now int64) (*Violation, error) {
	if b.state == BankActive || b.state == BankActivating {
		return nil, fmt.Errorf("timing: refresh issued while row %d open", b.openRow)
	}
	var viol *Violation
	if now < b.nextACT {
		viol = &Violation{Parameter: "tRP", RequiredCycle: b.nextACT, ActualCycle: now,
			Command: Command{Kind: CmdRefresh, IssueCycle: now}}
	}
	if na := now + b.cTRFC; na > b.nextACT {
		b.nextACT = na
	}
	return viol, nil
}
