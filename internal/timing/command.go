package timing

import "fmt"

// CommandKind enumerates the DRAM commands the memory controller can issue.
type CommandKind int

const (
	// CmdACT opens (activates) a row in a bank.
	CmdACT CommandKind = iota
	// CmdPRE closes (precharges) the open row in a bank.
	CmdPRE
	// CmdRead reads one DRAM word (a burst) from the open row.
	CmdRead
	// CmdWrite writes one DRAM word (a burst) into the open row.
	CmdWrite
	// CmdRefresh performs an all-bank refresh.
	CmdRefresh
)

// String implements fmt.Stringer.
func (k CommandKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRead:
		return "READ"
	case CmdWrite:
		return "WRITE"
	case CmdRefresh:
		return "REF"
	default:
		return fmt.Sprintf("CommandKind(%d)", int(k))
	}
}

// Command is a single DRAM command as placed on the command bus.
type Command struct {
	Kind    CommandKind
	Channel int
	Rank    int
	Bank    int
	Row     int
	// Column is the column address in DRAM-word (burst) granularity.
	Column int
	// IssueCycle is the command-clock cycle at which the controller issued
	// the command. Filled in by the scheduler/simulator.
	IssueCycle int64
	// TRCDOverrideNS, when positive, records the reduced activation latency
	// in effect for the READ that follows this ACT. Zero means the default
	// tRCD of the rank's register file applies.
	TRCDOverrideNS float64
}

// String implements fmt.Stringer.
func (c Command) String() string {
	return fmt.Sprintf("%s ch%d rk%d bk%d row%d col%d @%d", c.Kind, c.Channel, c.Rank, c.Bank, c.Row, c.Column, c.IssueCycle)
}

// BankState is the state of a single DRAM bank's row buffer.
type BankState int

const (
	// BankPrecharged means no row is open; an ACT is required before
	// column accesses.
	BankPrecharged BankState = iota
	// BankActivating means an ACT has been issued and the row is being
	// opened (tRCD has not yet elapsed).
	BankActivating
	// BankActive means a row is open and column commands may be issued.
	BankActive
	// BankPrecharging means a PRE has been issued and tRP has not yet
	// elapsed.
	BankPrecharging
)

// String implements fmt.Stringer.
func (s BankState) String() string {
	switch s {
	case BankPrecharged:
		return "precharged"
	case BankActivating:
		return "activating"
	case BankActive:
		return "active"
	case BankPrecharging:
		return "precharging"
	default:
		return fmt.Sprintf("BankState(%d)", int(s))
	}
}

// Violation describes a timing-parameter violation detected when a command
// is issued earlier than the relevant constraint allows. D-RaNGe provokes
// tRCD violations on purpose; all others indicate controller bugs.
type Violation struct {
	Parameter string
	// RequiredCycle is the earliest legal issue cycle.
	RequiredCycle int64
	// ActualCycle is the cycle the command was issued at.
	ActualCycle int64
	Command     Command
}

// Error implements the error interface so violations can flow through error
// paths when they are not intentional.
func (v Violation) Error() string {
	return fmt.Sprintf("timing violation of %s: command %v issued at cycle %d, earliest legal cycle %d",
		v.Parameter, v.Command, v.ActualCycle, v.RequiredCycle)
}

// Intentional reports whether the violation is of the kind D-RaNGe induces
// deliberately (a reduced activation latency).
func (v Violation) Intentional() bool {
	return v.Parameter == "tRCD"
}
