// Package timing defines DRAM command types, JEDEC-style timing parameters,
// and the bank state machine rules that the memory controller and the cycle
// simulator share.
//
// All durations are expressed both in nanoseconds (float64) and in DRAM clock
// cycles (int64) for the configured clock. The paper (D-RaNGe, HPCA 2019)
// manipulates the tRCD parameter specifically; every other parameter is kept
// at its standard value so that the surrounding system behaves like a
// commodity part.
package timing

import (
	"fmt"
	"math"
)

// DeviceType identifies the DRAM standard a timing set belongs to.
type DeviceType int

const (
	// LPDDR4 is the Low Power DDR4 standard used for the 282-chip study.
	LPDDR4 DeviceType = iota
	// DDR3 is the standard used for the 4-chip cross-validation study.
	DDR3
)

// String implements fmt.Stringer.
func (d DeviceType) String() string {
	switch d {
	case LPDDR4:
		return "LPDDR4"
	case DDR3:
		return "DDR3"
	default:
		return fmt.Sprintf("DeviceType(%d)", int(d))
	}
}

// Params is a complete set of DRAM timing parameters. Times are in
// nanoseconds. The zero value is not usable; construct with NewLPDDR4 or
// NewDDR3 (or build a literal and call Validate).
type Params struct {
	Type DeviceType

	// ClockNS is the duration of one DRAM command-bus clock cycle in
	// nanoseconds (e.g. 0.625 ns for LPDDR4-3200).
	ClockNS float64

	// DataRate is the number of data transfers per clock (2 for DDR).
	DataRate int

	// BusWidthBits is the channel data-bus width in bits.
	BusWidthBits int

	// BurstLength is the number of data-bus beats per READ/WRITE.
	BurstLength int

	// Core timing parameters (nanoseconds).
	TRCD  float64 // ACT to READ/WRITE delay
	TRAS  float64 // ACT to PRE minimum
	TRP   float64 // PRE to ACT minimum
	TCL   float64 // READ to data (CAS latency)
	TCWL  float64 // WRITE to data
	TRC   float64 // ACT to ACT, same bank
	TRRD  float64 // ACT to ACT, different banks
	TFAW  float64 // four-activate window
	TCCD  float64 // READ to READ (column to column)
	TWR   float64 // write recovery
	TWTR  float64 // write to read turnaround
	TRTP  float64 // read to precharge
	TRFC  float64 // refresh cycle time
	TREFI float64 // average refresh interval
}

// NewLPDDR4 returns the timing parameters of an LPDDR4-3200 device, the
// configuration characterized in the paper (default tRCD = 18 ns).
func NewLPDDR4() Params {
	return Params{
		Type:         LPDDR4,
		ClockNS:      0.625, // 1600 MHz command clock, 3200 MT/s
		DataRate:     2,
		BusWidthBits: 16,
		BurstLength:  16,
		TRCD:         18.0,
		TRAS:         42.0,
		TRP:          18.0,
		TCL:          17.5,
		TCWL:         11.0,
		TRC:          60.0,
		TRRD:         10.0,
		TFAW:         40.0,
		TCCD:         5.0,
		TWR:          18.0,
		TWTR:         10.0,
		TRTP:         7.5,
		TRFC:         180.0,
		TREFI:        3904.0,
	}
}

// NewDDR3 returns the timing parameters of a DDR3-1600 device, matching the
// SoftMC-based cross-validation platform.
func NewDDR3() Params {
	return Params{
		Type:         DDR3,
		ClockNS:      1.25, // 800 MHz command clock, 1600 MT/s
		DataRate:     2,
		BusWidthBits: 64,
		BurstLength:  8,
		TRCD:         13.75,
		TRAS:         35.0,
		TRP:          13.75,
		TCL:          13.75,
		TCWL:         10.0,
		TRC:          48.75,
		TRRD:         6.0,
		TFAW:         30.0,
		TCCD:         5.0,
		TWR:          15.0,
		TWTR:         7.5,
		TRTP:         7.5,
		TRFC:         260.0,
		TREFI:        7800.0,
	}
}

// Validate reports an error if the parameter set is internally inconsistent.
func (p Params) Validate() error {
	if p.ClockNS <= 0 {
		return fmt.Errorf("timing: clock period must be positive, got %v", p.ClockNS)
	}
	if p.DataRate <= 0 {
		return fmt.Errorf("timing: data rate must be positive, got %d", p.DataRate)
	}
	if p.BusWidthBits <= 0 {
		return fmt.Errorf("timing: bus width must be positive, got %d", p.BusWidthBits)
	}
	if p.BurstLength <= 0 {
		return fmt.Errorf("timing: burst length must be positive, got %d", p.BurstLength)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"tRCD", p.TRCD}, {"tRAS", p.TRAS}, {"tRP", p.TRP}, {"tCL", p.TCL},
		{"tCWL", p.TCWL}, {"tRC", p.TRC}, {"tRRD", p.TRRD}, {"tFAW", p.TFAW},
		{"tCCD", p.TCCD}, {"tWR", p.TWR}, {"tWTR", p.TWTR}, {"tRTP", p.TRTP},
		{"tRFC", p.TRFC}, {"tREFI", p.TREFI},
	} {
		if c.v <= 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("timing: %s must be positive and finite, got %v", c.name, c.v)
		}
	}
	if p.TRC < p.TRAS+p.TRP {
		return fmt.Errorf("timing: tRC (%v) must be at least tRAS+tRP (%v)", p.TRC, p.TRAS+p.TRP)
	}
	return nil
}

// Cycles converts a duration in nanoseconds to a whole number of DRAM clock
// cycles, rounding up (the controller can only wait integral cycles).
func (p Params) Cycles(ns float64) int64 {
	if ns <= 0 {
		return 0
	}
	return int64(math.Ceil(ns/p.ClockNS - 1e-9))
}

// NS converts a cycle count back into nanoseconds.
func (p Params) NS(cycles int64) float64 {
	return float64(cycles) * p.ClockNS
}

// BurstCycles returns the number of command-clock cycles the data bus is
// occupied by one READ or WRITE burst.
func (p Params) BurstCycles() int64 {
	beats := p.BurstLength
	c := beats / p.DataRate
	if beats%p.DataRate != 0 {
		c++
	}
	if c < 1 {
		c = 1
	}
	return int64(c)
}

// WordBits returns the number of data bits transferred by a single READ
// burst on one channel: the DRAM word granularity from the paper
// (64 bytes on a 64-bit wide rank; 32 bytes per x16 LPDDR4 channel burst
// of 16).
func (p Params) WordBits() int {
	return p.BusWidthBits * p.BurstLength
}

// WithTRCD returns a copy of the parameters with tRCD replaced. It is the
// programmable-register operation D-RaNGe relies on.
func (p Params) WithTRCD(ns float64) Params {
	p.TRCD = ns
	return p
}

// BandwidthBitsPerNS returns the peak data-bus bandwidth in bits per
// nanosecond for one channel.
func (p Params) BandwidthBitsPerNS() float64 {
	return float64(p.BusWidthBits) * float64(p.DataRate) / p.ClockNS
}
