package timing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewLPDDR4Valid(t *testing.T) {
	p := NewLPDDR4()
	if err := p.Validate(); err != nil {
		t.Fatalf("LPDDR4 params invalid: %v", err)
	}
	if p.Type != LPDDR4 {
		t.Errorf("Type = %v, want LPDDR4", p.Type)
	}
	if p.TRCD != 18.0 {
		t.Errorf("default tRCD = %v, want 18 ns", p.TRCD)
	}
}

func TestNewDDR3Valid(t *testing.T) {
	p := NewDDR3()
	if err := p.Validate(); err != nil {
		t.Fatalf("DDR3 params invalid: %v", err)
	}
	if p.Type != DDR3 {
		t.Errorf("Type = %v, want DDR3", p.Type)
	}
	if p.BusWidthBits != 64 {
		t.Errorf("DDR3 bus width = %d, want 64", p.BusWidthBits)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero clock", func(p *Params) { p.ClockNS = 0 }},
		{"negative tRCD", func(p *Params) { p.TRCD = -1 }},
		{"zero tRAS", func(p *Params) { p.TRAS = 0 }},
		{"NaN tRP", func(p *Params) { p.TRP = math.NaN() }},
		{"inf tCL", func(p *Params) { p.TCL = math.Inf(1) }},
		{"zero data rate", func(p *Params) { p.DataRate = 0 }},
		{"zero burst length", func(p *Params) { p.BurstLength = 0 }},
		{"zero bus width", func(p *Params) { p.BusWidthBits = 0 }},
		{"tRC below tRAS+tRP", func(p *Params) { p.TRC = p.TRAS }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewLPDDR4()
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("Validate() = nil, want error for %s", tc.name)
			}
		})
	}
}

func TestCyclesRoundsUp(t *testing.T) {
	p := NewLPDDR4() // 0.625 ns clock
	cases := []struct {
		ns   float64
		want int64
	}{
		{0, 0},
		{-5, 0},
		{0.625, 1},
		{0.626, 2},
		{18.0, 29}, // 18 / 0.625 = 28.8 -> 29
		{10.0, 16},
		{6.25, 10},
	}
	for _, tc := range cases {
		if got := p.Cycles(tc.ns); got != tc.want {
			t.Errorf("Cycles(%v) = %d, want %d", tc.ns, got, tc.want)
		}
	}
}

func TestCyclesNSRoundTripProperty(t *testing.T) {
	p := NewLPDDR4()
	f := func(raw uint16) bool {
		ns := float64(raw) * 0.1
		c := p.Cycles(ns)
		// Converting back must give at least the requested duration and at
		// most one extra clock period.
		back := p.NS(c)
		return back >= ns-1e-9 && back < ns+p.ClockNS+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBurstCycles(t *testing.T) {
	lp := NewLPDDR4()
	if got := lp.BurstCycles(); got != 8 {
		t.Errorf("LPDDR4 BurstCycles = %d, want 8", got)
	}
	d3 := NewDDR3()
	if got := d3.BurstCycles(); got != 4 {
		t.Errorf("DDR3 BurstCycles = %d, want 4", got)
	}
}

func TestWordBits(t *testing.T) {
	lp := NewLPDDR4()
	if got := lp.WordBits(); got != 256 {
		t.Errorf("LPDDR4 WordBits = %d, want 256", got)
	}
	d3 := NewDDR3()
	if got := d3.WordBits(); got != 512 {
		t.Errorf("DDR3 WordBits = %d, want 512 (64 bytes)", got)
	}
}

func TestWithTRCDDoesNotMutateOriginal(t *testing.T) {
	p := NewLPDDR4()
	q := p.WithTRCD(10)
	if q.TRCD != 10 {
		t.Errorf("WithTRCD result = %v, want 10", q.TRCD)
	}
	if p.TRCD != 18 {
		t.Errorf("original mutated: tRCD = %v, want 18", p.TRCD)
	}
}

func TestBandwidth(t *testing.T) {
	p := NewLPDDR4()
	// 16 bits * 2 transfers / 0.625 ns = 51.2 bits/ns
	got := p.BandwidthBitsPerNS()
	if math.Abs(got-51.2) > 1e-9 {
		t.Errorf("BandwidthBitsPerNS = %v, want 51.2", got)
	}
}

func TestDeviceTypeString(t *testing.T) {
	if LPDDR4.String() != "LPDDR4" || DDR3.String() != "DDR3" {
		t.Errorf("unexpected DeviceType strings: %v %v", LPDDR4, DDR3)
	}
	if DeviceType(99).String() == "" {
		t.Error("unknown device type should still produce a string")
	}
}
