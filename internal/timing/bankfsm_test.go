package timing

import "testing"

func TestBankFSMInitialState(t *testing.T) {
	b := NewBankFSM(NewLPDDR4())
	if got := b.State(0); got != BankPrecharged {
		t.Fatalf("initial state = %v, want precharged", got)
	}
	if b.OpenRow() != -1 {
		t.Errorf("OpenRow = %d, want -1", b.OpenRow())
	}
}

func TestBankFSMLegalSequence(t *testing.T) {
	p := NewLPDDR4()
	b := NewBankFSM(p)

	viol, err := b.Activate(0, 42, 0)
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	if viol != nil {
		t.Fatalf("unexpected violation on first ACT: %v", viol)
	}
	if b.OpenRow() != 42 {
		t.Errorf("OpenRow = %d, want 42", b.OpenRow())
	}
	if got := b.State(0); got != BankActivating {
		t.Errorf("state right after ACT = %v, want activating", got)
	}

	// Wait the full tRCD, then READ: no violation.
	readCycle := p.Cycles(p.TRCD)
	if got := b.State(readCycle); got != BankActive {
		t.Errorf("state after tRCD = %v, want active", got)
	}
	done, viol, err := b.Read(readCycle)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if viol != nil {
		t.Errorf("unexpected violation on legal READ: %v", viol)
	}
	if done <= readCycle {
		t.Errorf("data done cycle %d not after read cycle %d", done, readCycle)
	}

	// Precharge after tRAS.
	preCycle := p.Cycles(p.TRAS)
	viol, err = b.Precharge(preCycle)
	if err != nil {
		t.Fatalf("Precharge: %v", err)
	}
	if viol != nil {
		t.Errorf("unexpected violation on legal PRE: %v", viol)
	}
	if b.OpenRow() != -1 {
		t.Errorf("OpenRow after PRE = %d, want -1", b.OpenRow())
	}

	// Activate again after tRP (and tRC from the first ACT).
	actCycle := preCycle + p.Cycles(p.TRP)
	if actCycle < p.Cycles(p.TRC) {
		actCycle = p.Cycles(p.TRC)
	}
	viol, err = b.Activate(actCycle, 7, 0)
	if err != nil {
		t.Fatalf("second Activate: %v", err)
	}
	if viol != nil {
		t.Errorf("unexpected violation on second legal ACT: %v", viol)
	}
}

func TestBankFSMEarlyReadIsTRCDViolation(t *testing.T) {
	p := NewLPDDR4()
	b := NewBankFSM(p)
	if _, err := b.Activate(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Issue the READ well before tRCD elapsed.
	_, viol, err := b.Read(2)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if viol == nil {
		t.Fatal("expected a tRCD violation, got none")
	}
	if viol.Parameter != "tRCD" || !viol.Intentional() {
		t.Errorf("violation = %+v, want intentional tRCD violation", viol)
	}
	if viol.Error() == "" {
		t.Error("violation Error() should be non-empty")
	}
}

func TestBankFSMReducedTRCDOverride(t *testing.T) {
	p := NewLPDDR4()
	b := NewBankFSM(p)
	// Activate with a reduced tRCD of 10 ns: a READ at 10 ns is then
	// "legal" from the FSM's register-file point of view.
	if _, err := b.Activate(0, 3, 10.0); err != nil {
		t.Fatal(err)
	}
	if got := b.LastACTReducedTRCD(); got != 10.0 {
		t.Errorf("LastACTReducedTRCD = %v, want 10", got)
	}
	readCycle := p.Cycles(10.0)
	_, viol, err := b.Read(readCycle)
	if err != nil {
		t.Fatal(err)
	}
	if viol != nil {
		t.Errorf("READ at reduced tRCD should not violate the programmed register, got %v", viol)
	}
}

func TestBankFSMActivateOpenBankFails(t *testing.T) {
	b := NewBankFSM(NewLPDDR4())
	if _, err := b.Activate(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Activate(5, 2, 0); err == nil {
		t.Error("activating a bank with an open row should error")
	}
}

func TestBankFSMReadPrechargedBankFails(t *testing.T) {
	b := NewBankFSM(NewLPDDR4())
	if _, _, err := b.Read(0); err == nil {
		t.Error("READ to a precharged bank should error")
	}
	if _, _, err := b.Write(0); err == nil {
		t.Error("WRITE to a precharged bank should error")
	}
}

func TestBankFSMEarlyPrechargeViolation(t *testing.T) {
	p := NewLPDDR4()
	b := NewBankFSM(p)
	if _, err := b.Activate(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	viol, err := b.Precharge(1)
	if err != nil {
		t.Fatal(err)
	}
	if viol == nil {
		t.Error("PRE before tRAS should report a violation")
	}
}

func TestBankFSMDoublePrechargeNoop(t *testing.T) {
	p := NewLPDDR4()
	b := NewBankFSM(p)
	if _, err := b.Activate(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Precharge(p.Cycles(p.TRAS)); err != nil {
		t.Fatal(err)
	}
	viol, err := b.Precharge(p.Cycles(p.TRAS) + 1)
	if err != nil {
		t.Fatalf("second PRE should be a no-op, got error %v", err)
	}
	if viol != nil {
		t.Errorf("second PRE should not violate, got %v", viol)
	}
}

func TestBankFSMRefreshRequiresPrecharged(t *testing.T) {
	p := NewLPDDR4()
	b := NewBankFSM(p)
	if _, err := b.Activate(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Refresh(10); err == nil {
		t.Error("refresh with an open row should error")
	}

	b2 := NewBankFSM(p)
	viol, err := b2.Refresh(0)
	if err != nil {
		t.Fatalf("refresh of precharged bank: %v", err)
	}
	if viol != nil {
		t.Errorf("refresh at cycle 0 should be legal, got %v", viol)
	}
	// After refresh the next ACT must wait tRFC.
	if got := b2.EarliestACT(); got != p.Cycles(p.TRFC) {
		t.Errorf("EarliestACT after REF = %d, want %d", got, p.Cycles(p.TRFC))
	}
}

func TestBankFSMWriteThenReadRespectsTurnaround(t *testing.T) {
	p := NewLPDDR4()
	b := NewBankFSM(p)
	if _, err := b.Activate(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	wCycle := p.Cycles(p.TRCD)
	done, viol, err := b.Write(wCycle)
	if err != nil {
		t.Fatal(err)
	}
	if viol != nil {
		t.Errorf("legal WRITE flagged: %v", viol)
	}
	if done <= wCycle {
		t.Errorf("write done %d not after issue %d", done, wCycle)
	}
	if b.EarliestRead() <= wCycle {
		t.Error("write-to-read turnaround not applied")
	}
}

func TestBankFSMNegativeRowRejected(t *testing.T) {
	b := NewBankFSM(NewLPDDR4())
	if _, err := b.Activate(0, -1, 0); err == nil {
		t.Error("negative row should be rejected")
	}
}

func TestBankStateStrings(t *testing.T) {
	for _, s := range []BankState{BankPrecharged, BankActivating, BankActive, BankPrecharging, BankState(42)} {
		if s.String() == "" {
			t.Errorf("BankState(%d) has empty string", int(s))
		}
	}
	for _, k := range []CommandKind{CmdACT, CmdPRE, CmdRead, CmdWrite, CmdRefresh, CommandKind(42)} {
		if k.String() == "" {
			t.Errorf("CommandKind(%d) has empty string", int(k))
		}
	}
}
