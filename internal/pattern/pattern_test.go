package pattern

import (
	"testing"
	"testing/quick"
)

func TestAllHas40Patterns(t *testing.T) {
	all := All()
	if len(all) != 40 {
		t.Fatalf("All() returned %d patterns, want 40", len(all))
	}
	names := make(map[string]bool)
	for _, p := range all {
		if names[p.String()] {
			t.Errorf("duplicate pattern name %q", p)
		}
		names[p.String()] = true
	}
	// First half must be the non-inverted patterns, second half the
	// inverses, pairwise.
	for i := 0; i < 20; i++ {
		a, b := all[i], all[i+20]
		if a.Inverted || !b.Inverted {
			t.Errorf("pattern %d inversion layout wrong: %v / %v", i, a, b)
		}
		if a.Kind != b.Kind || a.Index != b.Index {
			t.Errorf("pattern %d and its inverse differ structurally: %v / %v", i, a, b)
		}
	}
}

func TestInverseFlipsEveryBit(t *testing.T) {
	f := func(kindRaw uint8, idx uint8, row uint16, col uint16) bool {
		p := Pattern{Kind: Kind(kindRaw % 5), Index: int(idx % 16)}
		return p.Bit(int(row), int(col))^p.Inverse().Bit(int(row), int(col)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolidPatterns(t *testing.T) {
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			if Solid1().Bit(row, col) != 1 {
				t.Fatal("Solid1 must store 1 everywhere")
			}
			if Solid0().Bit(row, col) != 0 {
				t.Fatal("Solid0 must store 0 everywhere")
			}
		}
	}
}

func TestCheckeredAlternatesBothDirections(t *testing.T) {
	p := Checkered1()
	for row := 0; row < 8; row++ {
		for col := 0; col < 8; col++ {
			if p.Bit(row, col) == p.Bit(row, col+1) {
				t.Fatalf("checkered does not alternate across columns at (%d,%d)", row, col)
			}
			if p.Bit(row, col) == p.Bit(row+1, col) {
				t.Fatalf("checkered does not alternate across rows at (%d,%d)", row, col)
			}
		}
	}
	if Checkered0().Bit(0, 0) != 0 || Checkered1().Bit(0, 0) != 1 {
		t.Error("checkered polarity at origin wrong")
	}
}

func TestStripePatterns(t *testing.T) {
	rs := Pattern{Kind: KindRowStripe}
	cs := Pattern{Kind: KindColStripe}
	for row := 0; row < 8; row++ {
		for col := 0; col < 8; col++ {
			if rs.Bit(row, col) != uint64(row&1) {
				t.Fatalf("row stripe wrong at (%d,%d)", row, col)
			}
			if cs.Bit(row, col) != uint64(col&1) {
				t.Fatalf("col stripe wrong at (%d,%d)", row, col)
			}
		}
	}
}

func TestWalkingPatternsHaveExactlyOneOnePerPeriod(t *testing.T) {
	for k := 0; k < 16; k++ {
		p := Walking1(k)
		count := 0
		for col := 0; col < 16; col++ {
			if p.Bit(0, col) == 1 {
				count++
				if col != k {
					t.Errorf("WALK1_%d has its 1 at column %d", k, col)
				}
			}
		}
		if count != 1 {
			t.Errorf("WALK1_%d has %d ones per period, want 1", k, count)
		}
		// The walking-0 counterpart must have exactly one 0 per period.
		q := Walking0(k)
		zeros := 0
		for col := 0; col < 16; col++ {
			if q.Bit(0, col) == 0 {
				zeros++
			}
		}
		if zeros != 1 {
			t.Errorf("WALK0_%d has %d zeros per period, want 1", k, zeros)
		}
	}
}

func TestFillRowMatchesBit(t *testing.T) {
	for _, p := range All() {
		row := 3
		data, err := p.FillRow(row, 256)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		for col := 0; col < 256; col++ {
			got := (data[col>>6] >> uint(col&63)) & 1
			if got != p.Bit(row, col) {
				t.Fatalf("%v: FillRow bit %d = %d, Bit = %d", p, col, got, p.Bit(row, col))
			}
		}
	}
}

func TestFillRowRejectsBadWidth(t *testing.T) {
	if _, err := Solid0().FillRow(0, 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Solid0().FillRow(0, 100); err == nil {
		t.Error("non-multiple-of-64 width accepted")
	}
}

func TestWalkingSet(t *testing.T) {
	ones := WalkingSet(false)
	zeros := WalkingSet(true)
	if len(ones) != 16 || len(zeros) != 16 {
		t.Fatalf("walking sets have %d and %d patterns, want 16 each", len(ones), len(zeros))
	}
	for i, p := range ones {
		if p.Inverted || p.Index != i {
			t.Errorf("walking-1 set entry %d = %v", i, p)
		}
	}
	for i, p := range zeros {
		if !p.Inverted || p.Index != i {
			t.Errorf("walking-0 set entry %d = %v", i, p)
		}
	}
}

func TestBestFor(t *testing.T) {
	if BestFor("A") != Solid0() {
		t.Error("BestFor(A) should be SOLID0")
	}
	if BestFor("B") != Checkered0() {
		t.Error("BestFor(B) should be CHECKERED0")
	}
	if BestFor("C") != Solid0() {
		t.Error("BestFor(C) should be SOLID0")
	}
}

func TestStringNames(t *testing.T) {
	cases := map[string]Pattern{
		"SOLID1":     Solid1(),
		"SOLID0":     Solid0(),
		"CHECKERED0": Checkered0(),
		"WALK1_5":    Walking1(5),
		"WALK0_11":   Walking0(11),
		"ROWSTRIPE1": {Kind: KindRowStripe},
		"COLSTRIPE0": {Kind: KindColStripe, Inverted: true},
	}
	for want, p := range cases {
		if p.String() != want {
			t.Errorf("String() = %q, want %q", p.String(), want)
		}
	}
}
