// Package pattern implements the 40 DRAM data patterns used by the paper's
// characterization methodology (Section 5.2): solid, checkered, row stripe,
// column stripe, the 16 walking-1s, and the inverses of all of these. A data
// pattern defines the value written to every cell of the DRAM region under
// test before activation failures are induced, and therefore controls which
// cells are exposed as failure-prone.
package pattern

import "fmt"

// Kind identifies the family of a data pattern.
type Kind int

const (
	// KindSolid is an all-ones pattern (or all-zeros when inverted).
	KindSolid Kind = iota
	// KindCheckered alternates values in both the row and column directions.
	KindCheckered
	// KindRowStripe alternates values between adjacent rows.
	KindRowStripe
	// KindColStripe alternates values between adjacent columns.
	KindColStripe
	// KindWalking places a single one (or zero, when inverted) every
	// walkPeriod columns, at an offset identified by Index.
	KindWalking
)

// walkPeriod is the period of the walking patterns: a walking-1 pattern k
// sets column c to 1 exactly when c mod walkPeriod == k.
const walkPeriod = 16

// Pattern is one of the characterization data patterns. The zero value is
// the solid-1s pattern.
type Pattern struct {
	Kind Kind
	// Index selects which of the 16 walking patterns this is; unused for
	// other kinds.
	Index int
	// Inverted selects the bitwise inverse of the base pattern.
	Inverted bool
}

// String implements fmt.Stringer, matching the names used in the paper's
// Figure 5 ("SOLID0", "CHECKERED1", "WALK1_3", ...).
func (p Pattern) String() string {
	suffix := "1"
	if p.Inverted {
		suffix = "0"
	}
	switch p.Kind {
	case KindSolid:
		return "SOLID" + suffix
	case KindCheckered:
		return "CHECKERED" + suffix
	case KindRowStripe:
		return "ROWSTRIPE" + suffix
	case KindColStripe:
		return "COLSTRIPE" + suffix
	case KindWalking:
		return fmt.Sprintf("WALK%s_%d", suffix, p.Index)
	default:
		return fmt.Sprintf("Pattern(%d)", int(p.Kind))
	}
}

// Bit returns the value (0 or 1) the pattern stores in the cell at
// (row, col).
func (p Pattern) Bit(row, col int) uint64 {
	var base uint64
	switch p.Kind {
	case KindSolid:
		base = 1
	case KindCheckered:
		// The non-inverted checkered pattern stores a 1 at (0,0).
		base = uint64(((row + col) & 1) ^ 1)
	case KindRowStripe:
		base = uint64(row & 1)
	case KindColStripe:
		base = uint64(col & 1)
	case KindWalking:
		if col%walkPeriod == p.Index%walkPeriod {
			base = 1
		} else {
			base = 0
		}
	default:
		base = 1
	}
	if p.Inverted {
		return base ^ 1
	}
	return base
}

// FillRow writes the pattern for the given row into a word-aligned bit
// vector of cols bits. cols must be a positive multiple of 64.
func (p Pattern) FillRow(row, cols int) ([]uint64, error) {
	if cols <= 0 || cols%64 != 0 {
		return nil, fmt.Errorf("pattern: cols must be a positive multiple of 64, got %d", cols)
	}
	out := make([]uint64, cols/64)
	for col := 0; col < cols; col++ {
		if p.Bit(row, col) != 0 {
			out[col>>6] |= 1 << uint(col&63)
		}
	}
	return out, nil
}

// Inverse returns the bitwise inverse of the pattern.
func (p Pattern) Inverse() Pattern {
	p.Inverted = !p.Inverted
	return p
}

// Solid0 is the solid-zeros pattern (the paper's best pattern for
// manufacturers A and C).
func Solid0() Pattern { return Pattern{Kind: KindSolid, Inverted: true} }

// Solid1 is the solid-ones pattern.
func Solid1() Pattern { return Pattern{Kind: KindSolid} }

// Checkered0 is the checkered pattern whose even cells store 0 (the paper's
// best pattern for manufacturer B).
func Checkered0() Pattern { return Pattern{Kind: KindCheckered, Inverted: true} }

// Checkered1 is the checkered pattern whose even cells store 1.
func Checkered1() Pattern { return Pattern{Kind: KindCheckered} }

// Walking1(k) is the k-th walking-ones pattern.
func Walking1(k int) Pattern { return Pattern{Kind: KindWalking, Index: k} }

// Walking0(k) is the k-th walking-zeros pattern.
func Walking0(k int) Pattern { return Pattern{Kind: KindWalking, Index: k, Inverted: true} }

// All returns the complete set of 40 characterization patterns in a stable
// order: solid, checkered, row stripe, column stripe, the 16 walking-1s, and
// the inverses of all of the above.
func All() []Pattern {
	var out []Pattern
	base := []Pattern{
		{Kind: KindSolid},
		{Kind: KindCheckered},
		{Kind: KindRowStripe},
		{Kind: KindColStripe},
	}
	for k := 0; k < walkPeriod; k++ {
		base = append(base, Pattern{Kind: KindWalking, Index: k})
	}
	for _, p := range base {
		out = append(out, p)
	}
	for _, p := range base {
		out = append(out, p.Inverse())
	}
	return out
}

// WalkingSet returns all 16 walking-1s patterns (inverted = false) or the 16
// walking-0s patterns (inverted = true); the paper reports their coverage as
// a single aggregated bar with min/max error bars.
func WalkingSet(inverted bool) []Pattern {
	out := make([]Pattern, 0, walkPeriod)
	for k := 0; k < walkPeriod; k++ {
		out = append(out, Pattern{Kind: KindWalking, Index: k, Inverted: inverted})
	}
	return out
}

// BestFor returns the data pattern the paper identifies as producing the
// most cells with ~50% failure probability for the given manufacturer label
// ("A", "B" or "C"): solid 0s for A and C, checkered 0s for B.
func BestFor(manufacturer string) Pattern {
	if manufacturer == "B" {
		return Checkered0()
	}
	return Solid0()
}
