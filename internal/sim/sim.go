// Package sim provides the cycle-level measurements the paper's evaluation
// needs on top of the memory-controller model: the runtime of the core loop
// of Algorithm 2 for a given number of banks (Figure 8), the latency to
// produce a 64-bit random value (Section 7.3), and the replay of workload
// traces to quantify the idle DRAM bandwidth available for random-number
// generation without slowing applications down.
package sim

import (
	"fmt"

	"repro/internal/memctrl"
	"repro/internal/workload"
)

// BankWords identifies the two DRAM words (in distinct rows of one bank)
// that Algorithm 2 alternates between so that every read immediately follows
// an activation, together with the number of RNG cells ("bits") the pair
// yields per iteration.
type BankWords struct {
	Bank  int
	Row1  int
	Word1 int
	Row2  int
	Word2 int
	// Bits is the number of RNG cells across the two words: the TRNG data
	// rate of this bank per loop iteration.
	Bits int
}

// Validate reports an error for an unusable selection.
func (b BankWords) Validate() error {
	if b.Bank < 0 {
		return fmt.Errorf("sim: negative bank %d", b.Bank)
	}
	if b.Row1 == b.Row2 {
		return fmt.Errorf("sim: the two DRAM words must be in distinct rows (both %d)", b.Row1)
	}
	if b.Row1 < 0 || b.Row2 < 0 || b.Word1 < 0 || b.Word2 < 0 {
		return fmt.Errorf("sim: negative row or word index")
	}
	if b.Bits < 0 {
		return fmt.Errorf("sim: negative bit count")
	}
	return nil
}

// LoopResult is the measured timing of the Algorithm 2 core loop.
type LoopResult struct {
	Banks             int
	Iterations        int
	TotalCycles       int64
	TotalNS           float64
	NSPerIteration    float64
	BitsPerIteration  int
	ThroughputMbps    float64
	ReadsPerIteration int
}

// MeasureAlg2Loop executes the core loop of Algorithm 2 (lines 7–15 of the
// paper) on the controller for the selected bank words, with the reduced
// activation latency trcdNS, for the given number of iterations, and
// measures its runtime. Each iteration reads and restores both DRAM words of
// every selected bank. The controller's timing registers are restored on
// return.
func MeasureAlg2Loop(ctrl *memctrl.Controller, words []BankWords, trcdNS float64, iterations int) (LoopResult, error) {
	if len(words) == 0 {
		return LoopResult{}, fmt.Errorf("sim: no bank words selected")
	}
	if iterations <= 0 {
		return LoopResult{}, fmt.Errorf("sim: iterations must be positive, got %d", iterations)
	}
	geom := ctrl.Device().Geometry()
	bits := 0
	for _, w := range words {
		if err := w.Validate(); err != nil {
			return LoopResult{}, err
		}
		if w.Bank >= geom.Banks || w.Row1 >= geom.RowsPerBank || w.Row2 >= geom.RowsPerBank ||
			w.Word1 >= geom.WordsPerRow() || w.Word2 >= geom.WordsPerRow() {
			return LoopResult{}, fmt.Errorf("sim: bank words %+v outside device geometry", w)
		}
		bits += w.Bits
	}

	// Capture the original content of each selected word so every iteration
	// can restore it, as Algorithm 2 requires (lines 10 and 14).
	type restore struct{ w1, w2 []uint64 }
	originals := make([]restore, len(words))
	nw := geom.WordBits / 64
	for i, w := range words {
		r1, err := ctrl.Device().ReadRowRaw(w.Bank, w.Row1)
		if err != nil {
			return LoopResult{}, err
		}
		r2, err := ctrl.Device().ReadRowRaw(w.Bank, w.Row2)
		if err != nil {
			return LoopResult{}, err
		}
		originals[i] = restore{
			w1: append([]uint64(nil), r1[w.Word1*nw:(w.Word1+1)*nw]...),
			w2: append([]uint64(nil), r2[w.Word2*nw:(w.Word2+1)*nw]...),
		}
	}

	if err := ctrl.SetReducedTRCD(trcdNS); err != nil {
		return LoopResult{}, err
	}
	defer ctrl.ResetTRCD()

	start := ctrl.Now()
	// Each half-iteration is issued in phases across all banks (activate
	// everything, then read everything, then restore everything) so the
	// activation latencies of different banks overlap — the bank-level
	// parallelism Algorithm 2 is designed around, and what a cycle-accurate
	// DRAM simulator observes for its command stream.
	half := func(pickRow func(BankWords) (int, int), pickOrig func(int) []uint64) error {
		for _, w := range words {
			row, _ := pickRow(w)
			if err := ctrl.ActivateRow(w.Bank, row); err != nil {
				return err
			}
		}
		for _, w := range words {
			row, word := pickRow(w)
			if _, _, err := ctrl.ReadWord(w.Bank, row, word); err != nil {
				return err
			}
		}
		for i, w := range words {
			row, word := pickRow(w)
			if _, err := ctrl.WriteWord(w.Bank, row, word, pickOrig(i)); err != nil {
				return err
			}
		}
		return nil
	}
	for it := 0; it < iterations; it++ {
		// First DRAM word of every bank, then the second word in the other
		// row: the row conflict forces a precharge and fresh activation, so
		// every read immediately follows an activation.
		if err := half(func(w BankWords) (int, int) { return w.Row1, w.Word1 },
			func(i int) []uint64 { return originals[i].w1 }); err != nil {
			return LoopResult{}, err
		}
		if err := half(func(w BankWords) (int, int) { return w.Row2, w.Word2 },
			func(i int) []uint64 { return originals[i].w2 }); err != nil {
			return LoopResult{}, err
		}
	}
	end := ctrl.SyncAllBanks()

	p := ctrl.Params()
	totalCycles := end - start
	totalNS := p.NS(totalCycles)
	perIterNS := totalNS / float64(iterations)
	res := LoopResult{
		Banks:             len(words),
		Iterations:        iterations,
		TotalCycles:       totalCycles,
		TotalNS:           totalNS,
		NSPerIteration:    perIterNS,
		BitsPerIteration:  bits,
		ReadsPerIteration: 2 * len(words),
	}
	if perIterNS > 0 {
		// bits per ns × 1000 = Mb/s.
		res.ThroughputMbps = float64(bits) / perIterNS * 1000.0
	}
	return res, nil
}

// SimulateLatency measures the time, in nanoseconds, the controller needs to
// harvest at least targetBits random bits using Algorithm 2 over the
// selected bank words with the reduced activation latency trcdNS. Bank words
// with zero bits contribute accesses but no output, matching the paper's
// worst-case latency analysis.
func SimulateLatency(ctrl *memctrl.Controller, words []BankWords, trcdNS float64, targetBits int) (float64, error) {
	if targetBits <= 0 {
		return 0, fmt.Errorf("sim: target bits must be positive, got %d", targetBits)
	}
	bitsPerIter := 0
	for _, w := range words {
		bitsPerIter += w.Bits
	}
	if bitsPerIter == 0 {
		return 0, fmt.Errorf("sim: selected words provide no RNG cells")
	}
	iterations := (targetBits + bitsPerIter - 1) / bitsPerIter
	res, err := MeasureAlg2Loop(ctrl, words, trcdNS, iterations)
	if err != nil {
		return 0, err
	}
	return res.TotalNS, nil
}

// ReplayResult summarises the replay of a workload trace through the memory
// controller.
type ReplayResult struct {
	Requests     int
	TotalNS      float64
	BusyNS       float64
	IdleFraction float64
}

// ReplayWorkload replays the request trace through the controller with
// nominal timing and measures the fraction of time the DRAM channel is left
// idle: the budget available to D-RaNGe without delaying the workload's own
// requests.
func ReplayWorkload(ctrl *memctrl.Controller, reqs []workload.Request) (ReplayResult, error) {
	if len(reqs) == 0 {
		return ReplayResult{}, fmt.Errorf("sim: empty workload trace")
	}
	geom := ctrl.Device().Geometry()
	p := ctrl.Params()
	busyCycles := int64(0)
	word := make([]uint64, geom.WordBits/64)
	for _, r := range reqs {
		if r.Bank < 0 || r.Bank >= geom.Banks || r.Row < 0 || r.Row >= geom.RowsPerBank ||
			r.WordIdx < 0 || r.WordIdx >= geom.WordsPerRow() {
			return ReplayResult{}, fmt.Errorf("sim: request %+v outside device geometry", r)
		}
		arrivalCycle := p.Cycles(r.ArrivalNS)
		if arrivalCycle > ctrl.Now() {
			ctrl.Idle(arrivalCycle - ctrl.Now())
		}
		before := ctrl.Now()
		var err error
		if r.IsWrite {
			_, err = ctrl.WriteWord(r.Bank, r.Row, r.WordIdx, word)
		} else {
			_, _, err = ctrl.ReadWord(r.Bank, r.Row, r.WordIdx)
		}
		if err != nil {
			return ReplayResult{}, err
		}
		busyCycles += ctrl.Now() - before
	}
	end := ctrl.SyncAllBanks()
	totalNS := p.NS(end)
	busyNS := p.NS(busyCycles)
	res := ReplayResult{
		Requests: len(reqs),
		TotalNS:  totalNS,
		BusyNS:   busyNS,
	}
	if totalNS > 0 {
		res.IdleFraction = 1 - busyNS/totalNS
		if res.IdleFraction < 0 {
			res.IdleFraction = 0
		}
	}
	return res, nil
}

// IdleBandwidthThroughputMbps estimates the TRNG throughput achievable by
// issuing D-RaNGe commands only in the idle DRAM cycles left by a workload:
// the standalone throughput scaled by the idle fraction, which is the model
// the paper's Section 7.3 interference study uses.
func IdleBandwidthThroughputMbps(standaloneMbps, idleFraction float64) (float64, error) {
	if standaloneMbps < 0 {
		return 0, fmt.Errorf("sim: negative standalone throughput")
	}
	if idleFraction < 0 || idleFraction > 1 {
		return 0, fmt.Errorf("sim: idle fraction %v outside [0,1]", idleFraction)
	}
	return standaloneMbps * idleFraction, nil
}
