package sim

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/workload"
)

func newController(t *testing.T) *memctrl.Controller {
	t.Helper()
	dev, err := dram.NewDevice(dram.Config{
		Serial:       77,
		Manufacturer: dram.ManufacturerA,
		Noise:        dram.NewDeterministicNoise(77),
	})
	if err != nil {
		t.Fatal(err)
	}
	return memctrl.NewController(dev)
}

func selection(banks, bitsPerBank int) []BankWords {
	words := make([]BankWords, banks)
	for b := 0; b < banks; b++ {
		words[b] = BankWords{Bank: b, Row1: 10, Word1: 0, Row2: 20, Word2: 1, Bits: bitsPerBank}
	}
	return words
}

func TestBankWordsValidate(t *testing.T) {
	good := BankWords{Bank: 0, Row1: 1, Word1: 0, Row2: 2, Word2: 0, Bits: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid selection rejected: %v", err)
	}
	cases := []BankWords{
		{Bank: -1, Row1: 1, Row2: 2},
		{Bank: 0, Row1: 5, Row2: 5},
		{Bank: 0, Row1: -1, Row2: 2},
		{Bank: 0, Row1: 1, Row2: 2, Bits: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestMeasureAlg2LoopBasic(t *testing.T) {
	ctrl := newController(t)
	res, err := MeasureAlg2Loop(ctrl, selection(1, 2), 10.0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Banks != 1 || res.Iterations != 50 {
		t.Errorf("result metadata wrong: %+v", res)
	}
	if res.NSPerIteration <= 0 || res.TotalNS <= 0 {
		t.Errorf("non-positive timing: %+v", res)
	}
	if res.ThroughputMbps <= 0 {
		t.Errorf("non-positive throughput: %+v", res)
	}
	// One iteration on one bank = two row cycles; it cannot be faster than
	// 2×tRC = 120 ns nor absurdly slow.
	if res.NSPerIteration < 100 || res.NSPerIteration > 1000 {
		t.Errorf("per-iteration time %v ns outside plausible range", res.NSPerIteration)
	}
	// The controller must be back on default timing afterwards.
	if ctrl.EffectiveTRCD() != ctrl.Params().TRCD {
		t.Error("reduced tRCD left programmed after the loop")
	}
}

func TestMeasureAlg2LoopThroughputScalesWithBanks(t *testing.T) {
	var prev float64
	for _, banks := range []int{1, 2, 4, 8} {
		ctrl := newController(t)
		res, err := MeasureAlg2Loop(ctrl, selection(banks, 2), 10.0, 30)
		if err != nil {
			t.Fatal(err)
		}
		if res.ThroughputMbps <= prev {
			t.Errorf("throughput did not increase from %v to %v Mb/s when going to %d banks", prev, res.ThroughputMbps, banks)
		}
		prev = res.ThroughputMbps
	}
}

func TestMeasureAlg2LoopThroughputScalesWithBits(t *testing.T) {
	ctrl1 := newController(t)
	one, err := MeasureAlg2Loop(ctrl1, selection(4, 1), 10.0, 30)
	if err != nil {
		t.Fatal(err)
	}
	ctrl4 := newController(t)
	four, err := MeasureAlg2Loop(ctrl4, selection(4, 4), 10.0, 30)
	if err != nil {
		t.Fatal(err)
	}
	ratio := four.ThroughputMbps / one.ThroughputMbps
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4 RNG cells per word should give ~4x throughput of 1, got %vx", ratio)
	}
}

func TestMeasureAlg2LoopRestoresData(t *testing.T) {
	ctrl := newController(t)
	dev := ctrl.Device()
	zero := make([]uint64, dev.Geometry().ColsPerRow/64)
	for _, row := range []int{10, 20} {
		if err := dev.WriteRow(0, row, zero); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MeasureAlg2Loop(ctrl, selection(1, 1), 8.0, 200); err != nil {
		t.Fatal(err)
	}
	// The loop restores the original (all-zero) content after every sample,
	// so the final stored word must be all zero again.
	for _, row := range []int{10, 20} {
		raw, err := dev.ReadRowRaw(0, row)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range raw[:4] {
			if w != 0 {
				t.Errorf("row %d word0[%d] = %x after loop, want 0 (restored)", row, i, w)
			}
		}
	}
}

func TestMeasureAlg2LoopValidation(t *testing.T) {
	ctrl := newController(t)
	if _, err := MeasureAlg2Loop(ctrl, nil, 10, 1); err == nil {
		t.Error("empty selection accepted")
	}
	if _, err := MeasureAlg2Loop(ctrl, selection(1, 1), 10, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := MeasureAlg2Loop(ctrl, selection(1, 1), 99, 1); err == nil {
		t.Error("tRCD above default accepted")
	}
	bad := selection(1, 1)
	bad[0].Row2 = bad[0].Row1
	if _, err := MeasureAlg2Loop(ctrl, bad, 10, 1); err == nil {
		t.Error("same-row selection accepted")
	}
	huge := selection(1, 1)
	huge[0].Row1 = 1 << 30
	if _, err := MeasureAlg2Loop(ctrl, huge, 10, 1); err == nil {
		t.Error("out-of-geometry selection accepted")
	}
}

func TestSimulateLatency(t *testing.T) {
	ctrl := newController(t)
	ns, err := SimulateLatency(ctrl, selection(8, 1), 10.0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ns <= 0 {
		t.Fatalf("latency = %v, want positive", ns)
	}
	// More parallelism and more bits per access must reduce latency.
	ctrlFast := newController(t)
	nsFast, err := SimulateLatency(ctrlFast, selection(8, 4), 10.0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if nsFast >= ns {
		t.Errorf("4 bits/word latency (%v) should beat 1 bit/word latency (%v)", nsFast, ns)
	}
	ctrlSlow := newController(t)
	nsSlow, err := SimulateLatency(ctrlSlow, selection(1, 1), 10.0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if nsSlow <= ns {
		t.Errorf("single-bank latency (%v) should exceed 8-bank latency (%v)", nsSlow, ns)
	}

	if _, err := SimulateLatency(ctrl, selection(1, 0), 10, 64); err == nil {
		t.Error("zero-bit selection accepted")
	}
	if _, err := SimulateLatency(ctrl, selection(1, 1), 10, 0); err == nil {
		t.Error("zero target bits accepted")
	}
}

func TestReplayWorkloadIdleFraction(t *testing.T) {
	cfg := workload.Config{Banks: 8, RowsPerBank: 1024, WordsPerRow: 32, DurationNS: 200000, Seed: 3}

	heavyReqs, err := workload.Generate(workload.Profiles()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := ReplayWorkload(newController(t), heavyReqs)
	if err != nil {
		t.Fatal(err)
	}

	lightReqs, err := workload.Generate(workload.Profiles()[len(workload.Profiles())-1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	light, err := ReplayWorkload(newController(t), lightReqs)
	if err != nil {
		t.Fatal(err)
	}

	if heavy.IdleFraction < 0 || heavy.IdleFraction > 1 || light.IdleFraction < 0 || light.IdleFraction > 1 {
		t.Fatalf("idle fractions out of range: heavy=%v light=%v", heavy.IdleFraction, light.IdleFraction)
	}
	if light.IdleFraction <= heavy.IdleFraction {
		t.Errorf("light workload should leave more idle bandwidth: heavy=%v light=%v", heavy.IdleFraction, light.IdleFraction)
	}
	if heavy.Requests != len(heavyReqs) {
		t.Errorf("request count mismatch: %d vs %d", heavy.Requests, len(heavyReqs))
	}
}

func TestReplayWorkloadValidation(t *testing.T) {
	if _, err := ReplayWorkload(newController(t), nil); err == nil {
		t.Error("empty trace accepted")
	}
	bad := []workload.Request{{Bank: 99, Row: 0, WordIdx: 0}}
	if _, err := ReplayWorkload(newController(t), bad); err == nil {
		t.Error("out-of-geometry request accepted")
	}
}

func TestIdleBandwidthThroughput(t *testing.T) {
	got, err := IdleBandwidthThroughputMbps(100, 0.5)
	if err != nil || got != 50 {
		t.Errorf("IdleBandwidthThroughputMbps(100, 0.5) = %v, %v; want 50, nil", got, err)
	}
	if _, err := IdleBandwidthThroughputMbps(-1, 0.5); err == nil {
		t.Error("negative throughput accepted")
	}
	if _, err := IdleBandwidthThroughputMbps(1, 1.5); err == nil {
		t.Error("idle fraction above 1 accepted")
	}
}
