// Package workload generates synthetic memory-request traces that stand in
// for the SPEC CPU2006 workloads of the paper's interference study
// (Section 7.3). Each profile captures one memory-behaviour archetype —
// streaming, random/pointer-chasing, or compute-bound — with a configurable
// request intensity and row locality, which is what determines how much idle
// DRAM bandwidth remains for D-RaNGe.
package workload

import (
	"fmt"
	"math"
)

// Request is one memory request of a trace.
type Request struct {
	// ArrivalNS is the request arrival time relative to the start of the
	// trace, in nanoseconds.
	ArrivalNS float64
	Bank      int
	Row       int
	// WordIdx is the DRAM-word (burst) index within the row.
	WordIdx int
	IsWrite bool
}

// Profile describes the memory behaviour of one synthetic workload.
type Profile struct {
	// Name identifies the workload (e.g. "stream-like", "mcf-like").
	Name string
	// RequestsPerMicrosecond is the average memory-request intensity.
	RequestsPerMicrosecond float64
	// RowLocality is the probability that a request hits the most recently
	// used row of its bank (open-row hit).
	RowLocality float64
	// WriteFraction is the fraction of requests that are writes.
	WriteFraction float64
}

// Profiles returns the built-in workload profiles, ordered from most to
// least memory-intensive. The set spans the range of DRAM utilisation the
// paper's SPEC CPU2006 study covers, so the idle-bandwidth throughput of
// D-RaNGe lands in a comparable band.
func Profiles() []Profile {
	return []Profile{
		{Name: "stream-like", RequestsPerMicrosecond: 28, RowLocality: 0.90, WriteFraction: 0.35},
		{Name: "mcf-like", RequestsPerMicrosecond: 22, RowLocality: 0.25, WriteFraction: 0.20},
		{Name: "lbm-like", RequestsPerMicrosecond: 18, RowLocality: 0.70, WriteFraction: 0.45},
		{Name: "omnetpp-like", RequestsPerMicrosecond: 12, RowLocality: 0.40, WriteFraction: 0.25},
		{Name: "gcc-like", RequestsPerMicrosecond: 6, RowLocality: 0.60, WriteFraction: 0.30},
		{Name: "perlbench-like", RequestsPerMicrosecond: 2.5, RowLocality: 0.75, WriteFraction: 0.30},
		{Name: "povray-like", RequestsPerMicrosecond: 0.8, RowLocality: 0.80, WriteFraction: 0.25},
	}
}

// ProfileByName returns the built-in profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Config bounds the address space of a generated trace.
type Config struct {
	Banks       int
	RowsPerBank int
	WordsPerRow int
	// DurationNS is the length of the trace in nanoseconds.
	DurationNS float64
	// Seed makes the trace reproducible.
	Seed uint64
}

// Validate reports an error for an unusable configuration.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.RowsPerBank <= 0 || c.WordsPerRow <= 0 {
		return fmt.Errorf("workload: banks/rows/words must be positive")
	}
	if c.DurationNS <= 0 {
		return fmt.Errorf("workload: duration must be positive, got %v", c.DurationNS)
	}
	return nil
}

// Generate produces a request trace for the given profile and configuration.
// Requests are returned in arrival order.
func Generate(p Profile, cfg Config) ([]Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p.RequestsPerMicrosecond < 0 {
		return nil, fmt.Errorf("workload: negative request intensity")
	}
	if p.RowLocality < 0 || p.RowLocality > 1 || p.WriteFraction < 0 || p.WriteFraction > 1 {
		return nil, fmt.Errorf("workload: locality and write fraction must be in [0,1]")
	}

	state := cfg.Seed ^ 0x9e3779b97f4a7c15
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	uniform := func() float64 { return float64(next()>>11) / float64(1<<53) }

	var out []Request
	lastRow := make([]int, cfg.Banks)
	for i := range lastRow {
		lastRow[i] = int(next()) % cfg.RowsPerBank
		if lastRow[i] < 0 {
			lastRow[i] = -lastRow[i]
		}
	}

	meanGapNS := 1e9
	if p.RequestsPerMicrosecond > 0 {
		meanGapNS = 1000.0 / p.RequestsPerMicrosecond
	}
	t := 0.0
	for {
		// Exponential inter-arrival times around the mean intensity.
		u := uniform()
		if u < 1e-12 {
			u = 1e-12
		}
		t += meanGapNS * -math.Log(u)
		if t > cfg.DurationNS {
			break
		}
		bank := int(next() % uint64(cfg.Banks))
		row := lastRow[bank]
		if uniform() > p.RowLocality {
			row = int(next() % uint64(cfg.RowsPerBank))
			lastRow[bank] = row
		}
		out = append(out, Request{
			ArrivalNS: t,
			Bank:      bank,
			Row:       row,
			WordIdx:   int(next() % uint64(cfg.WordsPerRow)),
			IsWrite:   uniform() < p.WriteFraction,
		})
	}
	return out, nil
}
