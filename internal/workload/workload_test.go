package workload

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{Banks: 8, RowsPerBank: 1024, WordsPerRow: 32, DurationNS: 100000, Seed: 1}
}

func TestProfilesDistinctAndOrdered(t *testing.T) {
	ps := Profiles()
	if len(ps) < 5 {
		t.Fatalf("want at least 5 workload profiles, got %d", len(ps))
	}
	names := make(map[string]bool)
	for i, p := range ps {
		if names[p.Name] {
			t.Errorf("duplicate profile name %q", p.Name)
		}
		names[p.Name] = true
		if i > 0 && p.RequestsPerMicrosecond > ps[i-1].RequestsPerMicrosecond {
			t.Errorf("profiles not ordered by intensity at %q", p.Name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("mcf-like")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mcf-like" {
		t.Errorf("got %q", p.Name)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	cfg := testConfig()
	for _, p := range Profiles() {
		reqs, err := Generate(p, cfg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		prev := 0.0
		for _, r := range reqs {
			if r.ArrivalNS < prev {
				t.Fatalf("%s: requests not in arrival order", p.Name)
			}
			prev = r.ArrivalNS
			if r.ArrivalNS > cfg.DurationNS {
				t.Fatalf("%s: arrival %v beyond duration", p.Name, r.ArrivalNS)
			}
			if r.Bank < 0 || r.Bank >= cfg.Banks || r.Row < 0 || r.Row >= cfg.RowsPerBank ||
				r.WordIdx < 0 || r.WordIdx >= cfg.WordsPerRow {
				t.Fatalf("%s: request out of bounds: %+v", p.Name, r)
			}
		}
	}
}

func TestGenerateIntensityScalesWithProfile(t *testing.T) {
	cfg := testConfig()
	heavy, err := Generate(Profiles()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	light, err := Generate(Profiles()[len(Profiles())-1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(heavy) <= len(light)*2 {
		t.Errorf("heavy workload (%d reqs) should be much denser than light (%d reqs)", len(heavy), len(light))
	}
	// Expected count for the heavy profile: intensity × duration ±50%.
	want := Profiles()[0].RequestsPerMicrosecond * cfg.DurationNS / 1000
	if float64(len(heavy)) < want*0.5 || float64(len(heavy)) > want*1.5 {
		t.Errorf("heavy workload has %d requests, want about %v", len(heavy), want)
	}
}

func TestGenerateReproducible(t *testing.T) {
	cfg := testConfig()
	a, err := Generate(Profiles()[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Profiles()[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c, err := Generate(Profiles()[1], cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateRowLocality(t *testing.T) {
	cfg := testConfig()
	cfg.DurationNS = 1e6
	local, err := Generate(Profile{Name: "local", RequestsPerMicrosecond: 20, RowLocality: 0.95}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Generate(Profile{Name: "random", RequestsPerMicrosecond: 20, RowLocality: 0.0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hitRate := func(reqs []Request) float64 {
		last := map[int]int{}
		hits, total := 0, 0
		for _, r := range reqs {
			if prev, ok := last[r.Bank]; ok {
				total++
				if prev == r.Row {
					hits++
				}
			}
			last[r.Bank] = r.Row
		}
		if total == 0 {
			return 0
		}
		return float64(hits) / float64(total)
	}
	if hitRate(local) < hitRate(random)+0.3 {
		t.Errorf("row locality not reflected: local=%v random=%v", hitRate(local), hitRate(random))
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Profiles()[0], Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := testConfig()
	if _, err := Generate(Profile{Name: "bad", RequestsPerMicrosecond: -1}, cfg); err == nil {
		t.Error("negative intensity accepted")
	}
	if _, err := Generate(Profile{Name: "bad", RowLocality: 2}, cfg); err == nil {
		t.Error("bad locality accepted")
	}
}

func TestGenerateWriteFractionProperty(t *testing.T) {
	cfg := testConfig()
	cfg.DurationNS = 2e6
	f := func(seed uint64) bool {
		cfg.Seed = seed
		reqs, err := Generate(Profile{Name: "p", RequestsPerMicrosecond: 10, RowLocality: 0.5, WriteFraction: 0.5}, cfg)
		if err != nil || len(reqs) < 100 {
			return false
		}
		writes := 0
		for _, r := range reqs {
			if r.IsWrite {
				writes++
			}
		}
		frac := float64(writes) / float64(len(reqs))
		return frac > 0.3 && frac < 0.7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
