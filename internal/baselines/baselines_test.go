package baselines

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/timing"
)

func testDevice(t *testing.T) *dram.Device {
	t.Helper()
	d, err := dram.NewDevice(dram.Config{Serial: 9, Manufacturer: dram.ManufacturerA, Noise: dram.NewDeterministicNoise(9)})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCommandScheduleMetricsMatchPaperScaling(t *testing.T) {
	m, err := NewCommandScheduleTRNG().Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// The paper computes a theoretical maximum of ~3.40 Mb/s for Pyo+ on a
	// 5 GHz, 4-channel system.
	if m.PeakThroughputMbps < 3.0 || m.PeakThroughputMbps > 4.0 {
		t.Errorf("Pyo+ peak throughput = %v Mb/s, want ~3.4", m.PeakThroughputMbps)
	}
	// 64-bit latency of ~18 µs per the paper.
	if m.Latency64NS < 10000 || m.Latency64NS > 80000 {
		t.Errorf("Pyo+ 64-bit latency = %v ns, want on the order of 18 µs", m.Latency64NS)
	}
	if m.TrueRandom {
		t.Error("command scheduling must not be classified as truly random")
	}
	if !m.StreamingCapable {
		t.Error("command scheduling is streaming-capable")
	}
	bad := CommandScheduleTRNG{}
	if _, err := bad.Metrics(); err == nil {
		t.Error("zeroed configuration accepted")
	}
}

func TestCommandScheduleHarvestDeterministic(t *testing.T) {
	dev := testDevice(t)
	c := NewCommandScheduleTRNG()
	a, err := c.Harvest(dev, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Harvest(dev, 1000)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if !same {
		t.Error("command-schedule harvest should be reproducible given the same system state (that is the paper's criticism)")
	}
	if _, err := c.Harvest(nil, 10); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := c.Harvest(dev, 0); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := c.Harvest(dev, 1<<40); err == nil {
		t.Error("request beyond device capacity accepted (would preallocate 1 TiB)")
	}
}

func TestRetentionMetricsOrdersOfMagnitude(t *testing.T) {
	p := timing.NewLPDDR4()
	m, err := NewRetentionTRNG().Metrics(p, power.NewLPDDR4Model())
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: ~0.05 Mb/s peak throughput, 40 s latency, mJ/bit energy.
	if m.PeakThroughputMbps > 0.1 {
		t.Errorf("retention throughput = %v Mb/s, want ≤ 0.1", m.PeakThroughputMbps)
	}
	if m.Latency64NS < 1e9 {
		t.Errorf("retention latency = %v ns, want tens of seconds", m.Latency64NS)
	}
	if m.EnergyPerBitNJ < 1e5 {
		t.Errorf("retention energy = %v nJ/bit, want in the mJ/bit range", m.EnergyPerBitNJ)
	}
	if !m.TrueRandom || !m.StreamingCapable {
		t.Error("retention TRNG is true-random and streaming-capable")
	}
	bad := RetentionTRNG{}
	if _, err := bad.Metrics(p, power.NewLPDDR4Model()); err == nil {
		t.Error("zeroed configuration accepted")
	}
}

func TestRetentionHarvest(t *testing.T) {
	dev := testDevice(t)
	r := NewRetentionTRNG()
	bits, err := r.Harvest(dev, dram.NewDeterministicNoise(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != r.OutputBits {
		t.Fatalf("harvested %d bits, want %d", len(bits), r.OutputBits)
	}
	ones := 0
	for _, b := range bits {
		if b > 1 {
			t.Fatal("invalid bit value")
		}
		ones += int(b)
	}
	// A SHA-256-conditioned output should not be grossly biased.
	if ones < r.OutputBits/4 || ones > 3*r.OutputBits/4 {
		t.Errorf("retention output has %d/%d ones; conditioning should balance it", ones, r.OutputBits)
	}
	if _, err := r.Harvest(nil, nil); err == nil {
		t.Error("nil device accepted")
	}
}

func TestStartupMetrics(t *testing.T) {
	p := timing.NewLPDDR4()
	m, err := NewStartupTRNG().Metrics(p, power.NewLPDDR4Model())
	if err != nil {
		t.Fatal(err)
	}
	if m.StreamingCapable {
		t.Error("startup-value TRNG must not be streaming-capable")
	}
	if m.PeakThroughputMbps != 0 {
		t.Error("startup-value TRNG has no continuous throughput")
	}
	if m.Latency64NS < 30 || m.Latency64NS > 200 {
		t.Errorf("startup read latency = %v ns, want ~60 ns", m.Latency64NS)
	}
	if m.EnergyPerBitNJ <= 0 || m.EnergyPerBitNJ > 10 {
		t.Errorf("startup energy = %v nJ/bit, want sub-nJ to a few nJ", m.EnergyPerBitNJ)
	}
	bad := StartupTRNG{}
	if _, err := bad.Metrics(p, power.NewLPDDR4Model()); err == nil {
		t.Error("zeroed configuration accepted")
	}
}

func TestStartupHarvestRepeatsWithoutPowerCycle(t *testing.T) {
	dev := testDevice(t)
	s := NewStartupTRNG()
	a, err := s.Harvest(dev, 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Harvest(dev, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("startup harvest changed without a power cycle")
		}
	}
	if _, err := s.Harvest(dev, 0); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := s.Harvest(nil, 10); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := s.Harvest(dev, 1<<40); err == nil {
		t.Error("request beyond device capacity accepted")
	}
}

func TestTable2DRangeWinsByOrdersOfMagnitude(t *testing.T) {
	p := timing.NewLPDDR4()
	m := power.NewLPDDR4Model()
	drange := DRangeRow(960, 4.4, 717.4)
	rows, err := Table2(p, m, drange)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 2 has %d rows, want 5", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Name != drange.Name {
		t.Fatalf("last row is %q, want D-RaNGe", last.Name)
	}
	bestPrior := 0.0
	for _, r := range rows[:len(rows)-1] {
		if r.PeakThroughputMbps > bestPrior {
			bestPrior = r.PeakThroughputMbps
		}
	}
	if bestPrior <= 0 {
		t.Fatal("no prior design has positive throughput")
	}
	ratio := last.PeakThroughputMbps / bestPrior
	if ratio < 100 {
		t.Errorf("D-RaNGe outperforms the best prior DRAM TRNG by %.0fx, want >100x (paper: 211x)", ratio)
	}
}
